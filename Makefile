# Developer entry points. `make tier1` is the gate every change must pass:
# full build, vet, and the race-enabled test suite.

GO ?= go

.PHONY: tier1 build vet test race race-hot chaos e2e loadgen-smoke bench-reopen

tier1: build vet race-hot chaos loadgen-smoke e2e race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast-failing race pass over the concurrency-heavy packages (shared
# instrument handles, gossip fan-out, blob retrieval) before the full
# suite runs.
race-hot:
	$(GO) test -race -count=1 ./internal/telemetry/... ./internal/commitbus/... ./internal/gossip/... ./internal/blobstore/... ./internal/ledger ./internal/consensus ./internal/simnet ./internal/chaos ./internal/transport/... ./internal/admission ./internal/ingest ./internal/search ./internal/contract ./internal/store

# Open-loop load generator smoke: a short low-rate run against an
# in-process node with admission control on must finish with zero
# failed, shed, or client-dropped requests.
loadgen-smoke:
	$(GO) test -count=1 -run TestLoadgenSmoke ./internal/loadgen

# Multi-process cluster test: builds the daemon, boots 4 validators over
# loopback TCP, drives transactions through the HTTP API, and kill -9s a
# node to check WAL recovery + consensus sync (bounded ~30s).
e2e:
	$(GO) test -count=1 -timeout 240s ./internal/e2e

# Deterministic chaos scenarios (fixed seeds baked into the tests):
# rolling restarts, partition+heal, crash-during-commit, corrupt links,
# churn, and the determinism fingerprint itself.
chaos:
	$(GO) test -count=1 -run 'TestScenario|TestChaosDeterministicFingerprint' ./internal/chaos

# Reopen cost: full replay vs checkpoint restore (EXPERIMENTS.md E15b).
bench-reopen:
	$(GO) test -run NONE -bench 'BenchmarkOpen(Replay|Checkpoint)' -benchtime 5x .
