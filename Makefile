# Developer entry points. `make tier1` is the gate every change must pass:
# full build, vet, and the race-enabled test suite.

GO ?= go

.PHONY: tier1 build vet test race bench-reopen

tier1: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reopen cost: full replay vs checkpoint restore (EXPERIMENTS.md E15b).
bench-reopen:
	$(GO) test -run NONE -bench 'BenchmarkOpen(Replay|Checkpoint)' -benchtime 5x .
