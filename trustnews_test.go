package trustnews

import (
	"strconv"
	"testing"
)

// TestPublicAPIQuickstart exercises the exported facade the way the
// quickstart example does: a downstream user should need nothing from
// internal/ packages for the core flow.
func TestPublicAPIQuickstart(t *testing.T) {
	p, err := NewPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewCorpusGenerator(1)
	if err := p.TrainClassifier(NewLogisticRegression(), gen.Generate(300, 300).Statements); err != nil {
		t.Fatal(err)
	}
	const fact = "the parliament ratified the border treaty in a public session"
	if err := p.SeedFact("fact-1", TopicPolitics, fact); err != nil {
		t.Fatal(err)
	}
	journalist := p.NewActor("journalist")
	if err := journalist.PublishNews("real", TopicPolitics, fact, nil, ""); err != nil {
		t.Fatal(err)
	}
	troll := p.NewActor("troll")
	doctored := "SHOCKING the parliament secretly rejected the border treaty wake up sheeple"
	if err := troll.PublishNews("doctored", TopicPolitics, doctored, []string{"real"}, OpNegate); err != nil {
		t.Fatal(err)
	}
	realRank, err := p.RankItem("real", MechanismCombined)
	if err != nil {
		t.Fatal(err)
	}
	fakeRank, err := p.RankItem("doctored", MechanismCombined)
	if err != nil {
		t.Fatal(err)
	}
	if !realRank.Factual || fakeRank.Factual {
		t.Fatalf("verdicts wrong: real=%+v fake=%+v", realRank, fakeRank)
	}
	if fakeRank.Trace.Originator == "" {
		t.Fatal("originator not identified through public API")
	}
}

// TestPublicAPISocial exercises the social-simulation surface.
func TestPublicAPISocial(t *testing.T) {
	cfg := DefaultSocialConfig()
	cfg.Users, cfg.Bots, cfg.Cyborgs = 400, 30, 20
	net, err := NewSocialNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Spread(ItemFake, net.BotSeeds(4), DefaultSpreadParams(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached < 4 || res.Reached > net.Size() {
		t.Fatalf("reached=%d", res.Reached)
	}
}

// TestPublicAPIConsensus exercises the consensus surface.
func TestPublicAPIConsensus(t *testing.T) {
	c, err := NewConsensusCluster(4, 1, DefaultConsensusTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilHeight(1, 3e10) // 30s of virtual time
	if c.MinHeight() < 1 {
		t.Fatal("cluster did not commit through public API")
	}
}

// TestPublicAPIEconomy exercises voting, resolution and settlement.
func TestPublicAPIEconomy(t *testing.T) {
	p, err := NewPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const fact = "the central bank raised the interest rate per the published minutes"
	if err := p.SeedFact("fact-1", TopicEconomy, fact); err != nil {
		t.Fatal(err)
	}
	pub := p.NewActor("pub")
	if err := pub.PublishNews("item", TopicEconomy, fact, nil, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v := p.NewActor("voter" + strconv.Itoa(i))
		if err := p.MintTo(v.Address(), 100); err != nil {
			t.Fatal(err)
		}
		if err := v.Vote("item", true, 10); err != nil {
			t.Fatal(err)
		}
	}
	rank, err := p.ResolveByRanking("item")
	if err != nil {
		t.Fatal(err)
	}
	if !rank.Factual {
		t.Fatalf("rank=%+v", rank)
	}
	v0 := p.NewActor("voter0")
	rep, err := v0.Reputation()
	if err != nil {
		t.Fatal(err)
	}
	if rep <= 1.0 {
		t.Fatalf("rep=%f; correct voter must gain", rep)
	}
}
