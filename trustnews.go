// Package trustnews is the public API of the AI Blockchain Platform for
// Trusting News — a from-scratch Go reproduction of Shae & Tsai (ICDCS
// 2019). It re-exports the platform facade and the building blocks a
// downstream user needs:
//
//   - Platform / Actor: the trusting-news node and its client handle
//     (identity registry, factual database, news supply chain, staked
//     crowd ranking, newsrooms, media provenance — all smart contracts
//     over a validated chain).
//   - Ranking mechanisms: the paper's combined AI+trace+crowd ranking and
//     the majority/AI-only/trace-only baselines.
//   - Corpus: the synthetic labelled news generator (see DESIGN.md for
//     the data substitution rationale).
//   - Social: the follower-network cascade simulator with bots and
//     platform interventions.
//   - Consensus: the Tendermint-style BFT cluster and PoA baseline for
//     multi-validator deployments.
//
// See examples/quickstart for a five-minute tour.
package trustnews

import (
	"repro/internal/aidetect"
	"repro/internal/consensus"
	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/identity"
	"repro/internal/platform"
	"repro/internal/ranking"
	"repro/internal/social"
	"repro/internal/supplychain"
)

// Platform types.
type (
	// Platform is one trusting-news node (Fig. 1 of the paper).
	Platform = platform.Platform
	// Config tunes a platform node.
	Config = platform.Config
	// Actor is a client handle bound to one key pair.
	Actor = platform.Actor
	// ItemRank is the transparent ranking output for one news item.
	ItemRank = platform.ItemRank
	// MediaCheck is the media-provenance verification outcome.
	MediaCheck = platform.MediaCheck
)

// NewPlatform creates a standalone trusting-news node.
func NewPlatform(cfg Config) (*Platform, error) { return platform.New(cfg) }

// DefaultConfig returns the standard platform configuration.
func DefaultConfig() Config { return platform.DefaultConfig() }

// Identity roles (the five ecosystem participants of Fig. 2).
const (
	RoleConsumer    = identity.RoleConsumer
	RoleCreator     = identity.RoleCreator
	RoleFactChecker = identity.RoleFactChecker
	RoleAIDeveloper = identity.RoleAIDeveloper
	RolePublisher   = identity.RolePublisher
)

// Ranking mechanisms (experiment E5 compares them).
const (
	MechanismMajority  = ranking.MechanismMajority
	MechanismAIOnly    = ranking.MechanismAIOnly
	MechanismTraceOnly = ranking.MechanismTraceOnly
	MechanismCombined  = ranking.MechanismCombined
)

// News modification operators (§VI of the paper).
const (
	OpMix      = corpus.OpMix
	OpSplit    = corpus.OpSplit
	OpMerge    = corpus.OpMerge
	OpInsert   = corpus.OpInsert
	OpDistort  = corpus.OpDistort
	OpNegate   = corpus.OpNegate
	OpVerbatim = corpus.OpVerbatim
)

// Topics covered by the synthetic corpus.
const (
	TopicPolitics = corpus.TopicPolitics
	TopicEconomy  = corpus.TopicEconomy
	TopicHealth   = corpus.TopicHealth
	TopicScience  = corpus.TopicScience
	TopicSports   = corpus.TopicSports
)

// Corpus types and constructors.
type (
	// CorpusGenerator produces deterministic labelled statements.
	CorpusGenerator = corpus.Generator
	// Statement is one labelled news item.
	Statement = corpus.Statement
)

// NewCorpusGenerator seeds a deterministic statement generator.
func NewCorpusGenerator(seed int64) *CorpusGenerator { return corpus.NewGenerator(seed) }

// AI detection components.
type (
	// TextClassifier scores text for fakeness.
	TextClassifier = aidetect.TextClassifier
	// MediaDetector is the blind tamper detector.
	MediaDetector = aidetect.MediaDetector
)

// NewNaiveBayes creates the naive Bayes fake-text classifier.
func NewNaiveBayes() *aidetect.NaiveBayes { return aidetect.NewNaiveBayes() }

// NewLogisticRegression creates the logistic-regression classifier.
func NewLogisticRegression() *aidetect.LogisticRegression { return aidetect.NewLogisticRegression() }

// Supply-chain types.
type (
	// TraceResult is the factual trace-back outcome for a news item.
	TraceResult = supplychain.TraceResult
	// ExpertScore ranks an account's topic expertise from the ledger.
	ExpertScore = supplychain.ExpertScore
	// NewsItem is one node of the news supply-chain graph.
	NewsItem = supplychain.Item
)

// Factual-database types.
type (
	// Fact is one ground-truth record.
	Fact = factdb.Fact
	// FactMatch is a similarity hit against the factual database.
	FactMatch = factdb.Match
)

// Social-simulation types and constructors.
type (
	// SocialConfig describes the follower network to generate.
	SocialConfig = social.Config
	// SocialNetwork is the follower graph with bots and cyborgs.
	SocialNetwork = social.Network
	// SpreadParams tunes the cascade model.
	SpreadParams = social.SpreadParams
	// SpreadResult is a cascade trace.
	SpreadResult = social.SpreadResult
)

// Spreading item kinds for SocialNetwork.Spread.
const (
	ItemFactual = social.ItemFactual
	ItemFake    = social.ItemFake
)

// NewSocialNetwork generates a follower network.
func NewSocialNetwork(cfg SocialConfig) (*SocialNetwork, error) { return social.NewNetwork(cfg) }

// DefaultSocialConfig returns a moderate network configuration.
func DefaultSocialConfig() SocialConfig { return social.DefaultConfig() }

// DefaultSpreadParams returns the standard cascade parameters.
func DefaultSpreadParams() SpreadParams { return social.DefaultSpreadParams() }

// Consensus types and constructors.
type (
	// ConsensusCluster is a BFT validator cluster over a simulated net.
	ConsensusCluster = consensus.Cluster
	// ConsensusTimeouts tunes the BFT round timeouts.
	ConsensusTimeouts = consensus.Timeouts
)

// NewConsensusCluster builds an n-validator BFT cluster.
func NewConsensusCluster(n int, seed int64, tmo ConsensusTimeouts) (*ConsensusCluster, error) {
	return consensus.NewCluster(n, seed, tmo)
}

// DefaultConsensusTimeouts suits the default simulated-network profile.
func DefaultConsensusTimeouts() ConsensusTimeouts { return consensus.DefaultTimeouts() }
