package trustnews

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example and CLI demo end to end; they are
// the repository's living documentation, so they must not bit-rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	cases := []struct {
		name string
		pkg  string
		want []string // substrings the output must contain
	}{
		{"quickstart", "./examples/quickstart", []string{"FACTUAL", "FAKE", "originated"}},
		{"newsroom", "./examples/newsroom", []string{"published", "rejected", "resolved story-1-item"}},
		{"outbreak", "./examples/outbreak", []string{"without platform", "with platform", "originating account"}},
		{"expertpanel", "./examples/expertpanel", []string{"dr-politics", "dr-health"}},
		{"apiclient", "./examples/apiclient", []string{"POST /v1/tx", "rooted"}},
		{"trustnews-cli", "./cmd/trustnews", []string{"FACTUAL", "FAKE", "originator of the modification"}},
		{"newssim-cli", "./cmd/newssim", []string{"final reach"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", tc.pkg, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Fatalf("%s output missing %q:\n%s", tc.pkg, want, out)
				}
			}
		})
	}
}
