// API-client example: boots a platform node with its JSON/HTTP gateway
// in-process, then acts as a remote client would — signing transactions
// locally and talking to the node only over HTTP.
//
//	go run ./examples/apiclient
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	trustnews "repro"
	"repro/internal/httpapi"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/supplychain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- node side -----------------------------------------------------
	p, err := trustnews.NewPlatform(trustnews.DefaultConfig())
	if err != nil {
		return err
	}
	gen := trustnews.NewCorpusGenerator(2)
	if err := p.TrainClassifier(trustnews.NewNaiveBayes(), gen.Generate(300, 300).Statements); err != nil {
		return err
	}
	const fact = "the central bank raised the interest rate per the published minutes"
	if err := p.SeedFact("fact-1", trustnews.TopicEconomy, fact); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: httpapi.New(p, true), ReadHeaderTimeout: time.Second}
	go srv.Serve(ln) // stopped when main exits; this is a demo process
	base := "http://" + ln.Addr().String()
	fmt.Println("node listening at", base)

	// --- client side: keys never leave this side ------------------------
	me := keys.FromSeed([]byte("api-client"))
	payload, err := supplychain.PublishPayload("wire-1", trustnews.TopicEconomy, fact, nil, "")
	if err != nil {
		return err
	}
	tx, err := ledger.NewTx(me, 0, "news.publish", payload)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(map[string]string{"txHex": hex.EncodeToString(tx.Encode())})
	resp, err := http.Post(base+"/v1/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/tx → %s %s\n", resp.Status, bytes.TrimSpace(out))

	for _, path := range []string{"/v1/chain", "/v1/items/wire-1/rank", "/v1/items/wire-1/trace"} {
		r, err := http.Get(base + path)
		if err != nil {
			return err
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		fmt.Printf("GET %s → %s\n", path, bytes.TrimSpace(b))
	}
	return srv.Close()
}
