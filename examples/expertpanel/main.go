// Expertpanel example: §VI's expert-discovery mechanism. The ledger
// accumulates publishing history for accounts of very different quality;
// when a breaking story needs fact-checking, the platform mines the ledger
// and suggests the accounts whose record is consistently factual — growing
// the fact-checker pool "dynamically ... in real time when news emerges".
//
//	go run ./examples/expertpanel
package main

import (
	"fmt"
	"log"
	"strconv"

	trustnews "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := trustnews.NewPlatform(trustnews.DefaultConfig())
	if err != nil {
		return err
	}
	gen := trustnews.NewCorpusGenerator(9)

	// Official records for two domains.
	politics := make([]trustnews.Statement, 0, 30)
	health := make([]trustnews.Statement, 0, 30)
	for i := 0; i < 30; i++ {
		sp := gen.FactualOn(trustnews.TopicPolitics)
		sh := gen.FactualOn(trustnews.TopicHealth)
		politics = append(politics, sp)
		health = append(health, sh)
		if err := p.SeedFact(sp.ID, sp.Topic, sp.Text); err != nil {
			return err
		}
		if err := p.SeedFact(sh.ID, sh.Topic, sh.Text); err != nil {
			return err
		}
	}

	// Build ledger history: two genuine domain experts, a generalist with
	// mixed accuracy, and a troll.
	seq := 0
	post := func(a *trustnews.Actor, topic trustnews.Statement) error {
		seq++
		return a.PublishNews("item-"+strconv.Itoa(seq), topic.Topic, topic.Text, nil, "")
	}
	polExpert := p.NewActor("dr-politics")
	healthExpert := p.NewActor("dr-health")
	generalist := p.NewActor("generalist")
	troll := p.NewActor("troll")
	rng := gen.Rand()
	for i := 0; i < 10; i++ {
		if err := post(polExpert, politics[rng.Intn(len(politics))]); err != nil {
			return err
		}
		if err := post(healthExpert, health[rng.Intn(len(health))]); err != nil {
			return err
		}
		// Generalist: half factual, half fabricated.
		if i%2 == 0 {
			if err := post(generalist, politics[rng.Intn(len(politics))]); err != nil {
				return err
			}
		} else {
			fab := gen.Fabricate()
			if err := generalist.PublishNews("item-g"+strconv.Itoa(i), trustnews.TopicPolitics, fab.Text, nil, ""); err != nil {
				return err
			}
		}
		fab := gen.Fabricate()
		if err := troll.PublishNews("item-t"+strconv.Itoa(i), trustnews.TopicPolitics, fab.Text, nil, ""); err != nil {
			return err
		}
	}

	// Breaking news on politics: who should fact-check it?
	names := map[string]string{
		polExpert.Address().String():    "dr-politics",
		healthExpert.Address().String(): "dr-health",
		generalist.Address().String():   "generalist",
		troll.Address().String():        "troll",
	}
	for _, tp := range []string{"politics", "health"} {
		var experts []trustnews.ExpertScore
		if tp == "politics" {
			experts = p.Experts(trustnews.TopicPolitics, 3)
		} else {
			experts = p.Experts(trustnews.TopicHealth, 3)
		}
		fmt.Printf("suggested fact-checkers for breaking %s news:\n", tp)
		for i, es := range experts {
			fmt.Printf("  %d. %-12s score=%.2f (%d items, %d flagged fake)\n",
				i+1, names[es.Account], es.Score, es.Items, es.Fake)
		}
	}
	return nil
}
