// Outbreak example: the paper's motivating scenario end to end. A troll
// farm fabricates a story and seeds it through bot accounts; the platform
// detects it (AI + trace), flags it, demotes the identified sources, and
// pushes the verified factual version. The cascade curves show fake news
// winning without the platform and factual reporting outpacing it with it.
//
//	go run ./examples/outbreak
package main

import (
	"fmt"
	"log"

	trustnews "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- On-platform: detection and accountability --------------------
	p, err := trustnews.NewPlatform(trustnews.DefaultConfig())
	if err != nil {
		return err
	}
	gen := trustnews.NewCorpusGenerator(3)
	if err := p.TrainClassifier(trustnews.NewLogisticRegression(), gen.Generate(500, 500).Statements); err != nil {
		return err
	}
	fact := gen.Factual()
	if err := p.SeedFact("official", fact.Topic, fact.Text); err != nil {
		return err
	}
	agency := p.NewActor("news-agency")
	troll := p.NewActor("troll-farm")
	if err := agency.PublishNews("official-item", fact.Topic, fact.Text, nil, ""); err != nil {
		return err
	}
	hoax := gen.Modify(fact, trustnews.OpInsert)
	if err := troll.PublishNews("hoax-item", hoax.Topic, hoax.Text, nil, ""); err != nil {
		return err
	}
	rank, err := p.RankItem("hoax-item", trustnews.MechanismCombined)
	if err != nil {
		return err
	}
	fmt.Printf("platform verdict on the hoax: score=%.3f factual=%v\n", rank.Score, rank.Factual)
	fmt.Printf("trace matched fact %q at similarity %.2f\n", rank.Trace.RootFactID, rank.Trace.Score)
	if rank.Trace.Originator != "" {
		fmt.Printf("originating account identified: %s\n", rank.Trace.Originator[:12])
	}

	// --- Off-platform: the propagation race ---------------------------
	cfg := trustnews.DefaultSocialConfig()
	cfg.Users, cfg.Bots, cfg.Cyborgs = 4000, 250, 150
	net, err := trustnews.NewSocialNetwork(cfg)
	if err != nil {
		return err
	}
	fakeSeeds := net.BotSeeds(8)
	factSeeds := net.RegularSeeds(8)

	free := trustnews.DefaultSpreadParams() // no platform
	fakeFree, err := net.Spread(trustnews.ItemFake, fakeSeeds, free, 14, 100)
	if err != nil {
		return err
	}
	factFree, err := net.Spread(trustnews.ItemFactual, factSeeds, free, 14, 200)
	if err != nil {
		return err
	}

	// With the platform: the hoax was flagged at round 2 (detection above)
	// and its sources demoted; verified factual content carries the trust
	// label.
	intervened := trustnews.DefaultSpreadParams()
	intervened.FlagDelay = 2
	intervened.FactualBoost = 1.6
	if !rank.Factual {
		for _, s := range fakeSeeds {
			net.Demote(s)
		}
	}
	fakeInt, err := net.Spread(trustnews.ItemFake, fakeSeeds, intervened, 14, 100)
	if err != nil {
		return err
	}
	factInt, err := net.Spread(trustnews.ItemFactual, factSeeds, intervened, 14, 200)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-22s %8s %8s\n", "scenario", "fake", "factual")
	fmt.Printf("%-22s %8d %8d   <- fake news wins unchecked\n", "without platform", fakeFree.Reached, factFree.Reached)
	fmt.Printf("%-22s %8d %8d   <- factual outpaces fake\n", "with platform", fakeInt.Reached, factInt.Reached)
	return nil
}
