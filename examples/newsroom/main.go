// Newsroom example: the full §V editorial scenario — a publisher stands up
// a distribution platform with topic rooms, accredits journalists, drafts
// move through review to publication, readers comment, crowd votes settle
// the article's factualness, and correct voters earn tokens.
//
//	go run ./examples/newsroom
package main

import (
	"fmt"
	"log"
	"strconv"

	trustnews "repro"
	"repro/internal/newsroom"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := trustnews.NewPlatform(trustnews.DefaultConfig())
	if err != nil {
		return err
	}
	gen := trustnews.NewCorpusGenerator(7)
	if err := p.TrainClassifier(trustnews.NewNaiveBayes(), gen.Generate(400, 400).Statements); err != nil {
		return err
	}

	// 1. Identities: a publisher, two journalists, three readers.
	publisher := p.NewActor("herald-publisher")
	if err := publisher.Register("The Herald", trustnews.RolePublisher); err != nil {
		return err
	}
	if err := p.VerifyAccount(publisher.Address()); err != nil {
		return err
	}
	journalists := make([]*trustnews.Actor, 2)
	for i := range journalists {
		journalists[i] = p.NewActor("journalist-" + strconv.Itoa(i))
		if err := journalists[i].Register("Reporter "+strconv.Itoa(i), trustnews.RoleCreator); err != nil {
			return err
		}
		if err := p.VerifyAccount(journalists[i].Address()); err != nil {
			return err
		}
	}
	readers := make([]*trustnews.Actor, 3)
	for i := range readers {
		readers[i] = p.NewActor("reader-" + strconv.Itoa(i))
		if err := readers[i].Register("Reader "+strconv.Itoa(i), trustnews.RoleConsumer); err != nil {
			return err
		}
		if err := p.MintTo(readers[i].Address(), 500); err != nil {
			return err
		}
	}
	fmt.Println("registered: 1 publisher, 2 journalists, 3 readers")

	// 2. Distribution platform with two themed rooms.
	pl, _ := newsroom.CreatePlatformPayload("herald", "The Herald")
	if _, err := publisher.MustExec("newsroom.createPlatform", pl); err != nil {
		return err
	}
	r1, _ := newsroom.CreateRoomPayload("herald-politics", "herald", trustnews.TopicPolitics)
	if _, err := publisher.MustExec("newsroom.createRoom", r1); err != nil {
		return err
	}
	r2, _ := newsroom.CreateRoomPayload("herald-health", "herald", trustnews.TopicHealth)
	if _, err := publisher.MustExec("newsroom.createRoom", r2); err != nil {
		return err
	}
	for _, j := range journalists {
		ac, _ := newsroom.AccreditPayload("herald", j.Address())
		if _, err := publisher.MustExec("newsroom.accredit", ac); err != nil {
			return err
		}
	}
	fmt.Println("platform 'herald' created with politics and health rooms")

	// 3. Editorial workflow: draft → submit → approve; one rejection.
	story := gen.Factual()
	d1, _ := newsroom.DraftPayload("story-1", "herald-politics", "Committee acts", story.Text,
		"planning: committee session; interviews: two officials", nil)
	if _, err := journalists[0].MustExec("newsroom.draft", d1); err != nil {
		return err
	}
	act1, _ := newsroom.ArticleActPayload("story-1")
	if _, err := journalists[0].MustExec("newsroom.submit", act1); err != nil {
		return err
	}
	if _, err := publisher.MustExec("newsroom.approve", act1); err != nil {
		return err
	}
	sloppy := gen.Fabricate()
	d2, _ := newsroom.DraftPayload("story-2", "herald-politics", "Unsourced rumor", sloppy.Text, "", nil)
	if _, err := journalists[1].MustExec("newsroom.draft", d2); err != nil {
		return err
	}
	act2, _ := newsroom.ArticleActPayload("story-2")
	if _, err := journalists[1].MustExec("newsroom.submit", act2); err != nil {
		return err
	}
	if _, err := publisher.MustExec("newsroom.reject", act2); err != nil {
		return err
	}
	a1, _ := newsroom.GetArticle(p.Engine(), publisher.Address(), "story-1")
	a2, _ := newsroom.GetArticle(p.Engine(), publisher.Address(), "story-2")
	fmt.Printf("story-1: %s | story-2: %s (editorial layer rejected the rumor)\n", a1.Status, a2.Status)

	// 4. The published article becomes a supply-chain item readers vote on.
	if err := journalists[0].PublishNews("story-1-item", story.Topic, story.Text, nil, ""); err != nil {
		return err
	}
	if err := p.SeedFact("official-1", story.Topic, story.Text); err != nil {
		return err
	}
	for i, r := range readers {
		cm, _ := newsroom.CommentPayload("story-1", "comment "+strconv.Itoa(i))
		if _, err := r.MustExec("newsroom.comment", cm); err != nil {
			return err
		}
		if err := r.Vote("story-1-item", true, 50); err != nil {
			return err
		}
	}
	comments, err := newsroom.Comments(p.Engine(), publisher.Address(), "story-1")
	if err != nil {
		return err
	}
	fmt.Printf("readers left %d comments and staked 50 tokens each on 'factual'\n", len(comments))

	// 5. Resolution settles stakes and reputations.
	rank, err := p.ResolveByRanking("story-1-item")
	if err != nil {
		return err
	}
	bal, _ := readers[0].Balance()
	rep, _ := readers[0].Reputation()
	fmt.Printf("resolved story-1-item: score=%.3f factual=%v; reader-0 balance=%d rep=%.2f\n",
		rank.Score, rank.Factual, bal, rep)
	fmt.Printf("chain height %d, factual db size %d\n", p.Chain().Height(), p.FactIndex().Len())
	return nil
}
