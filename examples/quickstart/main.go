// Quickstart: stand up a trusting-news platform, seed a fact, publish a
// real item and a doctored copy, and ask the platform which is which.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	trustnews "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := trustnews.NewPlatform(trustnews.DefaultConfig())
	if err != nil {
		return err
	}

	// Train the AI component on a synthetic labelled corpus.
	gen := trustnews.NewCorpusGenerator(1)
	if err := p.TrainClassifier(trustnews.NewLogisticRegression(), gen.Generate(400, 400).Statements); err != nil {
		return err
	}

	// Ground truth: one official record in the factual database.
	const fact = "the parliament ratified the border treaty in a public session"
	if err := p.SeedFact("fact-1", trustnews.TopicPolitics, fact); err != nil {
		return err
	}

	// A journalist publishes the fact; a troll publishes a doctored copy.
	journalist := p.NewActor("journalist")
	troll := p.NewActor("troll")
	if err := journalist.PublishNews("real", trustnews.TopicPolitics, fact, nil, ""); err != nil {
		return err
	}
	doctored := "SHOCKING the parliament secretly rejected the border treaty wake up"
	if err := troll.PublishNews("doctored", trustnews.TopicPolitics, doctored, []string{"real"}, trustnews.OpNegate); err != nil {
		return err
	}

	// Rank both with the paper's combined AI + trace + crowd mechanism.
	for _, id := range []string{"real", "doctored"} {
		rank, err := p.RankItem(id, trustnews.MechanismCombined)
		if err != nil {
			return err
		}
		verdict := "FACTUAL"
		if !rank.Factual {
			verdict = "FAKE"
		}
		fmt.Printf("%-9s score=%.3f → %-7s (ai fake-prob=%.2f, trace=%.2f via %v)\n",
			id, rank.Score, verdict, rank.AIFakeProb, rank.Trace.Score, rank.Trace.Path)
		if rank.Trace.Originator != "" {
			fmt.Printf("          modification originated at account %s\n", rank.Trace.Originator[:12])
		}
	}
	return nil
}
