package aidetect

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

func trainTest(t testing.TB, seed int64, nFact, nFake int) (train, test []corpus.Statement) {
	t.Helper()
	c := corpus.NewGenerator(seed).Generate(nFact, nFake)
	return c.Split(0.7, rand.New(rand.NewSource(seed)))
}

func TestNaiveBayesLearnsCorpus(t *testing.T) {
	train, test := trainTest(t, 1, 600, 600)
	nb := NewNaiveBayes()
	if err := nb.Train(train); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	// NB is blind to the mixing/merging operators by construction (their
	// token content is entirely factual vocabulary), so its ceiling on
	// this corpus is well below perfect — the finding that motivates the
	// paper's trace-based ranking (E5).
	if ev.Accuracy < 0.75 {
		t.Fatalf("NB accuracy=%.3f want >=0.75", ev.Accuracy)
	}
	if ev.AUC < 0.8 {
		t.Fatalf("NB AUC=%.3f want >=0.8", ev.AUC)
	}
}

func TestLogisticRegressionLearnsCorpus(t *testing.T) {
	train, test := trainTest(t, 2, 600, 600)
	lr := NewLogisticRegression()
	if err := lr.Train(train); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(lr, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.88 {
		t.Fatalf("LR accuracy=%.3f want >=0.88", ev.Accuracy)
	}
	if ev.AUC < 0.9 {
		t.Fatalf("LR AUC=%.3f want >=0.9", ev.AUC)
	}
}

func TestEmotionOnlyIsWeakerThanLearned(t *testing.T) {
	train, test := trainTest(t, 3, 800, 800)
	lr := NewLogisticRegression()
	lr.Train(train)
	emo := NewEmotionOnly()
	emo.Train(train)
	evLR, _ := Evaluate(lr, test)
	evEmo, _ := Evaluate(emo, test)
	if evEmo.AUC >= evLR.AUC {
		t.Fatalf("emotion-only AUC %.3f >= LR AUC %.3f; ablation inverted", evEmo.AUC, evLR.AUC)
	}
	if evEmo.Accuracy >= evLR.Accuracy {
		t.Fatalf("emotion-only acc %.3f >= LR acc %.3f; ablation inverted", evEmo.Accuracy, evLR.Accuracy)
	}
	// But the emotion signal alone is still informative (paper §I).
	if evEmo.AUC < 0.6 {
		t.Fatalf("emotion-only AUC=%.3f; lexicon signal missing", evEmo.AUC)
	}
}

func TestScoreBeforeTrainErrors(t *testing.T) {
	for _, c := range []TextClassifier{NewNaiveBayes(), NewLogisticRegression(), NewEmotionOnly()} {
		if _, err := c.Score("anything"); err != ErrNotTrained {
			t.Errorf("%T: want ErrNotTrained, got %v", c, err)
		}
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	for _, c := range []TextClassifier{NewNaiveBayes(), NewLogisticRegression(), NewEmotionOnly()} {
		if err := c.Train(nil); err != ErrNoData {
			t.Errorf("%T: want ErrNoData, got %v", c, err)
		}
	}
}

func TestNaiveBayesNeedsBothClasses(t *testing.T) {
	c := corpus.NewGenerator(1).Generate(50, 0)
	nb := NewNaiveBayes()
	if err := nb.Train(c.Statements); err == nil {
		t.Fatal("want error for single-class training")
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	train, test := trainTest(t, 4, 200, 200)
	for _, c := range []TextClassifier{NewNaiveBayes(), NewLogisticRegression(), NewEmotionOnly()} {
		if err := c.Train(train); err != nil {
			t.Fatal(err)
		}
		for _, s := range test[:50] {
			sc, err := c.Score(s.Text)
			if err != nil {
				t.Fatal(err)
			}
			if sc < 0 || sc > 1 {
				t.Fatalf("%T score=%f out of [0,1]", c, sc)
			}
		}
	}
}

func TestClassifierSeparatesObviousCases(t *testing.T) {
	train, _ := trainTest(t, 5, 800, 800)
	nb := NewNaiveBayes()
	nb.Train(train)
	factual := "the central bank reported the employment report per the published minutes"
	fake := "shocking you won't believe the rigged corrupt scandal exposed wake up"
	sf, _ := nb.Score(factual)
	sk, _ := nb.Score(fake)
	if sf >= 0.5 {
		t.Fatalf("factual text scored %.3f", sf)
	}
	if sk <= 0.5 {
		t.Fatalf("fake text scored %.3f", sk)
	}
}

func TestMetricsKnownValues(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, false, true, false}
	ev := Metrics(scores, labels)
	// preds: T T F F -> tp=1 fp=1 fn=1 tn=1.
	if ev.Accuracy != 0.5 || ev.Precision != 0.5 || ev.Recall != 0.5 {
		t.Fatalf("ev=%+v", ev)
	}
	if ev.F1 != 0.5 {
		t.Fatalf("f1=%f", ev.F1)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	perfect := Metrics([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false})
	if perfect.AUC != 1 {
		t.Fatalf("perfect AUC=%f", perfect.AUC)
	}
	inverted := Metrics([]float64{0.1, 0.2, 0.8, 0.9}, []bool{true, true, false, false})
	if inverted.AUC != 0 {
		t.Fatalf("inverted AUC=%f", inverted.AUC)
	}
	ties := Metrics([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, true, false, false})
	if ties.AUC != 0.5 {
		t.Fatalf("all-ties AUC=%f want 0.5", ties.AUC)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	ev := Metrics(nil, nil)
	if ev.Accuracy != 0 || ev.AUC != 0 {
		t.Fatalf("ev=%+v", ev)
	}
	onlyPos := Metrics([]float64{0.9}, []bool{true})
	if onlyPos.AUC != 0 {
		t.Fatalf("single-class AUC=%f", onlyPos.AUC)
	}
}

func TestLRDeterministic(t *testing.T) {
	train, test := trainTest(t, 6, 300, 300)
	run := func() float64 {
		lr := NewLogisticRegression()
		lr.Train(train)
		ev, _ := Evaluate(lr, test)
		return ev.AUC
	}
	if run() != run() {
		t.Fatal("LR training not deterministic")
	}
}

func BenchmarkNaiveBayesTrain(b *testing.B) {
	c := corpus.NewGenerator(1).Generate(500, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := NewNaiveBayes()
		nb.Train(c.Statements)
	}
}

func BenchmarkNaiveBayesScore(b *testing.B) {
	c := corpus.NewGenerator(1).Generate(500, 500)
	nb := NewNaiveBayes()
	nb.Train(c.Statements)
	text := c.Statements[10].Text
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Score(text)
	}
}
