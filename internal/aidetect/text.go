// Package aidetect implements the platform's AI components: fake-text
// classification (§IV component 3) and fake-multimedia tamper detection
// (§IV component 2).
//
// The paper defers to external deep models (TI-CNN, TensorFlow deepfake
// detectors); offline we implement two classical classifiers from scratch —
// multinomial naive Bayes and logistic regression over hashed bag-of-words
// plus hand features (the §I negative-emotion signal) — which exercise the
// same integration path: an AI score feeding the blockchain crowd-sourced
// ranking. Experiment E11 reports their accuracy and the emotion-only
// ablation.
package aidetect

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
)

// Errors returned by this package.
var (
	// ErrNotTrained indicates Score before Train.
	ErrNotTrained = errors.New("aidetect: classifier not trained")
	// ErrNoData indicates an empty training set.
	ErrNoData = errors.New("aidetect: empty training set")
)

// ngrams returns unigrams plus adjacent word bigrams. Bigrams are what
// expose the paper's mixing/merging operators: a spliced statement is
// locally fluent but crosses phrase boundaries that never co-occur in
// factual text.
func ngrams(text string) []string {
	toks := corpus.Tokenize(text)
	// Map numeric tokens to digit-count shape classes so magnitudes
	// generalize (a distorted "7341" shares the "#num4" token with every
	// other 4-digit figure instead of being an unseen singleton).
	shaped := make([]string, len(toks))
	for i, t := range toks {
		if t[0] >= '0' && t[0] <= '9' {
			shaped[i] = fmt.Sprintf("#num%d", len(t))
			continue
		}
		shaped[i] = t
	}
	out := make([]string, 0, len(shaped)*2)
	out = append(out, shaped...)
	for i := 1; i < len(shaped); i++ {
		out = append(out, shaped[i-1]+"_"+shaped[i])
	}
	return out
}

// TextClassifier scores text for fakeness in [0,1].
type TextClassifier interface {
	// Train fits the model on labelled statements.
	Train(items []corpus.Statement) error
	// Score returns the probability that text is fake.
	Score(text string) (float64, error)
}

// ---------------------------------------------------------------------------
// Multinomial naive Bayes.
// ---------------------------------------------------------------------------

// NaiveBayes is a multinomial naive Bayes text classifier with Laplace
// smoothing.
type NaiveBayes struct {
	vocab      map[string]int
	fakeCount  map[string]int
	realCount  map[string]int
	fakeTokens int
	realTokens int
	fakeDocs   int
	realDocs   int
	trained    bool
}

var _ TextClassifier = (*NaiveBayes)(nil)

// NewNaiveBayes creates an untrained classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		vocab:     make(map[string]int),
		fakeCount: make(map[string]int),
		realCount: make(map[string]int),
	}
}

// Train implements TextClassifier.
func (nb *NaiveBayes) Train(items []corpus.Statement) error {
	if len(items) == 0 {
		return ErrNoData
	}
	for _, s := range items {
		toks := ngrams(s.Text)
		if s.IsFake() {
			nb.fakeDocs++
		} else {
			nb.realDocs++
		}
		for _, t := range toks {
			nb.vocab[t]++
			if s.IsFake() {
				nb.fakeCount[t]++
				nb.fakeTokens++
			} else {
				nb.realCount[t]++
				nb.realTokens++
			}
		}
	}
	if nb.fakeDocs == 0 || nb.realDocs == 0 {
		return errors.New("aidetect: training set needs both classes")
	}
	nb.trained = true
	return nil
}

// Score implements TextClassifier.
func (nb *NaiveBayes) Score(text string) (float64, error) {
	if !nb.trained {
		return 0, ErrNotTrained
	}
	toks := ngrams(text)
	v := float64(len(nb.vocab))
	logFake := math.Log(float64(nb.fakeDocs) / float64(nb.fakeDocs+nb.realDocs))
	logReal := math.Log(float64(nb.realDocs) / float64(nb.fakeDocs+nb.realDocs))
	for _, t := range toks {
		logFake += math.Log((float64(nb.fakeCount[t]) + 1) / (float64(nb.fakeTokens) + v))
		logReal += math.Log((float64(nb.realCount[t]) + 1) / (float64(nb.realTokens) + v))
	}
	// Convert to P(fake|text) with the log-sum-exp trick.
	m := math.Max(logFake, logReal)
	pf := math.Exp(logFake - m)
	pr := math.Exp(logReal - m)
	return pf / (pf + pr), nil
}

// ---------------------------------------------------------------------------
// Logistic regression over hashed bag-of-words + hand features.
// ---------------------------------------------------------------------------

// hashDim is the hashed bag-of-words dimensionality.
const hashDim = 1 << 12

// handFeatures is the number of engineered features appended after the
// hashed words: emotion score, token count (scaled), digit share, bias.
const handFeatures = 4

// LogisticRegression is an L2-regularized logistic classifier trained by
// multi-epoch SGD over a deterministically shuffled order.
type LogisticRegression struct {
	// Epochs is the number of SGD passes (default 12).
	Epochs int
	// LearnRate is the SGD step (default 0.2).
	LearnRate float64
	// L2 is the regularization strength (default 1e-4).
	L2 float64

	weights []float64
	trained bool
}

var _ TextClassifier = (*LogisticRegression)(nil)

// NewLogisticRegression creates an untrained model with defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{Epochs: 12, LearnRate: 0.2, L2: 1e-4}
}

// fnv32 hashes a token into the feature space.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// features extracts a sparse feature vector as index->value.
func features(text string) map[int]float64 {
	grams := ngrams(text)
	toks := corpus.Tokenize(text)
	f := make(map[int]float64, len(grams)+handFeatures)
	for _, t := range grams {
		f[int(fnv32(t)%hashDim)] += 1
	}
	// Normalize term counts.
	if len(grams) > 0 {
		for k := range f {
			f[k] /= float64(len(grams))
		}
	}
	digits := 0
	for _, t := range toks {
		if t[0] >= '0' && t[0] <= '9' {
			digits++
		}
	}
	f[hashDim+0] = corpus.EmotionScore(text)
	f[hashDim+1] = math.Min(float64(len(toks))/40, 1)
	if len(toks) > 0 {
		f[hashDim+2] = float64(digits) / float64(len(toks))
	}
	f[hashDim+3] = 1 // bias
	return f
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Train implements TextClassifier.
func (lr *LogisticRegression) Train(items []corpus.Statement) error {
	if len(items) == 0 {
		return ErrNoData
	}
	if lr.Epochs <= 0 {
		lr.Epochs = 12
	}
	if lr.LearnRate <= 0 {
		lr.LearnRate = 0.2
	}
	lr.weights = make([]float64, hashDim+handFeatures)
	// SGD must not see the items in a class-sorted order (the tail class
	// would dominate the final weights), so shuffle deterministically.
	rng := rand.New(rand.NewSource(42))
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < lr.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		rate := lr.LearnRate / (1 + float64(epoch)*0.3)
		for _, idx := range order {
			s := items[idx]
			f := features(s.Text)
			var z float64
			for i, v := range f {
				z += lr.weights[i] * v
			}
			y := 0.0
			if s.IsFake() {
				y = 1.0
			}
			g := sigmoid(z) - y
			for i, v := range f {
				lr.weights[i] -= rate * (g*v + lr.L2*lr.weights[i])
			}
		}
	}
	lr.trained = true
	return nil
}

// Score implements TextClassifier.
func (lr *LogisticRegression) Score(text string) (float64, error) {
	if !lr.trained {
		return 0, ErrNotTrained
	}
	var z float64
	for i, v := range features(text) {
		z += lr.weights[i] * v
	}
	return sigmoid(z), nil
}

// ---------------------------------------------------------------------------
// Emotion-lexicon-only baseline (ablation for E11).
// ---------------------------------------------------------------------------

// EmotionOnly scores by the negative-emotion lexicon alone; Train fits a
// single threshold scale. It is the "no machine learning" ablation.
type EmotionOnly struct {
	scale   float64
	trained bool
}

var _ TextClassifier = (*EmotionOnly)(nil)

// NewEmotionOnly creates the baseline.
func NewEmotionOnly() *EmotionOnly { return &EmotionOnly{} }

// Train implements TextClassifier: it sets the scale so the mean fake
// emotion score maps to ~0.73.
func (e *EmotionOnly) Train(items []corpus.Statement) error {
	if len(items) == 0 {
		return ErrNoData
	}
	var sum float64
	n := 0
	for _, s := range items {
		if s.IsFake() {
			sum += corpus.EmotionScore(s.Text)
			n++
		}
	}
	if n == 0 || sum == 0 {
		e.scale = 10
	} else {
		e.scale = 1 / (sum / float64(n))
	}
	e.trained = true
	return nil
}

// Score implements TextClassifier.
func (e *EmotionOnly) Score(text string) (float64, error) {
	if !e.trained {
		return 0, ErrNotTrained
	}
	return math.Min(corpus.EmotionScore(text)*e.scale, 1), nil
}
