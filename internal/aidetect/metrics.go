package aidetect

import (
	"sort"

	"repro/internal/corpus"
)

// Evaluation summarizes binary-classification quality at a 0.5 threshold
// plus threshold-free AUC.
type Evaluation struct {
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
	N         int     `json:"n"`
}

// Evaluate scores every test statement and computes metrics treating
// "fake" as the positive class.
func Evaluate(c TextClassifier, test []corpus.Statement) (Evaluation, error) {
	scores := make([]float64, len(test))
	labels := make([]bool, len(test))
	for i, s := range test {
		sc, err := c.Score(s.Text)
		if err != nil {
			return Evaluation{}, err
		}
		scores[i] = sc
		labels[i] = s.IsFake()
	}
	return Metrics(scores, labels), nil
}

// Metrics computes evaluation metrics from raw scores and labels.
func Metrics(scores []float64, labels []bool) Evaluation {
	var tp, fp, tn, fn int
	for i, s := range scores {
		pred := s >= 0.5
		switch {
		case pred && labels[i]:
			tp++
		case pred && !labels[i]:
			fp++
		case !pred && labels[i]:
			fn++
		default:
			tn++
		}
	}
	ev := Evaluation{N: len(scores)}
	if len(scores) > 0 {
		ev.Accuracy = float64(tp+tn) / float64(len(scores))
	}
	if tp+fp > 0 {
		ev.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		ev.Recall = float64(tp) / float64(tp+fn)
	}
	if ev.Precision+ev.Recall > 0 {
		ev.F1 = 2 * ev.Precision * ev.Recall / (ev.Precision + ev.Recall)
	}
	ev.AUC = auc(scores, labels)
	return ev
}

// auc computes the area under the ROC curve by the rank statistic
// (equivalent to the Mann-Whitney U), with tie correction.
func auc(scores []float64, labels []bool) float64 {
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	npos, nneg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			npos++
		} else {
			nneg++
		}
	}
	if npos == 0 || nneg == 0 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Assign average ranks to ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i, p := range ps {
		if p.pos {
			rankSum += ranks[i]
		}
	}
	u := rankSum - float64(npos)*(float64(npos)+1)/2
	return u / (float64(npos) * float64(nneg))
}
