package aidetect

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Fake-multimedia detection (§IV component 2). Substitution note (see
// DESIGN.md): real deepfake detection needs video models and GPUs; offline
// we synthesize "media" as smooth random-walk byte signals (natural content
// is locally correlated) and model tampering as splicing uniform-noise
// regions (deepfake composites disturb local sensor-noise statistics). Two
// detectors exercise the same platform code path:
//
//   - reference-based: a perceptual hash registered on-chain at capture
//     time; any edit changes hash blocks (exact, like the paper's
//     blockchain provenance argument).
//   - blind: local-roughness analysis without the original, whose ROC vs
//     tamper strength is experiment E12.

// Media errors.
var (
	// ErrMediaTooSmall indicates content below the analyzable minimum.
	ErrMediaTooSmall = errors.New("aidetect: media too small")
)

// MediaMinSize is the minimum content size detectors accept.
const MediaMinSize = 256

// Media is a synthetic captured artifact (stands in for an image/video).
type Media struct {
	ID       string `json:"id"`
	DeviceID string `json:"deviceId"`
	Data     []byte `json:"-"`
}

// CaptureMedia synthesizes authentic content: a bounded random walk, so
// adjacent bytes are strongly correlated (smooth), as in natural signals.
func CaptureMedia(rng *rand.Rand, id, deviceID string, size int) Media {
	if size < MediaMinSize {
		size = MediaMinSize
	}
	data := make([]byte, size)
	cur := float64(rng.Intn(256))
	for i := range data {
		cur += rng.NormFloat64() * 3 // small steps: local smoothness
		if cur < 0 {
			cur = 0
		}
		if cur > 255 {
			cur = 255
		}
		data[i] = byte(cur)
	}
	return Media{ID: id, DeviceID: deviceID, Data: data}
}

// Tamper splices uniform-noise regions over a fraction (strength in [0,1])
// of the content, returning a new Media with the same identity claim —
// modelling a deepfake composite that reuses the original's provenance.
func Tamper(m Media, strength float64, rng *rand.Rand) Media {
	out := Media{ID: m.ID, DeviceID: m.DeviceID, Data: make([]byte, len(m.Data))}
	copy(out.Data, m.Data)
	if strength <= 0 {
		return out
	}
	if strength > 1 {
		strength = 1
	}
	// Tamper in contiguous patches (composited regions), not scattered
	// single bytes.
	total := int(float64(len(out.Data)) * strength)
	patch := 32
	for total > 0 {
		n := patch
		if n > total {
			n = total
		}
		start := rng.Intn(len(out.Data) - n + 1)
		for i := start; i < start+n; i++ {
			out.Data[i] = byte(rng.Intn(256))
		}
		total -= n
	}
	return out
}

// PHash is a 64-block perceptual hash: the content is split into 64 equal
// windows and each bit records whether the window mean exceeds the global
// mean. Small global adjustments (brightness) preserve it; local splices
// flip the affected blocks.
type PHash uint64

// ComputePHash derives the perceptual hash of media content.
func ComputePHash(data []byte) (PHash, error) {
	if len(data) < MediaMinSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrMediaTooSmall, len(data))
	}
	var global float64
	for _, b := range data {
		global += float64(b)
	}
	global /= float64(len(data))
	var h PHash
	win := len(data) / 64
	for i := 0; i < 64; i++ {
		var sum float64
		for j := i * win; j < (i+1)*win; j++ {
			sum += float64(data[j])
		}
		if sum/float64(win) > global {
			h |= 1 << uint(i)
		}
	}
	return h, nil
}

// Distance returns the Hamming distance between two perceptual hashes.
func (h PHash) Distance(other PHash) int {
	x := uint64(h ^ other)
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// ContentHash is the exact SHA-256 of the media bytes, registered on-chain
// at capture for strict provenance.
func ContentHash(data []byte) [sha256.Size]byte { return sha256.Sum256(data) }

// VerifyAgainstReference compares media against its registered capture
// record. It returns (tampered, phashDistance).
func VerifyAgainstReference(m Media, refContent [sha256.Size]byte, refPHash PHash) (bool, int, error) {
	ph, err := ComputePHash(m.Data)
	if err != nil {
		return false, 0, err
	}
	if ContentHash(m.Data) == refContent {
		return false, 0, nil
	}
	return true, refPHash.Distance(ph), nil
}

// RoughnessScore is the blind tamper statistic: the mean absolute
// difference between adjacent bytes, normalized so authentic random-walk
// content scores near 0 and fully uniform noise near 1.
func RoughnessScore(data []byte) (float64, error) {
	if len(data) < MediaMinSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrMediaTooSmall, len(data))
	}
	var sum float64
	for i := 1; i < len(data); i++ {
		sum += math.Abs(float64(data[i]) - float64(data[i-1]))
	}
	mean := sum / float64(len(data)-1)
	// Uniform noise has expected adjacent |diff| = 85.33; the random walk
	// sits near E|N(0,3)| ≈ 2.4. Map linearly and clamp.
	score := (mean - 4) / (85.33 - 4)
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return score, nil
}

// MediaDetector scores media for tampering without a reference, by
// windowed roughness: the score is the fraction of windows whose local
// roughness exceeds a noise threshold.
type MediaDetector struct {
	// Window is the analysis window size (default 64).
	Window int
	// Threshold is the per-window roughness cutoff (default 20).
	Threshold float64
}

// NewMediaDetector returns a detector with defaults.
func NewMediaDetector() *MediaDetector {
	return &MediaDetector{Window: 64, Threshold: 20}
}

// Score returns the fraction of windows flagged as tampered, in [0,1].
func (d *MediaDetector) Score(m Media) (float64, error) {
	if len(m.Data) < MediaMinSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrMediaTooSmall, len(m.Data))
	}
	win := d.Window
	if win <= 0 {
		win = 64
	}
	thr := d.Threshold
	if thr <= 0 {
		thr = 20
	}
	flagged, windows := 0, 0
	for start := 0; start+win <= len(m.Data); start += win {
		var sum float64
		for i := start + 1; i < start+win; i++ {
			sum += math.Abs(float64(m.Data[i]) - float64(m.Data[i-1]))
		}
		if sum/float64(win-1) > thr {
			flagged++
		}
		windows++
	}
	if windows == 0 {
		return 0, nil
	}
	return float64(flagged) / float64(windows), nil
}

// EncodePHash serializes a perceptual hash for on-chain storage.
func EncodePHash(h PHash) []byte {
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], uint64(h))
	return out[:]
}

// DecodePHash parses a serialized perceptual hash.
func DecodePHash(raw []byte) (PHash, error) {
	if len(raw) != 8 {
		return 0, fmt.Errorf("aidetect: phash length %d", len(raw))
	}
	return PHash(binary.BigEndian.Uint64(raw)), nil
}
