package aidetect

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCaptureMediaSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := CaptureMedia(rng, "img1", "cam1", 4096)
	score, err := RoughnessScore(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.1 {
		t.Fatalf("authentic roughness=%.3f; should be near 0", score)
	}
}

func TestTamperRaisesRoughness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := CaptureMedia(rng, "img1", "cam1", 4096)
	tampered := Tamper(m, 0.5, rng)
	orig, _ := RoughnessScore(m.Data)
	tamp, _ := RoughnessScore(tampered.Data)
	if tamp <= orig {
		t.Fatalf("tampered roughness %.3f <= original %.3f", tamp, orig)
	}
}

func TestTamperPreservesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := CaptureMedia(rng, "img1", "cam1", 1024)
	before := ContentHash(m.Data)
	Tamper(m, 0.9, rng)
	if ContentHash(m.Data) != before {
		t.Fatal("Tamper mutated its input")
	}
}

func TestTamperZeroStrengthIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := CaptureMedia(rng, "img1", "cam1", 1024)
	out := Tamper(m, 0, rng)
	if ContentHash(out.Data) != ContentHash(m.Data) {
		t.Fatal("zero-strength tamper changed content")
	}
}

func TestReferenceDetectionCatchesAnyEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := CaptureMedia(rng, "img1", "cam1", 4096)
	ref := ContentHash(m.Data)
	ph, err := ComputePHash(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Authentic copy passes.
	tampered, dist, err := VerifyAgainstReference(m, ref, ph)
	if err != nil || tampered || dist != 0 {
		t.Fatalf("authentic flagged: tampered=%v dist=%d err=%v", tampered, dist, err)
	}
	// Even a single-byte edit is caught.
	edited := Media{ID: m.ID, DeviceID: m.DeviceID, Data: append([]byte{}, m.Data...)}
	edited.Data[100] ^= 1
	tampered, _, err = VerifyAgainstReference(edited, ref, ph)
	if err != nil || !tampered {
		t.Fatalf("single-byte edit not caught: %v %v", tampered, err)
	}
}

func TestPHashLocalizesHeavyTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := CaptureMedia(rng, "img1", "cam1", 8192)
	ph, _ := ComputePHash(m.Data)
	heavy := Tamper(m, 0.6, rng)
	ph2, _ := ComputePHash(heavy.Data)
	if ph.Distance(ph2) == 0 {
		t.Fatal("heavy tamper left phash unchanged")
	}
}

func TestPHashDistanceSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := CaptureMedia(rng, "img1", "cam1", 2048)
	ph, _ := ComputePHash(m.Data)
	if ph.Distance(ph) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestBlindDetectorROCOrdering(t *testing.T) {
	// Detector score must increase monotonically (on average) with tamper
	// strength — the E12 curve's shape.
	rng := rand.New(rand.NewSource(8))
	det := NewMediaDetector()
	avg := func(strength float64) float64 {
		var sum float64
		for i := 0; i < 30; i++ {
			m := CaptureMedia(rng, "x", "cam", 4096)
			tm := Tamper(m, strength, rng)
			s, err := det.Score(tm)
			if err != nil {
				t.Fatal(err)
			}
			sum += s
		}
		return sum / 30
	}
	s0, s02, s05, s09 := avg(0), avg(0.2), avg(0.5), avg(0.9)
	if !(s0 < s02 && s02 < s05 && s05 < s09) {
		t.Fatalf("scores not increasing: %f %f %f %f", s0, s02, s05, s09)
	}
	if s0 > 0.05 {
		t.Fatalf("false-positive rate proxy %.3f too high", s0)
	}
	if s09 < 0.5 {
		t.Fatalf("strong tamper score %.3f too low", s09)
	}
}

func TestMediaTooSmall(t *testing.T) {
	small := Media{Data: make([]byte, 10)}
	if _, err := NewMediaDetector().Score(small); err == nil {
		t.Fatal("want error for tiny media")
	}
	if _, err := ComputePHash(small.Data); err == nil {
		t.Fatal("want error for tiny phash input")
	}
	if _, err := RoughnessScore(small.Data); err == nil {
		t.Fatal("want error for tiny roughness input")
	}
}

func TestPHashEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := CaptureMedia(rng, "x", "cam", 1024)
	ph, _ := ComputePHash(m.Data)
	got, err := DecodePHash(EncodePHash(ph))
	if err != nil {
		t.Fatal(err)
	}
	if got != ph {
		t.Fatal("phash round trip failed")
	}
	if _, err := DecodePHash([]byte{1, 2}); err == nil {
		t.Fatal("want error for short phash")
	}
}

// Property: detector score is always in [0,1] and any tampered copy of a
// capture differs in content hash when strength > 0 produced actual writes.
func TestMediaDetectorRangeProperty(t *testing.T) {
	det := NewMediaDetector()
	f := func(seed int64, strengthPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := CaptureMedia(rng, "x", "cam", 2048)
		tm := Tamper(m, float64(strengthPct%101)/100, rng)
		s, err := det.Score(tm)
		if err != nil {
			return false
		}
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMediaDetector(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := CaptureMedia(rng, "x", "cam", 1<<16)
	det := NewMediaDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Score(m)
	}
}
