// Package intervene implements the paper's §VII personalization challenge:
// "there is no single size fit all solution ... not all individuals will
// have similar effectiveness to a given intervention mechanism. People are
// asymmetrical updaters ... it is therefore important ... to identify,
// tag, and categorize the different personal characteristics for
// individual or different groups/communities, and develop various
// intervention technologies accordingly."
//
// The model: after a fake item has spread for a few rounds, the platform
// can deliver a correction to a *budgeted* number of reached users. A
// corrected user who accepts the correction stops spreading the fake and
// debunks it to their followers (a counter-cascade); acceptance depends on
// the user's receptivity and is higher when the correction is routed
// through the user's own community ("the fake news intervention can become
// more effective if statements come from similar individual or groups",
// §VI). Three targeting strategies are compared at equal budget:
//
//   - blanket: random reached users,
//   - hub: highest-degree reached users,
//   - personalized: ranked by expected corrections = receptivity ×
//     follower count, delivered via in-community messengers.
//
// Experiment E14 measures residual fake reach and corrected share.
package intervene

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/social"
)

// Strategy selects correction targets.
type Strategy string

// Targeting strategies.
const (
	StrategyBlanket      Strategy = "blanket"
	StrategyHub          Strategy = "hub"
	StrategyPersonalized Strategy = "personalized"
)

// AllStrategies lists every strategy for sweeps.
var AllStrategies = []Strategy{StrategyBlanket, StrategyHub, StrategyPersonalized}

// Errors returned by this package.
var (
	// ErrBadBudget indicates a non-positive correction budget.
	ErrBadBudget = errors.New("intervene: budget must be positive")
	// ErrUnknownStrategy indicates an unrecognized strategy.
	ErrUnknownStrategy = errors.New("intervene: unknown strategy")
)

// Profile is a user's intervention-relevant traits.
type Profile struct {
	// Receptivity is the probability of accepting a correction delivered
	// by a stranger. The population is asymmetric: most users are
	// moderately receptive, a stubborn tail is nearly immune.
	Receptivity float64
	// InGroupBonus multiplies acceptance when the correction arrives
	// through the user's own community.
	InGroupBonus float64
}

// Profiles assigns deterministic traits to every account in the network.
// The distribution encodes the paper's "asymmetrical updaters": ~25% of
// users are stubborn (receptivity ≤ 0.1), the rest spread between 0.3 and
// 0.9.
func Profiles(net *social.Network, seed int64) []Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Profile, net.Size())
	for i := range out {
		var r float64
		if rng.Float64() < 0.25 {
			r = 0.02 + 0.08*rng.Float64() // stubborn tail
		} else {
			r = 0.3 + 0.6*rng.Float64()
		}
		out[i] = Profile{Receptivity: r, InGroupBonus: 1.5}
	}
	return out
}

// Config drives one intervention simulation.
type Config struct {
	// HeadStart is the number of rounds the fake spreads uncorrected.
	HeadStart int
	// TotalRounds bounds the whole simulation.
	TotalRounds int
	// Budget is the number of corrections the platform can deliver.
	Budget int
	// Params tunes the fake item's cascade.
	Params social.SpreadParams
	// Seeds are the fake item's seed accounts.
	Seeds []int
	// RngSeed makes the run reproducible.
	RngSeed int64
}

// Result summarizes one simulated intervention.
type Result struct {
	Strategy Strategy `json:"strategy"`
	// EverMisled is the number of accounts the fake item ever reached —
	// the exposure the intervention failed to prevent.
	EverMisled int `json:"everMisled"`
	// FakeReach is the number of accounts holding the fake belief at the
	// end (reached and never corrected).
	FakeReach int `json:"fakeReach"`
	// Corrected is the number of accounts that accepted a correction.
	Corrected int `json:"corrected"`
	// InitialAccepts is how many of the budgeted deliveries were accepted
	// (per-budget efficiency of the targeting).
	InitialAccepts int `json:"initialAccepts"`
	// Budget echoes the configured budget.
	Budget int `json:"budget"`
}

// Run simulates a fake cascade with a budgeted correction campaign under
// the given strategy.
func Run(net *social.Network, profiles []Profile, strategy Strategy, cfg Config) (Result, error) {
	if cfg.Budget <= 0 {
		return Result{}, ErrBadBudget
	}
	rng := rand.New(rand.NewSource(cfg.RngSeed))

	// Phase 1: the fake spreads uncorrected for HeadStart rounds.
	reached := make(map[int]bool, len(cfg.Seeds))
	frontier := append([]int(nil), cfg.Seeds...)
	for _, s := range cfg.Seeds {
		reached[s] = true
	}
	corrected := make(map[int]bool)
	// immune users saw a debunk before the fake reached them
	// (inoculation/prebunking) and will not believe or spread it.
	immune := make(map[int]bool)
	spreadRound := func(active []int) []int {
		var next []int
		for _, u := range active {
			if corrected[u] {
				continue // corrected users stop spreading
			}
			prob := cfg.Params.BaseShare * cfg.Params.FakeBoost
			if net.UserAt(u).Kind != social.KindRegular {
				prob *= cfg.Params.BotBoost
			}
			if prob > 1 {
				prob = 1
			}
			for _, f := range net.Followers(u) {
				if reached[f] || corrected[f] || immune[f] {
					continue
				}
				if rng.Float64() < prob {
					reached[f] = true
					next = append(next, f)
				}
			}
		}
		return next
	}
	round := 0
	for ; round < cfg.HeadStart && len(frontier) > 0; round++ {
		frontier = spreadRound(frontier)
	}

	// Phase 2: the platform spends its correction budget.
	targets, err := pickTargets(net, profiles, strategy, reached, cfg.Budget, rng)
	if err != nil {
		return Result{}, err
	}
	debunkFrontier := deliver(net, profiles, strategy, targets, corrected, rng)
	initialAccepts := len(debunkFrontier)

	// Phase 3: fake spread and debunk counter-cascade proceed together.
	for ; round < cfg.TotalRounds && (len(frontier) > 0 || len(debunkFrontier) > 0); round++ {
		frontier = spreadRound(frontier)
		debunkFrontier = debunkRound(net, profiles, debunkFrontier, reached, corrected, immune, rng)
	}

	res := Result{
		Strategy: strategy, Budget: cfg.Budget,
		Corrected: len(corrected), InitialAccepts: initialAccepts,
		EverMisled: len(reached),
	}
	for u := range reached {
		if !corrected[u] {
			res.FakeReach++
		}
	}
	return res, nil
}

// pickTargets selects which reached users receive the correction.
func pickTargets(net *social.Network, profiles []Profile, strategy Strategy, reached map[int]bool, budget int, rng *rand.Rand) ([]int, error) {
	users := make([]int, 0, len(reached))
	for u := range reached {
		users = append(users, u)
	}
	sort.Ints(users) // determinism
	switch strategy {
	case StrategyBlanket:
		rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
	case StrategyHub:
		sort.SliceStable(users, func(i, j int) bool {
			return len(net.Followers(users[i])) > len(net.Followers(users[j]))
		})
	case StrategyPersonalized:
		// Expected corrections if targeted: own acceptance × (1 + reach
		// of their debunk) — receptive, connected users first.
		score := func(u int) float64 {
			p := profiles[u]
			return p.Receptivity * float64(1+len(net.Followers(u)))
		}
		sort.SliceStable(users, func(i, j int) bool { return score(users[i]) > score(users[j]) })
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, strategy)
	}
	if budget < len(users) {
		users = users[:budget]
	}
	return users, nil
}

// deliver attempts the corrections; accepted users become the debunk
// counter-cascade's frontier.
func deliver(net *social.Network, profiles []Profile, strategy Strategy, targets []int, corrected map[int]bool, rng *rand.Rand) []int {
	var frontier []int
	for _, u := range targets {
		p := profiles[u].Receptivity
		if strategy == StrategyPersonalized {
			// Personalized delivery routes the message through the user's
			// community, earning the in-group bonus.
			p *= profiles[u].InGroupBonus
		}
		if p > 1 {
			p = 1
		}
		if rng.Float64() < p {
			corrected[u] = true
			frontier = append(frontier, u)
		}
	}
	return frontier
}

// debunkRound spreads corrections from corrected users to their followers.
// A misled follower who accepts is corrected and keeps debunking; a
// not-yet-misled follower who accepts is inoculated (prebunking) and will
// never believe the fake, but does not propagate the debunk further.
// In-group hops get the acceptance bonus (§VI: corrections from similar
// groups are more effective).
func debunkRound(net *social.Network, profiles []Profile, frontier []int, reached, corrected, immune map[int]bool, rng *rand.Rand) []int {
	var next []int
	for _, u := range frontier {
		for _, f := range net.Followers(u) {
			if corrected[f] || immune[f] {
				continue
			}
			p := profiles[f].Receptivity
			if net.UserAt(u).Group == net.UserAt(f).Group {
				p *= profiles[f].InGroupBonus
			}
			if p > 1 {
				p = 1
			}
			if rng.Float64() >= p {
				continue
			}
			if reached[f] {
				corrected[f] = true
				next = append(next, f)
				continue
			}
			immune[f] = true
		}
	}
	return next
}
