package intervene

import (
	"errors"
	"testing"

	"repro/internal/social"
)

func testNet(t testing.TB) (*social.Network, []Profile) {
	t.Helper()
	cfg := social.DefaultConfig()
	cfg.Users, cfg.Bots, cfg.Cyborgs = 1500, 100, 60
	net, err := social.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, Profiles(net, 5)
}

func baseConfig(net *social.Network, rngSeed int64) Config {
	return Config{
		HeadStart:   3,
		TotalRounds: 14,
		Budget:      60,
		Params:      social.DefaultSpreadParams(),
		Seeds:       net.BotSeeds(6),
		RngSeed:     rngSeed,
	}
}

// strategyStats averages the metrics of repeated runs.
type strategyStats struct {
	everMisled, fakeReach, corrected, accepts float64
}

func avgRuns(t testing.TB, net *social.Network, profiles []Profile, s Strategy, runs int) strategyStats {
	t.Helper()
	var st strategyStats
	for i := 0; i < runs; i++ {
		cfg := baseConfig(net, int64(100+i))
		res, err := Run(net, profiles, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.everMisled += float64(res.EverMisled)
		st.fakeReach += float64(res.FakeReach)
		st.corrected += float64(res.Corrected)
		st.accepts += float64(res.InitialAccepts)
	}
	st.everMisled /= float64(runs)
	st.fakeReach /= float64(runs)
	st.corrected /= float64(runs)
	st.accepts /= float64(runs)
	return st
}

func TestProfilesShape(t *testing.T) {
	net, profiles := testNet(t)
	if len(profiles) != net.Size() {
		t.Fatalf("profiles=%d size=%d", len(profiles), net.Size())
	}
	stubborn := 0
	for _, p := range profiles {
		if p.Receptivity < 0 || p.Receptivity > 1 {
			t.Fatalf("receptivity=%f", p.Receptivity)
		}
		if p.Receptivity <= 0.1 {
			stubborn++
		}
	}
	frac := float64(stubborn) / float64(len(profiles))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("stubborn fraction=%.3f want ~0.25", frac)
	}
}

func TestRunGuards(t *testing.T) {
	net, profiles := testNet(t)
	cfg := baseConfig(net, 1)
	cfg.Budget = 0
	if _, err := Run(net, profiles, StrategyBlanket, cfg); !errors.Is(err, ErrBadBudget) {
		t.Fatalf("want ErrBadBudget, got %v", err)
	}
	cfg.Budget = 10
	if _, err := Run(net, profiles, Strategy("nope"), cfg); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("want ErrUnknownStrategy, got %v", err)
	}
}

func TestInterventionReducesFakeBelief(t *testing.T) {
	net, profiles := testNet(t)
	// Tiny vs full budget, averaged over runs (single runs are noisy
	// because all phases share one RNG stream).
	avg := func(budget int) (misled, residual float64) {
		const runs = 12
		for i := 0; i < runs; i++ {
			cfg := baseConfig(net, int64(500+i))
			cfg.Budget = budget
			res, err := Run(net, profiles, StrategyPersonalized, cfg)
			if err != nil {
				t.Fatal(err)
			}
			misled += float64(res.EverMisled)
			residual += float64(res.FakeReach)
		}
		return misled / runs, residual / runs
	}
	tinyMisled, tinyResidual := avg(1)
	fullMisled, fullResidual := avg(200)
	if fullMisled >= tinyMisled {
		t.Fatalf("bigger budget did not reduce exposure: %.1f vs %.1f", fullMisled, tinyMisled)
	}
	if fullResidual >= tinyResidual {
		t.Fatalf("bigger budget did not reduce residual belief: %.1f vs %.1f", fullResidual, tinyResidual)
	}
}

func TestPersonalizedPreventsMoreExposure(t *testing.T) {
	// The systematic orderings (see E14): personalized targeting stops
	// the fake cascade earlier (fewest ever-misled) and converts nearly
	// its whole budget, while blanket relies on the post-hoc debunk
	// cascade percolating through a larger misled population.
	net, profiles := testNet(t)
	const runs = 20
	blanket := avgRuns(t, net, profiles, StrategyBlanket, runs)
	pers := avgRuns(t, net, profiles, StrategyPersonalized, runs)
	if pers.everMisled >= blanket.everMisled {
		t.Fatalf("personalized misled %.1f >= blanket %.1f", pers.everMisled, blanket.everMisled)
	}
	if pers.accepts <= blanket.accepts {
		t.Fatalf("personalized accepts %.1f <= blanket %.1f", pers.accepts, blanket.accepts)
	}
}

func TestPersonalizedBeatsHubOnExposure(t *testing.T) {
	// Degree-only targeting is receptivity-blind: budget lands on stubborn
	// hubs and is wasted at delivery — the §VII argument for
	// personalization.
	net, profiles := testNet(t)
	const runs = 20
	hub := avgRuns(t, net, profiles, StrategyHub, runs)
	pers := avgRuns(t, net, profiles, StrategyPersonalized, runs)
	if pers.everMisled >= hub.everMisled {
		t.Fatalf("personalized misled %.1f >= hub %.1f", pers.everMisled, hub.everMisled)
	}
	if pers.accepts <= hub.accepts {
		t.Fatalf("personalized accepts %.1f <= hub %.1f", pers.accepts, hub.accepts)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	net, profiles := testNet(t)
	cfg := baseConfig(net, 7)
	a, err := Run(net, profiles, StrategyPersonalized, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, profiles, StrategyPersonalized, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCorrectedNeverExceedsReached(t *testing.T) {
	net, profiles := testNet(t)
	for _, s := range AllStrategies {
		res, err := Run(net, profiles, s, baseConfig(net, 9))
		if err != nil {
			t.Fatal(err)
		}
		if res.FakeReach < 0 || res.Corrected < 0 {
			t.Fatalf("negative counts: %+v", res)
		}
	}
}
