package ingest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/corpus"
)

// FuzzQueueWAL exercises the queue WAL codec against hostile bytes:
// any record that decodes must re-encode to the identical bytes
// (round-trip identity is what replay correctness rests on), and no
// input — truncated headers, hostile length fields, trailing garbage —
// may panic or over-allocate.
func FuzzQueueWAL(f *testing.F) {
	f.Add(encodeRecord(opEnqueue, 0, &Article{Source: "wire", Topic: "econ", Text: "senate passes budget"}))
	f.Add(encodeRecord(opAck, 17, nil))
	f.Add(encodeRecord(opDead, 1<<40, nil))
	f.Add([]byte{})
	f.Add([]byte{recVersion, opEnqueue})
	// Hostile length: claims 4GiB of text.
	hostile := encodeRecord(opAck, 3, nil)
	hostile[1] = opEnqueue
	hostile = binary.BigEndian.AppendUint32(hostile, 0xFFFFFFFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, rec []byte) {
		op, seq, art, err := decodeRecord(rec)
		if err != nil {
			return
		}
		out := encodeRecord(op, seq, &art)
		if !bytes.Equal(out, rec) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", rec, out)
		}
		op2, seq2, art2, err := decodeRecord(out)
		if err != nil || op2 != op || seq2 != seq || art2 != art {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzExtract checks the extraction stage never emits invalid UTF-8 or
// exceeds its byte cap, whatever the input markup.
func FuzzExtract(f *testing.F) {
	f.Add("<p>hello &amp; goodbye</p>", 16)
	f.Add("no markup at all", 4)
	f.Add("<<<>>>&&&", 0)
	f.Fuzz(func(t *testing.T, raw string, maxBytes int) {
		if maxBytes > 1<<20 {
			maxBytes = 1 << 20
		}
		text, _ := Extract(raw, maxBytes)
		limit := maxBytes
		if limit <= 0 {
			limit = DefaultMaxBodyBytes
		}
		if len(text) > limit {
			t.Fatalf("extracted %d bytes > cap %d", len(text), limit)
		}
		_ = corpus.Tokenize(text) // must not panic on any extraction output
	})
}
