package ingest

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeClock is a manually advanced clock for deterministic lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQueue(t *testing.T, wal store.Log, cfg QueueConfig) (*Queue, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1562500000, 0)}
	cfg.Now = clk.now
	q, err := NewQueue(wal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, clk
}

func TestQueueEnqueueLeaseAck(t *testing.T) {
	q, _ := newTestQueue(t, nil, QueueConfig{})
	seqA, err := q.Enqueue(Article{Source: "wire", Topic: "econ", Text: "first"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(Article{Source: "wire", Topic: "econ", Text: "second"}); err != nil {
		t.Fatal(err)
	}
	seq, a, ok := q.Lease()
	if !ok || seq != seqA || a.Text != "first" {
		t.Fatalf("lease = (%d, %+v, %v), want oldest first", seq, a, ok)
	}
	if err := q.Ack(seq); err != nil {
		t.Fatal(err)
	}
	if err := q.Ack(seq); err != nil {
		t.Fatalf("duplicate ack not a no-op: %v", err)
	}
	st := q.Stats()
	if st.Depth != 1 || st.Acked != 1 || st.Enqueued != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueCapacityShedsFast(t *testing.T) {
	q, _ := newTestQueue(t, nil, QueueConfig{Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue(Article{Text: fmt.Sprintf("a%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Enqueue(Article{Text: "overflow"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Settling one item frees capacity.
	seq, _, _ := q.Lease()
	if err := q.Ack(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(Article{Text: "fits now"}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueNackBacksOffThenRedelivers(t *testing.T) {
	q, clk := newTestQueue(t, nil, QueueConfig{RetryBackoff: time.Second})
	if _, err := q.Enqueue(Article{Text: "flaky"}); err != nil {
		t.Fatal(err)
	}
	seq, _, ok := q.Lease()
	if !ok {
		t.Fatal("no lease")
	}
	if err := q.Nack(seq, "transient"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := q.Lease(); ok {
		t.Fatal("leased during backoff window")
	}
	clk.advance(1100 * time.Millisecond)
	if _, _, ok := q.Lease(); !ok {
		t.Fatal("not redelivered after backoff")
	}
	// Second nack backs off twice as long.
	if err := q.Nack(seq, "transient again"); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond)
	if _, _, ok := q.Lease(); ok {
		t.Fatal("exponential backoff not applied")
	}
	clk.advance(time.Second)
	if _, _, ok := q.Lease(); !ok {
		t.Fatal("not redelivered after doubled backoff")
	}
	if st := q.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

func TestQueueLeaseTTLRedelivery(t *testing.T) {
	q, clk := newTestQueue(t, nil, QueueConfig{LeaseTTL: time.Minute})
	if _, err := q.Enqueue(Article{Text: "slow worker"}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := q.Lease(); !ok {
		t.Fatal("no lease")
	}
	if _, _, ok := q.Lease(); ok {
		t.Fatal("double-leased a held item")
	}
	clk.advance(61 * time.Second)
	if _, _, ok := q.Lease(); !ok {
		t.Fatal("expired lease not redelivered")
	}
	if st := q.Stats(); st.Redelivered != 1 {
		t.Fatalf("redelivered = %d, want 1", st.Redelivered)
	}
}

func TestQueuePoisonItemDeadLetters(t *testing.T) {
	q, clk := newTestQueue(t, nil, QueueConfig{MaxAttempts: 3, RetryBackoff: time.Millisecond})
	if _, err := q.Enqueue(Article{Source: "mill", Text: "poison"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(Article{Source: "wire", Text: "healthy"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, a, ok := q.Lease()
		if !ok || a.Text != "poison" {
			t.Fatalf("attempt %d: lease = (%v, %+v)", i, ok, a)
		}
		if err := q.Nack(seq, "boom"); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	// The poison item is out of attempts: only the healthy one leases.
	seq, a, ok := q.Lease()
	if !ok || a.Text != "healthy" {
		t.Fatalf("after dead-letter: lease = (%v, %+v)", ok, a)
	}
	_ = seq
	dead := q.Dead()
	if len(dead) != 1 || dead[0].Article.Text != "poison" || dead[0].Attempts != 3 {
		t.Fatalf("dead = %+v", dead)
	}
	if st := q.Stats(); st.Dead != 1 || st.Depth != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueueWALRecovery is the crash-consistency contract: after a
// "crash" (reopening the WAL file), acked items stay settled, dead
// items stay dead, and everything else — including items leased at
// crash time — redelivers exactly once each.
func TestQueueWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	wal, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	q, clk := newTestQueue(t, wal, QueueConfig{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	for _, txt := range []string{"acked", "leased-at-crash", "poison", "never-leased"} {
		if _, err := q.Enqueue(Article{Source: "wire", Topic: "econ", Text: txt}); err != nil {
			t.Fatal(err)
		}
	}
	// Settle one, hold a lease over the crash, exhaust the poison item,
	// leave one untouched.
	s, a, ok := q.Lease()
	if !ok || a.Text != "acked" {
		t.Fatalf("lease = %+v", a)
	}
	if err := q.Ack(s); err != nil {
		t.Fatal(err)
	}
	if _, a, ok = q.Lease(); !ok || a.Text != "leased-at-crash" {
		t.Fatalf("lease = %+v", a)
	}
	for i := 0; i < 2; i++ {
		s, a, ok = q.Lease() // leased-at-crash is held, so poison is oldest
		if !ok || a.Text != "poison" {
			t.Fatalf("attempt %d: lease = (%v, %+v)", i, ok, a)
		}
		if err := q.Nack(s, "poison"); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	if d := q.Dead(); len(d) != 1 || d[0].Article.Text != "poison" {
		t.Fatalf("dead = %+v", d)
	}
	if err := wal.Close(); err != nil { // crash: no graceful queue Close
		t.Fatal(err)
	}

	wal2, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	q2, clk2 := newTestQueue(t, wal2, QueueConfig{MaxAttempts: 2})
	clk2.t = clk.t
	var recovered []string
	for {
		s, a, ok := q2.Lease()
		if !ok {
			break
		}
		recovered = append(recovered, a.Text)
		if err := q2.Ack(s); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]bool{"leased-at-crash": true, "never-leased": true}
	if len(recovered) != len(want) {
		t.Fatalf("recovered %v, want exactly %v", recovered, want)
	}
	for _, txt := range recovered {
		if !want[txt] {
			t.Fatalf("recovered %q: acked or dead item came back", txt)
		}
	}
}

func TestQueueRejectsCorruptWAL(t *testing.T) {
	wal := store.NewMemLog()
	if _, err := wal.Append([]byte{recVersion, opEnqueue, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueue(wal, QueueConfig{}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
}

func TestExtract(t *testing.T) {
	got, trunc := Extract("  <p>Senate&nbsp;passes   the&amp;budget</p>\n<script>junk()</script> bill ", 0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if got != "Senate passes the&budget junk() bill" {
		t.Fatalf("extract = %q", got)
	}
	long, trunc := Extract("wéwéwéwéwé", 5)
	if !trunc {
		t.Fatal("expected truncation")
	}
	if long != "wéwé" && long != "wéw" {
		// 5 bytes cuts inside the second é (2-byte rune): must back up to
		// a rune boundary, never emit invalid UTF-8.
		t.Fatalf("truncated = %q", long)
	}
	for _, r := range long {
		if r == 0xFFFD {
			t.Fatalf("invalid UTF-8 after truncation: %q", long)
		}
	}
}
