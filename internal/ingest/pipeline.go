package ingest

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/factdb"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// itemIDFor derives the deterministic chain id of an ingested article
// from its normalized content key. Two fetches of the same story — from
// two sources, two workers, or the same item redelivered after a crash
// — collide on this id, and the supply-chain contract's duplicate-id
// rejection turns the second publish into a dedup ack. This is what
// makes ingest publishes effectively exactly-once without distributed
// coordination.
func itemIDFor(text string) string {
	return "ing-" + factdb.ContentKey(text)[:24]
}

// ItemIDFor exposes the deterministic id derivation so callers (tests,
// experiments, crawl tooling) can locate an ingested article on chain.
// text must be the extracted body — pass raw fetches through Extract
// first.
func ItemIDFor(text string) string { return itemIDFor(text) }

// PipelineConfig tunes the ingest pipeline.
type PipelineConfig struct {
	// Workers is the number of concurrent pipeline workers. Default 4.
	Workers int
	// MaxBodyBytes caps extracted bodies. Default DefaultMaxBodyBytes.
	MaxBodyBytes int
	// PollInterval paces idle workers and the receipt ack loop.
	// Default 2ms.
	PollInterval time.Duration
	// AckTimeout nacks a submitted publish whose receipt never lands
	// (e.g. the tx was shed from the mempool). Default 10s.
	AckTimeout time.Duration
}

func (c *PipelineConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * time.Second
	}
}

// PipelineStats is the pipeline's observable state.
type PipelineStats struct {
	Queue QueueStats `json:"queue"`
	// Published counts articles whose publish committed OK.
	Published uint64 `json:"published"`
	// Deduped counts articles acked because their content was already on
	// chain (duplicate fetch, or a redelivery after a crash).
	Deduped uint64 `json:"deduped"`
	// Truncated counts bodies cut at MaxBodyBytes during extraction.
	Truncated uint64 `json:"truncated"`
	// Failed counts attempts that nacked (publish error or failed
	// receipt).
	Failed uint64 `json:"failed"`
	// AwaitingCommit is the number of submitted publishes whose receipt
	// has not landed yet.
	AwaitingCommit int `json:"awaitingCommit"`
}

// pendingTx is one submitted publish awaiting its commit receipt.
type pendingTx struct {
	seq      uint64
	itemID   string
	deadline time.Time
}

// Pipeline drains the ingest queue with concurrent workers: each item
// is extracted (size-capped), its body chunked into the blob store, and
// a reference publish submitted to the mempool under a deterministic
// content-derived id. The worker does NOT wait for the commit — an ack
// loop polls the receipt store and settles queue items as their
// publishes commit, so ingest throughput is decoupled from block
// cadence and the commit path never blocks on ingest work.
type Pipeline struct {
	p     *platform.Platform
	q     *Queue
	cfg   PipelineConfig
	actor *platform.Actor

	mu        sync.Mutex
	pending   map[ledger.TxID]pendingTx
	published uint64
	deduped   uint64
	truncated uint64
	failed    uint64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	tmPublished  *telemetry.Counter
	tmDeduped    *telemetry.Counter
	tmTruncated  *telemetry.Counter
	tmFailed     *telemetry.Counter
	tmPublishSec *telemetry.Histogram
}

// NewPipeline builds a pipeline draining q into p. Call Start to run
// the workers.
func NewPipeline(p *platform.Platform, q *Queue, cfg PipelineConfig) *Pipeline {
	cfg.fill()
	return &Pipeline{
		p:       p,
		q:       q,
		cfg:     cfg,
		actor:   p.NewActor("ingest-pipeline"),
		pending: make(map[ledger.TxID]pendingTx),
		stop:    make(chan struct{}),
	}
}

// Queue exposes the pipeline's work queue (producers enqueue here).
func (pl *Pipeline) Queue() *Queue { return pl.q }

// Instrument registers the trustnews_ingest_* pipeline instruments on
// reg (nil disables) and forwards to the queue's.
func (pl *Pipeline) Instrument(reg *telemetry.Registry) {
	pl.q.Instrument(reg)
	pl.tmPublished = reg.Counter("trustnews_ingest_published_total", "Ingested articles whose publish committed.")
	pl.tmDeduped = reg.Counter("trustnews_ingest_deduped_total", "Ingested articles already on chain (content-key dedup).")
	pl.tmTruncated = reg.Counter("trustnews_ingest_truncated_total", "Ingested bodies cut at the extraction size cap.")
	pl.tmFailed = reg.Counter("trustnews_ingest_failed_total", "Ingest attempts that failed and will retry.")
	pl.tmPublishSec = reg.Histogram("trustnews_ingest_publish_seconds", "Extract + blob put + submit time per article.", nil)
}

// Start launches the workers and the receipt ack loop.
func (pl *Pipeline) Start() {
	for i := 0; i < pl.cfg.Workers; i++ {
		pl.wg.Add(1)
		go pl.worker()
	}
	pl.wg.Add(1)
	go pl.ackLoop()
}

// Stop halts workers and the ack loop and waits for them. In-flight
// leases simply expire; their items redeliver on the next Start or
// after a restart's WAL replay.
func (pl *Pipeline) Stop() {
	pl.once.Do(func() { close(pl.stop) })
	pl.wg.Wait()
}

// Enqueue adds one article to the pipeline's durable queue.
func (pl *Pipeline) Enqueue(a Article) (uint64, error) {
	return pl.q.Enqueue(a)
}

// Stats reports pipeline + queue accounting.
func (pl *Pipeline) Stats() PipelineStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return PipelineStats{
		Queue:          pl.q.Stats(),
		Published:      pl.published,
		Deduped:        pl.deduped,
		Truncated:      pl.truncated,
		Failed:         pl.failed,
		AwaitingCommit: len(pl.pending),
	}
}

// worker leases items and runs them through extract → blob → submit.
func (pl *Pipeline) worker() {
	defer pl.wg.Done()
	for {
		select {
		case <-pl.stop:
			return
		default:
		}
		seq, art, ok := pl.q.Lease()
		if !ok {
			select {
			case <-pl.stop:
				return
			case <-time.After(pl.cfg.PollInterval):
			}
			continue
		}
		pl.process(seq, art)
	}
}

// process runs one leased item to the submitted state (or settles it).
func (pl *Pipeline) process(seq uint64, art Article) {
	var start time.Time
	if pl.tmPublishSec != nil {
		start = time.Now()
	}
	text, truncated := Extract(art.Text, pl.cfg.MaxBodyBytes)
	if truncated {
		pl.mu.Lock()
		pl.truncated++
		pl.mu.Unlock()
		pl.tmTruncated.Inc()
	}
	if text == "" {
		// Nothing extractable: not retryable, straight to settled. An
		// empty body would be rejected by the contract every attempt.
		_ = pl.q.Nack(seq, "empty body after extraction")
		pl.countFail()
		return
	}
	id := itemIDFor(text)
	if _, err := supplychain.GetItem(pl.p.Engine(), pl.p.Authority(), id); err == nil {
		// Already on chain: duplicate fetch or crash redelivery.
		_ = pl.q.Ack(seq)
		pl.mu.Lock()
		pl.deduped++
		pl.mu.Unlock()
		pl.tmDeduped.Inc()
		return
	}
	txID, err := pl.submitPublish(id, art, text)
	if err != nil {
		_ = pl.q.Nack(seq, fmt.Sprintf("submit: %v", err))
		pl.countFail()
		return
	}
	pl.mu.Lock()
	pl.pending[txID] = pendingTx{seq: seq, itemID: id, deadline: time.Now().Add(pl.cfg.AckTimeout)}
	pl.mu.Unlock()
	if pl.tmPublishSec != nil {
		pl.tmPublishSec.Observe(time.Since(start).Seconds())
	}
}

// submitPublish chunks the body off-chain and submits (not commits) a
// reference publish.
func (pl *Pipeline) submitPublish(id string, art Article, text string) (ledger.TxID, error) {
	cid, err := pl.p.Blobs().PutString(text)
	if err != nil {
		return ledger.TxID{}, fmt.Errorf("store body: %w", err)
	}
	payload, err := supplychain.PublishRefPayload(id, art.Topic, string(cid), len(text), nil, "")
	if err != nil {
		return ledger.TxID{}, err
	}
	tx, err := pl.actor.Send("news.publish", payload)
	if err != nil {
		return ledger.TxID{}, err
	}
	return tx.ID(), nil
}

// ackLoop settles submitted publishes as their receipts land: an OK
// receipt acks the queue item; a failed receipt acks it anyway when the
// item exists on chain (a racing worker or a pre-crash publish won) and
// nacks it otherwise. Pending publishes whose receipt never lands nack
// at their deadline (the tx was lost, e.g. shed from the mempool).
func (pl *Pipeline) ackLoop() {
	defer pl.wg.Done()
	t := time.NewTicker(pl.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-pl.stop:
			return
		case <-t.C:
		}
		pl.mu.Lock()
		ids := make([]ledger.TxID, 0, len(pl.pending))
		for id := range pl.pending {
			ids = append(ids, id)
		}
		pl.mu.Unlock()
		now := time.Now()
		for _, txID := range ids {
			rec, have := pl.p.Receipt(txID)
			pl.mu.Lock()
			pt, ok := pl.pending[txID]
			if !ok {
				pl.mu.Unlock()
				continue
			}
			if !have {
				if now.After(pt.deadline) {
					delete(pl.pending, txID)
					pl.mu.Unlock()
					_ = pl.q.Nack(pt.seq, "publish receipt timed out")
					pl.countFail()
					continue
				}
				pl.mu.Unlock()
				continue
			}
			delete(pl.pending, txID)
			pl.mu.Unlock()
			switch {
			case rec.OK:
				_ = pl.q.Ack(pt.seq)
				pl.mu.Lock()
				pl.published++
				pl.mu.Unlock()
				pl.tmPublished.Inc()
			default:
				if _, err := supplychain.GetItem(pl.p.Engine(), pl.p.Authority(), pt.itemID); err == nil {
					_ = pl.q.Ack(pt.seq)
					pl.mu.Lock()
					pl.deduped++
					pl.mu.Unlock()
					pl.tmDeduped.Inc()
				} else {
					_ = pl.q.Nack(pt.seq, fmt.Sprintf("publish failed: %s", rec.Err))
					pl.countFail()
				}
			}
		}
	}
}

func (pl *Pipeline) countFail() {
	pl.mu.Lock()
	pl.failed++
	pl.mu.Unlock()
	pl.tmFailed.Inc()
}
