package ingest

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// QueueConfig tunes the durable work queue.
type QueueConfig struct {
	// Capacity bounds live items (pending + leased); Enqueue beyond it
	// fails fast with ErrQueueFull so producers shed instead of growing
	// the WAL without bound. Default 4096.
	Capacity int
	// MaxAttempts dead-letters an item after this many leases. Default 5.
	MaxAttempts int
	// LeaseTTL redelivers an item whose worker went silent. Default 30s.
	LeaseTTL time.Duration
	// RetryBackoff is the base delay after a Nack; it doubles per
	// attempt. Default 250ms.
	RetryBackoff time.Duration
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c *QueueConfig) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// queueItem is one live article plus its delivery state.
type queueItem struct {
	seq         uint64
	art         Article
	attempts    int
	notBefore   time.Time // backoff gate; zero = leasable now
	leasedUntil time.Time // zero = not leased
}

// DeadItem is a poison article parked after exhausting its attempts.
type DeadItem struct {
	Seq      uint64  `json:"seq"`
	Article  Article `json:"article"`
	Attempts int     `json:"attempts"`
	Reason   string  `json:"reason"`
}

// QueueStats is the queue's observable state.
type QueueStats struct {
	// Depth is the number of live items (pending + leased).
	Depth int `json:"depth"`
	// Inflight is the number of currently leased, unexpired items.
	Inflight int `json:"inflight"`
	// Dead is the number of dead-lettered items.
	Dead int `json:"dead"`
	// Enqueued, Acked, Retries, Redelivered count since open (replayed
	// live items count as enqueued).
	Enqueued    uint64 `json:"enqueued"`
	Acked       uint64 `json:"acked"`
	Retries     uint64 `json:"retries"`
	Redelivered uint64 `json:"redelivered"`
}

// Queue is the durable, bounded ingest work queue. Every accepted
// article is WAL-logged before Enqueue returns; acks and dead-letter
// decisions are logged too, so a crashed node replays the log and
// resumes with exactly the unacknowledged work. Safe for concurrent
// use.
type Queue struct {
	mu  sync.Mutex
	cfg QueueConfig
	wal store.Log

	items   map[uint64]*queueItem
	order   []uint64 // live seqs, ascending (lease scans from the front)
	dead    []DeadItem
	nextSeq uint64

	enqueued, acked, retries, redelivered uint64
	closed                                bool

	tmDepth    *telemetry.Gauge
	tmEnqueued *telemetry.Counter
	tmAcked    *telemetry.Counter
	tmRetries  *telemetry.Counter
	tmDead     *telemetry.Counter
}

// NewQueue opens a queue over the given WAL, replaying it to recover
// live items. Items that were leased at crash time have no surviving
// lease, so they are immediately redeliverable; items acked or
// dead-lettered before the crash stay settled. A nil log gets an
// in-memory one (tests, ephemeral nodes).
func NewQueue(wal store.Log, cfg QueueConfig) (*Queue, error) {
	cfg.fill()
	if wal == nil {
		wal = store.NewMemLog()
	}
	q := &Queue{cfg: cfg, wal: wal, items: make(map[uint64]*queueItem)}
	n := wal.Len()
	for i := uint64(0); i < n; i++ {
		rec, err := wal.Get(i)
		if err != nil {
			return nil, fmt.Errorf("ingest: replay record %d: %w", i, err)
		}
		op, seq, art, err := decodeRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("ingest: replay record %d: %w", i, err)
		}
		if seq >= q.nextSeq {
			q.nextSeq = seq + 1
		}
		switch op {
		case opEnqueue:
			q.items[seq] = &queueItem{seq: seq, art: art}
		case opAck:
			delete(q.items, seq)
		case opDead:
			if it, ok := q.items[seq]; ok {
				q.dead = append(q.dead, DeadItem{Seq: seq, Article: it.art, Attempts: it.attempts, Reason: "replayed dead-letter"})
				delete(q.items, seq)
			}
		}
	}
	q.order = make([]uint64, 0, len(q.items))
	for seq := range q.items {
		q.order = append(q.order, seq)
	}
	sort.Slice(q.order, func(i, j int) bool { return q.order[i] < q.order[j] })
	q.enqueued = uint64(len(q.items))
	return q, nil
}

// Instrument registers the trustnews_ingest_* queue instruments on reg
// (nil disables).
func (q *Queue) Instrument(reg *telemetry.Registry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tmDepth = reg.Gauge("trustnews_ingest_queue_depth", "Live ingest queue items (pending + leased).")
	q.tmEnqueued = reg.Counter("trustnews_ingest_enqueued_total", "Articles accepted into the ingest queue.")
	q.tmAcked = reg.Counter("trustnews_ingest_acked_total", "Ingest queue items acknowledged (published or deduplicated).")
	q.tmRetries = reg.Counter("trustnews_ingest_retries_total", "Ingest queue negative acknowledgements (item will retry).")
	q.tmDead = reg.Counter("trustnews_ingest_dead_total", "Ingest queue items dead-lettered after exhausting attempts.")
	q.tmDepth.Set(float64(len(q.order)))
}

// Enqueue accepts one article: it is durable (WAL-appended) before the
// call returns. Fails fast with ErrQueueFull at capacity.
func (q *Queue) Enqueue(a Article) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	if len(q.order) >= q.cfg.Capacity {
		return 0, ErrQueueFull
	}
	seq := q.nextSeq
	if _, err := q.wal.Append(encodeRecord(opEnqueue, seq, &a)); err != nil {
		return 0, fmt.Errorf("ingest: wal enqueue: %w", err)
	}
	q.nextSeq++
	q.items[seq] = &queueItem{seq: seq, art: a}
	q.order = append(q.order, seq)
	q.enqueued++
	q.tmEnqueued.Inc()
	q.tmDepth.Set(float64(len(q.order)))
	return seq, nil
}

// Lease hands the oldest deliverable item to a worker for up to
// LeaseTTL. Items still backing off or already leased are skipped; an
// item whose lease expired is redelivered (counted in Redelivered). An
// item presented for its (MaxAttempts+1)-th delivery is dead-lettered
// instead. Returns ok=false when nothing is deliverable right now.
func (q *Queue) Lease() (seq uint64, a Article, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	for i := 0; i < len(q.order); i++ {
		it := q.items[q.order[i]]
		if !it.leasedUntil.IsZero() && now.Before(it.leasedUntil) {
			continue // held by a live worker
		}
		if now.Before(it.notBefore) {
			continue // backing off
		}
		if it.attempts >= q.cfg.MaxAttempts {
			q.deadLetterLocked(it, i, "max attempts exhausted")
			i-- // order shrank at i
			continue
		}
		if !it.leasedUntil.IsZero() {
			q.redelivered++
		}
		it.attempts++
		it.leasedUntil = now.Add(q.cfg.LeaseTTL)
		return it.seq, it.art, true
	}
	return 0, Article{}, false
}

// Ack settles an item for good: the decision is WAL-logged, so a
// replay never redelivers it. Acking an unknown (already settled) seq
// is a no-op, which makes duplicate acks from racing workers safe.
func (q *Queue) Ack(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if _, ok := q.items[seq]; !ok {
		return nil
	}
	if _, err := q.wal.Append(encodeRecord(opAck, seq, nil)); err != nil {
		return fmt.Errorf("ingest: wal ack: %w", err)
	}
	q.removeLocked(seq)
	q.acked++
	q.tmAcked.Inc()
	q.tmDepth.Set(float64(len(q.order)))
	return nil
}

// Nack reports a failed attempt: the item backs off exponentially in
// its attempt count and, once MaxAttempts is exhausted, dead-letters.
func (q *Queue) Nack(seq uint64, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	it, ok := q.items[seq]
	if !ok {
		return nil
	}
	it.leasedUntil = time.Time{}
	if it.attempts >= q.cfg.MaxAttempts {
		for i, s := range q.order {
			if s == seq {
				q.deadLetterLocked(it, i, reason)
				break
			}
		}
		return nil
	}
	shift := it.attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	it.notBefore = q.cfg.Now().Add(q.cfg.RetryBackoff << shift)
	q.retries++
	q.tmRetries.Inc()
	return nil
}

// deadLetterLocked parks a poison item; order index i points at it.
func (q *Queue) deadLetterLocked(it *queueItem, i int, reason string) {
	// Best effort: a WAL write failure leaves the item live, which only
	// means it is re-examined (and re-dead-lettered) after a restart.
	_, _ = q.wal.Append(encodeRecord(opDead, it.seq, nil))
	q.dead = append(q.dead, DeadItem{Seq: it.seq, Article: it.art, Attempts: it.attempts, Reason: reason})
	delete(q.items, it.seq)
	q.order = append(q.order[:i], q.order[i+1:]...)
	q.tmDead.Inc()
	q.tmDepth.Set(float64(len(q.order)))
}

// removeLocked drops a settled seq from the live set.
func (q *Queue) removeLocked(seq uint64) {
	delete(q.items, seq)
	for i, s := range q.order {
		if s == seq {
			q.order = append(q.order[:i], q.order[i+1:]...)
			return
		}
	}
}

// Dead returns the dead-lettered items, oldest first.
func (q *Queue) Dead() []DeadItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]DeadItem(nil), q.dead...)
}

// Depth returns the number of live items.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// Stats reports queue accounting.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	inflight := 0
	for _, seq := range q.order {
		if it := q.items[seq]; !it.leasedUntil.IsZero() && now.Before(it.leasedUntil) {
			inflight++
		}
	}
	return QueueStats{
		Depth:       len(q.order),
		Inflight:    inflight,
		Dead:        len(q.dead),
		Enqueued:    q.enqueued,
		Acked:       q.acked,
		Retries:     q.retries,
		Redelivered: q.redelivered,
	}
}

// Close flushes and closes the WAL. Further mutations fail ErrClosed.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	return q.wal.Close()
}
