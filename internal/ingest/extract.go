package ingest

import (
	"strings"
	"unicode/utf8"
)

// DefaultMaxBodyBytes caps extracted bodies; crawled pages routinely
// embed multi-megabyte boilerplate that has no business on a chain.
const DefaultMaxBodyBytes = 64 << 10

// Extract normalizes a fetched body into indexable text: markup tags
// are stripped, the common HTML entities decode, whitespace collapses
// to single spaces, and the result is capped at maxBytes (on a rune
// boundary, so truncation never produces invalid UTF-8). maxBytes <= 0
// means DefaultMaxBodyBytes. The second return reports truncation.
func Extract(raw string, maxBytes int) (string, bool) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	var b strings.Builder
	b.Grow(len(raw))
	inTag := false
	pendingSpace := false
	for _, r := range raw {
		switch {
		case inTag:
			if r == '>' {
				inTag = false
				pendingSpace = b.Len() > 0
			}
		case r == '<':
			inTag = true
		case r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\v' || r == '\f':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteRune(r)
		}
	}
	text := decodeEntities(b.String())
	text = strings.TrimRight(text, " ")
	if len(text) <= maxBytes {
		return text, false
	}
	cut := maxBytes
	for cut > 0 && !utf8.RuneStart(text[cut]) {
		cut--
	}
	return strings.TrimRight(text[:cut], " "), true
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
