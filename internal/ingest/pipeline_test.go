package ingest

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/store"
	"repro/internal/supplychain"
)

// commitDriver mines standalone blocks in the background, standing in
// for the node's commit loop.
func commitDriver(t *testing.T, p *platform.Platform, stop chan struct{}) {
	t.Helper()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				if err := p.CommitAll(); err != nil {
					return
				}
			}
		}
	}()
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPipelinePublishesAndAcks(t *testing.T) {
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(nil, QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(p, q, PipelineConfig{Workers: 2})
	stop := make(chan struct{})
	defer close(stop)
	commitDriver(t, p, stop)
	pl.Start()
	defer pl.Stop()

	texts := []string{
		"senate passes the budget bill after a long debate",
		"<p>city&nbsp;paper: the   match ended <b>in a draw</b></p>",
	}
	for i, txt := range texts {
		if _, err := pl.Enqueue(Article{Source: "wire", Topic: "econ", Text: txt}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "publishes to commit", func() bool {
		st := pl.Stats()
		return st.Published == 2 && st.Queue.Depth == 0
	})

	// The extracted (not raw) text is what landed on chain, off-chain
	// chunked, under the deterministic content id.
	cleaned, _ := Extract(texts[1], 0)
	it, err := p.Item(itemIDFor(cleaned))
	if err != nil {
		t.Fatal(err)
	}
	if it.Text != cleaned {
		t.Fatalf("on-chain text = %q, want extracted %q", it.Text, cleaned)
	}
	if it.CID == "" {
		t.Fatal("ingested body not stored off-chain")
	}
}

func TestPipelineDedupsSameContent(t *testing.T) {
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(nil, QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(p, q, PipelineConfig{Workers: 4})
	stop := make(chan struct{})
	defer close(stop)
	commitDriver(t, p, stop)
	pl.Start()
	defer pl.Stop()

	// The same story fetched from three "sources" (and with markup
	// differences that extraction normalizes away) publishes once.
	for i := 0; i < 3; i++ {
		if _, err := pl.Enqueue(Article{Source: fmt.Sprintf("src-%d", i), Topic: "econ", Text: "senate  passes THE budget"}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "queue to drain", func() bool {
		st := pl.Stats()
		return st.Queue.Depth == 0 && st.AwaitingCommit == 0
	})
	st := pl.Stats()
	if st.Published+st.Deduped != 3 || st.Published < 1 {
		t.Fatalf("published=%d deduped=%d, want 3 settles with >=1 publish", st.Published, st.Deduped)
	}
	// Content keys are token-normalized, so all three map to one id.
	if st.Published != 1 {
		t.Fatalf("published = %d, want exactly 1 (duplicates must dedup)", st.Published)
	}
}

// TestPipelineCrashRecoveryNoLossNoDup is acceptance criterion (d): a
// node killed mid-ingest recovers its queue from the WAL with no lost
// acked items and no duplicate publishes.
func TestPipelineCrashRecoveryNoLossNoDup(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	cfg := platform.DefaultConfig()
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := store.OpenFileLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(wal, QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(p, q, PipelineConfig{Workers: 2})
	stop := make(chan struct{})
	commitDriver(t, p, stop)
	pl.Start()

	const total = 40
	for i := 0; i < total; i++ {
		if _, err := pl.Enqueue(Article{Source: "wire", Topic: "econ", Text: fmt.Sprintf("unique story number %d with enough words to index", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let roughly half the work settle, then "crash": stop workers and
	// the commit loop without draining, abandon the queue handle.
	waitFor(t, 5*time.Second, "partial progress", func() bool { return pl.Stats().Published >= total/2 })
	pl.Stop()
	close(stop)
	ackedBefore := pl.Stats().Queue.Acked
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same chain (the node's durable state), reopened WAL.
	wal2, err := store.OpenFileLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQueue(wal2, QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(q2.Stats().Depth); got != uint64(total)-ackedBefore {
		t.Fatalf("recovered depth = %d, want %d (acked items must stay settled)", got, uint64(total)-ackedBefore)
	}
	pl2 := NewPipeline(p, q2, PipelineConfig{Workers: 2})
	stop2 := make(chan struct{})
	defer close(stop2)
	commitDriver(t, p, stop2)
	pl2.Start()
	defer pl2.Stop()
	waitFor(t, 10*time.Second, "recovery drain", func() bool {
		st := pl2.Stats()
		return st.Queue.Depth == 0 && st.AwaitingCommit == 0
	})

	// Every article is on chain exactly once: items submitted-but-unacked
	// at crash time redeliver, and the deterministic content id turns
	// their second publish into a dedup, not a duplicate item.
	onChain := 0
	for i := 0; i < total; i++ {
		text, _ := Extract(fmt.Sprintf("unique story number %d with enough words to index", i), 0)
		if _, err := supplychain.GetItem(p.Engine(), p.Authority(), itemIDFor(text)); err == nil {
			onChain++
		}
	}
	if onChain != total {
		t.Fatalf("on-chain items = %d, want %d (lost work)", onChain, total)
	}
	// Each WAL item settled exactly once across both incarnations, and
	// nothing was poisoned by the crash.
	st2 := pl2.Stats()
	if ackedBefore+st2.Queue.Acked != uint64(total) {
		t.Fatalf("acks = %d + %d, want %d (each item settles exactly once)", ackedBefore, st2.Queue.Acked, total)
	}
	if st2.Queue.Dead != 0 {
		t.Fatalf("dead = %d after recovery", st2.Queue.Dead)
	}
}

func TestPipelineDeadLettersEmptyBodies(t *testing.T) {
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(nil, QueueConfig{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(p, q, PipelineConfig{Workers: 1})
	stop := make(chan struct{})
	defer close(stop)
	commitDriver(t, p, stop)
	pl.Start()
	defer pl.Stop()
	if _, err := pl.Enqueue(Article{Source: "mill", Topic: "econ", Text: "<div><span></span></div>"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "poison item to dead-letter", func() bool {
		return q.Stats().Dead == 1
	})
	if got := len(q.Dead()); got != 1 {
		t.Fatalf("dead = %d", got)
	}
}
