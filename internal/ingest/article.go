// Package ingest is the continuous-ingestion subsystem: a durable,
// bounded work queue feeding concurrent pipeline workers that extract,
// chunk, and publish external articles onto the chain.
//
// The paper assumes newsrooms run "Internet crawlers to collect news"
// (§VI) continuously. That firehose must not couple to the commit path:
// a slow extraction or a burst of fetches must never delay block
// production, and a crash must never lose accepted work. The queue
// therefore write-ahead-logs every accepted article (reusing the
// store.FileLog CRC framing, so torn tails truncate and tampering is
// detected on replay), leases items to workers with a TTL, retries
// failures with exponential backoff, and dead-letters poison items
// after a bounded number of attempts. Publishes are made effectively
// exactly-once by deriving the item id from the article's normalized
// content key: a redelivered item publishes under the same id, which
// the supply-chain contract rejects as a duplicate, and the pipeline
// converts that rejection into an ack.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/corpus"
)

// Errors returned by this package.
var (
	// ErrQueueFull indicates an Enqueue against a queue at capacity.
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrBadRecord indicates a WAL record that does not decode.
	ErrBadRecord = errors.New("ingest: bad queue record")
	// ErrClosed indicates an operation on a stopped component.
	ErrClosed = errors.New("ingest: closed")
)

// Article is one unit of ingest work: an externally fetched piece
// awaiting extraction and publication.
type Article struct {
	// Source identifies the outlet the article was fetched from.
	Source string `json:"source"`
	// Topic is the article's topic tag.
	Topic corpus.Topic `json:"topic"`
	// Text is the raw fetched body (pre-extraction).
	Text string `json:"text"`
}

// WAL record layout: [version][op][seq u64 BE] then, for enqueue
// records, three u32-BE length-prefixed strings (source, topic, text).
// Ack and dead records carry only the header.
const (
	recVersion = 1

	opEnqueue = 1
	opAck     = 2
	opDead    = 3

	recHeaderLen = 1 + 1 + 8

	// maxFieldBytes bounds each decoded string field. Hostile lengths in
	// a corrupted or fuzzed WAL clamp here instead of allocating
	// gigabytes.
	maxFieldBytes = 1 << 20
)

// encodeRecord serializes one queue WAL record.
func encodeRecord(op byte, seq uint64, a *Article) []byte {
	n := recHeaderLen
	if op == opEnqueue {
		n += 12 + len(a.Source) + len(a.Topic) + len(a.Text)
	}
	rec := make([]byte, 0, n)
	rec = append(rec, recVersion, op)
	rec = binary.BigEndian.AppendUint64(rec, seq)
	if op == opEnqueue {
		for _, s := range []string{a.Source, string(a.Topic), a.Text} {
			rec = binary.BigEndian.AppendUint32(rec, uint32(len(s)))
			rec = append(rec, s...)
		}
	}
	return rec
}

// decodeRecord parses one queue WAL record, rejecting hostile lengths
// and trailing garbage.
func decodeRecord(rec []byte) (op byte, seq uint64, a Article, err error) {
	if len(rec) < recHeaderLen {
		return 0, 0, Article{}, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(rec))
	}
	if rec[0] != recVersion {
		return 0, 0, Article{}, fmt.Errorf("%w: version %d", ErrBadRecord, rec[0])
	}
	op = rec[1]
	seq = binary.BigEndian.Uint64(rec[2:10])
	rest := rec[recHeaderLen:]
	switch op {
	case opAck, opDead:
		if len(rest) != 0 {
			return 0, 0, Article{}, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(rest))
		}
		return op, seq, Article{}, nil
	case opEnqueue:
		fields := make([]string, 3)
		for i := range fields {
			if len(rest) < 4 {
				return 0, 0, Article{}, fmt.Errorf("%w: short field header", ErrBadRecord)
			}
			n := binary.BigEndian.Uint32(rest[:4])
			rest = rest[4:]
			if n > maxFieldBytes || uint64(n) > uint64(len(rest)) {
				return 0, 0, Article{}, fmt.Errorf("%w: field length %d", ErrBadRecord, n)
			}
			fields[i] = string(rest[:n])
			rest = rest[n:]
		}
		if len(rest) != 0 {
			return 0, 0, Article{}, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(rest))
		}
		return op, seq, Article{Source: fields[0], Topic: corpus.Topic(fields[1]), Text: fields[2]}, nil
	default:
		return 0, 0, Article{}, fmt.Errorf("%w: op %d", ErrBadRecord, op)
	}
}
