package platform

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/commitbus"
	"repro/internal/contract"
	"repro/internal/evidence"
	"repro/internal/ledger"
	"repro/internal/ranking"
)

// Platform-owned commit-bus subscriber names (stable: they key
// checkpoint blobs).
const (
	receiptsSubscriberName = "receipts"
	stateSubscriberName    = "contract-state"
	penaltySubscriberName  = "rank-penalties"
)

// ---------------------------------------------------------------------------
// receiptStore: the queryable receipt-by-txid index.
// ---------------------------------------------------------------------------

// receiptStore records every execution receipt (including failures) for
// Platform.Receipt lookups, and checkpoints them so a restored node can
// still answer for pre-checkpoint transactions.
type receiptStore struct {
	mu   sync.RWMutex
	recs map[ledger.TxID]contract.Receipt
}

var _ commitbus.Subscriber = (*receiptStore)(nil)

func newReceiptStore() *receiptStore {
	return &receiptStore{recs: make(map[ledger.TxID]contract.Receipt)}
}

// Name implements commitbus.Subscriber.
func (r *receiptStore) Name() string { return receiptsSubscriberName }

// OnCommit implements commitbus.Subscriber.
func (r *receiptStore) OnCommit(ev commitbus.CommitEvent) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range ev.Receipts {
		r.recs[rec.TxID] = rec
	}
	return nil
}

// Get returns the receipt for a committed transaction.
func (r *receiptStore) Get(id ledger.TxID) (contract.Receipt, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.recs[id]
	return rec, ok
}

// receiptSnapshot is the gob-serialized form (a slice: receipts carry
// their own TxID, and gob handles the concrete types directly).
type receiptSnapshot struct {
	Receipts []contract.Receipt
}

// Snapshot implements commitbus.Subscriber.
func (r *receiptStore) Snapshot() ([]byte, error) {
	r.mu.RLock()
	snap := receiptSnapshot{Receipts: make([]contract.Receipt, 0, len(r.recs))}
	for _, rec := range r.recs {
		snap.Receipts = append(snap.Receipts, rec)
	}
	r.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("platform: encode receipts: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements commitbus.Subscriber.
func (r *receiptStore) Restore(data []byte) error {
	var snap receiptSnapshot
	if len(data) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return fmt.Errorf("platform: decode receipts: %w", err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = make(map[ledger.TxID]contract.Receipt, len(snap.Receipts))
	for _, rec := range snap.Receipts {
		r.recs[rec.TxID] = rec
	}
	return nil
}

// ---------------------------------------------------------------------------
// contractState: snapshot/restore adapter over the engine KV.
// ---------------------------------------------------------------------------

// contractState puts the engine's committed key-value state on the bus.
// Execution already applied the block's writes before publish, so
// OnCommit is a no-op — the subscriber exists for its Snapshot/Restore
// half, which is what lets a checkpointed node skip re-executing the
// whole chain.
type contractState struct {
	engine *contract.Engine
}

var _ commitbus.Subscriber = (*contractState)(nil)

// Name implements commitbus.Subscriber.
func (c *contractState) Name() string { return stateSubscriberName }

// OnCommit implements commitbus.Subscriber.
func (c *contractState) OnCommit(commitbus.CommitEvent) error { return nil }

// Snapshot implements commitbus.Subscriber.
func (c *contractState) Snapshot() ([]byte, error) {
	snap, err := c.engine.StateSnapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("platform: encode contract state: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements commitbus.Subscriber.
func (c *contractState) Restore(data []byte) error {
	snap := make(map[string][]byte)
	if len(data) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return fmt.Errorf("platform: decode contract state: %w", err)
		}
	}
	c.engine.RestoreState(snap)
	return nil
}

// ---------------------------------------------------------------------------
// penaltyForwarder: the accountability loop.
// ---------------------------------------------------------------------------

// penaltyForwarder closes the accountability loop: a recorded consensus
// offence (evidence "slashed" event) burns the offender's ranking stake
// by enqueueing an authority rank.penalize tx, which lands in the next
// block. It is stateless — the enqueued txs live in the mempool and the
// resulting penalties in contract state — so its checkpoint blob is
// empty.
type penaltyForwarder struct {
	p *Platform
}

var _ commitbus.Subscriber = (*penaltyForwarder)(nil)

// Name implements commitbus.Subscriber.
func (f *penaltyForwarder) Name() string { return penaltySubscriberName }

// OnCommit implements commitbus.Subscriber. It runs with p.mu held (the
// bus publishes under the platform commit lock), which
// authoritySubmitLocked requires.
func (f *penaltyForwarder) OnCommit(ev commitbus.CommitEvent) error {
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != evidence.ContractName || e.Type != "slashed" {
				continue
			}
			payload, err := ranking.PenalizePayload(e.Attrs["offender"])
			if err != nil {
				return err
			}
			if err := f.p.authoritySubmitLocked("rank.penalize", payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot implements commitbus.Subscriber.
func (f *penaltyForwarder) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements commitbus.Subscriber.
func (f *penaltyForwarder) Restore([]byte) error { return nil }
