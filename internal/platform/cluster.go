package platform

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/blobstore"
	"repro/internal/consensus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
)

// Cluster is a replicated deployment: N validators each run a full
// Platform (contracts, fact index, supply-chain graph) and agree on block
// order through BFT consensus over the simulated network. This is the
// paper's actual deployment model — "the responsibility of verifying the
// factual of the news should not be placed in the hands of a single or a
// limited number of commercial organizations" (§III) — whereas the
// standalone Platform is the single-node development mode.
//
// Each validator's contract state evolves deterministically from the
// agreed block sequence, so all replicas converge to the same state root;
// TestClusterReplicasConverge asserts exactly that.
type Cluster struct {
	Net       *simnet.Network
	Set       *consensus.ValidatorSet
	Nodes     []*consensus.Node
	Replicas  []*Platform
	chainApps []*consensus.ChainApp
}

// NewCluster builds n platform validators over one simulated network.
// Every replica is configured identically (same authority seed), so their
// contract engines accept the same transactions.
func NewCluster(n int, seed int64, cfg Config, tmo consensus.Timeouts) (*Cluster, error) {
	net := simnet.New(seed)
	kps := make([]*keys.KeyPair, n)
	vals := make([]consensus.Validator, n)
	for i := 0; i < n; i++ {
		kps[i] = keys.FromSeed([]byte("platform-validator-" + strconv.Itoa(i)))
		vals[i] = consensus.Validator{
			ID:    simnet.NodeID("p" + strconv.Itoa(i)),
			Addr:  kps[i].Address(),
			Pub:   kps[i].Public(),
			Power: 1,
		}
	}
	set, err := consensus.NewValidatorSet(vals)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Net: net, Set: set}
	for i := 0; i < n; i++ {
		replica, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("platform: replica %d: %w", i, err)
		}
		// The replica's own chain follows consensus: CommitBlock appends
		// to it and the platform executes + indexes the block.
		rep := replica
		rep.replicated = true
		app := &consensus.ChainApp{
			Chain:      replica.Chain(),
			Proposer:   kps[i].Address(),
			AllowEmpty: true,
			OnCommit: func(b *ledger.Block) {
				// Execution cannot fail fatally here: failed txs carry
				// failure receipts, and block-level errors would mean
				// nondeterminism across replicas, surfaced by state-root
				// divergence in tests.
				_ = rep.ApplyExternalBlock(b)
			},
		}
		app.Pool = replica.pool
		node := consensus.NewNode(vals[i].ID, kps[i], set, net, app, tmo)
		// One shared registry (cfg.Telemetry) observes the whole cluster:
		// replica series aggregate, consensus series span all validators.
		node.Instrument(cfg.Telemetry)
		if err := node.Bind(); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.Replicas = append(c.Replicas, replica)
		c.chainApps = append(c.chainApps, app)
	}
	// Off-chain bodies are stored only where the publishing client put
	// them; replicas hydrating a committed CID fall back to their
	// siblings' stores (the in-process equivalent of the blob retrieval
	// protocol, which internal/blobstore exercises over the simnet). The
	// Has guard keeps a miss from bouncing between empty stores.
	for i := range c.Replicas {
		self := i
		c.Replicas[i].Blobs().SetFallback(func(cid blobstore.CID) ([]byte, bool) {
			for j, other := range c.Replicas {
				if j == self || !other.Blobs().Has(cid) {
					continue
				}
				if b, err := other.Blobs().Get(cid); err == nil {
					return b, true
				}
			}
			return nil, false
		})
	}
	return c, nil
}

// Start launches consensus on every validator.
func (c *Cluster) Start() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// SubmitAll submits a signed transaction to every replica's mempool (as a
// client broadcast would).
func (c *Cluster) SubmitAll(tx *ledger.Tx) error {
	for i, r := range c.Replicas {
		if err := r.Submit(tx); err != nil {
			return fmt.Errorf("platform: replica %d submit: %w", i, err)
		}
	}
	return nil
}

// RunUntilHeight drives the network until every replica reaches the
// target chain height or maxVirtual elapses.
func (c *Cluster) RunUntilHeight(target uint64, maxVirtual time.Duration) {
	deadline := c.Net.Now() + maxVirtual
	c.Net.RunWhile(func() bool {
		if c.Net.Now() >= deadline {
			return false
		}
		for _, r := range c.Replicas {
			if r.Chain().Height() < target {
				return true
			}
		}
		return false
	})
}

// MinHeight returns the lowest replica chain height.
func (c *Cluster) MinHeight() uint64 {
	min := ^uint64(0)
	for _, r := range c.Replicas {
		if h := r.Chain().Height(); h < min {
			min = h
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// StateRoots returns every replica's current contract state root.
func (c *Cluster) StateRoots() ([]string, error) {
	out := make([]string, len(c.Replicas))
	for i, r := range c.Replicas {
		root, err := r.Engine().StateRoot()
		if err != nil {
			return nil, err
		}
		out[i] = root.String()
	}
	return out, nil
}

// Converged reports whether all replicas share one state root.
func (c *Cluster) Converged() (bool, error) {
	roots, err := c.StateRoots()
	if err != nil {
		return false, err
	}
	for _, r := range roots[1:] {
		if r != roots[0] {
			return false, nil
		}
	}
	return true, nil
}

// SignAuthority builds an authority-signed transaction at the given nonce
// (all replicas share the authority key derived from cfg.AuthoritySeed).
// Use with SubmitAll to perform privileged operations — seeding facts,
// minting, resolving — on a replicated deployment.
func (c *Cluster) SignAuthority(nonce uint64, kind string, payload []byte) (*ledger.Tx, error) {
	return ledger.NewTx(c.Replicas[0].authority, nonce, kind, payload)
}
