package platform

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/blobstore"
	"repro/internal/consensus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
)

// DurableClusterConfig configures a replicated deployment whose validators
// persist their chains to disk, so individual replicas can crash and
// recover mid-run.
type DurableClusterConfig struct {
	// Validators is the cluster size.
	Validators int
	// Seed seeds the simulated network (and thus all fault injection).
	Seed int64
	// Dir is the root data directory; replica i persists under Dir/p<i>.
	Dir string
	// Platform configures every replica identically. BlobDir is derived
	// per replica and must be left empty.
	Platform Config
	// Timeouts configures consensus (zero means consensus defaults).
	Timeouts consensus.Timeouts
	// CertWindow bounds each node's in-memory commit-certificate
	// retention (0 means consensus.DefaultCertWindow).
	CertWindow int
}

// DurableCluster is a Cluster whose replicas are durable platforms with a
// crash/restart lifecycle: Crash(i) kills a replica (closing its chain
// log and detaching it from the network) and Restart(i) reopens it from
// its checkpoint plus WAL tail, rejoining consensus at its recovered
// height. It is the system under test for the chaos harness
// (internal/chaos) and the paper's answer to "what happens when a
// verification node fails" — the platform must tolerate node churn
// without forking or losing committed news items.
type DurableCluster struct {
	Net *simnet.Network
	Set *consensus.ValidatorSet
	// Nodes and Replicas are indexed by validator; both are nil for a
	// crashed replica until Restart brings it back.
	Nodes    []*consensus.Node
	Replicas []*Platform

	cfg     DurableClusterConfig
	keys    []*keys.KeyPair
	ids     []simnet.NodeID
	closers []func() error
	down    []bool
}

// NewDurableCluster builds (or reopens) a durable cluster. Replica data
// directories are created under cfg.Dir as needed, so a cluster can be
// rebuilt over the remains of a previous run to test cold recovery.
func NewDurableCluster(cfg DurableClusterConfig) (*DurableCluster, error) {
	if cfg.Validators <= 0 {
		return nil, fmt.Errorf("platform: durable cluster needs validators, got %d", cfg.Validators)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("platform: durable cluster needs a data directory")
	}
	if cfg.Platform.BlobDir != "" {
		return nil, fmt.Errorf("platform: BlobDir is derived per replica; leave it empty")
	}
	if cfg.Timeouts == (consensus.Timeouts{}) {
		cfg.Timeouts = consensus.DefaultTimeouts()
	}
	n := cfg.Validators
	d := &DurableCluster{
		Net:      simnet.New(cfg.Seed),
		cfg:      cfg,
		keys:     make([]*keys.KeyPair, n),
		ids:      make([]simnet.NodeID, n),
		Nodes:    make([]*consensus.Node, n),
		Replicas: make([]*Platform, n),
		closers:  make([]func() error, n),
		down:     make([]bool, n),
	}
	vals := make([]consensus.Validator, n)
	for i := 0; i < n; i++ {
		d.keys[i] = keys.FromSeed([]byte("platform-validator-" + strconv.Itoa(i)))
		d.ids[i] = simnet.NodeID("p" + strconv.Itoa(i))
		vals[i] = consensus.Validator{
			ID:    d.ids[i],
			Addr:  d.keys[i].Address(),
			Pub:   d.keys[i].Public(),
			Power: 1,
		}
	}
	set, err := consensus.NewValidatorSet(vals)
	if err != nil {
		return nil, err
	}
	d.Set = set
	for i := 0; i < n; i++ {
		if err := d.boot(i, true); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// replicaDir returns replica i's data directory.
func (d *DurableCluster) replicaDir(i int) string {
	return filepath.Join(d.cfg.Dir, "p"+strconv.Itoa(i))
}

// boot opens replica i from its data directory and wires it into
// consensus. On first boot the node registers with the network; on a
// restart it replaces the dead node's handler and reattaches.
func (d *DurableCluster) boot(i int, first bool) error {
	dir := d.replicaDir(i)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	replica, closeFn, err := Open(dir, d.cfg.Platform)
	if err != nil {
		return fmt.Errorf("platform: replica %d open: %w", i, err)
	}
	rep := replica
	rep.replicated = true
	app := &consensus.ChainApp{
		Chain:      replica.Chain(),
		Proposer:   d.keys[i].Address(),
		AllowEmpty: true,
		OnCommit: func(b *ledger.Block) {
			_ = rep.ApplyExternalBlock(b)
		},
	}
	app.Pool = replica.pool
	node := consensus.NewNode(d.ids[i], d.keys[i], d.Set, d.Net, app, d.cfg.Timeouts)
	node.SetCertWindow(d.cfg.CertWindow)
	node.Instrument(d.cfg.Platform.Telemetry)
	if first {
		if err := node.Bind(); err != nil {
			closeFn()
			return err
		}
	} else {
		if err := d.Net.SetHandler(d.ids[i], node.Handle); err != nil {
			closeFn()
			return err
		}
		d.Net.Reattach(d.ids[i])
	}
	// Off-chain bodies hydrate from live siblings when the local blob
	// store (persisted under the replica dir) lacks a committed CID.
	self := i
	replica.Blobs().SetFallback(func(cid blobstore.CID) ([]byte, bool) {
		for j, other := range d.Replicas {
			if j == self || other == nil || !other.Blobs().Has(cid) {
				continue
			}
			if b, err := other.Blobs().Get(cid); err == nil {
				return b, true
			}
		}
		return nil, false
	})
	d.Nodes[i] = node
	d.Replicas[i] = replica
	d.closers[i] = closeFn
	d.down[i] = false
	return nil
}

// Start enters consensus on every replica at its recovered chain height
// (zero for a fresh cluster).
func (d *DurableCluster) Start() {
	for i, n := range d.Nodes {
		if n == nil {
			continue
		}
		n.StartAt(d.Replicas[i].Chain().Height())
	}
}

// Down reports whether replica i is currently crashed.
func (d *DurableCluster) Down(i int) bool { return d.down[i] }

// LiveCount returns the number of running replicas.
func (d *DurableCluster) LiveCount() int {
	live := 0
	for _, down := range d.down {
		if !down {
			live++
		}
	}
	return live
}

// Checkpoint writes replica i's checkpoint (a no-op error if crashed).
func (d *DurableCluster) Checkpoint(i int) error {
	if d.down[i] {
		return fmt.Errorf("platform: replica %d is down", i)
	}
	return d.Replicas[i].WriteCheckpoint()
}

// Crash kills replica i: the consensus node stops, the network drops its
// traffic (in-flight included), and the chain log is closed. Anything not
// yet fsynced through the WAL or a checkpoint is lost, exactly like a
// process kill. The replica stays down until Restart.
func (d *DurableCluster) Crash(i int) error {
	if d.down[i] {
		return fmt.Errorf("platform: replica %d already down", i)
	}
	d.Nodes[i].Stop()
	d.Net.Detach(d.ids[i])
	err := d.closers[i]()
	d.Nodes[i] = nil
	d.Replicas[i] = nil
	d.closers[i] = nil
	d.down[i] = true
	return err
}

// Restart brings a crashed replica back: the platform reopens from its
// checkpoint plus WAL tail (or full replay), a fresh consensus node takes
// over the network address, and consensus resumes at the recovered
// height. Heights committed by the rest of the cluster while the replica
// was down are backfilled through the consensus sync protocol.
func (d *DurableCluster) Restart(i int) error {
	if !d.down[i] {
		return fmt.Errorf("platform: replica %d is not down", i)
	}
	if err := d.boot(i, false); err != nil {
		return err
	}
	d.Nodes[i].StartAt(d.Replicas[i].Chain().Height())
	return nil
}

// Close releases every live replica's chain log (for test teardown).
func (d *DurableCluster) Close() {
	for i := range d.closers {
		if d.closers[i] != nil {
			_ = d.closers[i]()
			d.closers[i] = nil
		}
	}
}

// SubmitLive submits a signed transaction to every live replica's
// mempool, returning how many accepted it. Individual rejections (a full
// or duplicate-holding pool) are tolerated: under churn a transaction
// only needs to reach some future proposer.
func (d *DurableCluster) SubmitLive(tx *ledger.Tx) int {
	accepted := 0
	for i, r := range d.Replicas {
		if d.down[i] || r == nil {
			continue
		}
		if err := r.Submit(tx); err == nil {
			accepted++
		}
	}
	return accepted
}

// LiveMinHeight returns the lowest chain height across live replicas.
func (d *DurableCluster) LiveMinHeight() uint64 {
	min := ^uint64(0)
	for i, r := range d.Replicas {
		if d.down[i] || r == nil {
			continue
		}
		if h := r.Chain().Height(); h < min {
			min = h
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// LiveMaxHeight returns the highest chain height across live replicas.
func (d *DurableCluster) LiveMaxHeight() uint64 {
	var max uint64
	for i, r := range d.Replicas {
		if d.down[i] || r == nil {
			continue
		}
		if h := r.Chain().Height(); h > max {
			max = h
		}
	}
	return max
}

// RunUntilLiveHeight drives the network until every live replica reaches
// the target height or maxVirtual elapses. It returns the virtual time
// consumed.
func (d *DurableCluster) RunUntilLiveHeight(target uint64, maxVirtual time.Duration) time.Duration {
	start := d.Net.Now()
	deadline := start + maxVirtual
	d.Net.RunWhile(func() bool {
		if d.Net.Now() >= deadline {
			return false
		}
		return d.LiveMinHeight() < target
	})
	return d.Net.Now() - start
}

// ConvergedLive reports whether all live replicas share one contract
// state root (vacuously true with fewer than two live replicas).
func (d *DurableCluster) ConvergedLive() (bool, error) {
	var ref string
	seen := false
	for i, r := range d.Replicas {
		if d.down[i] || r == nil {
			continue
		}
		root, err := r.Engine().StateRoot()
		if err != nil {
			return false, err
		}
		if !seen {
			ref = root.String()
			seen = true
			continue
		}
		if root.String() != ref {
			return false, nil
		}
	}
	return true, nil
}
