package platform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/corpus"
	"repro/internal/ledger"
	"repro/internal/ranking"
	"repro/internal/simnet"
)

// articleBody builds a multi-chunk body from corpus sentences.
func articleBody(gen *corpus.Generator, sentences int) string {
	var sb strings.Builder
	for i := 0; i < sentences; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(gen.FactualOn(corpus.TopicPolitics).Text)
	}
	return sb.String()
}

func TestOffChainPublishKeepsBodyOffChain(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(1)
	body := articleBody(gen, 20)
	a := p.NewActor("author")
	if err := a.PublishNews("art-1", corpus.TopicPolitics, body, nil, ""); err != nil {
		t.Fatal(err)
	}

	// No committed transaction payload carries the body text.
	if err := p.Chain().Walk(0, func(b *ledger.Block) bool {
		for _, tx := range b.Txs {
			if strings.Contains(string(tx.Payload), body[:60]) {
				t.Errorf("tx %s carries the article body inline", tx.ID().Short())
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}

	it, err := p.Item("art-1")
	if err != nil {
		t.Fatal(err)
	}
	if it.CID == "" || it.Size != len(body) {
		t.Fatalf("item ref = (%q, %d), want cid and size %d", it.CID, it.Size, len(body))
	}
	if it.Text != body {
		t.Fatal("Item did not hydrate the off-chain body")
	}

	// The graph (similarity, trace) saw the hydrated text.
	gi, err := p.Graph().Item("art-1")
	if err != nil || gi.Text != body {
		t.Fatalf("graph item not hydrated: %v", err)
	}

	// The chain reference protects the blob from GC.
	cid := blobstore.CID(it.CID)
	if p.Blobs().RefCount(cid) == 0 {
		t.Fatal("committed article body has no ledger reference")
	}
	loose, _ := p.Blobs().PutString("never referenced by any transaction")
	victims := p.Blobs().GC()
	if len(victims) != 1 || victims[0] != loose {
		t.Fatalf("GC = %v, want only the unreferenced blob %s", victims, loose.Short())
	}
	if _, err := p.Blobs().Get(cid); err != nil {
		t.Fatalf("chain-referenced blob unreadable after GC: %v", err)
	}

	// Full-text search finds the article.
	terms := strings.Join(strings.Fields(body)[:3], " ")
	p.FlushSearch()
	res := p.Search(terms, 5)
	if len(res) == 0 || res[0].ID != "art-1" {
		t.Fatalf("Search(%q) = %v", terms, res)
	}
}

func TestInlinePublishStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OffChainBodies = false
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := p.NewActor("author")
	if err := a.PublishNews("n1", corpus.TopicPolitics, "plain inline statement about the budget", nil, ""); err != nil {
		t.Fatal(err)
	}
	it, err := p.Item("n1")
	if err != nil {
		t.Fatal(err)
	}
	if it.CID != "" || it.Text == "" {
		t.Fatalf("inline item = %+v", it)
	}
	p.FlushSearch()
	if res := p.Search("budget", 5); len(res) != 1 || res[0].ID != "n1" {
		t.Fatalf("inline item not searchable: %v", res)
	}
	if p.Blobs().Stats().Blobs != 0 {
		t.Fatal("inline publish wrote to the blob store")
	}
}

// TestFreshNodeFetchesVerifiesAndSearchesOverLossyLink is the PR's
// acceptance scenario: a node that never saw the publish traffic
// receives only the chain (CID references), fetches every body through
// the chunk retrieval protocol over a 5%-loss simnet link, verifies each
// against its chunk root, rebuilds its graph, and can search the
// articles.
func TestFreshNodeFetchesVerifiesAndSearchesOverLossyLink(t *testing.T) {
	miner, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(7)
	author := miner.NewActor("author")
	bodies := map[string]string{}
	for _, id := range []string{"a1", "a2", "a3"} {
		body := articleBody(gen, 15)
		bodies[id] = body
		if err := author.PublishNews(id, corpus.TopicPolitics, body, nil, ""); err != nil {
			t.Fatal(err)
		}
	}

	fresh, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(99)
	cfg := blobstore.FetchConfig{Timeout: 100 * time.Millisecond, Retries: 6}
	src := blobstore.NewPeer(net, "src", miner.Blobs(), cfg)
	dst := blobstore.NewPeer(net, "dst", fresh.Blobs(), cfg)
	if err := src.Bind(); err != nil {
		t.Fatal(err)
	}
	if err := dst.Bind(); err != nil {
		t.Fatal(err)
	}
	net.SetAllLinks(simnet.LinkConfig{
		BaseLatency: 2 * time.Millisecond,
		Jitter:      3 * time.Millisecond,
		LossRate:    0.05,
	})
	fresh.Blobs().SetFallback(func(cid blobstore.CID) ([]byte, bool) {
		var (
			body []byte
			ferr error
			done bool
		)
		dst.Fetch(cid, []simnet.NodeID{"src"}, func(b []byte, e error) {
			body, ferr, done = b, e, true
		})
		net.RunWhile(func() bool { return !done })
		return body, done && ferr == nil
	})

	if err := miner.Chain().Walk(0, func(b *ledger.Block) bool {
		if err := fresh.Chain().Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := fresh.ApplyExternalBlock(b); err != nil {
			t.Fatalf("apply: %v", err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}

	// Every subscriber kept up: hydration over the lossy link succeeded.
	for _, st := range fresh.BusStats() {
		if st.Errors != 0 {
			t.Fatalf("subscriber %s errors: %+v", st.Name, st)
		}
	}
	for id, body := range bodies {
		it, err := fresh.Item(id)
		if err != nil {
			t.Fatalf("Item(%s): %v", id, err)
		}
		if it.Text != body {
			t.Fatalf("item %s body mismatch after networked fetch", id)
		}
		terms := strings.Join(strings.Fields(body)[:4], " ")
		fresh.FlushSearch()
		res := fresh.Search(terms, 3)
		found := false
		for _, r := range res {
			found = found || r.ID == id
		}
		if !found {
			t.Fatalf("Search(%q) on fresh node missed %s: %v", terms, id, res)
		}
	}
	if st := dst.Stats(); st.Fetched != len(bodies) {
		t.Fatalf("dst stats = %+v, want %d fetched", st, len(bodies))
	}
}

func TestDurableOffChainBodiesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	p, closeFn, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(3)
	body := articleBody(gen, 12)
	a := p.NewActor("author")
	if err := a.PublishNews("durable-1", corpus.TopicPolitics, body, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}

	re, closeFn2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn2()
	if re.CheckpointHeight() == 0 {
		t.Fatal("reopen did not restore from checkpoint")
	}
	it, err := re.Item("durable-1")
	if err != nil {
		t.Fatal(err)
	}
	if it.Text != body {
		t.Fatal("reopened node cannot hydrate the off-chain body")
	}
	terms := strings.Join(strings.Fields(body)[:3], " ")
	re.FlushSearch()
	res := re.Search(terms, 3)
	if len(res) == 0 || res[0].ID != "durable-1" {
		t.Fatalf("search after reopen = %v", res)
	}
	if re.Blobs().RefCount(blobstore.CID(it.CID)) == 0 {
		t.Fatal("ledger reference lost across reopen")
	}
}

func TestOffChainRankingAndPromotion(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := corpus.NewGenerator(5)
	fact := gen.FactualOn(corpus.TopicPolitics)
	if err := p.SeedFact("f1", fact.Topic, fact.Text); err != nil {
		t.Fatal(err)
	}
	a := p.NewActor("journalist")
	if err := a.PublishNews("n1", fact.Topic, fact.Text, nil, ""); err != nil {
		t.Fatal(err)
	}
	// Trace-back works because the graph hydrated the off-chain body.
	rank, err := p.RankItem("n1", ranking.MechanismTraceOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !rank.Trace.Rooted || rank.Trace.Score < 0.9 {
		t.Fatalf("trace over off-chain body = %+v", rank.Trace)
	}
}
