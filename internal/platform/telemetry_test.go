package platform

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/telemetry"
)

// Regression: newDurable replaces the mempool New built after binding the
// reopened chain, and the replacement must be re-instrumented — otherwise
// durable nodes serve dead mempool series while in-memory nodes count.
func TestDurableNodeMempoolMetricsLive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.New()
	p, closeFn, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	a := p.NewActor("author")
	if err := a.PublishNews("m1", corpus.TopicPolitics, "short durable body", nil, ""); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	cfg.Telemetry.WritePrometheus(&sb)
	body := sb.String()
	for _, want := range []string{
		"trustnews_mempool_admitted_total 1",
		"trustnews_platform_commits_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("durable node metrics missing %q in:\n%s", want, body)
		}
	}
}
