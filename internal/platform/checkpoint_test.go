package platform

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ledger"
	"repro/internal/ranking"
)

// runWorkload drives a varied block sequence: seeded facts, published
// items, relays, mints and votes, so every derived index (fact index,
// graph, expert miner, receipts, balances) has state worth snapshotting.
func runWorkload(t *testing.T, p *Platform, rounds int) {
	t.Helper()
	if err := p.SeedFact("fact-0", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	voter := p.NewActor("workload-voter")
	if err := p.MintTo(voter.Address(), 10_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		author := p.NewActor("author-" + strconv.Itoa(i%3))
		id := "item-" + strconv.Itoa(i)
		if err := author.PublishNews(id, corpus.TopicPolitics, factText+" issue "+strconv.Itoa(i), nil, ""); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := author.Relay("relay-"+strconv.Itoa(i), id); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if err := voter.Vote(id, true, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertSameDerivedState compares every externally observable piece of
// derived state between two nodes that claim to represent the same chain.
func assertSameDerivedState(t *testing.T, a, b *Platform) {
	t.Helper()
	if ha, hb := a.Chain().Height(), b.Chain().Height(); ha != hb {
		t.Fatalf("height %d != %d", ha, hb)
	}
	if ia, ib := a.Chain().HeadID(), b.Chain().HeadID(); ia != ib {
		t.Fatalf("head id %s != %s", ia, ib)
	}
	ra, err := a.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("state root %s != %s", ra, rb)
	}
	if la, lb := a.FactIndex().Len(), b.FactIndex().Len(); la != lb {
		t.Fatalf("fact index %d != %d", la, lb)
	}
	if fa, fb := a.FactIndex().Root(), b.FactIndex().Root(); fa != fb {
		t.Fatalf("fact accumulator root %s != %s", fa, fb)
	}
	if sa, sb := a.Graph().Stats(), b.Graph().Stats(); sa != sb {
		t.Fatalf("graph stats %+v != %+v", sa, sb)
	}
	if ta, tb := len(a.ExpertMiner().Topics()), len(b.ExpertMiner().Topics()); ta != tb {
		t.Fatalf("miner topics %d != %d", ta, tb)
	}
	for _, topic := range a.ExpertMiner().Topics() {
		ia, ib := a.ExpertMiner().TopicItems(topic), b.ExpertMiner().TopicItems(topic)
		if len(ia) != len(ib) {
			t.Fatalf("miner items for %s: %d != %d", topic, len(ia), len(ib))
		}
	}
	// Every committed tx must resolve to the same receipt on both nodes.
	if err := a.Chain().Walk(0, func(blk *ledger.Block) bool {
		for _, tx := range blk.Txs {
			recA, okA := a.Receipt(tx.ID())
			recB, okB := b.Receipt(tx.ID())
			if okA != okB || recA.OK != recB.OK || recA.GasUsed != recB.GasUsed {
				t.Fatalf("receipt mismatch for %s: %+v/%v vs %+v/%v", tx.ID(), recA, okA, recB, okB)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCheckpointMatchesFullReplay(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 24)
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	ckptHeight := p.CheckpointHeight()
	if ckptHeight == 0 || ckptHeight != p.Chain().Height() {
		t.Fatalf("checkpoint height %d, chain %d", ckptHeight, p.Chain().Height())
	}
	// Keep committing past the checkpoint so reopen exercises tail replay.
	tail := p.NewActor("late-author")
	for i := 0; i < 5; i++ {
		if err := tail.PublishNews("late-"+strconv.Itoa(i), corpus.TopicHealth, "late statement "+strconv.Itoa(i), nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	voterAddr := p.NewActor("workload-voter").Address()
	wantBal, err := ranking.Balance(p.Engine(), p.Authority(), voterAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}

	// Reopen via the checkpoint fast path.
	fast, closeFast, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFast()
	if fast.CheckpointHeight() != ckptHeight {
		t.Fatalf("fast open checkpoint height %d want %d (restore path not taken)", fast.CheckpointHeight(), ckptHeight)
	}

	// Reopen via full replay with the checkpoint out of the way.
	if err := os.Rename(filepath.Join(dir, checkpointName), filepath.Join(dir, "ckpt.aside")); err != nil {
		t.Fatal(err)
	}
	full, closeFull, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFull()
	if full.CheckpointHeight() != 0 {
		t.Fatalf("full replay open reports checkpoint height %d", full.CheckpointHeight())
	}

	assertSameDerivedState(t, fast, full)
	gotBal, err := ranking.Balance(fast.Engine(), fast.Authority(), voterAddr)
	if err != nil || gotBal != wantBal {
		t.Fatalf("balance after fast open %d want %d (err=%v)", gotBal, wantBal, err)
	}
	// The restored node must keep working: commit one more block on each
	// and verify they stay identical.
	for _, node := range []*Platform{fast, full} {
		a := node.NewActor("post-open")
		if err := a.PublishNews("post-open-item", corpus.TopicScience, "post reopen statement", nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	assertSameDerivedState(t, fast, full)
}

func TestOpenFallsBackOnCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 8)
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	height := p.Chain().Height()
	root, err := p.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	closeFn()

	path := filepath.Join(dir, checkpointName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, close2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer close2()
	if p2.CheckpointHeight() != 0 {
		t.Fatalf("corrupt checkpoint restored (height %d)", p2.CheckpointHeight())
	}
	if p2.Chain().Height() != height {
		t.Fatalf("height %d want %d", p2.Chain().Height(), height)
	}
	root2, err := p2.Engine().StateRoot()
	if err != nil || root2 != root {
		t.Fatalf("state root %s want %s (err=%v)", root2, root, err)
	}
}

func TestOpenRecoversFromTornLogTail(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 6)
	height := p.Chain().Height()
	prevID, err := p.Chain().BlockAt(height - 2)
	if err != nil {
		t.Fatal(err)
	}
	closeFn()

	// Simulate a crash mid-append: chop bytes off the final record so its
	// frame is incomplete.
	path := filepath.Join(dir, chainLogName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	p2, close2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Chain().Height() != height-1 {
		t.Fatalf("recovered height %d want %d", p2.Chain().Height(), height-1)
	}
	if p2.Chain().HeadID() != prevID.ID() {
		t.Fatalf("recovered head %s want %s", p2.Chain().HeadID(), prevID.ID())
	}
	// The node keeps accepting commits after recovery.
	a := p2.NewActor("after-crash")
	if err := a.PublishNews("after-crash-item", corpus.TopicPolitics, "post crash statement", nil, ""); err != nil {
		t.Fatal(err)
	}
	if p2.Chain().Height() != height {
		t.Fatalf("post-recovery height %d want %d", p2.Chain().Height(), height)
	}
	close2()
}

func TestOpenFallsBackWhenCheckpointBeyondLog(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 6)
	// Checkpoint covers the full chain, then the last block is torn away:
	// the checkpoint now claims a height the log cannot back.
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	height := p.Chain().Height()
	closeFn()

	path := filepath.Join(dir, chainLogName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	p2, close2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer close2()
	if p2.CheckpointHeight() != 0 {
		t.Fatalf("stale checkpoint restored (height %d)", p2.CheckpointHeight())
	}
	if p2.Chain().Height() != height-1 {
		t.Fatalf("recovered height %d want %d", p2.Chain().Height(), height-1)
	}
	root, err := p2.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	head, err := p2.Chain().BlockAt(height - 2)
	if err != nil {
		t.Fatal(err)
	}
	if root != head.Header.StateRoot {
		t.Fatal("recovered state root does not match surviving head block")
	}
}
