package platform

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/supplychain"
)

func newCluster(t testing.TB, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, 77, DefaultConfig(), consensus.DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// clusterClient signs and broadcasts txs with its own nonce tracking.
type clusterClient struct {
	kp *keys.KeyPair
	c  *Cluster
	n  uint64
	t  testing.TB
}

func (cc *clusterClient) send(kind string, payload []byte) {
	cc.t.Helper()
	tx, err := ledger.NewTx(cc.kp, cc.n, kind, payload)
	if err != nil {
		cc.t.Fatal(err)
	}
	if err := cc.c.SubmitAll(tx); err != nil {
		cc.t.Fatal(err)
	}
	cc.n++
}

func TestClusterReplicasConverge(t *testing.T) {
	c := newCluster(t, 4)
	client := &clusterClient{kp: keys.FromSeed([]byte("cluster-client")), c: c, t: t}
	for i := 0; i < 10; i++ {
		payload, err := supplychain.PublishPayload("item"+strconv.Itoa(i), corpus.TopicPolitics,
			"the parliament ratified the border treaty "+strconv.Itoa(i), nil, "")
		if err != nil {
			t.Fatal(err)
		}
		client.send("news.publish", payload)
	}
	c.Start()
	c.RunUntilHeight(2, 2*time.Minute)
	if c.MinHeight() < 1 {
		t.Fatalf("cluster stalled at height %d", c.MinHeight())
	}
	ok, err := c.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		roots, _ := c.StateRoots()
		t.Fatalf("replicas diverged: %v", roots)
	}
	// Every replica indexed the committed items.
	for i, r := range c.Replicas {
		if r.Graph().Len() == 0 {
			t.Fatalf("replica %d indexed no items", i)
		}
	}
}

func TestClusterAuthorityOperations(t *testing.T) {
	c := newCluster(t, 4)
	payload, err := factdb.SeedPayload("f1", corpus.TopicPolitics, "the senate ratified the treaty")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.SignAuthority(0, "factdb.seed", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitAll(tx); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntilHeight(1, 2*time.Minute)
	for i, r := range c.Replicas {
		if r.FactIndex().Len() != 1 {
			t.Fatalf("replica %d fact index len=%d", i, r.FactIndex().Len())
		}
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged=%v err=%v", ok, err)
	}
}

func TestClusterStandaloneCommitDisabled(t *testing.T) {
	c := newCluster(t, 4)
	if _, _, err := c.Replicas[0].Commit(); err == nil {
		t.Fatal("standalone commit must be disabled under consensus")
	}
}

func TestClusterSurvivesOneCrash(t *testing.T) {
	c := newCluster(t, 4)
	client := &clusterClient{kp: keys.FromSeed([]byte("cluster-client")), c: c, t: t}
	payload, _ := supplychain.PublishPayload("item", corpus.TopicPolitics, "statement text", nil, "")
	client.send("news.publish", payload)
	c.Nodes[3].Stop()
	c.Start()
	// Only live replicas can reach the height; drive by live min height.
	deadline := c.Net.Now() + 4*time.Minute
	c.Net.RunWhile(func() bool {
		if c.Net.Now() >= deadline {
			return false
		}
		for i, r := range c.Replicas {
			if i == 3 {
				continue
			}
			if r.Chain().Height() < 1 {
				return true
			}
		}
		return false
	})
	live := 0
	for i, r := range c.Replicas {
		if i == 3 {
			continue
		}
		if r.Chain().Height() >= 1 {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("only %d of 3 live replicas committed", live)
	}
}

func TestClusterPartitionStallsThenRecovers(t *testing.T) {
	c := newCluster(t, 4)
	client := &clusterClient{kp: keys.FromSeed([]byte("cluster-client")), c: c, t: t}
	payload, _ := supplychain.PublishPayload("item", corpus.TopicPolitics, "statement text", nil, "")
	client.send("news.publish", payload)
	c.Net.Partition([]simnet.NodeID{"p0", "p1"}, []simnet.NodeID{"p2", "p3"})
	c.Start()
	c.RunUntilHeight(1, 3*time.Second)
	if c.MinHeight() != 0 {
		t.Fatal("committed during 2-2 partition")
	}
	c.Net.Heal()
	c.RunUntilHeight(1, 4*time.Minute)
	if c.MinHeight() < 1 {
		t.Fatalf("no recovery after heal; height=%d", c.MinHeight())
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged=%v err=%v", ok, err)
	}
}
