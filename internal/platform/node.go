package platform

// This file is the cluster wiring for real deployments: helpers that
// attach one Platform to a consensus validator over any
// transport.Network implementation. The simnet-backed clusters
// (cluster.go, durable_cluster.go) wire themselves; this is the entry
// point for cmd/trustnewsd's TCP cluster mode and the e2e harness,
// where every validator is a separate OS process and the network is
// real.

import (
	"fmt"
	"strconv"

	"repro/internal/consensus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/transport"
)

// ValidatorID returns the canonical node ID for validator index i
// ("p0", "p1", ...). Every deployment tool (daemon flags, e2e harness,
// durable cluster directories) uses the same convention so that data
// directories, peer maps and validator sets line up by construction.
func ValidatorID(i int) transport.NodeID {
	return transport.NodeID("p" + strconv.Itoa(i))
}

// ValidatorKey derives validator i's well-known development key pair.
// Real deployments would provision keys externally; the reproduction
// uses deterministic seeds so any process can reconstruct the full
// validator set from its size alone.
func ValidatorKey(i int) *keys.KeyPair {
	return keys.FromSeed([]byte("platform-validator-" + strconv.Itoa(i)))
}

// ClusterValidators builds the canonical n-validator set (equal power,
// IDs p0..p{n-1}, deterministic development keys).
func ClusterValidators(n int) (*consensus.ValidatorSet, []*keys.KeyPair, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("platform: cluster needs validators, got %d", n)
	}
	kps := make([]*keys.KeyPair, n)
	vals := make([]consensus.Validator, n)
	for i := 0; i < n; i++ {
		kps[i] = ValidatorKey(i)
		vals[i] = consensus.Validator{
			ID:    ValidatorID(i),
			Addr:  kps[i].Address(),
			Pub:   kps[i].Public(),
			Power: 1,
		}
	}
	set, err := consensus.NewValidatorSet(vals)
	if err != nil {
		return nil, nil, err
	}
	return set, kps, nil
}

// AttachConsensus switches platform p into replicated mode and wires it
// as validator id of set over net. Standalone commits (Commit/CommitAll)
// are disabled from here on: blocks are decided by consensus and applied
// through ApplyExternalBlock. The returned node is bound to the network
// but not started — call StartAt(p.Chain().Height()) from the transport's
// event loop once the process is ready to participate.
func AttachConsensus(p *Platform, id transport.NodeID, kp *keys.KeyPair, set *consensus.ValidatorSet, net transport.Network, tmo consensus.Timeouts) (*consensus.Node, error) {
	if tmo == (consensus.Timeouts{}) {
		tmo = consensus.DefaultTimeouts()
	}
	p.mu.Lock()
	p.replicated = true
	p.mu.Unlock()
	app := &consensus.ChainApp{
		Chain:      p.Chain(),
		Proposer:   kp.Address(),
		AllowEmpty: true,
		// Block timestamps follow the platform clock as configured at
		// attach time (fixed epoch by default, time.Now in the daemon).
		Now: p.clock,
		OnCommit: func(b *ledger.Block) {
			_ = p.ApplyExternalBlock(b)
		},
	}
	app.Pool = p.pool
	node := consensus.NewNode(id, kp, set, net, app, tmo)
	node.Instrument(p.cfg.Telemetry)
	if err := node.Bind(); err != nil {
		return nil, err
	}
	return node, nil
}

// SetOnSubmit installs a hook observing every transaction accepted into
// the local mempool via Submit. Cluster mode uses it to relay client
// transactions to peer validators so any node's proposer sees them.
func (p *Platform) SetOnSubmit(fn func(*ledger.Tx)) {
	p.mu.Lock()
	p.onSubmit = fn
	p.mu.Unlock()
}

// SubmitRelayed enqueues a transaction received from a peer without
// re-triggering the relay hook (the origin already broadcast it to the
// full mesh, so forwarding again would only produce duplicate traffic).
func (p *Platform) SubmitRelayed(tx *ledger.Tx) error {
	return p.pool.Add(tx)
}
