package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/search"
)

// TestSearchReplayMatchesSnapshotRestore pins the search subsystem's
// determinism guarantee end to end: an index rebuilt by replaying the
// chain through the commit bus must rank byte-identically to one
// restored from a checkpoint snapshot — same scores, same order, same
// pagination — for both rankers. If this breaks, a restarted node's
// search results depend on how it recovered.
func TestSearchReplayMatchesSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	author := p.NewActor("replay-author")
	texts := []string{
		"senate passes the annual budget bill after debate",
		"budget shortfall forces the city council to cut transit funding",
		"new vaccine trial reports strong results in early phase",
		"transit strike ends as union and city reach a funding deal",
		"annual science fair draws record attendance downtown",
		"council votes to expand the downtown transit line",
		"early budget projections show a surplus for the first time",
		"vaccine distribution reaches rural clinics ahead of schedule",
	}
	for i, txt := range texts {
		if err := author.PublishNews(fmt.Sprintf("rp-%d", i), corpus.TopicPolitics, txt, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	p.FlushSearch()
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}

	// Node A recovers through the checkpoint fast path: the index is
	// deserialized from the search subscriber's snapshot blob.
	fast, closeFast, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFast()
	if fast.CheckpointHeight() == 0 {
		t.Fatal("fast open did not take the checkpoint path")
	}

	// Node B recovers by full chain replay: every publish flows through
	// the commit bus again and the index is rebuilt from scratch.
	replayDir := t.TempDir()
	raw, err := os.ReadFile(filepath.Join(dir, chainLogName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(replayDir, chainLogName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The chain carries refs; the bodies live off-chain. Copy the blob
	// store so replay can resolve them.
	err = filepath.Walk(filepath.Join(dir, "blobs"), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(filepath.Join(dir, "blobs"), path)
		if err != nil {
			return err
		}
		dst := filepath.Join(replayDir, "blobs", rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	full, closeFull, err := Open(replayDir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFull()
	if full.CheckpointHeight() != 0 {
		t.Fatal("replay open unexpectedly found a checkpoint")
	}
	full.FlushSearch()

	queries := []string{"budget", "transit funding", "vaccine", "downtown", "annual budget debate"}
	for _, ranker := range []search.Ranker{search.RankBM25, search.RankTFIDF} {
		for _, q := range queries {
			for offset := 0; offset < 4; offset += 2 {
				a := fast.SearchPage(q, ranker, offset, 3)
				b := full.SearchPage(q, ranker, offset, 3)
				aj, err := json.Marshal(a)
				if err != nil {
					t.Fatal(err)
				}
				bj, err := json.Marshal(b)
				if err != nil {
					t.Fatal(err)
				}
				if string(aj) != string(bj) {
					t.Fatalf("ranker %v query %q offset %d: snapshot-restored and replay-rebuilt rankings diverge:\n  snapshot: %s\n  replay:   %s", ranker, q, offset, aj, bj)
				}
				if offset == 0 && a.Total == 0 {
					t.Fatalf("query %q found nothing — test corpus not indexed", q)
				}
			}
		}
	}
}
