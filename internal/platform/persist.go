package platform

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/ledger"
	"repro/internal/merkle"
	"repro/internal/store"
)

// Durable deployment: a platform whose chain is backed by the
// write-ahead-logged file store. Contract state and the derived indexes
// (factual database, supply-chain graph, expert miner, receipts) are a
// pure function of the block sequence, delivered through the commit bus.
// Reopen therefore has two paths:
//
//   - checkpoint restore: load the latest CRC-guarded checkpoint, hand
//     each commit-bus subscriber its snapshot blob, verify the restored
//     contract state against the block header's state root, and replay
//     only the WAL tail above the checkpoint height — O(tail) instead of
//     O(chain length);
//   - full replay: execute every block through the contract engine (the
//     original behaviour), used when no checkpoint exists or the
//     checkpoint fails any verification step. Replay also re-verifies the
//     chain's integrity (a tampered block file fails CRC or
//     re-validation), so the checkpoint never weakens tamper evidence.

// Durable file names inside the data directory.
const (
	chainLogName   = "chain.log"
	checkpointName = "checkpoint.ckpt"
)

// ErrNotDurable indicates a checkpoint operation on an in-memory node.
var ErrNotDurable = errors.New("platform: node has no data directory")

// Open creates or reopens a durable platform at dir. The chain log lives
// in dir/chain.log and checkpoints in dir/checkpoint.ckpt. The returned
// close function releases the log file.
//
// When a valid checkpoint is present the chain itself reopens from the
// checkpointed index snapshot — only the WAL tail above the checkpoint
// height is decoded and re-validated — and the derived indexes restore
// from their snapshot blobs. Any verification failure along that path
// discards the partial state and falls back to the original full-replay
// open, so a bad checkpoint can delay a restart but never corrupt one.
func Open(dir string, cfg Config) (*Platform, func() error, error) {
	// Off-chain article bodies persist beside the chain: the blob store
	// loads before any replay or checkpoint restore, so hydration during
	// either path reads the same bytes the previous run committed.
	if cfg.BlobDir == "" {
		cfg.BlobDir = filepath.Join(dir, "blobs")
	}
	log, err := store.OpenFileLog(filepath.Join(dir, chainLogName))
	if err != nil {
		return nil, nil, err
	}
	if cp, err := store.ReadCheckpoint(filepath.Join(dir, checkpointName)); err == nil {
		if p, err := openFromCheckpoint(dir, cfg, log, cp); err == nil {
			return p, log.Close, nil
		}
	}

	// Full replay: decode, validate and re-execute every block, with the
	// replay's body validation fanned across the verification pipeline.
	chain, err := ledger.NewChainVerified(log, newVerifier(cfg))
	if err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("platform: reopen chain: %w", err)
	}
	p, err := newDurable(dir, cfg, chain)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	if err := p.replayFrom(0); err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("platform: replay: %w", err)
	}
	return p, log.Close, nil
}

// openFromCheckpoint attempts the fast reopen path: rebuild the chain
// from the checkpoint's index snapshot (validating only the WAL tail),
// restore every subscriber blob, verify the restored contract state
// against both the checkpoint hash and the committed block header, then
// replay just the tail. Any error means the caller must fall back to the
// full-replay path; nothing here mutates the log.
func openFromCheckpoint(dir string, cfg Config, log *store.FileLog, cp *store.Checkpoint) (*Platform, error) {
	chain, err := ledger.NewChainFromSnapshotVerified(log, cp.Chain, newVerifier(cfg))
	if err != nil {
		return nil, err
	}
	p, err := newDurable(dir, cfg, chain)
	if err != nil {
		return nil, err
	}
	if err := p.restoreCheckpoint(cp); err != nil {
		return nil, err
	}
	if err := p.replayFrom(cp.Height); err != nil {
		return nil, fmt.Errorf("platform: replay tail: %w", err)
	}
	return p, nil
}

// newDurable builds a fresh platform bound to the durable chain.
func newDurable(dir string, cfg Config, chain *ledger.Chain) (*Platform, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.chain = chain
	// Adopt the durable chain's pipeline (it already verified the replay
	// and its cache is warm with the tail's signatures), discarding the
	// one New built for the throwaway empty chain.
	p.verifier = chain.Verifier()
	p.pool = ledger.NewMempoolLanes(chain, p.cfg.MempoolCapacity, p.cfg.Shards)
	// The pool New built (and instrumented) was bound to the empty chain;
	// re-instrument its replacement so durable nodes keep live mempool
	// metrics. Registering the same families again is idempotent.
	p.verifier.Instrument(cfg.Telemetry)
	p.pool.Instrument(cfg.Telemetry)
	p.dir = dir
	p.mu.Unlock()
	return p, nil
}

// restoreCheckpoint verifies a checkpoint against the reopened chain and
// hands every commit-bus subscriber its snapshot. Any failure returns an
// error with the platform in an undefined derived state — the caller
// must discard it and fall back to full replay.
func (p *Platform) restoreCheckpoint(cp *store.Checkpoint) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cp.Height > p.chain.Height() {
		return fmt.Errorf("platform: checkpoint height %d beyond chain height %d", cp.Height, p.chain.Height())
	}
	var wantRoot string
	if cp.Height > 0 {
		blk, err := p.chain.BlockAt(cp.Height - 1)
		if err != nil {
			return fmt.Errorf("platform: checkpoint head: %w", err)
		}
		if got := blk.ID().String(); got != cp.HeadID {
			return fmt.Errorf("platform: checkpoint head id %s does not match chain %s", cp.HeadID, got)
		}
		// Standalone commits embed the post-execution state root in the
		// header; consensus-proposed blocks leave it zero (the proposer
		// cannot know the post-state before the block is decided). The
		// header cross-check applies only when a commitment is present.
		if blk.Header.StateRoot != (merkle.Hash{}) {
			wantRoot = blk.Header.StateRoot.String()
		}
	}
	if err := p.bus.Restore(cp.Subscribers, cp.Height); err != nil {
		return err
	}
	// The restored contract state must hash to both the checkpoint's
	// recorded root and the root committed in the block header at the
	// checkpoint height — the same double-entry the full replay enforces.
	root, err := p.engine.StateRoot()
	if err != nil {
		return fmt.Errorf("platform: restored state root: %w", err)
	}
	if root.String() != cp.StateHash {
		return fmt.Errorf("platform: restored state root %s does not match checkpoint %s", root.String(), cp.StateHash)
	}
	if wantRoot != "" && root.String() != wantRoot {
		return fmt.Errorf("platform: restored state root %s does not match block header %s", root.String(), wantRoot)
	}
	p.ckptHeight = cp.Height
	return nil
}

// replayFrom re-executes committed blocks from the given height upward,
// feeding each through the commit bus exactly like a live commit.
func (p *Platform) replayFrom(from uint64) error {
	return p.chain.Walk(from, func(b *ledger.Block) bool {
		p.mu.Lock()
		recs := p.executeBlockLocked(b)
		p.publishLocked(b, recs)
		p.mu.Unlock()
		return true
	})
}

// WriteCheckpoint snapshots the node's derived state — contract state,
// receipts, fact index, supply-chain graph, expert miner — into
// dir/checkpoint.ckpt, atomically replacing any previous checkpoint.
// Subsequent Opens restore it and replay only the newer WAL tail.
func (p *Platform) WriteCheckpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dir == "" {
		return ErrNotDurable
	}
	height := p.chain.Height()
	var headID string
	if height > 0 {
		headID = p.chain.HeadID().String()
	}
	root, err := p.engine.StateRoot()
	if err != nil {
		return fmt.Errorf("platform: checkpoint state root: %w", err)
	}
	blobs, err := p.bus.Snapshot()
	if err != nil {
		return err
	}
	chainSnap, err := p.chain.SnapshotState()
	if err != nil {
		return err
	}
	cp := &store.Checkpoint{
		Height:      height,
		HeadID:      headID,
		StateHash:   root.String(),
		Chain:       chainSnap,
		Subscribers: blobs,
	}
	if err := store.WriteCheckpoint(filepath.Join(p.dir, checkpointName), cp); err != nil {
		return err
	}
	p.ckptHeight = height
	return nil
}
