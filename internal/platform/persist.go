package platform

import (
	"fmt"
	"path/filepath"

	"repro/internal/ledger"
	"repro/internal/store"
)

// Durable deployment: a platform whose chain is backed by the
// write-ahead-logged file store, with full state reconstruction on
// restart. Contract state and the derived indexes (factual database,
// supply-chain graph) are not persisted separately — they are a pure
// function of the block sequence, so Open replays every block through the
// contract engine, which also re-verifies the chain's integrity (a
// tampered block file fails CRC or re-validation).

// Open creates or reopens a durable platform at dir. The chain log lives
// in dir/chain.log. The returned close function releases the log file.
func Open(dir string, cfg Config) (*Platform, func() error, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	log, err := store.OpenFileLog(filepath.Join(dir, "chain.log"))
	if err != nil {
		return nil, nil, err
	}
	chain, err := ledger.NewChain(log)
	if err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("platform: reopen chain: %w", err)
	}
	p.mu.Lock()
	p.chain = chain
	p.pool = ledger.NewMempool(chain, 1<<16)
	p.mu.Unlock()

	// Replay committed blocks through the engine to rebuild contract
	// state and the derived indexes.
	if err := chain.Walk(0, func(b *ledger.Block) bool {
		p.mu.Lock()
		recs := p.engine.ExecuteBlock(b)
		p.indexReceipts(b.Txs, recs)
		p.mu.Unlock()
		return true
	}); err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("platform: replay: %w", err)
	}
	return p, log.Close, nil
}
