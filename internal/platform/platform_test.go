package platform

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/aidetect"
	"repro/internal/consensus"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/factdb"
	"repro/internal/identity"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/ranking"
	"repro/internal/supplychain"
)

const factText = "the parliament ratified the border treaty according to the official record"

func newPlatform(t testing.TB) *Platform {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func trained(t testing.TB, p *Platform) {
	t.Helper()
	c := corpus.NewGenerator(11).Generate(400, 400)
	if err := p.TrainClassifier(aidetect.NewLogisticRegression(), c.Statements); err != nil {
		t.Fatal(err)
	}
}

func TestSeedFactIndexesImmediately(t *testing.T) {
	p := newPlatform(t)
	if err := p.SeedFact("f1", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	if p.FactIndex().Len() != 1 || !p.FactIndex().Contains(factText) {
		t.Fatal("fact not indexed after commit")
	}
	if p.Chain().Height() != 1 {
		t.Fatalf("height=%d", p.Chain().Height())
	}
}

func TestPublishBuildsGraph(t *testing.T) {
	p := newPlatform(t)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	if err := alice.PublishNews("n1", corpus.TopicPolitics, factText, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := alice.Relay("n2", "n1"); err != nil {
		t.Fatal(err)
	}
	if p.Graph().Len() != 2 {
		t.Fatalf("graph len=%d", p.Graph().Len())
	}
	tr, err := p.Graph().Trace("n2")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Rooted || tr.Depth != 1 {
		t.Fatalf("trace=%+v", tr)
	}
}

func TestRankItemCombinesSignals(t *testing.T) {
	p := newPlatform(t)
	trained(t, p)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	if err := alice.PublishNews("real", corpus.TopicPolitics, factText, nil, ""); err != nil {
		t.Fatal(err)
	}
	mallory := p.NewActor("mallory")
	fake := "shocking rigged corrupt exposed you won't believe the truth about the treaty"
	if err := mallory.PublishNews("fake", corpus.TopicPolitics, fake, nil, ""); err != nil {
		t.Fatal(err)
	}
	realRank, err := p.RankItem("real", ranking.MechanismCombined)
	if err != nil {
		t.Fatal(err)
	}
	fakeRank, err := p.RankItem("fake", ranking.MechanismCombined)
	if err != nil {
		t.Fatal(err)
	}
	if !realRank.Factual {
		t.Fatalf("real ranked fake: %+v", realRank)
	}
	if fakeRank.Factual {
		t.Fatalf("fake ranked factual: %+v", fakeRank)
	}
	if realRank.Score <= fakeRank.Score {
		t.Fatalf("scores inverted: real=%.3f fake=%.3f", realRank.Score, fakeRank.Score)
	}
}

func TestVoteAndResolvePipeline(t *testing.T) {
	p := newPlatform(t)
	trained(t, p)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	alice.PublishNews("n1", corpus.TopicPolitics, factText, nil, "")

	voters := make([]*Actor, 5)
	for i := range voters {
		voters[i] = p.NewActor("voter" + strconv.Itoa(i))
		if err := p.MintTo(voters[i].Address(), 100); err != nil {
			t.Fatal(err)
		}
		if err := voters[i].Vote("n1", true, 10); err != nil {
			t.Fatal(err)
		}
	}
	rank, err := p.ResolveByRanking("n1")
	if err != nil {
		t.Fatal(err)
	}
	if !rank.Factual || rank.VoteCount != 5 {
		t.Fatalf("rank=%+v", rank)
	}
	// Winners got their stake back (no losers, so no profit).
	bal, err := voters[0].Balance()
	if err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("balance=%d want 100", bal)
	}
	rep, err := voters[0].Reputation()
	if err != nil {
		t.Fatal(err)
	}
	if rep <= ranking.InitialReputation {
		t.Fatalf("rep=%f; correct voters must gain", rep)
	}
}

func TestResolvePromotesToFactDB(t *testing.T) {
	p := newPlatform(t)
	trained(t, p)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	// A verbatim republication of the fact scores ~1.0 and is already in
	// the DB, so publish a *new* factual statement instead and vote it up.
	newFact := "the city council proposed the budget amendment in a public session"
	if err := alice.PublishNews("n1", corpus.TopicPolitics, newFact, nil, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v := p.NewActor("v" + strconv.Itoa(i))
		p.MintTo(v.Address(), 100)
		if err := v.Vote("n1", true, 20); err != nil {
			t.Fatal(err)
		}
	}
	before := p.FactIndex().Len()
	rank, err := p.ResolveByRanking("n1")
	if err != nil {
		t.Fatal(err)
	}
	if !rank.Factual {
		t.Fatalf("rank=%+v", rank)
	}
	// Unanimous high-rep crowd clears the promotion gate.
	if p.FactIndex().Len() != before+1 {
		t.Fatalf("fact index len=%d want %d", p.FactIndex().Len(), before+1)
	}
	ok, err := factdb.Has(p.Engine(), p.Authority(), newFact)
	if err != nil || !ok {
		t.Fatalf("promoted fact not in DB: %v %v", ok, err)
	}
}

func TestIdentityRegistrationViaActor(t *testing.T) {
	p := newPlatform(t)
	alice := p.NewActor("alice")
	if err := alice.Register("Alice", identity.RoleCreator); err != nil {
		t.Fatal(err)
	}
	rec, err := identity.Lookup(p.Engine(), alice.Address())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != identity.StatusPending {
		t.Fatalf("record=%+v", rec)
	}
	if err := p.VerifyAccount(alice.Address()); err != nil {
		t.Fatal(err)
	}
	if !identity.IsVerified(p.Engine(), alice.Address(), identity.RoleCreator) {
		t.Fatal("not verified")
	}
}

func TestMediaProvenancePipeline(t *testing.T) {
	p := newPlatform(t)
	alice := p.NewActor("alice")
	rng := rand.New(rand.NewSource(5))
	m, err := alice.RegisterMedia(rng, "img1", "cam-7", 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Authentic copy verifies clean.
	check, err := p.CheckMedia("img1", m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !check.Registered || check.Tampered || check.Owner != alice.Address().String() {
		t.Fatalf("check=%+v", check)
	}
	// A deepfake composite is caught by the reference check.
	tampered := aidetect.Tamper(m, 0.4, rng)
	check2, err := p.CheckMedia("img1", tampered.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !check2.Tampered {
		t.Fatalf("tamper not detected: %+v", check2)
	}
	if check2.BlindScore <= check.BlindScore {
		t.Fatalf("blind score did not rise: %.3f vs %.3f", check2.BlindScore, check.BlindScore)
	}
	// Unregistered media falls back to blind detection only.
	other := aidetect.CaptureMedia(rng, "img2", "cam-8", 4096)
	check3, err := p.CheckMedia("img2", other.Data)
	if err != nil {
		t.Fatal(err)
	}
	if check3.Registered {
		t.Fatalf("check=%+v", check3)
	}
}

func TestMediaDuplicateRegistrationFails(t *testing.T) {
	p := newPlatform(t)
	alice := p.NewActor("alice")
	rng := rand.New(rand.NewSource(6))
	if _, err := alice.RegisterMedia(rng, "img1", "cam", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.RegisterMedia(rng, "img1", "cam", 1024); err == nil {
		t.Fatal("duplicate media registration accepted")
	}
}

func TestOriginatorAccountabilityEndToEnd(t *testing.T) {
	p := newPlatform(t)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	bob := p.NewActor("bob")
	mallory := p.NewActor("mallory")
	carol := p.NewActor("carol")
	alice.PublishNews("n1", corpus.TopicPolitics, factText, nil, "")
	bob.Relay("n2", "n1")
	fake := "totally different fabricated scandal story about corruption plot"
	mallory.PublishNews("n3", corpus.TopicPolitics, fake, []string{"n2"}, corpus.OpInsert)
	carol.Relay("n4", "n3")

	tr, err := p.Graph().Trace("n4")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Originator != mallory.Address().String() {
		t.Fatalf("originator=%s want mallory=%s", tr.Originator, mallory.Address())
	}
}

func TestExpertsFromLedger(t *testing.T) {
	p := newPlatform(t)
	facts := []string{
		"the senate ratified the border treaty with a margin of 61 to 20",
		"the parliament signed the transparency act in a public session",
		"the city council proposed the budget amendment citing document 401",
	}
	for i, f := range facts {
		p.SeedFact("f"+strconv.Itoa(i), corpus.TopicPolitics, f)
	}
	expert := p.NewActor("expert")
	troll := p.NewActor("troll")
	for i, f := range facts {
		expert.PublishNews("e"+strconv.Itoa(i), corpus.TopicPolitics, f, nil, "")
	}
	troll.PublishNews("t0", corpus.TopicPolitics, "lizard people run the ministry wake up", nil, "")
	top := p.Experts(corpus.TopicPolitics, 1)
	if len(top) != 1 || top[0].Account != expert.Address().String() {
		t.Fatalf("experts=%+v", top)
	}
}

func TestParallelExecMatchesSerial(t *testing.T) {
	run := func(parallel bool) [32]byte {
		cfg := DefaultConfig()
		cfg.ParallelExec = parallel
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.SeedFact("f1", corpus.TopicPolitics, factText)
		for i := 0; i < 20; i++ {
			a := p.NewActor("user" + strconv.Itoa(i))
			if err := a.PublishNews("n"+strconv.Itoa(i), corpus.TopicPolitics, factText, nil, ""); err != nil {
				t.Fatal(err)
			}
		}
		root, err := p.Engine().StateRoot()
		if err != nil {
			t.Fatal(err)
		}
		return root
	}
	if run(false) != run(true) {
		t.Fatal("parallel execution produced a different state root")
	}
}

func TestCommitEmptyPoolIsNoop(t *testing.T) {
	p := newPlatform(t)
	blk, recs, err := p.Commit()
	if err != nil || blk != nil || recs != nil {
		t.Fatalf("blk=%v recs=%v err=%v", blk, recs, err)
	}
	if p.Chain().Height() != 0 {
		t.Fatalf("height=%d", p.Chain().Height())
	}
}

func TestFailedTxReceiptSurfaces(t *testing.T) {
	p := newPlatform(t)
	alice := p.NewActor("alice")
	// Voting without balance fails in-contract.
	payload, _ := ranking.VotePayload("ghost-item", true, 10)
	_, err := alice.MustExec("rank.vote", payload)
	if err == nil {
		t.Fatal("expected failure")
	}
}

func TestBatchedCommitsAcrossManyActors(t *testing.T) {
	p := newPlatform(t)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	// Many actors enqueue before one commit: exercises nonce ordering and
	// the block batch path.
	actors := make([]*Actor, 30)
	for i := range actors {
		actors[i] = p.NewActor("bulk" + strconv.Itoa(i))
		payload, _ := supplychain.PublishPayload("bulk-n"+strconv.Itoa(i), corpus.TopicPolitics, factText, nil, "")
		if _, err := actors[i].Send("news.publish", payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if p.Graph().Len() != 30 {
		t.Fatalf("graph len=%d", p.Graph().Len())
	}
}

func BenchmarkEndToEndPublish(b *testing.B) {
	p := newPlatform(b)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	alice := p.NewActor("alice")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alice.PublishNews("n"+strconv.Itoa(i), corpus.TopicPolitics, factText, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEquivocationEvidenceSlashesOnPlatform(t *testing.T) {
	p := newPlatform(t)
	// The byzantine account holds tokens and reputation...
	byz := keys.FromSeed([]byte("byzantine-validator"))
	if err := p.MintTo(keys.AddressFromPub(byz.Public()), 500); err != nil {
		t.Fatal(err)
	}
	// ...and signs two conflicting precommits, observed by a reporter.
	a := consensus.Vote{Type: consensus.VotePrecommit, Height: 9, Round: 0, BlockID: ledger.BlockID{1}, Voter: byz.Address()}
	b := consensus.Vote{Type: consensus.VotePrecommit, Height: 9, Round: 0, BlockID: ledger.BlockID{2}, Voter: byz.Address()}
	consensus.SignVote(&a, byz)
	consensus.SignVote(&b, byz)
	payload, err := evidence.SubmitPayload(a, b, byz.Public())
	if err != nil {
		t.Fatal(err)
	}
	reporter := p.NewActor("reporter")
	if _, err := reporter.MustExec("evidence.submit", payload); err != nil {
		t.Fatal(err)
	}
	// The platform's indexer enqueued the penalty; drain the pool.
	if err := p.CommitAll(); err != nil {
		t.Fatal(err)
	}
	slashed, err := evidence.IsSlashed(p.Engine(), p.Authority(), byz.Address())
	if err != nil || !slashed {
		t.Fatalf("slashed=%v err=%v", slashed, err)
	}
	bal, err := ranking.Balance(p.Engine(), p.Authority(), byz.Address())
	if err != nil || bal != 0 {
		t.Fatalf("balance=%d err=%v; stake must be burned", bal, err)
	}
	rep, err := ranking.Reputation(p.Engine(), p.Authority(), byz.Address())
	if err != nil || rep > 0.011 {
		t.Fatalf("rep=%f err=%v; reputation must be floored", rep, err)
	}
}

func TestCreatorRewardOnFactualResolution(t *testing.T) {
	p := newPlatform(t)
	p.SeedFact("f1", corpus.TopicPolitics, factText)
	journo := p.NewActor("rewarded-journalist")
	if err := journo.PublishNews("n1", corpus.TopicPolitics, factText, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ResolveByRanking("n1"); err != nil {
		t.Fatal(err)
	}
	bal, err := journo.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if bal != DefaultConfig().CreatorReward {
		t.Fatalf("creator balance=%d want %d", bal, DefaultConfig().CreatorReward)
	}
	// A fake item earns nothing.
	troll := p.NewActor("unrewarded-troll")
	if err := troll.PublishNews("fab", corpus.TopicPolitics, "invented nonsense hoax claim entirely", nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ResolveByRanking("fab"); err != nil {
		t.Fatal(err)
	}
	tb, _ := troll.Balance()
	if tb != 0 {
		t.Fatalf("troll balance=%d want 0", tb)
	}
}
