// Package platform assembles the AI blockchain trusting-news platform —
// contribution (4) of the paper and the system of Fig. 1. It wires the
// smart contracts (identity, factdb, news, rank, newsroom, media) into one
// contract engine over a validated chain, attaches the AI components, and
// maintains the two derived indexes the mechanisms need: the factual
// database similarity index and the news supply-chain graph, both rebuilt
// incrementally from contract events as blocks commit.
//
// A Platform can run standalone (it mines its own blocks, which is what
// the examples and most experiments use) or as the application under BFT
// consensus (see internal/consensus.ChainApp).
package platform

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/aidetect"
	"repro/internal/blobstore"
	"repro/internal/commitbus"
	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/factdb"
	"repro/internal/identity"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/newsroom"
	"repro/internal/ranking"
	"repro/internal/search"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// Errors returned by this package.
var (
	// ErrTxFailed indicates a transaction whose receipt is not OK.
	ErrTxFailed = errors.New("platform: transaction failed")
	// ErrNotTrained indicates ranking before TrainClassifier.
	ErrNotTrained = errors.New("platform: AI classifier not trained")
)

// Config tunes a platform node.
type Config struct {
	// AuthoritySeed derives the platform authority key.
	AuthoritySeed string
	// PromoteThreshold gates factual-database promotion (default 0.9).
	PromoteThreshold float64
	// MaxTxsPerBlock bounds standalone block size (default 512).
	MaxTxsPerBlock int
	// MempoolCapacity bounds the pending-transaction pool. Zero derives a
	// default scaled to MaxTxsPerBlock (at least 128 blocks' worth, never
	// below 65536).
	MempoolCapacity int
	// ParallelExec uses the optimistic parallel executor for blocks.
	ParallelExec bool
	// Shards partitions contract state into this many key-hash shards and
	// executes blocks through the shard-lane scheduler: single-shard
	// transactions run concurrently lane-per-shard, cross-shard
	// transactions sequence through deterministic barrier phases, and the
	// mempool splits into as many sender-hash admission lanes. State
	// roots stay byte-identical to serial execution whatever the value,
	// so nodes with different shard counts interoperate. 0 or 1 keeps the
	// single-lane path (ParallelExec then picks the optimistic executor).
	Shards int
	// Weights tunes the combined ranking mechanism.
	Weights ranking.Weights
	// CreatorReward is minted to an item's creator when it resolves
	// factual (Fig. 2's incentive for content creators; default 25).
	CreatorReward uint64
	// OffChainBodies routes Actor.PublishNews bodies through the blob
	// store: the transaction carries only {CID, size}, and the body is
	// content-addressed off-chain (the platform's in-process stand-in for
	// the IPFS deployments of DClaims-style systems). DefaultConfig
	// enables it; a zero Config keeps the legacy inline path.
	OffChainBodies bool
	// BlobChunkSize sets the blob store's chunk granularity (default
	// blobstore.DefaultChunkSize).
	BlobChunkSize int
	// BlobDir, when non-empty, backs the blob store with files under this
	// directory. Open derives it from the node's data directory.
	BlobDir string
	// MaxTxPayloadBytes tightens the mempool's admission-time payload cap
	// (0 keeps ledger.DefaultMempoolPayloadBytes). The consensus hard cap
	// ledger.MaxTxPayloadBytes applies regardless.
	MaxTxPayloadBytes int
	// VerifyWorkers sets the block-verification worker-pool width (0 means
	// GOMAXPROCS). Mempool admission, consensus proposal validation,
	// Chain.Append and checkpoint replay all share the pool and its
	// signature cache.
	VerifyWorkers int
	// SerialVerify forces single-threaded block verification — the
	// baseline kept for perf comparisons (EXPERIMENTS.md E18). The
	// signature cache stays active.
	SerialVerify bool
	// SigCacheCapacity bounds the verified-signature cache (0 means
	// ledger.DefaultSigCacheCapacity).
	SigCacheCapacity int
	// Telemetry, when non-nil, instruments the node's hot paths (mempool,
	// blob store, commit bus, commits) on the given registry and enables
	// span tracing. Nil — the default — keeps every instrument a no-op, so
	// library users pay nothing.
	Telemetry *telemetry.Registry
	// Admission, when non-nil, enables platform-wide admission control:
	// Submit passes through a bounded-concurrency gate with CoDel-style
	// queue-delay shedding, blob reads at the API edge are gated the
	// same way, and the HTTP gateway enforces any static per-route rate
	// limits. Shed requests fail fast with admission.ErrOverCapacity
	// (HTTP 429) instead of queueing without bound. Nil — the default —
	// admits everything, so existing callers are unaffected.
	Admission *admission.Config
}

// defaultMempoolCapacity scales the pending pool to the block size: room
// for at least 128 full blocks, never below the historical 1<<16 floor.
func defaultMempoolCapacity(maxTxsPerBlock int) int {
	capacity := 128 * maxTxsPerBlock
	if capacity < 1<<16 {
		capacity = 1 << 16
	}
	return capacity
}

// newVerifier builds the node's verification pipeline from the config: a
// worker pool over a bounded verified-signature cache.
func newVerifier(cfg Config) *ledger.Verifier {
	v := ledger.NewVerifier(ledger.NewSigCache(cfg.SigCacheCapacity), cfg.VerifyWorkers)
	v.SetSerial(cfg.SerialVerify)
	return v
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{
		AuthoritySeed:    "platform-authority",
		PromoteThreshold: 0.9,
		MaxTxsPerBlock:   512,
		Weights:          ranking.DefaultWeights(),
		CreatorReward:    25,
		OffChainBodies:   true,
		BlobChunkSize:    blobstore.DefaultChunkSize,
	}
}

// Platform is one trusting-news node.
type Platform struct {
	mu sync.Mutex

	cfg       Config
	engine    *contract.Engine
	chain     *ledger.Chain
	pool      *ledger.Mempool
	authority *keys.KeyPair
	// verifier is the node's block-verification pipeline: a GOMAXPROCS
	// worker pool over a bounded signature cache shared by mempool
	// admission, chain append, consensus proposal validation and
	// checkpoint replay.
	verifier *ledger.Verifier

	factIndex  *factdb.Index
	graph      *supplychain.Graph
	classifier aidetect.TextClassifier
	mediaDet   *aidetect.MediaDetector
	// blobs holds article bodies off-chain, keyed by content id; the chain
	// carries only CIDs (plus legacy inline bodies).
	blobs *blobstore.Store
	// searchIdx is the full-text index over committed article bodies.
	searchIdx *search.Index
	// searchSub is the async indexer keeping searchIdx in sync with the
	// chain; queries may lag the head by its backlog (see FlushSearch).
	searchSub *search.Subscriber

	// bus is the event-sourced commit pipeline: every committed block is
	// published once, and all derived indexes (fact index, supply-chain
	// graph, expert miner, receipts, penalties) update as subscribers.
	bus *commitbus.Bus
	// receipts is the receipt-by-txid subscriber.
	receipts *receiptStore
	// experts is the incremental per-topic item index for expert mining.
	experts *supplychain.ExpertMiner
	// dir is the durable data directory ("" for in-memory nodes).
	dir string
	// ckptHeight is the height covered by the last written or restored
	// checkpoint (0 if none).
	ckptHeight uint64
	// authNonce tracks authority txs pending beyond the committed nonce.
	authNonce uint64
	// replicated marks a platform driven by external consensus; standalone
	// mining is disabled to prevent forking away from the agreed chain.
	replicated bool
	// onSubmit, when set, observes every transaction Submit accepts into
	// the mempool (cluster mode relays them to peer validators).
	onSubmit func(*ledger.Tx)
	// clock supplies block timestamps (fixed epoch by default for
	// reproducibility; override with SetClock).
	clock func() time.Time
	// admit is the node's admission controller (nil without
	// Config.Admission; every method is nil-safe and admits).
	admit *admission.Controller
	// tm holds the node's cached commit-path instrument handles (nil
	// without Config.Telemetry; all methods are nil-safe).
	tm platformMetrics
	// exec accumulates execution-scheduler stats across every executed
	// block (guarded by p.mu; read via ExecStats).
	exec ExecStats
	// tracer records commit spans (nil without Config.Telemetry).
	tracer *telemetry.Tracer
}

// platformMetrics instruments the platform-level commit path.
type platformMetrics struct {
	commits   *telemetry.Counter
	txs       *telemetry.Counter
	commitSec *telemetry.Histogram
	// Execution-scheduler instruments (trustnews_exec_*): populated for
	// every executor; the lane/wave families only move under sharding.
	execConflicts  *telemetry.Counter
	execCrossShard *telemetry.Counter
	execWaves      *telemetry.Counter
	execBarriers   *telemetry.Counter
	execWaveAborts *telemetry.Counter
	execLaneTxs    *telemetry.CounterVec
	conflictRate   *telemetry.Gauge
	crossShardFrac *telemetry.Gauge
}

// ExecStats accumulates execution-scheduler behaviour across every block
// this node executed (standalone commits, externally decided blocks and
// replay). E23 reads it to report lane occupancy, conflict rate and
// cross-shard fraction per sweep cell; the same numbers feed the
// trustnews_exec_* metric families in /v1/metrics.
type ExecStats struct {
	// Blocks and Txs count executed blocks and transactions.
	Blocks int
	Txs    int
	// Conflicts counts re-executed transactions (optimistic-executor
	// conflicts plus lane and barrier re-executions under sharding).
	Conflicts int
	// CrossShardTxs counts transactions sequenced through barrier phases.
	CrossShardTxs int
	// Waves and Barriers count parallel and serial segments.
	Waves    int
	Barriers int
	// WaveAborts counts waves that failed validation and re-ran serially.
	WaveAborts int
	// MaxLaneReexecSum accumulates each wave's deepest per-lane
	// re-execution chain — the lane scheduler's critical path in units of
	// transaction executions.
	MaxLaneReexecSum int
	// LaneTxs and LaneReexecs count per-lane occupancy and re-executions
	// (empty until a sharded block executes).
	LaneTxs     []int
	LaneReexecs []int
}

// ConflictRate returns re-executions per executed transaction.
func (s ExecStats) ConflictRate() float64 {
	if s.Txs == 0 {
		return 0
	}
	return float64(s.Conflicts) / float64(s.Txs)
}

// CrossShardFraction returns the fraction of transactions sequenced
// through barrier phases.
func (s ExecStats) CrossShardFraction() float64 {
	if s.Txs == 0 {
		return 0
	}
	return float64(s.CrossShardTxs) / float64(s.Txs)
}

// New creates a platform node with all contracts registered.
func New(cfg Config) (*Platform, error) {
	if cfg.AuthoritySeed == "" {
		cfg.AuthoritySeed = "platform-authority"
	}
	if cfg.PromoteThreshold == 0 {
		cfg.PromoteThreshold = 0.9
	}
	if cfg.MaxTxsPerBlock == 0 {
		cfg.MaxTxsPerBlock = 512
	}
	if cfg.Weights == (ranking.Weights{}) {
		cfg.Weights = ranking.DefaultWeights()
	}
	if cfg.MempoolCapacity == 0 {
		cfg.MempoolCapacity = defaultMempoolCapacity(cfg.MaxTxsPerBlock)
	}
	p := &Platform{
		cfg:       cfg,
		engine:    contract.NewShardedEngine(cfg.Shards),
		chain:     ledger.NewMemChain(),
		authority: keys.FromSeed([]byte(cfg.AuthoritySeed)),
		factIndex: factdb.NewIndex(),
		mediaDet:  aidetect.NewMediaDetector(),
		bus:       commitbus.New(),
		receipts:  newReceiptStore(),
		experts:   supplychain.NewExpertMiner(),
		searchIdx: search.New(),
		clock:     func() time.Time { return time.Unix(1562500000, 0).UTC() },
	}
	p.verifier = newVerifier(cfg)
	p.chain.SetVerifier(p.verifier)
	admit, err := admission.NewController(cfg.Admission, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	p.admit = admit
	if cfg.BlobDir != "" {
		blobs, err := blobstore.Open(cfg.BlobDir, cfg.BlobChunkSize)
		if err != nil {
			return nil, fmt.Errorf("platform: open blob store: %w", err)
		}
		p.blobs = blobs
	} else {
		p.blobs = blobstore.NewStore(cfg.BlobChunkSize)
	}
	p.pool = ledger.NewMempoolLanes(p.chain, cfg.MempoolCapacity, cfg.Shards)
	if cfg.MaxTxPayloadBytes > 0 {
		p.pool.SetMaxPayloadBytes(cfg.MaxTxPayloadBytes)
	}
	// Wire telemetry before any traffic. A nil registry yields nil
	// instruments everywhere, so the uninstrumented cost is one branch.
	p.verifier.Instrument(cfg.Telemetry)
	p.pool.Instrument(cfg.Telemetry)
	p.blobs.Instrument(cfg.Telemetry)
	p.bus.Instrument(cfg.Telemetry)
	p.tracer = cfg.Telemetry.Tracer()
	p.tm = platformMetrics{
		commits:        cfg.Telemetry.Counter("trustnews_platform_commits_total", "Blocks committed by this node (standalone or replicated)."),
		txs:            cfg.Telemetry.Counter("trustnews_platform_txs_committed_total", "Transactions inside committed blocks."),
		commitSec:      cfg.Telemetry.Histogram("trustnews_platform_commit_seconds", "Wall time to execute, append and index one block.", nil),
		execConflicts:  cfg.Telemetry.Counter("trustnews_exec_conflicts_total", "Transactions re-executed because speculation went stale (optimistic conflicts plus lane/barrier re-executions)."),
		execCrossShard: cfg.Telemetry.Counter("trustnews_exec_cross_shard_txs_total", "Transactions sequenced through cross-shard barrier phases."),
		execWaves:      cfg.Telemetry.Counter("trustnews_exec_waves_total", "Parallel lane segments executed by the shard scheduler."),
		execBarriers:   cfg.Telemetry.Counter("trustnews_exec_barriers_total", "Serial cross-shard barrier segments executed."),
		execWaveAborts: cfg.Telemetry.Counter("trustnews_exec_wave_aborts_total", "Waves whose lane results failed validation and re-ran serially."),
		execLaneTxs:    cfg.Telemetry.CounterVec("trustnews_exec_lane_txs_total", "Transactions executed per shard lane (occupancy).", "lane"),
		conflictRate:   cfg.Telemetry.Gauge("trustnews_exec_conflict_rate", "Re-executions per executed transaction (lifetime ratio)."),
		crossShardFrac: cfg.Telemetry.Gauge("trustnews_exec_cross_shard_fraction", "Fraction of executed transactions sequenced through barriers (lifetime ratio)."),
	}
	p.graph = supplychain.NewGraph(p.factIndex)
	p.searchSub = search.NewSubscriber(p.searchIdx, p.resolveBody)
	p.searchSub.Instrument(cfg.Telemetry)
	subs := []commitbus.Subscriber{
		&contractState{engine: p.engine},
		p.receipts,
		&factdb.IndexSubscriber{Index: p.factIndex},
		&supplychain.GraphSubscriber{Graph: p.graph, Resolve: p.resolveBody},
		p.experts,
		&penaltyForwarder{p: p},
		blobstore.NewsRefSubscriber(p.blobs),
		p.searchSub,
	}
	for _, s := range subs {
		if err := p.bus.Register(s); err != nil {
			return nil, err
		}
	}

	auth := p.authority.Address()
	contracts := []contract.Contract{
		&identity.Contract{Genesis: auth},
		&factdb.Contract{Genesis: auth, RankAuthority: auth, PromoteThreshold: cfg.PromoteThreshold},
		supplychain.Contract{},
		&ranking.Contract{Authority: auth},
		newsroom.Contract{},
		&MediaContract{},
		evidence.Contract{},
	}
	for _, c := range contracts {
		if err := p.engine.Register(c); err != nil {
			return nil, fmt.Errorf("platform: register %s: %w", c.Name(), err)
		}
	}
	return p, nil
}

// Authority returns the platform authority address (genesis for the
// identity registry, fact authority, ranking resolver).
func (p *Platform) Authority() keys.Address { return p.authority.Address() }

// Engine exposes the contract engine for read-only queries.
func (p *Platform) Engine() *contract.Engine { return p.engine }

// Chain exposes the underlying chain.
func (p *Platform) Chain() *ledger.Chain { return p.chain }

// Verifier exposes the node's block-verification pipeline (worker pool +
// signature cache).
func (p *Platform) Verifier() *ledger.Verifier { return p.verifier }

// Graph exposes the news supply-chain graph.
func (p *Platform) Graph() *supplychain.Graph { return p.graph }

// FactIndex exposes the factual-database similarity index.
func (p *Platform) FactIndex() *factdb.Index { return p.factIndex }

// Blobs exposes the off-chain article body store.
func (p *Platform) Blobs() *blobstore.Store { return p.blobs }

// SearchIndex exposes the full-text article index.
func (p *Platform) SearchIndex() *search.Index { return p.searchIdx }

// Search returns the top-k committed articles matching the query,
// BM25-ranked. Indexing is asynchronous: results may lag the chain head
// by the indexer backlog (SearchIndexerStats reports it; FlushSearch
// waits it out).
func (p *Platform) Search(q string, k int) []search.Result { return p.searchIdx.Query(q, k) }

// SearchPage runs a ranked, paginated query (the /v1/search path).
func (p *Platform) SearchPage(q string, ranker search.Ranker, offset, limit int) search.Page {
	return p.searchIdx.QueryPage(q, ranker, offset, limit)
}

// FlushSearch blocks until the async indexer has applied every
// committed document. Tests and read-your-writes callers use it;
// serving paths should not (the whole point is that they never wait).
func (p *Platform) FlushSearch() { p.searchSub.Flush() }

// SearchIndexerStats reports the async indexer's backlog and error
// accounting (the /v1/healthz indexer-lag field).
func (p *Platform) SearchIndexerStats() search.IndexerStats { return p.searchSub.Stats() }

// resolveBody fetches an off-chain article body by content id. It backs
// the graph and search subscribers' hydration and every read path that
// needs the text behind a CID-only item.
func (p *Platform) resolveBody(cid string) (string, error) {
	c, err := blobstore.ParseCID(cid)
	if err != nil {
		return "", err
	}
	return p.blobs.GetString(c)
}

// hydrateItem fills in an off-chain body so callers can treat Text as
// always present.
func (p *Platform) hydrateItem(it *supplychain.Item) error {
	if it.Text != "" || it.CID == "" {
		return nil
	}
	text, err := p.resolveBody(it.CID)
	if err != nil {
		return fmt.Errorf("platform: resolve body of %s: %w", it.ID, err)
	}
	it.Text = text
	return nil
}

// Item returns a committed news item with its body hydrated.
func (p *Platform) Item(id string) (supplychain.Item, error) {
	it, err := supplychain.GetItem(p.engine, p.authority.Address(), id)
	if err != nil {
		return supplychain.Item{}, err
	}
	if err := p.hydrateItem(&it); err != nil {
		return supplychain.Item{}, err
	}
	return it, nil
}

// SetClock overrides the block timestamp source.
func (p *Platform) SetClock(now func() time.Time) { p.clock = now }

// Bus exposes the commit-event bus (to register additional derived-index
// subscribers before the first commit).
func (p *Platform) Bus() *commitbus.Bus { return p.bus }

// Telemetry returns the node's metrics registry (nil when the node was
// built without Config.Telemetry).
func (p *Platform) Telemetry() *telemetry.Registry { return p.cfg.Telemetry }

// BusStats reports per-subscriber delivery/error/lag accounting.
func (p *Platform) BusStats() []commitbus.SubscriberStats { return p.bus.Stats() }

// Admission returns the node's admission controller (nil when the node
// was built without Config.Admission — every method on it still admits).
func (p *Platform) Admission() *admission.Controller { return p.admit }

// MempoolSize reports the number of pending transactions (the /v1/healthz
// mempool-depth field).
func (p *Platform) MempoolSize() int { return p.pool.Size() }

// ConsensusAttached reports whether the platform runs replicated under
// external consensus (AttachConsensus was called) rather than mining its
// own blocks.
func (p *Platform) ConsensusAttached() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicated
}

// ExpertMiner exposes the incremental per-topic item index.
func (p *Platform) ExpertMiner() *supplychain.ExpertMiner { return p.experts }

// CheckpointHeight returns the chain height covered by the last written
// or restored checkpoint (0 if the node never checkpointed).
func (p *Platform) CheckpointHeight() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ckptHeight
}

// TrainClassifier fits the AI text component on labelled statements.
func (p *Platform) TrainClassifier(c aidetect.TextClassifier, train []corpus.Statement) error {
	if err := c.Train(train); err != nil {
		return fmt.Errorf("platform: train classifier: %w", err)
	}
	p.mu.Lock()
	p.classifier = c
	p.mu.Unlock()
	return nil
}

// executeBlockLocked runs one block through the configured executor —
// shard-lane scheduler (Shards > 1), optimistic parallel executor
// (ParallelExec), or the serial baseline — and folds the scheduler's
// stats into the node's accumulator and trustnews_exec_* metrics. All
// three paths produce byte-identical state and receipts. Caller holds
// p.mu.
func (p *Platform) executeBlockLocked(b *ledger.Block) []contract.Receipt {
	switch {
	case p.cfg.Shards > 1:
		recs, ss := p.engine.ExecuteBlockSharded(b, p.cfg.Shards, 0)
		p.recordShardStatsLocked(ss)
		return recs
	case p.cfg.ParallelExec:
		recs, ps := p.engine.ExecuteBlockParallel(b, 0)
		p.recordParallelStatsLocked(ps)
		return recs
	default:
		recs := p.engine.ExecuteBlock(b)
		p.exec.Blocks++
		p.exec.Txs += len(b.Txs)
		return recs
	}
}

// recordParallelStatsLocked folds one optimistic-executor run into the
// node accumulator and metrics. Caller holds p.mu.
func (p *Platform) recordParallelStatsLocked(ps contract.ParallelStats) {
	p.exec.Blocks++
	p.exec.Txs += ps.Txs
	p.exec.Conflicts += ps.Conflicts
	p.tm.execConflicts.Add(uint64(ps.Conflicts))
	p.tm.conflictRate.Set(p.exec.ConflictRate())
}

// recordShardStatsLocked folds one shard-scheduler run into the node
// accumulator and metrics. Caller holds p.mu.
func (p *Platform) recordShardStatsLocked(ss contract.ShardStats) {
	p.exec.Blocks++
	p.exec.Txs += ss.Txs
	p.exec.Conflicts += ss.Conflicts()
	p.exec.CrossShardTxs += ss.CrossShardTxs
	p.exec.Waves += ss.Waves
	p.exec.Barriers += ss.Barriers
	p.exec.WaveAborts += ss.WaveAborts
	p.exec.MaxLaneReexecSum += ss.MaxLaneReexecSum
	if len(p.exec.LaneTxs) < len(ss.LaneTxs) {
		p.exec.LaneTxs = append(p.exec.LaneTxs, make([]int, len(ss.LaneTxs)-len(p.exec.LaneTxs))...)
		p.exec.LaneReexecs = append(p.exec.LaneReexecs, make([]int, len(ss.LaneReexecs)-len(p.exec.LaneReexecs))...)
	}
	for i, n := range ss.LaneTxs {
		p.exec.LaneTxs[i] += n
		if n > 0 && p.tm.execLaneTxs != nil {
			p.tm.execLaneTxs.With(strconv.Itoa(i)).Add(uint64(n))
		}
	}
	for i, n := range ss.LaneReexecs {
		p.exec.LaneReexecs[i] += n
	}
	p.tm.execConflicts.Add(uint64(ss.Conflicts()))
	p.tm.execCrossShard.Add(uint64(ss.CrossShardTxs))
	p.tm.execWaves.Add(uint64(ss.Waves))
	p.tm.execBarriers.Add(uint64(ss.Barriers))
	p.tm.execWaveAborts.Add(uint64(ss.WaveAborts))
	p.tm.conflictRate.Set(p.exec.ConflictRate())
	p.tm.crossShardFrac.Set(p.exec.CrossShardFraction())
}

// ExecStats returns a copy of the node's accumulated execution-scheduler
// stats (lane slices deep-copied).
func (p *Platform) ExecStats() ExecStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.exec
	out.LaneTxs = append([]int(nil), p.exec.LaneTxs...)
	out.LaneReexecs = append([]int(nil), p.exec.LaneReexecs...)
	return out
}

// Submit verifies and enqueues a signed transaction. In cluster mode the
// accepted transaction is also handed to the relay hook (SetOnSubmit) so
// peer validators learn about it before their next proposal.
//
// With Config.Admission set, Submit first passes the mempool admission
// gate: concurrent signature verifications are bounded, a short queue
// absorbs bursts, and once queue delay indicates sustained overload the
// gate sheds with admission.ErrOverCapacity before any verification
// work is spent — the transaction was never admitted and its nonce is
// safe to reuse.
func (p *Platform) Submit(tx *ledger.Tx) error {
	if err := p.admit.AcquireMempool(); err != nil {
		return err
	}
	defer p.admit.ReleaseMempool()
	if err := p.pool.Add(tx); err != nil {
		return err
	}
	p.mu.Lock()
	relay := p.onSubmit
	p.mu.Unlock()
	if relay != nil {
		relay(tx)
	}
	return nil
}

// Commit mines one block from the mempool in standalone mode: executes
// the batch, appends the block, and indexes the emitted events. It
// returns the committed block and its receipts (nil block if the pool was
// empty).
func (p *Platform) Commit() (*ledger.Block, []contract.Receipt, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.replicated {
		return nil, nil, errors.New("platform: standalone commit disabled under consensus")
	}
	txs := p.pool.Batch(p.cfg.MaxTxsPerBlock)
	if len(txs) == 0 {
		return nil, nil, nil
	}
	var start time.Time
	if p.tm.commitSec != nil {
		start = time.Now()
	}
	sp := p.tracer.Start("platform.commit")
	blk := ledger.NewBlock(p.chain.Height(), p.chain.HeadID(), [32]byte{}, p.clock(), p.authority.Address(), txs)
	exec := sp.Child("engine.execute")
	recs := p.executeBlockLocked(blk)
	exec.End()
	root, err := p.engine.StateRoot()
	if err != nil {
		sp.SetAttr("error", "state_root")
		sp.End()
		return nil, nil, fmt.Errorf("platform: state root: %w", err)
	}
	blk.Header.StateRoot = root
	if err := p.chain.Append(blk); err != nil {
		sp.SetAttr("error", "append")
		sp.End()
		return nil, nil, fmt.Errorf("platform: append block: %w", err)
	}
	p.pool.Remove(txs)
	pub := sp.Child("commitbus.publish")
	p.publishLocked(blk, recs)
	pub.End()
	p.tm.commits.Inc()
	p.tm.txs.Add(uint64(len(txs)))
	if p.tm.commitSec != nil {
		p.tm.commitSec.Observe(time.Since(start).Seconds())
	}
	sp.SetAttr("height", fmt.Sprintf("%d", blk.Header.Height))
	sp.SetAttr("txs", fmt.Sprintf("%d", len(txs)))
	sp.End()
	return blk, recs, nil
}

// CommitAll mines blocks until the mempool drains.
func (p *Platform) CommitAll() error {
	for {
		blk, _, err := p.Commit()
		if err != nil {
			return err
		}
		if blk == nil {
			return nil
		}
	}
}

// ApplyExternalBlock executes and indexes a block decided by external
// consensus (the ChainApp commit hook path). The chain append must have
// been performed by the caller's chain; this platform instance executes
// against its own engine to stay in sync.
func (p *Platform) ApplyExternalBlock(b *ledger.Block) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var start time.Time
	if p.tm.commitSec != nil {
		start = time.Now()
	}
	sp := p.tracer.Start("platform.applyExternalBlock")
	recs := p.executeBlockLocked(b)
	p.publishLocked(b, recs)
	p.tm.commits.Inc()
	p.tm.txs.Add(uint64(len(b.Txs)))
	if p.tm.commitSec != nil {
		p.tm.commitSec.Observe(time.Since(start).Seconds())
	}
	sp.SetAttr("height", fmt.Sprintf("%d", b.Header.Height))
	sp.End()
	return nil
}

// publishLocked feeds one committed block into the commit bus, updating
// every derived index (fact index, supply-chain graph, expert miner,
// receipt store, penalty forwarding) through its subscriber. Caller
// holds p.mu. Subscriber failures are recorded in the bus accounting
// (visible via BusStats / the HTTP gateway) rather than failing the
// commit: the block is already durable, and a lagging index must not
// fork the node away from consensus.
func (p *Platform) publishLocked(b *ledger.Block, recs []contract.Receipt) {
	_ = p.bus.Publish(commitbus.CommitEvent{
		Height:   b.Header.Height,
		Block:    b,
		Receipts: recs,
	})
}

// Receipt returns the receipt for a committed transaction.
func (p *Platform) Receipt(id ledger.TxID) (contract.Receipt, bool) {
	return p.receipts.Get(id)
}

// ---------------------------------------------------------------------------
// Ranking pipeline.
// ---------------------------------------------------------------------------

// ItemRank is the full ranking output for one news item.
type ItemRank struct {
	ItemID string  `json:"itemId"`
	Score  float64 `json:"score"`
	// Factual is the binary verdict at 0.5.
	Factual bool `json:"factual"`
	// Components for transparency (the paper's WVU-style "breakdown that
	// explains the rating", §I).
	AIFakeProb float64                 `json:"aiFakeProb"`
	Trace      supplychain.TraceResult `json:"trace"`
	VoteCount  int                     `json:"voteCount"`
	Mechanism  ranking.Mechanism       `json:"mechanism"`
}

// RankItem scores a committed news item under the given mechanism.
func (p *Platform) RankItem(itemID string, mech ranking.Mechanism) (ItemRank, error) {
	it, err := p.Item(itemID)
	if err != nil {
		return ItemRank{}, err
	}
	sig := ranking.Signals{AIFakeProb: -1, TraceScore: -1}
	out := ItemRank{ItemID: itemID, Mechanism: mech, AIFakeProb: -1}

	p.mu.Lock()
	cls := p.classifier
	p.mu.Unlock()
	if cls != nil {
		if prob, err := cls.Score(it.Text); err == nil {
			sig.AIFakeProb = prob
			out.AIFakeProb = prob
		}
	}
	if tr, err := p.graph.Trace(itemID); err == nil {
		sig.TraceScore = tr.Score
		sig.TraceRooted = tr.Rooted
		out.Trace = tr
	}
	votes, err := ranking.Votes(p.engine, p.authority.Address(), itemID)
	if err == nil {
		sig.Votes = votes
		out.VoteCount = len(votes)
	}
	agg := ranking.Aggregator{Mechanism: mech, Weights: p.cfg.Weights}
	score, err := agg.Score(sig)
	if err != nil {
		return ItemRank{}, fmt.Errorf("platform: rank %s: %w", itemID, err)
	}
	out.Score = score
	out.Factual = ranking.Verdict(score)
	return out, nil
}

// ResolveByRanking ranks an item with the combined mechanism, resolves the
// staked votes accordingly, and — when the item scores above the
// promotion threshold — promotes it into the factual database (§VI: "if
// the news is verified to be factual, then it can be added into the
// factual database"). The resolution txs are committed immediately.
func (p *Platform) ResolveByRanking(itemID string) (ItemRank, error) {
	rank, err := p.RankItem(itemID, ranking.MechanismCombined)
	if err != nil {
		return ItemRank{}, err
	}
	payload, err := ranking.ResolvePayload(itemID, rank.Factual)
	if err != nil {
		return ItemRank{}, err
	}
	if err := p.authoritySubmit("rank.resolve", payload); err != nil {
		return ItemRank{}, err
	}
	// Creator incentive (Fig. 2): verified factual content earns its
	// creator a token reward, funding the "encourage and reward factual
	// news sources" loop.
	if rank.Factual && p.cfg.CreatorReward > 0 {
		if it, err := supplychain.GetItem(p.engine, p.authority.Address(), itemID); err == nil {
			if addr, err := keys.ParseAddress(it.Creator); err == nil {
				if payload, err := ranking.MintPayload(addr, p.cfg.CreatorReward); err == nil {
					if err := p.authoritySubmit("rank.mint", payload); err != nil {
						return ItemRank{}, err
					}
				}
			}
		}
	}

	// Promotion gate (§VI): an item enters the factual database when the
	// verdict is factual AND either its trace already certifies it (a
	// near-verbatim descendant of a fact) or the reputation-weighted crowd
	// consensus clears the promotion threshold — the crowd-sourced
	// verification path for genuinely new reporting.
	votes, _ := ranking.Votes(p.engine, p.authority.Address(), itemID)
	crowd, hasCrowd := ranking.WeightedCrowdScore(votes)
	certified := rank.Trace.Rooted && rank.Trace.Score >= p.cfg.PromoteThreshold
	if rank.Factual && (certified || (hasCrowd && crowd >= p.cfg.PromoteThreshold)) {
		it, err := p.Item(itemID)
		if err == nil && !p.factIndex.Contains(it.Text) {
			// The stored certification score is whichever signal cleared
			// the gate.
			certScore := crowd
			if certified && rank.Trace.Score > certScore {
				certScore = rank.Trace.Score
			}
			pp, err := factdb.PromotePayload(itemID, it.Topic, it.Text, certScore)
			if err == nil {
				// A duplicate promotion (same normalized text from another
				// item) fails in-contract; that is fine.
				_ = p.authoritySubmit("factdb.promote", pp)
			}
		}
	}
	if err := p.CommitAll(); err != nil {
		return ItemRank{}, err
	}
	return rank, nil
}

// authoritySubmit signs a tx as the platform authority and enqueues it,
// tracking pending nonces so multiple authority txs can share one block.
func (p *Platform) authoritySubmit(kind string, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.authoritySubmitLocked(kind, payload)
}

// authoritySubmitLocked is authoritySubmit with p.mu already held.
func (p *Platform) authoritySubmitLocked(kind string, payload []byte) error {
	committed := p.chain.NextNonce(p.authority.Address().String())
	if committed > p.authNonce {
		p.authNonce = committed
	}
	tx, err := ledger.NewTx(p.authority, p.authNonce, kind, payload)
	if err != nil {
		return err
	}
	if err := p.pool.Add(tx); err != nil {
		return err
	}
	p.authNonce++
	return nil
}

// SubmitAuthority signs a transaction as the platform authority and
// commits immediately. Experiments use it to resolve items against a
// ground-truth oracle.
func (p *Platform) SubmitAuthority(kind string, payload []byte) error {
	if err := p.authoritySubmit(kind, payload); err != nil {
		return err
	}
	return p.CommitAll()
}

// MintTo grants platform tokens (authority-signed) and commits.
func (p *Platform) MintTo(addr keys.Address, amount uint64) error {
	payload, err := ranking.MintPayload(addr, amount)
	if err != nil {
		return err
	}
	if err := p.authoritySubmit("rank.mint", payload); err != nil {
		return err
	}
	return p.CommitAll()
}

// VerifyAccount genesis-verifies a registered account and commits.
func (p *Platform) VerifyAccount(addr keys.Address) error {
	payload, err := identity.ActPayload(addr)
	if err != nil {
		return err
	}
	if err := p.authoritySubmit("identity.verify", payload); err != nil {
		return err
	}
	return p.CommitAll()
}

// SeedFact adds an official record to the factual database and commits.
func (p *Platform) SeedFact(id string, topic corpus.Topic, text string) error {
	payload, err := factdb.SeedPayload(id, topic, text)
	if err != nil {
		return err
	}
	if err := p.authoritySubmit("factdb.seed", payload); err != nil {
		return err
	}
	return p.CommitAll()
}

// Experts mines the ledger for domain-topic experts (§VI, experiment
// E8). The expert-miner subscriber narrows the scan to the topic's
// committed items, so the cost is proportional to the topic, not the
// whole ledger.
func (p *Platform) Experts(topic corpus.Topic, k int) []supplychain.ExpertScore {
	ids := p.experts.TopicItems(topic)
	traces := make(map[string]supplychain.TraceResult, len(ids))
	for _, id := range ids {
		if tr, err := p.graph.Trace(id); err == nil {
			traces[id] = tr
		}
	}
	return p.graph.Experts(topic, traces, k)
}

// ---------------------------------------------------------------------------
// Actor: a convenience client holding a key and tracking nonces.
// ---------------------------------------------------------------------------

// Actor is a platform participant bound to one key pair.
type Actor struct {
	kp *keys.KeyPair
	p  *Platform
	mu sync.Mutex
	n  uint64
}

// NewActor derives an actor from a seed name.
func (p *Platform) NewActor(seed string) *Actor {
	return &Actor{kp: keys.FromSeed([]byte(seed)), p: p}
}

// Address returns the actor's ledger address.
func (a *Actor) Address() keys.Address { return a.kp.Address() }

// Key exposes the actor's key pair (for consensus wiring).
func (a *Actor) Key() *keys.KeyPair { return a.kp }

// Send signs, submits and returns the tx (not yet committed).
func (a *Actor) Send(kind string, payload []byte) (*ledger.Tx, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	committed := a.p.chain.NextNonce(a.kp.Address().String())
	if committed > a.n {
		a.n = committed
	}
	tx, err := ledger.NewTx(a.kp, a.n, kind, payload)
	if err != nil {
		return nil, err
	}
	if err := a.p.Submit(tx); err != nil {
		return nil, err
	}
	a.n++
	return tx, nil
}

// MustExec sends a tx, commits, and fails if the receipt is not OK.
func (a *Actor) MustExec(kind string, payload []byte) (contract.Receipt, error) {
	tx, err := a.Send(kind, payload)
	if err != nil {
		return contract.Receipt{}, err
	}
	if err := a.p.CommitAll(); err != nil {
		return contract.Receipt{}, err
	}
	rec, ok := a.p.Receipt(tx.ID())
	if !ok {
		return contract.Receipt{}, fmt.Errorf("%w: no receipt for %s", ErrTxFailed, tx.ID().Short())
	}
	if !rec.OK {
		return rec, fmt.Errorf("%w: %s: %s", ErrTxFailed, kind, rec.Err)
	}
	return rec, nil
}

// Register registers the actor's identity with a role.
func (a *Actor) Register(name string, role identity.Role) error {
	payload, err := identity.RegisterPayload(name, role)
	if err != nil {
		return err
	}
	_, err = a.MustExec("identity.register", payload)
	return err
}

// PublishNews publishes a news item (optionally derived from parents).
// With Config.OffChainBodies the body is written to the blob store and
// only its content id and size enter the transaction payload; the commit
// pipeline's subscribers hydrate the body wherever the text is needed.
func (a *Actor) PublishNews(id string, topic corpus.Topic, text string, parents []string, op corpus.Op) error {
	var payload []byte
	var err error
	if a.p.cfg.OffChainBodies && text != "" {
		cid, perr := a.p.blobs.PutString(text)
		if perr != nil {
			return fmt.Errorf("platform: store body of %s: %w", id, perr)
		}
		payload, err = supplychain.PublishRefPayload(id, topic, string(cid), len(text), parents, op)
	} else {
		payload, err = supplychain.PublishPayload(id, topic, text, parents, op)
	}
	if err != nil {
		return err
	}
	_, err = a.MustExec("news.publish", payload)
	return err
}

// Relay republishes a committed item verbatim under a new id.
func (a *Actor) Relay(newID, parentID string) error {
	parent, err := a.p.Item(parentID)
	if err != nil {
		return err
	}
	return a.PublishNews(newID, parent.Topic, parent.Text, []string{parentID}, corpus.OpVerbatim)
}

// Vote stakes tokens on an item's verdict.
func (a *Actor) Vote(itemID string, factual bool, stake uint64) error {
	payload, err := ranking.VotePayload(itemID, factual, stake)
	if err != nil {
		return err
	}
	_, err = a.MustExec("rank.vote", payload)
	return err
}

// Balance returns the actor's token balance.
func (a *Actor) Balance() (uint64, error) {
	return ranking.Balance(a.p.engine, a.kp.Address(), a.kp.Address())
}

// Reputation returns the actor's ranking reputation.
func (a *Actor) Reputation() (float64, error) {
	return ranking.Reputation(a.p.engine, a.kp.Address(), a.kp.Address())
}
