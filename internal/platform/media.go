package platform

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/aidetect"
	"repro/internal/contract"
)

// MediaContractName routes media-provenance transactions.
const MediaContractName = "media"

// Media-provenance errors.
var (
	// ErrMediaExists indicates a duplicate media registration.
	ErrMediaExists = errors.New("platform: media already registered")
	// ErrMediaNotFound indicates an unregistered media id.
	ErrMediaNotFound = errors.New("platform: media not registered")
)

// MediaRecord is the on-chain capture registration: the exact content hash
// and the perceptual hash, bound to the capturing account — the blockchain
// provenance that makes deepfake substitution detectable (§IV component 2).
type MediaRecord struct {
	ID          string `json:"id"`
	ContentHash string `json:"contentHash"` // hex sha256
	PHash       uint64 `json:"phash"`
	Owner       string `json:"owner"`
	DeviceID    string `json:"deviceId"`
	Height      uint64 `json:"height"`
}

type registerMediaArgs struct {
	ID          string `json:"id"`
	ContentHash string `json:"contentHash"`
	PHash       uint64 `json:"phash"`
	DeviceID    string `json:"deviceId"`
}

// MediaContract is the media-provenance chaincode.
type MediaContract struct{}

var _ contract.Contract = (*MediaContract)(nil)

// Name implements contract.Contract.
func (*MediaContract) Name() string { return MediaContractName }

// Execute implements contract.Contract.
func (m *MediaContract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "register":
		var in registerMediaArgs
		if err := json.Unmarshal(args, &in); err != nil {
			return nil, fmt.Errorf("platform: media args: %w", err)
		}
		if in.ID == "" || in.ContentHash == "" {
			return nil, errors.New("platform: media needs id and content hash")
		}
		key := "m/" + in.ID
		if ok, err := ctx.Has(key); err != nil {
			return nil, err
		} else if ok {
			return nil, fmt.Errorf("%w: %s", ErrMediaExists, in.ID)
		}
		rec := MediaRecord{
			ID: in.ID, ContentHash: in.ContentHash, PHash: in.PHash,
			Owner: ctx.Sender.String(), DeviceID: in.DeviceID, Height: ctx.Height,
		}
		raw, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("platform: marshal media: %w", err)
		}
		if err := ctx.Put(key, raw); err != nil {
			return nil, err
		}
		if err := ctx.Emit("media_registered", map[string]string{"id": in.ID, "owner": rec.Owner}); err != nil {
			return nil, err
		}
		return raw, nil
	case "get":
		raw, err := ctx.Get("m/" + string(args))
		if err != nil {
			return nil, fmt.Errorf("%w: %s", ErrMediaNotFound, string(args))
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("%w: media.%s", contract.ErrUnknownMethod, method)
	}
}

// RegisterMediaPayload builds a media.register payload from raw content.
func RegisterMediaPayload(id, deviceID string, data []byte) ([]byte, error) {
	ph, err := aidetect.ComputePHash(data)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	return json.Marshal(registerMediaArgs{
		ID: id, ContentHash: hex.EncodeToString(sum[:]), PHash: uint64(ph), DeviceID: deviceID,
	})
}

// MediaCheck is the outcome of verifying content against its registration.
type MediaCheck struct {
	Registered bool `json:"registered"`
	// Tampered is true when the content hash differs from registration.
	Tampered bool `json:"tampered"`
	// PHashDistance localizes how much content changed (0-64).
	PHashDistance int `json:"phashDistance"`
	// BlindScore is the no-reference detector score in [0,1].
	BlindScore float64 `json:"blindScore"`
	// Owner is the registered capturing account.
	Owner string `json:"owner,omitempty"`
}

// CheckMedia verifies content bytes against the on-chain registration and
// runs the blind detector.
func (p *Platform) CheckMedia(id string, data []byte) (MediaCheck, error) {
	blind, err := p.mediaDet.Score(aidetect.Media{ID: id, Data: data})
	if err != nil {
		return MediaCheck{}, err
	}
	out := MediaCheck{BlindScore: blind}
	raw, err := p.engine.Query(p.authority.Address(), MediaContractName+".get", []byte(id))
	if err != nil {
		return out, nil // unregistered: blind score only
	}
	var rec MediaRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return MediaCheck{}, fmt.Errorf("platform: decode media record: %w", err)
	}
	out.Registered = true
	out.Owner = rec.Owner
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != rec.ContentHash {
		out.Tampered = true
		ph, err := aidetect.ComputePHash(data)
		if err == nil {
			out.PHashDistance = aidetect.PHash(rec.PHash).Distance(ph)
		}
	}
	return out, nil
}

// RegisterMedia captures + registers synthetic media for an actor,
// returning the media object (examples and experiments use this).
func (a *Actor) RegisterMedia(rng *rand.Rand, id, deviceID string, size int) (aidetect.Media, error) {
	m := aidetect.CaptureMedia(rng, id, deviceID, size)
	payload, err := RegisterMediaPayload(id, deviceID, m.Data)
	if err != nil {
		return aidetect.Media{}, err
	}
	if _, err := a.MustExec(MediaContractName+".register", payload); err != nil {
		return aidetect.Media{}, err
	}
	return m, nil
}
