package platform

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ranking"
)

func TestDurablePlatformSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	// Session 1: seed facts, publish items, vote, resolve.
	p1, close1, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.SeedFact("f1", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	alice := p1.NewActor("alice")
	if err := alice.PublishNews("n1", corpus.TopicPolitics, factText, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := alice.Relay("n2", "n1"); err != nil {
		t.Fatal(err)
	}
	voter := p1.NewActor("voter")
	if err := p1.MintTo(voter.Address(), 100); err != nil {
		t.Fatal(err)
	}
	if err := voter.Vote("n1", true, 25); err != nil {
		t.Fatal(err)
	}
	height := p1.Chain().Height()
	root1, err := p1.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	if err := close1(); err != nil {
		t.Fatal(err)
	}

	// Session 2: everything is rebuilt from the log.
	p2, close2, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer close2()
	if p2.Chain().Height() != height {
		t.Fatalf("height=%d want %d", p2.Chain().Height(), height)
	}
	root2, err := p2.Engine().StateRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root2 != root1 {
		t.Fatal("state root changed across restart")
	}
	if p2.Graph().Len() != 2 || p2.FactIndex().Len() != 1 {
		t.Fatalf("indexes not rebuilt: graph=%d facts=%d", p2.Graph().Len(), p2.FactIndex().Len())
	}
	tr, err := p2.Graph().Trace("n2")
	if err != nil || !tr.Rooted {
		t.Fatalf("trace after restart: %+v err=%v", tr, err)
	}
	// Balances and votes survive.
	bal, err := ranking.Balance(p2.Engine(), p2.Authority(), p1.NewActor("voter").Address())
	if err != nil || bal != 75 {
		t.Fatalf("balance=%d err=%v", bal, err)
	}
	votes, err := ranking.Votes(p2.Engine(), p2.Authority(), "n1")
	if err != nil || len(votes) != 1 {
		t.Fatalf("votes=%v err=%v", votes, err)
	}
	// And the platform keeps working: resolve the carried-over vote.
	if _, err := p2.ResolveByRanking("n1"); err != nil {
		t.Fatal(err)
	}
}

func TestDurablePlatformDetectsTamperedLog(t *testing.T) {
	dir := t.TempDir()
	p, closeFn, err := Open(dir, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedFact("f1", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	a := p.NewActor("a")
	for i := 0; i < 3; i++ {
		if err := a.PublishNews("n"+strconv.Itoa(i), corpus.TopicPolitics, factText, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	closeFn()

	path := filepath.Join(dir, "chain.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, DefaultConfig()); err == nil {
		t.Fatal("tampered chain log accepted")
	}
}

func TestDurablePlatformManyRestarts(t *testing.T) {
	dir := t.TempDir()
	for session := 0; session < 4; session++ {
		p, closeFn, err := Open(dir, DefaultConfig())
		if err != nil {
			t.Fatalf("session %d: %v", session, err)
		}
		a := p.NewActor("writer")
		id := "item-" + strconv.Itoa(session)
		if err := a.PublishNews(id, corpus.TopicPolitics, "statement "+strconv.Itoa(session), nil, ""); err != nil {
			t.Fatalf("session %d: %v", session, err)
		}
		if p.Graph().Len() != session+1 {
			t.Fatalf("session %d: graph=%d", session, p.Graph().Len())
		}
		closeFn()
	}
}
