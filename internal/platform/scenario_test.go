package platform

import (
	"strconv"
	"testing"

	"repro/internal/aidetect"
	"repro/internal/corpus"
)

// This file holds the grand integration scenario: one platform instance
// exercising every mechanism the paper describes, in the order its
// ecosystem would — official records, journalism, propagation, attack,
// detection, crowd verification, settlement, promotion, expert discovery.
// It is the closest thing to "running the paper".

func TestGrandScenario(t *testing.T) {
	p := newPlatform(t)
	gen := corpus.NewGenerator(99)
	if err := p.TrainClassifier(aidetect.NewLogisticRegression(), gen.Generate(500, 500).Statements); err != nil {
		t.Fatal(err)
	}

	// 1. Official records seed the factual database.
	facts := make([]corpus.Statement, 0, 10)
	for i := 0; i < 10; i++ {
		s := gen.Factual()
		facts = append(facts, s)
		if err := p.SeedFact(s.ID, s.Topic, s.Text); err != nil {
			t.Fatal(err)
		}
	}

	// 2. A journalist reports; readers relay.
	journo := p.NewActor("scenario-journalist")
	if err := journo.PublishNews("report", facts[0].Topic, facts[0].Text, nil, ""); err != nil {
		t.Fatal(err)
	}
	readers := make([]*Actor, 6)
	for i := range readers {
		readers[i] = p.NewActor("scenario-reader" + strconv.Itoa(i))
		if err := p.MintTo(readers[i].Address(), 500); err != nil {
			t.Fatal(err)
		}
	}
	if err := readers[0].Relay("relay-1", "report"); err != nil {
		t.Fatal(err)
	}

	// 3. A troll derives a hoax from the relay and spreads it. The edit is
	// substantial: an emotional insertion compounded with a negation (a
	// light single edit is not condemnable by AI+trace alone before any
	// crowd votes arrive — see TestRankItemCombinesSignals for that case).
	troll := p.NewActor("scenario-troll")
	step1 := gen.Modify(facts[0], corpus.OpInsert)
	hoax := gen.Modify(corpus.Statement{ID: "tmp", Topic: step1.Topic, Text: step1.Text}, corpus.OpNegate)
	if err := troll.PublishNews("hoax", hoax.Topic, hoax.Text, []string{"relay-1"}, corpus.OpInsert); err != nil {
		t.Fatal(err)
	}
	if err := readers[1].Relay("hoax-relay", "hoax"); err != nil {
		t.Fatal(err)
	}

	// 4. The platform ranks both; the hoax is flagged and its originator
	// identified.
	realRank, err := p.RankItem("relay-1", "combined")
	if err != nil {
		t.Fatal(err)
	}
	hoaxRank, err := p.RankItem("hoax-relay", "combined")
	if err != nil {
		t.Fatal(err)
	}
	if !realRank.Factual || hoaxRank.Factual {
		t.Fatalf("verdicts: real=%+v hoax=%+v", realRank, hoaxRank)
	}
	if hoaxRank.Trace.Originator != troll.Address().String() {
		t.Fatalf("originator=%s want troll", hoaxRank.Trace.Originator)
	}

	// 5. Readers stake on both items; the platform resolves; correct
	// voters profit, wrong voters lose stake and reputation.
	for i, r := range readers {
		verdictOnHoax := false
		if i == 5 {
			verdictOnHoax = true // one gullible reader
		}
		if err := r.Vote("hoax-relay", verdictOnHoax, 50); err != nil {
			t.Fatal(err)
		}
		if err := r.Vote("relay-1", true, 50); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ResolveByRanking("hoax-relay"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ResolveByRanking("relay-1"); err != nil {
		t.Fatal(err)
	}
	correctBal, _ := readers[0].Balance()
	gullibleBal, _ := readers[5].Balance()
	if correctBal <= gullibleBal {
		t.Fatalf("economy inverted: correct=%d gullible=%d", correctBal, gullibleBal)
	}
	gullibleRep, _ := readers[5].Reputation()
	if gullibleRep >= 1.0 {
		t.Fatalf("gullible reputation=%f; must drop", gullibleRep)
	}

	// 6. A new factual statement, verified by the crowd, is promoted into
	// the factual database — the DB grows.
	fresh := gen.Factual()
	if err := journo.PublishNews("fresh", fresh.Topic, fresh.Text, nil, ""); err != nil {
		t.Fatal(err)
	}
	for _, r := range readers[:5] {
		if err := r.Vote("fresh", true, 10); err != nil {
			t.Fatal(err)
		}
	}
	before := p.FactIndex().Len()
	if _, err := p.ResolveByRanking("fresh"); err != nil {
		t.Fatal(err)
	}
	if p.FactIndex().Len() != before+1 {
		t.Fatalf("fresh fact not promoted: %d -> %d", before, p.FactIndex().Len())
	}

	// 7. Expert discovery ranks the journalist above the troll.
	experts := p.Experts(facts[0].Topic, 10)
	rank := map[string]int{}
	for i, es := range experts {
		rank[es.Account] = i + 1
	}
	jr, tr := rank[journo.Address().String()], rank[troll.Address().String()]
	if jr == 0 {
		t.Fatal("journalist absent from expert list")
	}
	if tr != 0 && tr < jr {
		t.Fatalf("troll (%d) outranks journalist (%d)", tr, jr)
	}

	// 8. The ledger records everything: every account's actions are
	// attributable and the chain is internally consistent.
	if p.Chain().Height() == 0 {
		t.Fatal("empty chain")
	}
	stats := p.Graph().Stats()
	if stats.Items != 5 || stats.Roots != 2 {
		t.Fatalf("graph stats=%+v", stats)
	}
}
