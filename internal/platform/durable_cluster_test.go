package platform

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/supplychain"
)

func newDurableCluster(t *testing.T, n int, seed int64) *DurableCluster {
	t.Helper()
	d, err := NewDurableCluster(DurableClusterConfig{
		Validators: n,
		Seed:       seed,
		Dir:        t.TempDir(),
		Platform:   DefaultConfig(),
		CertWindow: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// pumpDurable submits a batch of publishes to the live replicas.
func pumpDurable(t *testing.T, d *DurableCluster, kp *keys.KeyPair, fromNonce uint64, count int) uint64 {
	t.Helper()
	nonce := fromNonce
	for i := 0; i < count; i++ {
		payload, err := supplychain.PublishPayload(
			"durable-item-"+strconv.FormatUint(nonce, 10), corpus.TopicPolitics,
			"the committee published finding "+strconv.FormatUint(nonce, 10), nil, "")
		if err != nil {
			t.Fatal(err)
		}
		tx, err := ledger.NewTx(kp, nonce, "news.publish", payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.SubmitLive(tx); got == 0 {
			t.Fatalf("no live replica accepted tx %d", nonce)
		}
		nonce++
	}
	return nonce
}

// TestDurableClusterCrashRestartRecovers kills one replica mid-run (after
// a checkpoint), lets the survivors commit on, then restarts it and
// checks it recovers from disk, backfills the missed heights through
// consensus sync, and converges to the survivors' state root.
func TestDurableClusterCrashRestartRecovers(t *testing.T) {
	d := newDurableCluster(t, 4, 7)
	client := keys.FromSeed([]byte("durable-client"))
	nonce := pumpDurable(t, d, client, 0, 6)
	d.Start()
	if spent := d.RunUntilLiveHeight(6, 2*time.Minute); d.LiveMinHeight() < 6 {
		t.Fatalf("cluster stalled at height %d after %v", d.LiveMinHeight(), spent)
	}

	// Checkpoint then crash replica 2; the survivors keep committing.
	if err := d.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	crashedAt := d.Replicas[2].Chain().Height()
	if err := d.Crash(2); err != nil {
		t.Fatal(err)
	}
	if d.LiveCount() != 3 {
		t.Fatalf("live count %d want 3", d.LiveCount())
	}
	nonce = pumpDurable(t, d, client, nonce, 6)
	target := crashedAt + 8
	if d.RunUntilLiveHeight(target, 2*time.Minute); d.LiveMinHeight() < target {
		t.Fatalf("survivors stalled at height %d want %d", d.LiveMinHeight(), target)
	}

	// Restart: reopen from checkpoint + WAL tail, rejoin, catch up.
	if err := d.Restart(2); err != nil {
		t.Fatal(err)
	}
	if got := d.Replicas[2].Chain().Height(); got < crashedAt-1 || got > crashedAt {
		// The last block may race the crash's final fsync; anything in
		// [crashedAt-1, crashedAt] is a sound recovery.
		t.Fatalf("recovered height %d, crashed at %d", got, crashedAt)
	}
	if d.Replicas[2].CheckpointHeight() == 0 {
		t.Fatal("restart ignored the checkpoint (full replay)")
	}
	catchup := d.LiveMaxHeight() + 2
	if d.RunUntilLiveHeight(catchup, 2*time.Minute); d.LiveMinHeight() < catchup {
		t.Fatalf("restarted replica stalled at height %d want %d",
			d.Replicas[2].Chain().Height(), catchup)
	}
	ok, err := d.ConvergedLive()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("replicas diverged after crash-restart")
	}
	// Committed-durability: every pre-crash item survived into the
	// restarted replica's graph.
	if d.Replicas[2].Graph().Len() == 0 {
		t.Fatal("restarted replica lost its supply-chain index")
	}
	_ = nonce
}

// TestDurableClusterRestartWithoutCheckpoint crashes a replica that never
// wrote a checkpoint and checks the full-replay restart path also rejoins
// and converges.
func TestDurableClusterRestartWithoutCheckpoint(t *testing.T) {
	d := newDurableCluster(t, 4, 11)
	client := keys.FromSeed([]byte("durable-client-2"))
	pumpDurable(t, d, client, 0, 4)
	d.Start()
	if d.RunUntilLiveHeight(4, 2*time.Minute); d.LiveMinHeight() < 4 {
		t.Fatalf("cluster stalled at height %d", d.LiveMinHeight())
	}
	if err := d.Crash(1); err != nil {
		t.Fatal(err)
	}
	if d.RunUntilLiveHeight(8, 2*time.Minute); d.LiveMinHeight() < 8 {
		t.Fatalf("survivors stalled at height %d", d.LiveMinHeight())
	}
	if err := d.Restart(1); err != nil {
		t.Fatal(err)
	}
	if d.Replicas[1].CheckpointHeight() != 0 {
		t.Fatal("unexpected checkpoint on full-replay path")
	}
	catchup := d.LiveMaxHeight() + 2
	if d.RunUntilLiveHeight(catchup, 2*time.Minute); d.LiveMinHeight() < catchup {
		t.Fatalf("restarted replica stalled at height %d", d.Replicas[1].Chain().Height())
	}
	ok, err := d.ConvergedLive()
	if err != nil || !ok {
		t.Fatalf("converged=%v err=%v", ok, err)
	}
}
