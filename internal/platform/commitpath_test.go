package platform

import (
	"errors"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/ledger"
)

// TestCommitAndExternalBlocksProduceIdenticalState replays the exact
// block sequence mined by a standalone node into a second node through
// the consensus path (chain append + ApplyExternalBlock) and asserts the
// derived state — fact index, graph, expert miner, receipts, contract
// state — is byte-for-byte identical. Both paths feed the same commit
// bus, so any divergence is a bug in the pipeline.
func TestCommitAndExternalBlocksProduceIdenticalState(t *testing.T) {
	miner, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, miner, 16)

	follower, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The follower never saw the publish calls, so off-chain bodies must
	// come from elsewhere — here the miner's store, standing in for the
	// blob retrieval protocol.
	follower.Blobs().SetFallback(func(cid blobstore.CID) ([]byte, bool) {
		if !miner.Blobs().Has(cid) {
			return nil, false
		}
		b, err := miner.Blobs().Get(cid)
		return b, err == nil
	})
	if err := miner.Chain().Walk(0, func(b *ledger.Block) bool {
		if err := follower.Chain().Append(b); err != nil {
			t.Fatalf("append height %d: %v", b.Header.Height, err)
		}
		if err := follower.ApplyExternalBlock(b); err != nil {
			t.Fatalf("apply height %d: %v", b.Header.Height, err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}

	assertSameDerivedState(t, miner, follower)

	// Commit-bus accounting should agree too: same deliveries, no errors.
	minerStats, followerStats := miner.BusStats(), follower.BusStats()
	if len(minerStats) != len(followerStats) {
		t.Fatalf("subscriber count %d != %d", len(minerStats), len(followerStats))
	}
	for i := range minerStats {
		m, f := minerStats[i], followerStats[i]
		if m.Name != f.Name || m.Delivered != f.Delivered || m.LastHeight != f.LastHeight {
			t.Fatalf("stats diverge: %+v vs %+v", m, f)
		}
		if m.Errors != 0 || f.Errors != 0 {
			t.Fatalf("subscriber %s reported errors: %+v vs %+v", m.Name, m, f)
		}
	}
}

func TestMempoolCapacityConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MempoolCapacity = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := p.NewActor("spammer")
	for i := 0; i < 2; i++ {
		if _, err := a.Send("news.publish", []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Send("news.publish", []byte("{}")); !errors.Is(err, ledger.ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull, got %v", err)
	}
}

func TestMempoolCapacityConfigDurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MempoolCapacity = 2
	p, closeFn, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	a := p.NewActor("spammer")
	for i := 0; i < 2; i++ {
		if _, err := a.Send("news.publish", []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Send("news.publish", []byte("{}")); !errors.Is(err, ledger.ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull, got %v", err)
	}
}

func TestDefaultMempoolCapacityScalesWithBlockSize(t *testing.T) {
	if got := defaultMempoolCapacity(512); got != 1<<16 {
		t.Fatalf("default for 512 = %d want %d", got, 1<<16)
	}
	if got := defaultMempoolCapacity(4096); got != 128*4096 {
		t.Fatalf("default for 4096 = %d want %d", got, 128*4096)
	}
}
