package httpapi

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/aidetect"
	"repro/internal/commitbus"
	"repro/internal/corpus"
	"repro/internal/ingest"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/light"
	"repro/internal/platform"
	"repro/internal/search"
	"repro/internal/supplychain"
)

const factText = "the parliament ratified the border treaty according to the official record"

type fixture struct {
	p      *platform.Platform
	srv    *httptest.Server
	nonces map[string]uint64
	t      *testing.T
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.NewGenerator(21).Generate(300, 300)
	if err := p.TrainClassifier(aidetect.NewNaiveBayes(), c.Statements); err != nil {
		t.Fatal(err)
	}
	if err := p.SeedFact("f1", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, true))
	t.Cleanup(srv.Close)
	return &fixture{p: p, srv: srv, nonces: make(map[string]uint64), t: t}
}

// submit signs a tx for kp and POSTs it, returning the response.
func (f *fixture) submit(kp *keys.KeyPair, kind string, payload []byte) submitResponse {
	f.t.Helper()
	key := kp.Address().String()
	nonce := f.p.Chain().NextNonce(key)
	if pending := f.nonces[key]; pending > nonce {
		nonce = pending
	}
	tx, err := ledger.NewTx(kp, nonce, kind, payload)
	if err != nil {
		f.t.Fatal(err)
	}
	f.nonces[key] = nonce + 1
	body, _ := json.Marshal(submitRequest{TxHex: hex.EncodeToString(tx.Encode())})
	resp, err := http.Post(f.srv.URL+"/v1/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		f.t.Fatalf("submit %s: status %d: %s", kind, resp.StatusCode, eb.Error)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		f.t.Fatal(err)
	}
	return out
}

func (f *fixture) get(path string, v any) int {
	f.t.Helper()
	resp, err := http.Get(f.srv.URL + path)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			f.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestSubmitAndQueryItem(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	out := f.submit(alice, "news.publish", payload)
	if !out.Committed || !out.OK {
		t.Fatalf("submit=%+v", out)
	}
	var item supplychain.Item
	if code := f.get("/v1/items/n1", &item); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if item.Creator != alice.Address().String() {
		t.Fatalf("item=%+v", item)
	}
}

func TestSubmitRejectsGarbage(t *testing.T) {
	f := newFixture(t)
	for _, body := range []string{`{"txHex":"zz"}`, `{"txHex":"deadbeef"}`, `not json`} {
		resp, err := http.Post(f.srv.URL+"/v1/tx", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("body %q accepted", body)
		}
	}
}

func TestSubmitSurfacesContractFailure(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	// Publishing with a missing parent fails in-contract; HTTP still 200
	// with the receipt error surfaced.
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, "text", []string{"ghost"}, corpus.OpVerbatim)
	out := f.submit(alice, "news.publish", payload)
	if out.OK || out.Err == "" {
		t.Fatalf("out=%+v", out)
	}
}

func TestChainEndpoint(t *testing.T) {
	f := newFixture(t)
	var ch chainResponse
	if code := f.get("/v1/chain", &ch); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if ch.Height == 0 || ch.Facts != 1 || ch.FactRoot == "" {
		t.Fatalf("chain=%+v", ch)
	}
}

func TestRankAndTraceEndpoints(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	f.submit(alice, "news.publish", payload)

	var rank platform.ItemRank
	if code := f.get("/v1/items/n1/rank", &rank); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if !rank.Factual || rank.Trace.Score < 0.99 {
		t.Fatalf("rank=%+v", rank)
	}
	var tr supplychain.TraceResult
	if code := f.get("/v1/items/n1/trace", &tr); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if !tr.Rooted {
		t.Fatalf("trace=%+v", tr)
	}
	if code := f.get("/v1/items/ghost/rank", nil); code != http.StatusNotFound {
		t.Fatalf("ghost rank status=%d", code)
	}
}

func TestRankMechanismParameter(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	f.submit(alice, "news.publish", payload)
	var rank platform.ItemRank
	if code := f.get("/v1/items/n1/rank?mechanism=trace", &rank); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if rank.Mechanism != "trace" {
		t.Fatalf("mechanism=%s", rank.Mechanism)
	}
	// Majority with no votes has no signal: 409.
	if code := f.get("/v1/items/n1/rank?mechanism=majority", nil); code != http.StatusConflict {
		t.Fatalf("status=%d", code)
	}
}

func TestFactsEndpoint(t *testing.T) {
	f := newFixture(t)
	var facts []map[string]any
	if code := f.get("/v1/facts", &facts); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if len(facts) != 1 {
		t.Fatalf("facts=%v", facts)
	}
}

func TestExpertsEndpoint(t *testing.T) {
	f := newFixture(t)
	expert := keys.FromSeed([]byte("expert"))
	for i := 0; i < 3; i++ {
		payload, _ := supplychain.PublishPayload("e"+strconv.Itoa(i), corpus.TopicPolitics, factText, nil, "")
		f.submit(expert, "news.publish", payload)
	}
	var experts []supplychain.ExpertScore
	if code := f.get("/v1/experts?topic=politics&k=3", &experts); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if len(experts) == 0 || experts[0].Account != expert.Address().String() {
		t.Fatalf("experts=%+v", experts)
	}
	if code := f.get("/v1/experts", nil); code != http.StatusBadRequest {
		t.Fatalf("missing topic status=%d", code)
	}
	if code := f.get("/v1/experts?topic=politics&k=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("bad k status=%d", code)
	}
}

func TestAccountEndpoint(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	if err := f.p.MintTo(alice.Address(), 77); err != nil {
		t.Fatal(err)
	}
	var acct accountResponse
	if code := f.get("/v1/accounts/"+alice.Address().String(), &acct); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if acct.Balance != 77 || acct.Reputation != 1.0 {
		t.Fatalf("acct=%+v", acct)
	}
	if code := f.get("/v1/accounts/nothex", nil); code != http.StatusBadRequest {
		t.Fatalf("bad addr status=%d", code)
	}
}

func TestNonceReplayRejected(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	tx, _ := ledger.NewTx(alice, 0, "news.publish", payload)
	body, _ := json.Marshal(submitRequest{TxHex: hex.EncodeToString(tx.Encode())})
	post := func() int {
		resp, err := http.Post(f.srv.URL+"/v1/tx", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("first submit status=%d", code)
	}
	if code := post(); code == http.StatusOK {
		t.Fatal("replayed tx accepted")
	}
}

func BenchmarkSubmitHTTP(b *testing.B) {
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(New(p, true))
	defer srv.Close()
	alice := keys.FromSeed([]byte("alice"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, _ := supplychain.PublishPayload(fmt.Sprintf("n%d", i), corpus.TopicPolitics, factText, nil, "")
		tx, _ := ledger.NewTx(alice, uint64(i), "news.publish", payload)
		body, _ := json.Marshal(submitRequest{TxHex: hex.EncodeToString(tx.Encode())})
		resp, err := http.Post(srv.URL+"/v1/tx", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func TestProofEndpointVerifiesWithLightClient(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	out := f.submit(alice, "news.publish", payload)

	var pr proofResponse
	if code := f.get("/v1/proofs/"+out.TxID, &pr); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	raw, err := hex.DecodeString(pr.TxHex)
	if err != nil {
		t.Fatal(err)
	}
	// An untrusting reader: sync headers, verify the served proof.
	lc := light.NewClient()
	if err := lc.SyncFrom(f.p.Chain()); err != nil {
		t.Fatal(err)
	}
	tx, err := lc.Verify(light.Proof{Header: pr.Header, TxRaw: raw, Merkle: pr.Merkle})
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID().String() != out.TxID {
		t.Fatal("proved a different tx")
	}
	// Malformed and unknown ids.
	if code := f.get("/v1/proofs/zz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id status=%d", code)
	}
	unknown := ledger.TxID{0xaa}
	if code := f.get("/v1/proofs/"+unknown.String(), nil); code != http.StatusNotFound {
		t.Fatalf("unknown id status=%d", code)
	}
}

func TestBlobAndSearchEndpoints(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	// Publish with the body off-chain: store it, commit only the CID.
	cid, err := f.p.Blobs().PutString(factText)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := supplychain.PublishRefPayload("n1", corpus.TopicPolitics, string(cid), len(factText), nil, "")
	f.submit(alice, "news.publish", payload)

	// The item record carries the CID, hydrated for readers, and the blob
	// endpoint serves the raw verified bytes.
	var item supplychain.Item
	if code := f.get("/v1/items/n1", &item); code != http.StatusOK {
		t.Fatalf("item status=%d", code)
	}
	if item.CID != string(cid) || item.Text != factText {
		t.Fatalf("item not hydrated: %+v", item)
	}
	resp, err := http.Get(f.srv.URL + "/v1/blobs/" + item.CID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != factText {
		t.Fatalf("blob status=%d body=%q", resp.StatusCode, raw)
	}

	// Search finds the committed article (indexing is async: flush so
	// the query is deterministic).
	f.p.FlushSearch()
	var page search.Page
	if code := f.get("/v1/search?q=parliament+treaty&k=3", &page); code != http.StatusOK {
		t.Fatalf("search status=%d", code)
	}
	if page.Total == 0 || len(page.Results) == 0 || page.Results[0].ID != "n1" {
		t.Fatalf("search page=%+v", page)
	}
	// The legacy TF-IDF ranker and explicit pagination stay served.
	if code := f.get("/v1/search?q=parliament+treaty&limit=1&offset=0&ranker=tfidf", &page); code != http.StatusOK {
		t.Fatalf("tfidf search status=%d", code)
	}
	if len(page.Results) != 1 || page.Results[0].ID != "n1" {
		t.Fatalf("tfidf page=%+v", page)
	}
	if code := f.get("/v1/search?q=treaty&ranker=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad ranker status=%d", code)
	}

	// Malformed and missing inputs.
	if code := f.get("/v1/blobs/nothex", nil); code != http.StatusBadRequest {
		t.Fatalf("bad cid status=%d", code)
	}
	ghost := strings.Repeat("ab", 32)
	if code := f.get("/v1/blobs/"+ghost, nil); code != http.StatusNotFound {
		t.Fatalf("unknown cid status=%d", code)
	}
	if code := f.get("/v1/search", nil); code != http.StatusBadRequest {
		t.Fatalf("missing q status=%d", code)
	}
	if code := f.get("/v1/search?q=treaty&k=0", nil); code != http.StatusBadRequest {
		t.Fatalf("bad k status=%d", code)
	}
}

func TestCommitBusEndpoint(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	f.submit(alice, "news.publish", payload)

	var stats []commitbus.SubscriberStats
	if code := f.get("/v1/commitbus", &stats); code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if len(stats) == 0 {
		t.Fatal("no subscribers reported")
	}
	for _, s := range stats {
		if s.Name == "" {
			t.Fatalf("unnamed subscriber: %+v", s)
		}
		if s.Delivered == 0 || s.Lag != 0 || s.Errors != 0 {
			t.Fatalf("subscriber %s out of sync: %+v", s.Name, s)
		}
	}
}

func TestChainEndpointReportsCheckpointHeight(t *testing.T) {
	p, closeFn, err := platform.Open(t.TempDir(), platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if err := p.SeedFact("f1", corpus.TopicPolitics, factText); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, true))
	defer srv.Close()

	var ch chainResponse
	resp, err := http.Get(srv.URL + "/v1/chain")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ch.CheckpointHeight != 0 {
		t.Fatalf("fresh node checkpointHeight=%d", ch.CheckpointHeight)
	}

	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/chain")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ch.CheckpointHeight == 0 || ch.CheckpointHeight != ch.Height {
		t.Fatalf("checkpointHeight=%d height=%d", ch.CheckpointHeight, ch.Height)
	}
}

func TestIngestEndpointsAndHealthzFields(t *testing.T) {
	f := newFixture(t)
	// Without a pipeline the ingest endpoints refuse and healthz omits
	// the queue fields.
	if code := f.get("/v1/ingest", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("no-pipeline stats status=%d", code)
	}
	q, err := ingest.NewQueue(nil, ingest.QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := ingest.NewPipeline(f.p, q, ingest.PipelineConfig{Workers: 1})
	pl.Start()
	t.Cleanup(pl.Stop)
	if srv, ok := f.srv.Config.Handler.(*Server); ok {
		srv.SetIngest(pl)
	} else {
		t.Fatal("fixture handler is not *Server")
	}

	body := []byte(`{"source":"wire","topic":"politics","text":"<p>fresh wire copy about the harbor expansion</p>"}`)
	resp, err := http.Post(f.srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status=%d body=%s", resp.StatusCode, raw)
	}

	// Drive commits until the pipeline settles the item.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := f.p.CommitAll(); err != nil {
			t.Fatal(err)
		}
		if st := pl.Stats(); st.Published == 1 && st.Queue.Depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest never settled: %+v", pl.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	var stats ingest.PipelineStats
	if code := f.get("/v1/ingest", &stats); code != http.StatusOK {
		t.Fatalf("stats status=%d", code)
	}
	if stats.Published != 1 || stats.Queue.Acked != 1 {
		t.Fatalf("stats=%+v", stats)
	}
	var hz healthzResponse
	if code := f.get("/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status=%d", code)
	}
	if hz.IngestQueueDepth == nil || *hz.IngestQueueDepth != 0 || hz.IngestDead == nil {
		t.Fatalf("healthz ingest fields = %+v", hz)
	}

	// Missing text is a client error; an empty-body POST is too.
	resp2, err := http.Post(f.srv.URL+"/v1/ingest", "application/json", strings.NewReader(`{"source":"wire"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-text status=%d", resp2.StatusCode)
	}
}
