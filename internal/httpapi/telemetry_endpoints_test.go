package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/corpus"
	"repro/internal/gossip"
	"repro/internal/keys"
	"repro/internal/platform"
	"repro/internal/simnet"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// newTelemetryFixture is newFixture with an enabled metrics registry.
func newTelemetryFixture(t *testing.T) *fixture {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Telemetry = telemetry.New()
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, true))
	t.Cleanup(srv.Close)
	return &fixture{p: p, srv: srv, nonces: make(map[string]uint64), t: t}
}

func (f *fixture) getRaw(path string) (int, string, string) {
	f.t.Helper()
	resp, err := http.Get(f.srv.URL + path)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestBlobUnknownCID(t *testing.T) {
	f := newFixture(t)
	// Well-formed CID that no blob hashes to: 404, JSON error envelope.
	unknown := strings.Repeat("ab", 32)
	code, _, body := f.getRaw("/v1/blobs/" + unknown)
	if code != http.StatusNotFound {
		t.Fatalf("unknown cid: status=%d body=%s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error == "" {
		t.Fatalf("unknown cid: body=%q err=%v", body, err)
	}
	// Malformed CIDs (wrong length, non-hex) are 400, not 404.
	for _, bad := range []string{"zz", "abcd", strings.Repeat("zz", 32)} {
		if code, _, _ := f.getRaw("/v1/blobs/" + bad); code != http.StatusBadRequest {
			t.Fatalf("cid %q: status=%d", bad, code)
		}
	}
}

func TestSearchMalformedQuery(t *testing.T) {
	f := newFixture(t)
	for _, path := range []string{
		"/v1/search",               // missing q
		"/v1/search?q=%20%09",      // blank q
		"/v1/search?q=treaty&k=0",  // non-positive k
		"/v1/search?q=treaty&k=-3", // negative k
		"/v1/search?q=treaty&k=x",  // non-numeric k
	} {
		code, _, body := f.getRaw(path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status=%d body=%s", path, code, body)
		}
		var eb errorBody
		if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error == "" {
			t.Fatalf("%s: body=%q err=%v", path, body, err)
		}
	}
}

func TestMetricsEmptyRegistry(t *testing.T) {
	// A platform built without Config.Telemetry still serves the
	// endpoints: an empty — but valid — exposition and trace export.
	f := newFixture(t)
	code, ct, body := f.getRaw("/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status=%d", code)
	}
	if ct != telemetry.PrometheusContentType {
		t.Fatalf("metrics content-type=%q", ct)
	}
	if body != "" {
		t.Fatalf("metrics body=%q, want empty", body)
	}
	code, ct, body = f.getRaw("/v1/traces")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("traces: status=%d content-type=%q", code, ct)
	}
	var export struct {
		Capacity int               `json:"capacity"`
		Total    uint64            `json:"total"`
		Spans    []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &export); err != nil {
		t.Fatalf("traces body=%q: %v", body, err)
	}
	if export.Total != 0 || len(export.Spans) != 0 {
		t.Fatalf("traces export=%+v, want empty", export)
	}
}

func TestMetricsExposition(t *testing.T) {
	f := newTelemetryFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	if out := f.submit(alice, "news.publish", payload); !out.Committed {
		t.Fatalf("submit=%+v", out)
	}
	// One extra read so the request counter has a GET route too.
	if code := f.get("/v1/chain", nil); code != http.StatusOK {
		t.Fatalf("chain status=%d", code)
	}

	// One off-chain body, written and read back over HTTP, so the blob
	// store's counters are live too.
	cid, err := f.p.Blobs().PutString("off-chain article body")
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := f.getRaw("/v1/blobs/" + string(cid)); code != http.StatusOK {
		t.Fatalf("blob get status=%d", code)
	}

	// A deployment shares one registry across every subsystem; stand in a
	// gossip mesh and a small BFT cluster on the platform's registry so
	// the exposition carries live series from all six instrumented
	// subsystems, as a real node's would.
	reg := f.p.Telemetry()
	snet := simnet.New(7)
	mesh := gossip.New(snet, gossip.Config{Fanout: 2}, nil)
	mesh.Instrument(reg)
	for i := 0; i < 4; i++ {
		if err := mesh.Join(simnet.NodeID("g" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := mesh.Publish("g0", gossip.Envelope{ID: "env1", Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	snet.Run(0)
	cl, err := consensus.NewCluster(4, 11, consensus.DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	cl.Instrument(reg)
	cl.Start()
	cl.RunUntilHeight(1, 5*time.Second)

	code, ct, body := f.getRaw("/v1/metrics")
	if code != http.StatusOK || ct != telemetry.PrometheusContentType {
		t.Fatalf("metrics: status=%d content-type=%q", code, ct)
	}
	for _, want := range []string{
		"# TYPE trustnews_mempool_admitted_total counter",
		"trustnews_mempool_admitted_total 1",
		"trustnews_platform_commits_total 1",
		"trustnews_platform_txs_committed_total 1",
		// Histogram rendering: cumulative buckets plus sum and count.
		`trustnews_platform_commit_seconds_bucket{le="+Inf"} 1`,
		"trustnews_platform_commit_seconds_count 1",
		"trustnews_platform_commit_seconds_sum ",
		// Commit-bus delivery, labeled by subscriber.
		`trustnews_commitbus_delivered_total{subscriber="receipts"`,
		"trustnews_commitbus_events_total 1",
		// Per-route HTTP accounting from earlier requests in this test.
		`trustnews_httpapi_requests_total{route="POST /v1/tx",status="200"} 1`,
		`trustnews_httpapi_request_seconds_count{route="GET /v1/chain"} 1`,
		// Off-chain body stored and read back above.
		"trustnews_blobstore_puts_total 1",
		"trustnews_blobstore_gets_total 1",
		// Gossip mesh sharing the registry: 4 nodes all saw the envelope.
		"trustnews_gossip_delivered_total 4",
		"trustnews_gossip_hops_count 4",
		// BFT cluster sharing the registry: at least one height committed
		// on every validator (exact counts race with heartbeats, so only
		// the series names and types are asserted).
		"# TYPE trustnews_consensus_commits_total counter",
		"# TYPE trustnews_consensus_round_seconds histogram",
		`trustnews_consensus_votes_total{type="prevote"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestTracesExposition(t *testing.T) {
	f := newTelemetryFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	if out := f.submit(alice, "news.publish", payload); !out.Committed {
		t.Fatalf("submit=%+v", out)
	}
	code, ct, body := f.getRaw("/v1/traces")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("traces: status=%d content-type=%q", code, ct)
	}
	var export struct {
		Total uint64               `json:"total"`
		Spans []telemetry.SpanData `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &export); err != nil {
		t.Fatal(err)
	}
	if export.Total == 0 {
		t.Fatal("no spans recorded")
	}
	var commit, child bool
	for _, sp := range export.Spans {
		switch sp.Name {
		case "platform.commit":
			commit = true
		case "engine.execute":
			if sp.Parent != 0 {
				child = true
			}
		}
	}
	if !commit || !child {
		t.Fatalf("spans missing commit=%v parented-child=%v:\n%s", commit, child, body)
	}
}
