// Package httpapi exposes a trusting-news platform node over JSON/HTTP —
// the integration surface a real deployment would offer journalists,
// fact-checking tools and reader apps ("this platform will gather
// blockchain traced data and AI tools that can provide pointers to the
// original data sources", §I).
//
// The API is deliberately thin: clients sign transactions locally (keys
// never leave the client) and POST the encoded bytes; reads are served
// from the node's indexes. Endpoints:
//
//	POST /v1/tx                submit a signed, hex-encoded transaction
//	GET  /v1/healthz           readiness: height, mempool depth, consensus mode
//	GET  /v1/chain             chain head summary (incl. checkpoint height)
//	GET  /v1/commitbus         commit-bus subscriber stats (lag, errors)
//	GET  /v1/items/{id}        one news item
//	GET  /v1/items/{id}/rank   combined ranking with component breakdown
//	GET  /v1/items/{id}/trace  supply-chain trace
//	GET  /v1/facts             the factual database listing
//	GET  /v1/experts?topic=t&k=5
//	GET  /v1/accounts/{addr}   identity + balance + reputation
//	GET  /v1/proofs/{txid}     light-client Merkle inclusion proof
//	GET  /v1/blobs/{cid}       raw off-chain article body (verified)
//	POST /v1/blobs             store an article body off-chain, returns {cid,size}
//	GET  /v1/search?q=&limit=&offset=&ranker=  ranked (BM25 default), paginated full-text search
//	POST /v1/ingest            enqueue an article into the ingestion pipeline
//	GET  /v1/ingest            ingestion pipeline + queue statistics
//	GET  /v1/metrics           Prometheus text exposition of the registry
//	GET  /v1/traces            JSON export of retained spans
//
// Overload behaviour: when the platform carries an admission controller
// (platform.Config.Admission), requests the node cannot take on — a
// route past its static rate limit, the server-wide edge gate's queue
// standing above its delay target, a full or slow mempool-admission
// queue, a saturated blob path — are refused up front with HTTP 429 and
// a Retry-After header rather than queued without bound. The typed
// mempool-full error maps to 429 the same way, so clients see one
// uniform "back off and retry" signal for every capacity condition.
// /v1/healthz and /v1/metrics bypass the edge gate: an overloaded node
// must stay observable to operators and load balancers.
package httpapi

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/blobstore"
	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/identity"
	"repro/internal/ingest"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/light"
	"repro/internal/merkle"
	"repro/internal/platform"
	"repro/internal/ranking"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// Server is the HTTP gateway over one platform node.
type Server struct {
	p   *platform.Platform
	mux *http.ServeMux
	// AutoCommit mines a block after every accepted transaction, which
	// gives the single-node deployment synchronous semantics. Replicated
	// deployments leave it off and let consensus drive commits.
	AutoCommit bool

	// admit is the platform's admission controller (nil admits all).
	admit *admission.Controller

	// pipeline, when set (SetIngest), backs the /v1/ingest endpoints and
	// the healthz ingest fields. Nil on nodes without an ingest pipeline.
	pipeline *ingest.Pipeline

	// Per-route accounting, labeled by the ServeMux pattern so the
	// cardinality is bounded by the route table. Nil when the platform
	// has no telemetry registry.
	tmReq *telemetry.CounterVec
	tmLat *telemetry.HistogramVec
}

// New creates the gateway.
func New(p *platform.Platform, autoCommit bool) *Server {
	s := &Server{p: p, AutoCommit: autoCommit, admit: p.Admission()}
	reg := p.Telemetry()
	s.tmReq = reg.CounterVec("trustnews_httpapi_requests_total", "HTTP requests served, by route pattern and status code.", "route", "status")
	s.tmLat = reg.HistogramVec("trustnews_httpapi_request_seconds", "HTTP request handling time, by route pattern.", nil, "route")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tx", s.handleSubmitTx)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/chain", s.handleChain)
	mux.HandleFunc("GET /v1/blocks/{height}", s.handleBlock)
	mux.HandleFunc("GET /v1/commitbus", s.handleCommitBus)
	mux.HandleFunc("GET /v1/items/{id}", s.handleItem)
	mux.HandleFunc("GET /v1/items/{id}/rank", s.handleRank)
	mux.HandleFunc("GET /v1/items/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/facts", s.handleFacts)
	mux.HandleFunc("GET /v1/experts", s.handleExperts)
	mux.HandleFunc("GET /v1/accounts/{addr}", s.handleAccount)
	mux.HandleFunc("GET /v1/proofs/{txid}", s.handleProof)
	mux.HandleFunc("GET /v1/blobs/{cid}", s.handleBlob)
	mux.HandleFunc("POST /v1/blobs", s.handleBlobPut)
	mux.HandleFunc("GET /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/ingest", s.handleIngestStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux = mux
	return s
}

// SetIngest attaches an ingestion pipeline: POST /v1/ingest enqueues
// through it and /v1/healthz gains queue-depth and indexer-lag fields.
func (s *Server) SetIngest(pl *ingest.Pipeline) { s.pipeline = pl }

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler. With telemetry enabled every
// request is counted and timed under its ServeMux route pattern.
// Admission runs here, before the handler: first the static per-route
// rate limit, then the server-wide edge gate, which bounds how many
// requests are in service at once and — through its CoDel controller —
// sheds arrivals when the time spent waiting for a slot stays above
// target. Health and metrics bypass the edge gate: an operator (or load
// generator) must be able to observe an overloaded node. Every shed is
// answered 429 + Retry-After without touching the platform.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.admit == nil && s.tmReq == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	switch {
	case !s.admit.AllowRoute(route):
		writeShed(rec, fmt.Errorf("%w: route %s over its rate limit", admission.ErrOverCapacity, route))
	case route == "GET /v1/healthz" || route == "GET /v1/metrics":
		s.mux.ServeHTTP(rec, r)
	default:
		if err := s.admit.AcquireHTTP(); err != nil {
			writeShed(rec, err)
		} else {
			s.mux.ServeHTTP(rec, r)
			s.admit.ReleaseHTTP()
		}
	}
	if s.tmReq != nil {
		s.tmLat.With(route).Observe(time.Since(start).Seconds())
		s.tmReq.With(route, strconv.Itoa(rec.status)).Inc()
	}
}

var _ http.Handler = (*Server)(nil)

// handleMetrics serves the platform registry in Prometheus text format.
// Without a registry the body is empty but the response is still a valid
// 200 exposition, so scrapers need no special-casing.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.p.Telemetry().WritePrometheus(w)
}

// handleTraces serves the retained spans as JSON (empty export without a
// registry).
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.p.Telemetry().Tracer().WriteJSON(w)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is out can only be logged;
	// for these value types they cannot occur.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// RetryAfterSeconds is the backoff hint sent with every 429.
const RetryAfterSeconds = 1

// writeShed answers a capacity refusal: 429 Too Many Requests with a
// Retry-After hint. Shed is the node protecting its latency — the
// request was refused before consuming resources, so retrying after a
// short backoff is safe and expected.
func writeShed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	writeErr(w, http.StatusTooManyRequests, err)
}

// submitStatus maps a Platform.Submit error to its HTTP status: every
// capacity condition — admission shed or the typed mempool-full error —
// is 429 (retryable, with Retry-After); everything else is a 422 the
// client must fix (bad signature, stale nonce, duplicate, oversized
// payload).
func submitStatus(err error) int {
	if errors.Is(err, admission.ErrOverCapacity) || errors.Is(err, ledger.ErrMempoolFull) {
		return http.StatusTooManyRequests
	}
	return http.StatusUnprocessableEntity
}

// submitRequest is the POST /v1/tx body.
type submitRequest struct {
	// TxHex is the hex of ledger.Tx.Encode().
	TxHex string `json:"txHex"`
}

// submitResponse echoes acceptance.
type submitResponse struct {
	TxID      string `json:"txId"`
	Committed bool   `json:"committed"`
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	GasUsed   uint64 `json:"gasUsed,omitempty"`
}

func (s *Server) handleSubmitTx(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	raw, err := hex.DecodeString(strings.TrimSpace(req.TxHex))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("txHex: %w", err))
		return
	}
	tx, err := ledger.DecodeTx(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.p.Submit(tx); err != nil {
		if status := submitStatus(err); status == http.StatusTooManyRequests {
			writeShed(w, err)
		} else {
			writeErr(w, status, err)
		}
		return
	}
	resp := submitResponse{TxID: tx.ID().String()}
	if s.AutoCommit {
		if err := s.p.CommitAll(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.Committed = true
		if rec, ok := s.p.Receipt(tx.ID()); ok {
			resp.OK = rec.OK
			resp.Err = rec.Err
			resp.GasUsed = rec.GasUsed
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// chainResponse summarizes the chain head.
type chainResponse struct {
	Height   uint64 `json:"height"`
	HeadID   string `json:"headId"`
	Items    int    `json:"items"`
	Facts    int    `json:"facts"`
	FactRoot string `json:"factRoot"`
	// CheckpointHeight is the chain height covered by the node's latest
	// written or restored checkpoint (0 when none exists).
	CheckpointHeight uint64 `json:"checkpointHeight"`
}

func (s *Server) handleChain(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, chainResponse{
		Height:           s.p.Chain().Height(),
		HeadID:           s.p.Chain().HeadID().String(),
		Items:            s.p.Graph().Len(),
		Facts:            s.p.FactIndex().Len(),
		FactRoot:         s.p.FactIndex().Root().String(),
		CheckpointHeight: s.p.CheckpointHeight(),
	})
}

// blockResponse summarizes one committed block. The e2e harness compares
// IDs across nodes at a common height to assert chain convergence.
type blockResponse struct {
	Height   uint64 `json:"height"`
	ID       string `json:"id"`
	Prev     string `json:"prev"`
	Proposer string `json:"proposer"`
	Txs      int    `json:"txs"`
	Time     string `json:"time"`
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	h, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("height: %w", err))
		return
	}
	b, err := s.p.Chain().BlockAt(h)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, blockResponse{
		Height:   b.Header.Height,
		ID:       b.ID().String(),
		Prev:     b.Header.Prev.String(),
		Proposer: b.Header.Proposer.String(),
		Txs:      len(b.Txs),
		Time:     b.Header.Time.UTC().Format(time.RFC3339Nano),
	})
}

// handleCommitBus reports per-subscriber delivery accounting from the
// commit bus: a nonzero Lag or Errors means a derived index missed
// events and the operator should investigate (or re-open from replay).
func (s *Server) handleCommitBus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.BusStats())
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Platform.Item hydrates off-chain bodies, so clients always see Text.
	item, err := s.p.Item(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, item)
}

// handleBlob serves a raw article body by content id. The store verifies
// the bytes against the CID's chunk root on every read, so a corrupted
// blob surfaces as an error, never as silently wrong content. Reads
// pass the blob admission gate: chunk hashing is CPU work, and under
// overload it is shed with 429 before it queues.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	cid, err := blobstore.ParseCID(r.PathValue("cid"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.admit.AcquireBlobRead(); err != nil {
		writeShed(w, err)
		return
	}
	defer s.admit.ReleaseBlobRead()
	body, err := s.p.Blobs().Get(cid)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, blobstore.ErrCorrupt) {
			status = http.StatusBadGateway
		}
		writeErr(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// MaxBlobUploadBytes caps one POST /v1/blobs body. Bodies live off-chain,
// so the cap is far looser than the on-chain payload limit, but it is
// still a cap: an unbounded read is an invitation to memory exhaustion.
const MaxBlobUploadBytes = 4 << 20

// blobPutResponse echoes the stored blob's content id and size — exactly
// the reference a news.publish transaction carries on-chain.
type blobPutResponse struct {
	CID  string `json:"cid"`
	Size int    `json:"size"`
}

// handleBlobPut stores an article body off-chain and returns {cid,size}.
// This is how a remote client publishes with off-chain bodies: upload
// the body first, then submit a news.publish transaction referencing
// the returned CID. Uploads share the blob admission gate with reads.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	if err := s.admit.AcquireBlobRead(); err != nil {
		writeShed(w, err)
		return
	}
	defer s.admit.ReleaseBlobRead()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBlobUploadBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty blob body"))
		return
	}
	cid, err := s.p.Blobs().Put(body)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, blobPutResponse{CID: string(cid), Size: len(body)})
}

// healthzResponse is the readiness report: load generators and the e2e
// harness poll it instead of sleeping, and operators wire it into
// orchestration readiness probes.
type healthzResponse struct {
	Ready bool `json:"ready"`
	// Height is the committed chain height.
	Height uint64 `json:"height"`
	// MempoolDepth is the number of pending transactions.
	MempoolDepth int `json:"mempoolDepth"`
	// Consensus is "attached" for a replicated node, "standalone" for a
	// self-mining one.
	Consensus string `json:"consensus"`
	// CheckpointHeight is the height covered by the latest checkpoint.
	CheckpointHeight uint64 `json:"checkpointHeight"`
	// IndexerLagDocs is the async search indexer's backlog: committed
	// documents not yet visible to queries.
	IndexerLagDocs int `json:"indexerLagDocs"`
	// IngestQueueDepth is the live ingest queue depth (absent without an
	// attached pipeline).
	IngestQueueDepth *int `json:"ingestQueueDepth,omitempty"`
	// IngestDead is the ingest dead-letter count (absent without an
	// attached pipeline).
	IngestDead *int `json:"ingestDead,omitempty"`
}

// handleHealthz reports readiness. Answering at all means the platform
// booted and the API is serving; the body carries the state a harness
// needs to decide "ready enough" (chain height, mempool depth,
// consensus mode).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	mode := "standalone"
	if s.p.ConsensusAttached() {
		mode = "attached"
	}
	resp := healthzResponse{
		Ready:            true,
		Height:           s.p.Chain().Height(),
		MempoolDepth:     s.p.MempoolSize(),
		Consensus:        mode,
		CheckpointHeight: s.p.CheckpointHeight(),
		IndexerLagDocs:   s.p.SearchIndexerStats().Pending,
	}
	if s.pipeline != nil {
		qs := s.pipeline.Queue().Stats()
		resp.IngestQueueDepth = &qs.Depth
		resp.IngestDead = &qs.Dead
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSearch serves ranked, paginated full-text search. Parameters:
// q (required), limit (default 10; legacy alias k), offset (default 0),
// ranker ("bm25" default, "tfidf" for the legacy scoring). The response
// is a search.Page: {total, offset, results}.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	limit := 10
	for _, key := range []string{"k", "limit"} {
		if ks := r.URL.Query().Get(key); ks != "" {
			v, err := strconv.Atoi(ks)
			if err != nil || v <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("%s must be a positive integer", key))
				return
			}
			limit = v
		}
	}
	offset := 0
	if os := r.URL.Query().Get("offset"); os != "" {
		v, err := strconv.Atoi(os)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, errors.New("offset must be a non-negative integer"))
			return
		}
		offset = v
	}
	var ranker search.Ranker
	switch r.URL.Query().Get("ranker") {
	case "", "bm25":
		ranker = search.RankBM25
	case "tfidf":
		ranker = search.RankTFIDF
	default:
		writeErr(w, http.StatusBadRequest, errors.New("ranker must be bm25 or tfidf"))
		return
	}
	writeJSON(w, http.StatusOK, s.p.SearchPage(q, ranker, offset, limit))
}

// ingestRequest is the POST /v1/ingest body: one article for the
// pipeline.
type ingestRequest struct {
	Source string       `json:"source"`
	Topic  corpus.Topic `json:"topic"`
	Text   string       `json:"text"`
}

// ingestResponse acknowledges a durable enqueue. Seq is the queue
// sequence (stable across restarts); the article publishes
// asynchronously under a content-derived item id.
type ingestResponse struct {
	Seq uint64 `json:"seq"`
}

// handleIngest enqueues one article. The enqueue is gated by the ingest
// admission gate and the queue's own capacity bound; both shed with 429
// so producers back off instead of stacking up behind the WAL.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.pipeline == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("no ingest pipeline attached"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing text"))
		return
	}
	if err := s.admit.AcquireIngest(); err != nil {
		writeShed(w, err)
		return
	}
	defer s.admit.ReleaseIngest()
	seq, err := s.pipeline.Enqueue(ingest.Article{Source: req.Source, Topic: req.Topic, Text: req.Text})
	if err != nil {
		if errors.Is(err, ingest.ErrQueueFull) {
			writeShed(w, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{Seq: seq})
}

// handleIngestStats reports pipeline + queue accounting.
func (s *Server) handleIngestStats(w http.ResponseWriter, _ *http.Request) {
	if s.pipeline == nil {
		writeErr(w, http.StatusServiceUnavailable, errors.New("no ingest pipeline attached"))
		return
	}
	writeJSON(w, http.StatusOK, s.pipeline.Stats())
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	mech := ranking.Mechanism(r.URL.Query().Get("mechanism"))
	if mech == "" {
		mech = ranking.MechanismCombined
	}
	rank, err := s.p.RankItem(id, mech)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ranking.ErrNoSignal) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, rank)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, err := s.p.Graph().Trace(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleFacts(w http.ResponseWriter, _ *http.Request) {
	facts, err := factdb.List(s.p.Engine(), s.p.Authority())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, facts)
}

func (s *Server) handleExperts(w http.ResponseWriter, r *http.Request) {
	topic := corpus.Topic(r.URL.Query().Get("topic"))
	if topic == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing topic parameter"))
		return
	}
	k := 5
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("k must be a positive integer"))
			return
		}
		k = v
	}
	writeJSON(w, http.StatusOK, s.p.Experts(topic, k))
}

// accountResponse bundles everything known about an address.
type accountResponse struct {
	Address    string           `json:"address"`
	Identity   *identity.Record `json:"identity,omitempty"`
	Balance    uint64           `json:"balance"`
	Reputation float64          `json:"reputation"`
	// Nonce is the next expected (committed) nonce for the address, so
	// remote signers — the load generator included — can sync their
	// local counters without replaying history.
	Nonce uint64 `json:"nonce"`
}

// proofResponse serializes a light-client inclusion proof; TxRaw is hex.
type proofResponse struct {
	Header ledger.Header `json:"header"`
	TxHex  string        `json:"txHex"`
	Merkle merkle.Proof  `json:"merkle"`
}

func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	raw, err := hex.DecodeString(r.PathValue("txid"))
	if err != nil || len(raw) != len(ledger.TxID{}) {
		writeErr(w, http.StatusBadRequest, errors.New("txid must be 64 hex chars"))
		return
	}
	var id ledger.TxID
	copy(id[:], raw)
	p, err := light.Prove(s.p.Chain(), id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, proofResponse{
		Header: p.Header, TxHex: hex.EncodeToString(p.TxRaw), Merkle: p.Merkle,
	})
}

func (s *Server) handleAccount(w http.ResponseWriter, r *http.Request) {
	addr, err := keys.ParseAddress(r.PathValue("addr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := accountResponse{Address: addr.String(), Nonce: s.p.Chain().NextNonce(addr.String())}
	if rec, err := identity.Lookup(s.p.Engine(), addr); err == nil {
		resp.Identity = &rec
	}
	// Balance/reputation default to zero/initial for unknown accounts.
	resp.Balance, _ = ranking.Balance(s.p.Engine(), s.p.Authority(), addr)
	resp.Reputation, _ = ranking.Reputation(s.p.Engine(), s.p.Authority(), addr)
	writeJSON(w, http.StatusOK, resp)
}
