package httpapi

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// TestSubmitStatusMapping is the table test for the capacity-error
// contract: every capacity condition maps to 429 (retryable), every
// client mistake to 422.
func TestSubmitStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"mempool full", ledger.ErrMempoolFull, http.StatusTooManyRequests},
		{"wrapped mempool full", fmt.Errorf("node: %w", ledger.ErrMempoolFull), http.StatusTooManyRequests},
		{"admission shed", admission.ErrOverCapacity, http.StatusTooManyRequests},
		{"wrapped admission shed", fmt.Errorf("gate: %w", admission.ErrOverCapacity), http.StatusTooManyRequests},
		{"duplicate tx", ledger.ErrDuplicateTx, http.StatusUnprocessableEntity},
		{"stale nonce", ledger.ErrStaleNonce, http.StatusUnprocessableEntity},
		{"payload too large", ledger.ErrTxPayloadTooLarge, http.StatusUnprocessableEntity},
		{"generic failure", errors.New("signature verification failed"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := submitStatus(tc.err); got != tc.want {
				t.Fatalf("submitStatus(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestMempoolFullOverHTTP drives the typed mempool-full error through
// the real endpoint: a one-slot pool accepts the first transaction and
// answers 429 + Retry-After for the second.
func TestMempoolFullOverHTTP(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.MempoolCapacity = 1
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, false)) // no auto-commit: the pool stays full
	t.Cleanup(srv.Close)

	alice := keys.FromSeed([]byte("alice"))
	post := func(nonce uint64) *http.Response {
		payload, err := supplychain.PublishPayload(fmt.Sprintf("full-%d", nonce), corpus.TopicPolitics, "body", nil, "")
		if err != nil {
			t.Fatal(err)
		}
		tx, err := ledger.NewTx(alice, nonce, "news.publish", payload)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(submitRequest{TxHex: hex.EncodeToString(tx.Encode())})
		resp, err := http.Post(srv.URL+"/v1/tx", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post(0)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first tx: status %d", resp.StatusCode)
	}
	resp = post(1)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pool-full tx: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "mempool full") {
		t.Fatalf("error body %q does not name the condition", eb.Error)
	}
}

// admissionFixture boots a platform with admission control and
// telemetry enabled behind a test server.
func admissionFixture(t *testing.T, acfg *admission.Config) (*platform.Platform, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	cfg := platform.DefaultConfig()
	reg := telemetry.New()
	cfg.Telemetry = reg
	cfg.Admission = acfg
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, true))
	t.Cleanup(srv.Close)
	return p, srv, reg
}

// TestRouteRateLimit429 exercises the static per-route token bucket:
// burst-many requests pass, the next is 429 with Retry-After, other
// routes are untouched, and the shed shows up in the admission metrics.
func TestRouteRateLimit429(t *testing.T) {
	acfg := admission.DefaultConfig()
	acfg.Routes = map[string]admission.RouteLimit{
		"GET /v1/chain": {PerSecond: 0.001, Burst: 3}, // effectively no refill within the test
	}
	_, srv, reg := admissionFixture(t, acfg)

	status := func(path string) (int, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	for i := 0; i < 3; i++ {
		if code, _ := status("/v1/chain"); code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i+1, code)
		}
	}
	code, hdr := status("/v1/chain")
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeding request: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// Unlimited routes keep answering.
	if code, _ := status("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("unlimited route limited: %d", code)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `trustnews_admission_shed_total{component="httpapi",reason="rate_limit"} 1`) {
		t.Fatalf("rate-limit shed missing from metrics:\n%s", sb.String())
	}
}

// TestHealthzReportsState checks the readiness endpoint's fields for a
// standalone node with pending work.
func TestHealthzReportsState(t *testing.T) {
	cfg := platform.DefaultConfig()
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p, false))
	t.Cleanup(srv.Close)

	fetch := func() healthzResponse {
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		var hz healthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		return hz
	}
	hz := fetch()
	if !hz.Ready || hz.Consensus != "standalone" || hz.Height != 0 || hz.MempoolDepth != 0 {
		t.Fatalf("fresh node healthz = %+v", hz)
	}
	// A pending (uncommitted) tx shows up as mempool depth.
	alice := keys.FromSeed([]byte("alice"))
	payload, _ := supplychain.PublishPayload("hz-1", corpus.TopicPolitics, "body", nil, "")
	tx, err := ledger.NewTx(alice, 0, "news.publish", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(tx); err != nil {
		t.Fatal(err)
	}
	if hz := fetch(); hz.MempoolDepth != 1 {
		t.Fatalf("healthz after pending tx = %+v", hz)
	}
	if err := p.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if hz := fetch(); hz.MempoolDepth != 0 || hz.Height != 1 {
		t.Fatalf("healthz after commit = %+v", hz)
	}
}

// TestBlobUploadRoundTrip publishes a body via POST /v1/blobs and reads
// it back by CID — the remote off-chain publishing path.
func TestBlobUploadRoundTrip(t *testing.T) {
	_, srv, _ := admissionFixture(t, admission.DefaultConfig())
	body := strings.Repeat("officials confirmed the reservoir level today. ", 40)
	resp, err := http.Post(srv.URL+"/v1/blobs", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var put blobPutResponse
	if err := json.NewDecoder(resp.Body).Decode(&put); err != nil {
		t.Fatal(err)
	}
	if put.Size != len(body) || put.CID == "" {
		t.Fatalf("upload response %+v", put)
	}
	got, err := http.Get(srv.URL + "/v1/blobs/" + put.CID)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	raw, err := io.ReadAll(got.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusOK || string(raw) != body {
		t.Fatalf("read back: status %d, %d bytes", got.StatusCode, len(raw))
	}
	// Empty upload is a client error, not a capacity one.
	resp2, err := http.Post(srv.URL+"/v1/blobs", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty upload: status %d, want 400", resp2.StatusCode)
	}
}
