package supplychain

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/corpus"
)

// WriteDOT renders the supply-chain graph in Graphviz DOT format, colored
// by trace outcome: factual-rooted items are green, modified descendants
// are amber (darkening with modification), unverifiable items are red.
// Edges are labelled with their propagation operator. This is the Fig. 4
// picture, generated from live ledger state:
//
//	dot -Tsvg graph.dot > graph.svg
func (g *Graph) WriteDOT(w io.Writer, traces map[string]TraceResult) error {
	if traces == nil {
		traces = g.TraceAll()
	}
	g.mu.RLock()
	ids := make([]string, 0, len(g.items))
	for id := range g.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if _, err := fmt.Fprintln(w, "digraph newschain {"); err != nil {
		g.mu.RUnlock()
		return err
	}
	fmt.Fprintln(w, "  rankdir=BT;")
	fmt.Fprintln(w, "  node [style=filled, fontname=\"sans-serif\"];")
	for _, id := range ids {
		it := g.items[id]
		color := "#e05252" // unverifiable: red
		if tr, ok := traces[id]; ok && tr.Rooted {
			switch {
			case tr.Score >= ModificationThreshold:
				color = "#58a55c" // factual: green
			case tr.Score >= 0.5:
				color = "#e8b339" // lightly modified: amber
			default:
				color = "#e07b39" // heavily modified: orange
			}
		}
		fmt.Fprintf(w, "  %q [fillcolor=%q, label=\"%s\\n%s\"];\n",
			id, color, id, it.Creator[:minInt(8, len(it.Creator))])
	}
	for _, id := range ids {
		it := g.items[id]
		for _, p := range it.Parents {
			op := it.Op
			if op == "" {
				op = corpus.OpVerbatim
			}
			fmt.Fprintf(w, "  %q -> %q [label=%q];\n", id, p, string(op))
		}
	}
	g.mu.RUnlock()
	_, err := fmt.Fprintln(w, "}")
	return err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
