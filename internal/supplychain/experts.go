package supplychain

import (
	"sort"

	"repro/internal/corpus"
)

// Expert mining (§VI): "identifying the potential domain topic experts by
// AI analyzing the history of blockchain ledger to identify the fact news
// creators of a given domain topic". An account's expertise on a topic is
// the sum of trace scores of its contributions there, discounted by its
// fake output. Experiment E8 measures precision@k against the ground truth.

// ExpertScore is one account's standing on a topic.
type ExpertScore struct {
	Account string       `json:"account"`
	Topic   corpus.Topic `json:"topic"`
	// Factual is the summed trace score of the account's items.
	Factual float64 `json:"factual"`
	// Fake is the number of unrooted or heavily-modified items.
	Fake int `json:"fake"`
	// Items is the account's total items on the topic.
	Items int `json:"items"`
	// Score is the final expertise ranking key.
	Score float64 `json:"score"`
}

// Experts ranks accounts by factual contribution on a topic. traces must
// come from TraceAll on the same graph.
func (g *Graph) Experts(topic corpus.Topic, traces map[string]TraceResult, k int) []ExpertScore {
	g.mu.RLock()
	byAccount := make(map[string]*ExpertScore)
	for id, it := range g.items {
		if it.Topic != topic {
			continue
		}
		tr, ok := traces[id]
		if !ok {
			continue
		}
		es, ok := byAccount[it.Creator]
		if !ok {
			es = &ExpertScore{Account: it.Creator, Topic: topic}
			byAccount[it.Creator] = es
		}
		es.Items++
		if tr.Rooted && tr.Score >= ModificationThreshold {
			es.Factual += tr.Score
		} else {
			es.Fake++
		}
	}
	g.mu.RUnlock()

	out := make([]ExpertScore, 0, len(byAccount))
	for _, es := range byAccount {
		// Fake output is heavily penalized: an expert is someone whose
		// record is consistently factual, not merely prolific.
		es.Score = es.Factual - 2*float64(es.Fake)
		out = append(out, *es)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Account < out[j].Account
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Communities groups accounts by label propagation over the interaction
// graph (an undirected edge joins the creators of a child item and each of
// its parents). The paper uses this to "identify the groups/communities
// persons belong to" for targeted interventions (§VI).
func (g *Graph) Communities(rounds int) map[string]int {
	g.mu.RLock()
	neighbors := make(map[string]map[string]int)
	addEdge := func(a, b string) {
		if a == b {
			return
		}
		if neighbors[a] == nil {
			neighbors[a] = make(map[string]int)
		}
		if neighbors[b] == nil {
			neighbors[b] = make(map[string]int)
		}
		neighbors[a][b]++
		neighbors[b][a]++
	}
	for _, it := range g.items {
		for _, p := range it.Parents {
			addEdge(it.Creator, g.items[p].Creator)
		}
	}
	g.mu.RUnlock()

	accounts := make([]string, 0, len(neighbors))
	for a := range neighbors {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	label := make(map[string]int, len(accounts))
	for i, a := range accounts {
		label[a] = i
	}
	if rounds <= 0 {
		rounds = 10
	}
	for r := 0; r < rounds; r++ {
		changed := false
		for _, a := range accounts {
			// Adopt the most frequent neighbor label (weighted by edge
			// multiplicity); ties break toward the smallest label for
			// determinism.
			counts := make(map[int]int)
			for n, w := range neighbors[a] {
				counts[label[n]] += w
			}
			bestLabel, bestCount := label[a], 0
			labels := make([]int, 0, len(counts))
			for l := range counts {
				labels = append(labels, l)
			}
			sort.Ints(labels)
			for _, l := range labels {
				if counts[l] > bestCount {
					bestLabel, bestCount = l, counts[l]
				}
			}
			if bestLabel != label[a] {
				label[a] = bestLabel
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return label
}
