package supplychain

import (
	"errors"
	"fmt"
)

// Process supply chain (Fig. 3): the conventional pre-configured workflow
// blockchain the paper contrasts with its dynamic news graph. Stages are
// fixed at construction; every asset moves linearly through them. This is
// the E3 baseline — its trace is O(stages) regardless of network size,
// whereas the news chain's trace grows with the propagation DAG (E4).

// Process errors.
var (
	// ErrNoStages indicates construction without stages.
	ErrNoStages = errors.New("supplychain: process needs at least one stage")
	// ErrAssetExists indicates a duplicate asset registration.
	ErrAssetExists = errors.New("supplychain: asset already registered")
	// ErrAssetNotFound indicates an unknown asset.
	ErrAssetNotFound = errors.New("supplychain: asset not found")
	// ErrStageOrder indicates an out-of-order stage transition.
	ErrStageOrder = errors.New("supplychain: stage transition out of order")
	// ErrWrongActor indicates an actor not assigned to the stage.
	ErrWrongActor = errors.New("supplychain: actor not assigned to stage")
)

// StageRecord is one completed workflow step for an asset.
type StageRecord struct {
	Stage string `json:"stage"`
	Actor string `json:"actor"`
	Note  string `json:"note,omitempty"`
}

// ProcessChain is the fixed-workflow supply chain. It is not a contract —
// it demonstrates the architectural contrast, so a lean in-memory ledger
// with the same append-only discipline suffices.
type ProcessChain struct {
	stages []string
	// actors maps stage -> the only actor allowed to perform it
	// (pre-configured, per the paper's "pre-fixed network architecture").
	actors map[string]string
	assets map[string][]StageRecord
}

// NewProcessChain creates a workflow with the given ordered stages and the
// per-stage actor assignment.
func NewProcessChain(stages []string, actors map[string]string) (*ProcessChain, error) {
	if len(stages) == 0 {
		return nil, ErrNoStages
	}
	cp := make([]string, len(stages))
	copy(cp, stages)
	as := make(map[string]string, len(actors))
	for k, v := range actors {
		as[k] = v
	}
	return &ProcessChain{stages: cp, actors: as, assets: make(map[string][]StageRecord)}, nil
}

// Register introduces an asset at stage zero.
func (p *ProcessChain) Register(assetID, actor string) error {
	if _, ok := p.assets[assetID]; ok {
		return fmt.Errorf("%w: %s", ErrAssetExists, assetID)
	}
	if want, ok := p.actors[p.stages[0]]; ok && want != actor {
		return fmt.Errorf("%w: stage %s wants %s", ErrWrongActor, p.stages[0], want)
	}
	p.assets[assetID] = []StageRecord{{Stage: p.stages[0], Actor: actor}}
	return nil
}

// Advance moves an asset to its next stage.
func (p *ProcessChain) Advance(assetID, actor, note string) error {
	recs, ok := p.assets[assetID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrAssetNotFound, assetID)
	}
	if len(recs) >= len(p.stages) {
		return fmt.Errorf("%w: asset %s already completed", ErrStageOrder, assetID)
	}
	next := p.stages[len(recs)]
	if want, ok := p.actors[next]; ok && want != actor {
		return fmt.Errorf("%w: stage %s wants %s", ErrWrongActor, next, want)
	}
	p.assets[assetID] = append(recs, StageRecord{Stage: next, Actor: actor, Note: note})
	return nil
}

// Trace returns the asset's complete, linear provenance — O(stages).
func (p *ProcessChain) Trace(assetID string) ([]StageRecord, error) {
	recs, ok := p.assets[assetID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrAssetNotFound, assetID)
	}
	out := make([]StageRecord, len(recs))
	copy(out, recs)
	return out, nil
}

// Completed reports whether an asset finished every stage.
func (p *ProcessChain) Completed(assetID string) bool {
	return len(p.assets[assetID]) == len(p.stages)
}

// Stages returns the configured stage list.
func (p *ProcessChain) Stages() []string {
	out := make([]string, len(p.stages))
	copy(out, p.stages)
	return out
}
