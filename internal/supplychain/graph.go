package supplychain

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/contract"
	"repro/internal/factdb"
	"repro/internal/keys"
)

// FactChecker answers whether a text matches the factual database. The
// factdb.Index satisfies it.
type FactChecker interface {
	Contains(text string) bool
	BestMatch(text string) (factdb.Match, bool)
}

// TraceResult is the outcome of tracing one item back toward the factual
// database (paper §VI: "the trace distance of graph from its root to the
// current reported news and the degree of the modifications ... can then be
// used to rank the factualness of the news").
type TraceResult struct {
	ItemID string `json:"itemId"`
	// Rooted reports whether any ancestry path reaches a factual root.
	Rooted bool `json:"rooted"`
	// Score is the factualness in [0,1]: the best path's product of
	// per-hop text similarities times the root's factual match quality.
	Score float64 `json:"score"`
	// Depth is the hop count of the best path (0 for a factual root).
	Depth int `json:"depth"`
	// Path lists item ids from the item back to its best root.
	Path []string `json:"path"`
	// RootFactID is the matched fact id when Rooted.
	RootFactID string `json:"rootFactId,omitempty"`
	// Originator is the creator address of the first node on the best
	// path (walking from the root outward) that substantially modified
	// its parent's content — the paper's accountability target. Empty if
	// no substantial modification happened on the path.
	Originator string `json:"originator,omitempty"`
	// OriginatorItem is the item where the modification happened.
	OriginatorItem string `json:"originatorItem,omitempty"`
}

// ModificationThreshold is the per-hop similarity below which a hop counts
// as a substantial modification for originator attribution.
const ModificationThreshold = 0.9

// MinRootMatch is the minimum similarity to a stored fact for an item to
// count as directly rooted in the factual database. Below it, an item with
// no rooted parents is "unverifiable" — the paper's second group of news
// that "can only be traced back into some unverified news data sources".
const MinRootMatch = 0.3

// Graph is the in-memory news supply-chain DAG. It is built either
// incrementally (AddItem, as the platform indexes committed blocks) or in
// bulk from contract state (Load).
type Graph struct {
	mu       sync.RWMutex
	items    map[string]*Item
	children map[string][]string
	facts    FactChecker
	// order records item ids by insertion, so snapshots replay parents
	// before children.
	order []string

	// hopSim caches per-edge text similarity.
	hopSim map[edgeKey]float64
}

type edgeKey struct{ child, parent string }

// NewGraph creates an empty graph over the given factual database view.
func NewGraph(facts FactChecker) *Graph {
	return &Graph{
		items:    make(map[string]*Item),
		children: make(map[string][]string),
		facts:    facts,
		hopSim:   make(map[edgeKey]float64),
	}
}

// Load builds a graph from all committed news items in the engine.
func Load(e *contract.Engine, asker keys.Address, facts FactChecker) (*Graph, error) {
	items, err := ListItems(e, asker)
	if err != nil {
		return nil, err
	}
	g := NewGraph(facts)
	for i := range items {
		if err := g.AddItem(items[i]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// AddItem inserts one item. Parents must already be present (the contract
// guarantees commit order satisfies this).
func (g *Graph) AddItem(it Item) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.items[it.ID]; ok {
		return fmt.Errorf("%w: %s", ErrItemExists, it.ID)
	}
	for _, p := range it.Parents {
		if _, ok := g.items[p]; !ok {
			return fmt.Errorf("%w: %s (child %s)", ErrParentNotFound, p, it.ID)
		}
	}
	cp := it
	cp.Parents = append([]string(nil), it.Parents...)
	g.items[it.ID] = &cp
	g.order = append(g.order, it.ID)
	for _, p := range cp.Parents {
		g.children[p] = append(g.children[p], it.ID)
		g.hopSim[edgeKey{it.ID, p}] = factdb.Similarity(it.Text, g.items[p].Text)
	}
	return nil
}

// Items returns every item in insertion order (the checkpoint snapshot
// format: parents always precede children).
func (g *Graph) Items() []Item {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Item, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, *g.items[id])
	}
	return out
}

// Reset replaces the graph contents with the given items, added in order.
func (g *Graph) Reset(items []Item) error {
	g.mu.Lock()
	g.items = make(map[string]*Item, len(items))
	g.children = make(map[string][]string)
	g.order = nil
	g.hopSim = make(map[edgeKey]float64)
	g.mu.Unlock()
	for _, it := range items {
		if err := g.AddItem(it); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of items.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.items)
}

// Item returns an item by id.
func (g *Graph) Item(id string) (Item, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	it, ok := g.items[id]
	if !ok {
		return Item{}, fmt.Errorf("%w: %s", ErrItemNotFound, id)
	}
	return *it, nil
}

// Children returns the ids deriving directly from an item.
func (g *Graph) Children(id string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.children[id]...)
}

// traceState is one node's best-known trace during the memoized walk.
type traceState struct {
	rooted    bool
	score     float64
	depth     int
	next      string // next hop toward the root ("" at the root)
	rootFact  string
	rootMatch float64
}

// Trace ranks one item by walking its ancestry to the factual database.
func (g *Graph) Trace(id string) (TraceResult, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.items[id]; !ok {
		return TraceResult{}, fmt.Errorf("%w: %s", ErrItemNotFound, id)
	}
	memo := make(map[string]traceState)
	visiting := make(map[string]bool)
	st := g.trace(id, memo, visiting)

	res := TraceResult{ItemID: id, Rooted: st.rooted, Score: st.score, Depth: st.depth}
	// Reconstruct the best path.
	cur := id
	res.Path = append(res.Path, cur)
	for memo[cur].next != "" {
		cur = memo[cur].next
		res.Path = append(res.Path, cur)
	}
	if st.rooted {
		res.RootFactID = st.rootFact
		// Originator: walk the path from the root outward and report the
		// creator of the first substantially-modifying item. A root that
		// itself imperfectly matches the factual database was modified by
		// its own creator.
		if st.rootMatch < ModificationThreshold {
			rootID := res.Path[len(res.Path)-1]
			res.Originator = g.items[rootID].Creator
			res.OriginatorItem = rootID
		} else {
			for i := len(res.Path) - 2; i >= 0; i-- {
				child, parent := res.Path[i], res.Path[i+1]
				if g.hopSim[edgeKey{child, parent}] < ModificationThreshold {
					res.Originator = g.items[child].Creator
					res.OriginatorItem = child
					break
				}
			}
		}
	}
	return res, nil
}

// trace computes the best traceState for an item, memoized over the DAG.
// Caller holds the read lock.
func (g *Graph) trace(id string, memo map[string]traceState, visiting map[string]bool) traceState {
	if st, ok := memo[id]; ok {
		return st
	}
	if visiting[id] {
		// Defensive: the contract prevents cycles, but a hand-built graph
		// could have them; treat a back-edge as unrooted.
		return traceState{}
	}
	visiting[id] = true
	defer delete(visiting, id)

	it := g.items[id]
	var best traceState

	// The item itself may match the factual database (it IS a fact or a
	// near-verbatim copy of one).
	if m, ok := g.facts.BestMatch(it.Text); ok && m.Similarity >= MinRootMatch {
		if m.Similarity >= ModificationThreshold || len(it.Parents) == 0 {
			best = traceState{rooted: true, score: m.Similarity, depth: 0, rootFact: m.Fact.ID, rootMatch: m.Similarity}
		}
	}

	// Or a parent path may score higher: score = hopSim * parentScore.
	parents := append([]string(nil), it.Parents...)
	sort.Strings(parents) // deterministic tie-breaking
	for _, p := range parents {
		ps := g.trace(p, memo, visiting)
		if !ps.rooted {
			continue
		}
		score := g.hopSim[edgeKey{id, p}] * ps.score
		// A parent path wins ties against the direct factual match so the
		// result carries the full declared provenance (a verbatim relay of
		// a fact scores 1.0 either way, but the path matters for
		// propagation analysis).
		directTie := best.next == "" && score >= best.score
		if !best.rooted || score > best.score || directTie {
			best = traceState{
				rooted:    true,
				score:     score,
				depth:     ps.depth + 1,
				next:      p,
				rootFact:  ps.rootFact,
				rootMatch: ps.rootMatch,
			}
		}
	}
	memo[id] = best
	return best
}

// TraceAll ranks every item, returning results keyed by item id. The memo
// is shared across items, so the cost is linear in edges.
func (g *Graph) TraceAll() map[string]TraceResult {
	g.mu.RLock()
	ids := make([]string, 0, len(g.items))
	for id := range g.items {
		ids = append(ids, id)
	}
	g.mu.RUnlock()
	sort.Strings(ids)
	out := make(map[string]TraceResult, len(ids))
	for _, id := range ids {
		// Trace re-acquires the lock; memoization inside Trace is per-call
		// but the DAG walk is bounded by ancestry size.
		if res, err := g.Trace(id); err == nil {
			out[id] = res
		}
	}
	return out
}

// Stats summarizes the graph shape for the E3/E4 contrast.
type Stats struct {
	Items     int     `json:"items"`
	Edges     int     `json:"edges"`
	Roots     int     `json:"roots"`
	MaxDepth  int     `json:"maxDepth"`
	AvgDegree float64 `json:"avgDegree"`
}

// Stats computes graph shape statistics.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Stats{Items: len(g.items)}
	for _, it := range g.items {
		s.Edges += len(it.Parents)
		if len(it.Parents) == 0 {
			s.Roots++
		}
	}
	if s.Items > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Items)
	}
	// Longest path by memoized depth over the DAG.
	depth := make(map[string]int, len(g.items))
	var dfs func(id string) int
	dfs = func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		depth[id] = 0 // cycle guard
		best := 0
		for _, p := range g.items[id].Parents {
			if d := dfs(p) + 1; d > best {
				best = d
			}
		}
		depth[id] = best
		return best
	}
	for id := range g.items {
		if d := dfs(id); d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}
