package supplychain

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/commitbus"
	"repro/internal/corpus"
)

// Commit-bus subscriber names (stable: they key checkpoint blobs).
const (
	// GraphSubscriberName identifies the supply-chain graph subscriber.
	GraphSubscriberName = "supplychain-graph"
	// ExpertMinerName identifies the expert-miner subscriber.
	ExpertMinerName = "expert-miner"
)

// GraphSubscriber keeps the propagation DAG in sync with the chain by
// consuming published events from committed blocks.
type GraphSubscriber struct {
	Graph *Graph
	// Resolve hydrates an off-chain body from its content id. Items that
	// reference a CID are resolved before insertion so the graph's
	// similarity and trace-back queries see the full text even though the
	// chain carries only the reference. Required once off-chain items
	// appear; inline-only deployments may leave it nil.
	Resolve func(cid string) (string, error)
}

var _ commitbus.Subscriber = (*GraphSubscriber)(nil)

// Name implements commitbus.Subscriber.
func (s *GraphSubscriber) Name() string { return GraphSubscriberName }

// OnCommit implements commitbus.Subscriber: every item published in the
// block is inserted into the DAG. Commit order guarantees parents
// precede children, and the contract has already rejected duplicates and
// orphans, so AddItem failures are real index divergence and surface as
// subscriber lag.
func (s *GraphSubscriber) OnCommit(ev commitbus.CommitEvent) error {
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != ContractName || e.Type != "published" {
				continue
			}
			var it Item
			if err := json.Unmarshal(rec.Result, &it); err != nil {
				return fmt.Errorf("supplychain: decode published result: %w", err)
			}
			if it.Text == "" && it.CID != "" {
				if s.Resolve == nil {
					return fmt.Errorf("supplychain: item %s has off-chain body %s but no resolver", it.ID, it.CID)
				}
				text, err := s.Resolve(it.CID)
				if err != nil {
					return fmt.Errorf("supplychain: resolve body of %s: %w", it.ID, err)
				}
				it.Text = text
			}
			if err := s.Graph.AddItem(it); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot implements commitbus.Subscriber.
func (s *GraphSubscriber) Snapshot() ([]byte, error) {
	return json.Marshal(s.Graph.Items())
}

// Restore implements commitbus.Subscriber.
func (s *GraphSubscriber) Restore(data []byte) error {
	var items []Item
	if len(data) > 0 {
		if err := json.Unmarshal(data, &items); err != nil {
			return fmt.Errorf("supplychain: decode graph snapshot: %w", err)
		}
	}
	return s.Graph.Reset(items)
}

// ExpertMiner incrementally indexes committed items by topic so expert
// discovery (§VI, E8) scans only a topic's items instead of the whole
// ledger. It subscribes to the commit bus like every other derived index
// and snapshots into checkpoints.
type ExpertMiner struct {
	mu     sync.RWMutex
	topics map[corpus.Topic][]string
	seen   map[string]bool
}

var _ commitbus.Subscriber = (*ExpertMiner)(nil)

// NewExpertMiner creates an empty miner.
func NewExpertMiner() *ExpertMiner {
	return &ExpertMiner{
		topics: make(map[corpus.Topic][]string),
		seen:   make(map[string]bool),
	}
}

// Name implements commitbus.Subscriber.
func (m *ExpertMiner) Name() string { return ExpertMinerName }

// OnCommit implements commitbus.Subscriber: it records (topic, item)
// pairs straight from the published event attributes.
func (m *ExpertMiner) OnCommit(ev commitbus.CommitEvent) error {
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != ContractName || e.Type != "published" {
				continue
			}
			m.record(corpus.Topic(e.Attrs["topic"]), e.Attrs["id"])
		}
	}
	return nil
}

func (m *ExpertMiner) record(topic corpus.Topic, id string) {
	if id == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen[id] {
		return
	}
	m.seen[id] = true
	m.topics[topic] = append(m.topics[topic], id)
}

// TopicItems returns the committed item ids on a topic, in commit order.
func (m *ExpertMiner) TopicItems(topic corpus.Topic) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.topics[topic]...)
}

// Topics returns every indexed topic.
func (m *ExpertMiner) Topics() []corpus.Topic {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]corpus.Topic, 0, len(m.topics))
	for t := range m.topics {
		out = append(out, t)
	}
	return out
}

// minerSnapshot is the serialized form of the miner state.
type minerSnapshot struct {
	Topics map[corpus.Topic][]string `json:"topics"`
}

// Snapshot implements commitbus.Subscriber.
func (m *ExpertMiner) Snapshot() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return json.Marshal(minerSnapshot{Topics: m.topics})
}

// Restore implements commitbus.Subscriber.
func (m *ExpertMiner) Restore(data []byte) error {
	var snap minerSnapshot
	if len(data) > 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("supplychain: decode miner snapshot: %w", err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.topics = make(map[corpus.Topic][]string, len(snap.Topics))
	m.seen = make(map[string]bool)
	for t, ids := range snap.Topics {
		for _, id := range ids {
			if m.seen[id] {
				continue
			}
			m.seen[id] = true
			m.topics[t] = append(m.topics[t], id)
		}
	}
	return nil
}
