package supplychain

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/keys"
	"repro/internal/ledger"
)

const factText = "the parliament ratified the border treaty according to the official record"

func newFactIndex(extra ...string) *factdb.Index {
	ix := factdb.NewIndex()
	ix.Add(factdb.Fact{ID: "fact-1", Topic: corpus.TopicPolitics, Text: factText})
	for i, t := range extra {
		ix.Add(factdb.Fact{ID: "fact-x" + strconv.Itoa(i), Topic: corpus.TopicPolitics, Text: t})
	}
	return ix
}

func addr(name string) string { return keys.FromSeed([]byte(name)).Address().String() }

func item(id, creator, text string, op corpus.Op, parents ...string) Item {
	return Item{ID: id, Topic: corpus.TopicPolitics, Text: text, Creator: addr(creator), Parents: parents, Op: op}
}

func mustAdd(t *testing.T, g *Graph, items ...Item) {
	t.Helper()
	for _, it := range items {
		if err := g.AddItem(it); err != nil {
			t.Fatalf("AddItem(%s): %v", it.ID, err)
		}
	}
}

func TestContractPublishAndGet(t *testing.T) {
	e := contract.NewEngine()
	if err := e.Register(Contract{}); err != nil {
		t.Fatal(err)
	}
	alice := keys.FromSeed([]byte("alice"))
	p, _ := PublishPayload("n1", corpus.TopicPolitics, factText, nil, "")
	tx, _ := ledger.NewTx(alice, 0, "news.publish", p)
	rec := e.ExecuteTx(tx, 7)
	if !rec.OK {
		t.Fatalf("receipt: %+v", rec)
	}
	it, err := GetItem(e, alice.Address(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	if it.Creator != alice.Address().String() || it.Height != 7 {
		t.Fatalf("item=%+v", it)
	}
	if len(rec.Events) != 1 || rec.Events[0].Type != "published" {
		t.Fatalf("events=%+v", rec.Events)
	}
}

func TestContractRejectsMissingParent(t *testing.T) {
	e := contract.NewEngine()
	e.Register(Contract{})
	alice := keys.FromSeed([]byte("alice"))
	p, _ := PublishPayload("n1", corpus.TopicPolitics, "text", []string{"ghost"}, corpus.OpVerbatim)
	tx, _ := ledger.NewTx(alice, 0, "news.publish", p)
	rec := e.ExecuteTx(tx, 1)
	if rec.OK || !strings.Contains(rec.Err, "parent not found") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestContractRejectsDuplicateAndEmpty(t *testing.T) {
	e := contract.NewEngine()
	e.Register(Contract{})
	alice := keys.FromSeed([]byte("alice"))
	p, _ := PublishPayload("n1", corpus.TopicPolitics, "text", nil, "")
	tx, _ := ledger.NewTx(alice, 0, "news.publish", p)
	if rec := e.ExecuteTx(tx, 1); !rec.OK {
		t.Fatalf("first publish: %+v", rec)
	}
	tx2, _ := ledger.NewTx(alice, 1, "news.publish", p)
	if rec := e.ExecuteTx(tx2, 1); rec.OK {
		t.Fatal("duplicate accepted")
	}
	empty, _ := PublishPayload("", corpus.TopicPolitics, "", nil, "")
	tx3, _ := ledger.NewTx(alice, 2, "news.publish", empty)
	if rec := e.ExecuteTx(tx3, 1); rec.OK {
		t.Fatal("empty item accepted")
	}
}

func TestContractDefaultsOpToVerbatim(t *testing.T) {
	e := contract.NewEngine()
	e.Register(Contract{})
	alice := keys.FromSeed([]byte("alice"))
	p1, _ := PublishPayload("n1", corpus.TopicPolitics, "text", nil, "")
	tx1, _ := ledger.NewTx(alice, 0, "news.publish", p1)
	e.ExecuteTx(tx1, 1)
	p2, _ := PublishPayload("n2", corpus.TopicPolitics, "text", []string{"n1"}, "")
	tx2, _ := ledger.NewTx(alice, 1, "news.publish", p2)
	e.ExecuteTx(tx2, 1)
	it, _ := GetItem(e, alice.Address(), "n2")
	if it.Op != corpus.OpVerbatim {
		t.Fatalf("op=%q", it.Op)
	}
}

func TestTraceFactualRoot(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g, item("n1", "alice", factText, ""))
	res, err := g.Trace("n1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rooted || res.Score != 1 || res.Depth != 0 {
		t.Fatalf("res=%+v", res)
	}
	if res.RootFactID != "fact-1" || res.Originator != "" {
		t.Fatalf("res=%+v", res)
	}
}

func TestTraceRelayChainKeepsScore(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g,
		item("n1", "alice", factText, ""),
		item("n2", "bob", factText, corpus.OpVerbatim, "n1"),
		item("n3", "carol", factText, corpus.OpVerbatim, "n2"),
	)
	res, _ := g.Trace("n3")
	if !res.Rooted || res.Score < 0.999 {
		t.Fatalf("res=%+v", res)
	}
	if res.Originator != "" {
		t.Fatalf("verbatim relays must have no originator: %+v", res)
	}
}

func TestTraceModificationDropsScore(t *testing.T) {
	g := NewGraph(newFactIndex())
	modified := "SHOCKING you must share this " + factText + " rigged corrupt disaster exposed"
	mustAdd(t, g,
		item("n1", "alice", factText, ""),
		item("n2", "mallory", modified, corpus.OpInsert, "n1"),
	)
	r1, _ := g.Trace("n1")
	r2, _ := g.Trace("n2")
	if r2.Score >= r1.Score {
		t.Fatalf("modified score %.3f >= original %.3f", r2.Score, r1.Score)
	}
	if !r2.Rooted {
		t.Fatal("modified item still traces to a factual root")
	}
}

func TestOriginatorAttribution(t *testing.T) {
	// fact -> relay(bob) -> modify(mallory) -> relay(carol): the paper's
	// accountability requirement is that mallory is identified.
	g := NewGraph(newFactIndex())
	modified := "fake claim entirely different words about a scandal conspiracy plot"
	mustAdd(t, g,
		item("n1", "alice", factText, ""),
		item("n2", "bob", factText, corpus.OpVerbatim, "n1"),
		item("n3", "mallory", modified, corpus.OpInsert, "n2"),
		item("n4", "carol", modified, corpus.OpVerbatim, "n3"),
	)
	res, _ := g.Trace("n4")
	if res.Originator != addr("mallory") {
		t.Fatalf("originator=%s want mallory (%s); res=%+v", res.Originator, addr("mallory"), res)
	}
	if res.OriginatorItem != "n3" {
		t.Fatalf("originator item=%s", res.OriginatorItem)
	}
}

func TestTraceUnrootedFabrication(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g, item("fab", "mallory", "wild invented nonsense claim zebra quantum hoax", ""))
	res, _ := g.Trace("fab")
	if res.Rooted || res.Score != 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestTraceBestOfMultipleParents(t *testing.T) {
	// A mix item with one factual-rooted parent and one fabricated parent
	// should trace through the better path.
	g := NewGraph(newFactIndex())
	mix := factText + " moon landing hoax conspiracy"
	mustAdd(t, g,
		item("good", "alice", factText, ""),
		item("bad", "mallory", "moon landing hoax conspiracy invented claim", ""),
		item("mix", "dave", mix, corpus.OpMix, "good", "bad"),
	)
	res, _ := g.Trace("mix")
	if !res.Rooted {
		t.Fatal("mix item should trace through the factual parent")
	}
	if res.Path[len(res.Path)-1] != "good" {
		t.Fatalf("path=%v; must root at the factual parent", res.Path)
	}
	if res.Score >= 1 {
		t.Fatalf("mix score=%f; must be penalized", res.Score)
	}
}

func TestTraceMissingItem(t *testing.T) {
	g := NewGraph(newFactIndex())
	if _, err := g.Trace("ghost"); !errors.Is(err, ErrItemNotFound) {
		t.Fatalf("want ErrItemNotFound, got %v", err)
	}
}

func TestGraphRejectsDuplicateAndOrphan(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g, item("n1", "alice", "text", ""))
	if err := g.AddItem(item("n1", "alice", "text", "")); !errors.Is(err, ErrItemExists) {
		t.Fatalf("want ErrItemExists, got %v", err)
	}
	if err := g.AddItem(item("n2", "bob", "text", corpus.OpVerbatim, "ghost")); !errors.Is(err, ErrParentNotFound) {
		t.Fatalf("want ErrParentNotFound, got %v", err)
	}
}

func TestTraceAllAndStats(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g,
		item("n1", "alice", factText, ""),
		item("n2", "bob", factText, corpus.OpVerbatim, "n1"),
		item("n3", "mallory", "invented garbage claim xyz", ""),
		item("n4", "dave", factText+" extra", corpus.OpInsert, "n2"),
	)
	traces := g.TraceAll()
	if len(traces) != 4 {
		t.Fatalf("traced %d items", len(traces))
	}
	if !traces["n4"].Rooted || traces["n3"].Rooted {
		t.Fatalf("traces: n4=%+v n3=%+v", traces["n4"], traces["n3"])
	}
	s := g.Stats()
	if s.Items != 4 || s.Edges != 2 || s.Roots != 2 || s.MaxDepth != 2 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestExpertsRankFactualCreators(t *testing.T) {
	facts := []string{
		"the senate ratified the border treaty with a margin of 61 to 20",
		"the parliament signed the transparency act in a public session",
		"the city council proposed the budget amendment citing document 401",
	}
	ix := factdb.NewIndex()
	for i, f := range facts {
		ix.Add(factdb.Fact{ID: "f" + strconv.Itoa(i), Topic: corpus.TopicPolitics, Text: f})
	}
	g := NewGraph(ix)
	// expert posts three factual items; amateur posts one factual and two
	// fabrications; troll posts fabrications only.
	for i, f := range facts {
		mustAdd(t, g, item("e"+strconv.Itoa(i), "expert", f, ""))
	}
	mustAdd(t, g,
		item("a0", "amateur", facts[0], ""),
		item("a1", "amateur", "invented claim about lizard people", ""),
		item("a2", "amateur", "more invented nonsense entirely", ""),
		item("t0", "troll", "deep state hoax claim fabricated", ""),
	)
	traces := g.TraceAll()
	experts := g.Experts(corpus.TopicPolitics, traces, 2)
	if len(experts) != 2 {
		t.Fatalf("experts=%+v", experts)
	}
	if experts[0].Account != addr("expert") {
		t.Fatalf("top expert=%s want %s", experts[0].Account, addr("expert"))
	}
	if experts[0].Score <= experts[1].Score {
		t.Fatalf("scores not ordered: %+v", experts)
	}
}

func TestCommunitiesSeparateGroups(t *testing.T) {
	g := NewGraph(newFactIndex())
	// Two echo chambers: a1<->a2<->a3 relay each other; b1<->b2 relay
	// each other; no cross edges.
	mustAdd(t, g,
		item("x1", "a1", factText, ""),
		item("x2", "a2", factText, corpus.OpVerbatim, "x1"),
		item("x3", "a3", factText, corpus.OpVerbatim, "x2"),
		item("x4", "a1", factText, corpus.OpVerbatim, "x3"),
		item("y1", "b1", "other claim entirely", ""),
		item("y2", "b2", "other claim entirely", corpus.OpVerbatim, "y1"),
		item("y3", "b1", "other claim entirely", corpus.OpVerbatim, "y2"),
	)
	labels := g.Communities(20)
	if labels[addr("a1")] != labels[addr("a2")] || labels[addr("a2")] != labels[addr("a3")] {
		t.Fatalf("group A split: %v", labels)
	}
	if labels[addr("b1")] != labels[addr("b2")] {
		t.Fatalf("group B split: %v", labels)
	}
	if labels[addr("a1")] == labels[addr("b1")] {
		t.Fatalf("groups merged: %v", labels)
	}
}

func TestProcessChainWorkflow(t *testing.T) {
	stages := []string{"farm", "processor", "distributor", "retail"}
	pc, err := NewProcessChain(stages, map[string]string{"farm": "farmer", "retail": "shop"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Register("lot-1", "farmer"); err != nil {
		t.Fatal(err)
	}
	if err := pc.Advance("lot-1", "acme-proc", "washed"); err != nil {
		t.Fatal(err)
	}
	if err := pc.Advance("lot-1", "fastship", ""); err != nil {
		t.Fatal(err)
	}
	if pc.Completed("lot-1") {
		t.Fatal("not yet complete")
	}
	if err := pc.Advance("lot-1", "shop", "shelved"); err != nil {
		t.Fatal(err)
	}
	if !pc.Completed("lot-1") {
		t.Fatal("should be complete")
	}
	trace, err := pc.Trace("lot-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 || trace[0].Stage != "farm" || trace[3].Stage != "retail" {
		t.Fatalf("trace=%+v", trace)
	}
}

func TestProcessChainEnforcement(t *testing.T) {
	pc, _ := NewProcessChain([]string{"a", "b"}, map[string]string{"a": "alice"})
	if err := pc.Register("x", "bob"); !errors.Is(err, ErrWrongActor) {
		t.Fatalf("want ErrWrongActor, got %v", err)
	}
	pc.Register("x", "alice")
	if err := pc.Register("x", "alice"); !errors.Is(err, ErrAssetExists) {
		t.Fatalf("want ErrAssetExists, got %v", err)
	}
	pc.Advance("x", "anyone", "")
	if err := pc.Advance("x", "anyone", ""); !errors.Is(err, ErrStageOrder) {
		t.Fatalf("want ErrStageOrder after completion, got %v", err)
	}
	if _, err := pc.Trace("ghost"); !errors.Is(err, ErrAssetNotFound) {
		t.Fatalf("want ErrAssetNotFound, got %v", err)
	}
	if _, err := NewProcessChain(nil, nil); !errors.Is(err, ErrNoStages) {
		t.Fatalf("want ErrNoStages, got %v", err)
	}
}

func TestDeepChainTraceDepth(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g, item("n0", "alice", factText, ""))
	const depth = 200
	for i := 1; i <= depth; i++ {
		mustAdd(t, g, item(
			"n"+strconv.Itoa(i), "relay"+strconv.Itoa(i%10), factText,
			corpus.OpVerbatim, "n"+strconv.Itoa(i-1),
		))
	}
	res, err := g.Trace("n" + strconv.Itoa(depth))
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != depth {
		t.Fatalf("depth=%d want %d", res.Depth, depth)
	}
	if len(res.Path) != depth+1 {
		t.Fatalf("path len=%d", len(res.Path))
	}
}

func BenchmarkTrace(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			g := NewGraph(newFactIndex())
			gen := corpus.NewGenerator(1)
			mustAddB(b, g, item("n0", "alice", factText, ""))
			for i := 1; i < n; i++ {
				parent := "n" + strconv.Itoa(gen.Rand().Intn(i))
				mustAddB(b, g, item("n"+strconv.Itoa(i), "u"+strconv.Itoa(i%50), factText, corpus.OpVerbatim, parent))
			}
			last := "n" + strconv.Itoa(n-1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Trace(last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustAddB(b *testing.B, g *Graph, it Item) {
	b.Helper()
	if err := g.AddItem(it); err != nil {
		b.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph(newFactIndex())
	mustAdd(t, g,
		item("n1", "alice", factText, ""),
		item("n2", "bob", factText, corpus.OpVerbatim, "n1"),
		item("n3", "mallory", "fabricated nonsense entirely unrelated", ""),
		item("n4", "dave", factText+" shocking rigged", corpus.OpInsert, "n2"),
	)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph newschain",
		`"n2" -> "n1" [label="verbatim"]`,
		`"n4" -> "n2" [label="insert"]`,
		"#58a55c", // factual green appears
		"#e05252", // unverifiable red appears
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
}

// Property: trace scores are always within [0,1], and a verbatim relay
// never scores above its parent.
func TestTraceScoreBoundsProperty(t *testing.T) {
	f := func(seed int64, depth uint8) bool {
		gen := corpus.NewGenerator(seed)
		ix := factdb.NewIndex()
		fact := gen.Factual()
		ix.Add(factdb.Fact{ID: fact.ID, Topic: fact.Topic, Text: fact.Text})
		g := NewGraph(ix)
		text := fact.Text
		if err := g.AddItem(Item{ID: "n0", Topic: fact.Topic, Text: text, Creator: "a"}); err != nil {
			return false
		}
		d := int(depth)%6 + 1
		prevScore := 1.0
		for hop := 1; hop <= d; hop++ {
			op := corpus.OpVerbatim
			if hop%2 == 0 {
				src := corpus.Statement{ID: "x", Topic: fact.Topic, Text: text}
				text = gen.Modify(src, corpus.OpInsert).Text
				op = corpus.OpInsert
			}
			id := "n" + strconv.Itoa(hop)
			if err := g.AddItem(Item{
				ID: id, Topic: fact.Topic, Text: text, Creator: "a",
				Parents: []string{"n" + strconv.Itoa(hop-1)}, Op: op,
			}); err != nil {
				return false
			}
			tr, err := g.Trace(id)
			if err != nil {
				return false
			}
			if tr.Score < 0 || tr.Score > 1 {
				return false
			}
			if op == corpus.OpVerbatim && tr.Score > prevScore+1e-9 {
				return false
			}
			prevScore = tr.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
