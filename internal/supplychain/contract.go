// Package supplychain implements contribution (2) of the paper: modelling
// news propagation as a blockchain data-flow supply chain (§VI, Fig. 4).
//
// Every propagation step — publishing an original item, relaying it, or
// deriving from it by the paper's operators (mixing, splitting, merging,
// inserting) — is a transaction handled by the news contract, which links
// the new item to its parent items: "this process will create a blockchain
// transaction and form a graph link from the current account into the
// referred parent account". The Graph type rebuilds the propagation DAG
// from contract state and supports the paper's three queries: trace-back
// to the factual database root, ranking by degree of modification along
// the path, and originator identification for accountability.
package supplychain

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/keys"
)

// ContractName routes news transactions.
const ContractName = "news"

// Errors returned by this package.
var (
	// ErrItemExists indicates a publish with a duplicate item id.
	ErrItemExists = errors.New("supplychain: item already exists")
	// ErrItemNotFound indicates an unknown item id.
	ErrItemNotFound = errors.New("supplychain: item not found")
	// ErrParentNotFound indicates a publish referencing a missing parent.
	ErrParentNotFound = errors.New("supplychain: parent not found")
	// ErrEmptyItem indicates a publish without id or body.
	ErrEmptyItem = errors.New("supplychain: empty item id or body")
	// ErrBodyConflict indicates a publish carrying both an inline text and
	// an off-chain content id — the body must live in exactly one place.
	ErrBodyConflict = errors.New("supplychain: both inline text and cid given")
	// ErrBadBodyRef indicates an off-chain body reference with a
	// non-positive size.
	ErrBadBodyRef = errors.New("supplychain: off-chain body ref needs positive size")
)

// Item is one node of the news supply chain: a statement introduced by an
// account, optionally derived from parent items.
type Item struct {
	ID      string       `json:"id"`
	Topic   corpus.Topic `json:"topic"`
	Text    string       `json:"text,omitempty"` // inline body (legacy path)
	CID     string       `json:"cid,omitempty"`  // off-chain body content id
	Size    int          `json:"size,omitempty"` // off-chain body length in bytes
	Creator string       `json:"creator"`        // hex address
	Parents []string     `json:"parents,omitempty"`
	Op      corpus.Op    `json:"op,omitempty"` // how it derives from parents
	Height  uint64       `json:"height"`
}

// publishArgs is the payload of news.publish. The body travels either
// inline in Text or off-chain as a CID+Size reference — exactly one.
type publishArgs struct {
	ID      string       `json:"id"`
	Topic   corpus.Topic `json:"topic"`
	Text    string       `json:"text,omitempty"`
	CID     string       `json:"cid,omitempty"`
	Size    int          `json:"size,omitempty"`
	Parents []string     `json:"parents,omitempty"`
	Op      corpus.Op    `json:"op,omitempty"`
}

// Contract is the news supply-chain chaincode.
type Contract struct{}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "publish":
		return c.publish(ctx, args)
	case "get":
		return c.get(ctx, args)
	case "list":
		return c.list(ctx)
	default:
		return nil, fmt.Errorf("%w: news.%s", contract.ErrUnknownMethod, method)
	}
}

func (c Contract) publish(ctx *contract.Context, args []byte) ([]byte, error) {
	var in publishArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("supplychain: publish args: %w", err)
	}
	if in.ID == "" || (in.Text == "" && in.CID == "") {
		return nil, ErrEmptyItem
	}
	if in.Text != "" && in.CID != "" {
		return nil, fmt.Errorf("%w: %s", ErrBodyConflict, in.ID)
	}
	if in.CID != "" && in.Size <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBadBodyRef, in.ID)
	}
	key := "item/" + in.ID
	if ok, err := ctx.Has(key); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrItemExists, in.ID)
	}
	// Parents must already be committed, which makes the graph a DAG by
	// construction: no item can reference a future item.
	for _, p := range in.Parents {
		if ok, err := ctx.Has("item/" + p); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("%w: %s", ErrParentNotFound, p)
		}
	}
	op := in.Op
	if op == "" {
		if len(in.Parents) > 0 {
			op = corpus.OpVerbatim
		}
	}
	item := Item{
		ID:      in.ID,
		Topic:   in.Topic,
		Text:    in.Text,
		CID:     in.CID,
		Size:    in.Size,
		Creator: ctx.Sender.String(),
		Parents: in.Parents,
		Op:      op,
		Height:  ctx.Height,
	}
	raw, err := json.Marshal(item)
	if err != nil {
		return nil, fmt.Errorf("supplychain: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	attrs := map[string]string{
		"id": item.ID, "creator": item.Creator, "topic": string(item.Topic), "op": string(op),
	}
	if item.CID != "" {
		attrs["cid"] = item.CID
	}
	if len(in.Parents) > 0 {
		attrs["parent0"] = in.Parents[0]
	}
	if err := ctx.Emit("published", attrs); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c Contract) get(ctx *contract.Context, args []byte) ([]byte, error) {
	raw, err := ctx.Get("item/" + string(args))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrItemNotFound, string(args))
	}
	return raw, nil
}

func (c Contract) list(ctx *contract.Context) ([]byte, error) {
	ks, err := ctx.Keys("item/")
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, len(ks))
	for _, k := range ks {
		raw, err := ctx.Get(k)
		if err != nil {
			return nil, err
		}
		var it Item
		if err := json.Unmarshal(raw, &it); err != nil {
			return nil, fmt.Errorf("supplychain: unmarshal %s: %w", k, err)
		}
		items = append(items, it)
	}
	return json.Marshal(items)
}

// PublishPayload builds a news.publish payload with an inline body.
// Parents may be empty for an original item.
func PublishPayload(id string, topic corpus.Topic, text string, parents []string, op corpus.Op) ([]byte, error) {
	return json.Marshal(publishArgs{ID: id, Topic: topic, Text: text, Parents: parents, Op: op})
}

// PublishRefPayload builds a news.publish payload whose body lives
// off-chain: only the content id and size go into the transaction.
func PublishRefPayload(id string, topic corpus.Topic, cid string, size int, parents []string, op corpus.Op) ([]byte, error) {
	return json.Marshal(publishArgs{ID: id, Topic: topic, CID: cid, Size: size, Parents: parents, Op: op})
}

// GetItem queries one item through the engine.
func GetItem(e *contract.Engine, asker keys.Address, id string) (Item, error) {
	raw, err := e.Query(asker, ContractName+".get", []byte(id))
	if err != nil {
		return Item{}, err
	}
	var it Item
	if err := json.Unmarshal(raw, &it); err != nil {
		return Item{}, fmt.Errorf("supplychain: decode item: %w", err)
	}
	return it, nil
}

// ListItems queries every item through the engine.
func ListItems(e *contract.Engine, asker keys.Address) ([]Item, error) {
	raw, err := e.Query(asker, ContractName+".list", nil)
	if err != nil {
		return nil, err
	}
	var items []Item
	if err := json.Unmarshal(raw, &items); err != nil {
		return nil, fmt.Errorf("supplychain: decode items: %w", err)
	}
	return items, nil
}
