// Package crawler implements the platform's external-media ingest path:
// "the system news rooms will make use Internet crawlers to collect news"
// (§VI). Since the build is offline, the "Internet" is a set of simulated
// external sources with OpenSources-style reliability categories (§II):
// credible outlets republish facts, clickbait sites mix modified items in,
// and fake-news mills emit fabrications.
//
// The crawler polls sources, deduplicates by normalized content, and
// hands fetched articles to the platform. Its primary mode is as a
// producer for the durable ingestion queue (internal/ingest): CrawlOnce
// enqueues unseen articles and the pipeline's workers extract, chunk
// and publish them asynchronously, so a burst of crawled content never
// couples to the commit path. The legacy inline mode (New without a
// pipeline) publishes synchronously and ranks each item immediately,
// which the source-assessment flow uses to build each source's track
// record from the platform's own ranking history (the OpenSources
// methodology, automated).
package crawler

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/ingest"
	"repro/internal/platform"
)

// Category matches the OpenSources labels the paper cites (§II).
type Category string

// Source categories.
const (
	CategoryCredible  Category = "credible"
	CategoryClickbait Category = "clickbait"
	CategoryFakeMill  Category = "fake-mill"
)

// Errors returned by this package.
var (
	// ErrNoSources indicates a crawler with nothing to poll.
	ErrNoSources = errors.New("crawler: no sources configured")
	// ErrUnknownSource indicates a fetch from an unregistered source.
	ErrUnknownSource = errors.New("crawler: unknown source")
)

// Article is one externally published piece.
type Article struct {
	SourceID string       `json:"sourceId"`
	Topic    corpus.Topic `json:"topic"`
	Text     string       `json:"text"`
	// Truth is the generator's ground-truth label, used only by tests and
	// experiments — the platform never sees it.
	Truth bool `json:"-"`
}

// Source is a simulated external outlet.
type Source struct {
	ID       string
	Category Category
	// FactualShare is the fraction of its output that is factual.
	FactualShare float64
}

// SourceProfile is what crawling the real web would give per outlet;
// DefaultSources covers the three OpenSources archetypes.
func DefaultSources() []Source {
	return []Source{
		{ID: "wire-service", Category: CategoryCredible, FactualShare: 0.95},
		{ID: "city-paper", Category: CategoryCredible, FactualShare: 0.9},
		{ID: "viral-buzz", Category: CategoryClickbait, FactualShare: 0.45},
		{ID: "daily-outrage", Category: CategoryFakeMill, FactualShare: 0.08},
	}
}

// Web simulates the outside internet: sources emit articles derived from
// a shared pool of real-world facts (so credible outlets corroborate each
// other, as real wire copy does).
type Web struct {
	mu      sync.Mutex
	rng     *rand.Rand
	gen     *corpus.Generator
	sources map[string]Source
	facts   []corpus.Statement
}

// NewWeb creates the simulated internet with the given sources.
func NewWeb(seed int64, sources []Source) (*Web, error) {
	if len(sources) == 0 {
		return nil, ErrNoSources
	}
	w := &Web{
		rng:     rand.New(rand.NewSource(seed)),
		gen:     corpus.NewGenerator(seed),
		sources: make(map[string]Source, len(sources)),
	}
	for _, s := range sources {
		w.sources[s.ID] = s
	}
	for i := 0; i < 64; i++ {
		w.facts = append(w.facts, w.gen.Factual())
	}
	return w, nil
}

// Facts exposes the underlying real-world facts (to seed the platform's
// factual database, standing in for official records).
func (w *Web) Facts() []corpus.Statement {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]corpus.Statement, len(w.facts))
	copy(out, w.facts)
	return out
}

// SourceIDs lists the registered sources, sorted.
func (w *Web) SourceIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.sources))
	for id := range w.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Fetch returns the source's next batch of articles.
func (w *Web) Fetch(sourceID string, n int) ([]Article, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	src, ok := w.sources[sourceID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, sourceID)
	}
	out := make([]Article, 0, n)
	for i := 0; i < n; i++ {
		if w.rng.Float64() < src.FactualShare {
			f := w.facts[w.rng.Intn(len(w.facts))]
			out = append(out, Article{SourceID: sourceID, Topic: f.Topic, Text: f.Text, Truth: true})
			continue
		}
		// Non-factual output: clickbait modifies real stories; fake mills
		// mostly fabricate.
		var s corpus.Statement
		if src.Category == CategoryFakeMill && w.rng.Float64() > corpus.ModifiedShare {
			s = w.gen.Fabricate()
		} else {
			s = w.gen.Modify(w.facts[w.rng.Intn(len(w.facts))], "")
		}
		out = append(out, Article{SourceID: sourceID, Topic: s.Topic, Text: s.Text, Truth: false})
	}
	return out, nil
}

// Crawler polls the web and ingests into a platform — through the
// durable ingest queue (producer mode) or by publishing inline (legacy
// assessment mode).
type Crawler struct {
	web   *Web
	p     *platform.Platform
	actor *platform.Actor
	// pipeline, when set, makes the crawler a queue producer: CrawlOnce
	// enqueues and the pipeline publishes asynchronously.
	pipeline *ingest.Pipeline
	// seen deduplicates by normalized content key.
	seen map[string]bool
	// perSource tracks how ingested items ranked, per source.
	perSource map[string]*SourceStats
	seq       int
}

// SourceStats is a source's ranking track record on the platform — the
// automated OpenSources assessment.
type SourceStats struct {
	SourceID string  `json:"sourceId"`
	Ingested int     `json:"ingested"`
	Factual  int     `json:"factual"`
	Fake     int     `json:"fake"`
	AvgScore float64 `json:"avgScore"`
	scoreSum float64
}

// Reliability is the measured factual share.
func (s *SourceStats) Reliability() float64 {
	if s.Ingested == 0 {
		return 0
	}
	return float64(s.Factual) / float64(s.Ingested)
}

// New creates a crawler ingesting into p under a dedicated account
// (legacy inline mode: publish + rank synchronously).
func New(web *Web, p *platform.Platform) *Crawler {
	return &Crawler{
		web:       web,
		p:         p,
		actor:     p.NewActor("crawler-ingest"),
		seen:      make(map[string]bool),
		perSource: make(map[string]*SourceStats),
	}
}

// NewProducer creates a crawler feeding the durable ingest queue:
// CrawlOnce enqueues unseen articles and returns; extraction,
// off-chain chunking and publication happen in the pipeline's workers.
func NewProducer(web *Web, pl *ingest.Pipeline) *Crawler {
	return &Crawler{
		web:       web,
		pipeline:  pl,
		seen:      make(map[string]bool),
		perSource: make(map[string]*SourceStats),
	}
}

// CrawlOnce fetches n articles from every source and ingests the
// unseen ones, returning how many were newly ingested. In producer
// mode that means a durable enqueue (a full queue stops the crawl —
// the producer backs off rather than dropping silently); in legacy
// mode each item is published, ranked, and folded into the source's
// track record.
func (c *Crawler) CrawlOnce(n int) (int, error) {
	ingested := 0
	for _, id := range c.web.SourceIDs() {
		arts, err := c.web.Fetch(id, n)
		if err != nil {
			return ingested, err
		}
		for _, a := range arts {
			key := factdb.ContentKey(a.Text)
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			if c.pipeline != nil {
				if _, err := c.pipeline.Enqueue(ingest.Article{Source: a.SourceID, Topic: a.Topic, Text: a.Text}); err != nil {
					return ingested, fmt.Errorf("crawler: enqueue from %s: %w", a.SourceID, err)
				}
				c.sourceStats(a.SourceID).Ingested++
				ingested++
				continue
			}
			c.seq++
			itemID := fmt.Sprintf("crawl-%s-%d", a.SourceID, c.seq)
			if err := c.actor.PublishNews(itemID, a.Topic, a.Text, nil, ""); err != nil {
				return ingested, fmt.Errorf("crawler: publish %s: %w", itemID, err)
			}
			ingested++
			rank, err := c.p.RankItem(itemID, "combined")
			if err != nil {
				return ingested, fmt.Errorf("crawler: rank %s: %w", itemID, err)
			}
			st := c.sourceStats(a.SourceID)
			st.Ingested++
			st.scoreSum += rank.Score
			st.AvgScore = st.scoreSum / float64(st.Ingested)
			if rank.Factual {
				st.Factual++
			} else {
				st.Fake++
			}
		}
	}
	return ingested, nil
}

// sourceStats returns (creating if needed) the per-source record.
func (c *Crawler) sourceStats(sourceID string) *SourceStats {
	st, ok := c.perSource[sourceID]
	if !ok {
		st = &SourceStats{SourceID: sourceID}
		c.perSource[sourceID] = st
	}
	return st
}

// Stats returns the per-source track records, most reliable first.
func (c *Crawler) Stats() []SourceStats {
	out := make([]SourceStats, 0, len(c.perSource))
	for _, st := range c.perSource {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Reliability(), out[j].Reliability()
		if ri != rj {
			return ri > rj
		}
		return out[i].SourceID < out[j].SourceID
	})
	return out
}
