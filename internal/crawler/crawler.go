// Package crawler implements the platform's external-media ingest path:
// "the system news rooms will make use Internet crawlers to collect news"
// (§VI). Since the build is offline, the "Internet" is a set of simulated
// external sources with OpenSources-style reliability categories (§II):
// credible outlets republish facts, clickbait sites mix modified items in,
// and fake-news mills emit fabrications.
//
// The crawler polls sources, deduplicates by normalized content, assesses
// each source's track record from the platform's own ranking history (the
// OpenSources methodology, automated), and publishes fetched items to the
// news supply chain under the crawler's account with the source recorded
// as an attribute — so trace-based ranking immediately applies to
// ingested content.
package crawler

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/platform"
)

// Category matches the OpenSources labels the paper cites (§II).
type Category string

// Source categories.
const (
	CategoryCredible  Category = "credible"
	CategoryClickbait Category = "clickbait"
	CategoryFakeMill  Category = "fake-mill"
)

// Errors returned by this package.
var (
	// ErrNoSources indicates a crawler with nothing to poll.
	ErrNoSources = errors.New("crawler: no sources configured")
	// ErrUnknownSource indicates a fetch from an unregistered source.
	ErrUnknownSource = errors.New("crawler: unknown source")
)

// Article is one externally published piece.
type Article struct {
	SourceID string       `json:"sourceId"`
	Topic    corpus.Topic `json:"topic"`
	Text     string       `json:"text"`
	// Truth is the generator's ground-truth label, used only by tests and
	// experiments — the platform never sees it.
	Truth bool `json:"-"`
}

// Source is a simulated external outlet.
type Source struct {
	ID       string
	Category Category
	// FactualShare is the fraction of its output that is factual.
	FactualShare float64
}

// SourceProfile is what crawling the real web would give per outlet;
// DefaultSources covers the three OpenSources archetypes.
func DefaultSources() []Source {
	return []Source{
		{ID: "wire-service", Category: CategoryCredible, FactualShare: 0.95},
		{ID: "city-paper", Category: CategoryCredible, FactualShare: 0.9},
		{ID: "viral-buzz", Category: CategoryClickbait, FactualShare: 0.45},
		{ID: "daily-outrage", Category: CategoryFakeMill, FactualShare: 0.08},
	}
}

// Web simulates the outside internet: sources emit articles derived from
// a shared pool of real-world facts (so credible outlets corroborate each
// other, as real wire copy does).
type Web struct {
	mu      sync.Mutex
	rng     *rand.Rand
	gen     *corpus.Generator
	sources map[string]Source
	facts   []corpus.Statement
}

// NewWeb creates the simulated internet with the given sources.
func NewWeb(seed int64, sources []Source) (*Web, error) {
	if len(sources) == 0 {
		return nil, ErrNoSources
	}
	w := &Web{
		rng:     rand.New(rand.NewSource(seed)),
		gen:     corpus.NewGenerator(seed),
		sources: make(map[string]Source, len(sources)),
	}
	for _, s := range sources {
		w.sources[s.ID] = s
	}
	for i := 0; i < 64; i++ {
		w.facts = append(w.facts, w.gen.Factual())
	}
	return w, nil
}

// Facts exposes the underlying real-world facts (to seed the platform's
// factual database, standing in for official records).
func (w *Web) Facts() []corpus.Statement {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]corpus.Statement, len(w.facts))
	copy(out, w.facts)
	return out
}

// SourceIDs lists the registered sources, sorted.
func (w *Web) SourceIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.sources))
	for id := range w.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Fetch returns the source's next batch of articles.
func (w *Web) Fetch(sourceID string, n int) ([]Article, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	src, ok := w.sources[sourceID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, sourceID)
	}
	out := make([]Article, 0, n)
	for i := 0; i < n; i++ {
		if w.rng.Float64() < src.FactualShare {
			f := w.facts[w.rng.Intn(len(w.facts))]
			out = append(out, Article{SourceID: sourceID, Topic: f.Topic, Text: f.Text, Truth: true})
			continue
		}
		// Non-factual output: clickbait modifies real stories; fake mills
		// mostly fabricate.
		var s corpus.Statement
		if src.Category == CategoryFakeMill && w.rng.Float64() > corpus.ModifiedShare {
			s = w.gen.Fabricate()
		} else {
			s = w.gen.Modify(w.facts[w.rng.Intn(len(w.facts))], "")
		}
		out = append(out, Article{SourceID: sourceID, Topic: s.Topic, Text: s.Text, Truth: false})
	}
	return out, nil
}

// Crawler polls the web and ingests into a platform.
type Crawler struct {
	web   *Web
	p     *platform.Platform
	actor *platform.Actor
	// seen deduplicates by normalized content key.
	seen map[string]bool
	// perSource tracks how ingested items ranked, per source.
	perSource map[string]*SourceStats
	seq       int
}

// SourceStats is a source's ranking track record on the platform — the
// automated OpenSources assessment.
type SourceStats struct {
	SourceID string  `json:"sourceId"`
	Ingested int     `json:"ingested"`
	Factual  int     `json:"factual"`
	Fake     int     `json:"fake"`
	AvgScore float64 `json:"avgScore"`
	scoreSum float64
}

// Reliability is the measured factual share.
func (s *SourceStats) Reliability() float64 {
	if s.Ingested == 0 {
		return 0
	}
	return float64(s.Factual) / float64(s.Ingested)
}

// New creates a crawler ingesting into p under a dedicated account.
func New(web *Web, p *platform.Platform) *Crawler {
	return &Crawler{
		web:       web,
		p:         p,
		actor:     p.NewActor("crawler-ingest"),
		seen:      make(map[string]bool),
		perSource: make(map[string]*SourceStats),
	}
}

// CrawlOnce fetches n articles from every source, publishes the unseen
// ones, ranks them, and updates source statistics. It returns the number
// of newly ingested items.
func (c *Crawler) CrawlOnce(n int) (int, error) {
	ingested := 0
	for _, id := range c.web.SourceIDs() {
		arts, err := c.web.Fetch(id, n)
		if err != nil {
			return ingested, err
		}
		for _, a := range arts {
			key := factdb.ContentKey(a.Text)
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			c.seq++
			itemID := fmt.Sprintf("crawl-%s-%d", a.SourceID, c.seq)
			if err := c.actor.PublishNews(itemID, a.Topic, a.Text, nil, ""); err != nil {
				return ingested, fmt.Errorf("crawler: publish %s: %w", itemID, err)
			}
			ingested++
			rank, err := c.p.RankItem(itemID, "combined")
			if err != nil {
				return ingested, fmt.Errorf("crawler: rank %s: %w", itemID, err)
			}
			st, ok := c.perSource[a.SourceID]
			if !ok {
				st = &SourceStats{SourceID: a.SourceID}
				c.perSource[a.SourceID] = st
			}
			st.Ingested++
			st.scoreSum += rank.Score
			st.AvgScore = st.scoreSum / float64(st.Ingested)
			if rank.Factual {
				st.Factual++
			} else {
				st.Fake++
			}
		}
	}
	return ingested, nil
}

// Stats returns the per-source track records, most reliable first.
func (c *Crawler) Stats() []SourceStats {
	out := make([]SourceStats, 0, len(c.perSource))
	for _, st := range c.perSource {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Reliability(), out[j].Reliability()
		if ri != rj {
			return ri > rj
		}
		return out[i].SourceID < out[j].SourceID
	})
	return out
}
