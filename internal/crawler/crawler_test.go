package crawler

import (
	"errors"
	"testing"
	"time"

	"repro/internal/aidetect"
	"repro/internal/corpus"
	"repro/internal/ingest"
	"repro/internal/platform"
)

func newIngestPlatform(t *testing.T, web *Web) *platform.Platform {
	t.Helper()
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.NewGenerator(31).Generate(400, 400)
	if err := p.TrainClassifier(aidetect.NewLogisticRegression(), c.Statements); err != nil {
		t.Fatal(err)
	}
	// Official records = the simulated world's fact pool.
	for _, f := range web.Facts() {
		if err := p.SeedFact(f.ID, f.Topic, f.Text); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestNewWebValidation(t *testing.T) {
	if _, err := NewWeb(1, nil); !errors.Is(err, ErrNoSources) {
		t.Fatalf("want ErrNoSources, got %v", err)
	}
}

func TestFetchUnknownSource(t *testing.T) {
	web, err := NewWeb(1, DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := web.Fetch("ghost", 3); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("want ErrUnknownSource, got %v", err)
	}
}

func TestSourcesEmitPerProfile(t *testing.T) {
	web, err := NewWeb(2, DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	count := func(id string) float64 {
		arts, err := web.Fetch(id, 300)
		if err != nil {
			t.Fatal(err)
		}
		factual := 0
		for _, a := range arts {
			if a.Truth {
				factual++
			}
		}
		return float64(factual) / float64(len(arts))
	}
	wire := count("wire-service")
	mill := count("daily-outrage")
	if wire < 0.85 {
		t.Fatalf("wire factual share=%.2f", wire)
	}
	if mill > 0.2 {
		t.Fatalf("fake mill factual share=%.2f", mill)
	}
}

func TestCrawlIngestsAndDeduplicates(t *testing.T) {
	web, err := NewWeb(3, DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	p := newIngestPlatform(t, web)
	c := New(web, p)
	n1, err := c.CrawlOnce(5)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("nothing ingested")
	}
	if p.Graph().Len() != n1 {
		t.Fatalf("graph len=%d ingested=%d", p.Graph().Len(), n1)
	}
	// Second crawl: duplicates (wire copy repeats facts) are dropped, so
	// ingestion is at most the fetch volume and usually below it.
	before := p.Graph().Len()
	n2, err := c.CrawlOnce(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph().Len() != before+n2 {
		t.Fatalf("graph len=%d want %d", p.Graph().Len(), before+n2)
	}
	total := 0
	for _, st := range c.Stats() {
		total += st.Ingested
	}
	if total != n1+n2 {
		t.Fatalf("stats total=%d want %d", total, n1+n2)
	}
}

func TestCrawlerAssessesSources(t *testing.T) {
	web, err := NewWeb(4, DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	p := newIngestPlatform(t, web)
	c := New(web, p)
	for i := 0; i < 4; i++ {
		if _, err := c.CrawlOnce(8); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats=%+v", stats)
	}
	byID := make(map[string]SourceStats, len(stats))
	for _, st := range stats {
		byID[st.SourceID] = st
	}
	wire := byID["wire-service"]
	mill := byID["daily-outrage"]
	// Without crowd votes the ranking runs on AI+trace only, which passes
	// some mixing/merging fakes (see E11) — so the bound on the mill is
	// loose; the separation between source categories is the invariant.
	if wire.Reliability() < mill.Reliability()+0.25 {
		t.Fatalf("wire reliability %.2f not clearly above mill %.2f", wire.Reliability(), mill.Reliability())
	}
	if wire.Reliability() < 0.7 {
		t.Fatalf("wire reliability=%.2f; platform misjudges credible source", wire.Reliability())
	}
	if mill.Reliability() > 0.6 {
		t.Fatalf("mill reliability=%.2f; platform misjudges fake mill", mill.Reliability())
	}
	if wire.AvgScore <= mill.AvgScore {
		t.Fatalf("avg scores inverted: wire %.2f mill %.2f", wire.AvgScore, mill.AvgScore)
	}
	// The ranking order mirrors the OpenSources categorization.
	if stats[0].SourceID == "daily-outrage" {
		t.Fatalf("fake mill ranked most reliable: %+v", stats)
	}
}

func TestCrawlerProducesIntoIngestQueue(t *testing.T) {
	web, err := NewWeb(6, DefaultSources())
	if err != nil {
		t.Fatal(err)
	}
	p := newIngestPlatform(t, web)
	q, err := ingest.NewQueue(nil, ingest.QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pl := ingest.NewPipeline(p, q, ingest.PipelineConfig{Workers: 2})
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				if err := p.CommitAll(); err != nil {
					return
				}
			}
		}
	}()
	pl.Start()
	defer pl.Stop()

	c := NewProducer(web, pl)
	n, err := c.CrawlOnce(5)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing enqueued")
	}
	// Enqueue is decoupled from publication: drain the pipeline, then the
	// published+deduped settle count must cover every enqueued article.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := pl.Stats()
		if int(st.Published+st.Deduped+st.Failed) >= n && st.Queue.Depth == 0 && st.Queue.Inflight == 0 && st.AwaitingCommit == 0 {
			if st.Failed != 0 || len(q.Dead()) != 0 {
				t.Fatalf("crawled articles failed: %+v dead=%d", st, len(q.Dead()))
			}
			if int(st.Published) != p.Graph().Len() {
				t.Fatalf("graph len=%d published=%d", p.Graph().Len(), st.Published)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Per-source stats track enqueues in producer mode.
	total := 0
	for _, st := range c.Stats() {
		total += st.Ingested
	}
	if total != n {
		t.Fatalf("stats total=%d want %d", total, n)
	}
	// A second crawl over the same sources dedups already-seen content.
	n2, err := c.CrawlOnce(5)
	if err != nil {
		t.Fatal(err)
	}
	if n2 >= 4*5 {
		t.Fatalf("no dedup across crawls: n2=%d", n2)
	}
}

func TestCrawlerDeterministic(t *testing.T) {
	run := func() []SourceStats {
		web, err := NewWeb(5, DefaultSources())
		if err != nil {
			t.Fatal(err)
		}
		p := newIngestPlatform(t, web)
		c := New(web, p)
		if _, err := c.CrawlOnce(6); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("stats lengths differ")
	}
	for i := range a {
		// AvgScore carries sub-1e-12 jitter from the classifier's hashed
		// feature map iteration order; counts must match exactly.
		if a[i].SourceID != b[i].SourceID || a[i].Ingested != b[i].Ingested ||
			a[i].Factual != b[i].Factual || a[i].Fake != b[i].Fake {
			t.Fatalf("stats diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		if diff := a[i].AvgScore - b[i].AvgScore; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("avg score diverges at %d: %v vs %v", i, a[i].AvgScore, b[i].AvgScore)
		}
	}
}
