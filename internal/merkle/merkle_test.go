package merkle

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte("leaf-" + strconv.Itoa(i))
	}
	return out
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err != ErrEmptyTree {
		t.Fatalf("want ErrEmptyTree, got %v", err)
	}
}

func TestRootEmptyIsZero(t *testing.T) {
	if !Root(nil).IsZero() {
		t.Fatal("empty root must be zero")
	}
}

func TestRootMatchesTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 100} {
		ls := leaves(n)
		tree, err := New(ls)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if got, want := Root(ls), tree.Root(); got != want {
			t.Fatalf("n=%d: Root()=%s tree=%s", n, got.Short(), want.Short())
		}
	}
}

func TestSingleLeafRoot(t *testing.T) {
	l := []byte("only")
	if Root([][]byte{l}) != HashLeaf(l) {
		t.Fatal("single-leaf root must equal leaf hash")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	data := []byte("x")
	if HashLeaf(data) == HashInterior(HashLeaf(data), HashLeaf(data)) {
		t.Fatal("leaf and interior hashes must differ")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	ls := leaves(10)
	base := Root(ls)
	for i := range ls {
		mutated := leaves(10)
		mutated[i] = append(mutated[i], '!')
		if Root(mutated) == base {
			t.Fatalf("mutating leaf %d did not change root", i)
		}
	}
}

func TestRootOrderSensitive(t *testing.T) {
	a := [][]byte{[]byte("a"), []byte("b")}
	b := [][]byte{[]byte("b"), []byte("a")}
	if Root(a) == Root(b) {
		t.Fatal("root must depend on leaf order")
	}
}

func TestProofAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 64, 100} {
		ls := leaves(n)
		tree, err := New(ls)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d Proof(%d): %v", n, i, err)
			}
			if err := VerifyProof(tree.Root(), ls[i], p); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(16)
	tree, _ := New(ls)
	p, _ := tree.Proof(3)
	if err := VerifyProof(tree.Root(), []byte("forged"), p); err != ErrProofInvalid {
		t.Fatalf("want ErrProofInvalid, got %v", err)
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	ls := leaves(16)
	tree, _ := New(ls)
	p, _ := tree.Proof(3)
	other, _ := New(leaves(17))
	if err := VerifyProof(other.Root(), ls[3], p); err != ErrProofInvalid {
		t.Fatalf("want ErrProofInvalid, got %v", err)
	}
}

func TestProofIndexRange(t *testing.T) {
	tree, _ := New(leaves(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tree.Proof(i); err == nil {
			t.Errorf("Proof(%d): want error", i)
		}
	}
}

func TestProofCrossLeafRejected(t *testing.T) {
	// A proof for index i must not verify leaf j != i in general.
	ls := leaves(8)
	tree, _ := New(ls)
	p, _ := tree.Proof(2)
	if err := VerifyProof(tree.Root(), ls[5], p); err == nil {
		t.Fatal("proof for leaf 2 must not verify leaf 5")
	}
}

func TestAccumulatorCount(t *testing.T) {
	acc := NewAccumulator()
	for i := 0; i < 37; i++ {
		acc.Add([]byte(strconv.Itoa(i)))
	}
	if acc.Count() != 37 {
		t.Fatalf("count=%d", acc.Count())
	}
}

func TestAccumulatorMatchesTreeAtPowersOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		acc := NewAccumulator()
		ls := leaves(n)
		for _, l := range ls {
			acc.Add(l)
		}
		if acc.Root() != Root(ls) {
			t.Fatalf("n=%d: accumulator root != tree root", n)
		}
	}
}

func TestAccumulatorDeterministic(t *testing.T) {
	build := func() Hash {
		acc := NewAccumulator()
		for _, l := range leaves(77) {
			acc.Add(l)
		}
		return acc.Root()
	}
	if build() != build() {
		t.Fatal("accumulator must be deterministic")
	}
}

func TestAccumulatorRootChangesOnAdd(t *testing.T) {
	acc := NewAccumulator()
	prev := acc.Root()
	for i := 0; i < 50; i++ {
		acc.Add([]byte(strconv.Itoa(i)))
		cur := acc.Root()
		if cur == prev {
			t.Fatalf("root unchanged after add %d", i)
		}
		prev = cur
	}
}

// Property: every leaf of a random tree has a verifying proof, and the proof
// fails against any other tree's root.
func TestProofProperty(t *testing.T) {
	f := func(raw [][]byte, pick uint) bool {
		if len(raw) == 0 {
			return true
		}
		tree, err := New(raw)
		if err != nil {
			return false
		}
		i := int(pick % uint(len(raw)))
		p, err := tree.Proof(i)
		if err != nil {
			return false
		}
		return VerifyProof(tree.Root(), raw[i], p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulator root depends on the full prefix, i.e. two different
// sequences of the same length produce different roots.
func TestAccumulatorSequenceProperty(t *testing.T) {
	f := func(a, b [][]byte) bool {
		if len(a) != len(b) || len(a) == 0 {
			return true
		}
		same := true
		for i := range a {
			if string(a[i]) != string(b[i]) {
				same = false
				break
			}
		}
		accA, accB := NewAccumulator(), NewAccumulator()
		for _, l := range a {
			accA.Add(l)
		}
		for _, l := range b {
			accB.Add(l)
		}
		if same {
			return accA.Root() == accB.Root()
		}
		return accA.Root() != accB.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// RootParallel must be bit-identical to Root for every shape and worker
// count: below the threshold it delegates, above it the chunked leaf
// hashing and interior reduce must reproduce the exact serial tree.
func TestRootParallelMatchesRoot(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 16, 127, 128, 129, 255, 256, 1000} {
		ls := leaves(n)
		want := Root(ls)
		for _, workers := range []int{0, 1, 2, 7, 16} {
			if got := RootParallel(ls, workers); got != want {
				t.Fatalf("n=%d workers=%d: %s != %s", n, workers, got.Short(), want.Short())
			}
		}
	}
}

func BenchmarkRootParallel(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ls := leaves(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RootParallel(ls, 0)
			}
		})
	}
}

func BenchmarkRoot(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ls := leaves(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Root(ls)
			}
		})
	}
}

func BenchmarkProofVerify(b *testing.B) {
	ls := leaves(1024)
	tree, _ := New(ls)
	p, _ := tree.Proof(512)
	root := tree.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyProof(root, ls[512], p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	acc := NewAccumulator()
	leaf := []byte("fact: the vote passed 61-39")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(leaf)
	}
}
