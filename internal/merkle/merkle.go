// Package merkle implements binary Merkle trees with inclusion proofs.
//
// The factual database (internal/factdb) anchors its records under a Merkle
// root so that any record can prove membership in the ground-truth set, and
// the ledger uses Merkle roots to commit to the transactions in each block —
// the paper's "once the data in the block has been tampered with, it can be
// easily detected" property.
//
// Leaf and interior hashes are domain-separated (RFC 6962 style) so a leaf
// can never be confused with an interior node, preventing second-preimage
// proof forgeries.
package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// HashSize is the size of a tree hash in bytes.
const HashSize = sha256.Size

// Domain-separation prefixes (RFC 6962).
const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

// Errors returned by this package.
var (
	// ErrEmptyTree indicates an operation that requires at least one leaf.
	ErrEmptyTree = errors.New("merkle: empty tree")
	// ErrIndexRange indicates a leaf index outside the tree.
	ErrIndexRange = errors.New("merkle: leaf index out of range")
	// ErrProofInvalid indicates a proof that fails verification.
	ErrProofInvalid = errors.New("merkle: proof verification failed")
)

// Hash is a node hash in the tree.
type Hash [HashSize]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters for display.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// HashLeaf computes the domain-separated hash of a leaf payload.
func HashLeaf(data []byte) Hash {
	d := sha256.New()
	d.Write([]byte{leafPrefix})
	d.Write(data)
	var h Hash
	d.Sum(h[:0])
	return h
}

// HashInterior computes the domain-separated hash of two child hashes.
func HashInterior(left, right Hash) Hash {
	d := sha256.New()
	d.Write([]byte{interiorPrefix})
	d.Write(left[:])
	d.Write(right[:])
	var h Hash
	d.Sum(h[:0])
	return h
}

// Root computes the Merkle root of the given leaves without materialising
// the tree. An empty leaf set hashes to the hash of an empty string with the
// leaf prefix, which keeps "no transactions" distinguishable from "one empty
// transaction" is impossible — instead we reserve the zero Hash for empty.
func Root(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = HashLeaf(leaf)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				// Odd node is promoted by pairing with itself, which keeps
				// proofs simple and is safe under domain separation.
				next = append(next, HashInterior(level[i], level[i]))
				continue
			}
			next = append(next, HashInterior(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// parallelRootThreshold is the leaf count below which RootParallel stays
// serial: for small trees the fan-out costs more than the hashing.
const parallelRootThreshold = 128

// RootParallel computes the same root as Root, fanning the leaf hashing —
// the dominant cost, one SHA-256 per payload — across up to workers
// goroutines (<=0 means GOMAXPROCS). Interior levels are reduced in
// parallel while wide enough to pay for the fan-out. The result is
// bit-identical to Root for every leaf set.
func RootParallel(leaves [][]byte, workers int) Hash {
	n := len(leaves)
	if n == 0 {
		return Hash{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelRootThreshold {
		return Root(leaves)
	}
	level := make([]Hash, n)
	parallelChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			level[i] = HashLeaf(leaves[i])
		}
	})
	for len(level) > 1 {
		next := make([]Hash, (len(level)+1)/2)
		reduce := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				l := 2 * i
				if l+1 == len(level) {
					next[i] = HashInterior(level[l], level[l])
					continue
				}
				next[i] = HashInterior(level[l], level[l+1])
			}
		}
		if len(next) >= parallelRootThreshold {
			parallelChunks(workers, len(next), reduce)
		} else {
			reduce(0, len(next))
		}
		level = next
	}
	return level[0]
}

// parallelChunks splits [0,n) into contiguous chunks and runs fn over
// each chunk concurrently. Chunks index the output level, so workers
// never write overlapping ranges.
func parallelChunks(workers, n int, fn func(lo, hi int)) {
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ProofStep is one sibling hash on the path from a leaf to the root.
type ProofStep struct {
	Sibling Hash `json:"sibling"`
	// Left reports whether the sibling is the left operand when hashing.
	Left bool `json:"left"`
}

// Proof is an inclusion proof for a single leaf.
type Proof struct {
	LeafIndex int         `json:"leafIndex"`
	LeafCount int         `json:"leafCount"`
	Steps     []ProofStep `json:"steps"`
}

// Tree is an immutable Merkle tree over a fixed leaf set. Build one with
// New; use Proof to extract inclusion proofs.
type Tree struct {
	levels [][]Hash // levels[0] = leaf hashes, last = [root]
	count  int
}

// New builds a tree over the given leaves. It returns ErrEmptyTree for an
// empty leaf set.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = HashLeaf(leaf)
	}
	t := &Tree{count: len(leaves)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, HashInterior(level[i], level[i]))
				continue
			}
			next = append(next, HashInterior(level[i], level[i+1]))
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the root hash of the tree.
func (t *Tree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Count returns the number of leaves.
func (t *Tree) Count() int { return t.count }

// Proof builds an inclusion proof for the leaf at index i.
func (t *Tree) Proof(i int) (Proof, error) {
	if i < 0 || i >= t.count {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.count)
	}
	p := Proof{LeafIndex: i, LeafCount: t.count}
	idx := i
	for depth := 0; depth < len(t.levels)-1; depth++ {
		level := t.levels[depth]
		var step ProofStep
		if idx%2 == 0 {
			sib := idx
			if idx+1 < len(level) {
				sib = idx + 1
			}
			step = ProofStep{Sibling: level[sib], Left: false}
		} else {
			step = ProofStep{Sibling: level[idx-1], Left: true}
		}
		p.Steps = append(p.Steps, step)
		idx /= 2
	}
	return p, nil
}

// VerifyProof checks that leaf data is included under root according to p.
func VerifyProof(root Hash, leaf []byte, p Proof) error {
	h := HashLeaf(leaf)
	for _, step := range p.Steps {
		if step.Left {
			h = HashInterior(step.Sibling, h)
		} else {
			h = HashInterior(h, step.Sibling)
		}
	}
	if h != root {
		return ErrProofInvalid
	}
	return nil
}

// Accumulator maintains a running Merkle root over an append-only sequence
// of leaves using O(log n) storage, in the style of a Merkle mountain range
// collapsed left-to-right. The factual database uses it to re-anchor its
// root cheaply as facts are promoted.
type Accumulator struct {
	// peaks[i] is the root of a perfect subtree of size 2^i, or zero.
	peaks []Hash
	count int
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Add appends one leaf.
func (a *Accumulator) Add(leaf []byte) {
	h := HashLeaf(leaf)
	carry := h
	i := 0
	for {
		if i == len(a.peaks) {
			a.peaks = append(a.peaks, carry)
			break
		}
		if a.peaks[i].IsZero() {
			a.peaks[i] = carry
			break
		}
		carry = HashInterior(a.peaks[i], carry)
		a.peaks[i] = Hash{}
		i++
	}
	a.count++
}

// Count returns the number of leaves added.
func (a *Accumulator) Count() int { return a.count }

// Root folds the current peaks into a single commitment. For leaf counts
// that are powers of two this equals the plain tree root; otherwise it is a
// deterministic commitment to the same sequence (peaks folded right-to-left).
func (a *Accumulator) Root() Hash {
	var root Hash
	seeded := false
	for i := len(a.peaks) - 1; i >= 0; i-- {
		if a.peaks[i].IsZero() {
			continue
		}
		if !seeded {
			root = a.peaks[i]
			seeded = true
			continue
		}
		root = HashInterior(root, a.peaks[i])
	}
	return root
}
