package chaos

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

func newHarness(t *testing.T, cfg Config) *Harness {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// TestScenarioRollingRestarts checkpoints, crashes and restarts every
// replica in turn under continuous load. Each cycle must recover from
// disk, backfill the missed heights, and reconverge without a fork.
func TestScenarioRollingRestarts(t *testing.T) {
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       1,
		CertWindow: 16,
		PumpEvery:  40 * time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		if err := h.RunFor(400 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := h.Checkpoint(i); err != nil {
			t.Fatal(err)
		}
		if err := h.Crash(i); err != nil {
			t.Fatal(err)
		}
		if err := h.RunFor(400 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := h.Restart(i); err != nil {
			t.Fatal(err)
		}
		if err := h.WaitConverge(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if h.CommittedHeight() == 0 {
		t.Fatal("no blocks committed under rolling restarts")
	}
}

// TestScenarioPartitionHeal isolates a minority replica, lets the
// majority keep committing, then heals and requires the minority to
// catch up and converge.
func TestScenarioPartitionHeal(t *testing.T) {
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       2,
		CertWindow: 16,
		PumpEvery:  40 * time.Millisecond,
	})
	if err := h.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.PartitionSplit([]int{0}, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	before := h.Cluster.Replicas[0].Chain().Height()
	if err := h.RunFor(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The majority made progress; the isolated minority could not.
	if h.Cluster.LiveMaxHeight() <= before {
		t.Fatalf("majority made no progress during partition (max height %d)", h.Cluster.LiveMaxHeight())
	}
	if got := h.Cluster.Replicas[0].Chain().Height(); got > before {
		t.Fatalf("minority committed during partition: %d > %d (safety escape)", got, before)
	}
	if err := h.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverge(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioCrashDuringCommit crashes a replica with no checkpoint
// while blocks are being committed, forcing the full-WAL-replay restart
// path, and requires committed blocks to survive.
func TestScenarioCrashDuringCommit(t *testing.T) {
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       3,
		CertWindow: 16,
		PumpEvery:  30 * time.Millisecond,
	})
	if err := h.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	crashHeight := h.Cluster.Replicas[2].Chain().Height()
	if crashHeight == 0 {
		t.Fatal("nothing committed before crash")
	}
	if err := h.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := h.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.Restart(2); err != nil {
		t.Fatal(err)
	}
	if h.Cluster.Replicas[2].CheckpointHeight() != 0 {
		t.Fatal("expected full-replay restart (no checkpoint was written)")
	}
	if got := h.Cluster.Replicas[2].Chain().Height(); got+1 < crashHeight {
		t.Fatalf("committed blocks lost: recovered %d, crashed at %d", got, crashHeight)
	}
	if err := h.WaitConverge(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioCorruptLinksEquivocationPressure runs consensus over links
// that garble votes in flight (invalid signatures — the closest an
// attacker without keys can get to equivocation) and thin out commit
// certificates. The cluster must keep committing, reject every garbled
// artifact, and count the rejections.
func TestScenarioCorruptLinksEquivocationPressure(t *testing.T) {
	reg := telemetry.New()
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       4,
		CertWindow: 16,
		PumpEvery:  40 * time.Millisecond,
		Telemetry:  reg,
		Links: simnet.LinkConfig{
			BaseLatency:   5 * time.Millisecond,
			Jitter:        5 * time.Millisecond,
			CorruptRate:   0.10,
			DuplicateRate: 0.20,
		},
	})
	h.Cluster.Net.SetCorrupter(GarbleVotes)
	if err := h.RunFor(1200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h.CommittedHeight() == 0 {
		t.Fatal("no commits under corrupt links")
	}
	stats := h.Cluster.Net.Stats()
	if stats.Corrupted == 0 {
		t.Fatalf("corruption never fired: %+v", stats)
	}
	voteRej := reg.CounterVec("trustnews_consensus_votes_rejected_total", "", "reason")
	msgRej := reg.CounterVec("trustnews_consensus_messages_rejected_total", "", "reason")
	if voteRej.With("bad_signature").Value() == 0 {
		t.Fatal("garbled votes were not rejected as bad_signature")
	}
	if voteRej.With("duplicate").Value() == 0 {
		t.Fatal("duplicated votes were not rejected")
	}
	if msgRej.With("bad_certificate").Value()+msgRej.With("malformed").Value() == 0 {
		t.Fatal("garbled commits were not rejected")
	}
	// Faults off, the cluster must still converge cleanly.
	h.Cluster.Net.SetAllLinks(simnet.DefaultLink)
	h.Cluster.Net.SetCorrupter(nil)
	if err := h.WaitConverge(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// churnSchedule crashes and restarts replicas chosen by the network's
// seeded rng for a fixed number of rounds, then brings everyone back.
// Shared by the churn scenario and the determinism test.
func churnSchedule(h *Harness, rounds int) error {
	rng := h.Cluster.Net.Rand()
	for r := 0; r < rounds; r++ {
		if err := h.RunFor(300 * time.Millisecond); err != nil {
			return err
		}
		i := rng.Intn(len(h.Cluster.Replicas))
		switch {
		case h.Cluster.Down(i):
			if err := h.Restart(i); err != nil {
				return err
			}
		case h.Cluster.LiveCount() > 3:
			// Keep a quorum of 3 (of 4) alive so progress continues.
			if err := h.Checkpoint(i); err != nil {
				return err
			}
			if err := h.Crash(i); err != nil {
				return err
			}
		}
	}
	for i := range h.Cluster.Replicas {
		if h.Cluster.Down(i) {
			if err := h.Restart(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestScenarioChurn runs randomized (but seeded) crash/restart churn and
// requires convergence once the churn stops.
func TestScenarioChurn(t *testing.T) {
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       5,
		CertWindow: 16,
		PumpEvery:  50 * time.Millisecond,
	})
	if err := churnSchedule(h, 8); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverge(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if h.CommittedHeight() == 0 {
		t.Fatal("no commits under churn")
	}
}

// TestScenarioShardedLanes runs the restart-under-load scenario with the
// shard-lane execution scheduler enabled on every replica: lane
// execution must keep state roots byte-identical to serial, so the
// no-fork invariant (and recovery replay, which re-executes through the
// same scheduler) must hold exactly as in the single-lane runs.
func TestScenarioShardedLanes(t *testing.T) {
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       9,
		CertWindow: 16,
		PumpEvery:  40 * time.Millisecond,
		Shards:     4,
	})
	if err := h.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := h.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverge(time.Minute); err != nil {
		t.Fatal(err)
	}
	if h.CommittedHeight() == 0 {
		t.Fatal("no blocks committed under sharded lanes")
	}
}

// TestChaosDeterministicFingerprint runs the identical churn schedule
// twice with the same seed and requires bit-identical outcomes: same
// commit history, same replica heights, same network fault counters.
func TestChaosDeterministicFingerprint(t *testing.T) {
	run := func(dir string) string {
		h, err := New(Config{
			Validators: 4,
			Seed:       99,
			Dir:        dir,
			CertWindow: 16,
			PumpEvery:  50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if err := churnSchedule(h, 5); err != nil {
			t.Fatal(err)
		}
		if err := h.WaitConverge(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return h.Fingerprint()
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a, b)
	}
}

// TestChaosMetricsExposed checks that the chaos counters and the new
// consensus rejection counters surface through the HTTP gateway's
// /v1/metrics endpoint.
func TestChaosMetricsExposed(t *testing.T) {
	reg := telemetry.New()
	h := newHarness(t, Config{
		Validators: 4,
		Seed:       6,
		Telemetry:  reg,
		PumpEvery:  40 * time.Millisecond,
		Links: simnet.LinkConfig{
			BaseLatency:   5 * time.Millisecond,
			Jitter:        5 * time.Millisecond,
			DuplicateRate: 0.3,
		},
	})
	if err := h.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := h.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := h.Restart(1); err != nil {
		t.Fatal(err)
	}

	srv := httpapi.New(h.Cluster.Replicas[0], false)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, series := range []string{
		`trustnews_chaos_faults_total{kind="crash"}`,
		`trustnews_chaos_faults_total{kind="restart"}`,
		"trustnews_chaos_invariant_checks_total",
		"trustnews_chaos_live_replicas",
		`trustnews_consensus_votes_rejected_total{reason="duplicate"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/v1/metrics missing %s\n--- body excerpt ---\n%.2000s", series, body)
		}
	}
}
