// Package chaos is a deterministic fault-injection harness for the
// replicated trusting-news platform. It drives a durable cluster
// (internal/platform.DurableCluster) through scripted fault schedules —
// crashes, restarts, partitions, link corruption — over the seeded
// discrete-event network, and checks the platform's core guarantees
// after every step:
//
//   - no-fork: no two replicas ever commit different blocks at the same
//     height (safety);
//   - committed-durability: a replica that crashes and recovers from its
//     checkpoint and WAL never loses a committed block;
//   - convergence: once faults stop, every live replica reaches the same
//     height and contract state root within bounded virtual time
//     (liveness).
//
// Everything is deterministic for a fixed seed: two runs of the same
// schedule produce identical commit histories, network statistics and
// fingerprints. That makes chaos failures reproducible by seed, the
// property that separates a chaos harness from a flaky test.
package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/consensus"
	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/simnet"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// Config parameterizes a harness run.
type Config struct {
	// Validators is the cluster size (default 4).
	Validators int
	// Seed drives every random choice: network jitter, fault sampling,
	// churn targets. Same seed, same run.
	Seed int64
	// Dir is the root data directory for the durable replicas.
	Dir string
	// CertWindow bounds consensus certificate retention (0 = default).
	CertWindow int
	// Links overrides the link profile for all pairs (zero value keeps
	// simnet.DefaultLink). This is where corruption, duplication and
	// reordering rates are injected.
	Links simnet.LinkConfig
	// Telemetry receives the chaos fault counters alongside the cluster's
	// own series. Nil creates a private registry.
	Telemetry *telemetry.Registry
	// PumpEvery, when positive, submits PumpBatch publish transactions to
	// the live replicas at this virtual-time interval, so blocks carry
	// real workload while faults fire.
	PumpEvery time.Duration
	// PumpBatch is the number of transactions per pump tick (default 2).
	PumpBatch int
	// Timeouts overrides consensus timeouts (zero = defaults).
	Timeouts consensus.Timeouts
	// Shards, when > 1, runs every replica with the shard-lane execution
	// scheduler (platform.Config.Shards): the no-fork and durability
	// invariants must hold identically, since lane execution keeps state
	// roots byte-identical to serial.
	Shards int
}

// Harness owns a durable cluster and the invariant-checking state.
type Harness struct {
	Cluster *platform.DurableCluster
	Reg     *telemetry.Registry

	// committed is the global commit reference: the first replica to
	// reveal a block at a height pins it; any later disagreement is a
	// fork. It only grows — a crash must never erase history.
	committed map[uint64]ledger.BlockID
	// checked[i] is the height up to which replica i's chain has been
	// verified against committed; reset to zero on restart so recovery is
	// re-audited from genesis.
	checked []uint64
	// crashedAt[i] records replica i's chain height at the moment of its
	// last crash, for the committed-durability check on restart.
	crashedAt map[int]uint64

	client    *keys.KeyPair
	nonce     uint64
	pumpEvery time.Duration
	pumpBatch int

	faults       *telemetry.CounterVec
	checksTotal  *telemetry.Counter
	violations   *telemetry.Counter
	recoverySec  *telemetry.Histogram
	netFaults    *telemetry.GaugeVec
	liveReplicas *telemetry.Gauge
}

// New builds a harness over a fresh durable cluster and starts
// consensus (and the load pump, when configured).
func New(cfg Config) (*Harness, error) {
	if cfg.Validators == 0 {
		cfg.Validators = 4
	}
	if cfg.PumpBatch == 0 {
		cfg.PumpBatch = 2
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	pcfg := platform.DefaultConfig()
	pcfg.Telemetry = reg
	pcfg.Shards = cfg.Shards
	cluster, err := platform.NewDurableCluster(platform.DurableClusterConfig{
		Validators: cfg.Validators,
		Seed:       cfg.Seed,
		Dir:        cfg.Dir,
		Platform:   pcfg,
		Timeouts:   cfg.Timeouts,
		CertWindow: cfg.CertWindow,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Links != (simnet.LinkConfig{}) {
		cluster.Net.SetAllLinks(cfg.Links)
	}
	h := &Harness{
		Cluster:      cluster,
		Reg:          reg,
		committed:    make(map[uint64]ledger.BlockID),
		checked:      make([]uint64, cfg.Validators),
		crashedAt:    make(map[int]uint64),
		client:       keys.FromSeed([]byte("chaos-client")),
		pumpEvery:    cfg.PumpEvery,
		pumpBatch:    cfg.PumpBatch,
		faults:       reg.CounterVec("trustnews_chaos_faults_total", "Faults injected by the chaos harness, by kind.", "kind"),
		checksTotal:  reg.Counter("trustnews_chaos_invariant_checks_total", "Invariant sweeps performed by the chaos harness."),
		violations:   reg.Counter("trustnews_chaos_invariant_violations_total", "Invariant violations detected (any nonzero value is a bug)."),
		recoverySec:  reg.Histogram("trustnews_chaos_recovery_seconds", "Virtual time for the cluster to reconverge after faults.", nil),
		netFaults:    reg.GaugeVec("trustnews_chaos_net_faults", "Network fault-injection counters mirrored from the simulated network.", "kind"),
		liveReplicas: reg.Gauge("trustnews_chaos_live_replicas", "Replicas currently running."),
	}
	cluster.Start()
	if h.pumpEvery > 0 {
		h.schedulePump()
	}
	h.observeNet()
	return h, nil
}

// Close releases the cluster's files.
func (h *Harness) Close() { h.Cluster.Close() }

// schedulePump submits a deterministic batch of publish transactions to
// every live replica at a fixed virtual-time cadence. The timer anchors
// on validator p0's clock but runs harness-side, so it survives any
// replica's crash.
func (h *Harness) schedulePump() {
	anchor := simnet.NodeID("p0")
	var tick func()
	tick = func() {
		h.pump(h.pumpBatch)
		h.Cluster.Net.After(anchor, h.pumpEvery, tick)
	}
	h.Cluster.Net.After(anchor, h.pumpEvery, tick)
}

// pump submits count publish transactions signed by the harness client.
// Rejections by individual mempools are tolerated (a full pool under
// churn is expected); at least one live replica normally accepts.
func (h *Harness) pump(count int) {
	for i := 0; i < count; i++ {
		n := strconv.FormatUint(h.nonce, 10)
		payload, err := supplychain.PublishPayload(
			"chaos-item-"+n, corpus.TopicPolitics,
			"chaos workload statement "+n, nil, "")
		if err != nil {
			return
		}
		tx, err := ledger.NewTx(h.client, h.nonce, "news.publish", payload)
		if err != nil {
			return
		}
		h.nonce++
		h.Cluster.SubmitLive(tx)
	}
}

// observeNet mirrors the network's fault counters into gauges.
func (h *Harness) observeNet() {
	s := h.Cluster.Net.Stats()
	h.netFaults.With("corrupted").Set(float64(s.Corrupted))
	h.netFaults.With("duplicated").Set(float64(s.Duplicated))
	h.netFaults.With("reordered").Set(float64(s.Reordered))
	h.netFaults.With("dropped").Set(float64(s.Dropped))
	h.netFaults.With("dropped_detached").Set(float64(s.DroppedDetached))
	h.liveReplicas.Set(float64(h.Cluster.LiveCount()))
}

// RunFor advances virtual time by d, then checks invariants.
func (h *Harness) RunFor(d time.Duration) error {
	h.Cluster.Net.Run(h.Cluster.Net.Now() + d)
	return h.CheckInvariants()
}

// Crash kills replica i (recording its height for the durability check).
func (h *Harness) Crash(i int) error {
	h.crashedAt[i] = h.Cluster.Replicas[i].Chain().Height()
	if err := h.Cluster.Crash(i); err != nil {
		return err
	}
	h.faults.With("crash").Inc()
	h.observeNet()
	return h.CheckInvariants()
}

// Checkpoint snapshots replica i's derived state to disk.
func (h *Harness) Checkpoint(i int) error {
	if err := h.Cluster.Checkpoint(i); err != nil {
		return err
	}
	h.faults.With("checkpoint").Inc()
	return nil
}

// Restart recovers replica i from disk and rejoins it to consensus. The
// committed-durability invariant is enforced here: the recovered chain
// must retain every block that was durable at crash time (at most the
// final, possibly-torn append may be lost), and must never exceed what
// the cluster actually committed.
func (h *Harness) Restart(i int) error {
	if err := h.Cluster.Restart(i); err != nil {
		return err
	}
	h.faults.With("restart").Inc()
	recovered := h.Cluster.Replicas[i].Chain().Height()
	if was, ok := h.crashedAt[i]; ok && recovered+1 < was {
		h.violations.Inc()
		return fmt.Errorf("chaos: durability violation: replica %d crashed at height %d but recovered only %d", i, was, recovered)
	}
	// Restart re-audits the whole recovered chain against the global
	// commit reference.
	h.checked[i] = 0
	h.observeNet()
	return h.CheckInvariants()
}

// PartitionSplit isolates the given replica-index groups from each other
// (replicas absent from every group fall into group 0 with the rest).
func (h *Harness) PartitionSplit(groups ...[]int) error {
	ids := make([][]simnet.NodeID, len(groups))
	for g, members := range groups {
		for _, i := range members {
			ids[g] = append(ids[g], simnet.NodeID("p"+strconv.Itoa(i)))
		}
	}
	h.Cluster.Net.Partition(ids...)
	h.faults.With("partition").Inc()
	return h.CheckInvariants()
}

// Heal removes all partitions.
func (h *Harness) Heal() error {
	h.Cluster.Net.Heal()
	h.faults.With("heal").Inc()
	return h.CheckInvariants()
}

// CheckInvariants audits every live replica's chain suffix (everything
// above its last audited height) against the global commit reference.
// The first replica to reveal a height pins its block id; disagreement
// is a fork. Called after every fault and time advance.
func (h *Harness) CheckInvariants() error {
	h.checksTotal.Inc()
	for i, r := range h.Cluster.Replicas {
		if h.Cluster.Down(i) || r == nil {
			continue
		}
		chain := r.Chain()
		height := chain.Height()
		for k := h.checked[i]; k < height; k++ {
			b, err := chain.BlockAt(k)
			if err != nil {
				h.violations.Inc()
				return fmt.Errorf("chaos: replica %d cannot read its own height %d: %w", i, k, err)
			}
			id := b.ID()
			if ref, ok := h.committed[k]; ok {
				if ref != id {
					h.violations.Inc()
					return fmt.Errorf("chaos: FORK at height %d: replica %d has %s, reference is %s", k, i, id, ref)
				}
			} else {
				h.committed[k] = id
			}
		}
		h.checked[i] = height
	}
	h.observeNet()
	return nil
}

// WaitConverge drives the network until every live replica reaches the
// current maximum height plus two (so progress past the faulted region
// is proven) and all live state roots agree, or maxVirtual elapses.
// The virtual time consumed feeds the recovery histogram.
func (h *Harness) WaitConverge(maxVirtual time.Duration) error {
	target := h.Cluster.LiveMaxHeight() + 2
	spent := h.Cluster.RunUntilLiveHeight(target, maxVirtual)
	if h.Cluster.LiveMinHeight() < target {
		h.violations.Inc()
		return fmt.Errorf("chaos: liveness violation: stuck at height %d (target %d) after %v virtual",
			h.Cluster.LiveMinHeight(), target, spent)
	}
	if err := h.CheckInvariants(); err != nil {
		return err
	}
	ok, err := h.Cluster.ConvergedLive()
	if err != nil {
		return err
	}
	if !ok {
		h.violations.Inc()
		return fmt.Errorf("chaos: convergence violation: live replicas disagree on state root at height %d", h.Cluster.LiveMinHeight())
	}
	h.recoverySec.Observe(spent.Seconds())
	return nil
}

// CommittedHeight returns the highest height pinned in the global commit
// reference (plus-one semantics: number of committed heights audited).
func (h *Harness) CommittedHeight() uint64 {
	return uint64(len(h.committed))
}

// Fingerprint digests the run's observable outcome — the audited commit
// history, every live replica's height, and the network fault counters —
// into a hex string. Two runs of the same schedule with the same seed
// must produce identical fingerprints.
func (h *Harness) Fingerprint() string {
	sum := sha256.New()
	heights := make([]uint64, 0, len(h.committed))
	for k := range h.committed {
		heights = append(heights, k)
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	var b8 [8]byte
	for _, k := range heights {
		binary.BigEndian.PutUint64(b8[:], k)
		sum.Write(b8[:])
		id := h.committed[k]
		sum.Write(id[:])
	}
	for i, r := range h.Cluster.Replicas {
		if h.Cluster.Down(i) || r == nil {
			binary.BigEndian.PutUint64(b8[:], ^uint64(0))
			sum.Write(b8[:])
			continue
		}
		binary.BigEndian.PutUint64(b8[:], r.Chain().Height())
		sum.Write(b8[:])
	}
	s := h.Cluster.Net.Stats()
	for _, v := range []int{s.Sent, s.Delivered, s.Dropped, s.Corrupted, s.Duplicated, s.Reordered, s.DroppedDetached} {
		binary.BigEndian.PutUint64(b8[:], uint64(v))
		sum.Write(b8[:])
	}
	return hex.EncodeToString(sum.Sum(nil))
}

// GarbleVotes is a consensus-aware corrupter for SetCorrupter: votes get
// a flipped block-id byte (the signature no longer matches, so honest
// nodes must reject them as bad_signature — equivocation pressure
// without forgeable keys), commits lose a quorum vote (bad_certificate),
// and anything else loses its payload entirely (malformed).
func GarbleVotes(m simnet.Message) simnet.Message {
	switch p := m.Payload.(type) {
	case consensus.Vote:
		p.BlockID[0] ^= 0xff
		m.Payload = p
	case *consensus.Commit:
		if p != nil && len(p.Quorum) > 0 {
			cp := *p
			cp.Quorum = cp.Quorum[:len(cp.Quorum)-1]
			m.Payload = &cp
		} else {
			m.Payload = nil
		}
	default:
		m.Payload = nil
	}
	return m
}
