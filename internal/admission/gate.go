package admission

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Default CoDel parameters. The canonical values (5ms target, 100ms
// interval) come from the CoDel paper's analysis of where standing
// queues stop being useful burst absorption and start being pure
// latency: a queue that cannot drain to under target within an
// interval is a standing queue and should shrink.
const (
	DefaultTarget   = 5 * time.Millisecond
	DefaultInterval = 100 * time.Millisecond
)

// GateConfig sizes one admission gate.
type GateConfig struct {
	// MaxConcurrent bounds requests being serviced at once (required,
	// > 0). Admission work is CPU-bound, so this tracks cores.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot (>= 0; zero means
	// never wait — shed the moment all slots are busy).
	MaxQueue int
	// Target is the acceptable steady-state queue delay (0 means
	// DefaultTarget).
	Target time.Duration
	// Interval is the CoDel observation window (0 means
	// DefaultInterval).
	Interval time.Duration
}

// Gate is a bounded-concurrency, bounded-queue admission gate with a
// CoDel-style queue-delay controller. Acquire admits, queues, or sheds;
// Release frees the slot. The controller watches the delay every
// queued request actually experienced: while the minimum observed
// delay stays above Target for a full Interval, the gate enters a
// dropping state and sheds arrivals at an increasing rate
// (Interval/sqrt(n) spacing, the CoDel control law) until a request
// gets through with an acceptable wait again. The effect under
// sustained overload is that the queue stays short, accepted requests
// keep a bounded wait, and excess arrivals fail fast with
// ErrOverCapacity instead of timing out at the back of an unbounded
// line.
//
// A nil *Gate admits everything.
type Gate struct {
	sem      chan struct{}
	maxQueue int
	waiting  atomic.Int64

	mu  sync.Mutex // guards ctrl and now
	ctl codel
	now func() time.Time

	// cached instrument handles (nil-safe).
	component string
	metrics   *Metrics
	depth     *telemetry.Gauge
	delay     *telemetry.Histogram
}

// NewGate validates the configuration and builds the gate. A gate that
// can never admit (MaxConcurrent <= 0) or hold a waiter (MaxQueue < 0)
// is rejected at construction.
func NewGate(cfg GateConfig) (*Gate, error) {
	if cfg.MaxConcurrent <= 0 {
		return nil, fmt.Errorf("admission: gate MaxConcurrent must be positive, got %d", cfg.MaxConcurrent)
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("admission: gate MaxQueue must be non-negative, got %d", cfg.MaxQueue)
	}
	if cfg.Target <= 0 {
		cfg.Target = DefaultTarget
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	return &Gate{
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue: cfg.MaxQueue,
		ctl:      codel{target: cfg.Target, interval: cfg.Interval},
		now:      time.Now,
	}, nil
}

// SetClock overrides the gate's time source (tests). Call before the
// gate takes traffic.
func (g *Gate) SetClock(now func() time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.now = now
}

// Instrument attaches the shared admission metrics under the given
// component label. Call before the gate takes traffic.
func (g *Gate) Instrument(m *Metrics, component string) {
	if g == nil || m == nil {
		return
	}
	g.metrics = m
	g.component = component
	g.depth = m.depth.With(component)
	g.delay = m.delay.With(component)
}

// clock returns the gate's current time under the lock.
func (g *Gate) clock() time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now()
}

// Acquire admits the caller (possibly after a bounded wait) or sheds
// it with ErrOverCapacity. Every admission must be paired with exactly
// one Release.
func (g *Gate) Acquire() error {
	if g == nil {
		return nil
	}
	start := g.clock()
	select {
	case g.sem <- struct{}{}:
		// Uncontended: zero queue delay, which tells the controller the
		// queue drained — any above-target streak ends here.
		g.mu.Lock()
		g.ctl.observe(start, 0)
		g.mu.Unlock()
		g.metrics.Accepted(g.component)
		return nil
	default:
	}
	// All slots busy: this request would queue. Shed if the queue is
	// full, or if the delay controller says the queue has been a
	// standing queue for too long.
	g.mu.Lock()
	if int(g.waiting.Load()) >= g.maxQueue {
		g.mu.Unlock()
		g.metrics.Shed(g.component, ShedQueueFull)
		return fmt.Errorf("%w: %s queue full", ErrOverCapacity, g.component)
	}
	if g.ctl.shed(start) {
		g.mu.Unlock()
		g.metrics.Shed(g.component, ShedCoDel)
		return fmt.Errorf("%w: %s queue delay above target", ErrOverCapacity, g.component)
	}
	g.waiting.Add(1)
	g.mu.Unlock()
	g.depth.Set(float64(g.waiting.Load()))

	g.sem <- struct{}{} // wait for a slot
	end := g.clock()
	g.waiting.Add(-1)
	g.depth.Set(float64(g.waiting.Load()))
	wait := end.Sub(start)
	g.delay.Observe(wait.Seconds())
	g.mu.Lock()
	g.ctl.observe(end, wait)
	g.mu.Unlock()
	g.metrics.Accepted(g.component)
	return nil
}

// Release returns an admitted caller's slot.
func (g *Gate) Release() {
	if g != nil {
		<-g.sem
	}
}

// Waiting reports the current queue depth (0 on a nil gate).
func (g *Gate) Waiting() int {
	if g == nil {
		return 0
	}
	return int(g.waiting.Load())
}

// ---------------------------------------------------------------------------
// CoDel-style delay controller.
// ---------------------------------------------------------------------------

// codel tracks whether observed queue delays have stayed above target
// for a full interval, and while they have, schedules arrival sheds at
// the CoDel control-law spacing interval/sqrt(count). Callers hold the
// gate lock.
type codel struct {
	target, interval time.Duration
	// firstAbove is the deadline by which a below-target delay must be
	// seen to avoid entering the dropping state (zero = delays are
	// currently below target).
	firstAbove time.Time
	dropping   bool
	dropNext   time.Time
	count      int
}

// observe feeds one measured queue delay into the controller.
func (c *codel) observe(now time.Time, sojourn time.Duration) {
	if sojourn < c.target {
		c.firstAbove = time.Time{}
		c.dropping = false
		c.count = 0
		return
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.interval)
		return
	}
	if !c.dropping && !now.Before(c.firstAbove) {
		c.dropping = true
		c.count = 0
		c.dropNext = now
	}
}

// shed reports whether to drop an arrival right now, advancing the
// drop schedule when it fires.
func (c *codel) shed(now time.Time) bool {
	if !c.dropping || now.Before(c.dropNext) {
		return false
	}
	c.count++
	c.dropNext = now.Add(time.Duration(float64(c.interval) / math.Sqrt(float64(c.count))))
	return true
}
