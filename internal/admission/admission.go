// Package admission is the platform-wide overload defense: it decides,
// at every service edge, whether a request is allowed to consume node
// resources *before* any work is done on its behalf. The paper assumes
// the platform absorbs a continuous firehose of news from millions of
// users (§VI–§VII); what it does not say — and what any web-scale
// ingestion system lives or dies by — is what happens when offered load
// exceeds capacity. Without admission control a blockchain node fails
// the worst possible way: queues grow without bound, every accepted
// request waits behind the whole backlog, tail latency explodes, and
// goodput collapses exactly when demand peaks.
//
// The package provides three composable pieces:
//
//   - TokenBucket / RouteLimiter: static per-route rate policy for the
//     HTTP gateway (operator-set ceilings, burst-tolerant).
//   - Gate: a bounded-concurrency, bounded-queue admission gate with a
//     CoDel-style queue-delay controller — the adaptive defense. When
//     the minimum queue delay stays above target for a full interval,
//     the gate starts shedding arrivals at an increasing rate until
//     delay recovers, so accepted requests keep a bounded wait even
//     under sustained overload ("shed before collapse").
//   - Controller: the bundle a platform node carries — one gate for
//     mempool admission, one for blob reads, the route limiter, and the
//     shared trustnews_admission_* metrics.
//
// Every shed surfaces as the typed ErrOverCapacity, which the HTTP
// gateway maps to 429 Too Many Requests with a Retry-After header: the
// client-visible contract is "back off and retry", never a timeout.
//
// Everything is nil-safe in the package's usual style: a nil *Gate, nil
// *RouteLimiter or nil *Controller admits everything at zero cost, so
// library users who never configure admission pay one branch per edge.
package admission

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/telemetry"
)

// ErrOverCapacity is returned for every shed decision: the node is at
// capacity and refused the request before doing work for it. The HTTP
// gateway maps it to 429 + Retry-After.
var ErrOverCapacity = errors.New("admission: over capacity")

// Config assembles a node's admission policy. The zero value is not
// useful — use DefaultConfig as the starting point and override.
type Config struct {
	// Mempool gates transaction admission (Platform.Submit): it bounds
	// concurrent signature verifications and the queue waiting for one.
	Mempool GateConfig
	// BlobRead gates blob fetches at the API edge (GET/POST /v1/blobs):
	// chunk hashing and Merkle verification are CPU work worth bounding.
	BlobRead GateConfig
	// Ingest gates article enqueues into the ingestion pipeline (POST
	// /v1/ingest and any other queue producer): the queue itself is
	// bounded, but the gate sheds bursts before they reach the WAL
	// append. The zero value disables this gate.
	Ingest GateConfig
	// HTTP gates whole-request concurrency at the API edge, covering
	// every route except health and metrics (observability must survive
	// overload). Unlike the resource gates above, it bounds the total
	// in-service request count, which is what actually grows when the
	// host runs out of CPU: no inner gate can see scheduler queueing,
	// but a whole-request gate's sojourn time is a faithful proxy for
	// it, so its CoDel controller sheds before latency collapses. The
	// zero value disables this gate (resource gates stay mandatory).
	HTTP GateConfig
	// Routes caps per-route request rates in the HTTP gateway, keyed by
	// ServeMux pattern (e.g. "POST /v1/tx"). Empty means no static
	// limits — the adaptive gates remain the overload defense.
	Routes map[string]RouteLimit
}

// DefaultConfig returns an adaptive-only policy scaled to the host:
// gate widths follow GOMAXPROCS (admission work is CPU-bound), queues
// hold a few batches, and no static route limits are set.
func DefaultConfig() *Config {
	cores := runtime.GOMAXPROCS(0)
	return &Config{
		Mempool: GateConfig{
			MaxConcurrent: 2 * cores,
			MaxQueue:      16 * cores,
		},
		BlobRead: GateConfig{
			MaxConcurrent: 4 * cores,
			MaxQueue:      16 * cores,
		},
		Ingest: GateConfig{
			MaxConcurrent: 2 * cores,
			MaxQueue:      32 * cores,
		},
		// Wide enough that the edge gate only binds when the host is
		// genuinely out of CPU; the queue holds a few milliseconds of
		// work so CoDel has something to regulate.
		HTTP: GateConfig{
			MaxConcurrent: 4 * cores,
			MaxQueue:      64 * cores,
		},
	}
}

// Controller is the admission bundle one platform node carries. A nil
// *Controller admits everything (the un-configured node).
type Controller struct {
	mempool  *Gate
	blobRead *Gate
	ingest   *Gate // nil when Config.Ingest is zero
	http     *Gate // nil when Config.HTTP is zero
	routes   *RouteLimiter
	metrics  *Metrics
}

// NewController builds the gates and limiter from cfg and instruments
// them on reg (nil reg leaves the instruments as no-ops). A nil cfg
// yields a nil controller: admission disabled.
func NewController(cfg *Config, reg *telemetry.Registry) (*Controller, error) {
	if cfg == nil {
		return nil, nil
	}
	m := NewMetrics(reg)
	mp, err := NewGate(cfg.Mempool)
	if err != nil {
		return nil, fmt.Errorf("admission: mempool gate: %w", err)
	}
	mp.Instrument(m, "mempool")
	br, err := NewGate(cfg.BlobRead)
	if err != nil {
		return nil, fmt.Errorf("admission: blob-read gate: %w", err)
	}
	br.Instrument(m, "blob")
	var ig *Gate
	if cfg.Ingest != (GateConfig{}) {
		ig, err = NewGate(cfg.Ingest)
		if err != nil {
			return nil, fmt.Errorf("admission: ingest gate: %w", err)
		}
		ig.Instrument(m, "ingest")
	}
	var hg *Gate
	if cfg.HTTP != (GateConfig{}) {
		hg, err = NewGate(cfg.HTTP)
		if err != nil {
			return nil, fmt.Errorf("admission: http gate: %w", err)
		}
		hg.Instrument(m, "http")
	}
	rl, err := NewRouteLimiter(cfg.Routes)
	if err != nil {
		return nil, err
	}
	rl.Instrument(m)
	return &Controller{mempool: mp, blobRead: br, ingest: ig, http: hg, routes: rl, metrics: m}, nil
}

// AcquireMempool admits one transaction-submission into the mempool
// pipeline (ErrOverCapacity when shed). Pair with ReleaseMempool.
func (c *Controller) AcquireMempool() error {
	if c == nil {
		return nil
	}
	return c.mempool.Acquire()
}

// ReleaseMempool returns the mempool-admission slot.
func (c *Controller) ReleaseMempool() {
	if c != nil {
		c.mempool.Release()
	}
}

// AcquireBlobRead admits one blob fetch (ErrOverCapacity when shed).
// Pair with ReleaseBlobRead.
func (c *Controller) AcquireBlobRead() error {
	if c == nil {
		return nil
	}
	return c.blobRead.Acquire()
}

// ReleaseBlobRead returns the blob-read slot.
func (c *Controller) ReleaseBlobRead() {
	if c != nil {
		c.blobRead.Release()
	}
}

// AcquireIngest admits one article enqueue into the ingestion pipeline
// (ErrOverCapacity when shed; always admits when the ingest gate is not
// configured). Pair with ReleaseIngest.
func (c *Controller) AcquireIngest() error {
	if c == nil {
		return nil
	}
	return c.ingest.Acquire()
}

// ReleaseIngest returns the ingest slot.
func (c *Controller) ReleaseIngest() {
	if c != nil {
		c.ingest.Release()
	}
}

// AcquireHTTP admits one request into the API edge (ErrOverCapacity
// when shed; always admits when the HTTP gate is not configured). Pair
// with ReleaseHTTP.
func (c *Controller) AcquireHTTP() error {
	if c == nil {
		return nil
	}
	return c.http.Acquire()
}

// ReleaseHTTP returns the edge slot.
func (c *Controller) ReleaseHTTP() {
	if c != nil {
		c.http.Release()
	}
}

// AllowRoute reports whether the static per-route rate policy admits
// one more request on the given route (always true without a limit).
func (c *Controller) AllowRoute(route string) bool {
	if c == nil {
		return true
	}
	return c.routes.Allow(route)
}

// MempoolGate exposes the mempool gate (nil on a nil controller).
func (c *Controller) MempoolGate() *Gate {
	if c == nil {
		return nil
	}
	return c.mempool
}

// BlobReadGate exposes the blob-read gate (nil on a nil controller).
func (c *Controller) BlobReadGate() *Gate {
	if c == nil {
		return nil
	}
	return c.blobRead
}

// HTTPGate exposes the API-edge gate (nil when unconfigured).
func (c *Controller) HTTPGate() *Gate {
	if c == nil {
		return nil
	}
	return c.http
}

// Metrics exposes the shared instrument bundle (nil on a nil
// controller or when built without a registry).
func (c *Controller) Metrics() *Metrics {
	if c == nil {
		return nil
	}
	return c.metrics
}

// ---------------------------------------------------------------------------
// Shared metrics.
// ---------------------------------------------------------------------------

// Shed reasons used as the trustnews_admission_shed_total reason label.
const (
	ShedQueueFull = "queue_full" // bounded queue at capacity
	ShedCoDel     = "codel"      // queue-delay controller in dropping state
	ShedRateLimit = "rate_limit" // static route token bucket empty
)

// Metrics is the trustnews_admission_* instrument family, shared by
// every gate and limiter of one node so operators see all admission
// decisions under one prefix, labeled by component.
type Metrics struct {
	accepted *telemetry.CounterVec
	shed     *telemetry.CounterVec
	depth    *telemetry.GaugeVec
	delay    *telemetry.HistogramVec
}

// NewMetrics registers the admission family on reg (nil reg returns a
// Metrics whose instruments are all no-ops — still usable).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		accepted: reg.CounterVec("trustnews_admission_accepted_total", "Requests admitted past an admission edge, by component.", "component"),
		shed:     reg.CounterVec("trustnews_admission_shed_total", "Requests shed at an admission edge, by component and reason.", "component", "reason"),
		depth:    reg.GaugeVec("trustnews_admission_queue_depth", "Requests currently waiting at an admission gate, by component.", "component"),
		delay:    reg.HistogramVec("trustnews_admission_queue_delay_seconds", "Time spent waiting for an admission slot, by component.", nil, "component"),
	}
}

// Accepted counts one admitted request for component (nil-safe).
func (m *Metrics) Accepted(component string) {
	if m != nil {
		m.accepted.With(component).Inc()
	}
}

// Shed counts one shed request for component with a reason (nil-safe).
func (m *Metrics) Shed(component, reason string) {
	if m != nil {
		m.shed.With(component, reason).Inc()
	}
}
