package admission

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// ---------------------------------------------------------------------------
// Construction validation: zero-capacity configs are errors, not policies.
// ---------------------------------------------------------------------------

func TestZeroCapacityRejectedAtConstruction(t *testing.T) {
	if _, err := NewTokenBucket(0, 10); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(-1, 10); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewTokenBucket(100, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
	if _, err := NewGate(GateConfig{MaxConcurrent: 0, MaxQueue: 4}); err == nil {
		t.Fatal("zero MaxConcurrent accepted")
	}
	if _, err := NewGate(GateConfig{MaxConcurrent: 2, MaxQueue: -1}); err == nil {
		t.Fatal("negative MaxQueue accepted")
	}
	if _, err := NewRouteLimiter(map[string]RouteLimit{"POST /v1/tx": {PerSecond: 0, Burst: 5}}); err == nil {
		t.Fatal("zero-rate route limit accepted")
	}
	// The controller propagates gate construction errors.
	if _, err := NewController(&Config{Mempool: GateConfig{MaxConcurrent: 0}}, nil); err == nil {
		t.Fatal("controller accepted zero-capacity mempool gate")
	}
	cfg := DefaultConfig()
	cfg.BlobRead.MaxConcurrent = -3
	if _, err := NewController(cfg, nil); err == nil {
		t.Fatal("controller accepted negative-capacity blob gate")
	}
}

// ---------------------------------------------------------------------------
// Token bucket semantics.
// ---------------------------------------------------------------------------

// TestBurstExactlyAtBucketSizeAdmitted pins the boundary: a burst of
// exactly Burst requests is admitted back-to-back; request Burst+1 is
// not.
func TestBurstExactlyAtBucketSizeAdmitted(t *testing.T) {
	clk := newFakeClock()
	b, err := NewTokenBucket(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.SetClock(clk.Now)
	for i := 0; i < 7; i++ {
		if !b.Allow() {
			t.Fatalf("request %d of a burst exactly at bucket size was denied", i+1)
		}
	}
	if b.Allow() {
		t.Fatal("request burst+1 admitted without refill")
	}
	// 100ms at 10/s refills exactly one token.
	clk.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refilled token denied")
	}
	if b.Allow() {
		t.Fatal("second token admitted after a one-token refill")
	}
}

func TestBucketRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	b, err := NewTokenBucket(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.SetClock(clk.Now)
	clk.Advance(time.Hour) // would refill millions of tokens
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("token %d denied after long idle", i)
		}
	}
	if b.Allow() {
		t.Fatal("idle refill exceeded burst capacity")
	}
}

func TestRouteLimiterUnconfiguredRoutesUnlimited(t *testing.T) {
	l, err := NewRouteLimiter(map[string]RouteLimit{"POST /v1/tx": {PerSecond: 1, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !l.Allow("GET /v1/chain") {
			t.Fatal("unconfigured route limited")
		}
	}
	if !l.Allow("POST /v1/tx") {
		t.Fatal("first request within burst denied")
	}
	if l.Allow("POST /v1/tx") {
		t.Fatal("burst-exceeding request admitted")
	}
	var nilLimiter *RouteLimiter
	if !nilLimiter.Allow("POST /v1/tx") {
		t.Fatal("nil limiter must admit everything")
	}
}

// ---------------------------------------------------------------------------
// Gate semantics.
// ---------------------------------------------------------------------------

func TestGateQueueFullSheds(t *testing.T) {
	g, err := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(); err != nil { // takes the only slot
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		queued <- g.Acquire() // occupies the only queue seat
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	if err := g.Acquire(); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("third request should shed queue-full, got %v", err)
	}
	g.Release() // waiter gets the slot
	if err := <-queued; err != nil {
		t.Fatalf("queued request should be admitted: %v", err)
	}
	g.Release()
}

func TestGateZeroQueueShedsWhenBusy(t *testing.T) {
	g, err := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("zero-queue gate should shed immediately when busy, got %v", err)
	}
	g.Release()
	if err := g.Acquire(); err != nil {
		t.Fatalf("freed slot should admit: %v", err)
	}
	g.Release()
}

// TestCoDelShedsOnStandingQueue drives the controller directly: queue
// delays above target for a full interval flip it into the dropping
// state, arrivals shed at increasing rate, and one below-target
// observation resets it.
func TestCoDelShedsOnStandingQueue(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := codel{target: 5 * time.Millisecond, interval: 100 * time.Millisecond}

	// Below-target delays never shed.
	c.observe(now, time.Millisecond)
	if c.shed(now) {
		t.Fatal("shed with below-target delay")
	}
	// Above-target delays only begin shedding after a full interval.
	c.observe(now, 10*time.Millisecond)
	if c.shed(now.Add(50 * time.Millisecond)) {
		t.Fatal("shed before interval elapsed")
	}
	now = now.Add(110 * time.Millisecond)
	c.observe(now, 10*time.Millisecond)
	if !c.shed(now) {
		t.Fatal("standing queue for a full interval must shed")
	}
	// Control law: the second shed fires one full interval later, the
	// third interval/sqrt(2) after that — spacing shrinks as the
	// standing queue persists.
	if c.shed(now.Add(10 * time.Millisecond)) {
		t.Fatal("shed fired before its scheduled spacing")
	}
	now = now.Add(100*time.Millisecond + time.Millisecond)
	if !c.shed(now) {
		t.Fatal("second shed should fire after one interval")
	}
	spacing := time.Duration(float64(100*time.Millisecond) / math.Sqrt(2))
	if !c.shed(now.Add(spacing + time.Millisecond)) {
		t.Fatal("third shed should fire at interval/sqrt(2)")
	}
	// Recovery: one below-target observation ends the dropping state.
	c.observe(now, time.Millisecond)
	if c.shed(now.Add(time.Hour)) {
		t.Fatal("shed after recovery")
	}
}

// TestGateCoDelEndToEnd holds a slot long enough that a queued request
// observes an above-target delay, then checks the gate sheds arrivals
// while the standing queue persists. The fake clock makes the delays
// deterministic.
func TestGateCoDelEndToEnd(t *testing.T) {
	clk := newFakeClock()
	g, err := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 8, Target: 5 * time.Millisecond, Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g.SetClock(clk.Now)

	if err := g.Acquire(); err != nil { // occupy the slot
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire() }()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	// The waiter has been queued since t0; release after a long
	// above-target wait.
	clk.Advance(60 * time.Millisecond)
	g.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// One above-target observation arms the controller; a second one a
	// full interval later flips it to dropping.
	go func() { done <- g.Acquire() }()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	clk.Advance(60 * time.Millisecond)
	g.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Dropping state: the second waiter still holds the slot, so the
	// next arrival is contended and sheds via CoDel even though the
	// queue has plenty of room.
	err = g.Acquire()
	if !errors.Is(err, ErrOverCapacity) || !strings.Contains(err.Error(), "delay above target") {
		t.Fatalf("expected CoDel shed, got %v", err)
	}
	g.Release()
}

// ---------------------------------------------------------------------------
// Concurrency: shed accounting must be exact under racing acquirers.
// ---------------------------------------------------------------------------

// TestConcurrentShedCountingRaceFree hammers one small gate from many
// goroutines and checks the books balance exactly: every Acquire is
// either admitted (and released) or returned ErrOverCapacity, and the
// metrics agree with the callers' own tallies. Run under -race this
// also proves the gate's internal state is data-race-free.
func TestConcurrentShedCountingRaceFree(t *testing.T) {
	reg := telemetry.New()
	m := NewMetrics(reg)
	g, err := NewGate(GateConfig{MaxConcurrent: 2, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.Instrument(m, "test")

	const goroutines = 16
	const perG = 500
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				err := g.Acquire()
				switch {
				case err == nil:
					admitted.Add(1)
					g.Release()
				case errors.Is(err, ErrOverCapacity):
					shed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := admitted.Load() + shed.Load(); got != goroutines*perG {
		t.Fatalf("lost requests: admitted %d + shed %d = %d, want %d",
			admitted.Load(), shed.Load(), got, goroutines*perG)
	}
	if g.Waiting() != 0 {
		t.Fatalf("queue not drained: %d waiting", g.Waiting())
	}
	if got := m.accepted.With("test").Value(); got != uint64(admitted.Load()) {
		t.Fatalf("accepted metric %d != callers' tally %d", got, admitted.Load())
	}
	metricShed := m.shed.With("test", ShedQueueFull).Value() + m.shed.With("test", ShedCoDel).Value()
	if metricShed != uint64(shed.Load()) {
		t.Fatalf("shed metric %d != callers' tally %d", metricShed, shed.Load())
	}
}

// ---------------------------------------------------------------------------
// Nil-safety and controller plumbing.
// ---------------------------------------------------------------------------

func TestNilAdmissionIsNoOp(t *testing.T) {
	var g *Gate
	if err := g.Acquire(); err != nil {
		t.Fatal("nil gate must admit")
	}
	g.Release()
	var c *Controller
	if err := c.AcquireMempool(); err != nil {
		t.Fatal("nil controller must admit mempool")
	}
	c.ReleaseMempool()
	if err := c.AcquireBlobRead(); err != nil {
		t.Fatal("nil controller must admit blob reads")
	}
	c.ReleaseBlobRead()
	if !c.AllowRoute("POST /v1/tx") {
		t.Fatal("nil controller must allow routes")
	}
	if err := c.AcquireHTTP(); err != nil {
		t.Fatal("nil controller must admit at the edge")
	}
	c.ReleaseHTTP()
	ctrl, err := NewController(nil, nil)
	if err != nil || ctrl != nil {
		t.Fatalf("nil config should yield nil controller, got %v, %v", ctrl, err)
	}
}

// TestHTTPGateOptional pins the edge gate's zero-value-disables
// contract: the resource gates are mandatory, the HTTP gate is not.
func TestHTTPGateOptional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTTP = GateConfig{}
	ctrl, err := NewController(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.HTTPGate() != nil {
		t.Fatal("zero HTTP config must disable the edge gate")
	}
	// Disabled gate admits without limit.
	for i := 0; i < 100; i++ {
		if err := ctrl.AcquireHTTP(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Configured gate enforces its bound: one slot, zero queue.
	cfg2 := DefaultConfig()
	cfg2.HTTP = GateConfig{MaxConcurrent: 1, MaxQueue: 0}
	ctrl2, err := NewController(cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl2.HTTPGate() == nil {
		t.Fatal("configured HTTP gate missing")
	}
	if err := ctrl2.AcquireHTTP(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl2.AcquireHTTP(); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("second acquire: %v, want ErrOverCapacity", err)
	}
	ctrl2.ReleaseHTTP()
	// An invalid (negative) HTTP config is still rejected.
	cfg3 := DefaultConfig()
	cfg3.HTTP = GateConfig{MaxConcurrent: -1, MaxQueue: 4}
	if _, err := NewController(cfg3, nil); err == nil {
		t.Fatal("negative HTTP concurrency must be rejected")
	}
}

func TestControllerMetricsExposition(t *testing.T) {
	reg := telemetry.New()
	ctrl, err := NewController(DefaultConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AcquireMempool(); err != nil {
		t.Fatal(err)
	}
	ctrl.ReleaseMempool()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"trustnews_admission_accepted_total",
		`trustnews_admission_accepted_total{component="mempool"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// waitFor polls cond briefly (for goroutine scheduling, not time
// semantics — those run on the fake clock).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
