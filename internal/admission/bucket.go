package admission

import (
	"fmt"
	"sync"
	"time"
)

// RouteLimit is a static rate policy for one route: a sustained
// per-second rate with a burst allowance (the token bucket size).
type RouteLimit struct {
	// PerSecond is the sustained refill rate (must be > 0).
	PerSecond float64
	// Burst is the bucket capacity — how many requests may arrive
	// back-to-back after an idle period (must be > 0).
	Burst int
}

// TokenBucket is a classic token-bucket rate limiter: tokens refill
// continuously at a fixed rate up to the burst capacity, and every
// admitted request spends one.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket creates a bucket refilling at rate tokens/second with
// the given burst capacity. Zero or negative capacity is a
// configuration error rejected at construction — a bucket that can
// never admit anything is a misconfiguration, not a policy.
func NewTokenBucket(rate float64, burst int) (*TokenBucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("admission: token bucket rate must be positive, got %g", rate)
	}
	if burst <= 0 {
		return nil, fmt.Errorf("admission: token bucket burst must be positive, got %d", burst)
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}, nil
}

// SetClock overrides the bucket's time source (tests).
func (b *TokenBucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = time.Time{}
}

// Allow spends one token if available.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RouteLimiter holds one token bucket per configured route. Routes
// without a bucket are unlimited; a nil *RouteLimiter admits
// everything.
type RouteLimiter struct {
	buckets map[string]*TokenBucket
	metrics *Metrics
}

// NewRouteLimiter builds buckets for every configured route, rejecting
// zero-capacity limits at construction. A nil or empty map yields a
// limiter that admits everything (still non-nil, so callers need no
// special case).
func NewRouteLimiter(limits map[string]RouteLimit) (*RouteLimiter, error) {
	l := &RouteLimiter{buckets: make(map[string]*TokenBucket, len(limits))}
	for route, lim := range limits {
		b, err := NewTokenBucket(lim.PerSecond, lim.Burst)
		if err != nil {
			return nil, fmt.Errorf("route %q: %w", route, err)
		}
		l.buckets[route] = b
	}
	return l, nil
}

// Instrument attaches the shared admission metrics (sheds are counted
// under component "httpapi" with reason "rate_limit").
func (l *RouteLimiter) Instrument(m *Metrics) {
	if l != nil {
		l.metrics = m
	}
}

// Allow reports whether the route may take one more request now. The
// map is never mutated after construction, so lookups are lock-free;
// each bucket synchronizes internally.
func (l *RouteLimiter) Allow(route string) bool {
	if l == nil {
		return true
	}
	b, ok := l.buckets[route]
	if !ok {
		return true
	}
	if b.Allow() {
		return true
	}
	l.metrics.Shed("httpapi", ShedRateLimit)
	return false
}
