package evidence

import (
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/contract"
	"repro/internal/keys"
	"repro/internal/ledger"
)

type fixture struct {
	engine *contract.Engine
	nonces map[string]uint64
	t      *testing.T
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := contract.NewEngine()
	if err := e.Register(Contract{}); err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: e, nonces: make(map[string]uint64), t: t}
}

func (f *fixture) exec(kp *keys.KeyPair, method string, payload []byte) contract.Receipt {
	f.t.Helper()
	key := kp.Address().String()
	tx, err := ledger.NewTx(kp, f.nonces[key], ContractName+"."+method, payload)
	if err != nil {
		f.t.Fatal(err)
	}
	f.nonces[key]++
	return f.engine.ExecuteTx(tx, 1)
}

// conflictingVotes builds a genuine equivocation pair for the offender.
func conflictingVotes(offender *keys.KeyPair) (consensus.Vote, consensus.Vote) {
	a := consensus.Vote{Type: consensus.VotePrecommit, Height: 4, Round: 1, BlockID: ledger.BlockID{1}, Voter: offender.Address()}
	b := consensus.Vote{Type: consensus.VotePrecommit, Height: 4, Round: 1, BlockID: ledger.BlockID{2}, Voter: offender.Address()}
	consensus.SignVote(&a, offender)
	consensus.SignVote(&b, offender)
	return a, b
}

func TestSubmitValidEvidence(t *testing.T) {
	f := newFixture(t)
	offender := keys.FromSeed([]byte("byzantine"))
	reporter := keys.FromSeed([]byte("reporter"))
	a, b := conflictingVotes(offender)
	payload, err := SubmitPayload(a, b, offender.Public())
	if err != nil {
		t.Fatal(err)
	}
	rec := f.exec(reporter, "submit", payload)
	if !rec.OK {
		t.Fatalf("receipt: %+v", rec)
	}
	if len(rec.Events) != 1 || rec.Events[0].Type != "slashed" {
		t.Fatalf("events: %+v", rec.Events)
	}
	slashed, err := IsSlashed(f.engine, reporter.Address(), offender.Address())
	if err != nil || !slashed {
		t.Fatalf("slashed=%v err=%v", slashed, err)
	}
	// Innocent accounts are not flagged.
	slashed, _ = IsSlashed(f.engine, reporter.Address(), reporter.Address())
	if slashed {
		t.Fatal("reporter flagged as slashed")
	}
}

func TestDuplicateEvidenceRejected(t *testing.T) {
	f := newFixture(t)
	offender := keys.FromSeed([]byte("byzantine"))
	reporter := keys.FromSeed([]byte("reporter"))
	a, b := conflictingVotes(offender)
	payload, _ := SubmitPayload(a, b, offender.Public())
	f.exec(reporter, "submit", payload)
	rec := f.exec(reporter, "submit", payload)
	if rec.OK || !strings.Contains(rec.Err, "already recorded") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestRejectsNonConflictingVotes(t *testing.T) {
	f := newFixture(t)
	offender := keys.FromSeed([]byte("byzantine"))
	reporter := keys.FromSeed([]byte("reporter"))
	// Same block id: not an equivocation.
	a := consensus.Vote{Type: consensus.VotePrecommit, Height: 4, Round: 1, BlockID: ledger.BlockID{1}, Voter: offender.Address()}
	consensus.SignVote(&a, offender)
	payload, _ := SubmitPayload(a, a, offender.Public())
	rec := f.exec(reporter, "submit", payload)
	if rec.OK || !strings.Contains(rec.Err, "same block id") {
		t.Fatalf("receipt: %+v", rec)
	}
	// Different heights: different slots, no offence.
	b := a
	b.Height = 5
	b.BlockID = ledger.BlockID{2}
	consensus.SignVote(&b, offender)
	payload, _ = SubmitPayload(a, b, offender.Public())
	rec = f.exec(reporter, "submit", payload)
	if rec.OK || !strings.Contains(rec.Err, "slots differ") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestRejectsForgedEvidence(t *testing.T) {
	f := newFixture(t)
	victim := keys.FromSeed([]byte("honest"))
	framer := keys.FromSeed([]byte("framer"))
	// The framer fabricates conflicting votes "from" the victim but can
	// only sign with their own key.
	a := consensus.Vote{Type: consensus.VotePrecommit, Height: 4, Round: 1, BlockID: ledger.BlockID{1}, Voter: victim.Address()}
	b := consensus.Vote{Type: consensus.VotePrecommit, Height: 4, Round: 1, BlockID: ledger.BlockID{2}, Voter: victim.Address()}
	consensus.SignVote(&a, framer)
	consensus.SignVote(&b, framer)

	// Using the victim's real key: signatures fail.
	payload, _ := SubmitPayload(a, b, victim.Public())
	rec := f.exec(framer, "submit", payload)
	if rec.OK || !strings.Contains(rec.Err, "signature invalid") {
		t.Fatalf("receipt: %+v", rec)
	}
	// Using the framer's key: address binding fails.
	payload, _ = SubmitPayload(a, b, framer.Public())
	rec = f.exec(framer, "submit", payload)
	if rec.OK || !strings.Contains(rec.Err, "public key does not match") {
		t.Fatalf("receipt: %+v", rec)
	}
	// The victim stays clean.
	slashed, _ := IsSlashed(f.engine, framer.Address(), victim.Address())
	if slashed {
		t.Fatal("victim framed")
	}
}

func TestRejectsGarbagePayloads(t *testing.T) {
	f := newFixture(t)
	reporter := keys.FromSeed([]byte("reporter"))
	for _, payload := range [][]byte{nil, []byte("{"), []byte(`{"pubKey":"AQ=="}`)} {
		rec := f.exec(reporter, "submit", payload)
		if rec.OK {
			t.Fatalf("payload %q accepted", payload)
		}
	}
}
