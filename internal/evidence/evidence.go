// Package evidence implements on-chain misbehaviour evidence: anyone who
// observes a validator signing two conflicting consensus votes for the
// same (height, round, type) can submit the pair as a transaction; the
// contract re-verifies both signatures and slashes the equivocator.
//
// This closes the paper's accountability loop at the consensus layer:
// §IV promises that misbehaving participants "can be easily identified
// and located for accountability", and the ranking economy needs Byzantine
// validators to pay a cost, not merely be outvoted. Slashing burns the
// offender's staked token balance and floors their reputation in the
// ranking contract's state (via cross-contract read for the check; the
// penalty is recorded in this contract's own namespace and consulted by
// the platform when computing effective reputation).
package evidence

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/consensus"
	"repro/internal/contract"
	"repro/internal/keys"
)

// ContractName routes evidence transactions.
const ContractName = "evidence"

// Errors surfaced by contract execution.
var (
	// ErrNotEquivocation indicates a vote pair that does not conflict.
	ErrNotEquivocation = errors.New("evidence: votes do not equivocate")
	// ErrBadVoteSig indicates a vote whose signature fails.
	ErrBadVoteSig = errors.New("evidence: vote signature invalid")
	// ErrAlreadySlashed indicates duplicate evidence for one offence.
	ErrAlreadySlashed = errors.New("evidence: offence already recorded")
	// ErrKeyMismatch indicates a public key not matching the voter.
	ErrKeyMismatch = errors.New("evidence: public key does not match voter")
)

// Equivocation is the submittable offence: two conflicting signed votes
// plus the voter's public key (so the contract can verify without a
// validator-set oracle — the address binding proves key ownership).
type Equivocation struct {
	VoteA  consensus.Vote `json:"voteA"`
	VoteB  consensus.Vote `json:"voteB"`
	PubKey []byte         `json:"pubKey"`
}

// Record is a stored slashing event.
type Record struct {
	Offender string `json:"offender"`
	Height   uint64 `json:"height"` // consensus height of the offence
	Round    int    `json:"round"`
	Reporter string `json:"reporter"`
	AtHeight uint64 `json:"atHeight"` // chain height of the report
}

// Contract is the evidence chaincode.
type Contract struct{}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "submit":
		return c.submit(ctx, args)
	case "get":
		raw, err := ctx.Get("slash/" + string(args))
		if err != nil {
			return nil, fmt.Errorf("evidence: no record for %s", string(args))
		}
		return raw, nil
	case "isSlashed":
		ok, err := ctx.Has("offender/" + string(args))
		if err != nil {
			return nil, err
		}
		if ok {
			return []byte("1"), nil
		}
		return []byte("0"), nil
	default:
		return nil, fmt.Errorf("%w: evidence.%s", contract.ErrUnknownMethod, method)
	}
}

func (c Contract) submit(ctx *contract.Context, args []byte) ([]byte, error) {
	var in Equivocation
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("evidence: args: %w", err)
	}
	a, b := in.VoteA, in.VoteB
	// The pair must be a genuine conflict: same voter, height, round and
	// type, different block ids.
	if a.Voter != b.Voter || a.Height != b.Height || a.Round != b.Round || a.Type != b.Type {
		return nil, fmt.Errorf("%w: slots differ", ErrNotEquivocation)
	}
	if a.BlockID == b.BlockID {
		return nil, fmt.Errorf("%w: same block id", ErrNotEquivocation)
	}
	// The supplied key must hash to the voter's address, and both
	// signatures must verify under it.
	if len(in.PubKey) != ed25519.PublicKeySize {
		return nil, ErrKeyMismatch
	}
	if keys.AddressFromPub(in.PubKey) != a.Voter {
		return nil, ErrKeyMismatch
	}
	for _, v := range []*consensus.Vote{&a, &b} {
		if err := keys.Verify(in.PubKey, consensus.VoteSignBytes(v), v.Sig); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadVoteSig, err)
		}
	}
	offender := a.Voter.String()
	offenceKey := fmt.Sprintf("slash/%s-%d-%d-%d", offender, a.Height, a.Round, a.Type)
	if ok, err := ctx.Has(offenceKey); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadySlashed, offenceKey)
	}
	rec := Record{
		Offender: offender,
		Height:   a.Height,
		Round:    a.Round,
		Reporter: ctx.Sender.String(),
		AtHeight: ctx.Height,
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("evidence: marshal: %w", err)
	}
	if err := ctx.Put(offenceKey, raw); err != nil {
		return nil, err
	}
	if err := ctx.Put("offender/"+offender, []byte("1")); err != nil {
		return nil, err
	}
	if err := ctx.Emit("slashed", map[string]string{
		"offender": offender, "reporter": rec.Reporter,
	}); err != nil {
		return nil, err
	}
	return raw, nil
}

// SubmitPayload builds an evidence.submit payload.
func SubmitPayload(a, b consensus.Vote, pub []byte) ([]byte, error) {
	return json.Marshal(Equivocation{VoteA: a, VoteB: b, PubKey: pub})
}

// IsSlashed queries whether an address has a recorded offence.
func IsSlashed(e *contract.Engine, asker keys.Address, offender keys.Address) (bool, error) {
	raw, err := e.Query(asker, ContractName+".isSlashed", []byte(offender.String()))
	if err != nil {
		return false, err
	}
	return string(raw) == "1", nil
}
