package loadgen

import (
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/httpapi"
	"repro/internal/ingest"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// LocalNode is an in-process trustnewsd-equivalent for experiments and
// smoke tests: a full platform (admission control and telemetry on, as
// in production) behind a real HTTP listener, with a ticker committing
// blocks the way a standalone daemon does. Measurements against it
// include the complete serving path minus only cross-host networking.
type LocalNode struct {
	P *platform.Platform
	// Ingest is the node's async ingestion pipeline, started and
	// serving POST /v1/ingest (in-memory queue WAL).
	Ingest *ingest.Pipeline
	URL    string

	srv      *httptest.Server
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartLocalNode boots the node. commitEvery is the block cadence; the
// default platform config is used with telemetry and admission enabled
// (override via mutate, which may be nil).
func StartLocalNode(commitEvery time.Duration, mutate func(*platform.Config)) (*LocalNode, error) {
	cfg := platform.DefaultConfig()
	cfg.Telemetry = telemetry.New()
	cfg.Admission = admission.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	n := &LocalNode{
		P:    p,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	q, err := ingest.NewQueue(nil, ingest.QueueConfig{})
	if err != nil {
		return nil, err
	}
	n.Ingest = ingest.NewPipeline(p, q, ingest.PipelineConfig{})
	n.Ingest.Instrument(p.Telemetry())
	n.Ingest.Start()
	api := httpapi.New(p, false)
	api.SetIngest(n.Ingest)
	n.srv = httptest.NewServer(api)
	n.URL = n.srv.URL
	go n.commitLoop(commitEvery)
	return n, nil
}

// commitLoop mimics the daemon's standalone commit ticker.
func (n *LocalNode) commitLoop(every time.Duration) {
	defer close(n.done)
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			// Commit errors here mean a bug elsewhere; the pool
			// simply retries next tick and tests observe the stall.
			_ = n.P.CommitAll()
		}
	}
}

// Close stops the ingest pipeline, the commit loop, and the HTTP
// listener, in that order (workers must stop submitting before the
// committer goes away).
func (n *LocalNode) Close() {
	n.stopOnce.Do(func() {
		n.Ingest.Stop()
		close(n.stop)
		<-n.done
		n.srv.Close()
	})
}
