// Package loadgen is an open-loop load generator for the trust-news
// platform: it synthesizes a realistic traffic mix — article publishes,
// verbatim relays, ranking votes, keyword searches, and blob reads,
// with zipf-distributed user activity and article popularity — and
// offers it to a node's HTTP API at a constant arrival rate.
//
// Open-loop matters: a closed-loop client (fixed worker pool, next
// request after the previous response) slows down exactly when the
// server does, hiding the overload it is supposed to measure. Here
// arrivals fire on the configured schedule regardless of how many
// requests are still in flight; when the in-flight cap is reached the
// arrival is counted as client-dropped rather than deferred, so the
// measured shed rate and tail latency reflect the offered load, not a
// coordinated-omission artifact.
//
// A 429 from the node is recorded as "shed", never as a failure: that
// is the admission-control subsystem doing its job. Failures are
// transport errors and unexpected statuses only.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/ranking"
	"repro/internal/supplychain"
)

// Op names used in the mix and the per-op summary.
const (
	OpPublish  = "publish"
	OpRelay    = "relay"
	OpVote     = "vote"
	OpSearch   = "search"
	OpBlobRead = "blob_read"
	OpIngest   = "ingest"
)

// Mix is the relative weight of each operation in the synthesized
// traffic. Weights need not sum to anything particular.
type Mix struct {
	Publish  float64 `json:"publish"`
	Relay    float64 `json:"relay"`
	Vote     float64 `json:"vote"`
	Search   float64 `json:"search"`
	BlobRead float64 `json:"blob_read"`
	// Ingest posts raw articles to the async ingestion queue. Zero in
	// the default mix: it only makes sense against a node with an
	// attached pipeline (experiments opt in explicitly).
	Ingest float64 `json:"ingest"`
}

// DefaultMix skews toward reads the way a news feed does: most traffic
// consumes (search + blob reads), a smaller share produces.
func DefaultMix() Mix {
	return Mix{Publish: 25, Relay: 10, Vote: 15, Search: 30, BlobRead: 20}
}

func (m Mix) total() float64 {
	return m.Publish + m.Relay + m.Vote + m.Search + m.BlobRead + m.Ingest
}

// Config parameterizes one run.
type Config struct {
	// BaseURL is the node's API root, e.g. "http://127.0.0.1:8420".
	BaseURL string `json:"base_url"`
	// Rate is the offered arrival rate in requests/second.
	Rate float64 `json:"rate"`
	// Duration is the measured span; arrivals stop when it elapses.
	Duration time.Duration `json:"-"`
	// Users is the size of the synthetic user population. User activity
	// is zipf-distributed: a few accounts produce most traffic.
	Users int `json:"users"`
	// SeedArticles are published (and committed) before measurement so
	// votes, relays, searches and blob reads have targets from the
	// first arrival.
	SeedArticles int `json:"seed_articles"`
	// MaxInFlight caps concurrent requests; arrivals past the cap are
	// client-dropped to preserve the open-loop schedule.
	MaxInFlight int `json:"max_in_flight"`
	// Mix is the operation mix (DefaultMix when zero).
	Mix Mix `json:"mix"`
	// Seed makes user choice, article choice, and synthesized text
	// deterministic.
	Seed int64 `json:"seed"`
	// AuthoritySeed derives the platform authority key used by the
	// setup phase to mint vote budgets (must match the node's).
	AuthoritySeed string `json:"-"`
	// MintBudget is the token balance minted to each user for staking
	// votes.
	MintBudget uint64 `json:"mint_budget"`
	// RequestTimeout bounds every request (default 10s).
	RequestTimeout time.Duration `json:"-"`
	// SetupTimeout bounds the whole setup phase (default 60s).
	SetupTimeout time.Duration `json:"-"`
}

// DefaultConfig returns a small, laptop-friendly run shape; Rate,
// Duration, and BaseURL still need to be set.
func DefaultConfig() Config {
	return Config{
		Users:          64,
		SeedArticles:   24,
		MaxInFlight:    256,
		Mix:            DefaultMix(),
		Seed:           1,
		AuthoritySeed:  "platform-authority",
		MintBudget:     10_000,
		RequestTimeout: 10 * time.Second,
		SetupTimeout:   60 * time.Second,
	}
}

// user is one synthetic account. The mutex serializes its nonce: a
// sender's transactions must reach the mempool in nonce order, and a
// gap stalls every later transaction of that sender, so the scheduler
// TryLocks a user and probes onward rather than queueing behind one.
type user struct {
	kp    *keys.KeyPair
	addr  string
	mu    sync.Mutex
	nonce uint64
}

// article is one published item the generator can target again.
type article struct {
	id    string
	cid   string
	size  int
	topic corpus.Topic
}

// Engine drives one run against one node.
type Engine struct {
	cfg    Config
	client *Client
	gen    *corpus.Generator
	rng    *rand.Rand
	users  []*user
	uzipf  *rand.Zipf
	azipf  *rand.Zipf

	artMu    sync.RWMutex
	articles []article
	artSeq   int

	queries []string
}

// New builds an engine; Run executes it.
func New(cfg Config) (*Engine, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Users <= 0 || cfg.SeedArticles <= 0 || cfg.MaxInFlight <= 0 {
		return nil, fmt.Errorf("loadgen: Users, SeedArticles, MaxInFlight must be positive")
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.AuthoritySeed == "" {
		cfg.AuthoritySeed = "platform-authority"
	}
	if cfg.MintBudget == 0 {
		cfg.MintBudget = 10_000
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.SetupTimeout <= 0 {
		cfg.SetupTimeout = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Engine{
		cfg:    cfg,
		client: NewClient(cfg.BaseURL, cfg.RequestTimeout),
		gen:    corpus.NewGenerator(cfg.Seed),
		rng:    rng,
		// s=1.2, v=1: a mild zipf — the head dominates without a
		// single user monopolizing the nonce locks.
		uzipf: rand.NewZipf(rng, 1.2, 1, uint64(cfg.Users-1)),
		azipf: rand.NewZipf(rng, 1.2, 1, 1<<20),
	}
	for i := 0; i < cfg.Users; i++ {
		kp := keys.FromSeed([]byte(fmt.Sprintf("loadgen-user-%d-%d", cfg.Seed, i)))
		e.users = append(e.users, &user{kp: kp, addr: kp.Address().String()})
	}
	// Pre-build keyword queries from the same lexicon the articles use
	// so searches hit the index rather than always missing.
	for i := 0; i < 32; i++ {
		st := e.gen.Factual()
		words := corpus.Tokenize(st.Text)
		e.queries = append(e.queries, words[e.rng.Intn(len(words))])
	}
	return e, nil
}

// Run executes setup then the measured open-loop phase and returns the
// summary. Setup errors abort the run; measurement-phase errors are
// recorded, never fatal.
func (e *Engine) Run() (Summary, error) {
	if err := e.setup(); err != nil {
		return Summary{}, err
	}
	return e.drive(), nil
}

// setup waits for the node, mints vote budgets, publishes the seed
// articles, and waits for everything to commit.
func (e *Engine) setup() error {
	if err := e.client.WaitReady(e.cfg.SetupTimeout); err != nil {
		return err
	}
	// Mint each user's vote budget. The authority key is shared with
	// the node; its nonce may have advanced (creator rewards, earlier
	// runs), so start from the chain's view.
	authority := keys.FromSeed([]byte(e.cfg.AuthoritySeed))
	authNonce, err := e.client.NextNonce(authority.Address().String())
	if err != nil {
		return fmt.Errorf("loadgen: authority nonce: %w", err)
	}
	for _, u := range e.users {
		payload, err := ranking.MintPayload(u.kp.Address(), e.cfg.MintBudget)
		if err != nil {
			return err
		}
		if err := e.submitRetry(authority, &authNonce, "rank.mint", payload); err != nil {
			return fmt.Errorf("loadgen: mint for %s: %w", u.addr[:8], err)
		}
	}
	// Each user's nonce may also have advanced if the node outlived a
	// previous run.
	for _, u := range e.users {
		n, err := e.client.NextNonce(u.addr)
		if err != nil {
			return fmt.Errorf("loadgen: nonce of %s: %w", u.addr[:8], err)
		}
		u.nonce = n
	}
	// Seed the article pool round-robin across users.
	for i := 0; i < e.cfg.SeedArticles; i++ {
		u := e.users[i%len(e.users)]
		st := e.gen.Factual()
		id := e.nextArticleID()
		cid, out, err := e.client.UploadBlob(st.Text)
		if out != OutcomeOK {
			return fmt.Errorf("loadgen: seed blob %d: %v", i, err)
		}
		payload, err := supplychain.PublishRefPayload(id, st.Topic, cid, len(st.Text), nil, "")
		if err != nil {
			return err
		}
		if err := e.submitRetry(u.kp, &u.nonce, "news.publish", payload); err != nil {
			return fmt.Errorf("loadgen: seed article %d: %w", i, err)
		}
		e.addArticle(article{id: id, cid: cid, size: len(st.Text), topic: st.Topic})
	}
	// Votes and searches need the seeds committed, not just pending.
	return e.client.WaitDrained(1, e.cfg.SetupTimeout)
}

// submitRetry submits one setup-phase transaction, retrying sheds with
// backoff (setup must land everything; only real failures abort).
func (e *Engine) submitRetry(kp *keys.KeyPair, nonce *uint64, kind string, payload []byte) error {
	deadline := time.Now().Add(e.cfg.SetupTimeout)
	for {
		tx, err := ledger.NewTx(kp, *nonce, kind, payload)
		if err != nil {
			return err
		}
		out, err := e.client.SubmitTx(tx)
		switch out {
		case OutcomeOK:
			*nonce++
			return nil
		case OutcomeShed:
			if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: %s still shed at setup deadline", kind)
			}
			time.Sleep(50 * time.Millisecond)
		default:
			return err
		}
	}
}

func (e *Engine) nextArticleID() string {
	e.artMu.Lock()
	e.artSeq++
	id := fmt.Sprintf("lg-%d-%06d", e.cfg.Seed, e.artSeq)
	e.artMu.Unlock()
	return id
}

func (e *Engine) addArticle(a article) {
	e.artMu.Lock()
	e.articles = append(e.articles, a)
	e.artMu.Unlock()
}

// pickArticle draws a zipf-popular article: low draws map to the oldest
// (most established) items, mirroring how real feeds concentrate reads
// on a small set of viral stories.
func (e *Engine) pickArticle(z uint64) article {
	e.artMu.RLock()
	defer e.artMu.RUnlock()
	return e.articles[z%uint64(len(e.articles))]
}

// arrival is everything the scheduler decides for one request; workers
// only execute it.
type arrival struct {
	op   string
	u    *user // locked by the scheduler; worker must unlock (nil for reads)
	st   corpus.Statement
	art  article
	q    string
	vote bool
}

// drive runs the measured open-loop phase.
func (e *Engine) drive() Summary {
	rec := newRecorder()
	sem := make(chan struct{}, e.cfg.MaxInFlight)
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / e.cfg.Rate)
	start := time.Now()
	deadline := start.Add(e.cfg.Duration)
	var offered, dropped, sent int
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.After(deadline) {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		offered++
		a, ok := e.nextArrival()
		if !ok {
			// All probed users mid-request: the arrival cannot keep
			// its schedule, so it is dropped, not deferred.
			dropped++
			continue
		}
		select {
		case sem <- struct{}{}:
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.execute(a, rec)
				<-sem
			}()
		default:
			if a.u != nil {
				a.u.mu.Unlock()
			}
			dropped++
		}
	}
	wg.Wait()
	return rec.summarize(e.cfg.Rate, offered, sent, dropped, time.Since(start))
}

// nextArrival synthesizes the next request. It runs on the scheduler
// goroutine only, so the rng and generator need no locking. For signed
// ops it TryLocks the zipf-chosen user and probes forward through the
// population on contention — never blocking the arrival schedule.
func (e *Engine) nextArrival() (arrival, bool) {
	w := e.rng.Float64() * e.cfg.Mix.total()
	m := e.cfg.Mix
	switch {
	case w < m.Publish:
		u, ok := e.lockUser()
		if !ok {
			return arrival{}, false
		}
		return arrival{op: OpPublish, u: u, st: e.gen.Factual()}, true
	case w < m.Publish+m.Relay:
		u, ok := e.lockUser()
		if !ok {
			return arrival{}, false
		}
		return arrival{op: OpRelay, u: u, art: e.pickArticle(e.azipf.Uint64())}, true
	case w < m.Publish+m.Relay+m.Vote:
		u, ok := e.lockUser()
		if !ok {
			return arrival{}, false
		}
		return arrival{op: OpVote, u: u, art: e.pickArticle(e.azipf.Uint64()), vote: e.rng.Intn(2) == 0}, true
	case w < m.Publish+m.Relay+m.Vote+m.Search:
		return arrival{op: OpSearch, q: e.queries[e.rng.Intn(len(e.queries))]}, true
	case w < m.Publish+m.Relay+m.Vote+m.Search+m.BlobRead:
		return arrival{op: OpBlobRead, art: e.pickArticle(e.azipf.Uint64())}, true
	default:
		return arrival{op: OpIngest, st: e.gen.Factual()}, true
	}
}

// lockUser draws a zipf user and linearly probes for one not currently
// mid-request.
func (e *Engine) lockUser() (*user, bool) {
	first := int(e.uzipf.Uint64())
	for i := 0; i < len(e.users); i++ {
		u := e.users[(first+i)%len(e.users)]
		if u.mu.TryLock() {
			return u, true
		}
	}
	return nil, false
}

// execute performs one arrival and records its outcome. It owns the
// arrival's user lock.
func (e *Engine) execute(a arrival, rec *recorder) {
	if a.u != nil {
		defer a.u.mu.Unlock()
	}
	t0 := time.Now()
	switch a.op {
	case OpPublish:
		id := e.nextArticleID()
		cid, out, err := e.client.UploadBlob(a.st.Text)
		if out != OutcomeOK {
			rec.record(a.op, out, 0, err)
			return
		}
		payload, err := supplychain.PublishRefPayload(id, a.st.Topic, cid, len(a.st.Text), nil, "")
		if err != nil {
			rec.record(a.op, OutcomeFailed, 0, err)
			return
		}
		out, err = e.submitSigned(a.u, "news.publish", payload)
		rec.record(a.op, out, time.Since(t0), err)
		if out == OutcomeOK {
			e.addArticle(article{id: id, cid: cid, size: len(a.st.Text), topic: a.st.Topic})
		}
	case OpRelay:
		id := e.nextArticleID()
		payload, err := supplychain.PublishRefPayload(id, a.art.topic, a.art.cid, a.art.size, []string{a.art.id}, corpus.OpVerbatim)
		if err != nil {
			rec.record(a.op, OutcomeFailed, 0, err)
			return
		}
		out, err := e.submitSigned(a.u, "news.publish", payload)
		rec.record(a.op, out, time.Since(t0), err)
		if out == OutcomeOK {
			e.addArticle(article{id: id, cid: a.art.cid, size: a.art.size, topic: a.art.topic})
		}
	case OpVote:
		payload, err := ranking.VotePayload(a.art.id, a.vote, 1)
		if err != nil {
			rec.record(a.op, OutcomeFailed, 0, err)
			return
		}
		out, err := e.submitSigned(a.u, "rank.vote", payload)
		rec.record(a.op, out, time.Since(t0), err)
	case OpSearch:
		_, out, err := e.client.Search(a.q, 10, "")
		rec.record(a.op, out, time.Since(t0), err)
	case OpBlobRead:
		out, err := e.client.ReadBlob(a.art.cid)
		rec.record(a.op, out, time.Since(t0), err)
	case OpIngest:
		out, err := e.client.Ingest("loadgen", string(a.st.Topic), a.st.Text)
		rec.record(a.op, out, time.Since(t0), err)
	}
}

// submitSigned builds and posts one transaction under the (held) user
// lock. The nonce advances only on acceptance: a 429 happens before
// mempool admission, so the nonce is untouched and simply reused — no
// gap forms. On an unexpected failure the nonce is resynchronized from
// the chain, since the client can no longer know whether it landed.
func (e *Engine) submitSigned(u *user, kind string, payload []byte) (Outcome, error) {
	tx, err := ledger.NewTx(u.kp, u.nonce, kind, payload)
	if err != nil {
		return OutcomeFailed, err
	}
	out, err := e.client.SubmitTx(tx)
	switch out {
	case OutcomeOK:
		u.nonce++
	case OutcomeFailed:
		if n, nerr := e.client.NextNonce(u.addr); nerr == nil {
			u.nonce = n
		}
	}
	return out, err
}
