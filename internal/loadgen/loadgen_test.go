package loadgen

import (
	"strings"
	"testing"
	"time"
)

// TestLoadgenSmoke is the tier-1 smoke: a short low-rate open-loop run
// against an in-process node must complete with zero failures, zero
// sheds, and zero client drops — at 40 req/s the node is nowhere near
// capacity, so anything nonzero is a generator or serving-path bug.
func TestLoadgenSmoke(t *testing.T) {
	node, err := StartLocalNode(25*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cfg := DefaultConfig()
	cfg.BaseURL = node.URL
	cfg.Rate = 40
	cfg.Duration = 3 * time.Second
	cfg.Users = 16
	cfg.SeedArticles = 8
	sum := runSmoke(t, cfg)

	if sum.Failed != 0 {
		t.Errorf("smoke run had %d failed requests", sum.Failed)
	}
	if sum.Shed != 0 {
		t.Errorf("smoke run had %d shed requests (node should be far from capacity)", sum.Shed)
	}
	if sum.ClientDropped != 0 {
		t.Errorf("smoke run client-dropped %d arrivals", sum.ClientDropped)
	}
	for op, st := range sum.Ops {
		if st.FirstErr != "" {
			t.Errorf("op %s first error: %s", op, st.FirstErr)
		}
	}
	// Every op in the mix must actually have been exercised.
	for _, op := range []string{OpPublish, OpRelay, OpVote, OpSearch, OpBlobRead} {
		if sum.Ops[op].Count == 0 {
			t.Errorf("op %s never ran in a %d-arrival run", op, sum.Offered)
		}
	}
	if sum.OK < sum.Offered*9/10 {
		t.Errorf("only %d/%d arrivals succeeded", sum.OK, sum.Offered)
	}
	// The serving path must have produced admission telemetry.
	metrics, err := NewClient(node.URL, 5*time.Second).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "trustnews_admission_accepted_total") {
		t.Error("admission metrics missing from /v1/metrics")
	}
}

func runSmoke(t *testing.T, cfg Config) Summary {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestConfigValidation pins the constructor's rejection of non-runs.
func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	base.BaseURL = "http://127.0.0.1:1"
	base.Rate = 10
	base.Duration = time.Second
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no url", func(c *Config) { c.BaseURL = "" }},
		{"zero rate", func(c *Config) { c.Rate = 0 }},
		{"negative rate", func(c *Config) { c.Rate = -5 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"zero inflight", func(c *Config) { c.MaxInFlight = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("want construction error")
			}
		})
	}
}

// TestPercentile pins the nearest-rank math the summary reports.
func TestPercentile(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(ds, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %s", got)
	}
	if got := percentile(ds, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %s", got)
	}
	if got := percentile(ds, 0.999); got != 100*time.Millisecond {
		t.Errorf("p999 = %s", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %s", got)
	}
}
