package loadgen

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/ledger"
)

// Client is the thin HTTP client the generator drives against one
// trustnewsd node. It speaks only the public /v1 API — the generator
// has no in-process shortcut into the node, so measured latencies
// include the full serving path.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the node at base (e.g.
// "http://127.0.0.1:8420"). Request timeouts are the caller's job: an
// open-loop generator must bound every request or a stalled node would
// pile up goroutines without limit.
func NewClient(base string, timeout time.Duration) *Client {
	return &Client{
		base: base,
		http: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Outcome classifies one request for the scoreboard.
type Outcome int

const (
	// OutcomeOK is a successful request (2xx).
	OutcomeOK Outcome = iota
	// OutcomeShed is a capacity refusal (429): the node protected
	// itself exactly as designed. Shed requests are not failures.
	OutcomeShed
	// OutcomeFailed is everything else — unexpected status codes,
	// transport errors, timeouts.
	OutcomeFailed
)

// statusOutcome maps an HTTP status to an Outcome.
func statusOutcome(code int) Outcome {
	switch {
	case code >= 200 && code < 300:
		return OutcomeOK
	case code == http.StatusTooManyRequests:
		return OutcomeShed
	default:
		return OutcomeFailed
	}
}

// submitRequest mirrors httpapi's POST /v1/tx body.
type submitRequest struct {
	TxHex string `json:"txHex"`
}

// SubmitTx signs nothing — tx arrives pre-signed — and posts it. The
// returned outcome distinguishes accepted (OK), shed (429), and failed.
func (c *Client) SubmitTx(tx *ledger.Tx) (Outcome, error) {
	body, err := json.Marshal(submitRequest{TxHex: hex.EncodeToString(tx.Encode())})
	if err != nil {
		return OutcomeFailed, err
	}
	resp, err := c.http.Post(c.base+"/v1/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		return OutcomeFailed, err
	}
	defer drain(resp)
	out := statusOutcome(resp.StatusCode)
	if out == OutcomeFailed {
		return out, fmt.Errorf("POST /v1/tx: status %d", resp.StatusCode)
	}
	return out, nil
}

// blobPutResponse mirrors httpapi's POST /v1/blobs response.
type blobPutResponse struct {
	CID  string `json:"cid"`
	Size int    `json:"size"`
}

// UploadBlob stores an article body off-chain and returns its content
// id — the remote half of off-chain publishing.
func (c *Client) UploadBlob(body string) (string, Outcome, error) {
	resp, err := c.http.Post(c.base+"/v1/blobs", "text/plain", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", OutcomeFailed, err
	}
	defer drain(resp)
	out := statusOutcome(resp.StatusCode)
	if out != OutcomeOK {
		if out == OutcomeShed {
			return "", out, nil
		}
		return "", out, fmt.Errorf("POST /v1/blobs: status %d", resp.StatusCode)
	}
	var pr blobPutResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return "", OutcomeFailed, err
	}
	return pr.CID, OutcomeOK, nil
}

// ReadBlob fetches a blob by content id, discarding the body (the
// generator measures the serving path, it does not use the content).
func (c *Client) ReadBlob(cid string) (Outcome, error) {
	return c.get("/v1/blobs/" + cid)
}

// searchPage mirrors the shape httpapi returns for GET /v1/search (a
// search.Page). The generator decodes it — rather than draining blind —
// so a response-shape regression surfaces as a loadgen failure.
type searchPage struct {
	Total   int `json:"total"`
	Offset  int `json:"offset"`
	Results []struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	} `json:"results"`
}

// Search runs a ranked keyword query against the committed article
// index and returns the hit count. ranker selects the scoring function
// ("" lets the node default to BM25).
func (c *Client) Search(query string, limit int, ranker string) (int, Outcome, error) {
	path := "/v1/search?q=" + url.QueryEscape(query) + fmt.Sprintf("&limit=%d", limit)
	if ranker != "" {
		path += "&ranker=" + url.QueryEscape(ranker)
	}
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return 0, OutcomeFailed, err
	}
	defer drain(resp)
	out := statusOutcome(resp.StatusCode)
	if out != OutcomeOK {
		if out == OutcomeShed {
			return 0, out, nil
		}
		return 0, out, fmt.Errorf("GET /v1/search: status %d", resp.StatusCode)
	}
	var page searchPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return 0, OutcomeFailed, fmt.Errorf("GET /v1/search: decode: %w", err)
	}
	return page.Total, OutcomeOK, nil
}

// ingestRequest mirrors httpapi's POST /v1/ingest body.
type ingestRequest struct {
	Source string `json:"source"`
	Topic  string `json:"topic"`
	Text   string `json:"text"`
}

// Ingest enqueues one article into the node's ingestion pipeline. A 202
// means durably queued (publication is asynchronous); 429 means the
// ingest gate or the queue itself shed the article.
func (c *Client) Ingest(source, topic, text string) (Outcome, error) {
	body, err := json.Marshal(ingestRequest{Source: source, Topic: topic, Text: text})
	if err != nil {
		return OutcomeFailed, err
	}
	resp, err := c.http.Post(c.base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return OutcomeFailed, err
	}
	defer drain(resp)
	out := statusOutcome(resp.StatusCode)
	if out == OutcomeFailed {
		return out, fmt.Errorf("POST /v1/ingest: status %d", resp.StatusCode)
	}
	return out, nil
}

// get issues a GET, drains the body, and classifies the status.
func (c *Client) get(path string) (Outcome, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return OutcomeFailed, err
	}
	defer drain(resp)
	out := statusOutcome(resp.StatusCode)
	if out == OutcomeFailed {
		return out, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return out, nil
}

// accountResponse carries the one field the generator needs from
// GET /v1/accounts/{addr}: the chain's next expected nonce.
type accountResponse struct {
	Nonce uint64 `json:"nonce"`
}

// NextNonce asks the node for the next expected nonce of addr, used to
// (re)synchronize a sender after an unexpected submit failure.
func (c *Client) NextNonce(addr string) (uint64, error) {
	resp, err := c.http.Get(c.base + "/v1/accounts/" + addr)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/accounts/%s: status %d", addr, resp.StatusCode)
	}
	var ar accountResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, err
	}
	return ar.Nonce, nil
}

// Healthz mirrors httpapi's readiness report. The ingest fields are
// pointers because a node without an attached pipeline omits them.
type Healthz struct {
	Ready          bool   `json:"ready"`
	Height         uint64 `json:"height"`
	MempoolDepth   int    `json:"mempoolDepth"`
	Consensus      string `json:"consensus"`
	IndexerLagDocs int    `json:"indexerLagDocs"`
	IngestQueue    *int   `json:"ingestQueueDepth,omitempty"`
	IngestDead     *int   `json:"ingestDead,omitempty"`
}

// Healthz fetches the node's readiness report.
func (c *Client) Healthz() (Healthz, error) {
	var hz Healthz
	resp, err := c.http.Get(c.base + "/v1/healthz")
	if err != nil {
		return hz, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("GET /v1/healthz: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	return hz, err
}

// WaitReady polls /v1/healthz until the node answers ready or the
// deadline passes. Load generators and test harnesses use this instead
// of sleeping an arbitrary interval after process start.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hz, err := c.Healthz()
		if err == nil && hz.Ready {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("node not ready")
			}
			return fmt.Errorf("loadgen: node at %s not ready after %s: %w", c.base, timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// WaitDrained polls until the mempool is empty and at least minHeight
// blocks are committed — the setup phase uses it to ensure seed
// articles and mints are executed before measurement traffic starts.
func (c *Client) WaitDrained(minHeight uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hz, err := c.Healthz()
		if err == nil && hz.MempoolDepth == 0 && hz.Height >= minHeight {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: node at %s did not drain (height %d/%d, mempool %d) after %s",
				c.base, hz.Height, minHeight, hz.MempoolDepth, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Metrics fetches the raw Prometheus exposition from /v1/metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	return string(raw), nil
}

// drain empties and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
