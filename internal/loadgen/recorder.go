package loadgen

import (
	"sort"
	"sync"
	"time"
)

// recorder accumulates per-operation outcomes and latencies during a
// run. One mutex over plain slices is deliberate: at the rates a single
// node sustains (thousands of requests per second) the critical section
// is tens of nanoseconds and never the bottleneck, and keeping raw
// samples gives exact percentiles instead of histogram-bucket bounds.
type recorder struct {
	mu  sync.Mutex
	ops map[string]*opRecord
}

type opRecord struct {
	ok        int
	shed      int
	failed    int
	latencies []time.Duration // successful requests only
	firstErr  string
}

func newRecorder() *recorder {
	return &recorder{ops: make(map[string]*opRecord)}
}

// record files one completed request under its operation name.
func (r *recorder) record(op string, out Outcome, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.ops[op]
	if rec == nil {
		rec = &opRecord{}
		r.ops[op] = rec
	}
	switch out {
	case OutcomeOK:
		rec.ok++
		rec.latencies = append(rec.latencies, d)
	case OutcomeShed:
		rec.shed++
	default:
		rec.failed++
		if rec.firstErr == "" && err != nil {
			rec.firstErr = err.Error()
		}
	}
}

// OpStats is the per-operation scoreboard in the run summary.
type OpStats struct {
	Count    int     `json:"count"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Failed   int     `json:"failed"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	MeanMs   float64 `json:"mean_ms"`
	FirstErr string  `json:"first_error,omitempty"`
}

// Summary is the machine-readable result of one run. Goodput counts
// only successful requests; shed requests are the node's admission
// control working as designed and are reported separately from
// failures, which are protocol or transport errors.
type Summary struct {
	OfferedRate   float64 `json:"offered_rate"`   // requested arrivals/s
	WallSeconds   float64 `json:"wall_seconds"`   // measured span
	Offered       int     `json:"offered"`        // scheduled arrivals
	Sent          int     `json:"sent"`           // arrivals dispatched
	ClientDropped int     `json:"client_dropped"` // arrivals dropped at the in-flight cap
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	Failed        int     `json:"failed"`
	GoodputPerSec float64 `json:"goodput_per_sec"` // OK / wall
	ShedRate      float64 `json:"shed_rate"`       // (Shed+ClientDropped) / Offered

	Ops map[string]OpStats `json:"ops"`
}

// summarize freezes the recorder into a Summary.
func (r *recorder) summarize(offeredRate float64, offered, sent, dropped int, wall time.Duration) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		OfferedRate:   offeredRate,
		WallSeconds:   wall.Seconds(),
		Offered:       offered,
		Sent:          sent,
		ClientDropped: dropped,
		Ops:           make(map[string]OpStats, len(r.ops)),
	}
	for op, rec := range r.ops {
		st := OpStats{
			Count:    rec.ok + rec.shed + rec.failed,
			OK:       rec.ok,
			Shed:     rec.shed,
			Failed:   rec.failed,
			FirstErr: rec.firstErr,
		}
		if len(rec.latencies) > 0 {
			sorted := append([]time.Duration(nil), rec.latencies...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			st.P50Ms = percentile(sorted, 0.50).Seconds() * 1e3
			st.P99Ms = percentile(sorted, 0.99).Seconds() * 1e3
			st.P999Ms = percentile(sorted, 0.999).Seconds() * 1e3
			var sum time.Duration
			for _, d := range sorted {
				sum += d
			}
			st.MeanMs = sum.Seconds() / float64(len(sorted)) * 1e3
		}
		s.Ops[op] = st
		s.OK += rec.ok
		s.Shed += rec.shed
		s.Failed += rec.failed
	}
	if wall > 0 {
		s.GoodputPerSec = float64(s.OK) / wall.Seconds()
	}
	if offered > 0 {
		s.ShedRate = float64(s.Shed+dropped) / float64(offered)
	}
	return s
}

// percentile reads the pth quantile (0..1) from an ascending slice
// using the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
