package commitbus

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// recorder is a test subscriber accumulating the heights it saw.
type recorder struct {
	mu      sync.Mutex
	name    string
	heights []uint64
	failAt  map[uint64]error
}

func newRecorder(name string) *recorder {
	return &recorder{name: name, failAt: make(map[uint64]error)}
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) OnCommit(ev CommitEvent) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err, ok := r.failAt[ev.Height]; ok {
		return err
	}
	r.heights = append(r.heights, ev.Height)
	return nil
}

func (r *recorder) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Marshal(r.heights)
}

func (r *recorder) Restore(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.heights = nil
	if len(data) == 0 {
		return nil
	}
	return json.Unmarshal(data, &r.heights)
}

func (r *recorder) seen() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.heights...)
}

func publishN(t *testing.T, b *Bus, n int) {
	t.Helper()
	for h := 0; h < n; h++ {
		if err := b.Publish(CommitEvent{Height: uint64(h)}); err != nil {
			t.Fatalf("publish height %d: %v", h, err)
		}
	}
}

func TestBusOrderedDelivery(t *testing.T) {
	b := New()
	r1, r2 := newRecorder("a"), newRecorder("b")
	if err := b.Register(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(r2); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, 5)
	for _, r := range []*recorder{r1, r2} {
		got := r.seen()
		if len(got) != 5 {
			t.Fatalf("%s saw %d events", r.name, len(got))
		}
		for i, h := range got {
			if h != uint64(i) {
				t.Fatalf("%s out of order: %v", r.name, got)
			}
		}
	}
	if head, ok := b.Head(); !ok || head != 4 {
		t.Fatalf("head=%d ok=%v", head, ok)
	}
}

func TestBusRejectsDuplicateName(t *testing.T) {
	b := New()
	if err := b.Register(newRecorder("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(newRecorder("x")); !errors.Is(err, ErrDuplicateSubscriber) {
		t.Fatalf("err=%v want ErrDuplicateSubscriber", err)
	}
}

func TestBusRejectsOutOfOrder(t *testing.T) {
	b := New()
	if err := b.Publish(CommitEvent{Height: 3}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("first publish at height 3: err=%v", err)
	}
	publishN(t, b, 2)
	if err := b.Publish(CommitEvent{Height: 3}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap accepted: err=%v", err)
	}
	if err := b.Publish(CommitEvent{Height: 1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replayed height accepted: err=%v", err)
	}
}

func TestBusErrorAndLagAccounting(t *testing.T) {
	b := New()
	bad := newRecorder("bad")
	bad.failAt[1] = errors.New("index wedged")
	good := newRecorder("good")
	if err := b.Register(bad); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(good); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(CommitEvent{Height: 0}); err != nil {
		t.Fatal(err)
	}
	err := b.Publish(CommitEvent{Height: 1})
	if err == nil || !strings.Contains(err.Error(), "index wedged") {
		t.Fatalf("subscriber error not surfaced: %v", err)
	}
	// A failing subscriber must not block others.
	if got := good.seen(); len(got) != 2 {
		t.Fatalf("good subscriber starved: %v", got)
	}
	if err := b.Publish(CommitEvent{Height: 2}); err != nil {
		t.Fatal(err)
	}
	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats len=%d", len(stats))
	}
	if s := stats[0]; s.Name != "bad" || s.Delivered != 2 || s.Errors != 1 || s.Lag != 1 ||
		s.LastHeight != 2 || !strings.Contains(s.LastError, "index wedged") {
		t.Fatalf("bad stats: %+v", s)
	}
	if s := stats[1]; s.Delivered != 3 || s.Errors != 0 || s.Lag != 0 || s.LastHeight != 2 {
		t.Fatalf("good stats: %+v", s)
	}
}

func TestBusSnapshotRestoreRoundtrip(t *testing.T) {
	b := New()
	r := newRecorder("r")
	if err := b.Register(r); err != nil {
		t.Fatal(err)
	}
	publishN(t, b, 4)
	blobs, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh bus + subscriber restored from the snapshot resumes at the
	// snapshot height.
	b2 := New()
	r2 := newRecorder("r")
	if err := b2.Register(r2); err != nil {
		t.Fatal(err)
	}
	if err := b2.Restore(blobs, 4); err != nil {
		t.Fatal(err)
	}
	if got := r2.seen(); len(got) != 4 {
		t.Fatalf("restored state: %v", got)
	}
	if err := b2.Publish(CommitEvent{Height: 3}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("pre-restore height accepted: %v", err)
	}
	if err := b2.Publish(CommitEvent{Height: 4}); err != nil {
		t.Fatal(err)
	}
	if got := r2.seen(); len(got) != 5 || got[4] != 4 {
		t.Fatalf("tail replay after restore: %v", got)
	}
	// Restore counters were reset: only the tail counts as delivered.
	if s := b2.Stats()[0]; s.Delivered != 1 || s.Lag != 0 {
		t.Fatalf("post-restore stats: %+v", s)
	}
}

func TestBusRestoreRejectsMissingSubscriber(t *testing.T) {
	b := New()
	if err := b.Register(newRecorder("present")); err != nil {
		t.Fatal(err)
	}
	err := b.Restore(map[string][]byte{"other": nil}, 1)
	if !errors.Is(err, ErrUnknownSubscriber) {
		t.Fatalf("err=%v want ErrUnknownSubscriber", err)
	}
}

// TestBusConcurrentStatsReads exercises Stats/Head/Snapshot racing with
// Publish (run under -race in tier-1).
func TestBusConcurrentStatsReads(t *testing.T) {
	b := New()
	r := newRecorder("r")
	if err := b.Register(r); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = b.Stats()
			_, _ = b.Head()
			_, _ = b.Snapshot()
		}
	}()
	for h := 0; h < 200; h++ {
		if err := b.Publish(CommitEvent{Height: uint64(h)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
