// Package commitbus is the event-sourced seam between block commitment
// and everything derived from it. The paper's Fig. 1 platform derives all
// three mechanism inputs — the factual database (C1), the news
// supply-chain graph (C2) and the reputation-weighted ranking books (C3)
// — from the transaction ledger; this package turns that derivation into
// an explicit, typed pipeline: every committed block is published as one
// CommitEvent, and each derived index registers as a Subscriber.
//
// Delivery is strictly ordered: events are published in chain order and
// each subscriber sees them in registration order within an event. The
// bus keeps per-subscriber delivery, error and lag accounting, so an
// index that falls behind (a subscriber returning errors) is observable
// rather than silently wrong. Subscribers also implement Snapshot and
// Restore, which is what makes durable-node checkpointing possible: a
// checkpoint is the chain height plus every subscriber's snapshot, and a
// restart restores the snapshots and replays only the WAL tail instead
// of the whole chain (see internal/store and platform.Open).
package commitbus

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/contract"
	"repro/internal/ledger"
	"repro/internal/telemetry"
)

// Errors returned by this package.
var (
	// ErrDuplicateSubscriber indicates a second registration of a name.
	ErrDuplicateSubscriber = errors.New("commitbus: duplicate subscriber")
	// ErrUnknownSubscriber indicates a restore blob for no registered
	// subscriber, or a registered subscriber with no blob.
	ErrUnknownSubscriber = errors.New("commitbus: unknown subscriber")
	// ErrOutOfOrder indicates a publish whose height is not head+1.
	ErrOutOfOrder = errors.New("commitbus: commit event out of order")
)

// CommitEvent is one committed block and everything execution produced
// for it: the transactions, their receipts, and (inside the receipts) the
// contract events the derived indexes consume.
type CommitEvent struct {
	// Height is the committed block's height.
	Height uint64
	// Block is the committed block (header + txs).
	Block *ledger.Block
	// Receipts holds one execution receipt per transaction, in order.
	Receipts []contract.Receipt
}

// Subscriber consumes ordered commit events and supports checkpointing.
// OnCommit is invoked with the platform commit lock held, in chain order;
// implementations must not re-enter the bus.
type Subscriber interface {
	// Name identifies the subscriber (stable across restarts: it keys the
	// snapshot blob inside a checkpoint).
	Name() string
	// OnCommit applies one committed block. An error is recorded in the
	// bus stats (the subscriber lags) but does not stop delivery to
	// others.
	OnCommit(ev CommitEvent) error
	// Snapshot serializes the subscriber's derived state.
	Snapshot() ([]byte, error)
	// Restore replaces the subscriber's state from a Snapshot blob.
	Restore(data []byte) error
}

// SubscriberStats is the observable health of one subscriber.
type SubscriberStats struct {
	Name string `json:"name"`
	// Delivered counts successfully applied events.
	Delivered uint64 `json:"delivered"`
	// Errors counts failed OnCommit calls.
	Errors uint64 `json:"errors"`
	// Lag is the number of published events the subscriber has not
	// successfully applied (errors since the last restore point).
	Lag uint64 `json:"lag"`
	// LastHeight is the height of the last successfully applied event.
	LastHeight uint64 `json:"lastHeight"`
	// LastError is the most recent OnCommit error, if any.
	LastError string `json:"lastError,omitempty"`
}

// entry is one registered subscriber plus its accounting. The registry
// instruments (nil until Bus.Instrument) carry the same counts as the
// plain fields — the fields feed the JSON Stats API, the instruments
// feed /v1/metrics — plus the per-subscriber handle-time histogram that
// only exists registry-side.
type entry struct {
	sub        Subscriber
	delivered  uint64
	errors     uint64
	lastHeight uint64
	lastErr    string

	tmDelivered *telemetry.Counter
	tmErrors    *telemetry.Counter
	tmHandleSec *telemetry.Histogram
	tmLag       *telemetry.Gauge
}

// Bus fans committed blocks out to registered subscribers.
type Bus struct {
	mu     sync.RWMutex
	subs   []*entry
	byName map[string]*entry
	// events counts publishes since creation or the last Restore.
	events uint64
	// head is the height of the last published (or restored-to) event.
	head uint64
	// primed reports whether head is meaningful (at least one publish or
	// restore happened); it disambiguates height 0.
	primed bool

	// Registry-backed accounting (see Instrument).
	tmEvents    *telemetry.Counter
	tmDelivered *telemetry.CounterVec
	tmErrors    *telemetry.CounterVec
	tmHandleSec *telemetry.HistogramVec
	tmLag       *telemetry.GaugeVec
}

// New creates an empty bus.
func New() *Bus {
	return &Bus{byName: make(map[string]*entry)}
}

// Instrument registers the bus's per-subscriber delivery accounting on
// reg (nil disables): delivered/error counters, the handle-time
// histogram, and a lag gauge, all labeled by subscriber name. Call
// before or after Register, in either order, but before the first
// Publish.
func (b *Bus) Instrument(reg *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tmEvents = reg.Counter("trustnews_commitbus_events_total", "Commit events published to the bus.")
	b.tmDelivered = reg.CounterVec("trustnews_commitbus_delivered_total", "Commit events successfully applied, by subscriber.", "subscriber")
	b.tmErrors = reg.CounterVec("trustnews_commitbus_errors_total", "Failed OnCommit calls, by subscriber.", "subscriber")
	b.tmHandleSec = reg.HistogramVec("trustnews_commitbus_handle_seconds", "OnCommit handle time, by subscriber.", nil, "subscriber")
	b.tmLag = reg.GaugeVec("trustnews_commitbus_lag", "Published events not yet successfully applied, by subscriber.", "subscriber")
	for _, e := range b.subs {
		b.bindEntryMetrics(e)
	}
}

// bindEntryMetrics caches one subscriber's instrument handles so the
// Publish hot path never touches the labeled-family maps. Caller holds
// b.mu; a no-op before Instrument.
func (b *Bus) bindEntryMetrics(e *entry) {
	name := e.sub.Name()
	e.tmDelivered = b.tmDelivered.With(name)
	e.tmErrors = b.tmErrors.With(name)
	e.tmHandleSec = b.tmHandleSec.With(name)
	e.tmLag = b.tmLag.With(name)
}

// Register adds a subscriber. Delivery order follows registration order.
func (b *Bus) Register(s Subscriber) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.byName[s.Name()]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateSubscriber, s.Name())
	}
	e := &entry{sub: s}
	b.bindEntryMetrics(e)
	b.subs = append(b.subs, e)
	b.byName[s.Name()] = e
	return nil
}

// Subscribers returns the registered names in delivery order.
func (b *Bus) Subscribers() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, len(b.subs))
	for i, e := range b.subs {
		out[i] = e.sub.Name()
	}
	return out
}

// Publish delivers one commit event to every subscriber in registration
// order. Events must arrive in chain order (height head+1); the first
// out-of-order event is rejected before any delivery. Subscriber errors
// do not stop delivery to later subscribers; they are recorded in the
// stats and joined into the returned error.
func (b *Bus) Publish(ev CommitEvent) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.primed && ev.Height != b.head+1 {
		return fmt.Errorf("%w: got height %d want %d", ErrOutOfOrder, ev.Height, b.head+1)
	}
	if !b.primed && ev.Height != 0 {
		return fmt.Errorf("%w: got height %d want 0", ErrOutOfOrder, ev.Height)
	}
	b.events++
	b.head = ev.Height
	b.primed = true
	b.tmEvents.Inc()
	var errs []error
	for _, e := range b.subs {
		var err error
		if e.tmHandleSec != nil {
			start := time.Now()
			err = e.sub.OnCommit(ev)
			e.tmHandleSec.Observe(time.Since(start).Seconds())
		} else {
			err = e.sub.OnCommit(ev)
		}
		if err != nil {
			e.errors++
			e.lastErr = err.Error()
			e.tmErrors.Inc()
			e.tmLag.Set(float64(b.events - e.delivered))
			errs = append(errs, fmt.Errorf("commitbus: %s at height %d: %w", e.sub.Name(), ev.Height, err))
			continue
		}
		e.delivered++
		e.lastHeight = ev.Height
		e.tmDelivered.Inc()
		e.tmLag.Set(float64(b.events - e.delivered))
	}
	return errors.Join(errs...)
}

// Head returns the height of the last published event and whether any
// event has been published (or restored to) yet.
func (b *Bus) Head() (uint64, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.head, b.primed
}

// Stats returns a snapshot of per-subscriber accounting in delivery
// order.
func (b *Bus) Stats() []SubscriberStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]SubscriberStats, 0, len(b.subs))
	for _, e := range b.subs {
		out = append(out, SubscriberStats{
			Name:       e.sub.Name(),
			Delivered:  e.delivered,
			Errors:     e.errors,
			Lag:        b.events - e.delivered,
			LastHeight: e.lastHeight,
			LastError:  e.lastErr,
		})
	}
	return out
}

// Snapshot serializes every subscriber's state, keyed by name. The caller
// must ensure no Publish runs concurrently (the platform holds its commit
// lock), so the blobs form one consistent cut of the derived state.
func (b *Bus) Snapshot() (map[string][]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string][]byte, len(b.subs))
	for _, e := range b.subs {
		blob, err := e.sub.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("commitbus: snapshot %s: %w", e.sub.Name(), err)
		}
		out[e.sub.Name()] = blob
	}
	return out, nil
}

// Restore replaces every subscriber's state from a Snapshot map taken at
// the given chain height (the number of blocks the snapshot covers).
// Every registered subscriber must have a blob — a checkpoint written by
// a node with a different subscriber set is rejected so the caller can
// fall back to full replay. On success the accounting is reset and the
// bus accepts the next publish at exactly height `height`.
func (b *Bus) Restore(blobs map[string][]byte, height uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.subs {
		if _, ok := blobs[e.sub.Name()]; !ok {
			return fmt.Errorf("%w: no snapshot for %s", ErrUnknownSubscriber, e.sub.Name())
		}
	}
	for _, e := range b.subs {
		if err := e.sub.Restore(blobs[e.sub.Name()]); err != nil {
			return fmt.Errorf("commitbus: restore %s: %w", e.sub.Name(), err)
		}
	}
	b.events = 0
	if height == 0 {
		b.head, b.primed = 0, false
	} else {
		b.head, b.primed = height-1, true
	}
	for _, e := range b.subs {
		e.delivered, e.errors, e.lastErr = 0, 0, ""
		e.tmLag.Set(0)
		if height > 0 {
			e.lastHeight = height - 1
		} else {
			e.lastHeight = 0
		}
	}
	return nil
}
