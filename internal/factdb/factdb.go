// Package factdb implements the factual news database — contribution (1)
// of the paper and "the ground truth and corner stone" of the system (§VI).
//
// The database is a smart contract: records can only enter through (a) the
// genesis seeding path, standing in for "the library of speech records of
// law makers, and the official speech records of presidents and public
// figures", or (b) the promotion path, which admits a news item once the
// crowd-sourced ranking certifies it (experiment E9 sweeps the promotion
// threshold). Records are immutable ("managed by the blockchain smart
// contract for security and no one can modify") and anchored under a Merkle
// accumulator so clients can cheaply verify the root.
//
// The Go-side Index supports the trace-back query the supply-chain graph
// needs: does a given statement match (exactly or approximately) a fact?
package factdb

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/merkle"
)

// ContractName routes factdb transactions.
const ContractName = "factdb"

// Errors returned by this package.
var (
	// ErrNotAuthority indicates a seed/promote from a non-authority.
	ErrNotAuthority = errors.New("factdb: sender is not a fact authority")
	// ErrDuplicateFact indicates a fact with an already-stored content hash.
	ErrDuplicateFact = errors.New("factdb: duplicate fact")
	// ErrFactNotFound indicates a lookup miss.
	ErrFactNotFound = errors.New("factdb: fact not found")
	// ErrBelowThreshold indicates a promotion with insufficient score.
	ErrBelowThreshold = errors.New("factdb: score below promotion threshold")
)

// Fact is one ground-truth record.
type Fact struct {
	ID     string       `json:"id"`
	Topic  corpus.Topic `json:"topic"`
	Text   string       `json:"text"`
	Source string       `json:"source"` // e.g. "official-record", "promoted"
	Height uint64       `json:"height"`
	// Score is the certification score at promotion time (1.0 for seeds).
	Score float64 `json:"score"`
}

// ContentKey returns the deduplication key for a fact text: the hex SHA-256
// of its token-normalized form (so trivial punctuation edits do not create
// "new" facts).
func ContentKey(text string) string {
	toks := corpus.Tokenize(text)
	h := sha256.New()
	for _, t := range toks {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// seedArgs is the payload of factdb.seed and factdb.promote.
type seedArgs struct {
	ID    string       `json:"id"`
	Topic corpus.Topic `json:"topic"`
	Text  string       `json:"text"`
	Score float64      `json:"score"`
}

// Contract is the factual-database chaincode.
type Contract struct {
	// Genesis may seed official records.
	Genesis keys.Address
	// RankAuthority may promote ranked news (the platform's ranking
	// contract acts through this account).
	RankAuthority keys.Address
	// PromoteThreshold is the minimum certification score (default 0.9).
	PromoteThreshold float64
}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (c *Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c *Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "seed":
		if ctx.Sender != c.Genesis {
			return nil, fmt.Errorf("%w: %s", ErrNotAuthority, ctx.Sender.Short())
		}
		return c.add(ctx, args, "official-record", 1.0, 0)
	case "promote":
		if ctx.Sender != c.Genesis && ctx.Sender != c.RankAuthority {
			return nil, fmt.Errorf("%w: %s", ErrNotAuthority, ctx.Sender.Short())
		}
		thr := c.PromoteThreshold
		if thr == 0 {
			thr = 0.9
		}
		return c.add(ctx, args, "promoted", -1, thr)
	case "get":
		return c.get(ctx, args)
	case "has":
		return c.has(ctx, args)
	case "list":
		return c.list(ctx)
	case "count":
		return c.count(ctx)
	default:
		return nil, fmt.Errorf("%w: factdb.%s", contract.ErrUnknownMethod, method)
	}
}

func (c *Contract) add(ctx *contract.Context, args []byte, source string, forceScore, threshold float64) ([]byte, error) {
	var in seedArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("factdb: args: %w", err)
	}
	if in.Text == "" {
		return nil, errors.New("factdb: empty text")
	}
	score := in.Score
	if forceScore >= 0 {
		score = forceScore
	}
	if score < threshold {
		return nil, fmt.Errorf("%w: %.3f < %.3f", ErrBelowThreshold, score, threshold)
	}
	key := "fact/" + ContentKey(in.Text)
	if ok, err := ctx.Has(key); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateFact, in.ID)
	}
	f := Fact{ID: in.ID, Topic: in.Topic, Text: in.Text, Source: source, Height: ctx.Height, Score: score}
	raw, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("factdb: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	if err := ctx.Emit("fact_added", map[string]string{
		"id": f.ID, "source": source, "topic": string(f.Topic), "contentKey": ContentKey(in.Text),
	}); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c *Contract) get(ctx *contract.Context, args []byte) ([]byte, error) {
	raw, err := ctx.Get("fact/" + string(args))
	if err != nil {
		return nil, fmt.Errorf("%w: key %s", ErrFactNotFound, string(args))
	}
	return raw, nil
}

func (c *Contract) has(ctx *contract.Context, args []byte) ([]byte, error) {
	ok, err := ctx.Has("fact/" + ContentKey(string(args)))
	if err != nil {
		return nil, err
	}
	if ok {
		return []byte("1"), nil
	}
	return []byte("0"), nil
}

func (c *Contract) list(ctx *contract.Context) ([]byte, error) {
	ks, err := ctx.Keys("fact/")
	if err != nil {
		return nil, err
	}
	facts := make([]Fact, 0, len(ks))
	for _, k := range ks {
		raw, err := ctx.Get(k)
		if err != nil {
			return nil, err
		}
		var f Fact
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("factdb: unmarshal %s: %w", k, err)
		}
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].ID < facts[j].ID })
	return json.Marshal(facts)
}

func (c *Contract) count(ctx *contract.Context) ([]byte, error) {
	ks, err := ctx.Keys("fact/")
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%d", len(ks))), nil
}

// ---------------------------------------------------------------------------
// Client helpers.
// ---------------------------------------------------------------------------

// SeedPayload builds a factdb.seed payload.
func SeedPayload(id string, topic corpus.Topic, text string) ([]byte, error) {
	return json.Marshal(seedArgs{ID: id, Topic: topic, Text: text})
}

// PromotePayload builds a factdb.promote payload with the certification
// score assigned by the ranking mechanism.
func PromotePayload(id string, topic corpus.Topic, text string, score float64) ([]byte, error) {
	return json.Marshal(seedArgs{ID: id, Topic: topic, Text: text, Score: score})
}

// List returns all facts through a query.
func List(e *contract.Engine, asker keys.Address) ([]Fact, error) {
	raw, err := e.Query(asker, ContractName+".list", nil)
	if err != nil {
		return nil, err
	}
	var facts []Fact
	if err := json.Unmarshal(raw, &facts); err != nil {
		return nil, fmt.Errorf("factdb: decode list: %w", err)
	}
	return facts, nil
}

// Has reports whether a text matches a stored fact exactly (after token
// normalization).
func Has(e *contract.Engine, asker keys.Address, text string) (bool, error) {
	raw, err := e.Query(asker, ContractName+".has", []byte(text))
	if err != nil {
		return false, err
	}
	return string(raw) == "1", nil
}

// ---------------------------------------------------------------------------
// Index: similarity search + Merkle anchoring for trace-back.
// ---------------------------------------------------------------------------

// Match is a similarity hit against the factual database.
type Match struct {
	Fact       Fact
	Similarity float64 // token Jaccard in [0,1]; 1 = identical token set
}

// Index is an in-memory similarity index over facts, rebuilt from contract
// state. It also maintains the Merkle accumulator root over fact contents.
type Index struct {
	mu    sync.RWMutex
	facts []Fact
	// token -> fact positions (inverted index).
	inverted map[string][]int
	tokens   [][]string
	acc      *merkle.Accumulator
	seen     map[string]bool
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		inverted: make(map[string][]int),
		acc:      merkle.NewAccumulator(),
		seen:     make(map[string]bool),
	}
}

// Add inserts a fact (idempotent by content key).
func (ix *Index) Add(f Fact) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key := ContentKey(f.Text)
	if ix.seen[key] {
		return
	}
	ix.seen[key] = true
	pos := len(ix.facts)
	ix.facts = append(ix.facts, f)
	toks := uniqueTokens(f.Text)
	ix.tokens = append(ix.tokens, toks)
	for _, t := range toks {
		ix.inverted[t] = append(ix.inverted[t], pos)
	}
	ix.acc.Add([]byte(key))
}

// Facts returns the indexed facts in insertion order (the checkpoint
// snapshot format: re-adding them in order reproduces the accumulator).
func (ix *Index) Facts() []Fact {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]Fact(nil), ix.facts...)
}

// Reset replaces the index contents with the given facts, added in order.
func (ix *Index) Reset(facts []Fact) {
	ix.mu.Lock()
	ix.facts = nil
	ix.inverted = make(map[string][]int)
	ix.tokens = nil
	ix.acc = merkle.NewAccumulator()
	ix.seen = make(map[string]bool)
	ix.mu.Unlock()
	for _, f := range facts {
		ix.Add(f)
	}
}

// Rebuild loads every fact from the engine into a fresh index.
func Rebuild(e *contract.Engine, asker keys.Address) (*Index, error) {
	facts, err := List(e, asker)
	if err != nil {
		return nil, err
	}
	ix := NewIndex()
	for _, f := range facts {
		ix.Add(f)
	}
	return ix, nil
}

// Len returns the number of facts indexed.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.facts)
}

// Root returns the Merkle accumulator root over fact content keys.
func (ix *Index) Root() merkle.Hash {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.acc.Root()
}

// Contains reports an exact (token-normalized) match.
func (ix *Index) Contains(text string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.seen[ContentKey(text)]
}

// BestMatch returns the closest fact by token Jaccard similarity, or
// ok=false for an empty index or zero overlap.
func (ix *Index) BestMatch(text string) (Match, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	query := uniqueTokens(text)
	if len(query) == 0 || len(ix.facts) == 0 {
		return Match{}, false
	}
	overlap := make(map[int]int)
	for _, t := range query {
		for _, pos := range ix.inverted[t] {
			overlap[pos]++
		}
	}
	best, bestSim := -1, 0.0
	// Deterministic iteration: visit positions in order.
	positions := make([]int, 0, len(overlap))
	for pos := range overlap {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		inter := overlap[pos]
		union := len(query) + len(ix.tokens[pos]) - inter
		sim := float64(inter) / float64(union)
		if sim > bestSim {
			best, bestSim = pos, sim
		}
	}
	if best < 0 {
		return Match{}, false
	}
	return Match{Fact: ix.facts[best], Similarity: bestSim}, true
}

func uniqueTokens(text string) []string {
	toks := corpus.Tokenize(text)
	seen := make(map[string]bool, len(toks))
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Similarity computes the token Jaccard similarity of two texts directly.
func Similarity(a, b string) float64 {
	ta, tb := uniqueTokens(a), uniqueTokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, t := range ta {
		set[t] = true
	}
	inter := 0
	for _, t := range tb {
		if set[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(ta)+len(tb)-inter)
}
