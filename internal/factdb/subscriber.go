package factdb

import (
	"encoding/json"
	"fmt"

	"repro/internal/commitbus"
)

// SubscriberName identifies the fact-index subscriber on the commit bus
// and keys its blob inside durable checkpoints.
const SubscriberName = "factdb-index"

// IndexSubscriber keeps a similarity Index in sync with the chain by
// consuming fact_added events from committed blocks. It replaces the
// platform's former inline indexing, so every commit path — standalone
// mining, external consensus, WAL replay — feeds the index identically.
type IndexSubscriber struct {
	Index *Index
}

var _ commitbus.Subscriber = (*IndexSubscriber)(nil)

// Name implements commitbus.Subscriber.
func (s *IndexSubscriber) Name() string { return SubscriberName }

// OnCommit implements commitbus.Subscriber: it adds every fact admitted
// in the block (seeded or promoted) to the similarity index.
func (s *IndexSubscriber) OnCommit(ev commitbus.CommitEvent) error {
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != ContractName || e.Type != "fact_added" {
				continue
			}
			var f Fact
			if err := json.Unmarshal(rec.Result, &f); err != nil {
				return fmt.Errorf("factdb: decode fact_added result: %w", err)
			}
			s.Index.Add(f)
		}
	}
	return nil
}

// Snapshot implements commitbus.Subscriber: the facts in insertion order
// (which fixes the Merkle accumulator root on restore).
func (s *IndexSubscriber) Snapshot() ([]byte, error) {
	return json.Marshal(s.Index.Facts())
}

// Restore implements commitbus.Subscriber.
func (s *IndexSubscriber) Restore(data []byte) error {
	var facts []Fact
	if len(data) > 0 {
		if err := json.Unmarshal(data, &facts); err != nil {
			return fmt.Errorf("factdb: decode index snapshot: %w", err)
		}
	}
	s.Index.Reset(facts)
	return nil
}
