package factdb

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
)

type fixture struct {
	engine  *contract.Engine
	genesis *keys.KeyPair
	ranker  *keys.KeyPair
	nonces  map[string]uint64
}

func newFixture(t *testing.T, threshold float64) *fixture {
	t.Helper()
	f := &fixture{
		genesis: keys.FromSeed([]byte("genesis")),
		ranker:  keys.FromSeed([]byte("ranker")),
		nonces:  make(map[string]uint64),
	}
	f.engine = contract.NewEngine()
	err := f.engine.Register(&Contract{
		Genesis:          f.genesis.Address(),
		RankAuthority:    f.ranker.Address(),
		PromoteThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) exec(t *testing.T, kp *keys.KeyPair, method string, payload []byte) contract.Receipt {
	t.Helper()
	key := kp.Address().String()
	tx, err := ledger.NewTx(kp, f.nonces[key], ContractName+"."+method, payload)
	if err != nil {
		t.Fatal(err)
	}
	f.nonces[key]++
	return f.engine.ExecuteTx(tx, 1)
}

func (f *fixture) seed(t *testing.T, id, text string) contract.Receipt {
	t.Helper()
	p, err := SeedPayload(id, corpus.TopicPolitics, text)
	if err != nil {
		t.Fatal(err)
	}
	return f.exec(t, f.genesis, "seed", p)
}

func TestSeedAndLookup(t *testing.T) {
	f := newFixture(t, 0.9)
	rec := f.seed(t, "f1", "the senate ratified the border treaty")
	if !rec.OK {
		t.Fatalf("seed: %+v", rec)
	}
	ok, err := Has(f.engine, f.genesis.Address(), "the senate ratified the border treaty")
	if err != nil || !ok {
		t.Fatalf("Has: %v %v", ok, err)
	}
	// Token-normalized: punctuation/case differences still match.
	ok, _ = Has(f.engine, f.genesis.Address(), "The Senate RATIFIED the border treaty!")
	if !ok {
		t.Fatal("normalized lookup failed")
	}
	ok, _ = Has(f.engine, f.genesis.Address(), "the senate rejected the border treaty")
	if ok {
		t.Fatal("different text matched")
	}
}

func TestSeedRequiresGenesis(t *testing.T) {
	f := newFixture(t, 0.9)
	p, _ := SeedPayload("f1", corpus.TopicPolitics, "text")
	rec := f.exec(t, f.ranker, "seed", p)
	if rec.OK || !strings.Contains(rec.Err, "not a fact authority") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestDuplicateSeedRejected(t *testing.T) {
	f := newFixture(t, 0.9)
	f.seed(t, "f1", "the senate ratified the border treaty")
	rec := f.seed(t, "f2", "The senate ratified the border treaty")
	if rec.OK || !strings.Contains(rec.Err, "duplicate") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestEmptyTextRejected(t *testing.T) {
	f := newFixture(t, 0.9)
	rec := f.seed(t, "f1", "")
	if rec.OK {
		t.Fatal("empty text accepted")
	}
}

func TestPromoteThreshold(t *testing.T) {
	f := newFixture(t, 0.8)
	low, _ := PromotePayload("p1", corpus.TopicHealth, "vaccine program approved", 0.5)
	rec := f.exec(t, f.ranker, "promote", low)
	if rec.OK || !strings.Contains(rec.Err, "below promotion threshold") {
		t.Fatalf("receipt: %+v", rec)
	}
	high, _ := PromotePayload("p2", corpus.TopicHealth, "vaccine program approved", 0.95)
	rec = f.exec(t, f.ranker, "promote", high)
	if !rec.OK {
		t.Fatalf("receipt: %+v", rec)
	}
	facts, err := List(f.engine, f.genesis.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].Source != "promoted" || facts[0].Score != 0.95 {
		t.Fatalf("facts=%+v", facts)
	}
}

func TestPromoteRequiresAuthority(t *testing.T) {
	f := newFixture(t, 0.5)
	outsider := keys.FromSeed([]byte("outsider"))
	p, _ := PromotePayload("p1", corpus.TopicHealth, "x y z", 0.99)
	rec := f.exec(t, outsider, "promote", p)
	if rec.OK {
		t.Fatal("outsider promoted a fact")
	}
}

func TestListSortedAndComplete(t *testing.T) {
	f := newFixture(t, 0.9)
	f.seed(t, "b", "statement two about the budget")
	f.seed(t, "a", "statement one about the treaty")
	facts, err := List(f.engine, f.genesis.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 || facts[0].ID != "a" || facts[1].ID != "b" {
		t.Fatalf("facts=%+v", facts)
	}
}

func TestIndexExactAndBestMatch(t *testing.T) {
	ix := NewIndex()
	ix.Add(Fact{ID: "f1", Text: "the central bank raised the interest rate with a margin of 61 to 20"})
	ix.Add(Fact{ID: "f2", Text: "the space agency launched the lunar probe mission"})
	if !ix.Contains("the central bank raised the interest rate with a margin of 61 to 20") {
		t.Fatal("exact match missed")
	}
	m, ok := ix.BestMatch("SHOCKING the central bank raised the interest rate with a margin of 61 to 20")
	if !ok || m.Fact.ID != "f1" {
		t.Fatalf("match=%+v ok=%v", m, ok)
	}
	if m.Similarity < 0.8 || m.Similarity >= 1 {
		t.Fatalf("similarity=%f", m.Similarity)
	}
	m2, ok := ix.BestMatch("the space agency launched the lunar probe mission")
	if !ok || m2.Fact.ID != "f2" || m2.Similarity != 1 {
		t.Fatalf("match=%+v", m2)
	}
}

func TestIndexNoOverlap(t *testing.T) {
	ix := NewIndex()
	ix.Add(Fact{ID: "f1", Text: "alpha beta gamma"})
	if _, ok := ix.BestMatch("delta epsilon zeta"); ok {
		t.Fatal("zero-overlap query matched")
	}
	if _, ok := ix.BestMatch(""); ok {
		t.Fatal("empty query matched")
	}
}

func TestIndexIdempotentAdd(t *testing.T) {
	ix := NewIndex()
	f := Fact{ID: "f1", Text: "one two three"}
	ix.Add(f)
	root1 := ix.Root()
	ix.Add(f)
	if ix.Len() != 1 {
		t.Fatalf("len=%d", ix.Len())
	}
	if ix.Root() != root1 {
		t.Fatal("idempotent add changed root")
	}
}

func TestIndexRootGrowsWithFacts(t *testing.T) {
	ix := NewIndex()
	if !ix.Root().IsZero() {
		t.Fatal("empty index root must be zero")
	}
	ix.Add(Fact{ID: "f1", Text: "one"})
	r1 := ix.Root()
	ix.Add(Fact{ID: "f2", Text: "two"})
	if ix.Root() == r1 {
		t.Fatal("root unchanged after add")
	}
}

func TestRebuildFromEngine(t *testing.T) {
	f := newFixture(t, 0.9)
	f.seed(t, "f1", "the parliament signed the transparency act")
	f.seed(t, "f2", "the health ministry approved the dietary guideline")
	ix, err := Rebuild(f.engine, f.genesis.Address())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("len=%d", ix.Len())
	}
	if !ix.Contains("the parliament signed the transparency act") {
		t.Fatal("rebuilt index missing fact")
	}
}

func TestSimilarityProperties(t *testing.T) {
	if Similarity("a b c", "a b c") != 1 {
		t.Fatal("identical texts must score 1")
	}
	if Similarity("a b", "c d") != 0 {
		t.Fatal("disjoint texts must score 0")
	}
	if Similarity("", "") != 1 {
		t.Fatal("two empties are identical")
	}
	if Similarity("a", "") != 0 {
		t.Fatal("empty vs non-empty is 0")
	}
}

// Property: Similarity is symmetric and bounded.
func TestSimilarityProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Similarity(a, b), Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ContentKey is invariant to case/punctuation but not to token
// changes.
func TestContentKeyProperty(t *testing.T) {
	f := func(a string) bool {
		return ContentKey(a) == ContentKey(strings.ToUpper(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if ContentKey("a b c") == ContentKey("a b d") {
		t.Fatal("different tokens same key")
	}
}

func TestBestMatchFindsModifiedParent(t *testing.T) {
	// The E5/E9 scenario: a fake derived from a fact should best-match its
	// parent with high but sub-1.0 similarity.
	g := corpus.NewGenerator(3)
	ix := NewIndex()
	facts := make([]corpus.Statement, 0, 50)
	for i := 0; i < 50; i++ {
		s := g.Factual()
		facts = append(facts, s)
		ix.Add(Fact{ID: s.ID, Topic: s.Topic, Text: s.Text})
	}
	hits := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		src := facts[i%len(facts)]
		fake := g.Modify(src, corpus.OpInsert)
		m, ok := ix.BestMatch(fake.Text)
		if ok && m.Fact.ID == src.ID {
			hits++
		}
	}
	if hits < trials*8/10 {
		t.Fatalf("parent recovered %d/%d times", hits, trials)
	}
}

func BenchmarkBestMatch(b *testing.B) {
	g := corpus.NewGenerator(1)
	ix := NewIndex()
	for i := 0; i < 2000; i++ {
		s := g.Factual()
		ix.Add(Fact{ID: s.ID, Topic: s.Topic, Text: s.Text})
	}
	query := g.Modify(g.Factual(), corpus.OpInsert).Text
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.BestMatch(query)
	}
}
