package ranking

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/contract"
	"repro/internal/keys"
	"repro/internal/ledger"
)

type fixture struct {
	engine    *contract.Engine
	authority *keys.KeyPair
	nonces    map[string]uint64
	t         *testing.T
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		authority: keys.FromSeed([]byte("authority")),
		nonces:    make(map[string]uint64),
		t:         t,
	}
	f.engine = contract.NewEngine()
	if err := f.engine.Register(&Contract{Authority: f.authority.Address()}); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) exec(kp *keys.KeyPair, method string, payload []byte) contract.Receipt {
	f.t.Helper()
	key := kp.Address().String()
	tx, err := ledger.NewTx(kp, f.nonces[key], ContractName+"."+method, payload)
	if err != nil {
		f.t.Fatal(err)
	}
	f.nonces[key]++
	return f.engine.ExecuteTx(tx, 1)
}

func (f *fixture) mint(to keys.Address, amount uint64) {
	f.t.Helper()
	p, _ := MintPayload(to, amount)
	if rec := f.exec(f.authority, "mint", p); !rec.OK {
		f.t.Fatalf("mint: %+v", rec)
	}
}

func (f *fixture) vote(kp *keys.KeyPair, item string, factual bool, stake uint64) contract.Receipt {
	f.t.Helper()
	p, _ := VotePayload(item, factual, stake)
	return f.exec(kp, "vote", p)
}

func (f *fixture) resolve(item string, factual bool) contract.Receipt {
	f.t.Helper()
	p, _ := ResolvePayload(item, factual)
	return f.exec(f.authority, "resolve", p)
}

func (f *fixture) balance(a keys.Address) uint64 {
	f.t.Helper()
	b, err := Balance(f.engine, f.authority.Address(), a)
	if err != nil {
		f.t.Fatal(err)
	}
	return b
}

func (f *fixture) reputation(a keys.Address) float64 {
	f.t.Helper()
	r, err := Reputation(f.engine, f.authority.Address(), a)
	if err != nil {
		f.t.Fatal(err)
	}
	return r
}

func TestMintAndBalance(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.mint(alice.Address(), 100)
	f.mint(alice.Address(), 50)
	if got := f.balance(alice.Address()); got != 150 {
		t.Fatalf("balance=%d", got)
	}
}

func TestMintRequiresAuthority(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	p, _ := MintPayload(alice.Address(), 100)
	rec := f.exec(alice, "mint", p)
	if rec.OK || !strings.Contains(rec.Err, "not the authority") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestVoteLocksStake(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.mint(alice.Address(), 100)
	rec := f.vote(alice, "item1", true, 40)
	if !rec.OK {
		t.Fatalf("vote: %+v", rec)
	}
	if got := f.balance(alice.Address()); got != 60 {
		t.Fatalf("balance=%d want 60", got)
	}
}

func TestVoteRejections(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.mint(alice.Address(), 10)
	if rec := f.vote(alice, "i", true, 0); rec.OK {
		t.Fatal("zero stake accepted")
	}
	if rec := f.vote(alice, "i", true, 100); rec.OK || !strings.Contains(rec.Err, "insufficient") {
		t.Fatalf("overdraft: %+v", rec)
	}
	if rec := f.vote(alice, "i", true, 5); !rec.OK {
		t.Fatalf("valid vote: %+v", rec)
	}
	if rec := f.vote(alice, "i", false, 5); rec.OK || !strings.Contains(rec.Err, "already voted") {
		t.Fatalf("double vote: %+v", rec)
	}
}

func TestResolvePaysWinnersSlashesLosers(t *testing.T) {
	f := newFixture(t)
	w1 := keys.FromSeed([]byte("w1"))
	w2 := keys.FromSeed([]byte("w2"))
	l1 := keys.FromSeed([]byte("l1"))
	for _, a := range []keys.Address{w1.Address(), w2.Address(), l1.Address()} {
		f.mint(a, 100)
	}
	f.vote(w1, "item", true, 30)
	f.vote(w2, "item", true, 10)
	f.vote(l1, "item", false, 40)
	rec := f.resolve("item", true)
	if !rec.OK {
		t.Fatalf("resolve: %+v", rec)
	}
	// Pool = 40; w1 gets 30 back + 30 (30/40 of pool), w2 gets 10 + 10.
	if got := f.balance(w1.Address()); got != 70+30+30 {
		t.Fatalf("w1 balance=%d want 130", got)
	}
	if got := f.balance(w2.Address()); got != 90+10+10 {
		t.Fatalf("w2 balance=%d want 110", got)
	}
	if got := f.balance(l1.Address()); got != 60 {
		t.Fatalf("l1 balance=%d want 60 (stake gone)", got)
	}
	// Reputation moved.
	if rep := f.reputation(w1.Address()); rep <= InitialReputation {
		t.Fatalf("winner rep=%f", rep)
	}
	if rep := f.reputation(l1.Address()); rep >= InitialReputation {
		t.Fatalf("loser rep=%f", rep)
	}
}

func TestResolveConservesTokens(t *testing.T) {
	f := newFixture(t)
	voters := make([]*keys.KeyPair, 7)
	for i := range voters {
		voters[i] = keys.FromSeed([]byte("v" + strconv.Itoa(i)))
		f.mint(voters[i].Address(), 100)
	}
	for i, v := range voters {
		f.vote(v, "item", i%2 == 0, uint64(10+i*3))
	}
	f.resolve("item", true)
	var total uint64
	for _, v := range voters {
		total += f.balance(v.Address())
	}
	if total != 700 {
		t.Fatalf("total=%d want 700 (conservation)", total)
	}
}

func TestResolveNoWinnersBurnsPool(t *testing.T) {
	f := newFixture(t)
	l := keys.FromSeed([]byte("l"))
	f.mint(l.Address(), 100)
	f.vote(l, "item", false, 50)
	rec := f.resolve("item", true)
	if !rec.OK {
		t.Fatalf("resolve: %+v", rec)
	}
	if got := f.balance(l.Address()); got != 50 {
		t.Fatalf("balance=%d; losing stake must be burned", got)
	}
}

func TestResolveGuards(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.mint(alice.Address(), 100)
	f.vote(alice, "item", true, 10)
	p, _ := ResolvePayload("item", true)
	if rec := f.exec(alice, "resolve", p); rec.OK {
		t.Fatal("non-authority resolved")
	}
	f.resolve("item", true)
	if rec := f.resolve("item", true); rec.OK || !strings.Contains(rec.Err, "already resolved") {
		t.Fatalf("double resolve: %+v", rec)
	}
	if rec := f.vote(alice, "item", false, 10); rec.OK || !strings.Contains(rec.Err, "already resolved") {
		t.Fatalf("vote after resolve: %+v", rec)
	}
}

func TestVotesQuery(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	bob := keys.FromSeed([]byte("bob"))
	f.mint(alice.Address(), 100)
	f.mint(bob.Address(), 100)
	f.vote(alice, "item", true, 10)
	f.vote(bob, "item", false, 20)
	votes, err := Votes(f.engine, f.authority.Address(), "item")
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 2 {
		t.Fatalf("votes=%+v", votes)
	}
	for _, v := range votes {
		if v.Rep != InitialReputation {
			t.Fatalf("vote rep=%f", v.Rep)
		}
	}
}

func TestVotesDoNotLeakAcrossItems(t *testing.T) {
	// Item ids sharing a prefix must not mix votes.
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.mint(alice.Address(), 100)
	f.vote(alice, "item1", true, 10)
	f.vote(alice, "item10", false, 10)
	votes, err := Votes(f.engine, f.authority.Address(), "item1")
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 1 || votes[0].ItemID != "item1" {
		t.Fatalf("votes=%+v", votes)
	}
}

// --- aggregation -----------------------------------------------------------

func mkVotes(factual int, fake int, rep float64, stake uint64) []Vote {
	var out []Vote
	for i := 0; i < factual; i++ {
		out = append(out, Vote{Voter: "f" + strconv.Itoa(i), Factual: true, Rep: rep, Stake: stake})
	}
	for i := 0; i < fake; i++ {
		out = append(out, Vote{Voter: "k" + strconv.Itoa(i), Factual: false, Rep: rep, Stake: stake})
	}
	return out
}

func TestMajorityMechanism(t *testing.T) {
	agg := NewAggregator(MechanismMajority)
	score, err := agg.Score(Signals{Votes: mkVotes(3, 1, 1, 10)})
	if err != nil || score != 0.75 {
		t.Fatalf("score=%f err=%v", score, err)
	}
	if _, err := agg.Score(Signals{}); err != ErrNoSignal {
		t.Fatalf("want ErrNoSignal, got %v", err)
	}
}

func TestAIAndTraceMechanisms(t *testing.T) {
	ai := NewAggregator(MechanismAIOnly)
	score, err := ai.Score(Signals{AIFakeProb: 0.8, TraceScore: -1})
	if err != nil || score != 0.19999999999999996 && score != 0.2 {
		if err != nil || score < 0.19 || score > 0.21 {
			t.Fatalf("ai score=%f err=%v", score, err)
		}
	}
	if _, err := ai.Score(Signals{AIFakeProb: -1}); err != ErrNoSignal {
		t.Fatalf("want ErrNoSignal, got %v", err)
	}
	tr := NewAggregator(MechanismTraceOnly)
	score, err = tr.Score(Signals{TraceScore: 0.9, AIFakeProb: -1})
	if err != nil || score != 0.9 {
		t.Fatalf("trace score=%f err=%v", score, err)
	}
}

func TestWeightedCrowdResistsLowRepBloc(t *testing.T) {
	// 6 biased voters (rep ground to 0.05) call a factual item fake;
	// 4 honest voters (rep 1.5) call it factual. Majority says fake;
	// the reputation-weighted crowd says factual.
	votes := append(
		mkVotes(0, 6, 0.05, 10),
		mkVotes(4, 0, 1.5, 10)...,
	)
	maj := NewAggregator(MechanismMajority)
	majScore, _ := maj.Score(Signals{Votes: votes})
	if Verdict(majScore) {
		// 4/10 factual -> 0.4 -> fake verdict; sanity-check the setup.
		t.Fatalf("setup wrong: majority score=%f", majScore)
	}
	comb := NewAggregator(MechanismCombined)
	combScore, err := comb.Score(Signals{AIFakeProb: -1, TraceScore: -1, Votes: votes})
	if err != nil {
		t.Fatal(err)
	}
	if !Verdict(combScore) {
		t.Fatalf("weighted crowd score=%f; reputation weighting failed to resist the bloc", combScore)
	}
}

func TestCombinedRenormalizesMissingSignals(t *testing.T) {
	agg := NewAggregator(MechanismCombined)
	// Only trace present.
	score, err := agg.Score(Signals{AIFakeProb: -1, TraceScore: 0.8})
	if err != nil || score != 0.8 {
		t.Fatalf("score=%f err=%v", score, err)
	}
	// Nothing present.
	if _, err := agg.Score(Signals{AIFakeProb: -1, TraceScore: -1}); err != ErrNoSignal {
		t.Fatalf("want ErrNoSignal, got %v", err)
	}
}

func TestCombinedBlendsAllSignals(t *testing.T) {
	agg := NewAggregator(MechanismCombined)
	s := Signals{AIFakeProb: 0.1, TraceScore: 0.9, Votes: mkVotes(9, 1, 1, 10)}
	score, err := agg.Score(s)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.8 || score > 1 {
		t.Fatalf("score=%f", score)
	}
}

// --- agents ----------------------------------------------------------------

func TestPopulationComposition(t *testing.T) {
	pop := Population(100, 0.3, 0.1, 0.9)
	counts := make(map[VoterKind]int)
	for _, a := range pop {
		counts[a.Kind]++
	}
	if counts[VoterBiased] != 30 || counts[VoterLazy] != 10 || counts[VoterHonest] != 60 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestAgentDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	biased := Agent{Kind: VoterBiased}
	for i := 0; i < 10; i++ {
		if biased.Decide(true, rng) || !biased.Decide(false, rng) {
			t.Fatal("biased agent must invert the truth")
		}
	}
	honest := Agent{Kind: VoterHonest, Accuracy: 1.0}
	for i := 0; i < 10; i++ {
		if !honest.Decide(true, rng) || honest.Decide(false, rng) {
			t.Fatal("perfect honest agent must vote the truth")
		}
	}
	// Statistical check at 0.8 accuracy.
	agent := Agent{Kind: VoterHonest, Accuracy: 0.8}
	correct := 0
	for i := 0; i < 2000; i++ {
		if agent.Decide(true, rng) {
			correct++
		}
	}
	if correct < 1500 || correct > 1700 {
		t.Fatalf("honest@0.8 correct=%d of 2000", correct)
	}
}

// TestBiasResistanceEndToEnd reproduces the E5 story in miniature: after
// biased voters lose reputation on resolved items, the combined mechanism
// out-ranks plain majority on the next contested item.
func TestBiasResistanceEndToEnd(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(7))
	honest := make([]*keys.KeyPair, 4)
	biased := make([]*keys.KeyPair, 6)
	for i := range honest {
		honest[i] = keys.FromSeed([]byte("honest" + strconv.Itoa(i)))
		f.mint(honest[i].Address(), 1000)
	}
	for i := range biased {
		biased[i] = keys.FromSeed([]byte("biased" + strconv.Itoa(i)))
		f.mint(biased[i].Address(), 1000)
	}
	// Warm-up epochs: 10 factual items; biased voters call them fake and
	// get slashed when the platform resolves with ground truth.
	for e := 0; e < 10; e++ {
		item := "warmup" + strconv.Itoa(e)
		for _, kp := range honest {
			f.vote(kp, item, Agent{Kind: VoterHonest, Accuracy: 0.95}.Decide(true, rng), 10)
		}
		for _, kp := range biased {
			f.vote(kp, item, false, 10)
		}
		f.resolve(item, true)
	}
	// The contested item: factual, biased bloc outnumbers honest voters.
	for _, kp := range honest {
		f.vote(kp, "contested", true, 10)
	}
	for _, kp := range biased {
		f.vote(kp, "contested", false, 10)
	}
	votes, err := Votes(f.engine, f.authority.Address(), "contested")
	if err != nil {
		t.Fatal(err)
	}
	majScore, _ := NewAggregator(MechanismMajority).Score(Signals{Votes: votes})
	combScore, _ := NewAggregator(MechanismCombined).Score(Signals{AIFakeProb: -1, TraceScore: -1, Votes: votes})
	if Verdict(majScore) {
		t.Fatalf("majority score=%f; bloc should capture the baseline", majScore)
	}
	if !Verdict(combScore) {
		t.Fatalf("combined score=%f; reputation weighting should resist the bloc", combScore)
	}
}

func BenchmarkVoteResolveCycle(b *testing.B) {
	authority := keys.FromSeed([]byte("authority"))
	engine := contract.NewEngine()
	engine.Register(&Contract{Authority: authority.Address()})
	voters := make([]*keys.KeyPair, 20)
	nonces := make(map[string]uint64)
	exec := func(kp *keys.KeyPair, method string, payload []byte) {
		key := kp.Address().String()
		tx, _ := ledger.NewTx(kp, nonces[key], ContractName+"."+method, payload)
		nonces[key]++
		if rec := engine.ExecuteTx(tx, 1); !rec.OK {
			b.Fatalf("%s: %+v", method, rec)
		}
	}
	for i := range voters {
		voters[i] = keys.FromSeed([]byte("v" + strconv.Itoa(i)))
		p, _ := MintPayload(voters[i].Address(), 1<<40)
		exec(authority, "mint", p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := "item" + strconv.Itoa(i)
		for j, v := range voters {
			p, _ := VotePayload(item, j%3 != 0, 10)
			exec(v, "vote", p)
		}
		p, _ := ResolvePayload(item, true)
		exec(authority, "resolve", p)
	}
}
