// Package ranking implements contribution (3) of the paper: the AI
// blockchain crowd-sourced fake-news ranking mechanism and its incentive
// economy (§V).
//
// Voting is a smart contract: identified accounts stake platform tokens on
// a verdict ("factual" / "fake") for a news item; when the platform
// resolves the item, losing stakes fund the winners and reputations move
// ("introduce economic incentives to reward individuals for flagging
// behaviors", §V). The Go-side Aggregator combines three signals — the AI
// detector score, the supply-chain trace score, and reputation-weighted
// crowd votes — into one factualness ranking; plain majority vote is kept
// as the baseline whose bias failure mode the paper warns about (§IV:
// "prevent bias concerns that might be originated from traditional
// majority decided crowd sourcing mechanisms"). Experiment E5 sweeps
// biased-voter populations across all mechanisms.
package ranking

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/contract"
	"repro/internal/keys"
)

// ContractName routes ranking transactions.
const ContractName = "rank"

// Errors surfaced by contract execution.
var (
	// ErrNotAuthority indicates a mint/resolve from a non-authority.
	ErrNotAuthority = errors.New("ranking: sender is not the authority")
	// ErrInsufficientBalance indicates a stake above the balance.
	ErrInsufficientBalance = errors.New("ranking: insufficient balance")
	// ErrAlreadyVoted indicates a second vote on the same item.
	ErrAlreadyVoted = errors.New("ranking: already voted")
	// ErrAlreadyResolved indicates a vote or resolve after resolution.
	ErrAlreadyResolved = errors.New("ranking: item already resolved")
	// ErrZeroStake indicates a vote without stake.
	ErrZeroStake = errors.New("ranking: stake must be positive")
)

// InitialReputation is every account's starting reputation.
const InitialReputation = 1.0

// Vote is one account's staked verdict on an item.
type Vote struct {
	Voter   string  `json:"voter"`
	ItemID  string  `json:"itemId"`
	Factual bool    `json:"factual"`
	Stake   uint64  `json:"stake"`
	Rep     float64 `json:"rep"` // voter reputation at vote time
	Height  uint64  `json:"height"`
}

// Resolution records an item's final verdict.
type Resolution struct {
	ItemID  string `json:"itemId"`
	Factual bool   `json:"factual"`
	Height  uint64 `json:"height"`
	Winners int    `json:"winners"`
	Losers  int    `json:"losers"`
	Pool    uint64 `json:"pool"`
}

type voteArgs struct {
	ItemID  string `json:"itemId"`
	Factual bool   `json:"factual"`
	Stake   uint64 `json:"stake"`
}

type mintArgs struct {
	To     string `json:"to"`
	Amount uint64 `json:"amount"`
}

type resolveArgs struct {
	ItemID  string `json:"itemId"`
	Factual bool   `json:"factual"`
}

// Contract is the ranking chaincode.
type Contract struct {
	// Authority mints tokens and resolves items (held by the platform).
	Authority keys.Address
	// RepGain/RepLossFactor tune reputation dynamics.
	RepGain       float64 // added on a correct vote (default 0.1)
	RepLossFactor float64 // multiplied on a wrong vote (default 0.7)
}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (c *Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c *Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "mint":
		return c.mint(ctx, args)
	case "vote":
		return c.vote(ctx, args)
	case "resolve":
		return c.resolve(ctx, args)
	case "balance":
		return c.balance(ctx, args)
	case "reputation":
		return c.reputation(ctx, args)
	case "votes":
		return c.votes(ctx, args)
	case "resolution":
		return c.resolution(ctx, args)
	case "penalize":
		return c.penalize(ctx, args)
	default:
		return nil, fmt.Errorf("%w: rank.%s", contract.ErrUnknownMethod, method)
	}
}

// --- token subledger -------------------------------------------------------

func (c *Contract) getUint(ctx *contract.Context, key string) (uint64, error) {
	raw, err := ctx.Get(key)
	if err != nil {
		return 0, nil // absent = zero; Get cost already charged
	}
	return strconv.ParseUint(string(raw), 10, 64)
}

func (c *Contract) putUint(ctx *contract.Context, key string, v uint64) error {
	return ctx.Put(key, []byte(strconv.FormatUint(v, 10)))
}

func (c *Contract) getRep(ctx *contract.Context, addr string) (float64, error) {
	raw, err := ctx.Get("rep/" + addr)
	if err != nil {
		return InitialReputation, nil
	}
	return strconv.ParseFloat(string(raw), 64)
}

func (c *Contract) putRep(ctx *contract.Context, addr string, v float64) error {
	if v < 0.01 {
		v = 0.01 // reputation floor: accounts can recover
	}
	return ctx.Put("rep/"+addr, []byte(strconv.FormatFloat(v, 'f', 6, 64)))
}

func (c *Contract) mint(ctx *contract.Context, args []byte) ([]byte, error) {
	if ctx.Sender != c.Authority {
		return nil, fmt.Errorf("%w: %s", ErrNotAuthority, ctx.Sender.Short())
	}
	var in mintArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("ranking: mint args: %w", err)
	}
	cur, err := c.getUint(ctx, "bal/"+in.To)
	if err != nil {
		return nil, err
	}
	if err := c.putUint(ctx, "bal/"+in.To, cur+in.Amount); err != nil {
		return nil, err
	}
	return []byte(strconv.FormatUint(cur+in.Amount, 10)), nil
}

func (c *Contract) balance(ctx *contract.Context, args []byte) ([]byte, error) {
	v, err := c.getUint(ctx, "bal/"+string(args))
	if err != nil {
		return nil, err
	}
	return []byte(strconv.FormatUint(v, 10)), nil
}

func (c *Contract) reputation(ctx *contract.Context, args []byte) ([]byte, error) {
	v, err := c.getRep(ctx, string(args))
	if err != nil {
		return nil, err
	}
	return []byte(strconv.FormatFloat(v, 'f', 6, 64)), nil
}

// --- voting ----------------------------------------------------------------

func (c *Contract) vote(ctx *contract.Context, args []byte) ([]byte, error) {
	var in voteArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("ranking: vote args: %w", err)
	}
	if in.Stake == 0 {
		return nil, ErrZeroStake
	}
	if ok, err := ctx.Has("res/" + in.ItemID); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyResolved, in.ItemID)
	}
	addr := ctx.Sender.String()
	voteKey := "vote/" + in.ItemID + "/" + addr
	if ok, err := ctx.Has(voteKey); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrAlreadyVoted, ctx.Sender.Short(), in.ItemID)
	}
	bal, err := c.getUint(ctx, "bal/"+addr)
	if err != nil {
		return nil, err
	}
	if bal < in.Stake {
		return nil, fmt.Errorf("%w: have %d, stake %d", ErrInsufficientBalance, bal, in.Stake)
	}
	if err := c.putUint(ctx, "bal/"+addr, bal-in.Stake); err != nil {
		return nil, err
	}
	rep, err := c.getRep(ctx, addr)
	if err != nil {
		return nil, err
	}
	v := Vote{Voter: addr, ItemID: in.ItemID, Factual: in.Factual, Stake: in.Stake, Rep: rep, Height: ctx.Height}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ranking: marshal vote: %w", err)
	}
	if err := ctx.Put(voteKey, raw); err != nil {
		return nil, err
	}
	if err := ctx.Emit("voted", map[string]string{
		"item": in.ItemID, "voter": addr, "factual": strconv.FormatBool(in.Factual),
	}); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c *Contract) loadVotes(ctx *contract.Context, itemID string) ([]Vote, error) {
	ks, err := ctx.Keys("vote/" + itemID + "/")
	if err != nil {
		return nil, err
	}
	votes := make([]Vote, 0, len(ks))
	for _, k := range ks {
		if !strings.HasPrefix(k, "vote/"+itemID+"/") {
			continue
		}
		raw, err := ctx.Get(k)
		if err != nil {
			return nil, err
		}
		var v Vote
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("ranking: unmarshal vote %s: %w", k, err)
		}
		votes = append(votes, v)
	}
	return votes, nil
}

func (c *Contract) votes(ctx *contract.Context, args []byte) ([]byte, error) {
	votes, err := c.loadVotes(ctx, string(args))
	if err != nil {
		return nil, err
	}
	return json.Marshal(votes)
}

// --- resolution ------------------------------------------------------------

func (c *Contract) resolve(ctx *contract.Context, args []byte) ([]byte, error) {
	if ctx.Sender != c.Authority {
		return nil, fmt.Errorf("%w: %s", ErrNotAuthority, ctx.Sender.Short())
	}
	var in resolveArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("ranking: resolve args: %w", err)
	}
	if ok, err := ctx.Has("res/" + in.ItemID); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyResolved, in.ItemID)
	}
	votes, err := c.loadVotes(ctx, in.ItemID)
	if err != nil {
		return nil, err
	}
	repGain := c.RepGain
	if repGain == 0 {
		repGain = 0.1
	}
	repLoss := c.RepLossFactor
	if repLoss == 0 {
		repLoss = 0.7
	}

	var winners, losers []Vote
	var pool, winStake uint64
	for _, v := range votes {
		if v.Factual == in.Factual {
			winners = append(winners, v)
			winStake += v.Stake
		} else {
			losers = append(losers, v)
			pool += v.Stake
		}
	}
	// Winners get their stake back plus a pro-rata share of the losing
	// pool; reputations move. Losers' stakes are consumed.
	distributed := uint64(0)
	for i, v := range winners {
		share := uint64(0)
		if winStake > 0 {
			share = pool * v.Stake / winStake
		}
		if i == len(winners)-1 {
			share = pool - distributed // absorb rounding dust
		}
		distributed += share
		bal, err := c.getUint(ctx, "bal/"+v.Voter)
		if err != nil {
			return nil, err
		}
		if err := c.putUint(ctx, "bal/"+v.Voter, bal+v.Stake+share); err != nil {
			return nil, err
		}
		rep, err := c.getRep(ctx, v.Voter)
		if err != nil {
			return nil, err
		}
		if err := c.putRep(ctx, v.Voter, rep+repGain); err != nil {
			return nil, err
		}
	}
	if len(winners) == 0 {
		// No winners: the pool is burned (removed from circulation).
		distributed = pool
	}
	for _, v := range losers {
		rep, err := c.getRep(ctx, v.Voter)
		if err != nil {
			return nil, err
		}
		if err := c.putRep(ctx, v.Voter, rep*repLoss); err != nil {
			return nil, err
		}
	}
	res := Resolution{
		ItemID: in.ItemID, Factual: in.Factual, Height: ctx.Height,
		Winners: len(winners), Losers: len(losers), Pool: pool,
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("ranking: marshal resolution: %w", err)
	}
	if err := ctx.Put("res/"+in.ItemID, raw); err != nil {
		return nil, err
	}
	if err := ctx.Emit("resolved", map[string]string{
		"item": in.ItemID, "factual": strconv.FormatBool(in.Factual),
	}); err != nil {
		return nil, err
	}
	return raw, nil
}

// penalize is the slashing hook (authority-only): it burns the target's
// entire token balance and floors their reputation. The platform invokes
// it when the evidence contract records a consensus offence.
func (c *Contract) penalize(ctx *contract.Context, args []byte) ([]byte, error) {
	if ctx.Sender != c.Authority {
		return nil, fmt.Errorf("%w: %s", ErrNotAuthority, ctx.Sender.Short())
	}
	var in actTarget
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("ranking: penalize args: %w", err)
	}
	if err := c.putUint(ctx, "bal/"+in.Target, 0); err != nil {
		return nil, err
	}
	if err := c.putRep(ctx, in.Target, 0); err != nil { // clamped to floor
		return nil, err
	}
	if err := ctx.Emit("penalized", map[string]string{"target": in.Target}); err != nil {
		return nil, err
	}
	return []byte("1"), nil
}

// actTarget is the payload of rank.penalize.
type actTarget struct {
	Target string `json:"target"`
}

// PenalizePayload builds a rank.penalize payload.
func PenalizePayload(target string) ([]byte, error) {
	return json.Marshal(actTarget{Target: target})
}

func (c *Contract) resolution(ctx *contract.Context, args []byte) ([]byte, error) {
	raw, err := ctx.Get("res/" + string(args))
	if err != nil {
		return nil, fmt.Errorf("ranking: no resolution for %s", string(args))
	}
	return raw, nil
}

// ---------------------------------------------------------------------------
// Client helpers.
// ---------------------------------------------------------------------------

// MintPayload builds a rank.mint payload.
func MintPayload(to keys.Address, amount uint64) ([]byte, error) {
	return json.Marshal(mintArgs{To: to.String(), Amount: amount})
}

// VotePayload builds a rank.vote payload.
func VotePayload(itemID string, factual bool, stake uint64) ([]byte, error) {
	return json.Marshal(voteArgs{ItemID: itemID, Factual: factual, Stake: stake})
}

// ResolvePayload builds a rank.resolve payload.
func ResolvePayload(itemID string, factual bool) ([]byte, error) {
	return json.Marshal(resolveArgs{ItemID: itemID, Factual: factual})
}

// Balance queries an account's token balance.
func Balance(e *contract.Engine, asker, addr keys.Address) (uint64, error) {
	raw, err := e.Query(asker, ContractName+".balance", []byte(addr.String()))
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(raw), 10, 64)
}

// Reputation queries an account's reputation.
func Reputation(e *contract.Engine, asker, addr keys.Address) (float64, error) {
	raw, err := e.Query(asker, ContractName+".reputation", []byte(addr.String()))
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(string(raw), 64)
}

// Votes queries the votes recorded for an item.
func Votes(e *contract.Engine, asker keys.Address, itemID string) ([]Vote, error) {
	raw, err := e.Query(asker, ContractName+".votes", []byte(itemID))
	if err != nil {
		return nil, err
	}
	var votes []Vote
	if err := json.Unmarshal(raw, &votes); err != nil {
		return nil, fmt.Errorf("ranking: decode votes: %w", err)
	}
	return votes, nil
}
