package ranking

import (
	"math/rand"
)

// Voter agent models for the E5 bias sweep. The paper's concern (§IV) is
// that "traditional majority decided crowd sourcing mechanisms" can be
// captured by coordinated blocs; these agents reproduce that population.

// VoterKind labels agent behaviour.
type VoterKind string

// Agent kinds.
const (
	// VoterHonest votes the ground truth with some personal accuracy.
	VoterHonest VoterKind = "honest"
	// VoterBiased votes a fixed agenda: calls true items fake and fake
	// items factual (a coordinated disinformation bloc).
	VoterBiased VoterKind = "biased"
	// VoterLazy votes uniformly at random.
	VoterLazy VoterKind = "lazy"
)

// Agent is one simulated crowd participant.
type Agent struct {
	Kind VoterKind
	// Accuracy applies to honest voters (probability of voting truth).
	Accuracy float64
}

// Decide returns the agent's vote for an item whose ground truth is
// isFactual.
func (a Agent) Decide(isFactual bool, rng *rand.Rand) bool {
	switch a.Kind {
	case VoterBiased:
		return !isFactual
	case VoterLazy:
		return rng.Float64() < 0.5
	default:
		acc := a.Accuracy
		if acc == 0 {
			acc = 0.9
		}
		if rng.Float64() < acc {
			return isFactual
		}
		return !isFactual
	}
}

// Population builds a voter mix: biasedFrac of the n agents are biased,
// lazyFrac are lazy, the rest honest with the given accuracy.
func Population(n int, biasedFrac, lazyFrac, honestAccuracy float64) []Agent {
	out := make([]Agent, n)
	nBiased := int(float64(n) * biasedFrac)
	nLazy := int(float64(n) * lazyFrac)
	for i := range out {
		switch {
		case i < nBiased:
			out[i] = Agent{Kind: VoterBiased}
		case i < nBiased+nLazy:
			out[i] = Agent{Kind: VoterLazy}
		default:
			out[i] = Agent{Kind: VoterHonest, Accuracy: honestAccuracy}
		}
	}
	return out
}
