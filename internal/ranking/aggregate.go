package ranking

import (
	"errors"
	"fmt"
)

// Mechanism selects how an item's factualness is computed. The paper's
// full mechanism combines AI, trace and reputation-weighted crowd signals;
// the others are the E5 ablation baselines.
type Mechanism string

// Ranking mechanisms.
const (
	// MechanismMajority is the traditional crowd baseline: unweighted
	// majority vote — the mechanism whose bias failure the paper argues
	// the platform prevents (§IV).
	MechanismMajority Mechanism = "majority"
	// MechanismAIOnly uses only the AI detector score.
	MechanismAIOnly Mechanism = "ai"
	// MechanismTraceOnly uses only the supply-chain trace score.
	MechanismTraceOnly Mechanism = "trace"
	// MechanismCombined is the paper's full AI+trace+weighted-crowd mix.
	MechanismCombined Mechanism = "combined"
)

// AllMechanisms lists every mechanism for sweeps.
var AllMechanisms = []Mechanism{MechanismMajority, MechanismAIOnly, MechanismTraceOnly, MechanismCombined}

// ErrNoSignal indicates an item with neither votes nor model scores.
var ErrNoSignal = errors.New("ranking: no signal available for item")

// Signals carries the per-item inputs to aggregation.
type Signals struct {
	// AIFakeProb is the AI detector's P(fake) in [0,1]; negative = absent.
	AIFakeProb float64
	// TraceScore is the supply-chain factualness in [0,1]; negative =
	// absent (item not on the graph).
	TraceScore float64
	// TraceRooted reports whether the item reaches a factual root.
	TraceRooted bool
	// Votes are the item's recorded crowd votes.
	Votes []Vote
}

// Weights tunes the combined mechanism.
type Weights struct {
	AI    float64
	Trace float64
	Crowd float64
}

// DefaultWeights reflect the paper's emphasis: the trace to the factual
// database is the backbone, the AI and crowd signals corroborate.
func DefaultWeights() Weights { return Weights{AI: 0.25, Trace: 0.45, Crowd: 0.30} }

// Aggregator computes factualness scores under a mechanism.
type Aggregator struct {
	Mechanism Mechanism
	Weights   Weights
}

// NewAggregator builds an aggregator with default weights.
func NewAggregator(m Mechanism) *Aggregator {
	return &Aggregator{Mechanism: m, Weights: DefaultWeights()}
}

// Score returns the item's factualness in [0,1] (1 = factual).
func (a *Aggregator) Score(s Signals) (float64, error) {
	switch a.Mechanism {
	case MechanismMajority:
		if len(s.Votes) == 0 {
			return 0, ErrNoSignal
		}
		factual := 0
		for _, v := range s.Votes {
			if v.Factual {
				factual++
			}
		}
		return float64(factual) / float64(len(s.Votes)), nil
	case MechanismAIOnly:
		if s.AIFakeProb < 0 {
			return 0, ErrNoSignal
		}
		return 1 - s.AIFakeProb, nil
	case MechanismTraceOnly:
		if s.TraceScore < 0 {
			return 0, ErrNoSignal
		}
		return s.TraceScore, nil
	case MechanismCombined:
		return a.combined(s)
	default:
		return 0, fmt.Errorf("ranking: unknown mechanism %q", a.Mechanism)
	}
}

// combined blends available signals, renormalizing weights when a signal
// is absent.
func (a *Aggregator) combined(s Signals) (float64, error) {
	w := a.Weights
	var total, sum float64
	if s.AIFakeProb >= 0 {
		total += w.AI
		sum += w.AI * (1 - s.AIFakeProb)
	}
	if s.TraceScore >= 0 {
		// An unrooted trace means "unverifiable", which is weaker evidence
		// than "traced to a modified source": halve its weight so genuinely
		// new reporting is decided mostly by the AI and crowd signals.
		wt := w.Trace
		if !s.TraceRooted {
			wt /= 2
		}
		total += wt
		sum += wt * s.TraceScore
	}
	if crowd, ok := weightedCrowd(s.Votes); ok {
		total += w.Crowd
		sum += w.Crowd * crowd
	}
	if total == 0 {
		return 0, ErrNoSignal
	}
	return sum / total, nil
}

// weightedCrowd is the reputation-and-stake-weighted factual share. This
// is where accountability defeats bias: a bloc of low-reputation accounts
// (their reputations ground down by past wrong votes on resolved items)
// moves the score far less than the same bloc moves a plain majority.
func weightedCrowd(votes []Vote) (float64, bool) {
	if len(votes) == 0 {
		return 0, false
	}
	var num, den float64
	for _, v := range votes {
		w := v.Rep * float64(v.Stake)
		den += w
		if v.Factual {
			num += w
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// Verdict converts a score into the binary factual/fake call at 0.5.
func Verdict(score float64) bool { return score >= 0.5 }

// WeightedCrowdScore exposes the reputation-and-stake-weighted factual
// share of a vote set (ok=false when there are no weighted votes). The
// platform's factual-database promotion gate uses it: facts enter the DB
// only on strong verified-crowd consensus (§VI).
func WeightedCrowdScore(votes []Vote) (float64, bool) {
	return weightedCrowd(votes)
}
