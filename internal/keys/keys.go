// Package keys provides the cryptographic identity primitives used across
// the platform: ed25519 key pairs, deterministic addresses derived from
// public keys, and detached signatures over arbitrary payloads.
//
// Every actor in the trusting-news ecosystem (journalist, fact checker,
// reader, publisher, AI tool developer) holds a KeyPair; its Address is the
// account identifier recorded on the ledger, which is what gives the paper's
// accountability property: "each record is signed and easy to track".
package keys

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// AddressSize is the length in bytes of an Address.
const AddressSize = 20

// Errors returned by this package.
var (
	// ErrBadSignature indicates a signature that does not verify against
	// the claimed public key and message.
	ErrBadSignature = errors.New("keys: signature verification failed")
	// ErrBadAddress indicates an address string that cannot be parsed.
	ErrBadAddress = errors.New("keys: malformed address")
	// ErrBadPublicKey indicates a public key of the wrong size.
	ErrBadPublicKey = errors.New("keys: malformed public key")
)

// Address is a short account identifier derived from a public key by
// truncated SHA-256, analogous to Ethereum's address derivation.
type Address [AddressSize]byte

// ZeroAddress is the all-zero address. It is used as the "system" account
// for genesis records and is never a valid signer.
var ZeroAddress Address

// AddressFromPub derives the address for an ed25519 public key.
func AddressFromPub(pub ed25519.PublicKey) Address {
	var a Address
	sum := sha256.Sum256(pub)
	copy(a[:], sum[:AddressSize])
	return a
}

// ParseAddress decodes a hex address string produced by Address.String.
func ParseAddress(s string) (Address, error) {
	var a Address
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != AddressSize {
		return a, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	copy(a[:], raw)
	return a, nil
}

// String renders the address as lowercase hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Short returns an abbreviated display form (first 8 hex chars).
func (a Address) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is the zero (system) address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Bytes returns a copy of the address bytes.
func (a Address) Bytes() []byte {
	out := make([]byte, AddressSize)
	copy(out, a[:])
	return out
}

// KeyPair bundles an ed25519 private/public key pair with the derived
// ledger address.
type KeyPair struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	addr Address
}

// Generate creates a new random key pair using the supplied entropy source.
// Pass nil to use crypto/rand.
func Generate(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("keys: generate: %w", err)
	}
	return &KeyPair{priv: priv, pub: pub, addr: AddressFromPub(pub)}, nil
}

// FromSeed derives a deterministic key pair from a 32-byte seed. Seeds
// shorter or longer than ed25519.SeedSize are hashed to size first, which
// makes test fixtures convenient ("FromSeed([]byte("alice"))").
func FromSeed(seed []byte) *KeyPair {
	if len(seed) != ed25519.SeedSize {
		sum := sha256.Sum256(seed)
		seed = sum[:]
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub, _ := priv.Public().(ed25519.PublicKey)
	return &KeyPair{priv: priv, pub: pub, addr: AddressFromPub(pub)}
}

// Address returns the ledger address for this key pair.
func (k *KeyPair) Address() Address { return k.addr }

// Public returns the public key.
func (k *KeyPair) Public() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(k.pub))
	copy(out, k.pub)
	return out
}

// Sign produces a detached signature over msg.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.priv, msg)
}

// Verify checks a detached signature against a public key. It returns
// ErrBadSignature when verification fails.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return ErrBadPublicKey
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// VerifyAddress checks the signature and additionally that the public key
// hashes to the expected address, binding the signature to a ledger account.
func VerifyAddress(addr Address, pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return ErrBadPublicKey
	}
	if AddressFromPub(pub) != addr {
		return fmt.Errorf("%w: public key does not match address %s", ErrBadSignature, addr.Short())
	}
	return Verify(pub, msg, sig)
}
