package keys

import (
	"bytes"
	"crypto/ed25519"
	"testing"
	"testing/quick"
)

func TestGenerateAndSign(t *testing.T) {
	kp, err := Generate(nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	msg := []byte("breaking: senate passes bill 1234")
	sig := kp.Sign(msg)
	if err := Verify(kp.Public(), msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	kp := FromSeed([]byte("alice"))
	msg := []byte("original report")
	sig := kp.Sign(msg)
	tampered := []byte("original report!")
	if err := Verify(kp.Public(), tampered, sig); err == nil {
		t.Fatal("want error for tampered message, got nil")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	alice := FromSeed([]byte("alice"))
	bob := FromSeed([]byte("bob"))
	msg := []byte("report")
	sig := alice.Sign(msg)
	if err := Verify(bob.Public(), msg, sig); err == nil {
		t.Fatal("want error for wrong key, got nil")
	}
}

func TestVerifyRejectsShortPublicKey(t *testing.T) {
	if err := Verify(ed25519.PublicKey{1, 2, 3}, []byte("m"), []byte("s")); err != ErrBadPublicKey {
		t.Fatalf("want ErrBadPublicKey, got %v", err)
	}
}

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed([]byte("journalist-7"))
	b := FromSeed([]byte("journalist-7"))
	if a.Address() != b.Address() {
		t.Fatal("same seed must yield same address")
	}
	c := FromSeed([]byte("journalist-8"))
	if a.Address() == c.Address() {
		t.Fatal("different seeds must yield different addresses")
	}
}

func TestAddressRoundTrip(t *testing.T) {
	kp := FromSeed([]byte("x"))
	addr := kp.Address()
	parsed, err := ParseAddress(addr.String())
	if err != nil {
		t.Fatalf("ParseAddress: %v", err)
	}
	if parsed != addr {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, addr)
	}
}

func TestParseAddressRejectsGarbage(t *testing.T) {
	cases := []string{"", "zz", "deadbeef", "0123456789abcdef0123456789abcdef0123456789"}
	for _, c := range cases {
		if _, err := ParseAddress(c); err == nil {
			t.Errorf("ParseAddress(%q): want error", c)
		}
	}
}

func TestZeroAddress(t *testing.T) {
	if !ZeroAddress.IsZero() {
		t.Fatal("ZeroAddress.IsZero() must be true")
	}
	if FromSeed([]byte("a")).Address().IsZero() {
		t.Fatal("derived address must not be zero")
	}
}

func TestVerifyAddressBindsKey(t *testing.T) {
	alice := FromSeed([]byte("alice"))
	bob := FromSeed([]byte("bob"))
	msg := []byte("claim")
	sig := bob.Sign(msg)
	// Signature is valid for bob's key but claims alice's address.
	if err := VerifyAddress(alice.Address(), bob.Public(), msg, sig); err == nil {
		t.Fatal("want address binding failure")
	}
	if err := VerifyAddress(bob.Address(), bob.Public(), msg, sig); err != nil {
		t.Fatalf("valid binding rejected: %v", err)
	}
}

func TestAddressBytesIsCopy(t *testing.T) {
	kp := FromSeed([]byte("a"))
	addr := kp.Address()
	b := addr.Bytes()
	b[0] ^= 0xff
	if bytes.Equal(b, addr.Bytes()) {
		t.Fatal("Bytes must return a copy")
	}
}

func TestPublicIsCopy(t *testing.T) {
	kp := FromSeed([]byte("a"))
	p := kp.Public()
	p[0] ^= 0xff
	if bytes.Equal(p, kp.Public()) {
		t.Fatal("Public must return a copy")
	}
}

// Property: signatures over arbitrary messages always verify with the
// signing key and never verify after a single-bit flip in the message.
func TestSignVerifyProperty(t *testing.T) {
	kp := FromSeed([]byte("prop"))
	f := func(msg []byte, flip uint) bool {
		sig := kp.Sign(msg)
		if Verify(kp.Public(), msg, sig) != nil {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mutated := make([]byte, len(msg))
		copy(mutated, msg)
		i := int(flip % uint(len(mutated)))
		mutated[i] ^= 1
		return Verify(kp.Public(), mutated, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: address derivation is injective for distinct seeds in practice.
func TestAddressCollisionProperty(t *testing.T) {
	seen := make(map[Address]string)
	f := func(seed []byte) bool {
		kp := FromSeed(seed)
		prev, ok := seen[kp.Address()]
		if ok && prev != string(seed) {
			return false
		}
		seen[kp.Address()] = string(seed)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSign(b *testing.B) {
	kp := FromSeed([]byte("bench"))
	msg := bytes.Repeat([]byte("news"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := FromSeed([]byte("bench"))
	msg := bytes.Repeat([]byte("news"), 256)
	sig := kp.Sign(msg)
	pub := kp.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(pub, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
