// Package telemetry is the platform's observability substrate: an
// allocation-conscious metrics registry (atomic counters, gauges and
// bucketed histograms, optionally labeled) plus lightweight span tracing
// (see trace.go). It is stdlib-only by design — the registry renders the
// Prometheus text exposition format directly, so a production deployment
// can point a Prometheus scraper at GET /v1/metrics without any client
// library, and DESIGN.md documents the substitution point.
//
// Metric names follow the convention trustnews_<subsystem>_<name>, with
// the usual Prometheus suffixes (_total for counters, _seconds for
// latency histograms).
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every instrument method no-ops on a nil receiver. Library users who
// leave platform.Config.Telemetry unset therefore pay one predictable
// nil-check branch per instrumentation site and nothing else; hot paths
// cache their instrument handles so the labeled-family map lookup happens
// once at wiring time, not per event.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (CAS loop, safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-style buckets with
// configurable upper bounds plus an implicit +Inf bucket. Observations
// are lock-free (one atomic add per bucket + sum/count).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS
}

// DurationBuckets is the default bounds set for latency histograms, in
// seconds: 1µs up to 10s, roughly logarithmic.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets suits byte- and count-valued histograms: powers of four
// from 1 to ~1M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search costs more in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and per-bucket (non-cumulative)
// counts, the +Inf bucket last.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// ---------------------------------------------------------------------------
// Families and the registry.
// ---------------------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label values → instrument) entry of a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64

	mu     sync.RWMutex
	series map[string]*series
}

func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x1f")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and the span tracer. The zero value is
// not usable; create with New. A nil *Registry is the disabled mode:
// every constructor returns a nil instrument.
type Registry struct {
	mu     sync.RWMutex
	fams   map[string]*family
	order  []string
	tracer *Tracer
}

// New creates an empty registry with a default-capacity tracer.
func New() *Registry {
	return &Registry{fams: make(map[string]*family), tracer: NewTracer(0)}
}

// Tracer returns the registry's span tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// fam returns (creating if needed) the named family. Re-registering a
// name with a different kind or label arity is a programming error.
func (r *Registry) fam(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s/%d labels (was %s/%d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the unlabeled counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindGauge, nil, nil).with(nil).g
}

// Histogram returns the unlabeled histogram with the given name. bounds
// nil means DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindHistogram, nil, bounds).with(nil).h
}

// CounterVec is a counter family labeled by a fixed set of label names.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.fam(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one combination of label values.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(vals).c
}

// GaugeVec is a gauge family labeled by a fixed set of label names.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.fam(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for one combination of label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(vals).g
}

// HistogramVec is a histogram family labeled by a fixed set of labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name.
// bounds nil means DurationBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.fam(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for one combination of label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(vals).h
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders {k="v",...}; extra appends one more pair (le for
// histogram buckets).
func labelString(names, vals []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families in name order and series in label order, so output is
// deterministic and diffable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				f.mu.RUnlock()
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			f.mu.RUnlock()
			return err
		}
		var err error
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatFloat(s.g.Value()))
			case kindHistogram:
				err = writeHistogram(w, f, s)
			}
			if err != nil {
				f.mu.RUnlock()
				return err
			}
		}
		f.mu.RUnlock()
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, s *series) error {
	bounds, counts := s.h.Buckets()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, s.labelVals, "le", formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labels, s.labelVals, "", ""), formatFloat(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labels, s.labelVals, "", ""), s.h.Count())
	return err
}
