package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("trustnews_test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name returns the same instrument.
	if r.Counter("trustnews_test_events_total", "events").Value() != 5 {
		t.Fatal("re-acquired counter lost its value")
	}
	g := r.Gauge("trustnews_test_occupancy", "occupancy")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
}

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	cv := r.CounterVec("x", "", "a")
	hv := r.HistogramVec("x", "", nil, "a")
	gv := r.GaugeVec("x", "", "a")
	// All of these must be nil and all methods must no-op.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("v").Inc()
	hv.With("v").Observe(1)
	gv.With("v").Set(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q, err %v", sb.String(), err)
	}
	// Tracing on nil registry/tracer/span.
	sp := r.Tracer().Start("op")
	sp.SetAttr("k", "v")
	sp.Child("inner").End()
	sp.End()
	if r.Tracer().Total() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("trustnews_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-3.545) > 1e-9 {
		t.Fatalf("sum = %v, want 3.545", h.Sum())
	}
	bounds, counts := h.Buckets()
	wantCounts := []uint64{1, 2, 1, 1} // ≤0.01, ≤0.1, ≤1, +Inf
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("shape: %v %v", bounds, counts)
	}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := New()
	v := r.CounterVec("trustnews_test_requests_total", "requests", "route", "status")
	v.With("/v1/chain", "200").Add(3)
	v.With("/v1/chain", "404").Inc()
	v.With("/v1/tx", "200").Inc()
	if got := v.With("/v1/chain", "200").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE trustnews_test_requests_total counter",
		`trustnews_test_requests_total{route="/v1/chain",status="200"} 3`,
		`trustnews_test_requests_total{route="/v1/chain",status="404"} 1`,
		`trustnews_test_requests_total{route="/v1/tx",status="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramRendering(t *testing.T) {
	r := New()
	h := r.Histogram("trustnews_test_h_seconds", "h", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE trustnews_test_h_seconds histogram",
		`trustnews_test_h_seconds_bucket{le="0.1"} 1`,
		`trustnews_test_h_seconds_bucket{le="1"} 2`,
		`trustnews_test_h_seconds_bucket{le="+Inf"} 3`,
		"trustnews_test_h_seconds_sum 2.55",
		"trustnews_test_h_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("trustnews_test_esc_total", "", "q").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `q="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := New()
	c := r.Counter("trustnews_test_conc_total", "")
	h := r.Histogram("trustnews_test_conc_seconds", "", nil)
	v := r.CounterVec("trustnews_test_conc_labeled_total", "", "worker")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := v.With("w")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				lc.Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per || h.Count() != workers*per || v.With("w").Value() != workers*per {
		t.Fatalf("lost updates: %d %d %d", c.Value(), h.Count(), v.With("w").Value())
	}
}

func TestTracerRingAndExport(t *testing.T) {
	tr := NewTracer(3)
	base := time.Unix(1562500000, 0)
	tick := 0
	tr.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	})
	root := tr.Start("commit")
	root.SetAttr("txs", "12")
	child := root.Child("execute")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "execute" || spans[0].Parent != root.ID() {
		t.Fatalf("child span wrong: %+v", spans[0])
	}
	if spans[1].Name != "commit" || spans[1].Parent != 0 || len(spans[1].Attrs) != 1 {
		t.Fatalf("root span wrong: %+v", spans[1])
	}
	if spans[1].DurationNS <= 0 {
		t.Fatalf("duration = %d, want > 0", spans[1].DurationNS)
	}
	// Ring overwrite: capacity 3, add 3 more spans -> oldest evicted.
	for _, name := range []string{"a", "b", "c"} {
		tr.Start(name).End()
	}
	spans = tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	if spans[0].Name != "a" || spans[2].Name != "c" {
		t.Fatalf("ring order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var exp struct {
		Capacity int        `json:"capacity"`
		Total    uint64     `json:"total"`
		Spans    []SpanData `json:"spans"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &exp); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if exp.Capacity != 3 || exp.Total != 5 || len(exp.Spans) != 3 {
		t.Fatalf("export = %+v", exp)
	}
}

func TestReRegisterKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("trustnews_test_kind", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("trustnews_test_kind", "")
}
