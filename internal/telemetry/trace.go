package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a tracer. 0 means "no span" (the
// parent of a root span).
type SpanID uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the exported form of one finished span.
type SpanData struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// DurationNS is the wall-clock span length in nanoseconds.
	DurationNS int64  `json:"durationNs"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// DefaultTraceCapacity is the tracer ring size when NewTracer gets 0.
const DefaultTraceCapacity = 4096

// Tracer records finished spans into a fixed-capacity ring buffer: the
// newest DefaultTraceCapacity (or the configured capacity) spans are
// retained, older ones are overwritten. Starting and annotating spans is
// lock-free except for the final End, which takes the ring lock once.
// All methods are nil-safe, so uninstrumented callers pay one branch.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	ring     []SpanData
	next     int
	total    uint64 // finished spans ever
	capacity int
	now      func() time.Time
}

// NewTracer creates a tracer retaining up to capacity finished spans
// (0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanData, 0, capacity), capacity: capacity, now: time.Now}
}

// SetClock overrides the tracer's time source (tests).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Span is one in-flight operation. Create with Tracer.Start (or
// Span.Child), annotate with SetAttr, finish with End. A nil *Span
// no-ops everywhere, so callers never nil-check.
type Span struct {
	t    *Tracer
	data SpanData
}

// Start begins a root span.
func (t *Tracer) Start(name string) *Span {
	return t.startSpan(name, 0)
}

func (t *Tracer) startSpan(name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, data: SpanData{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  t.clock(),
	}}
}

// Child begins a span parented to s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(name, s.data.ID)
}

// ID returns the span id (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// SetAttr annotates the span. Safe to call any time before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// End finishes the span and commits it to the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	s.data.DurationNS = t.now().Sub(s.data.Start).Nanoseconds()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s.data)
	} else {
		t.ring[t.next] = s.data
	}
	t.next = (t.next + 1) % t.capacity
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans have finished since creation (including
// ones already overwritten in the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// traceExport is the JSON envelope of WriteJSON.
type traceExport struct {
	Capacity int        `json:"capacity"`
	Total    uint64     `json:"total"`
	Spans    []SpanData `json:"spans"`
}

// WriteJSON renders the retained spans as one JSON document. A nil
// tracer writes an empty (but valid) export.
func (t *Tracer) WriteJSON(w io.Writer) error {
	exp := traceExport{Spans: []SpanData{}}
	if t != nil {
		exp.Capacity = t.capacity
		exp.Total = t.Total()
		exp.Spans = t.Spans()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(exp)
}
