package predict

import (
	"fmt"
	"math/rand"

	"repro/internal/social"
)

// DatasetConfig sizes the simulated cascade dataset used to train and
// evaluate the outbreak predictor.
type DatasetConfig struct {
	Net social.Config
	// Cascades per class (fake/factual).
	CascadesPerClass int
	// Seeds per cascade.
	Seeds int
	// Rounds to run the full cascade (labels use the final reach).
	Rounds int
	// ViralThreshold: a fake cascade whose final reach exceeds
	// ViralThreshold * seeds is an outbreak.
	ViralThreshold float64
	// Window is the observation prefix the predictor sees.
	Window int
	// AINoise adds uniform noise to the simulated AI score, modelling an
	// imperfect classifier.
	AINoise float64
	Seed    int64
}

// DefaultDatasetConfig returns a moderate configuration.
func DefaultDatasetConfig() DatasetConfig {
	net := social.DefaultConfig()
	net.Users, net.Bots, net.Cyborgs = 2000, 140, 80
	return DatasetConfig{
		Net:              net,
		CascadesPerClass: 80,
		Seeds:            5,
		Rounds:           14,
		ViralThreshold:   30,
		Window:           2,
		AINoise:          0.25,
		Seed:             13,
	}
}

// BuildDataset simulates labelled cascades and extracts observations at
// the configured window. It returns the examples plus the base rate of
// outbreaks (for reporting).
func BuildDataset(cfg DatasetConfig) ([]Example, float64, error) {
	net, err := social.NewNetwork(cfg.Net)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := social.DefaultSpreadParams()

	var examples []Example
	outbreaks := 0
	for i := 0; i < cfg.CascadesPerClass*2; i++ {
		kind := social.ItemFactual
		if i%2 == 0 {
			kind = social.ItemFake
		}
		// Per-cascade virality jitter: not every fake catches on (a weak
		// hoax from weak amplification fizzles), which is what makes the
		// prediction task non-trivial — "fake" alone must not determine
		// the outbreak label.
		p := params
		var seeds []int
		if kind == social.ItemFake {
			p.FakeBoost = 0.9 + 1.4*rng.Float64()
			p.BotBoost = 1.5 + 3.5*rng.Float64()
			if rng.Float64() < 0.55 {
				seeds = pick(net.BotSeeds(cfg.Seeds*3), cfg.Seeds, rng)
			} else {
				seeds = pick(net.RegularSeeds(cfg.Seeds*3), cfg.Seeds, rng)
			}
		} else {
			p.FactualBoost = 0.8 + 0.8*rng.Float64()
			seeds = pick(net.RegularSeeds(cfg.Seeds*4), cfg.Seeds, rng)
		}
		res, cohorts, err := net.SpreadDetailed(kind, seeds, p, cfg.Rounds, cfg.Seed+int64(i)*31)
		if err != nil {
			return nil, 0, fmt.Errorf("predict: cascade %d: %w", i, err)
		}
		// Simulated platform signals: imperfect and *overlapping* AI and
		// trace scores — knowing an item is probably fake is not the same
		// as knowing it will go viral.
		ai := clamp01(0.35 + cfg.AINoise*2*(rng.Float64()-0.5))
		trace := clamp01(0.7 + 0.4*(rng.Float64()-0.5))
		if kind == social.ItemFake {
			ai = clamp01(0.65 + cfg.AINoise*2*(rng.Float64()-0.5))
			trace = clamp01(0.45 + 0.4*(rng.Float64()-0.5))
		}
		obs, err := Extract(net, cohorts, cfg.Window, ai, trace)
		if err != nil {
			return nil, 0, err
		}
		outbreak := kind == social.ItemFake && float64(res.Reached) > cfg.ViralThreshold*float64(len(seeds))
		if outbreak {
			outbreaks++
		}
		examples = append(examples, Example{Obs: obs, Outbreak: outbreak})
	}
	return examples, float64(outbreaks) / float64(len(examples)), nil
}

func pick(pool []int, k int, rng *rand.Rand) []int {
	if k >= len(pool) {
		return pool
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]int, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SplitExamples partitions examples into train/test deterministically.
func SplitExamples(examples []Example, trainFrac float64, seed int64) (train, test []Example) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(examples))
	cut := int(float64(len(idx)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, examples[j])
		} else {
			test = append(test, examples[j])
		}
	}
	return train, test
}
