package predict

import (
	"math"
	"testing"

	"repro/internal/aidetect"
	"repro/internal/social"
)

func TestModelGuards(t *testing.T) {
	m := NewModel()
	if _, err := m.Score(Observation{}); err != ErrNotTrained {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
	if err := m.Train(nil); err != ErrNoData {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func TestExtractWindowValidation(t *testing.T) {
	net, err := social.NewNetwork(social.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(net, [][]int{{0}}, 0, -1, -1); err != ErrBadWindow {
		t.Fatalf("want ErrBadWindow, got %v", err)
	}
	// A dead cascade (seeds only) still extracts.
	obs, err := Extract(net, [][]int{{0, 1}}, 3, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if obs.RelativeReach != 1 {
		t.Fatalf("obs=%+v", obs)
	}
}

func TestExtractBotShare(t *testing.T) {
	net, err := social.NewNetwork(social.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bots := net.BotSeeds(4)
	regs := net.RegularSeeds(4)
	botObs, err := Extract(net, [][]int{bots, bots[:2]}, 1, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	regObs, err := Extract(net, [][]int{regs, regs[:2]}, 1, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if botObs.BotShare != 1 || regObs.BotShare != 0 {
		t.Fatalf("bot=%f reg=%f", botObs.BotShare, regObs.BotShare)
	}
}

func TestExtractGrowth(t *testing.T) {
	net, err := social.NewNetwork(social.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cohorts := [][]int{{0, 1}, {2, 3}, {4, 5, 6, 7}}
	obs, err := Extract(net, cohorts, 2, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// reach(2)=8, reach(1)=4 → growth 2; relative reach 8/2=4.
	if math.Abs(obs.GrowthRate-2) > 1e-9 || math.Abs(obs.RelativeReach-4) > 1e-9 {
		t.Fatalf("obs=%+v", obs)
	}
}

func TestPredictorLearnsOutbreaks(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.CascadesPerClass = 60
	examples, baseRate, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseRate <= 0.05 || baseRate >= 0.6 {
		t.Fatalf("degenerate base rate %.3f", baseRate)
	}
	train, test := SplitExamples(examples, 0.7, 1)
	m := NewModel()
	if err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, len(test))
	labels := make([]bool, len(test))
	for i, ex := range test {
		s, err := m.Score(ex.Obs)
		if err != nil {
			t.Fatal(err)
		}
		scores[i] = s
		labels[i] = ex.Outbreak
	}
	ev := aidetect.Metrics(scores, labels)
	if ev.AUC < 0.8 {
		t.Fatalf("predictor AUC=%.3f want >=0.8", ev.AUC)
	}
}

func TestEarlierWindowsAreHarder(t *testing.T) {
	auc := func(window int) float64 {
		cfg := DefaultDatasetConfig()
		cfg.CascadesPerClass = 60
		cfg.Window = window
		examples, _, err := BuildDataset(cfg)
		if err != nil {
			t.Fatal(err)
		}
		train, test := SplitExamples(examples, 0.7, 2)
		m := NewModel()
		if err := m.Train(train); err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, len(test))
		labels := make([]bool, len(test))
		for i, ex := range test {
			s, _ := m.Score(ex.Obs)
			scores[i] = s
			labels[i] = ex.Outbreak
		}
		return aidetect.Metrics(scores, labels).AUC
	}
	early, late := auc(1), auc(4)
	// More observation should not hurt (allow small noise).
	if late < early-0.05 {
		t.Fatalf("window=4 AUC %.3f much worse than window=1 %.3f", late, early)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.CascadesPerClass = 30
	examples, _, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		m := NewModel()
		m.Train(examples)
		s, _ := m.Score(examples[0].Obs)
		return s
	}
	if run() != run() {
		t.Fatal("training not deterministic")
	}
}
