// Package predict implements the paper's §VII hard research challenge:
// "fake news prediction algorithms to anticipate the onset of a fake news
// propagation before it is actually propagated and disputed."
//
// The predictor watches the first few rounds of a cascade and the
// platform's per-item signals, and predicts whether the item is a fake
// about to go viral — early enough that flagging (E7 shows earlier is
// stronger) still matters. Features:
//
//   - bot/cyborg share among the early spreaders (Grinberg et al.'s
//     driver, §II),
//   - early growth rate (round-over-round reach ratio),
//   - early reach relative to seed count,
//   - the AI text score when available,
//   - the supply-chain trace score when available.
//
// A tiny logistic model (trained by deterministic SGD on simulated
// cascades) combines them; experiment E13 sweeps the observation window.
package predict

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/social"
)

// Errors returned by this package.
var (
	// ErrNotTrained indicates Score before Train.
	ErrNotTrained = errors.New("predict: model not trained")
	// ErrNoData indicates an empty training set.
	ErrNoData = errors.New("predict: empty training set")
	// ErrBadWindow indicates an observation window shorter than 1 round.
	ErrBadWindow = errors.New("predict: observation window must be >= 1 round")
)

// featureCount is the model dimensionality (incl. bias).
const featureCount = 6

// Observation is what the platform can see after watching a cascade for a
// small number of rounds.
type Observation struct {
	// BotShare is the fraction of early spreaders that are bots/cyborgs.
	BotShare float64
	// GrowthRate is reach(window)/reach(window-1).
	GrowthRate float64
	// RelativeReach is reach(window)/seeds.
	RelativeReach float64
	// AIFakeProb is the text detector's score (negative = unavailable).
	AIFakeProb float64
	// TraceScore is the supply-chain factualness (negative = unavailable).
	TraceScore float64
}

// Extract builds an Observation from the first `window` rounds of a
// detailed cascade (cohorts as returned by Network.SpreadDetailed).
func Extract(net *social.Network, cohorts [][]int, window int, aiFakeProb, traceScore float64) (Observation, error) {
	if window < 1 {
		return Observation{}, ErrBadWindow
	}
	if window >= len(cohorts) {
		window = len(cohorts) - 1
	}
	if window < 1 {
		// Cascade died at the seeds.
		return Observation{
			BotShare: botShare(net, cohorts[0]), GrowthRate: 0, RelativeReach: 1,
			AIFakeProb: aiFakeProb, TraceScore: traceScore,
		}, nil
	}
	var early []int
	for _, c := range cohorts[:window+1] {
		early = append(early, c...)
	}
	reachW := len(early)
	reachPrev := reachW - len(cohorts[window])
	growth := 0.0
	if reachPrev > 0 {
		growth = float64(reachW) / float64(reachPrev)
	}
	seeds := len(cohorts[0])
	rel := 0.0
	if seeds > 0 {
		rel = float64(reachW) / float64(seeds)
	}
	return Observation{
		BotShare:      botShare(net, early),
		GrowthRate:    growth,
		RelativeReach: rel,
		AIFakeProb:    aiFakeProb,
		TraceScore:    traceScore,
	}, nil
}

func botShare(net *social.Network, users []int) float64 {
	if len(users) == 0 {
		return 0
	}
	bots := 0
	for _, u := range users {
		if net.UserAt(u).Kind != social.KindRegular {
			bots++
		}
	}
	return float64(bots) / float64(len(users))
}

// vector converts an observation into the model's feature vector.
func (o Observation) vector() [featureCount]float64 {
	var f [featureCount]float64
	f[0] = o.BotShare
	f[1] = math.Min(o.GrowthRate/4, 1)
	f[2] = math.Min(o.RelativeReach/20, 1)
	if o.AIFakeProb >= 0 {
		f[3] = o.AIFakeProb
	} else {
		f[3] = 0.5 // unknown
	}
	if o.TraceScore >= 0 {
		f[4] = 1 - o.TraceScore
	} else {
		f[4] = 0.5
	}
	f[5] = 1 // bias
	return f
}

// Example is a labelled training observation.
type Example struct {
	Obs Observation
	// Outbreak labels a cascade that was fake AND exceeded the viral
	// reach threshold.
	Outbreak bool
}

// Model is the outbreak predictor.
type Model struct {
	// Epochs, LearnRate, L2 tune SGD (defaults 60, 0.5, 1e-4).
	Epochs    int
	LearnRate float64
	L2        float64

	weights [featureCount]float64
	trained bool
}

// NewModel returns a model with default hyperparameters.
func NewModel() *Model { return &Model{Epochs: 60, LearnRate: 0.5, L2: 1e-4} }

// Train fits the model on labelled examples (deterministic).
func (m *Model) Train(examples []Example) error {
	if len(examples) == 0 {
		return ErrNoData
	}
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.LearnRate <= 0 {
		m.LearnRate = 0.5
	}
	rng := rand.New(rand.NewSource(17))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		rate := m.LearnRate / (1 + 0.1*float64(epoch))
		for _, idx := range order {
			ex := examples[idx]
			f := ex.Obs.vector()
			var z float64
			for i := range f {
				z += m.weights[i] * f[i]
			}
			y := 0.0
			if ex.Outbreak {
				y = 1
			}
			g := 1/(1+math.Exp(-z)) - y
			for i := range f {
				m.weights[i] -= rate * (g*f[i] + m.L2*m.weights[i])
			}
		}
	}
	m.trained = true
	return nil
}

// Score returns the predicted outbreak probability.
func (m *Model) Score(o Observation) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	f := o.vector()
	var z float64
	for i := range f {
		z += m.weights[i] * f[i]
	}
	return 1 / (1 + math.Exp(-z)), nil
}
