package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/ranking"
	"repro/internal/supplychain"
)

// TestClusterConvergence is the end-to-end acceptance scenario: four
// trustnewsd processes reach consensus over loopback TCP, transactions
// submitted to any node's HTTP API commit on every node, and a validator
// that is kill -9'd rejoins from its WAL and catches up with the chain
// that moved on without it.
func TestClusterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e scenario; skipped in -short mode")
	}
	c := newCluster(t, 4)
	for i := range c.nodes {
		c.start(i)
	}
	c.waitFor("all nodes past height 3", 30*time.Second, func() bool {
		for i := range c.nodes {
			if c.height(i) < 3 {
				return false
			}
		}
		return true
	})

	// Client-side signers. The authority seed is the platform default, so
	// mints are accepted; everyone else is a fresh account.
	authority := newAccount("platform-authority")
	publisher := newAccount("e2e-publisher")
	voterA := newAccount("e2e-voter-a")
	voterB := newAccount("e2e-voter-b")

	// Fund the voters (mints are authority-signed), via node 0.
	for _, to := range []*account{voterA, voterB} {
		payload, err := ranking.MintPayload(to.addr(), 1000)
		if err != nil {
			t.Fatal(err)
		}
		c.submitTx(0, authority.tx(t, "rank.mint", payload))
	}

	// Publish a news item via node 1 — the mempool relay must carry it to
	// whichever validator proposes next.
	pub, err := supplychain.PublishPayload("e2e-item-1", corpus.Topic("politics"), "Reservoir levels rose 4% after March storms.", nil, corpus.Op(""))
	if err != nil {
		t.Fatal(err)
	}
	c.submitTx(1, publisher.tx(t, "news.publish", pub))
	c.waitFor("item e2e-item-1 indexed on every node", 30*time.Second, func() bool {
		for i := range c.nodes {
			if code, err := c.getJSON(i, "/v1/items/e2e-item-1", nil); err != nil || code != http.StatusOK {
				return false
			}
		}
		return true
	})

	// Stake votes through two different nodes.
	voteA, err := ranking.VotePayload("e2e-item-1", true, 100)
	if err != nil {
		t.Fatal(err)
	}
	c.submitTx(2, voterA.tx(t, "rank.vote", voteA))
	voteB, err := ranking.VotePayload("e2e-item-1", false, 50)
	if err != nil {
		t.Fatal(err)
	}
	c.submitTx(3, voterB.tx(t, "rank.vote", voteB))
	c.waitFor("stakes deducted on node 0", 30*time.Second, func() bool {
		return c.balance(0, voterA) == 900 && c.balance(0, voterB) == 950
	})

	// Chain "height" counts blocks; the newest common block sits at
	// height-1 (block heights are zero-based).
	c.assertConverged(c.commonHeight()-1, 0, 1, 2, 3)

	// Kill -9 validator 3: no graceful shutdown, no final checkpoint. The
	// remaining three validators are a quorum and the chain keeps moving.
	killedAt := c.height(3)
	c.kill9(3)
	pub2, err := supplychain.PublishPayload("e2e-item-2", corpus.Topic("health"), "Trial shows the vaccine halves transmission.", nil, corpus.Op(""))
	if err != nil {
		t.Fatal(err)
	}
	c.submitTx(0, publisher.tx(t, "news.publish", pub2))
	c.waitFor("item e2e-item-2 on surviving nodes, chain advanced", 30*time.Second, func() bool {
		for i := 0; i < 3; i++ {
			if code, err := c.getJSON(i, "/v1/items/e2e-item-2", nil); err != nil || code != http.StatusOK {
				return false
			}
			if c.height(i) < killedAt+5 {
				return false
			}
		}
		return true
	})

	// Rejoin: same data directory, same ports. The node recovers its
	// chain from the WAL, re-enters consensus behind the quorum, and the
	// sync protocol backfills what it missed.
	c.start(3)
	c.waitFor("node 3 caught up past the quorum's kill-time lead", 45*time.Second, func() bool {
		if code, err := c.getJSON(3, "/v1/items/e2e-item-2", nil); err != nil || code != http.StatusOK {
			return false
		}
		return c.height(3) >= killedAt+5
	})
	c.assertConverged(c.commonHeight()-1, 0, 1, 2, 3)
}

// balance reads an account's token balance from node i (0 on error).
func (c *cluster) balance(i int, a *account) uint64 {
	var resp struct {
		Balance uint64 `json:"balance"`
	}
	if code, err := c.getJSON(i, "/v1/accounts/"+a.addr().String(), &resp); err != nil || code != http.StatusOK {
		return 0
	}
	return resp.Balance
}

// commonHeight returns the highest height every node has reached.
func (c *cluster) commonHeight() uint64 {
	c.t.Helper()
	min := c.height(0)
	for i := 1; i < len(c.nodes); i++ {
		if h := c.height(i); h < min {
			min = h
		}
	}
	if min == 0 {
		c.t.Fatal("no common height: some node reports height 0")
	}
	return min
}

// assertConverged fails unless all listed nodes agree on the block ID at
// height h.
func (c *cluster) assertConverged(h uint64, nodes ...int) {
	c.t.Helper()
	want := ""
	for _, i := range nodes {
		id := c.blockID(i, h)
		if id == "" {
			var raw, chain json.RawMessage
			code, err := c.getJSON(i, fmt.Sprintf("/v1/blocks/%d", h), &raw)
			_, _ = c.getJSON(i, "/v1/chain", &chain)
			c.t.Fatalf("node %d has no block at height %d (status %d, err %v, body %s, chain %s)\n%s", i, h, code, err, raw, chain, c.tail(i))
		}
		if want == "" {
			want = id
			continue
		}
		if id != want {
			c.t.Fatalf("fork at height %d: node %d has %s, node %d has %s", h, nodes[0], want, i, id)
		}
	}
	c.t.Logf("converged: %d nodes agree on block %s at height %d", len(nodes), want[:16], h)
}

// TestClusterFlagValidation covers the daemon's cluster-flag error paths
// without spawning a full cluster: bad -peers and -seed-demo conflicts
// must fail fast with a clear message instead of half-joining consensus.
func TestClusterFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short mode")
	}
	bin := daemonBinary(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing peers", []string{"-node-id", "p0"}, "-peers"},
		{"malformed peers", []string{"-node-id", "p0", "-peers", "p0:127.0.0.1"}, "id=host:port"},
		{"self not listed", []string{"-node-id", "p9", "-peers", "p0=127.0.0.1:1,p1=127.0.0.1:2"}, "no entry for this node"},
		{"seed-demo conflict", []string{"-node-id", "p0", "-peers", "p0=127.0.0.1:1,p1=127.0.0.1:2", "-seed-demo"}, "incompatible with cluster mode"},
		{"bad shards", []string{"-shards", "0"}, "-shards must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runDaemon(bin, tc.args...)
			if err == nil {
				t.Fatalf("daemon accepted %v", tc.args)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("error output %q does not mention %q", out, tc.want)
			}
		})
	}
}

// runDaemon runs the binary until exit (the error cases exit immediately)
// with a safety timeout.
func runDaemon(bin string, args ...string) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	return string(out), err
}
