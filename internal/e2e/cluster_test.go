// Package e2e black-box-tests a real trustnewsd cluster: it builds the
// daemon binary, spawns N validator processes on loopback TCP ports with
// per-node data directories and captured logs, drives transactions over
// the public HTTP API exactly like an external client would (keys never
// leave the test), and asserts chain convergence across processes —
// including across a kill -9 and rejoin.
//
// Everything in the package is test-only: the harness exercises the same
// binary an operator deploys, with no in-process shortcuts.
package e2e

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
)

// buildOnce compiles cmd/trustnewsd exactly once per test process.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

// daemonBinary returns the path of a freshly built trustnewsd.
func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			buildOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "trustnewsd-e2e-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "trustnewsd")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/trustnewsd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("build daemon: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// freePorts reserves n distinct loopback TCP ports by binding and
// releasing them. A parallel process could steal one between release and
// reuse, but the window is tiny and the test would fail loudly.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

// node is one trustnewsd process under harness control.
type node struct {
	index    int
	dataDir  string
	httpAddr string
	consAddr string
	logPath  string
	cmd      *exec.Cmd
	logFile  *os.File
}

// cluster manages n validator processes.
type cluster struct {
	t     *testing.T
	bin   string
	nodes []*node
	peers string // shared -peers flag value
}

// newCluster allocates directories and ports for n validators. No
// processes are started yet.
func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	bin := daemonBinary(t)
	root := t.TempDir()
	ports := freePorts(t, 2*n)
	c := &cluster{t: t, bin: bin}
	var peers []string
	for i := 0; i < n; i++ {
		nd := &node{
			index:    i,
			dataDir:  filepath.Join(root, fmt.Sprintf("p%d", i)),
			httpAddr: fmt.Sprintf("127.0.0.1:%d", ports[2*i]),
			consAddr: fmt.Sprintf("127.0.0.1:%d", ports[2*i+1]),
			logPath:  filepath.Join(root, fmt.Sprintf("p%d.log", i)),
		}
		c.nodes = append(c.nodes, nd)
		peers = append(peers, fmt.Sprintf("p%d=%s", i, nd.consAddr))
	}
	c.peers = strings.Join(peers, ",")
	t.Cleanup(c.stopAll)
	return c
}

// start launches node i. Ports linger in TIME_WAIT after a kill, so a
// restart retries for a few seconds before giving up.
func (c *cluster) start(i int) {
	c.t.Helper()
	nd := c.nodes[i]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.tryStart(nd); err == nil {
			return
		} else if time.Now().After(deadline) {
			c.t.Fatalf("node %d failed to start: %v\n%s", i, err, c.tail(i))
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// tryStart spawns the process and waits briefly to catch immediate exits
// (e.g. a consensus port still in TIME_WAIT from a killed predecessor).
func (c *cluster) tryStart(nd *node) error {
	logFile, err := os.OpenFile(nd.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(c.bin,
		"-node-id", fmt.Sprintf("p%d", nd.index),
		"-data", nd.dataDir,
		"-addr", nd.httpAddr,
		"-peers", c.peers,
		"-block-interval", "100ms",
		"-checkpoint-interval", "2s",
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return err
	}
	// Poll the readiness endpoint instead of sleeping a fixed interval:
	// the node is started when /v1/healthz answers, and a process that
	// died (e.g. a consensus port still in TIME_WAIT from a killed
	// predecessor) is caught by the liveness probe between polls.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cmd.ProcessState != nil || cmd.Process.Signal(syscall.Signal(0)) != nil {
			_ = cmd.Wait()
			logFile.Close()
			return fmt.Errorf("process exited during startup")
		}
		resp, err := httpClient.Get("http://" + nd.httpAddr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			logFile.Close()
			return fmt.Errorf("no healthz answer within 5s")
		}
		time.Sleep(25 * time.Millisecond)
	}
	nd.cmd = cmd
	nd.logFile = logFile
	return nil
}

// kill9 delivers SIGKILL to node i — no graceful shutdown, no final
// checkpoint. Restart must recover from the WAL.
func (c *cluster) kill9(i int) {
	c.t.Helper()
	nd := c.nodes[i]
	if nd.cmd == nil {
		return
	}
	_ = nd.cmd.Process.Kill()
	_ = nd.cmd.Wait()
	nd.logFile.Close()
	nd.cmd = nil
}

// stopAll terminates every live process (cleanup handler).
func (c *cluster) stopAll() {
	for _, nd := range c.nodes {
		if nd.cmd != nil {
			_ = nd.cmd.Process.Kill()
			_ = nd.cmd.Wait()
			nd.logFile.Close()
			nd.cmd = nil
		}
	}
}

// tail returns the last few lines of node i's captured log for failure
// messages.
func (c *cluster) tail(i int) string {
	raw, err := os.ReadFile(c.nodes[i].logPath)
	if err != nil {
		return "(no log)"
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) > 12 {
		lines = lines[len(lines)-12:]
	}
	return strings.Join(lines, "\n")
}

// ---------------------------------------------------------------------------
// HTTP client side: the harness speaks to nodes exactly like a reader app.
// ---------------------------------------------------------------------------

var httpClient = &http.Client{Timeout: 5 * time.Second}

// getJSON decodes GET <node>/<path> into out, returning the status code.
func (c *cluster) getJSON(i int, path string, out any) (int, error) {
	resp, err := httpClient.Get("http://" + c.nodes[i].httpAddr + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

type chainInfo struct {
	Height uint64 `json:"height"`
	HeadID string `json:"headId"`
}

type blockInfo struct {
	Height uint64 `json:"height"`
	ID     string `json:"id"`
}

// height returns node i's chain height (0 on any error).
func (c *cluster) height(i int) uint64 {
	var ci chainInfo
	if code, err := c.getJSON(i, "/v1/chain", &ci); err != nil || code != http.StatusOK {
		return 0
	}
	return ci.Height
}

// blockID returns node i's block ID at the given height ("" if absent).
func (c *cluster) blockID(i int, h uint64) string {
	var bi blockInfo
	code, err := c.getJSON(i, fmt.Sprintf("/v1/blocks/%d", h), &bi)
	if err != nil || code != http.StatusOK {
		return ""
	}
	return bi.ID
}

// submitTx signs nothing — the caller did — and POSTs the encoded tx to
// node i, failing the test on rejection.
func (c *cluster) submitTx(i int, tx *ledger.Tx) {
	c.t.Helper()
	body, err := json.Marshal(map[string]string{"txHex": hex.EncodeToString(tx.Encode())})
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := httpClient.Post("http://"+c.nodes[i].httpAddr+"/v1/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("submit to node %d: %v", i, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		c.t.Fatalf("submit to node %d: status %d: %s", i, resp.StatusCode, e.Error)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func (c *cluster) waitFor(what string, timeout time.Duration, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			var heights []string
			for i := range c.nodes {
				heights = append(heights, fmt.Sprintf("p%d=%d", i, c.height(i)))
			}
			c.t.Fatalf("timed out waiting for %s (heights: %s)\nnode 0 log tail:\n%s",
				what, strings.Join(heights, " "), c.tail(0))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// account is a client-side signer with a local nonce counter (the chain
// starts empty, so counting from zero matches committed state).
type account struct {
	kp    *keys.KeyPair
	nonce uint64
}

func newAccount(seed string) *account {
	return &account{kp: keys.FromSeed([]byte(seed))}
}

func (a *account) addr() keys.Address { return a.kp.Address() }

// tx signs the next transaction from this account.
func (a *account) tx(t *testing.T, kind string, payload []byte) *ledger.Tx {
	t.Helper()
	tx, err := ledger.NewTx(a.kp, a.nonce, kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	a.nonce++
	return tx
}
