// Package simnet provides a deterministic discrete-event network simulator.
//
// The paper's platform "demands a high performance blockchain network since
// the news propagation path is globally connected" (§VII). We cannot deploy
// a global validator fleet inside a test process, so the consensus, gossip
// and ledger layers run over this simulator instead: nodes exchange messages
// across links with configurable latency distributions and loss rates, time
// is virtual (no wall-clock sleeps), and every run is reproducible from a
// seed. Partitions can be injected to exercise fault paths.
//
// Network is the deterministic implementation of transport.Network; the
// protocol layers hold only that interface, so the same state machines run
// over internal/transport/tcp against real sockets. The node-facing types
// are aliases of the transport package's, which keeps the two substrates
// interchangeable without conversions and preserves the behaviour of every
// pre-transport test bit for bit.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Compile-time check: the simulator is a transport.Network.
var _ transport.Network = (*Network)(nil)

// Errors returned by this package.
var (
	// ErrDuplicateNode indicates AddNode with an existing id.
	ErrDuplicateNode = errors.New("simnet: duplicate node")
	// ErrUnknownNode indicates a send to or from an unregistered node.
	ErrUnknownNode = errors.New("simnet: unknown node")
)

// NodeID identifies a node on the simulated network.
type NodeID = transport.NodeID

// Message is a payload in flight between two nodes. Sent records the
// virtual send time.
type Message = transport.Message

// Handler receives messages delivered to a node. Handlers run sequentially
// in virtual-time order; they may call Send/Broadcast/After on the network.
type Handler = transport.Handler

// LinkConfig describes delivery characteristics between a pair of nodes
// (applied directionally).
type LinkConfig struct {
	// BaseLatency is the minimum one-way delay.
	BaseLatency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// LossRate is the probability in [0,1) that a message is dropped.
	LossRate float64
	// CorruptRate is the probability in [0,1) that a message is passed
	// through the network's corrupter before delivery (see SetCorrupter).
	// Corruption models bit-flips in transit: the message still arrives,
	// but its payload no longer matches what the sender signed or encoded.
	CorruptRate float64
	// DuplicateRate is the probability in [0,1) that a second copy of the
	// message is delivered, with an independently sampled delay.
	DuplicateRate float64
	// ReorderRate is the probability in [0,1) that a message is held back
	// by ReorderDelay, letting later traffic overtake it.
	ReorderRate float64
	// ReorderDelay is the extra hold-back applied to reordered messages
	// (zero defaults to 4x BaseLatency plus the full jitter span).
	ReorderDelay time.Duration
}

// DefaultLink is used for node pairs without an explicit link config:
// a LAN-like 5ms ± 5ms link with no loss.
var DefaultLink = LinkConfig{BaseLatency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond}

type eventKind int

const (
	eventDeliver eventKind = iota + 1
	eventTimer
)

type event struct {
	at   time.Duration
	seq  uint64 // tie-break for determinism
	kind eventKind
	msg  Message
	fn   func()
	node NodeID
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type linkKey struct{ from, to NodeID }

// Stats aggregates network-level counters.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	// Corrupted counts messages garbled in transit (delivered anyway).
	Corrupted int
	// Duplicated counts extra copies injected by DuplicateRate.
	Duplicated int
	// Reordered counts messages held back by ReorderRate.
	Reordered int
	// DroppedDetached counts messages lost because an endpoint was
	// detached (subset of Dropped).
	DroppedDetached int
	// Bytes is approximated by caller-provided message sizes; zero if the
	// caller never sets sizes.
	Bytes int64
}

// Network is a deterministic discrete-event network. It is not safe for
// concurrent use; all interaction happens from handlers during Run or from
// the owning goroutine between runs.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	now       time.Duration
	seq       uint64
	queue     eventQueue
	handlers  map[NodeID]Handler
	links     map[linkKey]LinkConfig
	partition map[NodeID]int // partition group per node; absent = group 0
	detached  map[NodeID]bool
	stats     Stats
	sizer     func(Message) int
	corrupter func(Message) Message
}

// New creates a network seeded for reproducibility.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		handlers:  make(map[NodeID]Handler),
		links:     make(map[linkKey]LinkConfig),
		partition: make(map[NodeID]int),
		detached:  make(map[NodeID]bool),
	}
}

// SetSizer installs a function estimating message size in bytes for stats.
func (n *Network) SetSizer(f func(Message) int) { n.sizer = f }

// AddNode registers a node and its message handler.
func (n *Network) AddNode(id NodeID, h Handler) error {
	if _, ok := n.handlers[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n.handlers[id] = h
	return nil
}

// SetHandler replaces the handler for an existing node (used to wire nodes
// whose construction needs the network first).
func (n *Network) SetHandler(id NodeID, h Handler) error {
	if _, ok := n.handlers[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.handlers[id] = h
	return nil
}

// Nodes returns all node ids in sorted order.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLink sets the directional link config from a to b.
func (n *Network) SetLink(from, to NodeID, cfg LinkConfig) {
	n.links[linkKey{from, to}] = cfg
}

// SetAllLinks applies cfg to every ordered node pair.
func (n *Network) SetAllLinks(cfg LinkConfig) {
	ids := n.Nodes()
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				n.links[linkKey{a, b}] = cfg
			}
		}
	}
}

// Partition splits the nodes into groups; messages across groups are
// dropped until Heal is called. Nodes not listed stay in group 0.
func (n *Network) Partition(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for gi, group := range groups {
		for _, id := range group {
			n.partition[id] = gi + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() { n.partition = make(map[NodeID]int) }

// Detach takes a node off the network: messages to or from it are dropped
// until Reattach, modelling a crashed or unplugged machine. The node's
// handler registration and identity are preserved, so it can return with
// the same id. Local timers still fire (a crashed process's timers are the
// caller's concern, e.g. a stopped consensus node ignores them).
func (n *Network) Detach(id NodeID) { n.detached[id] = true }

// Reattach reverses Detach. Messages already lost while detached stay
// lost, as on a real network.
func (n *Network) Reattach(id NodeID) { delete(n.detached, id) }

// Detached reports whether the node is currently detached.
func (n *Network) Detached(id NodeID) bool { return n.detached[id] }

// SetCorrupter installs the function applied to messages selected by a
// link's CorruptRate. Nil restores the default corrupter, which nils the
// payload (the typed equivalent of an undecodable frame). Protocol-aware
// corrupters (e.g. flipping fields inside a signed vote) can be installed
// to exercise specific rejection paths.
func (n *Network) SetCorrupter(f func(Message) Message) { n.corrupter = f }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Rand exposes the network's deterministic RNG so protocol layers share the
// same randomness stream (keeps runs reproducible from one seed).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Send schedules delivery of a message. Returns ErrUnknownNode if either
// endpoint is unregistered. Loss and partitions silently drop messages, as
// on a real network.
func (n *Network) Send(from, to NodeID, kind string, payload any) error {
	if _, ok := n.handlers[from]; !ok {
		return fmt.Errorf("%w: from %s", ErrUnknownNode, from)
	}
	if _, ok := n.handlers[to]; !ok {
		return fmt.Errorf("%w: to %s", ErrUnknownNode, to)
	}
	n.stats.Sent++
	msg := Message{From: from, To: to, Kind: kind, Payload: payload, Sent: n.now}
	if n.sizer != nil {
		n.stats.Bytes += int64(n.sizer(msg))
	}
	if n.detached[from] || n.detached[to] {
		n.stats.Dropped++
		n.stats.DroppedDetached++
		return nil
	}
	if n.partition[from] != n.partition[to] {
		n.stats.Dropped++
		return nil
	}
	cfg, ok := n.links[linkKey{from, to}]
	if !ok {
		cfg = DefaultLink
	}
	if cfg.LossRate > 0 && n.rng.Float64() < cfg.LossRate {
		n.stats.Dropped++
		return nil
	}
	if cfg.CorruptRate > 0 && n.rng.Float64() < cfg.CorruptRate {
		msg = n.corrupt(msg)
		n.stats.Corrupted++
	}
	if cfg.DuplicateRate > 0 && n.rng.Float64() < cfg.DuplicateRate {
		n.stats.Duplicated++
		n.push(&event{at: n.now + n.linkDelay(cfg), kind: eventDeliver, msg: msg})
	}
	delay := n.linkDelay(cfg)
	if cfg.ReorderRate > 0 && n.rng.Float64() < cfg.ReorderRate {
		n.stats.Reordered++
		extra := cfg.ReorderDelay
		if extra <= 0 {
			extra = 4*cfg.BaseLatency + cfg.Jitter
		}
		delay += extra
	}
	n.push(&event{at: n.now + delay, kind: eventDeliver, msg: msg})
	return nil
}

// linkDelay samples one delivery delay for the link.
func (n *Network) linkDelay(cfg LinkConfig) time.Duration {
	delay := cfg.BaseLatency
	if cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	return delay
}

// corrupt applies the installed (or default) corrupter to a message.
func (n *Network) corrupt(m Message) Message {
	if n.corrupter != nil {
		return n.corrupter(m)
	}
	m.Payload = nil
	return m
}

// Broadcast sends to every other node.
func (n *Network) Broadcast(from NodeID, kind string, payload any) error {
	for _, id := range n.Nodes() {
		if id == from {
			continue
		}
		if err := n.Send(from, id, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

// After schedules fn to run at the given node after d of virtual time.
// Timers survive partitions (they are local to the node).
func (n *Network) After(node NodeID, d time.Duration, fn func()) {
	n.push(&event{at: n.now + d, kind: eventTimer, fn: fn, node: node})
}

func (n *Network) push(ev *event) {
	ev.seq = n.seq
	n.seq++
	heap.Push(&n.queue, ev)
}

// Step processes the next event. It returns false when the queue is empty.
func (n *Network) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&n.queue).(*event)
	n.now = ev.at
	switch ev.kind {
	case eventDeliver:
		h, ok := n.handlers[ev.msg.To]
		if !ok {
			return true
		}
		// In-flight messages addressed to a node that detached after the
		// send are lost, as on a real crash.
		if n.detached[ev.msg.To] {
			n.stats.Dropped++
			n.stats.DroppedDetached++
			return true
		}
		n.stats.Delivered++
		h(ev.msg)
	case eventTimer:
		ev.fn()
	}
	return true
}

// Run processes events until the queue drains or virtual time exceeds
// until (zero means no limit). It returns the number of events processed.
func (n *Network) Run(until time.Duration) int {
	processed := 0
	for n.queue.Len() > 0 {
		if until > 0 && n.queue[0].at > until {
			n.now = until
			break
		}
		n.Step()
		processed++
	}
	return processed
}

// RunWhile processes events while cond() holds (checked before each event)
// and events remain. It returns the number of events processed.
func (n *Network) RunWhile(cond func() bool) int {
	processed := 0
	for n.queue.Len() > 0 && cond() {
		n.Step()
		processed++
	}
	return processed
}

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.queue.Len() }
