package simnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestAddNodeDuplicate(t *testing.T) {
	n := New(1)
	if err := n.AddNode("a", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("a", func(Message) {}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("want ErrDuplicateNode, got %v", err)
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	if err := n.Send("a", "ghost", "k", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if err := n.Send("ghost", "a", "k", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestDeliveryOrderByVirtualTime(t *testing.T) {
	n := New(42)
	var got []string
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(m Message) { got = append(got, m.Kind) })
	n.SetLink("a", "b", LinkConfig{BaseLatency: 10 * time.Millisecond})
	n.Send("a", "b", "first", nil)
	n.SetLink("a", "b", LinkConfig{BaseLatency: 1 * time.Millisecond})
	n.Send("a", "b", "second", nil)
	n.Run(0)
	if len(got) != 2 || got[0] != "second" || got[1] != "first" {
		t.Fatalf("got %v, want [second first]", got)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) {})
	n.SetLink("a", "b", LinkConfig{BaseLatency: 25 * time.Millisecond})
	n.Send("a", "b", "x", nil)
	n.Run(0)
	if n.Now() != 25*time.Millisecond {
		t.Fatalf("now=%v", n.Now())
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	n := New(7)
	delivered := 0
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { delivered++ })
	n.SetLink("a", "b", LinkConfig{BaseLatency: time.Millisecond, LossRate: 1.0})
	for i := 0; i < 50; i++ {
		n.Send("a", "b", "x", nil)
	}
	n.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered=%d with loss=1.0", delivered)
	}
	if n.Stats().Dropped != 50 {
		t.Fatalf("dropped=%d", n.Stats().Dropped)
	}
}

func TestLossRateStatistical(t *testing.T) {
	n := New(99)
	delivered := 0
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { delivered++ })
	n.SetLink("a", "b", LinkConfig{BaseLatency: time.Millisecond, LossRate: 0.5})
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", "x", nil)
	}
	n.Run(0)
	if delivered < total*35/100 || delivered > total*65/100 {
		t.Fatalf("delivered=%d of %d at 50%% loss — far outside expectation", delivered, total)
	}
}

func TestPartitionBlocksCrossGroup(t *testing.T) {
	n := New(3)
	deliveredB, deliveredC := 0, 0
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { deliveredB++ })
	n.AddNode("c", func(Message) { deliveredC++ })
	n.Partition([]NodeID{"a", "b"}, []NodeID{"c"})
	n.Send("a", "b", "x", nil)
	n.Send("a", "c", "x", nil)
	n.Run(0)
	if deliveredB != 1 || deliveredC != 0 {
		t.Fatalf("b=%d c=%d; want same-group delivered, cross-group dropped", deliveredB, deliveredC)
	}
	n.Heal()
	n.Send("a", "c", "x", nil)
	n.Run(0)
	if deliveredC != 1 {
		t.Fatalf("after heal c=%d", deliveredC)
	}
}

func TestTimerFires(t *testing.T) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	fired := time.Duration(-1)
	n.After("a", 40*time.Millisecond, func() { fired = n.Now() })
	n.Run(0)
	if fired != 40*time.Millisecond {
		t.Fatalf("fired at %v", fired)
	}
}

func TestHandlersCanSendMore(t *testing.T) {
	n := New(1)
	hops := 0
	n.AddNode("a", func(m Message) {
		hops++
		if hops < 5 {
			n.Send("a", "b", "ping", nil)
		}
	})
	n.AddNode("b", func(m Message) {
		n.Send("b", "a", "pong", nil)
	})
	n.Send("b", "a", "start", nil)
	n.Run(0)
	if hops != 5 {
		t.Fatalf("hops=%d", hops)
	}
}

func TestRunUntilCapsVirtualTime(t *testing.T) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) {})
	n.SetLink("a", "b", LinkConfig{BaseLatency: time.Second})
	n.Send("a", "b", "x", nil)
	n.Run(100 * time.Millisecond)
	if n.Now() != 100*time.Millisecond {
		t.Fatalf("now=%v", n.Now())
	}
	if n.Pending() != 1 {
		t.Fatalf("pending=%d; event must remain queued", n.Pending())
	}
	n.Run(0)
	if n.Pending() != 0 {
		t.Fatal("event must deliver after cap lifted")
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	n := New(1)
	counts := make(map[NodeID]int)
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		id := id
		n.AddNode(id, func(Message) { counts[id]++ })
	}
	n.Broadcast("a", "hello", nil)
	n.Run(0)
	if counts["a"] != 0 || counts["b"] != 1 || counts["c"] != 1 || counts["d"] != 1 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestDeterminismFromSeed(t *testing.T) {
	run := func(seed int64) []string {
		n := New(seed)
		var order []string
		handler := func(m Message) { order = append(order, string(m.To)+":"+m.Kind) }
		for _, id := range []NodeID{"a", "b", "c"} {
			n.AddNode(id, handler)
		}
		n.SetAllLinks(LinkConfig{BaseLatency: time.Millisecond, Jitter: 10 * time.Millisecond, LossRate: 0.2})
		for i := 0; i < 30; i++ {
			n.Broadcast("a", "m", i)
		}
		n.Run(0)
		return order
	}
	a1, a2 := run(5), run(5)
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("order diverges at %d: %s vs %s", i, a1[i], a2[i])
		}
	}
	b := run(6)
	same := len(a1) == len(b)
	if same {
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) diverge")
	}
}

func TestStatsCounters(t *testing.T) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) {})
	n.SetSizer(func(Message) int { return 100 })
	n.Send("a", "b", "x", nil)
	n.Send("a", "b", "y", nil)
	n.Run(0)
	s := n.Stats()
	if s.Sent != 2 || s.Delivered != 2 || s.Bytes != 200 {
		t.Fatalf("stats=%+v", s)
	}
}

// Property: with no loss and no partition, every sent message is delivered
// exactly once, regardless of latency configuration.
func TestDeliveryConservationProperty(t *testing.T) {
	f := func(seed int64, msgCount uint8, latencyMs uint8) bool {
		n := New(seed)
		delivered := 0
		n.AddNode("src", func(Message) {})
		n.AddNode("dst", func(Message) { delivered++ })
		n.SetLink("src", "dst", LinkConfig{
			BaseLatency: time.Duration(latencyMs) * time.Millisecond,
			Jitter:      time.Duration(latencyMs) * time.Millisecond,
		})
		total := int(msgCount)
		for i := 0; i < total; i++ {
			if err := n.Send("src", "dst", "m", i); err != nil {
				return false
			}
		}
		n.Run(0)
		return delivered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	n := New(1)
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", "b", "x", nil)
		n.Step()
	}
}

func TestSetHandlerSwapsDelivery(t *testing.T) {
	n := New(1)
	first, second := 0, 0
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { first++ })
	n.Send("a", "b", "x", nil)
	n.Run(0)
	if err := n.SetHandler("b", func(Message) { second++ }); err != nil {
		t.Fatal(err)
	}
	n.Send("a", "b", "x", nil)
	n.Run(0)
	if first != 1 || second != 1 {
		t.Fatalf("first=%d second=%d", first, second)
	}
	if err := n.SetHandler("ghost", func(Message) {}); err == nil {
		t.Fatal("want error for unknown node")
	}
}

func TestNodesSorted(t *testing.T) {
	n := New(1)
	for _, id := range []NodeID{"c", "a", "b"} {
		n.AddNode(id, func(Message) {})
	}
	got := n.Nodes()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("nodes=%v", got)
	}
}

func TestDuplicateRateDeliversCopies(t *testing.T) {
	n := New(9)
	delivered := 0
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(Message) { delivered++ })
	n.SetLink("a", "b", LinkConfig{BaseLatency: time.Millisecond, DuplicateRate: 0.999999})
	for i := 0; i < 50; i++ {
		n.Send("a", "b", "x", nil)
	}
	n.Run(0)
	st := n.Stats()
	if st.Duplicated != 50 {
		t.Fatalf("duplicated=%d, want 50", st.Duplicated)
	}
	if delivered != 100 {
		t.Fatalf("delivered=%d, want 100", delivered)
	}
}

func TestCorruptRateGarblesPayload(t *testing.T) {
	n := New(3)
	var got []any
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(m Message) { got = append(got, m.Payload) })
	n.SetLink("a", "b", LinkConfig{BaseLatency: time.Millisecond, CorruptRate: 0.999999})
	n.Send("a", "b", "x", "payload")
	n.Run(0)
	if n.Stats().Corrupted != 1 {
		t.Fatalf("corrupted=%d, want 1", n.Stats().Corrupted)
	}
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("default corrupter should nil the payload, got %v", got)
	}

	// A protocol-aware corrupter replaces the payload instead.
	n.SetCorrupter(func(m Message) Message {
		m.Payload = "garbled"
		return m
	})
	got = nil
	n.Send("a", "b", "x", "payload")
	n.Run(0)
	if len(got) != 1 || got[0] != "garbled" {
		t.Fatalf("custom corrupter not applied, got %v", got)
	}
}

func TestReorderRateHoldsMessagesBack(t *testing.T) {
	n := New(5)
	var got []string
	n.AddNode("a", func(Message) {})
	n.AddNode("b", func(m Message) { got = append(got, m.Kind) })
	// First message is always reordered (+4x base latency), second is sent
	// on a clean link and overtakes it.
	n.SetLink("a", "b", LinkConfig{BaseLatency: 10 * time.Millisecond, ReorderRate: 0.999999})
	n.Send("a", "b", "held", nil)
	n.SetLink("a", "b", LinkConfig{BaseLatency: 10 * time.Millisecond})
	n.Send("a", "b", "fresh", nil)
	n.Run(0)
	if n.Stats().Reordered != 1 {
		t.Fatalf("reordered=%d, want 1", n.Stats().Reordered)
	}
	if len(got) != 2 || got[0] != "fresh" || got[1] != "held" {
		t.Fatalf("got %v, want [fresh held]", got)
	}
}

func TestDetachDropsBothDirectionsAndInFlight(t *testing.T) {
	n := New(11)
	delivered := 0
	n.AddNode("a", func(Message) { delivered++ })
	n.AddNode("b", func(Message) { delivered++ })
	n.SetLink("a", "b", LinkConfig{BaseLatency: 10 * time.Millisecond})
	n.SetLink("b", "a", LinkConfig{BaseLatency: 10 * time.Millisecond})

	// In flight at detach time: lost.
	n.Send("a", "b", "inflight", nil)
	n.Detach("b")
	if !n.Detached("b") {
		t.Fatal("b should report detached")
	}
	// Sends to and from a detached node: lost.
	n.Send("a", "b", "to-detached", nil)
	n.Send("b", "a", "from-detached", nil)
	n.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered=%d, want 0", delivered)
	}
	st := n.Stats()
	if st.DroppedDetached != 3 || st.Dropped != 3 {
		t.Fatalf("dropped=%d detached=%d, want 3/3", st.Dropped, st.DroppedDetached)
	}

	// Reattach restores delivery with the same identity.
	n.Reattach("b")
	n.Send("a", "b", "after", nil)
	n.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered=%d after reattach, want 1", delivered)
	}
}

func TestFaultInjectionDeterministicFromSeed(t *testing.T) {
	run := func() (Stats, []string) {
		n := New(99)
		var got []string
		n.AddNode("a", func(Message) {})
		n.AddNode("b", func(m Message) { got = append(got, m.Kind) })
		n.SetLink("a", "b", LinkConfig{
			BaseLatency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond,
			LossRate: 0.2, CorruptRate: 0.2, DuplicateRate: 0.2, ReorderRate: 0.2,
		})
		for i := 0; i < 200; i++ {
			n.Send("a", "b", "m", i)
		}
		n.Run(0)
		return n.Stats(), got
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(g1) != len(g2) {
		t.Fatalf("deliveries diverged: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("delivery %d diverged", i)
		}
	}
}
