// Package social simulates news propagation over a follower network with
// bots and cyborgs, and the effect of platform interventions.
//
// The paper's goal is that "factual-sourced reporting can outpace the
// spread of fake news on social media" (§I); §II cites Grinberg et al.'s
// finding that fake-news spread "is driven substantially by bots and
// cyborgs", and §VI proposes continuous monitoring of propagation after an
// item is flagged. Experiment E7 runs this simulator to measure fake vs
// factual reach over time with and without the platform's flagging and
// source-demotion interventions.
//
// Substitution note (DESIGN.md): real Twitter cascades are unavailable
// offline; the generator builds a preferential-attachment follower graph
// with homophily groups (echo chambers, per Benkler et al.) and spreads
// items by an independent-cascade model whose share probabilities depend
// on user kind and item kind (fake items are "stickier", reflecting the
// engagement asymmetry BuzzFeed documented).
package social

import (
	"errors"
	"fmt"
	"math/rand"
)

// UserKind classifies accounts.
type UserKind int

// Account kinds.
const (
	KindRegular UserKind = iota + 1
	KindBot              // automated amplifier
	KindCyborg           // human account delegated to an app
)

// String implements fmt.Stringer.
func (k UserKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindBot:
		return "bot"
	case KindCyborg:
		return "cyborg"
	default:
		return "unknown"
	}
}

// Errors returned by this package.
var (
	// ErrBadConfig indicates an invalid network configuration.
	ErrBadConfig = errors.New("social: invalid config")
	// ErrBadSeedUsers indicates spread seeds outside the network.
	ErrBadSeedUsers = errors.New("social: seed user out of range")
)

// Config describes the network to generate.
type Config struct {
	Users   int // regular users
	Bots    int
	Cyborgs int
	// AvgFollows is the mean out-degree.
	AvgFollows int
	// Groups is the number of homophily communities.
	Groups int
	// Homophily is the probability a follow edge stays in-group.
	Homophily float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig is a moderate network for tests and examples.
func DefaultConfig() Config {
	return Config{Users: 900, Bots: 60, Cyborgs: 40, AvgFollows: 12, Groups: 4, Homophily: 0.8, Seed: 1}
}

// User is one account.
type User struct {
	Kind  UserKind
	Group int
	// Demoted users' shares reach a sampled subset of followers only
	// (the platform's source-demotion intervention).
	Demoted bool
}

// Network is the follower graph. followers[u] lists the accounts that
// follow u (i.e. receive u's shares).
type Network struct {
	users     []User
	followers [][]int
	rng       *rand.Rand
	cfg       Config
}

// NewNetwork generates a network per the config.
func NewNetwork(cfg Config) (*Network, error) {
	total := cfg.Users + cfg.Bots + cfg.Cyborgs
	if total < 2 || cfg.AvgFollows < 1 || cfg.Groups < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.Homophily < 0 || cfg.Homophily > 1 {
		return nil, fmt.Errorf("%w: homophily %f", ErrBadConfig, cfg.Homophily)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		users:     make([]User, total),
		followers: make([][]int, total),
		rng:       rng,
		cfg:       cfg,
	}
	for i := range n.users {
		kind := KindRegular
		switch {
		case i >= cfg.Users+cfg.Bots:
			kind = KindCyborg
		case i >= cfg.Users:
			kind = KindBot
		}
		n.users[i] = User{Kind: kind, Group: rng.Intn(cfg.Groups)}
	}
	// Preferential attachment with homophily: each user follows
	// ~AvgFollows others; targets are drawn proportionally to current
	// in-degree + 1, restricted to the user's group w.p. Homophily.
	inDeg := make([]int, total)
	groupMembers := make([][]int, cfg.Groups)
	for i, u := range n.users {
		groupMembers[u.Group] = append(groupMembers[u.Group], i)
	}
	for follower := 0; follower < total; follower++ {
		k := 1 + rng.Intn(cfg.AvgFollows*2-1) // mean AvgFollows
		seen := make(map[int]bool, k)
		for e := 0; e < k; e++ {
			var pool []int
			if rng.Float64() < cfg.Homophily {
				pool = groupMembers[n.users[follower].Group]
			}
			target := n.pickTarget(pool, inDeg, total)
			if target == follower || seen[target] {
				continue
			}
			seen[target] = true
			n.followers[target] = append(n.followers[target], follower)
			inDeg[target]++
		}
	}
	return n, nil
}

// pickTarget samples a followee by in-degree-proportional weight from the
// pool (or the whole network when pool is nil).
func (n *Network) pickTarget(pool []int, inDeg []int, total int) int {
	if pool == nil {
		// Two-step approximation of preferential attachment: half the
		// time follow a random user, half the time follow the followee of
		// a random edge (degree-biased).
		if n.rng.Float64() < 0.5 {
			return n.rng.Intn(total)
		}
		u := n.rng.Intn(total)
		if len(n.followers[u]) > 0 {
			return u // u has followers: degree-biased choice
		}
		return n.rng.Intn(total)
	}
	return pool[n.rng.Intn(len(pool))]
}

// Size returns the number of accounts.
func (n *Network) Size() int { return len(n.users) }

// UserAt returns account metadata.
func (n *Network) UserAt(i int) User { return n.users[i] }

// Followers returns who receives account i's shares.
func (n *Network) Followers(i int) []int {
	return append([]int(nil), n.followers[i]...)
}

// Demote flags an account so its shares reach only a fraction of its
// followers (the platform's accountability-driven intervention: identified
// fake-news sources lose distribution).
func (n *Network) Demote(i int) { n.users[i].Demoted = true }

// ResetDemotions clears all demotions.
func (n *Network) ResetDemotions() {
	for i := range n.users {
		n.users[i].Demoted = false
	}
}

// ItemKind is what spreads.
type ItemKind int

// Spreading item kinds.
const (
	ItemFactual ItemKind = iota + 1
	ItemFake
)

// SpreadParams tunes the independent-cascade model.
type SpreadParams struct {
	// BaseShare is a regular user's probability of resharing a factual
	// item to each follower.
	BaseShare float64
	// FakeBoost multiplies share probability for fake items (novelty /
	// outrage engagement premium).
	FakeBoost float64
	// FactualBoost multiplies share probability for factual items; above
	// 1.0 it models the platform's trust label ("encourage and reward
	// factual news sources", §I) making verified content more shareable.
	FactualBoost float64
	// BotBoost multiplies share probability for bots and cyborgs
	// spreading FAKE items (coordinated amplification).
	BotBoost float64
	// FlagDamp multiplies share probability once the item is flagged by
	// the platform (users see the warning label).
	FlagDamp float64
	// FlagDelay is the round at which the platform flags a fake item
	// (negative = never; the no-intervention baseline).
	FlagDelay int
	// DemotedReach is the fraction of a demoted account's followers that
	// still receive its shares.
	DemotedReach float64
}

// DefaultSpreadParams reflect the stylized facts: fake spreads faster
// unflagged; flagging cuts resharing sharply (Facebook's reported 80%
// reduction for flagged content, §I).
func DefaultSpreadParams() SpreadParams {
	return SpreadParams{
		BaseShare:    0.08,
		FakeBoost:    1.8,
		FactualBoost: 1.0,
		BotBoost:     4.0,
		FlagDamp:     0.2,
		FlagDelay:    -1,
		DemotedReach: 0.25,
	}
}

// StepStats records one cascade round.
type StepStats struct {
	Round    int `json:"round"`
	NewUsers int `json:"newUsers"`
	Total    int `json:"total"`
}

// SpreadResult is a full cascade trace.
type SpreadResult struct {
	Kind    ItemKind    `json:"kind"`
	Steps   []StepStats `json:"steps"`
	Reached int         `json:"reached"`
	// Flagged reports whether the platform intervened.
	Flagged bool `json:"flagged"`
}

// Spread runs an independent cascade from the seed users for at most
// maxRounds rounds, using a dedicated RNG seed so runs are reproducible
// and independent of graph generation.
func (n *Network) Spread(kind ItemKind, seeds []int, p SpreadParams, maxRounds int, rngSeed int64) (SpreadResult, error) {
	res, _, err := n.SpreadDetailed(kind, seeds, p, maxRounds, rngSeed)
	return res, err
}

// SpreadDetailed runs a cascade like Spread and additionally returns the
// account ids newly reached in each round (cohorts[0] are the seeds). The
// outbreak predictor (internal/predict) uses the early cohorts as its
// observation window.
func (n *Network) SpreadDetailed(kind ItemKind, seeds []int, p SpreadParams, maxRounds int, rngSeed int64) (SpreadResult, [][]int, error) {
	for _, s := range seeds {
		if s < 0 || s >= len(n.users) {
			return SpreadResult{}, nil, fmt.Errorf("%w: %d", ErrBadSeedUsers, s)
		}
	}
	rng := rand.New(rand.NewSource(rngSeed))
	reached := make([]bool, len(n.users))
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if !reached[s] {
			reached[s] = true
			frontier = append(frontier, s)
		}
	}
	res := SpreadResult{Kind: kind}
	total := len(frontier)
	res.Steps = append(res.Steps, StepStats{Round: 0, NewUsers: total, Total: total})
	cohorts := [][]int{append([]int(nil), frontier...)}

	for round := 1; round <= maxRounds && len(frontier) > 0; round++ {
		flagged := kind == ItemFake && p.FlagDelay >= 0 && round > p.FlagDelay
		if flagged {
			res.Flagged = true
		}
		var next []int
		for _, u := range frontier {
			prob := p.BaseShare
			switch kind {
			case ItemFake:
				prob *= p.FakeBoost
				if n.users[u].Kind != KindRegular {
					prob *= p.BotBoost
				}
			case ItemFactual:
				if p.FactualBoost > 0 {
					prob *= p.FactualBoost
				}
			}
			if flagged {
				prob *= p.FlagDamp
			}
			if prob > 1 {
				prob = 1
			}
			for _, f := range n.followers[u] {
				if reached[f] {
					continue
				}
				if n.users[u].Demoted && rng.Float64() > p.DemotedReach {
					continue
				}
				if rng.Float64() < prob {
					reached[f] = true
					next = append(next, f)
				}
			}
		}
		total += len(next)
		res.Steps = append(res.Steps, StepStats{Round: round, NewUsers: len(next), Total: total})
		cohorts = append(cohorts, append([]int(nil), next...))
		frontier = next
	}
	res.Reached = total
	return res, cohorts, nil
}

// HomophilyRatio measures the fraction of follow edges that stay within a
// group — a sanity metric for echo-chamber structure.
func (n *Network) HomophilyRatio() float64 {
	in, all := 0, 0
	for u, fs := range n.followers {
		for _, f := range fs {
			all++
			if n.users[u].Group == n.users[f].Group {
				in++
			}
		}
	}
	if all == 0 {
		return 0
	}
	return float64(in) / float64(all)
}

// BotSeeds returns the indices of the first k bot accounts — the typical
// fake-news seeding population.
func (n *Network) BotSeeds(k int) []int {
	var out []int
	for i, u := range n.users {
		if u.Kind == KindBot {
			out = append(out, i)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// RegularSeeds returns the indices of the first k regular accounts.
func (n *Network) RegularSeeds(k int) []int {
	var out []int
	for i, u := range n.users {
		if u.Kind == KindRegular {
			out = append(out, i)
			if len(out) == k {
				break
			}
		}
	}
	return out
}
