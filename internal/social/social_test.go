package social

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildNet(t testing.TB, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func avgReach(t testing.TB, n *Network, kind ItemKind, seeds []int, p SpreadParams, runs int) float64 {
	t.Helper()
	var sum float64
	for i := 0; i < runs; i++ {
		res, err := n.Spread(kind, seeds, p, 30, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.Reached)
	}
	return sum / float64(runs)
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Users: 1, AvgFollows: 0, Groups: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	cfg := DefaultConfig()
	cfg.Homophily = 1.5
	if _, err := NewNetwork(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestNetworkComposition(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	counts := make(map[UserKind]int)
	for i := 0; i < n.Size(); i++ {
		counts[n.UserAt(i).Kind]++
	}
	if counts[KindRegular] != 900 || counts[KindBot] != 60 || counts[KindCyborg] != 40 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestHomophilyShapesEdges(t *testing.T) {
	high := buildNet(t, Config{Users: 500, Bots: 0, Cyborgs: 0, AvgFollows: 10, Groups: 4, Homophily: 0.9, Seed: 1})
	low := buildNet(t, Config{Users: 500, Bots: 0, Cyborgs: 0, AvgFollows: 10, Groups: 4, Homophily: 0.1, Seed: 1})
	hr, lr := high.HomophilyRatio(), low.HomophilyRatio()
	if hr <= lr {
		t.Fatalf("homophily ratios inverted: high=%.3f low=%.3f", hr, lr)
	}
	if hr < 0.7 {
		t.Fatalf("high homophily ratio=%.3f", hr)
	}
}

func TestNetworkDeterministicFromSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, b := buildNet(t, cfg), buildNet(t, cfg)
	for i := 0; i < a.Size(); i++ {
		fa, fb := a.Followers(i), b.Followers(i)
		if len(fa) != len(fb) {
			t.Fatalf("follower lists diverge at %d", i)
		}
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("follower lists diverge at %d[%d]", i, j)
			}
		}
	}
}

func TestSpreadSeedValidation(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	if _, err := n.Spread(ItemFactual, []int{-1}, DefaultSpreadParams(), 5, 1); !errors.Is(err, ErrBadSeedUsers) {
		t.Fatalf("want ErrBadSeedUsers, got %v", err)
	}
	if _, err := n.Spread(ItemFactual, []int{n.Size()}, DefaultSpreadParams(), 5, 1); !errors.Is(err, ErrBadSeedUsers) {
		t.Fatalf("want ErrBadSeedUsers, got %v", err)
	}
}

func TestSpreadMonotoneTotals(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	res, err := n.Spread(ItemFake, n.BotSeeds(5), DefaultSpreadParams(), 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, s := range res.Steps {
		if s.Total < prev {
			t.Fatalf("total decreased: %+v", res.Steps)
		}
		prev = s.Total
	}
	if res.Reached != prev {
		t.Fatalf("reached=%d last total=%d", res.Reached, prev)
	}
	if res.Reached > n.Size() {
		t.Fatal("reached more users than exist")
	}
}

func TestFakeSpreadsFasterUnchecked(t *testing.T) {
	// The stylized fact the paper opens with: without intervention, fake
	// news out-propagates factual news from the same seeds.
	n := buildNet(t, DefaultConfig())
	p := DefaultSpreadParams() // FlagDelay=-1: no intervention
	seeds := n.BotSeeds(5)
	fake := avgReach(t, n, ItemFake, seeds, p, 10)
	factual := avgReach(t, n, ItemFactual, seeds, p, 10)
	if fake <= factual*1.3 {
		t.Fatalf("fake reach %.1f not clearly above factual %.1f", fake, factual)
	}
}

func TestFlaggingCutsFakeReach(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	seeds := n.BotSeeds(5)
	unflagged := DefaultSpreadParams()
	flagged := DefaultSpreadParams()
	flagged.FlagDelay = 2
	without := avgReach(t, n, ItemFake, seeds, unflagged, 10)
	with := avgReach(t, n, ItemFake, seeds, flagged, 10)
	if with >= without*0.8 {
		t.Fatalf("flagging ineffective: with=%.1f without=%.1f", with, without)
	}
}

func TestEarlierFlaggingIsStronger(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	seeds := n.BotSeeds(5)
	reach := func(delay int) float64 {
		p := DefaultSpreadParams()
		p.FlagDelay = delay
		return avgReach(t, n, ItemFake, seeds, p, 10)
	}
	early, late := reach(1), reach(6)
	if early >= late {
		t.Fatalf("early flag reach %.1f >= late %.1f", early, late)
	}
}

func TestDemotionReducesSourceReach(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	seeds := n.BotSeeds(5)
	p := DefaultSpreadParams()
	before := avgReach(t, n, ItemFake, seeds, p, 10)
	for _, s := range seeds {
		n.Demote(s)
	}
	after := avgReach(t, n, ItemFake, seeds, p, 10)
	n.ResetDemotions()
	if after >= before {
		t.Fatalf("demotion ineffective: before=%.1f after=%.1f", before, after)
	}
	restored := avgReach(t, n, ItemFake, seeds, p, 10)
	if restored < before*0.9 {
		t.Fatalf("ResetDemotions did not restore reach: %.1f vs %.1f", restored, before)
	}
}

func TestFactualOutpacesFakeWithIntervention(t *testing.T) {
	// The paper's headline scenario (E7): with the platform flagging fake
	// items early and demoting their sources, factual reporting reaches
	// more users than the fake item.
	n := buildNet(t, DefaultConfig())
	fakeSeeds := n.BotSeeds(5)
	factSeeds := n.RegularSeeds(5)

	intervened := DefaultSpreadParams()
	intervened.FlagDelay = 2
	intervened.FactualBoost = 1.6 // trust label on verified content
	for _, s := range fakeSeeds {
		n.Demote(s)
	}
	fake := avgReach(t, n, ItemFake, fakeSeeds, intervened, 10)
	factual := avgReach(t, n, ItemFactual, factSeeds, intervened, 10)
	n.ResetDemotions()
	if factual <= fake {
		t.Fatalf("factual %.1f did not outpace flagged fake %.1f", factual, fake)
	}
}

func TestSpreadDeterministicPerSeed(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	a, _ := n.Spread(ItemFake, n.BotSeeds(3), DefaultSpreadParams(), 15, 42)
	b, _ := n.Spread(ItemFake, n.BotSeeds(3), DefaultSpreadParams(), 15, 42)
	if a.Reached != b.Reached || len(a.Steps) != len(b.Steps) {
		t.Fatal("same rng seed must reproduce the cascade")
	}
}

func TestBotSeedsAreBots(t *testing.T) {
	n := buildNet(t, DefaultConfig())
	for _, s := range n.BotSeeds(10) {
		if n.UserAt(s).Kind != KindBot {
			t.Fatalf("seed %d is %v", s, n.UserAt(s).Kind)
		}
	}
	for _, s := range n.RegularSeeds(10) {
		if n.UserAt(s).Kind != KindRegular {
			t.Fatalf("seed %d is %v", s, n.UserAt(s).Kind)
		}
	}
}

// Property: a cascade's reach never exceeds network size and flagged runs
// never beat unflagged runs by more than noise.
func TestSpreadBoundsProperty(t *testing.T) {
	n := buildNet(t, Config{Users: 200, Bots: 20, Cyborgs: 10, AvgFollows: 8, Groups: 3, Homophily: 0.7, Seed: 3})
	f := func(rngSeed int64, nSeeds uint8) bool {
		k := int(nSeeds)%5 + 1
		res, err := n.Spread(ItemFake, n.BotSeeds(k), DefaultSpreadParams(), 20, rngSeed)
		if err != nil {
			return false
		}
		return res.Reached >= k && res.Reached <= n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpread(b *testing.B) {
	n, err := NewNetwork(Config{Users: 5000, Bots: 300, Cyborgs: 200, AvgFollows: 15, Groups: 5, Homophily: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultSpreadParams()
	seeds := n.BotSeeds(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Spread(ItemFake, seeds, p, 25, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
