package ledger

import (
	"bytes"
	"testing"
)

// FuzzDecodeTx checks that arbitrary bytes never panic the transaction
// decoder and that valid round-trips are stable.
func FuzzDecodeTx(f *testing.F) {
	alice := signer("fuzz")
	tx, err := NewTx(alice, 7, "news.publish", []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tx.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		decoded, err := DecodeTx(raw)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		// A successful decode must re-encode to the identical bytes.
		if !bytes.Equal(decoded.Encode(), raw) {
			t.Fatalf("re-encode mismatch for %x", raw)
		}
	})
}

// FuzzDecodeBlock checks the block decoder likewise.
func FuzzDecodeBlock(f *testing.F) {
	alice := signer("fuzz")
	tx, err := NewTx(alice, 0, "k.m", []byte("p"))
	if err != nil {
		f.Fatal(err)
	}
	blk := NewBlock(3, BlockID{1}, [32]byte{2}, testTime, alice.Address(), []*Tx{tx})
	f.Add(blk.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 100))
	f.Fuzz(func(t *testing.T, raw []byte) {
		decoded, err := DecodeBlock(raw)
		if err != nil {
			return
		}
		if decoded.Header.Height > 1<<62 {
			return // arbitrary but valid parse; nothing more to check
		}
		_ = decoded.ID()
	})
}
