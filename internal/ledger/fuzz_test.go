package ledger

import (
	"bytes"
	"testing"
)

// FuzzDecodeTx checks that arbitrary bytes never panic the transaction
// decoder and that valid round-trips are stable.
func FuzzDecodeTx(f *testing.F) {
	alice := signer("fuzz")
	tx, err := NewTx(alice, 7, "news.publish", []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tx.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		decoded, err := DecodeTx(raw)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		// A successful decode must re-encode to the identical bytes.
		if !bytes.Equal(decoded.Encode(), raw) {
			t.Fatalf("re-encode mismatch for %x", raw)
		}
	})
}

// FuzzDecodeBlock checks that arbitrary bytes never panic the block
// decoder and that any successful decode round-trips byte-identically:
// Encode(Decode(raw)) == raw. With the decoder rejecting trailing bytes
// and every field length-prefixed, the canonical encoding is bijective
// over valid inputs — the property gossip dedup and block ids rely on.
func FuzzDecodeBlock(f *testing.F) {
	alice := signer("fuzz")
	tx, err := NewTx(alice, 0, "k.m", []byte("p"))
	if err != nil {
		f.Fatal(err)
	}
	blk := NewBlock(3, BlockID{1}, [32]byte{2}, testTime, alice.Address(), []*Tx{tx})
	f.Add(blk.Encode())
	f.Add(NewBlock(0, BlockID{}, [32]byte{}, testTime, alice.Address(), nil).Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 100))
	f.Fuzz(func(t *testing.T, raw []byte) {
		decoded, err := DecodeBlock(raw)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		if !bytes.Equal(decoded.Encode(), raw) {
			t.Fatalf("re-encode mismatch for %x", raw)
		}
		_ = decoded.ID()
	})
}
