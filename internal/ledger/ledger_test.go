package ledger

import (
	"bytes"
	"errors"
	"path/filepath"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/keys"
	"repro/internal/store"
)

var testTime = time.Date(2019, 7, 8, 12, 0, 0, 0, time.UTC)

func signer(name string) *keys.KeyPair { return keys.FromSeed([]byte(name)) }

func mustTx(t testing.TB, kp *keys.KeyPair, nonce uint64, kind, payload string) *Tx {
	t.Helper()
	tx, err := NewTx(kp, nonce, kind, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTxSignVerify(t *testing.T) {
	alice := signer("alice")
	tx := mustTx(t, alice, 0, "news.publish", "headline")
	if err := tx.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTxVerifyRejectsTamper(t *testing.T) {
	alice := signer("alice")
	tx := mustTx(t, alice, 0, "news.publish", "headline")
	tx.Payload = []byte("forged headline")
	if err := tx.Verify(); !errors.Is(err, ErrTxBadSignature) {
		t.Fatalf("want ErrTxBadSignature, got %v", err)
	}
}

func TestTxVerifyRejectsSenderSwap(t *testing.T) {
	alice, bob := signer("alice"), signer("bob")
	tx := mustTx(t, alice, 0, "news.publish", "x")
	tx.Sender = bob.Address()
	if err := tx.Verify(); !errors.Is(err, ErrTxSenderMismatch) {
		t.Fatalf("want ErrTxSenderMismatch, got %v", err)
	}
}

func TestTxVerifyRejectsUnsigned(t *testing.T) {
	tx := &Tx{Sender: signer("a").Address(), Kind: "k"}
	if err := tx.Verify(); !errors.Is(err, ErrTxUnsigned) {
		t.Fatalf("want ErrTxUnsigned, got %v", err)
	}
}

func TestTxVerifyRejectsEmptyKind(t *testing.T) {
	alice := signer("alice")
	tx := &Tx{Sender: alice.Address(), Nonce: 0, Kind: ""}
	tx.Sign(alice)
	if err := tx.Verify(); !errors.Is(err, ErrTxEmptyKind) {
		t.Fatalf("want ErrTxEmptyKind, got %v", err)
	}
}

func TestTxSignWrongKey(t *testing.T) {
	tx := &Tx{Sender: signer("alice").Address(), Kind: "k"}
	if err := tx.Sign(signer("bob")); !errors.Is(err, ErrTxSenderMismatch) {
		t.Fatalf("want ErrTxSenderMismatch, got %v", err)
	}
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	alice := signer("alice")
	tx := mustTx(t, alice, 42, "rank.vote", "article-7:factual")
	got, err := DecodeTx(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != tx.ID() {
		t.Fatal("round trip changed tx id")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTxRejectsTrailing(t *testing.T) {
	tx := mustTx(t, signer("a"), 0, "k", "p")
	raw := append(tx.Encode(), 0xff)
	if _, err := DecodeTx(raw); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestDecodeTxRejectsTruncated(t *testing.T) {
	tx := mustTx(t, signer("a"), 0, "k", "payload")
	raw := tx.Encode()
	for _, n := range []int{0, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeTx(raw[:n]); err == nil {
			t.Fatalf("want error for truncation at %d", n)
		}
	}
}

func TestTxIDCoversSignature(t *testing.T) {
	alice := signer("alice")
	a := mustTx(t, alice, 0, "k", "p")
	b := mustTx(t, alice, 0, "k", "p")
	// Ed25519 is deterministic, so same intent yields same sig and id.
	if a.ID() != b.ID() {
		t.Fatal("deterministic signing should give equal ids")
	}
	// ID is memoized per signed identity, so flip the signature on a fresh
	// value rather than mutating b in place (in-place mutation returns the
	// stale memo by design; the verification pipeline always re-hashes).
	flipped := append([]byte{}, b.Sig...)
	flipped[0] ^= 1
	c := &Tx{Sender: b.Sender, Nonce: b.Nonce, Kind: b.Kind, Payload: b.Payload, PubKey: b.PubKey, Sig: flipped}
	if a.ID() == c.ID() {
		t.Fatal("id must cover the signature")
	}
}

func TestBlockValidateBody(t *testing.T) {
	alice := signer("alice")
	txs := []*Tx{mustTx(t, alice, 0, "k", "a"), mustTx(t, alice, 1, "k", "b")}
	b := NewBlock(0, BlockID{}, [32]byte{}, testTime, alice.Address(), txs)
	if err := b.ValidateBody(); err != nil {
		t.Fatal(err)
	}
	b.Txs = b.Txs[:1]
	if err := b.ValidateBody(); !errors.Is(err, ErrBlockBadTxRoot) {
		t.Fatalf("want ErrBlockBadTxRoot, got %v", err)
	}
}

func TestBlockValidateBodyBadTx(t *testing.T) {
	alice := signer("alice")
	tx := mustTx(t, alice, 0, "k", "a")
	tx.Payload = []byte("tampered")
	b := &Block{Header: Header{TxRoot: TxRoot([]*Tx{tx}), Time: testTime}, Txs: []*Tx{tx}}
	if err := b.ValidateBody(); !errors.Is(err, ErrBlockBadTx) {
		t.Fatalf("want ErrBlockBadTx, got %v", err)
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	alice := signer("alice")
	txs := []*Tx{mustTx(t, alice, 0, "news.publish", "hello"), mustTx(t, alice, 1, "rank.vote", "yes")}
	b := NewBlock(3, BlockID{1, 2}, [32]byte{9}, testTime, alice.Address(), txs)
	got, err := DecodeBlock(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != b.ID() {
		t.Fatal("block id changed through round trip")
	}
	if len(got.Txs) != 2 || got.Txs[1].Kind != "rank.vote" {
		t.Fatalf("txs corrupted: %+v", got.Txs)
	}
	if !got.Header.Time.Equal(testTime) {
		t.Fatalf("time corrupted: %v", got.Header.Time)
	}
}

func appendBlock(t testing.TB, c *Chain, proposer *keys.KeyPair, txs []*Tx) *Block {
	t.Helper()
	b := NewBlock(c.Height(), c.HeadID(), [32]byte{}, testTime, proposer.Address(), txs)
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestChainAppendAndLookup(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	tx := mustTx(t, alice, 0, "news.publish", "first")
	b := appendBlock(t, c, alice, []*Tx{tx})
	if c.Height() != 1 {
		t.Fatalf("height=%d", c.Height())
	}
	got, err := c.BlockByID(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Height != 0 {
		t.Fatalf("height=%d", got.Header.Height)
	}
	foundTx, loc, err := c.FindTx(tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if loc.Height != 0 || loc.Index != 0 || foundTx.Kind != "news.publish" {
		t.Fatalf("loc=%+v tx=%+v", loc, foundTx)
	}
}

func TestChainRejectsBadHeight(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	b := NewBlock(5, BlockID{}, [32]byte{}, testTime, alice.Address(), nil)
	if err := c.Append(b); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("want ErrBadHeight, got %v", err)
	}
}

func TestChainRejectsBadParent(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	appendBlock(t, c, alice, nil)
	b := NewBlock(1, BlockID{0xde, 0xad}, [32]byte{}, testTime, alice.Address(), nil)
	if err := c.Append(b); !errors.Is(err, ErrBadParent) {
		t.Fatalf("want ErrBadParent, got %v", err)
	}
}

func TestChainEnforcesNonces(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	appendBlock(t, c, alice, []*Tx{mustTx(t, alice, 0, "k", "a")})
	// Replay of nonce 0 must fail.
	b := NewBlock(1, c.HeadID(), [32]byte{}, testTime, alice.Address(), []*Tx{mustTx(t, alice, 0, "k", "a")})
	if err := c.Append(b); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("want ErrBadNonce, got %v", err)
	}
	// Gap must fail too.
	b2 := NewBlock(1, c.HeadID(), [32]byte{}, testTime, alice.Address(), []*Tx{mustTx(t, alice, 5, "k", "a")})
	if err := c.Append(b2); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("want ErrBadNonce for gap, got %v", err)
	}
	// Correct next nonce succeeds.
	appendBlock(t, c, alice, []*Tx{mustTx(t, alice, 1, "k", "b")})
	if c.NextNonce(alice.Address().String()) != 2 {
		t.Fatalf("next nonce=%d", c.NextNonce(alice.Address().String()))
	}
}

func TestChainNonceSequenceWithinBlock(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	txs := []*Tx{
		mustTx(t, alice, 0, "k", "a"),
		mustTx(t, alice, 1, "k", "b"),
		mustTx(t, alice, 2, "k", "c"),
	}
	appendBlock(t, c, alice, txs)
	if c.NextNonce(alice.Address().String()) != 3 {
		t.Fatal("in-block nonce sequence not applied")
	}
}

func TestChainReplayFromLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.log")
	log, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChain(log)
	if err != nil {
		t.Fatal(err)
	}
	alice := signer("alice")
	var lastTx *Tx
	for i := 0; i < 5; i++ {
		lastTx = mustTx(t, alice, uint64(i), "k", "payload"+strconv.Itoa(i))
		appendBlock(t, c, alice, []*Tx{lastTx})
	}
	headID := c.HeadID()
	log.Close()

	log2, err := store.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	c2, err := NewChain(log2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if c2.Height() != 5 || c2.HeadID() != headID {
		t.Fatalf("replayed height=%d head=%s", c2.Height(), c2.HeadID().Short())
	}
	if _, _, err := c2.FindTx(lastTx.ID()); err != nil {
		t.Fatalf("tx index not rebuilt: %v", err)
	}
	if c2.NextNonce(alice.Address().String()) != 5 {
		t.Fatal("nonces not rebuilt")
	}
}

func TestChainWalk(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	for i := 0; i < 4; i++ {
		appendBlock(t, c, alice, []*Tx{mustTx(t, alice, uint64(i), "k", "x")})
	}
	var heights []uint64
	if err := c.Walk(1, func(b *Block) bool {
		heights = append(heights, b.Header.Height)
		return b.Header.Height < 2
	}); err != nil {
		t.Fatal(err)
	}
	if len(heights) != 2 || heights[0] != 1 || heights[1] != 2 {
		t.Fatalf("heights=%v", heights)
	}
}

func TestMempoolAddBatchRemove(t *testing.T) {
	alice, bob := signer("alice"), signer("bob")
	c := NewMemChain()
	mp := NewMempool(c, 0)
	for i := 0; i < 3; i++ {
		if err := mp.Add(mustTx(t, alice, uint64(i), "k", "a"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := mp.Add(mustTx(t, bob, 0, "k", "b0")); err != nil {
		t.Fatal(err)
	}
	if mp.Size() != 4 {
		t.Fatalf("size=%d", mp.Size())
	}
	batch := mp.Batch(10)
	if len(batch) != 4 {
		t.Fatalf("batch=%d", len(batch))
	}
	appendBlock(t, c, alice, batch)
	mp.Remove(batch)
	if mp.Size() != 0 {
		t.Fatalf("size after remove=%d", mp.Size())
	}
}

func TestMempoolBatchRespectsNonceGaps(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	mp := NewMempool(c, 0)
	mp.Add(mustTx(t, alice, 0, "k", "a"))
	mp.Add(mustTx(t, alice, 2, "k", "c")) // gap at 1
	batch := mp.Batch(10)
	if len(batch) != 1 || batch[0].Nonce != 0 {
		t.Fatalf("batch=%v", batch)
	}
}

func TestMempoolRejectsDuplicate(t *testing.T) {
	alice := signer("alice")
	mp := NewMempool(NewMemChain(), 0)
	tx := mustTx(t, alice, 0, "k", "a")
	if err := mp.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(tx); !errors.Is(err, ErrDuplicateTx) {
		t.Fatalf("want ErrDuplicateTx, got %v", err)
	}
}

func TestMempoolRejectsStaleNonce(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	appendBlock(t, c, alice, []*Tx{mustTx(t, alice, 0, "k", "committed")})
	mp := NewMempool(c, 0)
	if err := mp.Add(mustTx(t, alice, 0, "k", "replay")); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("want ErrStaleNonce, got %v", err)
	}
}

func TestMempoolCapacity(t *testing.T) {
	alice := signer("alice")
	mp := NewMempool(NewMemChain(), 2)
	mp.Add(mustTx(t, alice, 0, "k", "a"))
	mp.Add(mustTx(t, alice, 1, "k", "b"))
	if err := mp.Add(mustTx(t, alice, 2, "k", "c")); !errors.Is(err, ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull, got %v", err)
	}
}

func TestMempoolBatchLimit(t *testing.T) {
	alice := signer("alice")
	mp := NewMempool(NewMemChain(), 0)
	for i := 0; i < 10; i++ {
		mp.Add(mustTx(t, alice, uint64(i), "k", strconv.Itoa(i)))
	}
	if got := len(mp.Batch(3)); got != 3 {
		t.Fatalf("batch=%d want 3", got)
	}
}

func TestMempoolRemovePrunesStale(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	mp := NewMempool(c, 0)
	tx0 := mustTx(t, alice, 0, "k", "a")
	tx0dup := mustTx(t, alice, 0, "k", "competing payload same nonce")
	mp.Add(tx0)
	mp.Add(tx0dup)
	appendBlock(t, c, alice, []*Tx{tx0})
	mp.Remove([]*Tx{tx0})
	if mp.Size() != 0 {
		t.Fatalf("stale competing tx not pruned; size=%d", mp.Size())
	}
}

// Property: encode/decode round-trips arbitrary payloads and kinds.
func TestTxRoundTripProperty(t *testing.T) {
	alice := signer("prop")
	f := func(nonce uint64, kind string, payload []byte) bool {
		if kind == "" {
			kind = "k"
		}
		tx, err := NewTx(alice, nonce, kind, payload)
		if err != nil {
			return false
		}
		got, err := DecodeTx(tx.Encode())
		if err != nil {
			return false
		}
		return got.ID() == tx.ID() && got.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain built from random per-sender activity always has
// consistent indexes: every committed tx is findable and nonces equal the
// number of txs committed per sender.
func TestChainIndexConsistencyProperty(t *testing.T) {
	f := func(plan []uint8) bool {
		c := NewMemChain()
		sent := make(map[string]uint64)
		actors := []*keys.KeyPair{signer("s0"), signer("s1"), signer("s2")}
		var allTxs []*Tx
		for _, p := range plan {
			kp := actors[int(p)%len(actors)]
			key := kp.Address().String()
			tx, err := NewTx(kp, sent[key], "k", []byte{p})
			if err != nil {
				return false
			}
			b := NewBlock(c.Height(), c.HeadID(), [32]byte{}, testTime, kp.Address(), []*Tx{tx})
			if err := c.Append(b); err != nil {
				return false
			}
			sent[key]++
			allTxs = append(allTxs, tx)
		}
		for _, tx := range allTxs {
			if _, _, err := c.FindTx(tx.ID()); err != nil {
				return false
			}
		}
		for key, n := range sent {
			if c.NextNonce(key) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTxVerify(b *testing.B) {
	tx := mustTx(b, signer("bench"), 0, "news.publish", "some article body text for benchmarking")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockRoundTrip(b *testing.B) {
	alice := signer("bench")
	txs := make([]*Tx, 100)
	for i := range txs {
		txs[i] = mustTx(b, alice, uint64(i), "k", string(bytes.Repeat([]byte("x"), 200)))
	}
	blk := NewBlock(0, BlockID{}, [32]byte{}, testTime, alice.Address(), txs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBlock(blk.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainAppend(b *testing.B) {
	alice := signer("bench")
	c := NewMemChain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := mustTx(b, alice, uint64(i), "k", "payload")
		blk := NewBlock(c.Height(), c.HeadID(), [32]byte{}, testTime, alice.Address(), []*Tx{tx})
		if err := c.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
}
