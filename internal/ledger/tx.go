// Package ledger implements the transaction, block and chain types of the
// trusting-news blockchain, plus a nonce-ordered mempool.
//
// Every interaction with the platform — publishing an article, relaying or
// modifying a news item, casting a ranking vote, promoting a fact — is a
// signed Tx recorded in a block, which is what gives the paper's §IV
// property: "each record is signed and easy to track. Can't deny that
// he/she has created this news."
package ledger

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/keys"
)

// Errors returned by transaction validation.
var (
	// ErrTxUnsigned indicates a transaction without a signature.
	ErrTxUnsigned = errors.New("ledger: unsigned transaction")
	// ErrTxBadSignature indicates a signature that does not verify.
	ErrTxBadSignature = errors.New("ledger: bad transaction signature")
	// ErrTxSenderMismatch indicates a public key not matching the sender.
	ErrTxSenderMismatch = errors.New("ledger: sender does not match public key")
	// ErrTxEmptyKind indicates a transaction without a kind.
	ErrTxEmptyKind = errors.New("ledger: empty transaction kind")
	// ErrTxPayloadTooLarge indicates a payload over the allowed size.
	// Article bodies belong in the off-chain blob store (internal/blobstore),
	// referenced by CID — not inline in transactions.
	ErrTxPayloadTooLarge = errors.New("ledger: transaction payload too large")
)

// MaxTxPayloadBytes is the consensus-level hard cap on a transaction
// payload, enforced by Verify and therefore by block validation on every
// node. Mempools typically admit far less (see Mempool.SetMaxPayloadBytes).
const MaxTxPayloadBytes = 1 << 20

// TxID is the content hash of a transaction.
type TxID [sha256.Size]byte

// String renders the id as hex.
func (id TxID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated display form.
func (id TxID) Short() string { return hex.EncodeToString(id[:4]) }

// Tx is a signed platform transaction. Kind routes the payload to a smart
// contract (e.g. "news.publish", "rank.vote", "fact.promote"); Payload is
// the contract-specific encoding.
type Tx struct {
	Sender  keys.Address      `json:"sender"`
	Nonce   uint64            `json:"nonce"`
	Kind    string            `json:"kind"`
	Payload []byte            `json:"payload"`
	PubKey  ed25519.PublicKey `json:"pubKey"`
	Sig     []byte            `json:"sig"`

	// memo caches the derived byte forms of the transaction — signing
	// bytes, canonical encoding and content hash — so hot paths (TxRoot,
	// block validation, gossip encoding) serialize each tx once instead of
	// 3-5 times. Sign invalidates it; Verify and the verification
	// pipeline's structural re-check never consult it, so a field mutated
	// after the memo was built can never smuggle stale bytes past a
	// signature or cache check.
	memo atomic.Pointer[txMemo]
}

// txMemo is one immutable snapshot of a transaction's derived bytes.
type txMemo struct {
	signing []byte
	encoded []byte
	id      TxID
}

// memoized returns the cached derived bytes, computing them once on first
// use. Concurrent first calls may compute twice; both results are
// identical and either may win the store.
func (t *Tx) memoized() *txMemo {
	if m := t.memo.Load(); m != nil {
		return m
	}
	signing := t.signingBytes()
	enc := make([]byte, 0, len(signing)+8+len(t.PubKey)+len(t.Sig))
	enc = append(enc, signing...)
	enc = appendLenPrefixed(enc, t.PubKey)
	enc = appendLenPrefixed(enc, t.Sig)
	m := &txMemo{signing: signing, encoded: enc, id: hashTx(signing, t.PubKey, t.Sig)}
	t.memo.Store(m)
	return m
}

// hashTx computes the content hash over the canonical signed surface.
func hashTx(signing, pub, sig []byte) TxID {
	h := sha256.New()
	h.Write(signing)
	h.Write(pub)
	h.Write(sig)
	var id TxID
	h.Sum(id[:0])
	return id
}

func appendLenPrefixed(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

// signingBytes produces the canonical byte encoding covered by the
// signature: length-prefixed fields in fixed order. This is deliberately
// hand-rolled rather than gob/json so the encoding is stable and canonical.
// It always serializes the current field values — memoization lives in
// memoized(), and verification paths call this directly so tampered fields
// are always re-serialized before any signature or cache decision.
func (t *Tx) signingBytes() []byte {
	var buf bytes.Buffer
	buf.Write(t.Sender[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], t.Nonce)
	buf.Write(n[:])
	writeBytes(&buf, []byte(t.Kind))
	writeBytes(&buf, t.Payload)
	return buf.Bytes()
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("ledger: short length prefix: %w", err)
	}
	// Compare in uint64 so a hostile 4 GiB length prefix can neither wrap a
	// 32-bit int nor drive the allocation below: the allocation is clamped
	// by the reader's actual remaining bytes before make runs.
	size := binary.BigEndian.Uint32(n[:])
	if uint64(size) > uint64(r.Len()) {
		return nil, fmt.Errorf("ledger: truncated field (want %d, have %d)", size, r.Len())
	}
	out := make([]byte, int(size))
	if size == 0 {
		return out, nil
	}
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("ledger: short field: %w", err)
	}
	return out, nil
}

// ID returns the content hash of the transaction, covering the signature so
// two differently-signed copies of the same intent are distinct. The hash is
// memoized; mutating fields after the first call returns the stale id (the
// verification pipeline always re-hashes, so a stale id cannot pass
// validation — see Verifier.VerifyTx).
func (t *Tx) ID() TxID {
	return t.memoized().id
}

// Sign populates PubKey and Sig using the key pair, which must match Sender.
// It invalidates any memoized derived bytes first.
func (t *Tx) Sign(kp *keys.KeyPair) error {
	if kp.Address() != t.Sender {
		return ErrTxSenderMismatch
	}
	t.memo.Store(nil)
	t.PubKey = kp.Public()
	t.Sig = kp.Sign(t.signingBytes())
	return nil
}

// Verify checks structural validity and the signature/sender binding. It
// never consults memoized bytes, so it remains sound against post-hoc field
// mutation. This is the serial baseline; block validation goes through
// Verifier.VerifyTx, which can skip the ed25519 operation via the
// verified-signature cache.
func (t *Tx) Verify() error {
	return (*Verifier)(nil).VerifyTx(t)
}

// Encode serializes the transaction to a canonical byte string. The result
// is memoized and shared between callers: treat it as read-only.
func (t *Tx) Encode() []byte {
	return t.memoized().encoded
}

// DecodeTx parses a transaction encoded by Encode.
func DecodeTx(raw []byte) (*Tx, error) {
	r := bytes.NewReader(raw)
	var t Tx
	if _, err := io.ReadFull(r, t.Sender[:]); err != nil {
		return nil, fmt.Errorf("ledger: decode sender: %w", err)
	}
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("ledger: decode nonce: %w", err)
	}
	t.Nonce = binary.BigEndian.Uint64(n[:])
	kind, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("ledger: decode kind: %w", err)
	}
	t.Kind = string(kind)
	if t.Payload, err = readBytes(r); err != nil {
		return nil, fmt.Errorf("ledger: decode payload: %w", err)
	}
	pub, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("ledger: decode pubkey: %w", err)
	}
	t.PubKey = ed25519.PublicKey(pub)
	if t.Sig, err = readBytes(r); err != nil {
		return nil, fmt.Errorf("ledger: decode sig: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ledger: %d trailing bytes after transaction", r.Len())
	}
	return &t, nil
}

// NewTx builds and signs a transaction in one step.
func NewTx(kp *keys.KeyPair, nonce uint64, kind string, payload []byte) (*Tx, error) {
	t := &Tx{Sender: kp.Address(), Nonce: nonce, Kind: kind, Payload: payload}
	if err := t.Sign(kp); err != nil {
		return nil, err
	}
	return t, nil
}
