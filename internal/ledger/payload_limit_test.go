package ledger

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func oversizedTx(t *testing.T, payloadLen int) *Tx {
	t.Helper()
	kp := signer("bulky")
	tx, err := NewTx(kp, 0, "news.publish", bytes.Repeat([]byte("x"), payloadLen))
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTxVerifyRejectsOversizedPayload(t *testing.T) {
	tx := oversizedTx(t, MaxTxPayloadBytes+1)
	if err := tx.Verify(); !errors.Is(err, ErrTxPayloadTooLarge) {
		t.Fatalf("Verify err = %v, want ErrTxPayloadTooLarge", err)
	}
	// At the cap exactly, the payload check passes.
	if err := oversizedTx(t, MaxTxPayloadBytes).Verify(); err != nil {
		t.Fatalf("Verify at cap: %v", err)
	}
}

func TestBlockValidationRejectsOversizedPayload(t *testing.T) {
	proposer := signer("proposer")
	tx := oversizedTx(t, MaxTxPayloadBytes+1)
	b := NewBlock(0, BlockID{}, [32]byte{}, testTime, proposer.Address(), []*Tx{tx})
	err := b.ValidateBody()
	if !errors.Is(err, ErrBlockBadTx) {
		t.Fatalf("ValidateBody err = %v, want ErrBlockBadTx", err)
	}
	if !strings.Contains(err.Error(), "payload too large") {
		t.Fatalf("error does not name the payload cap: %v", err)
	}
}

func TestMempoolRejectsOversizedAtAdmission(t *testing.T) {
	mp := NewMempool(NewMemChain(), 0)
	// Over the (tighter) mempool default but under the consensus cap: the
	// tx itself verifies, yet admission refuses it.
	tx := oversizedTx(t, DefaultMempoolPayloadBytes+1)
	if err := tx.Verify(); err != nil {
		t.Fatalf("tx should pass consensus verify: %v", err)
	}
	err := mp.Add(tx)
	if !errors.Is(err, ErrTxPayloadTooLarge) {
		t.Fatalf("Add err = %v, want ErrTxPayloadTooLarge", err)
	}
	if !strings.Contains(err.Error(), "mempool max") {
		t.Fatalf("error lacks mempool context: %v", err)
	}
	if mp.Size() != 0 {
		t.Fatal("oversized tx admitted")
	}
}

func TestMempoolPayloadCapConfigurable(t *testing.T) {
	mp := NewMempool(NewMemChain(), 0)
	mp.SetMaxPayloadBytes(128)
	if err := mp.Add(oversizedTx(t, 129)); !errors.Is(err, ErrTxPayloadTooLarge) {
		t.Fatalf("Add over custom cap err = %v", err)
	}
	if err := mp.Add(oversizedTx(t, 128)); err != nil {
		t.Fatalf("Add at custom cap: %v", err)
	}
	// Zero restores the default; the cap never exceeds the consensus cap.
	mp.SetMaxPayloadBytes(0)
	if mp.maxPayload != DefaultMempoolPayloadBytes {
		t.Fatalf("maxPayload after reset = %d", mp.maxPayload)
	}
	mp.SetMaxPayloadBytes(MaxTxPayloadBytes * 4)
	if mp.maxPayload != MaxTxPayloadBytes {
		t.Fatalf("maxPayload not clamped to consensus cap: %d", mp.maxPayload)
	}
}
