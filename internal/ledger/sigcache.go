package ledger

import "sync"

// DefaultSigCacheCapacity bounds the verified-signature cache when the
// caller passes 0. At 32 bytes per id plus map overhead this is ~4 MB —
// roomy enough to cover many blocks of in-flight transactions.
const DefaultSigCacheCapacity = 1 << 16

// sigCacheShards is the shard count (power of two; shard chosen by the
// first id byte, which is uniform since ids are SHA-256 outputs).
const sigCacheShards = 16

// SigCache is a bounded, sharded set of transaction ids whose ed25519
// signatures have already been verified. The id covers the exact bytes
// that were verified — signing surface, public key and signature — so a
// hit proves this precise tuple passed keys.Verify at some point.
//
// The cache is an accelerator, never a trust root: consumers must re-hash
// the transaction's current bytes before the lookup (Verifier.VerifyTx
// does), so an entry can only ever vouch for bytes that hash to it.
// Eviction is FIFO per shard; all methods are nil-safe so an uncached
// pipeline costs one branch.
type SigCache struct {
	shards [sigCacheShards]sigShard
}

type sigShard struct {
	mu   sync.Mutex
	m    map[TxID]struct{}
	ring []TxID // FIFO of resident ids, oldest at head
	head int
}

// NewSigCache creates a cache bounded at capacity ids across all shards
// (0 means DefaultSigCacheCapacity).
func NewSigCache(capacity int) *SigCache {
	if capacity <= 0 {
		capacity = DefaultSigCacheCapacity
	}
	per := (capacity + sigCacheShards - 1) / sigCacheShards
	if per < 1 {
		per = 1
	}
	c := &SigCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[TxID]struct{}, per)
		c.shards[i].ring = make([]TxID, 0, per)
	}
	return c
}

func (c *SigCache) shard(id TxID) *sigShard {
	return &c.shards[id[0]&(sigCacheShards-1)]
}

// Contains reports whether id's signature was previously verified.
func (c *SigCache) Contains(id TxID) bool {
	if c == nil {
		return false
	}
	s := c.shard(id)
	s.mu.Lock()
	_, ok := s.m[id]
	s.mu.Unlock()
	return ok
}

// Add records a verified id, evicting the shard's oldest entry at
// capacity.
func (c *SigCache) Add(id TxID) {
	if c == nil {
		return
	}
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; ok {
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, id)
	} else {
		delete(s.m, s.ring[s.head])
		s.ring[s.head] = id
		s.head = (s.head + 1) % len(s.ring)
	}
	s.m[id] = struct{}{}
}

// Len returns the number of resident ids.
func (c *SigCache) Len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}
