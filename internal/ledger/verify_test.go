package ledger

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

// buildBlock assembles a block over txs with an honest header root.
func buildBlock(txs []*Tx) *Block {
	return NewBlock(0, BlockID{}, [32]byte{}, testTime, signer("proposer").Address(), txs)
}

// signedTxs builds n valid txs from one sender.
func signedTxs(t testing.TB, seed string, n int) []*Tx {
	t.Helper()
	kp := signer(seed)
	txs := make([]*Tx, n)
	for i := range txs {
		txs[i] = mustTx(t, kp, uint64(i), "news.publish", fmt.Sprintf("article body %s %d", seed, i))
	}
	return txs
}

func TestVerifierMatchesSerialOnValidBlock(t *testing.T) {
	blk := buildBlock(signedTxs(t, "vm", 40))
	if err := blk.ValidateBody(); err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		v := NewVerifier(NewSigCache(0), workers)
		if err := v.ValidateBody(blk); err != nil {
			t.Fatalf("pipeline workers=%d: %v", workers, err)
		}
		// Second pass: every signature now served from the cache.
		if err := v.ValidateBody(blk); err != nil {
			t.Fatalf("pipeline cached pass workers=%d: %v", workers, err)
		}
	}
}

func TestVerifierRejectsBadRootAndBadTx(t *testing.T) {
	txs := signedTxs(t, "vr", 40)
	blk := buildBlock(txs)
	blk.Header.TxRoot[0] ^= 1
	for _, v := range []*Verifier{nil, NewVerifier(nil, 4), NewVerifier(NewSigCache(0), 4)} {
		if err := v.ValidateBody(blk); !errors.Is(err, ErrBlockBadTxRoot) {
			t.Fatalf("want ErrBlockBadTxRoot, got %v", err)
		}
	}

	// A block whose root honestly commits to a tx with a forged signature
	// must fail per-tx verification in both serial and parallel modes.
	bad := signedTxs(t, "vr2", 40)
	forged := &Tx{Sender: bad[7].Sender, Nonce: bad[7].Nonce, Kind: bad[7].Kind,
		Payload: bad[7].Payload, PubKey: bad[7].PubKey, Sig: append([]byte{}, bad[7].Sig...)}
	forged.Sig[0] ^= 1
	bad[7] = forged
	blk2 := buildBlock(bad)
	for _, v := range []*Verifier{nil, NewVerifier(nil, 4), NewVerifier(NewSigCache(0), 4)} {
		if err := v.ValidateBody(blk2); !errors.Is(err, ErrBlockBadTx) {
			t.Fatalf("want ErrBlockBadTx, got %v", err)
		}
	}
}

// TestSigCacheCannotBePoisoned is the adversarial case from the issue: a
// transaction is admitted (caching its verified signature), then its Sig
// and PubKey bytes are swapped post-admission. Block validation must still
// reject it — the cache key is the hash of the exact bytes being verified,
// so a mutated tx can never ride a stale cache entry past the ed25519
// check.
func TestSigCacheCannotBePoisoned(t *testing.T) {
	chain := NewMemChain()
	pool := NewMempool(chain, 64)
	alice, eve := signer("cache-alice"), signer("cache-eve")
	victim := mustTx(t, alice, 0, "news.publish", "honest article")
	other := mustTx(t, eve, 0, "news.publish", "eve article")

	if err := pool.Add(victim); err != nil {
		t.Fatal(err)
	}
	cache := chain.Verifier().Cache()
	if cache == nil || !cache.Contains(victim.ID()) {
		t.Fatal("admission must populate the chain's signature cache")
	}

	// In-place mutation: the memoized encoding (and therefore the header
	// root an attacker-proposer would publish) still carries the original
	// bytes, while verification re-serializes the mutated ones.
	victim.Sig = other.Sig
	victim.PubKey = other.PubKey
	blk := NewBlock(0, chain.HeadID(), [32]byte{}, testTime, alice.Address(), []*Tx{victim})
	if err := chain.Append(blk); err == nil {
		t.Fatal("block carrying a post-admission-mutated tx must be rejected")
	}

	// Fresh-value variant: the attacker rebuilds the tx (clean memo) with
	// swapped signature bytes and commits an honest root over the forgery.
	forged := &Tx{Sender: alice.Address(), Nonce: 0, Kind: victim.Kind,
		Payload: victim.Payload, PubKey: alice.Public(), Sig: other.Sig}
	blk2 := NewBlock(0, chain.HeadID(), [32]byte{}, testTime, alice.Address(), []*Tx{forged})
	err := chain.Append(blk2)
	if !errors.Is(err, ErrBlockBadTx) {
		t.Fatalf("forged-signature block: want ErrBlockBadTx, got %v", err)
	}
}

// TestMempoolAdmissionFeedsBlockValidation checks the steady-state fast
// path end to end: every signature verified at admission is a cache hit
// during block validation, so Append performs zero ed25519 operations.
func TestMempoolAdmissionFeedsBlockValidation(t *testing.T) {
	reg := telemetry.New()
	chain := NewMemChain()
	chain.Verifier().Instrument(reg)
	pool := NewMempool(chain, 1<<10)
	txs := signedTxs(t, "feed", 32)
	for _, tx := range txs {
		if err := pool.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	_, missesBefore := chain.Verifier().CacheStats()
	blk := NewBlock(0, chain.HeadID(), [32]byte{}, testTime, signer("feed").Address(), pool.Batch(0))
	if err := chain.Append(blk); err != nil {
		t.Fatal(err)
	}
	hits, misses := chain.Verifier().CacheStats()
	if misses != missesBefore {
		t.Fatalf("block validation re-verified %d admitted signatures", misses-missesBefore)
	}
	if hits < uint64(len(txs)) {
		t.Fatalf("want >=%d cache hits, got %d", len(txs), hits)
	}
}

func TestSigCacheBoundedEviction(t *testing.T) {
	c := NewSigCache(64)
	var ids []TxID
	for i := 0; i < 1024; i++ {
		var id TxID
		binary.BigEndian.PutUint64(id[1:], uint64(i))
		id[0] = byte(i) // spread across shards
		ids = append(ids, id)
		c.Add(id)
	}
	if got := c.Len(); got > 64 {
		t.Fatalf("cache exceeded capacity: %d > 64", got)
	}
	// The most recent id per shard must survive FIFO eviction.
	if !c.Contains(ids[len(ids)-1]) {
		t.Fatal("most recent id evicted")
	}
}

// TestDecodeMalformedInputs is the regression suite for attacker-supplied
// bytes: hostile length prefixes, truncations and trailing garbage must
// error cleanly — never panic, never allocate beyond the input's actual
// remaining length.
func TestDecodeMalformedInputs(t *testing.T) {
	tx := mustTx(t, signer("mal"), 0, "news.publish", "body")
	goodTx := tx.Encode()
	goodBlk := buildBlock([]*Tx{tx}).Encode()

	hugeLen := func(raw []byte, off int) []byte {
		out := append([]byte{}, raw...)
		binary.BigEndian.PutUint32(out[off:], 0xFFFFFFFF)
		return out
	}
	cases := []struct {
		name string
		tx   bool
		raw  []byte
	}{
		{"tx empty", true, nil},
		{"tx truncated sender", true, goodTx[:10]},
		{"tx huge kind length", true, hugeLen(goodTx, 28)}, // kind prefix after 20B sender + 8B nonce
		{"tx trailing bytes", true, append(append([]byte{}, goodTx...), 0xAA)},
		{"blk empty", false, nil},
		{"blk truncated header", false, goodBlk[:7]},
		{"blk huge header length", false, hugeLen(goodBlk, 0)},
		{"blk trailing bytes", false, append(append([]byte{}, goodBlk...), 0xBB)},
		{"blk tx count beyond data", false, func() []byte {
			out := append([]byte{}, goodBlk...)
			// The tx-count word sits right after the length-prefixed header.
			off := 4 + int(binary.BigEndian.Uint32(goodBlk[:4]))
			binary.BigEndian.PutUint32(out[off:], 0xFFFFFFFF)
			return out
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.tx {
				_, err = DecodeTx(tc.raw)
			} else {
				_, err = DecodeBlock(tc.raw)
			}
			if err == nil {
				t.Fatalf("malformed input decoded without error")
			}
		})
	}

	// Sanity: the unmutated encodings still round-trip byte-identically.
	dtx, err := DecodeTx(goodTx)
	if err != nil || !bytes.Equal(dtx.Encode(), goodTx) {
		t.Fatalf("tx round trip: err=%v", err)
	}
	dblk, err := DecodeBlock(goodBlk)
	if err != nil || !bytes.Equal(dblk.Encode(), goodBlk) {
		t.Fatalf("block round trip: err=%v", err)
	}
}

// TestTxMemoInvalidatedOnSign ensures re-signing refreshes the derived
// bytes rather than serving a stale memo.
func TestTxMemoInvalidatedOnSign(t *testing.T) {
	alice := signer("memo")
	tx := mustTx(t, alice, 3, "k", "payload")
	id1, enc1 := tx.ID(), tx.Encode()
	tx.Payload = []byte("different payload")
	if err := tx.Sign(alice); err != nil {
		t.Fatal(err)
	}
	if tx.ID() == id1 {
		t.Fatal("ID memo not invalidated by Sign")
	}
	if bytes.Equal(tx.Encode(), enc1) {
		t.Fatal("Encode memo not invalidated by Sign")
	}
	if err := tx.Verify(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBlockVerify measures block-body validation at 1k txs/block:
// the serial baseline (Block.ValidateBody), the parallel pipeline on a
// cold cache, and the pipeline in its steady state where every signature
// was cached at mempool admission. The perf_opt acceptance target is
// >=3x pipeline-vs-serial on 8 cores; on fewer cores the cached mode
// carries the win (it skips the ed25519 op entirely).
func BenchmarkBlockVerify(b *testing.B) {
	const n = 1000
	txs := signedTxs(b, "bench-verify", n)
	blk := buildBlock(txs)

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := blk.ValidateBody(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		v := NewVerifier(nil, 0) // no cache: measures pure fan-out
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.ValidateBody(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline-cached", func(b *testing.B) {
		v := NewVerifier(NewSigCache(2*n), 0)
		if err := v.ValidateBody(blk); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.ValidateBody(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}
