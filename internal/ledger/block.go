package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/keys"
	"repro/internal/merkle"
)

// Errors returned by block validation.
var (
	// ErrBlockBadTxRoot indicates a header tx root not matching the body.
	ErrBlockBadTxRoot = errors.New("ledger: block tx root mismatch")
	// ErrBlockBadTx indicates an invalid transaction inside a block.
	ErrBlockBadTx = errors.New("ledger: invalid transaction in block")
)

// BlockID is the hash of a block header.
type BlockID [sha256.Size]byte

// String renders the id as hex.
func (id BlockID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated display form.
func (id BlockID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the id is all zeroes (the genesis parent).
func (id BlockID) IsZero() bool { return id == BlockID{} }

// Header carries the chain-commitment fields of a block.
type Header struct {
	Height    uint64       `json:"height"`
	Prev      BlockID      `json:"prev"`
	TxRoot    merkle.Hash  `json:"txRoot"`
	StateRoot merkle.Hash  `json:"stateRoot"`
	Time      time.Time    `json:"time"`
	Proposer  keys.Address `json:"proposer"`
}

// Block is a header plus its transaction body.
type Block struct {
	Header Header `json:"header"`
	Txs    []*Tx  `json:"txs"`
}

// encodeHeader produces the canonical header bytes hashed into the BlockID.
func encodeHeader(h *Header) []byte {
	var buf bytes.Buffer
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], h.Height)
	buf.Write(n[:])
	buf.Write(h.Prev[:])
	buf.Write(h.TxRoot[:])
	buf.Write(h.StateRoot[:])
	binary.BigEndian.PutUint64(n[:], uint64(h.Time.UnixNano()))
	buf.Write(n[:])
	buf.Write(h.Proposer[:])
	return buf.Bytes()
}

// ID returns the block id (hash of the canonical header encoding).
func (b *Block) ID() BlockID {
	var id BlockID
	sum := sha256.Sum256(encodeHeader(&b.Header))
	copy(id[:], sum[:])
	return id
}

// TxRoot computes the Merkle root over the block's transactions.
func TxRoot(txs []*Tx) merkle.Hash {
	leaves := make([][]byte, len(txs))
	for i, t := range txs {
		leaves[i] = t.Encode()
	}
	return merkle.Root(leaves)
}

// NewBlock assembles a block at the given height, computing the tx root.
func NewBlock(height uint64, prev BlockID, stateRoot merkle.Hash, at time.Time, proposer keys.Address, txs []*Tx) *Block {
	cp := make([]*Tx, len(txs))
	copy(cp, txs)
	return &Block{
		Header: Header{
			Height:    height,
			Prev:      prev,
			TxRoot:    TxRoot(cp),
			StateRoot: stateRoot,
			Time:      at,
			Proposer:  proposer,
		},
		Txs: cp,
	}
}

// ValidateBody checks internal consistency: tx root and per-tx validity.
// Chain linkage (height, prev) is checked by Chain.Append.
func (b *Block) ValidateBody() error {
	if got := TxRoot(b.Txs); got != b.Header.TxRoot {
		return fmt.Errorf("%w: header %s body %s", ErrBlockBadTxRoot, b.Header.TxRoot.Short(), got.Short())
	}
	for i, t := range b.Txs {
		if err := t.Verify(); err != nil {
			return fmt.Errorf("%w: tx %d: %v", ErrBlockBadTx, i, err)
		}
	}
	return nil
}

// Encode serializes the block (header + txs) canonically.
func (b *Block) Encode() []byte {
	var buf bytes.Buffer
	writeBytes(&buf, encodeHeader(&b.Header))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b.Txs)))
	buf.Write(n[:])
	for _, t := range b.Txs {
		writeBytes(&buf, t.Encode())
	}
	return buf.Bytes()
}

// DecodeBlock parses a block encoded by Encode.
func DecodeBlock(raw []byte) (*Block, error) {
	r := bytes.NewReader(raw)
	hdrRaw, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("ledger: decode header: %w", err)
	}
	hdr, err := decodeHeader(hdrRaw)
	if err != nil {
		return nil, err
	}
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("ledger: decode tx count: %w", err)
	}
	count := binary.BigEndian.Uint32(n[:])
	b := &Block{Header: hdr}
	for i := uint32(0); i < count; i++ {
		txRaw, err := readBytes(r)
		if err != nil {
			return nil, fmt.Errorf("ledger: decode tx %d: %w", i, err)
		}
		t, err := DecodeTx(txRaw)
		if err != nil {
			return nil, fmt.Errorf("ledger: decode tx %d: %w", i, err)
		}
		b.Txs = append(b.Txs, t)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ledger: %d trailing bytes after block", r.Len())
	}
	return b, nil
}

func decodeHeader(raw []byte) (Header, error) {
	var h Header
	const want = 8 + sha256.Size + merkle.HashSize + merkle.HashSize + 8 + keys.AddressSize
	if len(raw) != want {
		return h, fmt.Errorf("ledger: header length %d, want %d", len(raw), want)
	}
	off := 0
	h.Height = binary.BigEndian.Uint64(raw[off:])
	off += 8
	copy(h.Prev[:], raw[off:])
	off += sha256.Size
	copy(h.TxRoot[:], raw[off:])
	off += merkle.HashSize
	copy(h.StateRoot[:], raw[off:])
	off += merkle.HashSize
	h.Time = time.Unix(0, int64(binary.BigEndian.Uint64(raw[off:]))).UTC()
	off += 8
	copy(h.Proposer[:], raw[off:])
	return h, nil
}
