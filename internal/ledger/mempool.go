package ledger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the mempool.
var (
	// ErrMempoolFull indicates the pool reached capacity.
	ErrMempoolFull = errors.New("ledger: mempool full")
	// ErrDuplicateTx indicates a transaction already pending.
	ErrDuplicateTx = errors.New("ledger: duplicate transaction")
	// ErrStaleNonce indicates a nonce at or below the committed nonce.
	ErrStaleNonce = errors.New("ledger: stale nonce")
)

// DefaultMempoolPayloadBytes is the default admission-time payload cap —
// much tighter than the consensus hard cap, since a well-behaved client
// publishes article bodies off-chain and sends only small references.
const DefaultMempoolPayloadBytes = 64 << 10

// Mempool holds verified, uncommitted transactions and assembles
// nonce-ordered batches for the block proposer.
type Mempool struct {
	mu         sync.Mutex
	cap        int
	maxPayload int
	pending    map[TxID]*Tx
	// bySender keeps pending txs per sender for nonce-ordered selection.
	bySender map[string][]*Tx
	chain    *Chain
}

// NewMempool creates a pool bounded at capacity (0 means 4096).
func NewMempool(chain *Chain, capacity int) *Mempool {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Mempool{
		cap:        capacity,
		maxPayload: DefaultMempoolPayloadBytes,
		pending:    make(map[TxID]*Tx),
		bySender:   make(map[string][]*Tx),
		chain:      chain,
	}
}

// SetMaxPayloadBytes tunes the admission-time payload cap (0 restores
// the default). It is clamped to the consensus hard cap: a looser pool
// would admit transactions every validating node rejects.
func (m *Mempool) SetMaxPayloadBytes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = DefaultMempoolPayloadBytes
	}
	if n > MaxTxPayloadBytes {
		n = MaxTxPayloadBytes
	}
	m.maxPayload = n
}

// Add verifies and enqueues a transaction.
func (m *Mempool) Add(t *Tx) error {
	if err := t.Verify(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(t.Payload) > m.maxPayload {
		return fmt.Errorf("%w: %d bytes (mempool max %d)", ErrTxPayloadTooLarge, len(t.Payload), m.maxPayload)
	}
	if len(m.pending) >= m.cap {
		return ErrMempoolFull
	}
	id := t.ID()
	if _, ok := m.pending[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateTx, id.Short())
	}
	if m.chain != nil && t.Nonce < m.chain.NextNonce(t.Sender.String()) {
		return fmt.Errorf("%w: sender %s nonce %d", ErrStaleNonce, t.Sender.Short(), t.Nonce)
	}
	m.pending[id] = t
	key := t.Sender.String()
	m.bySender[key] = append(m.bySender[key], t)
	return nil
}

// Size returns the number of pending transactions.
func (m *Mempool) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Batch selects up to max transactions forming a valid nonce sequence per
// sender, starting from the chain's committed nonces. Senders are visited
// in sorted order for determinism.
func (m *Mempool) Batch(max int) []*Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	if max <= 0 {
		max = len(m.pending)
	}
	senders := make([]string, 0, len(m.bySender))
	for s := range m.bySender {
		senders = append(senders, s)
	}
	sort.Strings(senders)

	var out []*Tx
	for _, s := range senders {
		if len(out) >= max {
			break
		}
		txs := m.bySender[s]
		sort.Slice(txs, func(i, j int) bool { return txs[i].Nonce < txs[j].Nonce })
		next := uint64(0)
		if m.chain != nil {
			next = m.chain.NextNonce(s)
		}
		for _, t := range txs {
			if len(out) >= max {
				break
			}
			if t.Nonce < next {
				continue // stale, will be pruned on Remove
			}
			if t.Nonce > next {
				break // gap: later nonces unusable this block
			}
			out = append(out, t)
			next++
		}
	}
	return out
}

// Remove drops the given transactions (after commit) and prunes any
// now-stale nonces from the same senders.
func (m *Mempool) Remove(txs []*Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range txs {
		delete(m.pending, t.ID())
	}
	for s, list := range m.bySender {
		next := uint64(0)
		if m.chain != nil {
			next = m.chain.NextNonce(s)
		}
		keep := list[:0]
		for _, t := range list {
			if _, ok := m.pending[t.ID()]; !ok {
				continue
			}
			if t.Nonce < next {
				delete(m.pending, t.ID())
				continue
			}
			keep = append(keep, t)
		}
		if len(keep) == 0 {
			delete(m.bySender, s)
			continue
		}
		m.bySender[s] = keep
	}
}
