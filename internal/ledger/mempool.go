package ledger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Errors returned by the mempool.
var (
	// ErrMempoolFull indicates the pool reached capacity.
	ErrMempoolFull = errors.New("ledger: mempool full")
	// ErrDuplicateTx indicates a transaction already pending.
	ErrDuplicateTx = errors.New("ledger: duplicate transaction")
	// ErrStaleNonce indicates a nonce at or below the committed nonce.
	ErrStaleNonce = errors.New("ledger: stale nonce")
)

// DefaultMempoolPayloadBytes is the default admission-time payload cap —
// much tighter than the consensus hard cap, since a well-behaved client
// publishes article bodies off-chain and sends only small references.
const DefaultMempoolPayloadBytes = 64 << 10

// Mempool holds verified, uncommitted transactions and assembles
// nonce-ordered batches for the block proposer.
type Mempool struct {
	mu         sync.Mutex
	cap        int
	maxPayload int
	pending    map[TxID]*Tx
	// bySender keeps pending txs per sender for nonce-ordered selection.
	bySender map[string][]*Tx
	chain    *Chain
	// verifier handles admission verification. It defaults to the chain's
	// pipeline, so a signature verified here is cached and block
	// validation later skips the ed25519 work for the same bytes. Nil
	// falls back to the serial, uncached Tx.Verify semantics.
	verifier *Verifier
	tm       mempoolMetrics
}

// mempoolMetrics holds the pool's cached instrument handles. Every
// handle is nil until Instrument is called; all methods are nil-safe,
// so the uninstrumented cost is one branch per site.
type mempoolMetrics struct {
	admitted  *telemetry.Counter
	rejected  *telemetry.CounterVec
	committed *telemetry.Counter
	pruned    *telemetry.Counter
	occupancy *telemetry.Gauge
	verifySec *telemetry.Histogram
}

// Instrument registers the pool's metrics on reg (nil disables). Call
// before the pool takes traffic.
func (m *Mempool) Instrument(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tm = mempoolMetrics{
		admitted:  reg.Counter("trustnews_mempool_admitted_total", "Transactions accepted into the pool."),
		rejected:  reg.CounterVec("trustnews_mempool_rejected_total", "Transactions rejected at admission, by reason.", "reason"),
		committed: reg.Counter("trustnews_mempool_committed_total", "Transactions removed after block commit."),
		pruned:    reg.Counter("trustnews_mempool_pruned_total", "Stale-nonce transactions evicted during pruning."),
		occupancy: reg.Gauge("trustnews_mempool_occupancy", "Transactions currently pending."),
		verifySec: reg.Histogram("trustnews_mempool_verify_seconds", "Signature/shape verification time per transaction.", nil),
	}
}

// NewMempool creates a pool bounded at capacity (0 means 4096). Admission
// verification shares the chain's verification pipeline (and therefore its
// signature cache) when a chain is given.
func NewMempool(chain *Chain, capacity int) *Mempool {
	if capacity <= 0 {
		capacity = 4096
	}
	m := &Mempool{
		cap:        capacity,
		maxPayload: DefaultMempoolPayloadBytes,
		pending:    make(map[TxID]*Tx),
		bySender:   make(map[string][]*Tx),
		chain:      chain,
	}
	if chain != nil {
		m.verifier = chain.Verifier()
	}
	return m
}

// SetVerifier swaps the admission verification pipeline (nil restores the
// serial, uncached baseline). Call before the pool takes traffic.
func (m *Mempool) SetVerifier(v *Verifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifier = v
}

// SetMaxPayloadBytes tunes the admission-time payload cap (0 restores
// the default). It is clamped to the consensus hard cap: a looser pool
// would admit transactions every validating node rejects.
func (m *Mempool) SetMaxPayloadBytes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = DefaultMempoolPayloadBytes
	}
	if n > MaxTxPayloadBytes {
		n = MaxTxPayloadBytes
	}
	m.maxPayload = n
}

// Add verifies and enqueues a transaction. Admission is the single
// verification path: a signature that passes here lands in the shared
// cache, so block validation of the same bytes skips the ed25519 check.
func (m *Mempool) Add(t *Tx) error {
	m.mu.Lock()
	v := m.verifier
	m.mu.Unlock()
	var start time.Time
	if m.tm.verifySec != nil {
		start = time.Now()
	}
	err := v.VerifyTx(t) // nil verifier degrades to serial Tx.Verify semantics
	if m.tm.verifySec != nil {
		m.tm.verifySec.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		m.tm.rejected.With("verify").Inc()
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(t.Payload) > m.maxPayload {
		m.tm.rejected.With("payload").Inc()
		return fmt.Errorf("%w: %d bytes (mempool max %d)", ErrTxPayloadTooLarge, len(t.Payload), m.maxPayload)
	}
	if len(m.pending) >= m.cap {
		m.tm.rejected.With("full").Inc()
		return ErrMempoolFull
	}
	id := t.ID()
	if _, ok := m.pending[id]; ok {
		m.tm.rejected.With("duplicate").Inc()
		return fmt.Errorf("%w: %s", ErrDuplicateTx, id.Short())
	}
	if m.chain != nil && t.Nonce < m.chain.NextNonce(t.Sender.String()) {
		m.tm.rejected.With("stale_nonce").Inc()
		return fmt.Errorf("%w: sender %s nonce %d", ErrStaleNonce, t.Sender.Short(), t.Nonce)
	}
	m.pending[id] = t
	key := t.Sender.String()
	m.bySender[key] = append(m.bySender[key], t)
	m.tm.admitted.Inc()
	m.tm.occupancy.Set(float64(len(m.pending)))
	return nil
}

// Size returns the number of pending transactions.
func (m *Mempool) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Batch selects up to max transactions forming a valid nonce sequence per
// sender, starting from the chain's committed nonces. Senders are visited
// in sorted order for determinism.
func (m *Mempool) Batch(max int) []*Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	if max <= 0 {
		max = len(m.pending)
	}
	senders := make([]string, 0, len(m.bySender))
	for s := range m.bySender {
		senders = append(senders, s)
	}
	sort.Strings(senders)

	var out []*Tx
	for _, s := range senders {
		if len(out) >= max {
			break
		}
		txs := m.bySender[s]
		sort.Slice(txs, func(i, j int) bool { return txs[i].Nonce < txs[j].Nonce })
		next := uint64(0)
		if m.chain != nil {
			next = m.chain.NextNonce(s)
		}
		for _, t := range txs {
			if len(out) >= max {
				break
			}
			if t.Nonce < next {
				continue // stale, will be pruned on Remove
			}
			if t.Nonce > next {
				break // gap: later nonces unusable this block
			}
			out = append(out, t)
			next++
		}
	}
	return out
}

// Remove drops the given transactions (after commit) and prunes any
// now-stale nonces from the same senders.
func (m *Mempool) Remove(txs []*Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range txs {
		if _, ok := m.pending[t.ID()]; ok {
			m.tm.committed.Inc()
		}
		delete(m.pending, t.ID())
	}
	for s, list := range m.bySender {
		next := uint64(0)
		if m.chain != nil {
			next = m.chain.NextNonce(s)
		}
		keep := list[:0]
		for _, t := range list {
			if _, ok := m.pending[t.ID()]; !ok {
				continue
			}
			if t.Nonce < next {
				delete(m.pending, t.ID())
				m.tm.pruned.Inc()
				continue
			}
			keep = append(keep, t)
		}
		if len(keep) == 0 {
			delete(m.bySender, s)
			continue
		}
		m.bySender[s] = keep
	}
	m.tm.occupancy.Set(float64(len(m.pending)))
}
