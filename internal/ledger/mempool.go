package ledger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// Errors returned by the mempool.
var (
	// ErrMempoolFull indicates the pool reached capacity.
	ErrMempoolFull = errors.New("ledger: mempool full")
	// ErrDuplicateTx indicates a transaction already pending.
	ErrDuplicateTx = errors.New("ledger: duplicate transaction")
	// ErrStaleNonce indicates a nonce at or below the committed nonce.
	ErrStaleNonce = errors.New("ledger: stale nonce")
)

// DefaultMempoolPayloadBytes is the default admission-time payload cap —
// much tighter than the consensus hard cap, since a well-behaved client
// publishes article bodies off-chain and sends only small references.
const DefaultMempoolPayloadBytes = 64 << 10

// Mempool holds verified, uncommitted transactions and assembles
// nonce-ordered batches for the block proposer.
//
// Internally the pool is partitioned into sender-hash lanes, each with
// its own lock, pending map and per-sender queues: concurrent Add calls
// from senders routed to different lanes never contend on the same
// mutex, which is what keeps admission off the critical path when the
// execution side also runs sharded lanes. A single-lane pool (the
// NewMempool default) behaves exactly as the original flat pool did;
// batch assembly is lane-count independent (globally sorted senders), so
// block contents do not depend on the lane configuration.
type Mempool struct {
	// mu guards the pool-wide configuration (capacity, payload cap,
	// verifier, instruments). Transaction state lives in the lanes.
	mu         sync.Mutex
	cap        int
	maxPayload int
	lanes      []*mempoolLane
	// count is the pool-wide pending total; admission reserves a slot
	// before taking any lane lock so the capacity bound holds across
	// lanes without a global transaction lock.
	count atomic.Int64
	chain *Chain
	// verifier handles admission verification. It defaults to the chain's
	// pipeline, so a signature verified here is cached and block
	// validation later skips the ed25519 work for the same bytes. Nil
	// falls back to the serial, uncached Tx.Verify semantics.
	verifier *Verifier
	tm       mempoolMetrics
}

// mempoolLane is one sender-hash partition of the pending set.
type mempoolLane struct {
	mu      sync.Mutex
	pending map[TxID]*Tx
	// bySender keeps pending txs per sender for nonce-ordered selection.
	// A sender's transactions live entirely in one lane.
	bySender map[string][]*Tx
}

// mempoolMetrics holds the pool's cached instrument handles. Every
// handle is nil until Instrument is called; all methods are nil-safe,
// so the uninstrumented cost is one branch per site.
type mempoolMetrics struct {
	admitted  *telemetry.Counter
	rejected  *telemetry.CounterVec
	committed *telemetry.Counter
	pruned    *telemetry.Counter
	occupancy *telemetry.Gauge
	verifySec *telemetry.Histogram
}

// Instrument registers the pool's metrics on reg (nil disables). Call
// before the pool takes traffic.
func (m *Mempool) Instrument(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tm = mempoolMetrics{
		admitted:  reg.Counter("trustnews_mempool_admitted_total", "Transactions accepted into the pool."),
		rejected:  reg.CounterVec("trustnews_mempool_rejected_total", "Transactions rejected at admission, by reason.", "reason"),
		committed: reg.Counter("trustnews_mempool_committed_total", "Transactions removed after block commit."),
		pruned:    reg.Counter("trustnews_mempool_pruned_total", "Stale-nonce transactions evicted during pruning."),
		occupancy: reg.Gauge("trustnews_mempool_occupancy", "Transactions currently pending."),
		verifySec: reg.Histogram("trustnews_mempool_verify_seconds", "Signature/shape verification time per transaction.", nil),
	}
}

// NewMempool creates a single-lane pool bounded at capacity (0 means
// 4096). Admission verification shares the chain's verification pipeline
// (and therefore its signature cache) when a chain is given.
func NewMempool(chain *Chain, capacity int) *Mempool {
	return NewMempoolLanes(chain, capacity, 1)
}

// NewMempoolLanes creates a pool partitioned into the given number of
// sender-hash lanes (clamped to >= 1) and bounded at capacity pool-wide
// (0 means 4096). One lane is semantically identical to NewMempool;
// more lanes only reduce admission lock contention.
func NewMempoolLanes(chain *Chain, capacity, lanes int) *Mempool {
	if capacity <= 0 {
		capacity = 4096
	}
	if lanes < 1 {
		lanes = 1
	}
	m := &Mempool{
		cap:        capacity,
		maxPayload: DefaultMempoolPayloadBytes,
		lanes:      make([]*mempoolLane, lanes),
		chain:      chain,
	}
	for i := range m.lanes {
		m.lanes[i] = &mempoolLane{
			pending:  make(map[TxID]*Tx),
			bySender: make(map[string][]*Tx),
		}
	}
	if chain != nil {
		m.verifier = chain.Verifier()
	}
	return m
}

// Lanes returns the number of sender-hash lanes.
func (m *Mempool) Lanes() int { return len(m.lanes) }

// laneOf routes a sender to its lane.
func (m *Mempool) laneOf(sender string) *mempoolLane {
	return m.lanes[store.ShardOf(sender, len(m.lanes))]
}

// SetVerifier swaps the admission verification pipeline (nil restores the
// serial, uncached baseline). Call before the pool takes traffic.
func (m *Mempool) SetVerifier(v *Verifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifier = v
}

// SetMaxPayloadBytes tunes the admission-time payload cap (0 restores
// the default). It is clamped to the consensus hard cap: a looser pool
// would admit transactions every validating node rejects.
func (m *Mempool) SetMaxPayloadBytes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = DefaultMempoolPayloadBytes
	}
	if n > MaxTxPayloadBytes {
		n = MaxTxPayloadBytes
	}
	m.maxPayload = n
}

// Add verifies and enqueues a transaction. Admission is the single
// verification path: a signature that passes here lands in the shared
// cache, so block validation of the same bytes skips the ed25519 check.
func (m *Mempool) Add(t *Tx) error {
	m.mu.Lock()
	v := m.verifier
	maxPayload := m.maxPayload
	capacity := m.cap
	m.mu.Unlock()
	var start time.Time
	if m.tm.verifySec != nil {
		start = time.Now()
	}
	err := v.VerifyTx(t) // nil verifier degrades to serial Tx.Verify semantics
	if m.tm.verifySec != nil {
		m.tm.verifySec.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		m.tm.rejected.With("verify").Inc()
		return err
	}
	if len(t.Payload) > maxPayload {
		m.tm.rejected.With("payload").Inc()
		return fmt.Errorf("%w: %d bytes (mempool max %d)", ErrTxPayloadTooLarge, len(t.Payload), maxPayload)
	}
	// Reserve a slot before taking the lane lock; released on any
	// subsequent rejection. The pool-wide bound therefore holds without
	// serializing admission across lanes.
	if m.count.Add(1) > int64(capacity) {
		m.count.Add(-1)
		m.tm.rejected.With("full").Inc()
		return ErrMempoolFull
	}
	sender := t.Sender.String()
	lane := m.laneOf(sender)
	lane.mu.Lock()
	defer lane.mu.Unlock()
	id := t.ID()
	if _, ok := lane.pending[id]; ok {
		m.count.Add(-1)
		m.tm.rejected.With("duplicate").Inc()
		return fmt.Errorf("%w: %s", ErrDuplicateTx, id.Short())
	}
	if m.chain != nil && t.Nonce < m.chain.NextNonce(sender) {
		m.count.Add(-1)
		m.tm.rejected.With("stale_nonce").Inc()
		return fmt.Errorf("%w: sender %s nonce %d", ErrStaleNonce, t.Sender.Short(), t.Nonce)
	}
	lane.pending[id] = t
	lane.bySender[sender] = append(lane.bySender[sender], t)
	m.tm.admitted.Inc()
	m.tm.occupancy.Set(float64(m.count.Load()))
	return nil
}

// Size returns the number of pending transactions.
func (m *Mempool) Size() int {
	return int(m.count.Load())
}

// lockAll takes every lane lock in index order (the single lock order
// used by whole-pool operations, so lanes never deadlock against each
// other) and returns the matching unlock.
func (m *Mempool) lockAll() func() {
	for _, l := range m.lanes {
		l.mu.Lock()
	}
	return func() {
		for _, l := range m.lanes {
			l.mu.Unlock()
		}
	}
}

// Batch selects up to max transactions forming a valid nonce sequence per
// sender, starting from the chain's committed nonces. Senders are visited
// in globally sorted order for determinism, so batch contents are
// independent of the lane count.
func (m *Mempool) Batch(max int) []*Tx {
	defer m.lockAll()()
	if max <= 0 {
		max = int(m.count.Load())
	}
	byLane := make(map[string]*mempoolLane)
	senders := make([]string, 0, len(byLane))
	for _, l := range m.lanes {
		for s := range l.bySender {
			byLane[s] = l
			senders = append(senders, s)
		}
	}
	sort.Strings(senders)

	var out []*Tx
	for _, s := range senders {
		if len(out) >= max {
			break
		}
		txs := byLane[s].bySender[s]
		sort.Slice(txs, func(i, j int) bool { return txs[i].Nonce < txs[j].Nonce })
		next := uint64(0)
		if m.chain != nil {
			next = m.chain.NextNonce(s)
		}
		for _, t := range txs {
			if len(out) >= max {
				break
			}
			if t.Nonce < next {
				continue // stale, will be pruned on Remove
			}
			if t.Nonce > next {
				break // gap: later nonces unusable this block
			}
			out = append(out, t)
			next++
		}
	}
	return out
}

// Remove drops the given transactions (after commit) and prunes any
// now-stale nonces from the same senders.
func (m *Mempool) Remove(txs []*Tx) {
	defer m.lockAll()()
	removed := 0
	for _, t := range txs {
		lane := m.laneOf(t.Sender.String())
		if _, ok := lane.pending[t.ID()]; ok {
			m.tm.committed.Inc()
			removed++
		}
		delete(lane.pending, t.ID())
	}
	for _, lane := range m.lanes {
		for s, list := range lane.bySender {
			next := uint64(0)
			if m.chain != nil {
				next = m.chain.NextNonce(s)
			}
			keep := list[:0]
			for _, t := range list {
				if _, ok := lane.pending[t.ID()]; !ok {
					continue
				}
				if t.Nonce < next {
					delete(lane.pending, t.ID())
					m.tm.pruned.Inc()
					removed++
					continue
				}
				keep = append(keep, t)
			}
			if len(keep) == 0 {
				delete(lane.bySender, s)
				continue
			}
			lane.bySender[s] = keep
		}
	}
	m.count.Add(int64(-removed))
	m.tm.occupancy.Set(float64(m.count.Load()))
}
