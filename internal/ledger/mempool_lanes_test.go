package ledger

import (
	"errors"
	"strconv"
	"sync"
	"testing"
)

// TestMempoolLanesBatchMatchesFlat feeds the same traffic into a flat
// pool and a 4-lane pool: batch contents must be identical — lane
// partitioning must never change which transactions a proposer picks or
// their order.
func TestMempoolLanesBatchMatchesFlat(t *testing.T) {
	c := NewMemChain()
	flat := NewMempool(c, 0)
	laned := NewMempoolLanes(c, 0, 4)
	if got := laned.Lanes(); got != 4 {
		t.Fatalf("lanes=%d want 4", got)
	}
	for i := 0; i < 16; i++ {
		kp := signer("sender" + strconv.Itoa(i))
		for n := 0; n < 3; n++ {
			tx := mustTx(t, kp, uint64(n), "k", strconv.Itoa(i)+"/"+strconv.Itoa(n))
			if err := flat.Add(tx); err != nil {
				t.Fatal(err)
			}
			if err := laned.Add(tx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if flat.Size() != laned.Size() {
		t.Fatalf("size flat=%d laned=%d", flat.Size(), laned.Size())
	}
	fb, lb := flat.Batch(0), laned.Batch(0)
	if len(fb) != len(lb) {
		t.Fatalf("batch len flat=%d laned=%d", len(fb), len(lb))
	}
	for i := range fb {
		if fb[i].ID() != lb[i].ID() {
			t.Fatalf("batch[%d] diverges: flat=%s laned=%s", i, fb[i].ID().Short(), lb[i].ID().Short())
		}
	}
}

// TestMempoolLanesCapacityAcrossLanes verifies that the pool-wide
// capacity bound holds however senders hash across lanes.
func TestMempoolLanesCapacityAcrossLanes(t *testing.T) {
	mp := NewMempoolLanes(NewMemChain(), 8, 4)
	full := 0
	for i := 0; i < 16; i++ {
		kp := signer("cap" + strconv.Itoa(i))
		if err := mp.Add(mustTx(t, kp, 0, "k", "x")); errors.Is(err, ErrMempoolFull) {
			full++
		}
	}
	if mp.Size() != 8 {
		t.Fatalf("size=%d want capacity 8", mp.Size())
	}
	if full != 8 {
		t.Fatalf("rejected=%d want 8", full)
	}
}

// TestMempoolLanesRejectionsAndRemove checks duplicate/stale handling and
// commit-time pruning work per lane exactly as in the flat pool.
func TestMempoolLanesRejectionsAndRemove(t *testing.T) {
	alice := signer("alice")
	c := NewMemChain()
	mp := NewMempoolLanes(c, 0, 4)
	tx0 := mustTx(t, alice, 0, "k", "a")
	if err := mp.Add(tx0); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(tx0); !errors.Is(err, ErrDuplicateTx) {
		t.Fatalf("want ErrDuplicateTx, got %v", err)
	}
	// A competing same-nonce tx is pruned once nonce 0 commits.
	tx0dup := mustTx(t, alice, 0, "k", "competing payload")
	if err := mp.Add(tx0dup); err != nil {
		t.Fatal(err)
	}
	appendBlock(t, c, alice, []*Tx{tx0})
	mp.Remove([]*Tx{tx0})
	if mp.Size() != 0 {
		t.Fatalf("stale competing tx not pruned; size=%d", mp.Size())
	}
	if err := mp.Add(mustTx(t, alice, 0, "k", "replay")); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("want ErrStaleNonce, got %v", err)
	}
}

// TestMempoolLanesConcurrentAdd hammers a laned pool from many
// goroutines; run under -race this is the lane-locking regression test.
func TestMempoolLanesConcurrentAdd(t *testing.T) {
	c := NewMemChain()
	mp := NewMempoolLanes(c, 0, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kp := signer("conc" + strconv.Itoa(g))
			for n := 0; n < 50; n++ {
				tx, err := NewTx(kp, uint64(n), "k", []byte{byte(n)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := mp.Add(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if mp.Size() != 400 {
		t.Fatalf("size=%d want 400", mp.Size())
	}
	if got := len(mp.Batch(0)); got != 400 {
		t.Fatalf("batch=%d want 400", got)
	}
}
