package ledger

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro/internal/store"
)

// Errors returned by chain operations.
var (
	// ErrBadHeight indicates a block whose height is not head+1.
	ErrBadHeight = errors.New("ledger: block height out of sequence")
	// ErrBadParent indicates a block whose Prev does not match the head.
	ErrBadParent = errors.New("ledger: block parent mismatch")
	// ErrBadNonce indicates a transaction with an unexpected sender nonce.
	ErrBadNonce = errors.New("ledger: bad transaction nonce")
	// ErrBlockNotFound indicates an unknown block height or id.
	ErrBlockNotFound = errors.New("ledger: block not found")
	// ErrTxNotFound indicates an unknown transaction id.
	ErrTxNotFound = errors.New("ledger: transaction not found")
)

// TxLocation records where a committed transaction lives.
type TxLocation struct {
	Height  uint64
	Index   int
	BlockID BlockID
}

// Chain is the validated, append-only block chain. It enforces height and
// parent linkage, body validity, and strictly-increasing per-sender nonces,
// and maintains hash indexes for O(1) lookups of blocks and transactions.
//
// The nonce discipline is what makes every platform action attributable and
// replay-proof: an adversary cannot re-submit someone else's signed vote.
type Chain struct {
	mu      sync.RWMutex
	log     store.Log
	byID    map[BlockID]uint64
	txIndex map[TxID]TxLocation
	nonces  map[string]uint64 // next expected nonce per sender address
	head    *Block
	// verifier is the block-verification pipeline used by Append, replay
	// and VerifyBlockBody. Every chain gets a parallel, cache-backed
	// pipeline by default; SetVerifier swaps it (e.g. for a platform-wide
	// shared cache or a serial baseline).
	verifier *Verifier
}

// NewChain creates a chain over the given block log. If the log is
// non-empty it is replayed and re-validated, so a tampered block store is
// rejected at startup.
func NewChain(log store.Log) (*Chain, error) {
	return NewChainVerified(log, nil)
}

// NewChainVerified is NewChain with an explicit verification pipeline,
// which accelerates the startup replay too. A nil verifier gets the
// default: a parallel pipeline over a fresh bounded signature cache.
func NewChainVerified(log store.Log, v *Verifier) (*Chain, error) {
	if v == nil {
		v = NewVerifier(NewSigCache(0), 0)
	}
	c := &Chain{
		log:      log,
		byID:     make(map[BlockID]uint64),
		txIndex:  make(map[TxID]TxLocation),
		nonces:   make(map[string]uint64),
		verifier: v,
	}
	n := log.Len()
	for i := uint64(0); i < n; i++ {
		raw, err := log.Get(i)
		if err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		b, err := DecodeBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		if err := c.validateLinkage(b); err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		if err := c.verifier.ValidateBody(b); err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		c.index(b)
	}
	return c, nil
}

// NewMemChain creates an empty in-memory chain, the common test setup.
func NewMemChain() *Chain {
	c, err := NewChain(store.NewMemLog())
	if err != nil {
		// An empty MemLog cannot fail to replay.
		panic(err)
	}
	return c
}

// Height returns the number of committed blocks.
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.head == nil {
		return 0
	}
	return c.head.Header.Height + 1
}

// Head returns the latest block, or nil for an empty chain.
func (c *Chain) Head() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head
}

// HeadID returns the id of the latest block, or the zero id when empty.
func (c *Chain) HeadID() BlockID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.head == nil {
		return BlockID{}
	}
	return c.head.ID()
}

// NextNonce returns the next expected nonce for a sender.
func (c *Chain) NextNonce(sender string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nonces[sender]
}

// Verifier returns the chain's verification pipeline.
func (c *Chain) Verifier() *Verifier {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.verifier
}

// SetVerifier swaps the verification pipeline. Call before the chain
// takes traffic.
func (c *Chain) SetVerifier(v *Verifier) {
	if v == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.verifier = v
}

// VerifyBlockBody validates a block body through the chain's pipeline
// without appending it. Consensus proposal validation uses it so a
// proposer's transactions — already verified at mempool admission — skip
// the per-signature ed25519 work via the shared cache.
func (c *Chain) VerifyBlockBody(b *Block) error {
	return c.Verifier().ValidateBody(b)
}

func (c *Chain) validateLinkage(b *Block) error {
	var wantHeight uint64
	var wantPrev BlockID
	if c.head != nil {
		wantHeight = c.head.Header.Height + 1
		wantPrev = c.head.ID()
	}
	if b.Header.Height != wantHeight {
		return fmt.Errorf("%w: got %d want %d", ErrBadHeight, b.Header.Height, wantHeight)
	}
	if b.Header.Prev != wantPrev {
		return fmt.Errorf("%w: got %s want %s", ErrBadParent, b.Header.Prev.Short(), wantPrev.Short())
	}
	// Nonce check against a scratch copy so partially-valid blocks do not
	// mutate chain state.
	scratch := make(map[string]uint64)
	for i, t := range b.Txs {
		key := t.Sender.String()
		next, seen := scratch[key]
		if !seen {
			next = c.nonces[key]
		}
		if t.Nonce != next {
			return fmt.Errorf("%w: tx %d sender %s nonce %d want %d", ErrBadNonce, i, t.Sender.Short(), t.Nonce, next)
		}
		scratch[key] = next + 1
	}
	return nil
}

func (c *Chain) index(b *Block) {
	id := b.ID()
	c.byID[id] = b.Header.Height
	for i, t := range b.Txs {
		c.txIndex[t.ID()] = TxLocation{Height: b.Header.Height, Index: i, BlockID: id}
		key := t.Sender.String()
		c.nonces[key] = t.Nonce + 1
	}
	c.head = b
}

// Append validates and commits a block.
func (c *Chain) Append(b *Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.validateLinkage(b); err != nil {
		return err
	}
	if err := c.verifier.ValidateBody(b); err != nil {
		return err
	}
	if _, err := c.log.Append(b.Encode()); err != nil {
		return fmt.Errorf("ledger: persist block %d: %w", b.Header.Height, err)
	}
	c.index(b)
	return nil
}

// BlockAt returns the block at the given height.
func (c *Chain) BlockAt(height uint64) (*Block, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.head == nil || height > c.head.Header.Height {
		return nil, fmt.Errorf("%w: height %d", ErrBlockNotFound, height)
	}
	raw, err := c.log.Get(height)
	if err != nil {
		return nil, fmt.Errorf("ledger: load block %d: %w", height, err)
	}
	return DecodeBlock(raw)
}

// BlockByID returns the block with the given id.
func (c *Chain) BlockByID(id BlockID) (*Block, error) {
	c.mu.RLock()
	h, ok := c.byID[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: id %s", ErrBlockNotFound, id.Short())
	}
	return c.BlockAt(h)
}

// FindTx returns a committed transaction and its location.
func (c *Chain) FindTx(id TxID) (*Tx, TxLocation, error) {
	c.mu.RLock()
	loc, ok := c.txIndex[id]
	c.mu.RUnlock()
	if !ok {
		return nil, TxLocation{}, fmt.Errorf("%w: id %s", ErrTxNotFound, id.Short())
	}
	b, err := c.BlockAt(loc.Height)
	if err != nil {
		return nil, TxLocation{}, err
	}
	return b.Txs[loc.Index], loc, nil
}

// ---------------------------------------------------------------------------
// Chain index snapshots (durable-node checkpoints).
// ---------------------------------------------------------------------------

// ErrBadSnapshot indicates a chain snapshot that does not match the log.
var ErrBadSnapshot = errors.New("ledger: chain snapshot does not match log")

// chainSnapshot serializes the chain's derived indexes. Blocks are
// height-ordered ids; transaction locations reference heights, so the
// whole structure is reproducible from (and verifiable against) the log.
type chainSnapshot struct {
	Height   uint64
	BlockIDs []BlockID
	Txs      []txRef
	Nonces   map[string]uint64
}

// txRef is one committed transaction location.
type txRef struct {
	ID     TxID
	Height uint64
	Index  int
}

// SnapshotState serializes the chain's in-memory indexes (block ids,
// transaction locations, per-sender nonces) so a durable node can
// checkpoint them and reopen without re-decoding and re-validating every
// block.
func (c *Chain) SnapshotState() ([]byte, error) {
	c.mu.RLock()
	snap := chainSnapshot{Nonces: make(map[string]uint64, len(c.nonces))}
	if c.head != nil {
		snap.Height = c.head.Header.Height + 1
	}
	snap.BlockIDs = make([]BlockID, snap.Height)
	for id, h := range c.byID {
		snap.BlockIDs[h] = id
	}
	snap.Txs = make([]txRef, 0, len(c.txIndex))
	for id, loc := range c.txIndex {
		snap.Txs = append(snap.Txs, txRef{ID: id, Height: loc.Height, Index: loc.Index})
	}
	for k, v := range c.nonces {
		snap.Nonces[k] = v
	}
	c.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("ledger: encode chain snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// NewChainFromSnapshot reopens a chain over a log using checkpointed
// indexes for the snapshot's prefix: only the head block of the prefix is
// decoded (and its id checked against the snapshot), then any newer log
// records — the WAL tail — are fully decoded, validated and indexed as
// usual. This makes reopen O(tail) instead of O(chain length).
//
// The snapshot is an accelerator, not a trust root: any mismatch returns
// ErrBadSnapshot and the caller should fall back to NewChain, which
// re-validates everything.
func NewChainFromSnapshot(log store.Log, snapshot []byte) (*Chain, error) {
	return NewChainFromSnapshotVerified(log, snapshot, nil)
}

// NewChainFromSnapshotVerified is NewChainFromSnapshot with an explicit
// verification pipeline for the WAL-tail replay (nil gets the default
// parallel pipeline, as in NewChainVerified).
func NewChainFromSnapshotVerified(log store.Log, snapshot []byte, v *Verifier) (*Chain, error) {
	if v == nil {
		v = NewVerifier(NewSigCache(0), 0)
	}
	var snap chainSnapshot
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadSnapshot, err)
	}
	n := log.Len()
	if snap.Height > n {
		return nil, fmt.Errorf("%w: snapshot height %d beyond log %d", ErrBadSnapshot, snap.Height, n)
	}
	if uint64(len(snap.BlockIDs)) != snap.Height {
		return nil, fmt.Errorf("%w: %d block ids for height %d", ErrBadSnapshot, len(snap.BlockIDs), snap.Height)
	}
	c := &Chain{
		log:      log,
		byID:     make(map[BlockID]uint64, snap.Height),
		txIndex:  make(map[TxID]TxLocation, len(snap.Txs)),
		nonces:   make(map[string]uint64, len(snap.Nonces)),
		verifier: v,
	}
	for h, id := range snap.BlockIDs {
		c.byID[id] = uint64(h)
	}
	for _, ref := range snap.Txs {
		if ref.Height >= snap.Height {
			return nil, fmt.Errorf("%w: tx at height %d beyond snapshot", ErrBadSnapshot, ref.Height)
		}
		c.txIndex[ref.ID] = TxLocation{Height: ref.Height, Index: ref.Index, BlockID: snap.BlockIDs[ref.Height]}
	}
	for k, v := range snap.Nonces {
		c.nonces[k] = v
	}
	// Anchor the prefix: the head block must decode and hash to the
	// snapshot's id at that height (the platform additionally verifies
	// the checkpointed state root against this block's header).
	if snap.Height > 0 {
		raw, err := log.Get(snap.Height - 1)
		if err != nil {
			return nil, fmt.Errorf("%w: head record: %v", ErrBadSnapshot, err)
		}
		head, err := DecodeBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: head decode: %v", ErrBadSnapshot, err)
		}
		if head.Header.Height != snap.Height-1 || head.ID() != snap.BlockIDs[snap.Height-1] {
			return nil, fmt.Errorf("%w: head id mismatch at height %d", ErrBadSnapshot, snap.Height-1)
		}
		c.head = head
	}
	// The WAL tail gets the full treatment.
	for i := snap.Height; i < n; i++ {
		raw, err := log.Get(i)
		if err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		b, err := DecodeBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		if err := c.validateLinkage(b); err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		if err := c.verifier.ValidateBody(b); err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i, err)
		}
		c.index(b)
	}
	return c, nil
}

// Walk iterates committed blocks from height from (inclusive) upward,
// calling fn for each; fn returning false stops the walk. Used by the
// supply-chain graph builder and the expert miner to scan ledger history.
func (c *Chain) Walk(from uint64, fn func(*Block) bool) error {
	for h := from; ; h++ {
		b, err := c.BlockAt(h)
		if errors.Is(err, ErrBlockNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(b) {
			return nil
		}
	}
}
