package ledger

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keys"
	"repro/internal/merkle"
	"repro/internal/telemetry"
)

// parallelVerifyThreshold is the block size below which the pipeline stays
// serial: goroutine fan-out costs more than it saves on tiny blocks.
const parallelVerifyThreshold = 16

// Verifier is the block-verification pipeline: a worker pool that fans
// per-transaction signature checks and encodings across GOMAXPROCS, backed
// by an optional verified-signature cache so transactions already checked
// at mempool admission (or in an earlier consensus step) skip the ed25519
// operation entirely. A nil *Verifier is valid and degrades to the serial,
// uncached baseline, which keeps Tx.Verify and the pipeline on one code
// path.
//
// The cache can never be poisoned through field mutation: VerifyTx
// re-serializes the transaction's current fields and re-hashes them before
// the lookup, so a hit vouches only for the exact bytes in hand — the
// structural checks and the content hash always run; only the ed25519
// verify is ever skipped.
type Verifier struct {
	workers int
	cache   *SigCache
	serial  bool
	tm      verifierMetrics
}

// verifierMetrics holds the pipeline's cached instrument handles (nil
// until Instrument; all methods nil-safe).
type verifierMetrics struct {
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	blockSec *telemetry.Histogram
	width    *telemetry.Gauge
}

// NewVerifier creates a pipeline over the given cache (nil disables
// signature caching) with the given worker-pool width (<=0 means
// GOMAXPROCS).
func NewVerifier(cache *SigCache, workers int) *Verifier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Verifier{workers: workers, cache: cache}
}

// SetSerial forces single-threaded validation (the baseline kept for
// benchmarks and perf comparisons). The signature cache stays active.
func (v *Verifier) SetSerial(serial bool) { v.serial = serial }

// Cache exposes the verifier's signature cache (nil when uncached).
func (v *Verifier) Cache() *SigCache { return v.cache }

// Workers returns the pool width.
func (v *Verifier) Workers() int { return v.workers }

// Instrument registers the pipeline's metrics on reg (nil disables).
func (v *Verifier) Instrument(reg *telemetry.Registry) {
	cached := reg.CounterVec("trustnews_verify_sigcache_total", "Signature-cache lookups during verification, by outcome.", "outcome")
	v.tm = verifierMetrics{
		hits:     cached.With("hit"),
		misses:   cached.With("miss"),
		blockSec: reg.Histogram("trustnews_verify_block_seconds", "Wall time to validate one block body (tx root + signatures).", nil),
		width:    reg.Gauge("trustnews_verify_workers", "Verification worker-pool width."),
	}
	v.tm.width.Set(float64(v.workers))
}

// CacheStats returns cumulative signature-cache hits and misses (zero
// without Instrument).
func (v *Verifier) CacheStats() (hits, misses uint64) {
	if v == nil {
		return 0, 0
	}
	return v.tm.hits.Value(), v.tm.misses.Value()
}

// VerifyTx checks structural validity and the signature/sender binding of
// one transaction, consulting the verified-signature cache when present.
// Every byte that feeds the cache key is re-serialized from the
// transaction's current fields — never from the memo — so only the ed25519
// operation itself is ever skipped.
func (v *Verifier) VerifyTx(t *Tx) error {
	if t.Kind == "" {
		return ErrTxEmptyKind
	}
	if len(t.Payload) > MaxTxPayloadBytes {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTxPayloadTooLarge, len(t.Payload), MaxTxPayloadBytes)
	}
	if len(t.Sig) == 0 || len(t.PubKey) == 0 {
		return ErrTxUnsigned
	}
	if keys.AddressFromPub(t.PubKey) != t.Sender {
		return ErrTxSenderMismatch
	}
	signing := t.signingBytes()
	useCache := v != nil && v.cache != nil
	var id TxID
	if useCache {
		id = hashTx(signing, t.PubKey, t.Sig)
		if v.cache.Contains(id) {
			v.tm.hits.Inc()
			return nil
		}
		v.tm.misses.Inc()
	}
	if err := keys.Verify(t.PubKey, signing, t.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrTxBadSignature, err)
	}
	if useCache {
		v.cache.Add(id)
	}
	return nil
}

// ValidateBody checks a block's internal consistency — header tx root and
// per-transaction validity — like Block.ValidateBody, but through the
// cache-aware worker pool. Check order matches the serial baseline: tx
// root first (cheap hashing, fails fast on tampered bodies), signatures
// second.
func (v *Verifier) ValidateBody(b *Block) error {
	if v == nil {
		return b.ValidateBody()
	}
	var start time.Time
	if v.tm.blockSec != nil {
		start = time.Now()
	}
	err := v.validateBody(b)
	if v.tm.blockSec != nil {
		v.tm.blockSec.Observe(time.Since(start).Seconds())
	}
	return err
}

func (v *Verifier) validateBody(b *Block) error {
	n := len(b.Txs)
	workers := v.workers
	if workers > n {
		workers = n
	}
	if v.serial || workers <= 1 || n < parallelVerifyThreshold {
		if got := TxRoot(b.Txs); got != b.Header.TxRoot {
			return fmt.Errorf("%w: header %s body %s", ErrBlockBadTxRoot, b.Header.TxRoot.Short(), got.Short())
		}
		for i, t := range b.Txs {
			if err := v.VerifyTx(t); err != nil {
				return fmt.Errorf("%w: tx %d: %v", ErrBlockBadTx, i, err)
			}
		}
		return nil
	}

	// Phase 1: encodings (memo-served for txs this node built or decoded)
	// and the Merkle root, leaf hashing fanned across the pool.
	leaves := make([][]byte, n)
	v.each(workers, n, func(i int) bool {
		leaves[i] = b.Txs[i].Encode()
		return true
	})
	if got := merkle.RootParallel(leaves, workers); got != b.Header.TxRoot {
		return fmt.Errorf("%w: header %s body %s", ErrBlockBadTxRoot, b.Header.TxRoot.Short(), got.Short())
	}

	// Phase 2: per-tx verification with fail-fast cancellation. The first
	// failure (lowest index wins for determinism) stops the pool.
	errs := make([]error, n)
	v.each(workers, n, func(i int) bool {
		if err := v.VerifyTx(b.Txs[i]); err != nil {
			errs[i] = err
			return false
		}
		return true
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%w: tx %d: %v", ErrBlockBadTx, i, err)
		}
	}
	return nil
}

// each runs fn(0..n-1) across the pool with work stealing; fn returning
// false cancels outstanding work (already-started calls finish).
func (v *Verifier) each(workers, n int, fn func(int) bool) {
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if !fn(i) {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}
