// Package search provides the platform's full-text article index: an
// in-memory inverted index over committed news bodies with TF-IDF
// ranking. The paper's platform lets readers look up news and its
// trust evidence; with article bodies moved off-chain (see
// internal/blobstore) the chain itself is no longer scannable for text,
// so this index — fed from the commit bus like every other derived
// view — is what makes committed articles findable again.
//
// The index is deterministic: ties in score break by document id, so
// replicas that consumed the same commits answer queries identically.
package search

import (
	"math"
	"sort"
	"sync"

	"repro/internal/corpus"
)

// Result is one ranked query hit.
type Result struct {
	ID    string  `json:"id"`
	Topic string  `json:"topic"`
	Score float64 `json:"score"`
}

// docInfo is the per-document bookkeeping the ranker needs.
type docInfo struct {
	Topic  string `json:"topic"`
	Length int    `json:"length"` // token count, for TF normalisation
}

// Index is a thread-safe inverted index with TF-IDF scoring.
type Index struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // term -> doc id -> term frequency
	docs     map[string]docInfo
}

// New creates an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string]map[string]int),
		docs:     make(map[string]docInfo),
	}
}

// Add indexes one document. Re-adding an id is a no-op (documents are
// immutable once committed).
func (x *Index) Add(id, topic, text string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked(id, topic, text)
}

func (x *Index) addLocked(id, topic, text string) {
	if id == "" {
		return
	}
	if _, dup := x.docs[id]; dup {
		return
	}
	toks := corpus.Tokenize(text)
	x.docs[id] = docInfo{Topic: topic, Length: len(toks)}
	for _, tok := range toks {
		post := x.postings[tok]
		if post == nil {
			post = make(map[string]int)
			x.postings[tok] = post
		}
		post[id]++
	}
}

// Docs returns the number of indexed documents.
func (x *Index) Docs() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.docs)
}

// Terms returns the number of distinct indexed terms.
func (x *Index) Terms() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.postings)
}

// Query returns the top-k documents for the query string, ranked by
// TF-IDF: each query term contributes tf/|doc| * log(1 + N/df). k <= 0
// means no limit.
func (x *Index) Query(q string, k int) []Result {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := float64(len(x.docs))
	scores := make(map[string]float64)
	for _, tok := range corpus.Tokenize(q) {
		post := x.postings[tok]
		if len(post) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(post)))
		for id, tf := range post {
			scores[id] += float64(tf) / float64(x.docs[id].Length) * idf
		}
	}
	out := make([]Result, 0, len(scores))
	for id, sc := range scores {
		out = append(out, Result{ID: id, Topic: x.docs[id].Topic, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// indexSnapshot is the self-contained serialized index: postings and doc
// table travel whole, so restoring needs no access to article bodies.
type indexSnapshot struct {
	Postings map[string]map[string]int `json:"postings"`
	Docs     map[string]docInfo        `json:"docs"`
}

// snapshot captures the index state (callers hold no lock).
func (x *Index) snapshot() indexSnapshot {
	x.mu.RLock()
	defer x.mu.RUnlock()
	snap := indexSnapshot{
		Postings: make(map[string]map[string]int, len(x.postings)),
		Docs:     make(map[string]docInfo, len(x.docs)),
	}
	for t, post := range x.postings {
		cp := make(map[string]int, len(post))
		for id, tf := range post {
			cp[id] = tf
		}
		snap.Postings[t] = cp
	}
	for id, info := range x.docs {
		snap.Docs[id] = info
	}
	return snap
}

// reset replaces the index state wholesale.
func (x *Index) reset(snap indexSnapshot) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.postings = snap.Postings
	if x.postings == nil {
		x.postings = make(map[string]map[string]int)
	}
	x.docs = snap.Docs
	if x.docs == nil {
		x.docs = make(map[string]docInfo)
	}
}
