// Package search provides the platform's full-text article index. The
// paper's platform lets readers look up news and its trust evidence;
// with article bodies moved off-chain (see internal/blobstore) the chain
// itself is no longer scannable for text, so this index — fed from the
// commit bus like every other derived view — is what makes committed
// articles findable again.
//
// The index is built for the "continuous firehose of news" the paper
// assumes (§VI): it must absorb a sustained stream of newly committed
// articles while serving reader queries, at corpus sizes a single
// mutex-guarded map cannot hold. Three structural decisions follow:
//
//   - Term sharding. The inverted index is split into S shards by term
//     hash, so concurrent writers (and the per-shard memory accounting)
//     scale with shards instead of contending on one map.
//   - Immutable read snapshots. Each shard publishes its sealed
//     segments through an atomic pointer; queries only ever load those
//     pointers, so a query never takes a lock and never contends with
//     the indexer. Writers batch new postings in a per-shard memtable
//     and seal it into a fresh immutable segment on Refresh — the
//     near-real-time search design, in miniature.
//   - Incremental compaction. Sealing once per committed block would
//     accumulate tiny segments forever; when a shard exceeds its
//     segment budget the smallest two segments are merged, keeping
//     per-query segment fan-out bounded while never rewriting the
//     whole shard at once.
//
// Ranking is BM25 (k1/b defaults from the literature), with the legacy
// TF-IDF ranker kept selectable for comparison. The index is
// deterministic: scores depend only on the indexed corpus (never on
// segment layout or shard count), and ties break by document id, so
// replicas that consumed the same commits answer queries identically.
package search

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
)

// BM25 parameters (standard Robertson/Sparck-Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// DefaultShards is the term-shard count used by New.
const DefaultShards = 16

// defaultFlushDocs seals a shard memtable once it holds this many
// documents even without an explicit Refresh, bounding memtable size
// between commits.
const defaultFlushDocs = 512

// defaultMaxSegments is the per-shard segment budget before compaction
// merges the smallest pair.
const defaultMaxSegments = 8

// Ranker selects the scoring function.
type Ranker string

// Available rankers.
const (
	// RankBM25 is the default: per-term IDF with term-frequency
	// saturation and document-length normalisation.
	RankBM25 Ranker = "bm25"
	// RankTFIDF is the pre-sharding scorer, kept for relevance
	// comparisons (EXPERIMENTS.md E22): tf/|doc| * log(1 + N/df).
	RankTFIDF Ranker = "tfidf"
)

// Result is one ranked query hit.
type Result struct {
	ID    string  `json:"id"`
	Topic string  `json:"topic"`
	Score float64 `json:"score"`
}

// Page is one pagination window of a ranked result list.
type Page struct {
	// Total is the number of matching documents before pagination.
	Total int `json:"total"`
	// Offset echoes the requested window start.
	Offset int `json:"offset"`
	// Results is the window itself.
	Results []Result `json:"results"`
}

// docInfo is the per-document bookkeeping the ranker needs. Documents
// are immutable once committed, so entries are write-once.
type docInfo struct {
	ID     string `json:"id"`
	Topic  string `json:"topic"`
	Length int32  `json:"length"` // token count, for length normalisation
}

// posting is one (document, term-frequency) pair. Documents are
// referenced by their dense internal index into the doc table.
type posting struct {
	Doc int32 `json:"d"`
	TF  int32 `json:"f"`
}

// segment is an immutable sealed batch of postings. Once published in a
// shard view it is never mutated — only replaced wholesale by
// compaction — so readers need no synchronisation beyond loading the
// view pointer.
type segment struct {
	postings map[string][]posting
	docs     int // documents that contributed postings to this segment
}

// shardView is what a query sees of one shard: the sealed segments at
// the time of the last Refresh.
type shardView struct {
	segments []*segment
}

// shard is one term-hash partition of the index.
type shard struct {
	// mu serializes writers (memtable appends, seal, compaction).
	// Queries never take it.
	mu sync.Mutex
	// mem is the mutable memtable new postings land in.
	mem     map[string][]posting
	memDocs int
	// view is the immutable published state queries read.
	view atomic.Pointer[shardView]
	// compactions counts segment merges (observability).
	compactions uint64
}

// docsView is the immutable published doc table: a prefix of the
// grow-only info slice plus the corpus statistics the rankers need.
type docsView struct {
	infos    []docInfo // length fixed at publish; entries are write-once
	totalLen int64
}

// Index is a term-sharded inverted index with immutable read snapshots
// and BM25 ranking.
type Index struct {
	shards []*shard

	// wmu serializes writers (Add, Refresh, reset). Queries never take
	// it: they read the atomic views only.
	wmu sync.Mutex
	// byID maps document id to dense internal index (writer-side dedup).
	byID map[string]int32
	// infos is the grow-only doc table; docs.Load() exposes a sealed
	// prefix to readers.
	infos    []docInfo
	totalLen int64
	docs     atomic.Pointer[docsView]
	// memDocs counts documents added since the last Refresh.
	memDocs int

	flushDocs   int
	maxSegments int
}

// New creates an empty index with DefaultShards term shards.
func New() *Index { return NewSharded(DefaultShards) }

// NewSharded creates an empty index with the given shard count
// (values < 1 are clamped to 1). Scores are independent of the shard
// count; only write concurrency and per-shard memory change.
func NewSharded(shards int) *Index {
	if shards < 1 {
		shards = 1
	}
	x := &Index{
		shards:      make([]*shard, shards),
		byID:        make(map[string]int32),
		flushDocs:   defaultFlushDocs,
		maxSegments: defaultMaxSegments,
	}
	for i := range x.shards {
		sh := &shard{mem: make(map[string][]posting)}
		sh.view.Store(&shardView{})
		x.shards[i] = sh
	}
	x.docs.Store(&docsView{})
	return x
}

// shardFor hashes a term onto its shard.
func (x *Index) shardFor(term string) *shard {
	if len(x.shards) == 1 {
		return x.shards[0]
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(term))
	return x.shards[h.Sum32()%uint32(len(x.shards))]
}

// Add indexes one document. Re-adding an id is a no-op (documents are
// immutable once committed). The document becomes visible to queries at
// the next Refresh (or automatically once enough documents accumulate).
func (x *Index) Add(id, topic, text string) {
	if id == "" {
		return
	}
	x.wmu.Lock()
	defer x.wmu.Unlock()
	if _, dup := x.byID[id]; dup {
		return
	}
	toks := corpus.Tokenize(text)
	idx := int32(len(x.infos))
	x.byID[id] = idx
	x.infos = append(x.infos, docInfo{ID: id, Topic: topic, Length: int32(len(toks))})
	x.totalLen += int64(len(toks))
	x.memDocs++

	// Per-document term frequencies, then routed to their term shards.
	tf := make(map[string]int32, len(toks))
	for _, tok := range toks {
		tf[tok]++
	}
	touched := make(map[*shard]bool, len(x.shards))
	for term, n := range tf {
		sh := x.shardFor(term)
		sh.mu.Lock()
		sh.mem[term] = append(sh.mem[term], posting{Doc: idx, TF: n})
		sh.mu.Unlock()
		touched[sh] = true
	}
	for sh := range touched {
		sh.mu.Lock()
		sh.memDocs++
		sh.mu.Unlock()
	}
	if x.memDocs >= x.flushDocs {
		x.refreshLocked()
	}
}

// Refresh seals every shard memtable into an immutable segment and
// publishes new read views. The commit-bus indexer calls it after each
// applied batch, so queries see committed articles with at most one
// batch of lag.
func (x *Index) Refresh() {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	x.refreshLocked()
}

func (x *Index) refreshLocked() {
	if x.memDocs == 0 {
		return
	}
	x.memDocs = 0
	// Publish the doc table first: postings must never reference a
	// document a concurrent query cannot resolve.
	x.docs.Store(&docsView{infos: x.infos[:len(x.infos):len(x.infos)], totalLen: x.totalLen})
	for _, sh := range x.shards {
		sh.seal(x.maxSegments)
	}
}

// seal freezes the shard memtable into a segment, compacts if the
// segment budget is exceeded, and publishes the new view.
func (sh *shard) seal(maxSegments int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.memDocs == 0 {
		return
	}
	old := sh.view.Load()
	segs := make([]*segment, len(old.segments), len(old.segments)+1)
	copy(segs, old.segments)
	segs = append(segs, &segment{postings: sh.mem, docs: sh.memDocs})
	sh.mem = make(map[string][]posting)
	sh.memDocs = 0
	for len(segs) > maxSegments {
		segs = compactSmallest(segs)
		sh.compactions++
	}
	sh.view.Store(&shardView{segments: segs})
}

// compactSmallest merges the two segments with the fewest documents
// into one, preserving every posting. Posting-list order within a term
// may interleave across merged segments; scoring is order-independent
// and serialization sorts, so determinism is unaffected.
func compactSmallest(segs []*segment) []*segment {
	if len(segs) < 2 {
		return segs
	}
	a, b := 0, 1
	if segs[b].docs < segs[a].docs {
		a, b = b, a
	}
	for i := 2; i < len(segs); i++ {
		if segs[i].docs < segs[a].docs {
			a, b = i, a
		} else if segs[i].docs < segs[b].docs {
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	merged := &segment{
		postings: make(map[string][]posting, len(segs[a].postings)+len(segs[b].postings)),
		docs:     segs[a].docs + segs[b].docs,
	}
	for _, src := range []*segment{segs[a], segs[b]} {
		for term, ps := range src.postings {
			merged.postings[term] = append(merged.postings[term], ps...)
		}
	}
	out := make([]*segment, 0, len(segs)-1)
	for i, s := range segs {
		if i == a || i == b {
			continue
		}
		out = append(out, s)
	}
	return append(out, merged)
}

// Docs returns the number of indexed documents visible to queries.
func (x *Index) Docs() int { return len(x.docs.Load().infos) }

// PendingDocs returns the number of added documents not yet published
// to queries (awaiting Refresh).
func (x *Index) PendingDocs() int {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	return x.memDocs
}

// Terms returns the number of distinct indexed terms across all
// published segments.
func (x *Index) Terms() int {
	seen := make(map[string]bool)
	for _, sh := range x.shards {
		for _, seg := range sh.view.Load().segments {
			for term := range seg.postings {
				seen[term] = true
			}
		}
	}
	return len(seen)
}

// ShardStats is the per-shard observability record.
type ShardStats struct {
	Terms       int    `json:"terms"`
	Postings    int    `json:"postings"`
	Segments    int    `json:"segments"`
	Compactions uint64 `json:"compactions"`
}

// Stats reports per-shard term/posting/segment counts (published state
// only).
func (x *Index) Stats() []ShardStats {
	out := make([]ShardStats, len(x.shards))
	for i, sh := range x.shards {
		view := sh.view.Load()
		st := ShardStats{Segments: len(view.segments)}
		terms := make(map[string]bool)
		for _, seg := range view.segments {
			for term, ps := range seg.postings {
				terms[term] = true
				st.Postings += len(ps)
			}
		}
		st.Terms = len(terms)
		sh.mu.Lock()
		st.Compactions = sh.compactions
		sh.mu.Unlock()
		out[i] = st
	}
	return out
}

// Query returns the top-k documents for the query string under BM25.
// k <= 0 means no limit. The call is lock-free: it reads only the
// published immutable views, so it never contends with the indexer.
func (x *Index) Query(q string, k int) []Result {
	page := x.QueryPage(q, RankBM25, 0, k)
	return page.Results
}

// QueryPage runs a ranked query and returns one pagination window.
// limit <= 0 means "to the end"; offset past the result set yields an
// empty window with the true Total.
func (x *Index) QueryPage(q string, ranker Ranker, offset, limit int) Page {
	docs := x.docs.Load()
	n := len(docs.infos)
	if offset < 0 {
		offset = 0
	}
	if n == 0 {
		return Page{Offset: offset, Results: []Result{}}
	}
	avgdl := float64(docs.totalLen) / float64(n)
	if avgdl <= 0 {
		avgdl = 1
	}

	scores := make(map[int32]float64)
	for _, tok := range corpus.Tokenize(q) {
		sh := x.shardFor(tok)
		view := sh.view.Load()
		// df first: IDF needs the document frequency across segments.
		df := 0
		for _, seg := range view.segments {
			df += len(seg.postings[tok])
		}
		if df == 0 {
			continue
		}
		var idf float64
		switch ranker {
		case RankTFIDF:
			idf = math.Log(1 + float64(n)/float64(df))
		default:
			idf = math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
		}
		for _, seg := range view.segments {
			for _, p := range seg.postings[tok] {
				if int(p.Doc) >= n {
					// Posting sealed after the doc view we loaded;
					// skip rather than read an unpublished entry.
					continue
				}
				dl := float64(docs.infos[p.Doc].Length)
				tf := float64(p.TF)
				switch ranker {
				case RankTFIDF:
					if dl > 0 {
						scores[p.Doc] += tf / dl * idf
					}
				default:
					denom := tf + bm25K1*(1-bm25B+bm25B*dl/avgdl)
					scores[p.Doc] += idf * tf * (bm25K1 + 1) / denom
				}
			}
		}
	}

	out := make([]Result, 0, len(scores))
	for idx, sc := range scores {
		info := docs.infos[idx]
		out = append(out, Result{ID: info.ID, Topic: info.Topic, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	total := len(out)
	if offset >= total {
		return Page{Total: total, Offset: offset, Results: []Result{}}
	}
	out = out[offset:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return Page{Total: total, Offset: offset, Results: out}
}

// ---------------------------------------------------------------------------
// Snapshot / restore.
// ---------------------------------------------------------------------------

// indexSnapshot is the self-contained serialized index: the doc table
// in internal order plus merged, doc-sorted posting lists. The format
// is independent of shard count and segment layout, so a snapshot
// written by one node restores bit-identically on another regardless
// of how either arranged its segments.
type indexSnapshot struct {
	Docs     []docInfo            `json:"docs"`
	Postings map[string][]posting `json:"postings"`
}

// snapshot captures the published index state (callers must have
// Refreshed; the platform flushes the indexer before checkpointing).
func (x *Index) snapshot() indexSnapshot {
	x.wmu.Lock()
	x.refreshLocked()
	docs := x.docs.Load()
	x.wmu.Unlock()
	snap := indexSnapshot{
		Docs:     append([]docInfo(nil), docs.infos...),
		Postings: make(map[string][]posting),
	}
	for _, sh := range x.shards {
		for _, seg := range sh.view.Load().segments {
			for term, ps := range seg.postings {
				snap.Postings[term] = append(snap.Postings[term], ps...)
			}
		}
	}
	for term := range snap.Postings {
		ps := snap.Postings[term]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
	}
	return snap
}

// reset replaces the index state wholesale from a snapshot: the doc
// table is restored in internal order and every shard gets its postings
// back as a single sealed segment.
func (x *Index) reset(snap indexSnapshot) {
	x.wmu.Lock()
	defer x.wmu.Unlock()
	x.byID = make(map[string]int32, len(snap.Docs))
	x.infos = append([]docInfo(nil), snap.Docs...)
	x.totalLen = 0
	x.memDocs = 0
	for i, d := range x.infos {
		x.byID[d.ID] = int32(i)
		x.totalLen += int64(d.Length)
	}
	perShard := make(map[*shard]map[string][]posting)
	for term, ps := range snap.Postings {
		sh := x.shardFor(term)
		m := perShard[sh]
		if m == nil {
			m = make(map[string][]posting)
			perShard[sh] = m
		}
		m[term] = append([]posting(nil), ps...)
	}
	x.docs.Store(&docsView{infos: x.infos[:len(x.infos):len(x.infos)], totalLen: x.totalLen})
	for _, sh := range x.shards {
		sh.mu.Lock()
		sh.mem = make(map[string][]posting)
		sh.memDocs = 0
		if m := perShard[sh]; m != nil {
			sh.view.Store(&shardView{segments: []*segment{{postings: m, docs: len(x.infos)}}})
		} else {
			sh.view.Store(&shardView{})
		}
		sh.mu.Unlock()
	}
}
