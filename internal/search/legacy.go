package search

import (
	"math"
	"sort"
	"sync"

	"repro/internal/corpus"
)

// LockedIndex is the pre-sharding implementation: one RWMutex over one
// postings map, TF-IDF scoring, and — crucially — the read lock held
// while scoring every candidate document. It is kept only as the
// baseline for EXPERIMENTS.md E22, which measures what the sharded
// snapshot design buys: query latency under concurrent indexing, and
// the corpus sizes one map cannot hold. New code should use Index.
type LockedIndex struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // term -> doc id -> term frequency
	docs     map[string]lockedDocInfo
}

type lockedDocInfo struct {
	topic  string
	length int
}

// NewLocked creates an empty single-lock TF-IDF index.
func NewLocked() *LockedIndex {
	return &LockedIndex{
		postings: make(map[string]map[string]int),
		docs:     make(map[string]lockedDocInfo),
	}
}

// Add indexes one document under the write lock.
func (x *LockedIndex) Add(id, topic, text string) {
	if id == "" {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.docs[id]; dup {
		return
	}
	toks := corpus.Tokenize(text)
	x.docs[id] = lockedDocInfo{topic: topic, length: len(toks)}
	for _, tok := range toks {
		post := x.postings[tok]
		if post == nil {
			post = make(map[string]int)
			x.postings[tok] = post
		}
		post[id]++
	}
}

// Docs returns the number of indexed documents.
func (x *LockedIndex) Docs() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.docs)
}

// Query returns the top-k documents by TF-IDF, holding the read lock
// for the entire scoring pass — the contention the sharded index
// removes.
func (x *LockedIndex) Query(q string, k int) []Result {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := float64(len(x.docs))
	scores := make(map[string]float64)
	for _, tok := range corpus.Tokenize(q) {
		post := x.postings[tok]
		if len(post) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(post)))
		for id, tf := range post {
			scores[id] += float64(tf) / float64(x.docs[id].length) * idf
		}
	}
	out := make([]Result, 0, len(scores))
	for id, sc := range scores {
		out = append(out, Result{ID: id, Topic: x.docs[id].topic, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
