package search

import (
	"encoding/json"
	"fmt"

	"repro/internal/commitbus"
	"repro/internal/supplychain"
)

// SubscriberName identifies the search-index subscriber on the commit
// bus and keys its blob inside durable checkpoints.
const SubscriberName = "search-index"

// Subscriber keeps the full-text index in sync with the chain by
// consuming published events from committed blocks. Off-chain bodies are
// hydrated through Resolve at indexing time; the snapshot is
// self-contained (postings travel whole), so restoring a checkpoint
// never needs the blob store.
type Subscriber struct {
	Index *Index
	// Resolve hydrates an off-chain body from its content id. Required
	// once off-chain items appear; inline-only deployments may leave it
	// nil.
	Resolve func(cid string) (string, error)
}

var _ commitbus.Subscriber = (*Subscriber)(nil)

// Name implements commitbus.Subscriber.
func (s *Subscriber) Name() string { return SubscriberName }

// OnCommit implements commitbus.Subscriber: every item published in the
// block is indexed under its id and topic.
func (s *Subscriber) OnCommit(ev commitbus.CommitEvent) error {
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != supplychain.ContractName || e.Type != "published" {
				continue
			}
			var it supplychain.Item
			if err := json.Unmarshal(rec.Result, &it); err != nil {
				return fmt.Errorf("search: decode published result: %w", err)
			}
			text := it.Text
			if text == "" && it.CID != "" {
				if s.Resolve == nil {
					return fmt.Errorf("search: item %s has off-chain body %s but no resolver", it.ID, it.CID)
				}
				var err error
				if text, err = s.Resolve(it.CID); err != nil {
					return fmt.Errorf("search: resolve body of %s: %w", it.ID, err)
				}
			}
			s.Index.Add(it.ID, string(it.Topic), text)
		}
	}
	return nil
}

// Snapshot implements commitbus.Subscriber.
func (s *Subscriber) Snapshot() ([]byte, error) {
	return json.Marshal(s.Index.snapshot())
}

// Restore implements commitbus.Subscriber.
func (s *Subscriber) Restore(data []byte) error {
	var snap indexSnapshot
	if len(data) > 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("search: decode index snapshot: %w", err)
		}
	}
	s.Index.reset(snap)
	return nil
}
