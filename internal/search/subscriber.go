package search

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/commitbus"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// SubscriberName identifies the search-index subscriber on the commit
// bus and keys its blob inside durable checkpoints.
const SubscriberName = "search-index"

// pendingDoc is one committed article awaiting indexing.
type pendingDoc struct {
	id    string
	topic string
	text  string // inline body ("" when off-chain)
	cid   string // off-chain body content id ("" when inline)
}

// Subscriber keeps the full-text index in sync with the chain by
// consuming published events from committed blocks.
//
// Indexing is asynchronous: OnCommit only extracts the published
// references from the block — cheap, bounded work — and hands them to
// a background indexer goroutine that hydrates off-chain bodies,
// tokenizes, and updates the sharded index. The commit path therefore
// never blocks on indexing (or on blob reads), which is what keeps
// commit throughput flat while the ingest pipeline runs the index hot.
// The price is bounded staleness: queries may lag the chain by the
// indexer's backlog, observable as IndexerStats.Pending and the
// trustnews_search_indexer_lag_docs gauge. Flush waits for the backlog
// to drain; Snapshot flushes first, so checkpoints always capture an
// index consistent with the checkpoint height.
type Subscriber struct {
	Index *Index
	// Resolve hydrates an off-chain body from its content id. Required
	// once off-chain items appear; inline-only deployments may leave it
	// nil.
	Resolve func(cid string) (string, error)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []pendingDoc
	running bool
	indexed uint64
	errs    uint64
	lastErr string

	tmIndexed  *telemetry.Counter
	tmErrors   *telemetry.Counter
	tmLag      *telemetry.Gauge
	tmBatchSec *telemetry.Histogram
}

var _ commitbus.Subscriber = (*Subscriber)(nil)

// NewSubscriber builds the async search subscriber over idx.
func NewSubscriber(idx *Index, resolve func(cid string) (string, error)) *Subscriber {
	s := &Subscriber{Index: idx, Resolve: resolve}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Instrument registers the trustnews_search_* indexer instruments on
// reg (nil disables).
func (s *Subscriber) Instrument(reg *telemetry.Registry) {
	s.tmIndexed = reg.Counter("trustnews_search_docs_indexed_total", "Documents applied to the search index by the async indexer.")
	s.tmErrors = reg.Counter("trustnews_search_index_errors_total", "Documents the indexer failed to apply (body resolution failures).")
	s.tmLag = reg.Gauge("trustnews_search_indexer_lag_docs", "Committed documents waiting for the async indexer.")
	s.tmBatchSec = reg.Histogram("trustnews_search_index_batch_seconds", "Async indexer batch apply time.", nil)
}

// Name implements commitbus.Subscriber.
func (s *Subscriber) Name() string { return SubscriberName }

// OnCommit implements commitbus.Subscriber: every item published in the
// block is queued for the async indexer. Only reference extraction
// happens on the commit path.
func (s *Subscriber) OnCommit(ev commitbus.CommitEvent) error {
	var batch []pendingDoc
	for _, rec := range ev.Receipts {
		if !rec.OK {
			continue
		}
		for _, e := range rec.Events {
			if e.Contract != supplychain.ContractName || e.Type != "published" {
				continue
			}
			var it supplychain.Item
			if err := json.Unmarshal(rec.Result, &it); err != nil {
				return fmt.Errorf("search: decode published result: %w", err)
			}
			batch = append(batch, pendingDoc{id: it.ID, topic: string(it.Topic), text: it.Text, cid: it.CID})
		}
	}
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	s.queue = append(s.queue, batch...)
	s.tmLag.Set(float64(len(s.queue)))
	if !s.running {
		s.running = true
		go s.drain()
	}
	s.mu.Unlock()
	return nil
}

// drain is the indexer goroutine: it applies queued batches in commit
// order until the queue empties, then exits (a later OnCommit restarts
// it). One drainer runs at a time, so index application order is
// deterministic.
func (s *Subscriber) drain() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.running = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()

		var start time.Time
		if s.tmBatchSec != nil {
			start = time.Now()
		}
		for _, d := range batch {
			text := d.text
			if text == "" && d.cid != "" {
				if s.Resolve == nil {
					s.recordErr(fmt.Errorf("search: item %s has off-chain body %s but no resolver", d.id, d.cid))
					continue
				}
				var err error
				if text, err = s.Resolve(d.cid); err != nil {
					s.recordErr(fmt.Errorf("search: resolve body of %s: %w", d.id, err))
					continue
				}
			}
			s.Index.Add(d.id, d.topic, text)
			s.tmIndexed.Inc()
		}
		s.Index.Refresh()
		if s.tmBatchSec != nil {
			s.tmBatchSec.Observe(time.Since(start).Seconds())
		}

		s.mu.Lock()
		s.indexed += uint64(len(batch))
		s.tmLag.Set(float64(len(s.queue)))
		s.mu.Unlock()
	}
}

// recordErr accounts one dropped document.
func (s *Subscriber) recordErr(err error) {
	s.tmErrors.Inc()
	s.mu.Lock()
	s.errs++
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// Flush blocks until the indexer has applied every queued document and
// published the result to queries.
func (s *Subscriber) Flush() {
	s.mu.Lock()
	for s.running || len(s.queue) > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	// Publish any documents Add buffered below the auto-flush
	// threshold.
	s.Index.Refresh()
}

// IndexerStats is the async indexer's observable state.
type IndexerStats struct {
	// Pending is the number of committed documents not yet indexed.
	Pending int `json:"pending"`
	// Indexed counts documents applied since start or restore.
	Indexed uint64 `json:"indexed"`
	// Errors counts documents dropped (body resolution failures).
	Errors uint64 `json:"errors"`
	// LastError is the most recent drop reason, if any.
	LastError string `json:"lastError,omitempty"`
}

// Stats reports the indexer backlog and error accounting.
func (s *Subscriber) Stats() IndexerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return IndexerStats{Pending: len(s.queue), Indexed: s.indexed, Errors: s.errs, LastError: s.lastErr}
}

// Snapshot implements commitbus.Subscriber. The indexer is flushed
// first, so the blob captures exactly the documents committed so far.
func (s *Subscriber) Snapshot() ([]byte, error) {
	s.Flush()
	return json.Marshal(s.Index.snapshot())
}

// Restore implements commitbus.Subscriber.
func (s *Subscriber) Restore(data []byte) error {
	s.Flush()
	var snap indexSnapshot
	if len(data) > 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("search: decode index snapshot: %w", err)
		}
	}
	s.mu.Lock()
	s.queue = nil
	s.indexed, s.errs, s.lastErr = 0, 0, ""
	s.mu.Unlock()
	s.Index.reset(snap)
	return nil
}
