package search

import (
	"encoding/json"
	"testing"

	"repro/internal/commitbus"
	"repro/internal/contract"
	"repro/internal/supplychain"
)

func TestQueryRanksByTFIDF(t *testing.T) {
	x := New()
	x.Add("a", "econ", "the budget passed the budget committee budget")
	x.Add("b", "econ", "the committee debated the schedule")
	x.Add("c", "sport", "the match ended in a draw")

	res := x.Query("budget committee", 0)
	if len(res) != 2 {
		t.Fatalf("hits = %d, want 2 (doc c matches neither term)", len(res))
	}
	if res[0].ID != "a" {
		t.Fatalf("top hit = %s, want a (three budget mentions)", res[0].ID)
	}
	if res[0].Topic != "econ" {
		t.Fatalf("topic = %s, want econ", res[0].Topic)
	}
	if res[0].Score <= res[1].Score {
		t.Fatalf("scores not descending: %v", res)
	}
}

func TestQueryTopKAndNoHits(t *testing.T) {
	x := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		x.Add(id, "t", "shared words everywhere")
	}
	if res := x.Query("shared", 2); len(res) != 2 {
		t.Fatalf("top-2 = %d hits", len(res))
	}
	if res := x.Query("zzz unknown terms", 5); len(res) != 0 {
		t.Fatalf("no-hit query returned %v", res)
	}
	if res := x.Query("", 5); len(res) != 0 {
		t.Fatalf("empty query returned %v", res)
	}
}

func TestAddIsIdempotent(t *testing.T) {
	x := New()
	x.Add("a", "t", "one two three")
	x.Add("a", "t", "one two three")
	if x.Docs() != 1 {
		t.Fatalf("Docs = %d, want 1", x.Docs())
	}
	res := x.Query("one", 0)
	if len(res) != 1 || res[0].Score != x.Query("two", 0)[0].Score {
		t.Fatalf("duplicate Add skewed term frequencies: %v", res)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	x := New()
	x.Add("beta", "t", "identical text")
	x.Add("alpha", "t", "identical text")
	res := x.Query("identical", 0)
	if len(res) != 2 || res[0].ID != "alpha" || res[1].ID != "beta" {
		t.Fatalf("tie-break not by id: %v", res)
	}
}

// publishEvent fabricates the commit event a published item produces.
func publishEvent(t *testing.T, height uint64, it supplychain.Item) commitbus.CommitEvent {
	t.Helper()
	raw, err := json.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"id": it.ID, "topic": string(it.Topic)}
	if it.CID != "" {
		attrs["cid"] = it.CID
	}
	return commitbus.CommitEvent{
		Height: height,
		Receipts: []contract.Receipt{{
			OK:     true,
			Result: raw,
			Events: []contract.Event{{Contract: supplychain.ContractName, Type: "published", Attrs: attrs}},
		}},
	}
}

func TestSubscriberIndexesInlineAndOffChain(t *testing.T) {
	bodies := map[string]string{"cid1": "resolved off chain body about tariffs"}
	sub := &Subscriber{
		Index: New(),
		Resolve: func(cid string) (string, error) {
			b, ok := bodies[cid]
			if !ok {
				t.Fatalf("unexpected resolve %s", cid)
			}
			return b, nil
		},
	}
	if err := sub.OnCommit(publishEvent(t, 1, supplychain.Item{ID: "in", Topic: "econ", Text: "inline body about budgets"})); err != nil {
		t.Fatal(err)
	}
	if err := sub.OnCommit(publishEvent(t, 2, supplychain.Item{ID: "off", Topic: "econ", CID: "cid1", Size: 38})); err != nil {
		t.Fatal(err)
	}
	if res := sub.Index.Query("tariffs", 0); len(res) != 1 || res[0].ID != "off" {
		t.Fatalf("off-chain body not searchable: %v", res)
	}
	if res := sub.Index.Query("budgets", 0); len(res) != 1 || res[0].ID != "in" {
		t.Fatalf("inline body not searchable: %v", res)
	}
}

func TestSubscriberRequiresResolverForOffChain(t *testing.T) {
	sub := &Subscriber{Index: New()}
	err := sub.OnCommit(publishEvent(t, 1, supplychain.Item{ID: "off", Topic: "econ", CID: "cid1", Size: 10}))
	if err == nil {
		t.Fatal("off-chain item indexed without a resolver")
	}
}

func TestSnapshotRestoreIsSelfContained(t *testing.T) {
	sub := &Subscriber{Index: New()}
	sub.Index.Add("a", "econ", "the budget passed")
	sub.Index.Add("b", "sport", "the match ended")
	blob, err := sub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh subscriber with NO resolver: must not need one.
	re := &Subscriber{Index: New()}
	if err := re.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if re.Index.Docs() != 2 {
		t.Fatalf("Docs after restore = %d", re.Index.Docs())
	}
	want := sub.Index.Query("budget", 0)
	got := re.Index.Query("budget", 0)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("restored query = %v, want %v", got, want)
	}
	if err := re.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if re.Index.Docs() != 0 {
		t.Fatal("empty restore did not clear index")
	}
}
