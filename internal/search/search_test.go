package search

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/commitbus"
	"repro/internal/contract"
	"repro/internal/supplychain"
)

func TestQueryRanksByBM25(t *testing.T) {
	x := New()
	x.Add("a", "econ", "the budget passed the budget committee budget")
	x.Add("b", "econ", "the committee debated the schedule")
	x.Add("c", "sport", "the match ended in a draw")
	x.Refresh()

	res := x.Query("budget committee", 0)
	if len(res) != 2 {
		t.Fatalf("hits = %d, want 2 (doc c matches neither term)", len(res))
	}
	if res[0].ID != "a" {
		t.Fatalf("top hit = %s, want a (three budget mentions)", res[0].ID)
	}
	if res[0].Topic != "econ" {
		t.Fatalf("topic = %s, want econ", res[0].Topic)
	}
	if res[0].Score <= res[1].Score {
		t.Fatalf("scores not descending: %v", res)
	}
}

func TestQueryTopKAndNoHits(t *testing.T) {
	x := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		x.Add(id, "t", "shared words everywhere")
	}
	x.Refresh()
	if res := x.Query("shared", 2); len(res) != 2 {
		t.Fatalf("top-2 = %d hits", len(res))
	}
	if res := x.Query("zzz unknown terms", 5); len(res) != 0 {
		t.Fatalf("no-hit query returned %v", res)
	}
	if res := x.Query("", 5); len(res) != 0 {
		t.Fatalf("empty query returned %v", res)
	}
}

func TestQueryPagination(t *testing.T) {
	x := New()
	for i := 0; i < 10; i++ {
		x.Add(fmt.Sprintf("doc-%02d", i), "t", "common theme everywhere")
	}
	x.Refresh()
	p := x.QueryPage("common", RankBM25, 0, 4)
	if p.Total != 10 || len(p.Results) != 4 {
		t.Fatalf("page 0: total=%d len=%d", p.Total, len(p.Results))
	}
	p2 := x.QueryPage("common", RankBM25, 4, 4)
	if p2.Total != 10 || len(p2.Results) != 4 {
		t.Fatalf("page 1: total=%d len=%d", p2.Total, len(p2.Results))
	}
	if p.Results[0].ID == p2.Results[0].ID {
		t.Fatal("pages overlap")
	}
	// All scores tie, so pagination order is the id tie-break: the two
	// pages concatenated must equal the unpaginated top-8.
	all := x.QueryPage("common", RankBM25, 0, 8)
	got := append(append([]Result{}, p.Results...), p2.Results...)
	if !reflect.DeepEqual(all.Results, got) {
		t.Fatalf("pages not contiguous:\nall  %v\npages %v", all.Results, got)
	}
	// Past-the-end window: empty but with the true total.
	p3 := x.QueryPage("common", RankBM25, 100, 4)
	if p3.Total != 10 || len(p3.Results) != 0 {
		t.Fatalf("past-end page: %+v", p3)
	}
}

func TestAddIsIdempotent(t *testing.T) {
	x := New()
	x.Add("a", "t", "one two three")
	x.Add("a", "t", "one two three")
	x.Refresh()
	if x.Docs() != 1 {
		t.Fatalf("Docs = %d, want 1", x.Docs())
	}
	res := x.Query("one", 0)
	if len(res) != 1 || res[0].Score != x.Query("two", 0)[0].Score {
		t.Fatalf("duplicate Add skewed term frequencies: %v", res)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	x := New()
	x.Add("beta", "t", "identical text")
	x.Add("alpha", "t", "identical text")
	x.Refresh()
	res := x.Query("identical", 0)
	if len(res) != 2 || res[0].ID != "alpha" || res[1].ID != "beta" {
		t.Fatalf("tie-break not by id: %v", res)
	}
}

// TestScoresIndependentOfShardCountAndSegmentLayout is the determinism
// invariant the snapshot format relies on: the same corpus must score
// identically whatever the shard count and however the segments were
// sealed or compacted.
func TestScoresIndependentOfShardCountAndSegmentLayout(t *testing.T) {
	corpusDocs := make([][3]string, 60)
	for i := range corpusDocs {
		corpusDocs[i] = [3]string{
			fmt.Sprintf("d%03d", i), "t",
			fmt.Sprintf("senate budget vote round %d plus filler words number %d", i%7, i),
		}
	}
	build := func(shards, refreshEvery int) *Index {
		x := NewSharded(shards)
		for i, d := range corpusDocs {
			x.Add(d[0], d[1], d[2])
			if refreshEvery > 0 && i%refreshEvery == 0 {
				x.Refresh()
			}
		}
		x.Refresh()
		return x
	}
	want := build(1, 0).QueryPage("senate budget round", RankBM25, 0, 0)
	for _, cfg := range [][2]int{{4, 3}, {16, 1}, {16, 7}, {3, 5}} {
		got := build(cfg[0], cfg[1]).QueryPage("senate budget round", RankBM25, 0, 0)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d refreshEvery=%d diverged from single-shard scores", cfg[0], cfg[1])
		}
	}
}

// TestCompactionBoundsSegments drives many small refreshes through one
// shard and checks the segment budget holds while no posting is lost.
func TestCompactionBoundsSegments(t *testing.T) {
	x := NewSharded(1)
	for i := 0; i < 100; i++ {
		x.Add(fmt.Sprintf("d%03d", i), "t", fmt.Sprintf("word%d shared", i))
		x.Refresh() // one tiny segment per doc without compaction
	}
	st := x.Stats()[0]
	if st.Segments > defaultMaxSegments {
		t.Fatalf("segments = %d, budget %d", st.Segments, defaultMaxSegments)
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions recorded")
	}
	if res := x.Query("shared", 0); len(res) != 100 {
		t.Fatalf("compaction lost postings: %d/100 docs match", len(res))
	}
}

// TestConcurrentQueriesDuringIndexing exercises the lock-free read
// path under -race: queries run while the writer adds and refreshes.
func TestConcurrentQueriesDuringIndexing(t *testing.T) {
	x := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					x.Query("concurrent words stream", 10)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		x.Add(fmt.Sprintf("d%05d", i), "t", fmt.Sprintf("concurrent words stream item %d", i))
		if i%97 == 0 {
			x.Refresh()
		}
	}
	x.Refresh()
	close(stop)
	wg.Wait()
	if got := x.Docs(); got != 2000 {
		t.Fatalf("Docs = %d, want 2000", got)
	}
	if res := x.Query("concurrent", 0); len(res) != 2000 {
		t.Fatalf("matches = %d, want 2000", len(res))
	}
}

func TestTFIDFRankerMatchesLegacyIndex(t *testing.T) {
	x := New()
	leg := NewLocked()
	docs := [][3]string{
		{"a", "econ", "the budget passed the budget committee budget"},
		{"b", "econ", "the committee debated the schedule"},
		{"c", "sport", "the match ended in a draw"},
	}
	for _, d := range docs {
		x.Add(d[0], d[1], d[2])
		leg.Add(d[0], d[1], d[2])
	}
	x.Refresh()
	got := x.QueryPage("budget committee", RankTFIDF, 0, 0).Results
	want := leg.Query("budget committee", 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tfidf ranker diverged from legacy index:\ngot  %v\nwant %v", got, want)
	}
}

// publishEvent fabricates the commit event a published item produces.
func publishEvent(t *testing.T, height uint64, it supplychain.Item) commitbus.CommitEvent {
	t.Helper()
	raw, err := json.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"id": it.ID, "topic": string(it.Topic)}
	if it.CID != "" {
		attrs["cid"] = it.CID
	}
	return commitbus.CommitEvent{
		Height: height,
		Receipts: []contract.Receipt{{
			OK:     true,
			Result: raw,
			Events: []contract.Event{{Contract: supplychain.ContractName, Type: "published", Attrs: attrs}},
		}},
	}
}

func TestSubscriberIndexesInlineAndOffChainAsync(t *testing.T) {
	bodies := map[string]string{"cid1": "resolved off chain body about tariffs"}
	sub := NewSubscriber(New(), func(cid string) (string, error) {
		b, ok := bodies[cid]
		if !ok {
			return "", fmt.Errorf("unexpected resolve %s", cid)
		}
		return b, nil
	})
	if err := sub.OnCommit(publishEvent(t, 1, supplychain.Item{ID: "in", Topic: "econ", Text: "inline body about budgets"})); err != nil {
		t.Fatal(err)
	}
	if err := sub.OnCommit(publishEvent(t, 2, supplychain.Item{ID: "off", Topic: "econ", CID: "cid1", Size: 38})); err != nil {
		t.Fatal(err)
	}
	sub.Flush()
	if res := sub.Index.Query("tariffs", 0); len(res) != 1 || res[0].ID != "off" {
		t.Fatalf("off-chain body not searchable: %v", res)
	}
	if res := sub.Index.Query("budgets", 0); len(res) != 1 || res[0].ID != "in" {
		t.Fatalf("inline body not searchable: %v", res)
	}
	if st := sub.Stats(); st.Indexed != 2 || st.Pending != 0 || st.Errors != 0 {
		t.Fatalf("indexer stats = %+v", st)
	}
}

func TestSubscriberCountsResolveFailures(t *testing.T) {
	sub := NewSubscriber(New(), nil)
	if err := sub.OnCommit(publishEvent(t, 1, supplychain.Item{ID: "off", Topic: "econ", CID: "cid1", Size: 10})); err != nil {
		t.Fatal(err)
	}
	sub.Flush()
	st := sub.Stats()
	if st.Errors != 1 || st.LastError == "" {
		t.Fatalf("resolver-less off-chain item not counted as indexer error: %+v", st)
	}
	if sub.Index.Docs() != 0 {
		t.Fatal("unresolvable item was indexed anyway")
	}
}

func TestSnapshotRestoreIsSelfContained(t *testing.T) {
	sub := NewSubscriber(New(), nil)
	sub.Index.Add("a", "econ", "the budget passed")
	sub.Index.Add("b", "sport", "the match ended")
	blob, err := sub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh subscriber with NO resolver: must not need one.
	re := NewSubscriber(New(), nil)
	if err := re.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if re.Index.Docs() != 2 {
		t.Fatalf("Docs after restore = %d", re.Index.Docs())
	}
	want := sub.Index.Query("budget", 0)
	got := re.Index.Query("budget", 0)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("restored query = %v, want %v", got, want)
	}
	if err := re.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if re.Index.Docs() != 0 {
		t.Fatal("empty restore did not clear index")
	}
}

// TestSnapshotDeterministicAcrossLayouts: two indexes holding the same
// corpus but with different shard counts and seal histories must emit
// byte-identical snapshots — the property that lets replicas exchange
// and compare checkpoints.
func TestSnapshotDeterministicAcrossLayouts(t *testing.T) {
	build := func(shards, refreshEvery int) *Subscriber {
		sub := NewSubscriber(NewSharded(shards), nil)
		for i := 0; i < 40; i++ {
			sub.Index.Add(fmt.Sprintf("d%02d", i), "t", fmt.Sprintf("shared words item %d", i))
			if i%refreshEvery == 0 {
				sub.Index.Refresh()
			}
		}
		return sub
	}
	a, err := build(16, 3).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(4, 7).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("snapshots differ across shard counts / segment layouts")
	}
}
