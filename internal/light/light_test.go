package light

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
)

var testTime = time.Date(2019, 7, 8, 12, 0, 0, 0, time.UTC)

// buildChain commits n blocks of small transactions and returns the chain
// plus every tx.
func buildChain(t testing.TB, n int) (*ledger.Chain, []*ledger.Tx) {
	t.Helper()
	chain := ledger.NewMemChain()
	alice := keys.FromSeed([]byte("alice"))
	var all []*ledger.Tx
	nonce := uint64(0)
	for b := 0; b < n; b++ {
		var txs []*ledger.Tx
		for i := 0; i < 3; i++ {
			tx, err := ledger.NewTx(alice, nonce, "news.publish", []byte("item-"+strconv.Itoa(b)+"-"+strconv.Itoa(i)))
			if err != nil {
				t.Fatal(err)
			}
			nonce++
			txs = append(txs, tx)
			all = append(all, tx)
		}
		blk := ledger.NewBlock(chain.Height(), chain.HeadID(), [32]byte{}, testTime, alice.Address(), txs)
		if err := chain.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	return chain, all
}

func TestSyncAndVerifyEveryTx(t *testing.T) {
	chain, txs := buildChain(t, 5)
	c := NewClient()
	if err := c.SyncFrom(chain); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 5 {
		t.Fatalf("height=%d", c.Height())
	}
	for _, tx := range txs {
		p, err := Prove(chain, tx.ID())
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(p)
		if err != nil {
			t.Fatalf("verify %s: %v", tx.ID().Short(), err)
		}
		if got.ID() != tx.ID() {
			t.Fatal("proved a different transaction")
		}
	}
}

func TestVerifyRejectsTamperedTx(t *testing.T) {
	chain, txs := buildChain(t, 2)
	c := NewClient()
	c.SyncFrom(chain)
	p, err := Prove(chain, txs[0].ID())
	if err != nil {
		t.Fatal(err)
	}
	p.TxRaw = append([]byte{}, p.TxRaw...)
	p.TxRaw[40] ^= 1
	if _, err := c.Verify(p); !errors.Is(err, ErrProofMismatch) {
		t.Fatalf("want ErrProofMismatch, got %v", err)
	}
}

func TestVerifyRejectsForgedHeader(t *testing.T) {
	chain, txs := buildChain(t, 2)
	c := NewClient()
	c.SyncFrom(chain)
	p, _ := Prove(chain, txs[0].ID())
	p.Header.StateRoot[0] ^= 1 // forged field changes the header id
	if _, err := c.Verify(p); !errors.Is(err, ErrProofMismatch) {
		t.Fatalf("want ErrProofMismatch, got %v", err)
	}
}

func TestVerifyRejectsUnsyncedHeight(t *testing.T) {
	chain, txs := buildChain(t, 3)
	c := NewClient()
	// Sync only the first block.
	b0, _ := chain.BlockAt(0)
	if err := c.AddHeader(b0.Header); err != nil {
		t.Fatal(err)
	}
	p, _ := Prove(chain, txs[len(txs)-1].ID())
	if _, err := c.Verify(p); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("want ErrUnknownHeight, got %v", err)
	}
}

func TestAddHeaderLinkageEnforced(t *testing.T) {
	chain, _ := buildChain(t, 3)
	c := NewClient()
	b1, _ := chain.BlockAt(1)
	if err := c.AddHeader(b1.Header); !errors.Is(err, ErrHeaderGap) {
		t.Fatalf("want ErrHeaderGap for skipped height, got %v", err)
	}
	b0, _ := chain.BlockAt(0)
	if err := c.AddHeader(b0.Header); err != nil {
		t.Fatal(err)
	}
	forged := b1.Header
	forged.Prev = ledger.BlockID{0xde, 0xad}
	if err := c.AddHeader(forged); !errors.Is(err, ErrHeaderGap) {
		t.Fatalf("want ErrHeaderGap for broken prev, got %v", err)
	}
}

func TestProveUnknownTx(t *testing.T) {
	chain, _ := buildChain(t, 1)
	if _, err := Prove(chain, ledger.TxID{0xff}); err == nil {
		t.Fatal("want error for unknown tx")
	}
}

func TestVerifyFinalizedWithCommitCert(t *testing.T) {
	// Build a validator set, a block, and a genuine 3-of-4 precommit
	// certificate; the light client accepts it and rejects forgeries.
	kps := make([]*keys.KeyPair, 4)
	vals := make([]consensus.Validator, 4)
	for i := range kps {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = consensus.Validator{
			ID:   simnet.NodeID("v" + strconv.Itoa(i)),
			Addr: kps[i].Address(), Pub: kps[i].Public(), Power: 1,
		}
	}
	set, err := consensus.NewValidatorSet(vals)
	if err != nil {
		t.Fatal(err)
	}

	chain, txs := buildChain(t, 1)
	blk, _ := chain.BlockAt(0)
	id := blk.ID()
	mkVote := func(i int) consensus.Vote {
		v := consensus.Vote{Type: consensus.VotePrecommit, Height: 0, Round: 0, BlockID: id, Voter: kps[i].Address()}
		consensus.SignVote(&v, kps[i])
		return v
	}
	cert := &consensus.Commit{Height: 0, Block: blk, Quorum: []consensus.Vote{mkVote(0), mkVote(1), mkVote(2)}}

	c := NewClient()
	c.SyncFrom(chain)
	p, err := Prove(chain, txs[0].ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyFinalized(p, cert, set); err != nil {
		t.Fatalf("valid finalized proof rejected: %v", err)
	}
	// A 2-vote cert fails.
	weak := &consensus.Commit{Height: 0, Block: blk, Quorum: []consensus.Vote{mkVote(0), mkVote(1)}}
	if _, err := c.VerifyFinalized(p, weak, set); err == nil {
		t.Fatal("weak cert accepted")
	}
	// A cert for a different height fails.
	wrongHeight := &consensus.Commit{Height: 1, Block: blk, Quorum: cert.Quorum}
	if _, err := c.VerifyFinalized(p, wrongHeight, set); err == nil {
		t.Fatal("wrong-height cert accepted")
	}
}
