// Package light implements light-client verification: a reader who does
// not run a full node can still verify that a news item, vote or fact was
// committed to the chain — addressing the paper's complaint that today
// "readers are also unable to verify which information has been verified
// and to be factual" (§I).
//
// A light client keeps only block headers (84 bytes each). Given a
// transaction and a Merkle inclusion proof from any untrusted full node,
// it checks (1) the header chain links correctly, (2) the transaction's
// leaf is included under the header's TxRoot, and (3) optionally, a BFT
// commit certificate signed by 2/3+ of the validator set finalizes the
// block — so the proof is only as trustworthy as the validator set, not
// the serving node.
package light

import (
	"errors"
	"fmt"

	"repro/internal/consensus"
	"repro/internal/ledger"
	"repro/internal/merkle"
)

// Errors returned by this package.
var (
	// ErrHeaderGap indicates a header that does not extend the chain.
	ErrHeaderGap = errors.New("light: header does not extend the chain")
	// ErrUnknownHeight indicates a proof against an unsynced height.
	ErrUnknownHeight = errors.New("light: unknown header height")
	// ErrProofMismatch indicates an inclusion proof that fails.
	ErrProofMismatch = errors.New("light: inclusion proof failed")
)

// Proof is everything a full node hands a light client to prove one
// transaction's inclusion.
type Proof struct {
	Header ledger.Header `json:"header"`
	TxRaw  []byte        `json:"txRaw"`
	Merkle merkle.Proof  `json:"merkle"`
}

// Client is a header-only light client.
type Client struct {
	headers []ledger.Header
	ids     []ledger.BlockID
}

// NewClient creates an empty light client.
func NewClient() *Client { return &Client{} }

// Height returns the number of synced headers.
func (c *Client) Height() uint64 { return uint64(len(c.headers)) }

// AddHeader appends a header after validating linkage to the current tip.
func (c *Client) AddHeader(h ledger.Header) error {
	wantHeight := uint64(len(c.headers))
	if h.Height != wantHeight {
		return fmt.Errorf("%w: height %d want %d", ErrHeaderGap, h.Height, wantHeight)
	}
	var wantPrev ledger.BlockID
	if len(c.headers) > 0 {
		wantPrev = c.ids[len(c.ids)-1]
	}
	if h.Prev != wantPrev {
		return fmt.Errorf("%w: prev %s want %s", ErrHeaderGap, h.Prev.Short(), wantPrev.Short())
	}
	blk := ledger.Block{Header: h}
	c.headers = append(c.headers, h)
	c.ids = append(c.ids, blk.ID())
	return nil
}

// SyncFrom pulls all missing headers from a full chain (in production this
// would be a network fetch; the interface is the local chain type).
func (c *Client) SyncFrom(chain *ledger.Chain) error {
	for h := c.Height(); h < chain.Height(); h++ {
		b, err := chain.BlockAt(h)
		if err != nil {
			return fmt.Errorf("light: fetch header %d: %w", h, err)
		}
		if err := c.AddHeader(b.Header); err != nil {
			return err
		}
	}
	return nil
}

// HeaderAt returns the synced header at a height.
func (c *Client) HeaderAt(height uint64) (ledger.Header, error) {
	if height >= uint64(len(c.headers)) {
		return ledger.Header{}, fmt.Errorf("%w: %d", ErrUnknownHeight, height)
	}
	return c.headers[height], nil
}

// Verify checks an inclusion proof against the synced header chain and
// returns the proven transaction.
func (c *Client) Verify(p Proof) (*ledger.Tx, error) {
	synced, err := c.HeaderAt(p.Header.Height)
	if err != nil {
		return nil, err
	}
	// The served header must be byte-identical to the synced one (compare
	// by id, which covers every field).
	if (&ledger.Block{Header: synced}).ID() != (&ledger.Block{Header: p.Header}).ID() {
		return nil, fmt.Errorf("%w: header mismatch at height %d", ErrProofMismatch, p.Header.Height)
	}
	if err := merkle.VerifyProof(synced.TxRoot, p.TxRaw, p.Merkle); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProofMismatch, err)
	}
	tx, err := ledger.DecodeTx(p.TxRaw)
	if err != nil {
		return nil, fmt.Errorf("light: proven bytes are not a transaction: %w", err)
	}
	if err := tx.Verify(); err != nil {
		return nil, fmt.Errorf("light: proven transaction invalid: %w", err)
	}
	return tx, nil
}

// VerifyFinalized additionally checks a BFT commit certificate for the
// block, so the client trusts the validator set rather than header sync.
func (c *Client) VerifyFinalized(p Proof, cert *consensus.Commit, set *consensus.ValidatorSet) (*ledger.Tx, error) {
	tx, err := c.Verify(p)
	if err != nil {
		return nil, err
	}
	if cert.Height != p.Header.Height {
		return nil, fmt.Errorf("%w: cert height %d proof height %d", ErrProofMismatch, cert.Height, p.Header.Height)
	}
	if cert.Block.ID() != (&ledger.Block{Header: p.Header}).ID() {
		return nil, fmt.Errorf("%w: cert block does not match header", ErrProofMismatch)
	}
	if err := consensus.VerifyCommit(cert, set); err != nil {
		return nil, fmt.Errorf("light: commit certificate: %w", err)
	}
	return tx, nil
}

// Prove builds an inclusion proof for a committed transaction from a full
// chain (the full-node side of the protocol).
func Prove(chain *ledger.Chain, id ledger.TxID) (Proof, error) {
	tx, loc, err := chain.FindTx(id)
	if err != nil {
		return Proof{}, err
	}
	blk, err := chain.BlockAt(loc.Height)
	if err != nil {
		return Proof{}, err
	}
	leaves := make([][]byte, len(blk.Txs))
	for i, t := range blk.Txs {
		leaves[i] = t.Encode()
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return Proof{}, fmt.Errorf("light: build tree: %w", err)
	}
	mp, err := tree.Proof(loc.Index)
	if err != nil {
		return Proof{}, fmt.Errorf("light: build proof: %w", err)
	}
	return Proof{Header: blk.Header, TxRaw: tx.Encode(), Merkle: mp}, nil
}
