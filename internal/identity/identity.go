// Package identity implements the verified-identity registry of the
// trusting-news platform as a smart contract.
//
// The paper requires that "identification verified persons" create content
// and comments (§V), and that the ecosystem distinguish five roles: news
// consumers, content creators, news fact checkers, fake-news detection AI
// code developers, and media publishers (Fig. 2). Accounts self-register
// with a requested role and become active once approved by an already-
// verified publisher or by the genesis authority; every action on the
// platform checks the registry, which is what binds ledger accountability
// to real identities.
package identity

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/contract"
	"repro/internal/keys"
	"repro/internal/store"
)

// ContractName routes identity transactions.
const ContractName = "identity"

// Role is a participant's function in the ecosystem (paper Fig. 2).
type Role string

// Ecosystem roles.
const (
	RoleConsumer    Role = "consumer"
	RoleCreator     Role = "creator"     // journalists / content creators
	RoleFactChecker Role = "factchecker" // news fact checkers
	RoleAIDeveloper Role = "aideveloper" // fake-news detection AI developers
	RolePublisher   Role = "publisher"   // media publishers
)

// validRoles is the closed set of acceptable roles.
var validRoles = map[Role]bool{
	RoleConsumer:    true,
	RoleCreator:     true,
	RoleFactChecker: true,
	RoleAIDeveloper: true,
	RolePublisher:   true,
}

// Status of a registered account.
type Status string

// Account statuses.
const (
	StatusPending  Status = "pending"
	StatusVerified Status = "verified"
	StatusRevoked  Status = "revoked"
)

// Errors surfaced by contract execution (wrapped into receipts).
var (
	// ErrBadRole indicates an unknown role string.
	ErrBadRole = errors.New("identity: unknown role")
	// ErrAlreadyRegistered indicates a duplicate registration.
	ErrAlreadyRegistered = errors.New("identity: already registered")
	// ErrNotRegistered indicates an account with no registry entry.
	ErrNotRegistered = errors.New("identity: not registered")
	// ErrNotAuthorized indicates a verifier without authority.
	ErrNotAuthorized = errors.New("identity: not authorized")
	// ErrNotVerified indicates an account that is not in verified status.
	ErrNotVerified = errors.New("identity: account not verified")
)

// Record is one account's registry entry.
type Record struct {
	Addr       string `json:"addr"`
	Name       string `json:"name"`
	Role       Role   `json:"role"`
	Status     Status `json:"status"`
	VerifiedBy string `json:"verifiedBy,omitempty"`
	Height     uint64 `json:"height"`
}

// registerArgs is the payload of identity.register.
type registerArgs struct {
	Name string `json:"name"`
	Role Role   `json:"role"`
}

// actArgs is the payload of identity.verify / identity.revoke.
type actArgs struct {
	Target string `json:"target"`
}

// Contract is the identity registry chaincode. Genesis is the address
// allowed to verify accounts before any publisher exists.
type Contract struct {
	Genesis keys.Address
}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (c *Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c *Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "register":
		return c.register(ctx, args)
	case "verify":
		return c.setStatus(ctx, args, StatusVerified)
	case "revoke":
		return c.setStatus(ctx, args, StatusRevoked)
	case "get":
		return c.get(ctx, args)
	case "list":
		return c.list(ctx)
	default:
		return nil, fmt.Errorf("%w: identity.%s", contract.ErrUnknownMethod, method)
	}
}

func (c *Contract) register(ctx *contract.Context, args []byte) ([]byte, error) {
	var in registerArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("identity: register args: %w", err)
	}
	if !validRoles[in.Role] {
		return nil, fmt.Errorf("%w: %q", ErrBadRole, in.Role)
	}
	key := "acct/" + ctx.Sender.String()
	if ok, err := ctx.Has(key); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyRegistered, ctx.Sender.Short())
	}
	rec := Record{
		Addr:   ctx.Sender.String(),
		Name:   in.Name,
		Role:   in.Role,
		Status: StatusPending,
		Height: ctx.Height,
	}
	// Consumers are auto-verified: the paper's platform is open to the
	// general population as readers and rankers; only content-producing
	// and governance roles need vetting.
	if in.Role == RoleConsumer {
		rec.Status = StatusVerified
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("identity: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	if err := ctx.Emit("registered", map[string]string{
		"addr": rec.Addr, "role": string(rec.Role), "status": string(rec.Status),
	}); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c *Contract) setStatus(ctx *contract.Context, args []byte, s Status) ([]byte, error) {
	var in actArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("identity: args: %w", err)
	}
	if err := c.requireAuthority(ctx); err != nil {
		return nil, err
	}
	key := "acct/" + in.Target
	raw, err := ctx.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, in.Target)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("identity: unmarshal: %w", err)
	}
	rec.Status = s
	rec.VerifiedBy = ctx.Sender.String()
	out, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("identity: marshal: %w", err)
	}
	if err := ctx.Put(key, out); err != nil {
		return nil, err
	}
	event := "verified"
	if s == StatusRevoked {
		event = "revoked"
	}
	if err := ctx.Emit(event, map[string]string{"addr": rec.Addr, "by": ctx.Sender.String()}); err != nil {
		return nil, err
	}
	return out, nil
}

// requireAuthority allows genesis or any verified publisher to act.
func (c *Contract) requireAuthority(ctx *contract.Context) error {
	if ctx.Sender == c.Genesis {
		return nil
	}
	raw, err := ctx.Get("acct/" + ctx.Sender.String())
	if err != nil {
		return fmt.Errorf("%w: verifier %s", ErrNotAuthorized, ctx.Sender.Short())
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("identity: unmarshal verifier: %w", err)
	}
	if rec.Role != RolePublisher || rec.Status != StatusVerified {
		return fmt.Errorf("%w: %s is %s/%s", ErrNotAuthorized, ctx.Sender.Short(), rec.Role, rec.Status)
	}
	return nil
}

func (c *Contract) get(ctx *contract.Context, args []byte) ([]byte, error) {
	raw, err := ctx.Get("acct/" + string(args))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, string(args))
	}
	return raw, nil
}

func (c *Contract) list(ctx *contract.Context) ([]byte, error) {
	ks, err := ctx.Keys("acct/")
	if err != nil {
		return nil, err
	}
	recs := make([]Record, 0, len(ks))
	for _, k := range ks {
		raw, err := ctx.Get(k)
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("identity: unmarshal %s: %w", k, err)
		}
		recs = append(recs, rec)
	}
	return json.Marshal(recs)
}

// ---------------------------------------------------------------------------
// Client helpers: payload builders and query decoding.
// ---------------------------------------------------------------------------

// RegisterPayload builds the identity.register payload.
func RegisterPayload(name string, role Role) ([]byte, error) {
	return json.Marshal(registerArgs{Name: name, Role: role})
}

// ActPayload builds identity.verify / identity.revoke payloads.
func ActPayload(target keys.Address) ([]byte, error) {
	return json.Marshal(actArgs{Target: target.String()})
}

// Lookup queries an account record through the engine.
func Lookup(e *contract.Engine, addr keys.Address) (Record, error) {
	raw, err := e.Query(addr, ContractName+".get", []byte(addr.String()))
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return Record{}, ErrNotRegistered
		}
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, fmt.Errorf("identity: decode record: %w", err)
	}
	return rec, nil
}

// IsVerified reports whether addr holds a verified account with the role.
func IsVerified(e *contract.Engine, addr keys.Address, role Role) bool {
	rec, err := Lookup(e, addr)
	if err != nil {
		return false
	}
	return rec.Status == StatusVerified && rec.Role == role
}

// All lists every registry record.
func All(e *contract.Engine, asker keys.Address) ([]Record, error) {
	raw, err := e.Query(asker, ContractName+".list", nil)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, fmt.Errorf("identity: decode list: %w", err)
	}
	return recs, nil
}
