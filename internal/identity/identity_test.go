package identity

import (
	"strings"
	"testing"

	"repro/internal/contract"
	"repro/internal/keys"
	"repro/internal/ledger"
)

type fixture struct {
	engine  *contract.Engine
	genesis *keys.KeyPair
	nonces  map[string]uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	genesis := keys.FromSeed([]byte("genesis"))
	e := contract.NewEngine()
	if err := e.Register(&Contract{Genesis: genesis.Address()}); err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: e, genesis: genesis, nonces: make(map[string]uint64)}
}

func (f *fixture) exec(t *testing.T, kp *keys.KeyPair, method string, payload []byte) contract.Receipt {
	t.Helper()
	key := kp.Address().String()
	tx, err := ledger.NewTx(kp, f.nonces[key], ContractName+"."+method, payload)
	if err != nil {
		t.Fatal(err)
	}
	f.nonces[key]++
	return f.engine.ExecuteTx(tx, 1)
}

func (f *fixture) register(t *testing.T, kp *keys.KeyPair, name string, role Role) contract.Receipt {
	t.Helper()
	payload, err := RegisterPayload(name, role)
	if err != nil {
		t.Fatal(err)
	}
	return f.exec(t, kp, "register", payload)
}

func (f *fixture) verify(t *testing.T, by *keys.KeyPair, target keys.Address) contract.Receipt {
	t.Helper()
	payload, err := ActPayload(target)
	if err != nil {
		t.Fatal(err)
	}
	return f.exec(t, by, "verify", payload)
}

func TestRegisterCreator(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	rec := f.register(t, alice, "Alice Reporter", RoleCreator)
	if !rec.OK {
		t.Fatalf("receipt: %+v", rec)
	}
	got, err := Lookup(f.engine, alice.Address())
	if err != nil {
		t.Fatal(err)
	}
	if got.Role != RoleCreator || got.Status != StatusPending {
		t.Fatalf("record=%+v", got)
	}
}

func TestConsumerAutoVerified(t *testing.T) {
	f := newFixture(t)
	reader := keys.FromSeed([]byte("reader"))
	f.register(t, reader, "Reader", RoleConsumer)
	if !IsVerified(f.engine, reader.Address(), RoleConsumer) {
		t.Fatal("consumer must be auto-verified")
	}
}

func TestGenesisVerifies(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	rec := f.verify(t, f.genesis, alice.Address())
	if !rec.OK {
		t.Fatalf("receipt: %+v", rec)
	}
	if !IsVerified(f.engine, alice.Address(), RoleCreator) {
		t.Fatal("not verified after genesis approval")
	}
}

func TestPublisherCanVerifyOthers(t *testing.T) {
	f := newFixture(t)
	pub := keys.FromSeed([]byte("pub"))
	f.register(t, pub, "Publisher", RolePublisher)
	f.verify(t, f.genesis, pub.Address())
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	rec := f.verify(t, pub, alice.Address())
	if !rec.OK {
		t.Fatalf("verified publisher must verify: %+v", rec)
	}
}

func TestUnverifiedPublisherCannotVerify(t *testing.T) {
	f := newFixture(t)
	pub := keys.FromSeed([]byte("pub"))
	f.register(t, pub, "Publisher", RolePublisher) // still pending
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	rec := f.verify(t, pub, alice.Address())
	if rec.OK || !strings.Contains(rec.Err, "not authorized") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestConsumerCannotVerify(t *testing.T) {
	f := newFixture(t)
	reader := keys.FromSeed([]byte("reader"))
	f.register(t, reader, "Reader", RoleConsumer)
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	rec := f.verify(t, reader, alice.Address())
	if rec.OK {
		t.Fatal("consumer must not verify accounts")
	}
}

func TestRevoke(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	f.verify(t, f.genesis, alice.Address())
	payload, _ := ActPayload(alice.Address())
	rec := f.exec(t, f.genesis, "revoke", payload)
	if !rec.OK {
		t.Fatalf("revoke: %+v", rec)
	}
	got, _ := Lookup(f.engine, alice.Address())
	if got.Status != StatusRevoked {
		t.Fatalf("status=%s", got.Status)
	}
	if IsVerified(f.engine, alice.Address(), RoleCreator) {
		t.Fatal("revoked account still verified")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	f.register(t, alice, "Alice", RoleCreator)
	rec := f.register(t, alice, "Alice Again", RoleConsumer)
	if rec.OK || !strings.Contains(rec.Err, "already registered") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestBadRoleRejected(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	rec := f.exec(t, alice, "register", []byte(`{"name":"x","role":"overlord"}`))
	if rec.OK || !strings.Contains(rec.Err, "unknown role") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestVerifyUnregisteredTarget(t *testing.T) {
	f := newFixture(t)
	ghost := keys.FromSeed([]byte("ghost"))
	rec := f.verify(t, f.genesis, ghost.Address())
	if rec.OK || !strings.Contains(rec.Err, "not registered") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestLookupMissing(t *testing.T) {
	f := newFixture(t)
	ghost := keys.FromSeed([]byte("ghost"))
	if _, err := Lookup(f.engine, ghost.Address()); err == nil {
		t.Fatal("want error for missing account")
	}
}

func TestListAll(t *testing.T) {
	f := newFixture(t)
	for i, role := range []Role{RoleConsumer, RoleCreator, RoleFactChecker, RoleAIDeveloper, RolePublisher} {
		kp := keys.FromSeed([]byte{byte(i)})
		rec := f.register(t, kp, "user", role)
		if !rec.OK {
			t.Fatalf("register %s: %+v", role, rec)
		}
	}
	recs, err := All(f.engine, f.genesis.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("listed %d records", len(recs))
	}
	roles := make(map[Role]bool)
	for _, r := range recs {
		roles[r.Role] = true
	}
	if len(roles) != 5 {
		t.Fatalf("roles=%v", roles)
	}
}

func TestRegistrationEventEmitted(t *testing.T) {
	f := newFixture(t)
	alice := keys.FromSeed([]byte("alice"))
	rec := f.register(t, alice, "Alice", RoleCreator)
	if len(rec.Events) != 1 || rec.Events[0].Type != "registered" {
		t.Fatalf("events=%+v", rec.Events)
	}
	if rec.Events[0].Attrs["role"] != string(RoleCreator) {
		t.Fatalf("attrs=%v", rec.Events[0].Attrs)
	}
}
