package newsroom

import (
	"strings"
	"testing"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/identity"
	"repro/internal/keys"
	"repro/internal/ledger"
)

type fixture struct {
	engine  *contract.Engine
	genesis *keys.KeyPair
	pub     *keys.KeyPair // verified publisher
	journo  *keys.KeyPair // verified + accredited creator
	reader  *keys.KeyPair // verified consumer
	nonces  map[string]uint64
	t       *testing.T
}

func (f *fixture) exec(kp *keys.KeyPair, kind string, payload []byte) contract.Receipt {
	f.t.Helper()
	key := kp.Address().String()
	tx, err := ledger.NewTx(kp, f.nonces[key], kind, payload)
	if err != nil {
		f.t.Fatal(err)
	}
	f.nonces[key]++
	return f.engine.ExecuteTx(tx, 1)
}

func (f *fixture) must(kp *keys.KeyPair, kind string, payload []byte) contract.Receipt {
	f.t.Helper()
	rec := f.exec(kp, kind, payload)
	if !rec.OK {
		f.t.Fatalf("%s: %+v", kind, rec)
	}
	return rec
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		genesis: keys.FromSeed([]byte("genesis")),
		pub:     keys.FromSeed([]byte("publisher")),
		journo:  keys.FromSeed([]byte("journalist")),
		reader:  keys.FromSeed([]byte("reader")),
		nonces:  make(map[string]uint64),
		t:       t,
	}
	f.engine = contract.NewEngine()
	if err := f.engine.Register(&identity.Contract{Genesis: f.genesis.Address()}); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.Register(Contract{}); err != nil {
		t.Fatal(err)
	}
	// Publisher: register + genesis-verify.
	p, _ := identity.RegisterPayload("Daily Planet", identity.RolePublisher)
	f.must(f.pub, "identity.register", p)
	act, _ := identity.ActPayload(f.pub.Address())
	f.must(f.genesis, "identity.verify", act)
	// Journalist: register + publisher-verify.
	p, _ = identity.RegisterPayload("Lois", identity.RoleCreator)
	f.must(f.journo, "identity.register", p)
	act, _ = identity.ActPayload(f.journo.Address())
	f.must(f.pub, "identity.verify", act)
	// Reader: consumer auto-verifies.
	p, _ = identity.RegisterPayload("Reader", identity.RoleConsumer)
	f.must(f.reader, "identity.register", p)
	return f
}

func (f *fixture) setupPlatformRoom() {
	f.t.Helper()
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	f.must(f.pub, "newsroom.createPlatform", p)
	r, _ := CreateRoomPayload("metro", "dp", corpus.TopicPolitics)
	f.must(f.pub, "newsroom.createRoom", r)
	a, _ := AccreditPayload("dp", f.journo.Address())
	f.must(f.pub, "newsroom.accredit", a)
}

func TestPlatformCreationRequiresVerifiedPublisher(t *testing.T) {
	f := newFixture(t)
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	rec := f.exec(f.journo, "newsroom.createPlatform", p)
	if rec.OK || !strings.Contains(rec.Err, "not a verified publisher") {
		t.Fatalf("receipt: %+v", rec)
	}
	if rec := f.exec(f.pub, "newsroom.createPlatform", p); !rec.OK {
		t.Fatalf("publisher rejected: %+v", rec)
	}
}

func TestDuplicatePlatformRejected(t *testing.T) {
	f := newFixture(t)
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	f.must(f.pub, "newsroom.createPlatform", p)
	if rec := f.exec(f.pub, "newsroom.createPlatform", p); rec.OK {
		t.Fatal("duplicate platform accepted")
	}
}

func TestRoomRequiresOwner(t *testing.T) {
	f := newFixture(t)
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	f.must(f.pub, "newsroom.createPlatform", p)
	r, _ := CreateRoomPayload("metro", "dp", corpus.TopicPolitics)
	if rec := f.exec(f.journo, "newsroom.createRoom", r); rec.OK {
		t.Fatal("non-owner created room")
	}
	f.must(f.pub, "newsroom.createRoom", r)
}

func TestAccreditationRules(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	// Accrediting a consumer must fail: only verified creators draft.
	a, _ := AccreditPayload("dp", f.reader.Address())
	rec := f.exec(f.pub, "newsroom.accredit", a)
	if rec.OK || !strings.Contains(rec.Err, "not a verified creator") {
		t.Fatalf("receipt: %+v", rec)
	}
	// Non-owner cannot accredit.
	a2, _ := AccreditPayload("dp", f.journo.Address())
	if rec := f.exec(f.journo, "newsroom.accredit", a2); rec.OK {
		t.Fatal("non-owner accredited")
	}
}

func TestFullEditorialWorkflow(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	d, _ := DraftPayload("a1", "metro", "Treaty ratified", "the parliament ratified the border treaty", "interviewed two officials", nil)
	f.must(f.journo, "newsroom.draft", d)

	art, err := GetArticle(f.engine, f.pub.Address(), "a1")
	if err != nil {
		t.Fatal(err)
	}
	if art.Status != StatusDraft || art.Author != f.journo.Address().String() {
		t.Fatalf("article=%+v", art)
	}

	act, _ := ArticleActPayload("a1")
	f.must(f.journo, "newsroom.submit", act)
	rec := f.must(f.pub, "newsroom.approve", act)
	if len(rec.Events) == 0 || rec.Events[0].Type != "article_published" {
		t.Fatalf("events=%+v", rec.Events)
	}
	art, _ = GetArticle(f.engine, f.pub.Address(), "a1")
	if art.Status != StatusPublished || art.Reviewer != f.pub.Address().String() {
		t.Fatalf("article=%+v", art)
	}
}

func TestRejectWorkflow(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	d, _ := DraftPayload("a1", "metro", "t", "text", "", nil)
	f.must(f.journo, "newsroom.draft", d)
	act, _ := ArticleActPayload("a1")
	f.must(f.journo, "newsroom.submit", act)
	f.must(f.pub, "newsroom.reject", act)
	art, _ := GetArticle(f.engine, f.pub.Address(), "a1")
	if art.Status != StatusRejected {
		t.Fatalf("status=%s", art.Status)
	}
}

func TestWorkflowTransitionGuards(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	d, _ := DraftPayload("a1", "metro", "t", "text", "", nil)
	f.must(f.journo, "newsroom.draft", d)
	act, _ := ArticleActPayload("a1")
	// Approve before submit: bad state.
	if rec := f.exec(f.pub, "newsroom.approve", act); rec.OK || !strings.Contains(rec.Err, "invalid article state") {
		t.Fatalf("receipt: %+v", rec)
	}
	// Submit by non-author.
	if rec := f.exec(f.pub, "newsroom.submit", act); rec.OK || !strings.Contains(rec.Err, "not the author") {
		t.Fatalf("receipt: %+v", rec)
	}
	f.must(f.journo, "newsroom.submit", act)
	// Approve by non-owner.
	if rec := f.exec(f.journo, "newsroom.approve", act); rec.OK || !strings.Contains(rec.Err, "platform owner") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestDraftRequiresAccreditation(t *testing.T) {
	f := newFixture(t)
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	f.must(f.pub, "newsroom.createPlatform", p)
	r, _ := CreateRoomPayload("metro", "dp", corpus.TopicPolitics)
	f.must(f.pub, "newsroom.createRoom", r)
	// Journalist is verified but NOT accredited on this platform.
	d, _ := DraftPayload("a1", "metro", "t", "text", "", nil)
	rec := f.exec(f.journo, "newsroom.draft", d)
	if rec.OK || !strings.Contains(rec.Err, "not accredited") {
		t.Fatalf("receipt: %+v", rec)
	}
}

func TestDraftValidations(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	empty, _ := DraftPayload("", "metro", "t", "", "", nil)
	if rec := f.exec(f.journo, "newsroom.draft", empty); rec.OK {
		t.Fatal("empty draft accepted")
	}
	ghost, _ := DraftPayload("a1", "ghostroom", "t", "text", "", nil)
	if rec := f.exec(f.journo, "newsroom.draft", ghost); rec.OK {
		t.Fatal("draft in missing room accepted")
	}
	d, _ := DraftPayload("a1", "metro", "t", "text", "", nil)
	f.must(f.journo, "newsroom.draft", d)
	if rec := f.exec(f.journo, "newsroom.draft", d); rec.OK {
		t.Fatal("duplicate article accepted")
	}
}

func TestCommentsRequireVerifiedIdentity(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	d, _ := DraftPayload("a1", "metro", "t", "text", "", nil)
	f.must(f.journo, "newsroom.draft", d)

	cm, _ := CommentPayload("a1", "good reporting")
	f.must(f.reader, "newsroom.comment", cm)
	cm2, _ := CommentPayload("a1", "second comment")
	f.must(f.reader, "newsroom.comment", cm2)

	anon := keys.FromSeed([]byte("anon"))
	if rec := f.exec(anon, "newsroom.comment", cm); rec.OK {
		t.Fatal("unverified account commented")
	}

	comments, err := Comments(f.engine, f.pub.Address(), "a1")
	if err != nil {
		t.Fatal(err)
	}
	if len(comments) != 2 || comments[0].Seq != 0 || comments[1].Seq != 1 {
		t.Fatalf("comments=%+v", comments)
	}
}

func TestCommentOnMissingArticle(t *testing.T) {
	f := newFixture(t)
	cm, _ := CommentPayload("ghost", "hello")
	if rec := f.exec(f.reader, "newsroom.comment", cm); rec.OK {
		t.Fatal("comment on missing article accepted")
	}
}

func TestRevokedPublisherCannotCreatePlatform(t *testing.T) {
	f := newFixture(t)
	act, _ := identity.ActPayload(f.pub.Address())
	f.must(f.genesis, "identity.revoke", act)
	p, _ := CreatePlatformPayload("dp", "Daily Planet")
	if rec := f.exec(f.pub, "newsroom.createPlatform", p); rec.OK {
		t.Fatal("revoked publisher created platform")
	}
}

func TestArticleSourcesRecorded(t *testing.T) {
	f := newFixture(t)
	f.setupPlatformRoom()
	d, _ := DraftPayload("a1", "metro", "t", "text", "", []string{"item-1", "item-2"})
	f.must(f.journo, "newsroom.draft", d)
	art, _ := GetArticle(f.engine, f.pub.Address(), "a1")
	if len(art.Sources) != 2 || art.Sources[0] != "item-1" {
		t.Fatalf("sources=%v", art.Sources)
	}
}
