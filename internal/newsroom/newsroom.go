// Package newsroom implements the distribution/editing platform layer of
// §V: media publishers apply to create distribution platforms; each
// platform hosts topic-based news rooms; verified journalists draft
// articles through the paper's production workflow and publish them for
// ranking. "There will be smart contracts for authentication and crowd
// sourcing review process to allow for the establishment of a trusted
// distribution platform."
//
// The two-layer trust design is enforced here: the distribution platform
// answers for its creators (only its accredited journalists can draft),
// and the editing platform answers for its content (an article must pass
// review before publication).
package newsroom

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/contract"
	"repro/internal/corpus"
	"repro/internal/identity"
	"repro/internal/keys"
)

// ContractName routes newsroom transactions.
const ContractName = "newsroom"

// Errors surfaced by contract execution.
var (
	// ErrNotPublisher indicates a platform creation by a non-publisher.
	ErrNotPublisher = errors.New("newsroom: sender is not a verified publisher")
	// ErrNotOwner indicates a platform action by a non-owner.
	ErrNotOwner = errors.New("newsroom: sender does not own the platform")
	// ErrNotAccredited indicates a draft by a non-accredited journalist.
	ErrNotAccredited = errors.New("newsroom: journalist not accredited on platform")
	// ErrNotCreator indicates accreditation of a non-creator account.
	ErrNotCreator = errors.New("newsroom: account is not a verified creator")
	// ErrExists indicates a duplicate platform/room/article id.
	ErrExists = errors.New("newsroom: already exists")
	// ErrNotFound indicates a missing platform/room/article.
	ErrNotFound = errors.New("newsroom: not found")
	// ErrBadState indicates a workflow transition out of order.
	ErrBadState = errors.New("newsroom: invalid article state transition")
	// ErrNotAuthor indicates an article edit by a non-author.
	ErrNotAuthor = errors.New("newsroom: sender is not the author")
)

// ArticleStatus is the editing-platform workflow state. The paper's
// production process (§V: planning, survey, topics, collection, interview,
// writing, review, publication) maps onto drafting (steps 1-6), review
// (step 7) and publication (step 8); the pre-writing steps are recorded as
// the draft's research notes.
type ArticleStatus string

// Workflow states.
const (
	StatusDraft     ArticleStatus = "draft"
	StatusInReview  ArticleStatus = "in_review"
	StatusPublished ArticleStatus = "published"
	StatusRejected  ArticleStatus = "rejected"
)

// Platform is a distribution platform owned by a publisher.
type Platform struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Owner  string `json:"owner"`
	Height uint64 `json:"height"`
}

// Room is a themed news room on a platform.
type Room struct {
	ID         string       `json:"id"`
	PlatformID string       `json:"platformId"`
	Topic      corpus.Topic `json:"topic"`
	Height     uint64       `json:"height"`
}

// Article is one piece of content moving through the workflow.
type Article struct {
	ID       string        `json:"id"`
	RoomID   string        `json:"roomId"`
	Author   string        `json:"author"`
	Title    string        `json:"title"`
	Text     string        `json:"text"`
	Notes    string        `json:"notes,omitempty"` // research notes (steps 1-5)
	Status   ArticleStatus `json:"status"`
	Reviewer string        `json:"reviewer,omitempty"`
	Height   uint64        `json:"height"`
	// Sources are ids of news items the article cites (supply-chain
	// parents once published).
	Sources []string `json:"sources,omitempty"`
}

// Comment is a reader/checker comment on an article.
type Comment struct {
	ArticleID string `json:"articleId"`
	Author    string `json:"author"`
	Text      string `json:"text"`
	Seq       int    `json:"seq"`
	Height    uint64 `json:"height"`
}

type createPlatformArgs struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

type createRoomArgs struct {
	ID         string       `json:"id"`
	PlatformID string       `json:"platformId"`
	Topic      corpus.Topic `json:"topic"`
}

type accreditArgs struct {
	PlatformID string `json:"platformId"`
	Journalist string `json:"journalist"`
}

type draftArgs struct {
	ID      string   `json:"id"`
	RoomID  string   `json:"roomId"`
	Title   string   `json:"title"`
	Text    string   `json:"text"`
	Notes   string   `json:"notes,omitempty"`
	Sources []string `json:"sources,omitempty"`
}

type articleActArgs struct {
	ID string `json:"id"`
}

type commentArgs struct {
	ArticleID string `json:"articleId"`
	Text      string `json:"text"`
}

// Contract is the newsroom chaincode. It consults the identity registry
// through read-only cross-contract state access.
type Contract struct{}

var _ contract.Contract = (*Contract)(nil)

// Name implements contract.Contract.
func (Contract) Name() string { return ContractName }

// Execute implements contract.Contract.
func (c Contract) Execute(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "createPlatform":
		return c.createPlatform(ctx, args)
	case "createRoom":
		return c.createRoom(ctx, args)
	case "accredit":
		return c.accredit(ctx, args)
	case "draft":
		return c.draft(ctx, args)
	case "submit":
		return c.transition(ctx, args, StatusDraft, StatusInReview, false)
	case "approve":
		return c.transition(ctx, args, StatusInReview, StatusPublished, true)
	case "reject":
		return c.transition(ctx, args, StatusInReview, StatusRejected, true)
	case "comment":
		return c.comment(ctx, args)
	case "getArticle":
		return c.getJSON(ctx, "article/"+string(args))
	case "getPlatform":
		return c.getJSON(ctx, "platform/"+string(args))
	case "getRoom":
		return c.getJSON(ctx, "room/"+string(args))
	case "comments":
		return c.comments(ctx, args)
	default:
		return nil, fmt.Errorf("%w: newsroom.%s", contract.ErrUnknownMethod, method)
	}
}

// identityRecord reads an account's registry entry cross-contract.
func identityRecord(ctx *contract.Context, addr string) (identity.Record, error) {
	raw, err := ctx.GetExternal(identity.ContractName, "acct/"+addr)
	if err != nil {
		return identity.Record{}, err
	}
	var rec identity.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return identity.Record{}, fmt.Errorf("newsroom: decode identity: %w", err)
	}
	return rec, nil
}

func requireRole(ctx *contract.Context, addr string, role identity.Role) error {
	rec, err := identityRecord(ctx, addr)
	if err != nil || rec.Status != identity.StatusVerified || rec.Role != role {
		return fmt.Errorf("account %s lacks verified role %s", addr[:8], role)
	}
	return nil
}

func (c Contract) createPlatform(ctx *contract.Context, args []byte) ([]byte, error) {
	var in createPlatformArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	sender := ctx.Sender.String()
	if err := requireRole(ctx, sender, identity.RolePublisher); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPublisher, err)
	}
	key := "platform/" + in.ID
	if ok, err := ctx.Has(key); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: platform %s", ErrExists, in.ID)
	}
	p := Platform{ID: in.ID, Name: in.Name, Owner: sender, Height: ctx.Height}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("newsroom: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	if err := ctx.Emit("platform_created", map[string]string{"id": in.ID, "owner": sender}); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c Contract) loadPlatform(ctx *contract.Context, id string) (Platform, error) {
	raw, err := ctx.Get("platform/" + id)
	if err != nil {
		return Platform{}, fmt.Errorf("%w: platform %s", ErrNotFound, id)
	}
	var p Platform
	if err := json.Unmarshal(raw, &p); err != nil {
		return Platform{}, fmt.Errorf("newsroom: decode platform: %w", err)
	}
	return p, nil
}

func (c Contract) createRoom(ctx *contract.Context, args []byte) ([]byte, error) {
	var in createRoomArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	p, err := c.loadPlatform(ctx, in.PlatformID)
	if err != nil {
		return nil, err
	}
	if p.Owner != ctx.Sender.String() {
		return nil, fmt.Errorf("%w: platform %s", ErrNotOwner, in.PlatformID)
	}
	key := "room/" + in.ID
	if ok, err := ctx.Has(key); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: room %s", ErrExists, in.ID)
	}
	r := Room{ID: in.ID, PlatformID: in.PlatformID, Topic: in.Topic, Height: ctx.Height}
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("newsroom: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c Contract) accredit(ctx *contract.Context, args []byte) ([]byte, error) {
	var in accreditArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	p, err := c.loadPlatform(ctx, in.PlatformID)
	if err != nil {
		return nil, err
	}
	if p.Owner != ctx.Sender.String() {
		return nil, fmt.Errorf("%w: platform %s", ErrNotOwner, in.PlatformID)
	}
	if err := requireRole(ctx, in.Journalist, identity.RoleCreator); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotCreator, err)
	}
	key := "accred/" + in.PlatformID + "/" + in.Journalist
	if err := ctx.Put(key, []byte("1")); err != nil {
		return nil, err
	}
	if err := ctx.Emit("accredited", map[string]string{"platform": in.PlatformID, "journalist": in.Journalist}); err != nil {
		return nil, err
	}
	return []byte("1"), nil
}

func (c Contract) isAccredited(ctx *contract.Context, platformID, addr string) (bool, error) {
	return ctx.Has("accred/" + platformID + "/" + addr)
}

func (c Contract) draft(ctx *contract.Context, args []byte) ([]byte, error) {
	var in draftArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	if in.ID == "" || in.RoomID == "" || in.Text == "" {
		return nil, errors.New("newsroom: draft needs id, room and text")
	}
	roomRaw, err := ctx.Get("room/" + in.RoomID)
	if err != nil {
		return nil, fmt.Errorf("%w: room %s", ErrNotFound, in.RoomID)
	}
	var room Room
	if err := json.Unmarshal(roomRaw, &room); err != nil {
		return nil, fmt.Errorf("newsroom: decode room: %w", err)
	}
	sender := ctx.Sender.String()
	ok, err := c.isAccredited(ctx, room.PlatformID, sender)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotAccredited, sender[:8], room.PlatformID)
	}
	key := "article/" + in.ID
	if exists, err := ctx.Has(key); err != nil {
		return nil, err
	} else if exists {
		return nil, fmt.Errorf("%w: article %s", ErrExists, in.ID)
	}
	a := Article{
		ID: in.ID, RoomID: in.RoomID, Author: sender,
		Title: in.Title, Text: in.Text, Notes: in.Notes,
		Status: StatusDraft, Height: ctx.Height, Sources: in.Sources,
	}
	raw, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("newsroom: marshal: %w", err)
	}
	if err := ctx.Put(key, raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// transition moves an article along the workflow. Submit is author-only;
// approve/reject require the platform owner (ownerGate).
func (c Contract) transition(ctx *contract.Context, args []byte, from, to ArticleStatus, ownerGate bool) ([]byte, error) {
	var in articleActArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	raw, err := ctx.Get("article/" + in.ID)
	if err != nil {
		return nil, fmt.Errorf("%w: article %s", ErrNotFound, in.ID)
	}
	var a Article
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("newsroom: decode article: %w", err)
	}
	if a.Status != from {
		return nil, fmt.Errorf("%w: %s is %s, want %s", ErrBadState, in.ID, a.Status, from)
	}
	sender := ctx.Sender.String()
	if ownerGate {
		roomRaw, err := ctx.Get("room/" + a.RoomID)
		if err != nil {
			return nil, fmt.Errorf("%w: room %s", ErrNotFound, a.RoomID)
		}
		var room Room
		if err := json.Unmarshal(roomRaw, &room); err != nil {
			return nil, fmt.Errorf("newsroom: decode room: %w", err)
		}
		p, err := c.loadPlatform(ctx, room.PlatformID)
		if err != nil {
			return nil, err
		}
		if p.Owner != sender {
			return nil, fmt.Errorf("%w: review requires platform owner", ErrNotOwner)
		}
		a.Reviewer = sender
	} else if a.Author != sender {
		return nil, fmt.Errorf("%w: article %s", ErrNotAuthor, in.ID)
	}
	a.Status = to
	out, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("newsroom: marshal: %w", err)
	}
	if err := ctx.Put("article/"+in.ID, out); err != nil {
		return nil, err
	}
	if err := ctx.Emit("article_"+string(to), map[string]string{"id": a.ID, "room": a.RoomID, "author": a.Author}); err != nil {
		return nil, err
	}
	return out, nil
}

func (c Contract) comment(ctx *contract.Context, args []byte) ([]byte, error) {
	var in commentArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, fmt.Errorf("newsroom: args: %w", err)
	}
	sender := ctx.Sender.String()
	// Any verified identity may comment (§V: "identification verified
	// persons can also create contents and make comments").
	rec, err := identityRecord(ctx, sender)
	if err != nil || rec.Status != identity.StatusVerified {
		return nil, fmt.Errorf("newsroom: commenting requires a verified identity")
	}
	if ok, err := ctx.Has("article/" + in.ArticleID); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: article %s", ErrNotFound, in.ArticleID)
	}
	seqRaw, _ := ctx.Get("commentseq/" + in.ArticleID)
	seq := 0
	if len(seqRaw) > 0 {
		fmt.Sscanf(string(seqRaw), "%d", &seq)
	}
	cm := Comment{ArticleID: in.ArticleID, Author: sender, Text: in.Text, Seq: seq, Height: ctx.Height}
	raw, err := json.Marshal(cm)
	if err != nil {
		return nil, fmt.Errorf("newsroom: marshal: %w", err)
	}
	if err := ctx.Put(fmt.Sprintf("comment/%s/%06d", in.ArticleID, seq), raw); err != nil {
		return nil, err
	}
	if err := ctx.Put("commentseq/"+in.ArticleID, []byte(fmt.Sprintf("%d", seq+1))); err != nil {
		return nil, err
	}
	return raw, nil
}

func (c Contract) comments(ctx *contract.Context, args []byte) ([]byte, error) {
	ks, err := ctx.Keys("comment/" + string(args) + "/")
	if err != nil {
		return nil, err
	}
	out := make([]Comment, 0, len(ks))
	for _, k := range ks {
		raw, err := ctx.Get(k)
		if err != nil {
			return nil, err
		}
		var cm Comment
		if err := json.Unmarshal(raw, &cm); err != nil {
			return nil, fmt.Errorf("newsroom: decode comment: %w", err)
		}
		out = append(out, cm)
	}
	return json.Marshal(out)
}

func (c Contract) getJSON(ctx *contract.Context, key string) ([]byte, error) {
	raw, err := ctx.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return raw, nil
}

// ---------------------------------------------------------------------------
// Client helpers.
// ---------------------------------------------------------------------------

// CreatePlatformPayload builds newsroom.createPlatform.
func CreatePlatformPayload(id, name string) ([]byte, error) {
	return json.Marshal(createPlatformArgs{ID: id, Name: name})
}

// CreateRoomPayload builds newsroom.createRoom.
func CreateRoomPayload(id, platformID string, topic corpus.Topic) ([]byte, error) {
	return json.Marshal(createRoomArgs{ID: id, PlatformID: platformID, Topic: topic})
}

// AccreditPayload builds newsroom.accredit.
func AccreditPayload(platformID string, journalist keys.Address) ([]byte, error) {
	return json.Marshal(accreditArgs{PlatformID: platformID, Journalist: journalist.String()})
}

// DraftPayload builds newsroom.draft.
func DraftPayload(id, roomID, title, text, notes string, sources []string) ([]byte, error) {
	return json.Marshal(draftArgs{ID: id, RoomID: roomID, Title: title, Text: text, Notes: notes, Sources: sources})
}

// ArticleActPayload builds submit/approve/reject payloads.
func ArticleActPayload(id string) ([]byte, error) {
	return json.Marshal(articleActArgs{ID: id})
}

// CommentPayload builds newsroom.comment.
func CommentPayload(articleID, text string) ([]byte, error) {
	return json.Marshal(commentArgs{ArticleID: articleID, Text: text})
}

// GetArticle queries one article.
func GetArticle(e *contract.Engine, asker keys.Address, id string) (Article, error) {
	raw, err := e.Query(asker, ContractName+".getArticle", []byte(id))
	if err != nil {
		return Article{}, err
	}
	var a Article
	if err := json.Unmarshal(raw, &a); err != nil {
		return Article{}, fmt.Errorf("newsroom: decode article: %w", err)
	}
	return a, nil
}

// Comments queries an article's comments.
func Comments(e *contract.Engine, asker keys.Address, articleID string) ([]Comment, error) {
	raw, err := e.Query(asker, ContractName+".comments", []byte(articleID))
	if err != nil {
		return nil, err
	}
	var out []Comment
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("newsroom: decode comments: %w", err)
	}
	return out, nil
}
