package consensus

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
)

func submitTxs(t testing.TB, c *Cluster, count int) {
	t.Helper()
	sender := keys.FromSeed([]byte("client"))
	for i := 0; i < count; i++ {
		tx, err := ledger.NewTx(sender, uint64(i), "news.publish", []byte("item-"+strconv.Itoa(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitAll(tx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidatorSetBasics(t *testing.T) {
	if _, err := NewValidatorSet(nil); err != ErrEmptyValidatorSet {
		t.Fatalf("want ErrEmptyValidatorSet, got %v", err)
	}
	kp := keys.FromSeed([]byte("v"))
	set, err := NewValidatorSet([]Validator{{ID: "a", Addr: kp.Address(), Pub: kp.Public(), Power: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if set.TotalPower() != 3 || set.QuorumPower() != 3 {
		t.Fatalf("power=%d quorum=%d", set.TotalPower(), set.QuorumPower())
	}
}

func TestValidatorSetRejectsZeroPower(t *testing.T) {
	kp := keys.FromSeed([]byte("v"))
	if _, err := NewValidatorSet([]Validator{{ID: "a", Addr: kp.Address(), Pub: kp.Public(), Power: 0}}); err == nil {
		t.Fatal("want error for zero power")
	}
}

func TestQuorumPowerIsStrictTwoThirds(t *testing.T) {
	mk := func(n int) *ValidatorSet {
		vals := make([]Validator, n)
		for i := range vals {
			kp := keys.FromSeed([]byte("q" + strconv.Itoa(i)))
			vals[i] = Validator{ID: simnet.NodeID("n" + strconv.Itoa(i)), Addr: kp.Address(), Pub: kp.Public(), Power: 1}
		}
		s, err := NewValidatorSet(vals)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[int]int64{3: 3, 4: 3, 7: 5, 10: 7}
	for n, want := range cases {
		if got := mk(n).QuorumPower(); got != want {
			t.Errorf("n=%d quorum=%d want %d", n, got, want)
		}
	}
}

func TestProposerRotationDeterministicAndCovering(t *testing.T) {
	c, err := NewCluster(4, 1, DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[keys.Address]bool)
	for h := uint64(0); h < 40; h++ {
		p1 := c.Set.Proposer(h, 0)
		p2 := c.Set.Proposer(h, 0)
		if p1.Addr != p2.Addr {
			t.Fatal("proposer not deterministic")
		}
		seen[p1.Addr] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d of 4 validators", len(seen))
	}
}

func TestVoteSignVerify(t *testing.T) {
	c, _ := NewCluster(4, 1, DefaultTimeouts())
	v := Vote{Type: VotePrevote, Height: 1, Round: 0, Voter: c.Keys[0].Address()}
	SignVote(&v, c.Keys[0])
	if err := VerifyVote(&v, c.Set); err != nil {
		t.Fatal(err)
	}
	v.Round = 1 // tamper
	if err := VerifyVote(&v, c.Set); err == nil {
		t.Fatal("want verification failure after tamper")
	}
	outsider := keys.FromSeed([]byte("outsider"))
	v2 := Vote{Type: VotePrevote, Height: 1, Voter: outsider.Address()}
	SignVote(&v2, outsider)
	if err := VerifyVote(&v2, c.Set); err == nil {
		t.Fatal("want rejection of non-validator vote")
	}
}

func TestVoteSetEquivocationDetected(t *testing.T) {
	vs := newVoteSet()
	voter := keys.FromSeed([]byte("x")).Address()
	v1 := Vote{Type: VotePrevote, Height: 1, BlockID: ledger.BlockID{1}, Voter: voter}
	v2 := Vote{Type: VotePrevote, Height: 1, BlockID: ledger.BlockID{2}, Voter: voter}
	if err := vs.add(v1, 1); err != nil {
		t.Fatal(err)
	}
	if err := vs.add(v1, 1); !errors.Is(err, ErrDuplicateVote) {
		t.Fatalf("duplicate identical vote must surface as ErrDuplicateVote, got %v", err)
	}
	if err := vs.add(v2, 1); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("want equivocation error, got %v", err)
	}
	if vs.totalPower() != 1 {
		t.Fatalf("power=%d; duplicates must not double-count", vs.totalPower())
	}
}

func TestHappyPathCommits(t *testing.T) {
	c, err := NewCluster(4, 7, DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	submitTxs(t, c, 20)
	c.Start()
	c.RunUntilHeight(3, 30*time.Second)
	if got := c.MinHeight(); got < 3 {
		t.Fatalf("min height=%d want >=3", got)
	}
	for h := uint64(0); h < 3; h++ {
		if !c.AgreeAt(h) {
			t.Fatalf("divergence at height %d", h)
		}
	}
}

func TestCommittedBlocksCarryTransactions(t *testing.T) {
	c, _ := NewCluster(4, 3, DefaultTimeouts())
	submitTxs(t, c, 5)
	c.Start()
	c.RunUntilHeight(1, 30*time.Second)
	b, err := c.Apps[0].Chain.BlockAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Txs) != 5 {
		t.Fatalf("block carried %d txs, want 5", len(b.Txs))
	}
	// All mempools drained on every node that committed.
	for i, app := range c.Apps {
		if app.Chain.Height() >= 1 && app.Pool.Size() != 0 {
			t.Fatalf("node %d mempool size %d after commit", i, app.Pool.Size())
		}
	}
}

func TestProgressWithOneCrashedValidator(t *testing.T) {
	c, _ := NewCluster(4, 11, DefaultTimeouts())
	submitTxs(t, c, 10)
	c.Nodes[3].Stop() // f=1 of n=4
	c.Start()
	c.RunUntilHeight(2, 60*time.Second)
	if got := c.MinHeight(); got < 2 {
		t.Fatalf("min live height=%d want >=2 with one crash", got)
	}
}

func TestNoProgressWithTwoCrashedOfFour(t *testing.T) {
	c, _ := NewCluster(4, 13, DefaultTimeouts())
	submitTxs(t, c, 10)
	c.Nodes[2].Stop()
	c.Nodes[3].Stop() // 2 > f: quorum unreachable
	c.Start()
	c.RunUntilHeight(1, 5*time.Second)
	if got := c.MinHeight(); got != 0 {
		t.Fatalf("height=%d; must not commit without quorum", got)
	}
}

func TestSafetyUnderPartition(t *testing.T) {
	c, _ := NewCluster(4, 17, DefaultTimeouts())
	submitTxs(t, c, 10)
	// Split 2-2: neither side has quorum, so no commits may happen.
	c.Net.Partition([]simnet.NodeID{"v0", "v1"}, []simnet.NodeID{"v2", "v3"})
	c.Start()
	c.RunUntilHeight(1, 3*time.Second)
	if got := c.MinHeight(); got != 0 {
		t.Fatalf("committed during 2-2 partition: height=%d", got)
	}
	// Heal: progress resumes and everyone agrees.
	c.Net.Heal()
	c.RunUntilHeight(1, 120*time.Second)
	if got := c.MinHeight(); got < 1 {
		t.Fatalf("no progress after heal: height=%d", got)
	}
	if !c.AgreeAt(0) {
		t.Fatal("divergence after partition heal")
	}
}

func TestSafetyWithEquivocator(t *testing.T) {
	// 4 validators, one replaced by an equivocator: honest nodes must
	// still agree on every committed height.
	net := simnet.New(23)
	kps := make([]*keys.KeyPair, 4)
	vals := make([]Validator, 4)
	for i := range kps {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = Validator{ID: simnet.NodeID("v" + strconv.Itoa(i)), Addr: kps[i].Address(), Pub: kps[i].Public(), Power: 1}
	}
	set, err := NewValidatorSet(vals)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var apps []*ChainApp
	for i := 0; i < 3; i++ {
		app := &ChainApp{Chain: ledger.NewMemChain(), Proposer: kps[i].Address()}
		app.Pool = ledger.NewMempool(app.Chain, 0)
		n := NewNode(vals[i].ID, kps[i], set, net, app, DefaultTimeouts())
		if err := n.Bind(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		apps = append(apps, app)
	}
	eq := NewEquivocator(vals[3].ID, kps[3], set, net)
	if err := eq.Bind(); err != nil {
		t.Fatal(err)
	}
	client := keys.FromSeed([]byte("client"))
	for i := 0; i < 6; i++ {
		tx, _ := ledger.NewTx(client, uint64(i), "k", []byte{byte(i)})
		for _, app := range apps {
			app.Pool.Add(tx)
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	net.RunWhile(func() bool {
		for _, app := range apps {
			if app.Chain.Height() < 1 {
				return net.Now() < 120*time.Second
			}
		}
		return false
	})
	// Honest quorum is 3 of 4; equivocator can delay but not block or split.
	var ref ledger.BlockID
	committed := 0
	for _, app := range apps {
		if app.Chain.Height() >= 1 {
			b, _ := app.Chain.BlockAt(0)
			if committed == 0 {
				ref = b.ID()
			} else if b.ID() != ref {
				t.Fatal("SAFETY VIOLATION: honest nodes committed different blocks")
			}
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no honest node committed despite honest quorum")
	}
	// Equivocation must be observed by at least one honest node.
	evidence := 0
	for _, n := range nodes {
		evidence += n.Metrics().Equivocations
	}
	if evidence == 0 {
		t.Fatal("equivocation went undetected")
	}
}

func TestLaggardCatchesUpViaCommitCert(t *testing.T) {
	c, _ := NewCluster(4, 29, DefaultTimeouts())
	submitTxs(t, c, 30)
	// v3 is on a slow, lossy link.
	for _, other := range []simnet.NodeID{"v0", "v1", "v2"} {
		c.Net.SetLink(other, "v3", simnet.LinkConfig{BaseLatency: 60 * time.Millisecond, Jitter: 40 * time.Millisecond, LossRate: 0.3})
		c.Net.SetLink("v3", other, simnet.LinkConfig{BaseLatency: 60 * time.Millisecond, Jitter: 40 * time.Millisecond, LossRate: 0.3})
	}
	c.Start()
	c.RunUntilHeight(3, 240*time.Second)
	if got := c.Apps[3].Chain.Height(); got < 1 {
		t.Fatalf("laggard height=%d; commit certs should let it catch up", got)
	}
	for h := uint64(0); h < c.Apps[3].Chain.Height(); h++ {
		if !c.AgreeAt(h) {
			t.Fatalf("laggard diverged at height %d", h)
		}
	}
}

func TestCommitCertVerification(t *testing.T) {
	c, _ := NewCluster(4, 31, DefaultTimeouts())
	blk := ledger.NewBlock(0, ledger.BlockID{}, [32]byte{}, time.Unix(0, 0).UTC(), c.Keys[0].Address(), nil)
	id := blk.ID()
	mkVote := func(i int) Vote {
		v := Vote{Type: VotePrecommit, Height: 0, Round: 0, BlockID: id, Voter: c.Keys[i].Address()}
		SignVote(&v, c.Keys[i])
		return v
	}
	good := &Commit{Height: 0, Block: blk, Quorum: []Vote{mkVote(0), mkVote(1), mkVote(2)}}
	if err := VerifyCommit(good, c.Set); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	short := &Commit{Height: 0, Block: blk, Quorum: []Vote{mkVote(0), mkVote(1)}}
	if err := VerifyCommit(short, c.Set); err == nil {
		t.Fatal("2-of-4 cert must fail")
	}
	dup := &Commit{Height: 0, Block: blk, Quorum: []Vote{mkVote(0), mkVote(0), mkVote(1)}}
	if err := VerifyCommit(dup, c.Set); err == nil {
		t.Fatal("duplicate-voter cert must fail")
	}
	wrong := &Commit{Height: 1, Block: blk, Quorum: []Vote{mkVote(0), mkVote(1), mkVote(2)}}
	if err := VerifyCommit(wrong, c.Set); err == nil {
		t.Fatal("height-mismatch cert must fail")
	}
}

func TestPoACommitsFast(t *testing.T) {
	net := simnet.New(41)
	kps := make([]*keys.KeyPair, 4)
	vals := make([]Validator, 4)
	for i := range kps {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = Validator{ID: simnet.NodeID("v" + strconv.Itoa(i)), Addr: kps[i].Address(), Pub: kps[i].Public(), Power: 1}
	}
	set, _ := NewValidatorSet(vals)
	var nodes []*PoANode
	var apps []*ChainApp
	for i := 0; i < 4; i++ {
		app := &ChainApp{Chain: ledger.NewMemChain(), Proposer: kps[i].Address(), AllowEmpty: true}
		app.Pool = ledger.NewMempool(app.Chain, 0)
		n := NewPoANode(vals[i].ID, kps[i], set, net, app, 50*time.Millisecond)
		if err := n.Bind(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		apps = append(apps, app)
	}
	for _, n := range nodes {
		n.Start()
	}
	net.RunWhile(func() bool {
		done := true
		for _, app := range apps {
			if app.Chain.Height() < 5 {
				done = false
			}
		}
		return !done && net.Now() < 60*time.Second
	})
	for i, app := range apps {
		if app.Chain.Height() < 5 {
			t.Fatalf("poa node %d height=%d", i, app.Chain.Height())
		}
	}
	// All agree.
	ref, _ := apps[0].Chain.BlockAt(4)
	for _, app := range apps[1:] {
		b, _ := app.Chain.BlockAt(4)
		if b.ID() != ref.ID() {
			t.Fatal("poa divergence")
		}
	}
}

func TestBFTScalesAcrossValidatorCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size consensus run")
	}
	for _, n := range []int{4, 7, 10} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c, err := NewCluster(n, int64(n), DefaultTimeouts())
			if err != nil {
				t.Fatal(err)
			}
			submitTxs(t, c, 10)
			c.Start()
			c.RunUntilHeight(2, 120*time.Second)
			if got := c.MinHeight(); got < 2 {
				t.Fatalf("n=%d min height=%d", n, got)
			}
			for h := uint64(0); h < 2; h++ {
				if !c.AgreeAt(h) {
					t.Fatalf("divergence at h=%d", h)
				}
			}
		})
	}
}

func BenchmarkBFTCommit(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("validators=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := NewCluster(n, int64(i), DefaultTimeouts())
				if err != nil {
					b.Fatal(err)
				}
				sender := keys.FromSeed([]byte("client"))
				for j := 0; j < 10; j++ {
					tx, _ := ledger.NewTx(sender, uint64(j), "k", []byte{byte(j)})
					c.SubmitAll(tx)
				}
				c.Start()
				b.StartTimer()
				c.RunUntilHeight(1, 60*time.Second)
				if c.MinHeight() < 1 {
					b.Fatal("no commit")
				}
			}
		})
	}
}

func TestProgressWithDelayedValidator(t *testing.T) {
	// One honest-but-slow validator (wrapped in DelayedNode) must not
	// prevent the cluster from committing, and must still converge.
	net := simnet.New(51)
	kps := make([]*keys.KeyPair, 4)
	vals := make([]Validator, 4)
	for i := range kps {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = Validator{ID: simnet.NodeID("v" + strconv.Itoa(i)), Addr: kps[i].Address(), Pub: kps[i].Public(), Power: 1}
	}
	set, err := NewValidatorSet(vals)
	if err != nil {
		t.Fatal(err)
	}
	var apps []*ChainApp
	var nodes []*Node
	for i := 0; i < 4; i++ {
		app := &ChainApp{Chain: ledger.NewMemChain(), Proposer: kps[i].Address(), AllowEmpty: true}
		app.Pool = ledger.NewMempool(app.Chain, 0)
		node := NewNode(vals[i].ID, kps[i], set, net, app, DefaultTimeouts())
		if i == 3 {
			d := NewDelayedNode(node, net, vals[i].ID, 150*time.Millisecond)
			if err := d.Bind(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := node.Bind(); err != nil {
				t.Fatal(err)
			}
		}
		apps = append(apps, app)
		nodes = append(nodes, node)
	}
	for _, n := range nodes {
		n.Start()
	}
	net.RunWhile(func() bool {
		fast := 0
		for i := 0; i < 3; i++ {
			if apps[i].Chain.Height() >= 2 {
				fast++
			}
		}
		return fast < 3 && net.Now() < 5*time.Minute
	})
	for i := 0; i < 3; i++ {
		if apps[i].Chain.Height() < 2 {
			t.Fatalf("fast node %d stalled at %d", i, apps[i].Chain.Height())
		}
	}
	// No divergence between any nodes that share a height.
	for h := uint64(0); h < 2; h++ {
		var ref ledger.BlockID
		seen := false
		for _, app := range apps {
			b, err := app.Chain.BlockAt(h)
			if err != nil {
				continue
			}
			if !seen {
				ref, seen = b.ID(), true
				continue
			}
			if b.ID() != ref {
				t.Fatalf("divergence at height %d with delayed node", h)
			}
		}
	}
}

func TestLateJoinerSyncsViaBlockSync(t *testing.T) {
	// Validator v3 is in the set but offline (no-op handler) while the
	// others commit several heights; when it comes online it must backfill
	// every missed block through sync requests and converge.
	net := simnet.New(61)
	kps := make([]*keys.KeyPair, 4)
	vals := make([]Validator, 4)
	for i := range kps {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = Validator{ID: simnet.NodeID("v" + strconv.Itoa(i)), Addr: kps[i].Address(), Pub: kps[i].Public(), Power: 1}
	}
	set, err := NewValidatorSet(vals)
	if err != nil {
		t.Fatal(err)
	}
	apps := make([]*ChainApp, 4)
	nodes := make([]*Node, 4)
	for i := 0; i < 4; i++ {
		apps[i] = &ChainApp{Chain: ledger.NewMemChain(), Proposer: kps[i].Address(), AllowEmpty: true}
		apps[i].Pool = ledger.NewMempool(apps[i].Chain, 0)
		nodes[i] = NewNode(vals[i].ID, kps[i], set, net, apps[i], DefaultTimeouts())
	}
	for i := 0; i < 3; i++ {
		if err := nodes[i].Bind(); err != nil {
			t.Fatal(err)
		}
	}
	// v3 offline: swallow everything.
	if err := net.AddNode("v3", func(simnet.Message) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nodes[i].Start()
	}
	const missed = 4
	net.RunWhile(func() bool {
		for i := 0; i < 3; i++ {
			if apps[i].Chain.Height() < missed {
				return net.Now() < 2*time.Minute
			}
		}
		return false
	})
	if apps[0].Chain.Height() < missed {
		t.Fatalf("live nodes stalled at %d", apps[0].Chain.Height())
	}

	// v3 comes online at height 0.
	if err := net.SetHandler("v3", nodes[3].Handle); err != nil {
		t.Fatal(err)
	}
	nodes[3].Start()
	target := apps[0].Chain.Height()
	net.RunWhile(func() bool {
		return apps[3].Chain.Height() < target && net.Now() < 6*time.Minute
	})
	if apps[3].Chain.Height() < target {
		t.Fatalf("late joiner stuck at %d, want %d", apps[3].Chain.Height(), target)
	}
	// Same blocks everywhere.
	for h := uint64(0); h < target; h++ {
		ref, err := apps[0].Chain.BlockAt(h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := apps[3].Chain.BlockAt(h)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != ref.ID() {
			t.Fatalf("late joiner diverged at height %d", h)
		}
	}
}
