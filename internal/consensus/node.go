package consensus

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// App is the application driven by consensus: it builds blocks to propose,
// validates proposed blocks, and applies committed blocks. The blockchain
// node (internal/platform) implements it over a mempool and chain.
type App interface {
	// ProposeBlock assembles the block to propose at the given height.
	ProposeBlock(height uint64) (*ledger.Block, error)
	// ValidateBlock checks a proposed block against application rules.
	ValidateBlock(b *ledger.Block) error
	// CommitBlock applies a decided block. It must not fail for a block
	// that passed ValidateBlock against the same state.
	CommitBlock(b *ledger.Block) error
}

// Timeouts configures the per-step timeouts. Each escalating round adds
// Delta to the base timeout, per the Tendermint algorithm.
type Timeouts struct {
	Propose   time.Duration
	Prevote   time.Duration
	Precommit time.Duration
	Delta     time.Duration
	// Commit is an optional pause between committing a height and entering
	// the next one (Tendermint's timeout_commit). Real deployments set it
	// to pace block production so a crashed peer rejoins within the
	// certificate sync window instead of facing a chain that raced ahead
	// at network speed. Zero — the default and every virtual-time test —
	// starts the next height immediately.
	Commit time.Duration
}

// DefaultTimeouts suits the default simnet LAN profile.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		Propose:   80 * time.Millisecond,
		Prevote:   60 * time.Millisecond,
		Precommit: 60 * time.Millisecond,
		Delta:     40 * time.Millisecond,
	}
}

// Metrics aggregates per-node consensus counters.
type Metrics struct {
	Committed     uint64
	Rounds        int
	Equivocations int
	// SendErrors counts outbound messages the transport refused locally
	// (unknown peer, full queue, closed transport). Losses in flight are
	// not observable and surface as timeouts instead.
	SendErrors    uint64
	CommitLatency time.Duration // cumulative height start -> commit
	lastHeightAt  time.Duration
}

// Node is one BFT consensus participant. Construct with NewNode, register
// its network handler with Bind, then Start it. All methods run on the
// simnet event loop (single-threaded), so no internal locking is needed.
type Node struct {
	id  transport.NodeID
	kp  *keys.KeyPair
	set *ValidatorSet
	net transport.Network
	app App
	tmo Timeouts

	height uint64
	round  int
	step   Step

	locked      *ledger.Block
	lockedRound int
	valid       *ledger.Block
	validRound  int

	proposals map[uint64]map[int]*Proposal // height -> round -> proposal
	prevotes  map[uint64]map[int]*voteSet
	precommit map[uint64]map[int]*voteSet
	blocks    map[ledger.BlockID]*ledger.Block

	// future buffers messages for heights we have not reached yet; they
	// are replayed after each height advance. Without this, a node that
	// commits late would drop the next height's proposal forever.
	future []transport.Message

	// certs retains the commit certificates this node produced or
	// received, keyed by height, so it can serve block sync to validators
	// that join (or recover) late. Retention is bounded to a sliding
	// window of certWindow heights; older heights are served from the
	// chain app (see serveChainSync), so memory stays O(window) no matter
	// how long the node runs.
	certs map[uint64]*Commit
	// certFloor is the lowest height that may still hold a certificate.
	certFloor uint64
	// certWindow bounds len(certs); zero means DefaultCertWindow.
	certWindow int
	// syncRequested tracks the last height we asked a peer to backfill,
	// to avoid flooding duplicate requests.
	syncRequested uint64

	metrics Metrics
	stopped bool
	// paused is set while the node rests between committing a height and
	// entering the next one (Timeouts.Commit); cleared by startRound.
	paused bool

	tm consensusMetrics
	// roundStartAt is the virtual time the current round began; valid
	// once roundStarted is set. It feeds the round-duration histogram.
	roundStartAt time.Duration
	roundStarted bool
}

// consensusMetrics holds the node's cached instrument handles (nil until
// Instrument; every method is nil-safe). A cluster shares one registry,
// so the series aggregate across validators.
type consensusMetrics struct {
	rounds        *telemetry.Counter
	commits       *telemetry.Counter
	votePrevote   *telemetry.Counter
	votePrecommit *telemetry.Counter
	propRejected  *telemetry.CounterVec
	voteRejected  *telemetry.CounterVec
	msgRejected   *telemetry.CounterVec
	equivocations *telemetry.Counter
	roundSec      *telemetry.Histogram
	heightSec     *telemetry.Histogram
	// sends/sendErrors are the shared trustnews_transport_* series: the
	// consensus layer is the counting point for message submission, the
	// TCP writer adds async socket failures to the same error counter.
	sends      *telemetry.Counter
	sendErrors *telemetry.Counter
}

// Instrument registers the node's consensus metrics on reg (nil
// disables). Durations are measured in simnet virtual time.
func (n *Node) Instrument(reg *telemetry.Registry) {
	votes := reg.CounterVec("trustnews_consensus_votes_total", "Valid votes counted, by type.", "type")
	n.tm = consensusMetrics{
		rounds:        reg.Counter("trustnews_consensus_rounds_total", "Consensus rounds entered across validators."),
		commits:       reg.Counter("trustnews_consensus_commits_total", "Blocks committed across validators."),
		votePrevote:   votes.With("prevote"),
		votePrecommit: votes.With("precommit"),
		propRejected:  reg.CounterVec("trustnews_consensus_proposals_rejected_total", "Proposals dropped before acceptance, by reason.", "reason"),
		voteRejected:  reg.CounterVec("trustnews_consensus_votes_rejected_total", "Votes dropped before counting, by reason.", "reason"),
		msgRejected:   reg.CounterVec("trustnews_consensus_messages_rejected_total", "Messages dropped as malformed or unverifiable, by reason.", "reason"),
		equivocations: reg.Counter("trustnews_consensus_equivocations_total", "Conflicting votes detected from one validator."),
		roundSec:      reg.Histogram("trustnews_consensus_round_seconds", "Virtual-time duration of each consensus round.", nil),
		heightSec:     reg.Histogram("trustnews_consensus_height_seconds", "Virtual time from height start to commit.", nil),
	}
	tm := transport.NewMetrics(reg)
	n.tm.sends = tm.Sends
	n.tm.sendErrors = tm.SendErrors
}

// KindSyncRequest asks a peer for the commit certificate of one height.
const KindSyncRequest = "consensus.syncreq"

// KindSyncBlocks carries a chain-backed backfill: a run of committed
// blocks below the responder's certificate window, authenticated by the
// oldest retained certificate at the top of the run.
const KindSyncBlocks = "consensus.syncblocks"

// SyncRequest is the payload of KindSyncRequest.
type SyncRequest struct {
	Height uint64
}

// SyncResponse is the payload of KindSyncBlocks. Blocks covers heights
// [From, Cert.Height); Cert certifies the block that extends the run.
// The receiver verifies the certificate and the hash linkage of the run
// up to the certified block before applying anything, so the whole suffix
// is as trustworthy as the certificate itself.
type SyncResponse struct {
	From   uint64
	Blocks []*ledger.Block
	Cert   *Commit
}

// maxFutureBuffer bounds the future-message queue per node.
const maxFutureBuffer = 1 << 14

// DefaultCertWindow is the number of recent heights whose commit
// certificates a node keeps in memory for block sync.
const DefaultCertWindow = 128

// maxSyncBatch bounds the blocks served in one chain-backed sync
// response.
const maxSyncBatch = 512

// BlockFetcher is the optional App extension that lets a node serve block
// sync for heights older than its in-memory certificate window. ChainApp
// implements it over its chain.
type BlockFetcher interface {
	BlockAt(height uint64) (*ledger.Block, error)
}

// NewNode creates a consensus node for the validator identified by kp.
func NewNode(id transport.NodeID, kp *keys.KeyPair, set *ValidatorSet, net transport.Network, app App, tmo Timeouts) *Node {
	return &Node{
		id:          id,
		kp:          kp,
		set:         set,
		net:         net,
		app:         app,
		tmo:         tmo,
		lockedRound: -1,
		validRound:  -1,
		proposals:   make(map[uint64]map[int]*Proposal),
		prevotes:    make(map[uint64]map[int]*voteSet),
		precommit:   make(map[uint64]map[int]*voteSet),
		blocks:      make(map[ledger.BlockID]*ledger.Block),
		certs:       make(map[uint64]*Commit),
	}
}

// Bind registers the node's message handler on the network.
func (n *Node) Bind() error {
	return n.net.AddNode(n.id, n.Handle)
}

// Metrics returns a copy of the node's counters.
func (n *Node) Metrics() Metrics { return n.metrics }

// Height returns the next height to be decided.
func (n *Node) Height() uint64 { return n.height }

// Stop makes the node ignore all further events (simulates a crash).
func (n *Node) Stop() { n.stopped = true }

// Stopped reports whether the node has stopped (crashed via Stop, or
// halted itself after an application-level commit failure).
func (n *Node) Stopped() bool { return n.stopped }

// SetCertWindow bounds the in-memory commit-certificate retention to the
// given number of recent heights (0 restores DefaultCertWindow). Call
// before Start.
func (n *Node) SetCertWindow(w int) { n.certWindow = w }

// CertCount returns the number of commit certificates held in memory.
func (n *Node) CertCount() int { return len(n.certs) }

// Start enters the first height/round.
func (n *Node) Start() {
	n.metrics.lastHeightAt = n.net.Now()
	n.startRound(0)
}

// StartAt enters consensus at the given height — the restart path for a
// node whose chain was recovered from its checkpoint and WAL. Heights
// below the start are assumed committed by the application; peers backfill
// anything decided while the node was down through the sync protocol.
func (n *Node) StartAt(height uint64) {
	n.height = height
	n.certFloor = height
	n.metrics.lastHeightAt = n.net.Now()
	n.startRound(0)
}

func (n *Node) startRound(round int) {
	n.paused = false
	now := n.net.Now()
	if n.roundStarted {
		n.tm.roundSec.Observe((now - n.roundStartAt).Seconds())
	}
	n.roundStartAt = now
	n.roundStarted = true
	n.tm.rounds.Inc()
	n.round = round
	n.step = StepPropose
	n.metrics.Rounds++
	proposer := n.set.Proposer(n.height, round)
	if proposer.Addr == n.kp.Address() {
		block := n.valid
		pol := n.validRound
		if block == nil {
			b, err := n.app.ProposeBlock(n.height)
			if err != nil || b == nil {
				// Nothing to propose: let the round time out so liveness
				// is preserved by round escalation.
				n.scheduleProposeTimeout(round)
				return
			}
			block = b
			pol = -1
		}
		p := &Proposal{Height: n.height, Round: round, POLRound: pol, Block: block, Proposer: n.kp.Address()}
		if pol >= 0 {
			// Attach the proof-of-lock prevotes so receivers that missed
			// them can verify the POL from the proposal alone.
			p.POLVotes = n.prevoteSet(n.height, pol).votesFor(block.ID())
		}
		SignProposal(p, n.kp)
		n.broadcast(KindProposal, p)
		n.onProposal(p) // deliver to self
		return
	}
	n.scheduleProposeTimeout(round)
	// Messages for this round may already have arrived while we were in a
	// previous round; act on them now.
	n.recheckQuorums()
}

func (n *Node) scheduleProposeTimeout(round int) {
	h := n.height
	n.net.After(n.id, n.tmo.Propose+time.Duration(round)*n.tmo.Delta, func() {
		if n.stopped || n.height != h || n.round != round || n.step != StepPropose {
			return
		}
		n.signVote(VotePrevote, ledger.BlockID{}) // prevote nil
		n.step = StepPrevote
		n.schedulePrevoteTimeout(round)
	})
}

func (n *Node) schedulePrevoteTimeout(round int) {
	h := n.height
	n.net.After(n.id, n.tmo.Prevote+time.Duration(round)*n.tmo.Delta, func() {
		if n.stopped || n.height != h || n.round != round || n.step != StepPrevote {
			return
		}
		n.signVote(VotePrecommit, ledger.BlockID{})
		n.step = StepPrecommit
		n.schedulePrecommitTimeout(round)
	})
}

func (n *Node) schedulePrecommitTimeout(round int) {
	h := n.height
	n.net.After(n.id, n.tmo.Precommit+time.Duration(round)*n.tmo.Delta, func() {
		if n.stopped || n.height != h || n.round != round {
			return
		}
		n.startRound(round + 1)
	})
}

// send routes one outbound message through the transport, surfacing local
// failures (unknown peer, backpressure, closed transport) in the node
// metrics and the trustnews_transport_* series instead of discarding them.
// In-flight losses still surface as timeouts, as on any real network.
func (n *Node) send(to transport.NodeID, kind string, payload any) {
	n.tm.sends.Inc()
	if err := n.net.Send(n.id, to, kind, payload); err != nil {
		n.metrics.SendErrors++
		n.tm.sendErrors.Inc()
	}
}

func (n *Node) broadcast(kind string, payload any) {
	for _, v := range n.set.Members() {
		if v.ID == n.id {
			continue
		}
		n.send(v.ID, kind, payload)
	}
}

func (n *Node) signVote(t VoteType, id ledger.BlockID) {
	v := Vote{Type: t, Height: n.height, Round: n.round, BlockID: id, Voter: n.kp.Address()}
	SignVote(&v, n.kp)
	n.broadcast(KindVote, v)
	n.onVote(v) // count own vote
}

// messageHeight extracts the consensus height of a message, or false for
// non-consensus (or corrupted) payloads.
func messageHeight(m transport.Message) (uint64, bool) {
	switch p := m.Payload.(type) {
	case *Proposal:
		if p == nil {
			return 0, false
		}
		return p.Height, true
	case Vote:
		return p.Height, true
	case *Commit:
		if p == nil {
			return 0, false
		}
		return p.Height, true
	default:
		return 0, false
	}
}

// Handle processes an incoming network message. Corrupted, duplicated and
// replayed traffic must never crash the node or double-count votes: every
// malformed or unverifiable message is dropped and accounted for in the
// rejection counters.
func (n *Node) Handle(m transport.Message) {
	if n.stopped {
		return
	}
	if h, ok := messageHeight(m); ok && h > n.height {
		if len(n.future) < maxFutureBuffer {
			n.future = append(n.future, m)
		}
		// We are behind: ask the sender to backfill our current height.
		// The guard keeps it to one request per height.
		if n.syncRequested <= n.height && m.From != n.id {
			n.syncRequested = n.height + 1
			n.send(m.From, KindSyncRequest, SyncRequest{Height: n.height})
		}
		return
	}
	switch m.Kind {
	case KindSyncRequest:
		req, ok := m.Payload.(SyncRequest)
		if !ok {
			n.tm.msgRejected.With("malformed").Inc()
			return
		}
		if cert := n.certs[req.Height]; cert != nil {
			n.send(m.From, KindCommit, cert)
			return
		}
		n.serveChainSync(m.From, req.Height)
	case KindSyncBlocks:
		resp, ok := m.Payload.(*SyncResponse)
		if !ok {
			n.tm.msgRejected.With("malformed").Inc()
			return
		}
		n.onSyncBlocks(resp)
	case KindProposal:
		p, ok := m.Payload.(*Proposal)
		if !ok || p == nil {
			n.tm.msgRejected.With("malformed").Inc()
			return
		}
		n.onProposal(p)
	case KindVote:
		v, ok := m.Payload.(Vote)
		if !ok {
			n.tm.msgRejected.With("malformed").Inc()
			return
		}
		n.onVote(v)
	case KindCommit:
		c, ok := m.Payload.(*Commit)
		if !ok || c == nil {
			n.tm.msgRejected.With("malformed").Inc()
			return
		}
		n.onCommit(c)
	}
}

// serveChainSync answers a sync request for a height below the in-memory
// certificate window: it streams the committed blocks from the chain app
// up to the oldest retained certificate, which authenticates the run.
func (n *Node) serveChainSync(to transport.NodeID, from uint64) {
	bf, ok := n.app.(BlockFetcher)
	if !ok {
		return
	}
	// The oldest retained certificate caps the run. Scanning from the
	// floor is bounded by the window size.
	certHeight := n.certFloor
	for ; certHeight <= n.height; certHeight++ {
		if n.certs[certHeight] != nil {
			break
		}
	}
	cert := n.certs[certHeight]
	if cert == nil || from >= certHeight || certHeight-from > maxSyncBatch {
		return
	}
	blocks := make([]*ledger.Block, 0, certHeight-from)
	for h := from; h < certHeight; h++ {
		b, err := bf.BlockAt(h)
		if err != nil {
			return
		}
		blocks = append(blocks, b)
	}
	n.send(to, KindSyncBlocks, &SyncResponse{From: from, Blocks: blocks, Cert: cert})
}

// onSyncBlocks applies a chain-backed backfill. Everything is verified
// before the first block is committed: the certificate must carry a valid
// quorum, and the run must hash-link contiguously into the certified
// block. A response that fails any check is dropped (and counted), never
// partially applied.
func (n *Node) onSyncBlocks(resp *SyncResponse) {
	if resp.Cert == nil || resp.Cert.Block == nil {
		n.tm.msgRejected.With("malformed").Inc()
		return
	}
	if resp.From != n.height {
		n.tm.msgRejected.With("stale_sync").Inc()
		return
	}
	if resp.Cert.Height != resp.From+uint64(len(resp.Blocks)) {
		n.tm.msgRejected.With("bad_sync_run").Inc()
		return
	}
	if err := VerifyCommit(resp.Cert, n.set); err != nil {
		n.tm.msgRejected.With("bad_certificate").Inc()
		return
	}
	prev := resp.Cert.Block
	for i := len(resp.Blocks) - 1; i >= 0; i-- {
		b := resp.Blocks[i]
		if b == nil || b.Header.Height != resp.From+uint64(i) || prev.Header.Prev != b.ID() {
			n.tm.msgRejected.With("bad_sync_run").Inc()
			return
		}
		prev = b
	}
	for _, b := range resp.Blocks {
		if err := n.app.CommitBlock(b); err != nil {
			// The run was certified, so a local apply failure means our
			// chain diverged — halt rather than fork.
			n.stopped = true
			return
		}
		n.metrics.Committed++
		n.tm.commits.Inc()
		delete(n.proposals, n.height)
		delete(n.prevotes, n.height)
		delete(n.precommit, n.height)
		n.height++
	}
	// The certified block itself lands through the normal commit path,
	// which restarts rounds and replays buffered future messages.
	n.onCommit(resp.Cert)
}

func (n *Node) onProposal(p *Proposal) {
	if p.Block == nil {
		n.tm.propRejected.With("malformed").Inc()
		return
	}
	if p.Height != n.height {
		n.tm.propRejected.With("stale_height").Inc()
		return
	}
	if VerifyProposal(p, n.set) != nil {
		n.tm.propRejected.With("bad_signature").Inc()
		return
	}
	if n.set.Proposer(p.Height, p.Round).Addr != p.Proposer {
		n.tm.propRejected.With("wrong_proposer").Inc()
		return // not the legitimate proposer for that round
	}
	rounds, ok := n.proposals[p.Height]
	if !ok {
		rounds = make(map[int]*Proposal)
		n.proposals[p.Height] = rounds
	}
	if _, dup := rounds[p.Round]; dup {
		n.tm.propRejected.With("duplicate").Inc()
		return
	}
	if len(p.POLVotes) > n.set.Len() {
		n.tm.propRejected.With("malformed").Inc()
		return
	}
	rounds[p.Round] = p
	n.blocks[p.Block.ID()] = p.Block
	// Count the attached proof-of-lock prevotes; each is verified like any
	// other vote (duplicates of prevotes we already hold are rejected
	// harmlessly). A vote may commit the height mid-loop, so re-check.
	for i := range p.POLVotes {
		if n.height != p.Height || n.stopped {
			return
		}
		n.onVote(p.POLVotes[i])
	}
	if n.height != p.Height || n.stopped {
		return
	}
	n.tryPrevote()
	n.recheckQuorums()
}

// tryPrevote runs the Tendermint prevote rules for the current round if a
// proposal is available and we are still in the propose step.
func (n *Node) tryPrevote() {
	if n.step != StepPropose {
		return
	}
	p := n.proposalAt(n.height, n.round)
	if p == nil {
		return
	}
	id := p.Block.ID()
	appOK := n.app.ValidateBlock(p.Block) == nil

	prevoteID := ledger.BlockID{} // nil unless rules allow
	switch {
	case p.POLRound == -1:
		// Fresh proposal: prevote it if valid and we are not locked on a
		// different value.
		if appOK && (n.lockedRound == -1 || (n.locked != nil && n.locked.ID() == id)) {
			prevoteID = id
		}
	case p.POLRound >= 0 && p.POLRound < n.round:
		// Re-proposal with a proof-of-lock: need 2/3 prevotes at POLRound.
		vs := n.prevoteSet(n.height, p.POLRound)
		if qid, ok := vs.quorumFor(n.set.QuorumPower()); ok && qid == id {
			if appOK && (n.lockedRound <= p.POLRound || (n.locked != nil && n.locked.ID() == id)) {
				prevoteID = id
			}
		} else {
			return // wait for the POL prevotes to arrive
		}
	default:
		return
	}
	n.step = StepPrevote
	n.signVote(VotePrevote, prevoteID)
	n.schedulePrevoteTimeout(n.round)
}

func (n *Node) proposalAt(h uint64, r int) *Proposal {
	if rounds, ok := n.proposals[h]; ok {
		return rounds[r]
	}
	return nil
}

func (n *Node) prevoteSet(h uint64, r int) *voteSet {
	rounds, ok := n.prevotes[h]
	if !ok {
		rounds = make(map[int]*voteSet)
		n.prevotes[h] = rounds
	}
	vs, ok := rounds[r]
	if !ok {
		vs = newVoteSet()
		rounds[r] = vs
	}
	return vs
}

func (n *Node) precommitSet(h uint64, r int) *voteSet {
	rounds, ok := n.precommit[h]
	if !ok {
		rounds = make(map[int]*voteSet)
		n.precommit[h] = rounds
	}
	vs, ok := rounds[r]
	if !ok {
		vs = newVoteSet()
		rounds[r] = vs
	}
	return vs
}

func (n *Node) onVote(v Vote) {
	if v.Height != n.height {
		n.tm.voteRejected.With("stale_height").Inc()
		return
	}
	if v.Type != VotePrevote && v.Type != VotePrecommit {
		n.tm.voteRejected.With("malformed").Inc()
		return
	}
	if VerifyVote(&v, n.set) != nil {
		n.tm.voteRejected.With("bad_signature").Inc()
		return
	}
	val, _ := n.set.ByAddr(v.Voter)
	var vs *voteSet
	if v.Type == VotePrevote {
		vs = n.prevoteSet(v.Height, v.Round)
	} else {
		vs = n.precommitSet(v.Height, v.Round)
	}
	if err := vs.add(v, val.Power); err != nil {
		if errors.Is(err, ErrDuplicateVote) {
			// Replayed or duplicated traffic: the tally is untouched, so a
			// lossy-duplicating network can never double-count power.
			n.tm.voteRejected.With("duplicate").Inc()
			return
		}
		n.metrics.Equivocations++
		n.tm.equivocations.Inc()
		n.tm.voteRejected.With("equivocation").Inc()
		return
	}
	if v.Type == VotePrevote {
		n.tm.votePrevote.Inc()
	} else {
		n.tm.votePrecommit.Inc()
	}
	n.recheckQuorums()
}

// roundSkipTarget returns the lowest round above the current one in
// which validators holding more than 1/3 of total power have voted.
// At least one of them is honest, so that round is live and this node
// should catch up to it (the Tendermint round-skip rule). Without it,
// faulty links can drift validators into disjoint rounds whose timeout
// schedules never re-align — a liveness stall the chaos harness hits
// under corruption.
func (n *Node) roundSkipTarget() (int, bool) {
	skip := n.set.TotalPower()/3 + 1
	later := make(map[int]struct{})
	for r := range n.prevotes[n.height] {
		if r > n.round {
			later[r] = struct{}{}
		}
	}
	for r := range n.precommit[n.height] {
		if r > n.round {
			later[r] = struct{}{}
		}
	}
	if len(later) == 0 {
		return 0, false
	}
	rounds := make([]int, 0, len(later))
	for r := range later {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		voters := make(map[keys.Address]bool)
		if rs, ok := n.prevotes[n.height]; ok && rs[r] != nil {
			for addr := range rs[r].votes {
				voters[addr] = true
			}
		}
		if rs, ok := n.precommit[n.height]; ok && rs[r] != nil {
			for addr := range rs[r].votes {
				voters[addr] = true
			}
		}
		var power int64
		for addr := range voters {
			if val, ok := n.set.ByAddr(addr); ok {
				power += val.Power
			}
		}
		if power >= skip {
			return r, true
		}
	}
	return 0, false
}

// recheckQuorums applies the quorum-driven transitions for the current
// height. It is called after every proposal or vote arrival.
func (n *Node) recheckQuorums() {
	quorum := n.set.QuorumPower()

	// Catch up to a later round that provably has honest participation.
	if r, ok := n.roundSkipTarget(); ok {
		n.startRound(r)
		return
	}

	// A proposal that was waiting for its proof-of-lock prevotes may become
	// actionable once those prevotes arrive.
	n.tryPrevote()

	// A prevote quorum in the current round while in prevote step.
	if n.step == StepPrevote {
		vs := n.prevoteSet(n.height, n.round)
		if id, ok := vs.quorumFor(quorum); ok {
			if id.IsZero() {
				n.step = StepPrecommit
				n.signVote(VotePrecommit, ledger.BlockID{})
				n.schedulePrecommitTimeout(n.round)
			} else if b := n.blocks[id]; b != nil {
				n.locked = b
				n.lockedRound = n.round
				n.valid = b
				n.validRound = n.round
				n.step = StepPrecommit
				n.signVote(VotePrecommit, id)
				n.schedulePrecommitTimeout(n.round)
			}
		} else if vs.totalPower() >= quorum {
			// 2/3 of mixed prevotes: schedule the prevote timeout path by
			// leaving the existing timer to fire.
			_ = vs
		}
	}

	// Track valid value even outside prevote step (e.g. precommit step).
	for r := 0; r <= n.round; r++ {
		vs := n.prevoteSet(n.height, r)
		if id, ok := vs.quorumFor(quorum); ok && !id.IsZero() {
			if b := n.blocks[id]; b != nil && r > n.validRound {
				n.valid = b
				n.validRound = r
			}
		}
	}

	// A precommit quorum for a block in any round commits it.
	for r := 0; r <= n.round; r++ {
		vs := n.precommitSet(n.height, r)
		if id, ok := vs.quorumFor(quorum); ok && !id.IsZero() {
			if b := n.blocks[id]; b != nil {
				n.commit(b, vs.votesFor(id))
				return
			}
		}
	}

	// A precommit quorum of nil (or mixed reaching 2/3) in the current
	// round lets the precommit timeout advance the round; nothing to do
	// eagerly here.
}

func (n *Node) commit(b *ledger.Block, quorum []Vote) {
	if err := n.app.CommitBlock(b); err != nil {
		// The application rejected a decided block: this is a programming
		// error in the App (Validate passed earlier); halt this node to
		// avoid divergence rather than panicking the whole process.
		n.stopped = true
		return
	}
	n.metrics.Committed++
	now := n.net.Now()
	n.tm.commits.Inc()
	n.tm.heightSec.Observe((now - n.metrics.lastHeightAt).Seconds())
	n.metrics.CommitLatency += now - n.metrics.lastHeightAt
	n.metrics.lastHeightAt = now

	// Help laggards catch up, and retain the certificate for block sync.
	cert := &Commit{Height: n.height, Block: b, Quorum: quorum}
	n.certs[n.height] = cert
	n.pruneCerts()
	n.broadcast(KindCommit, cert)

	n.advanceHeight()
}

// pruneCerts drops certificates that fell out of the sliding retention
// window; those heights are served from the chain app instead.
func (n *Node) pruneCerts() {
	w := uint64(n.certWindow)
	if w == 0 {
		w = DefaultCertWindow
	}
	for n.certFloor+w <= n.height {
		delete(n.certs, n.certFloor)
		n.certFloor++
	}
}

func (n *Node) advanceHeight() {
	delete(n.proposals, n.height)
	delete(n.prevotes, n.height)
	delete(n.precommit, n.height)
	n.height++
	n.round = 0
	n.locked = nil
	n.lockedRound = -1
	n.valid = nil
	n.validRound = -1
	n.blocks = make(map[ledger.BlockID]*ledger.Block)
	if n.tmo.Commit > 0 {
		// Pace block production: rest for timeout_commit before entering
		// the next height. Messages for the new height that arrive during
		// the pause are still tallied (they can even commit it early, or
		// pull us into a later round via round skip — either clears the
		// pause); the timer only fires if the pause is still in effect.
		h := n.height
		n.paused = true
		n.net.After(n.id, n.tmo.Commit, func() {
			if n.stopped || n.height != h || !n.paused {
				return
			}
			n.startRound(0)
			n.replayFuture()
		})
		n.replayFuture()
		return
	}
	n.startRound(0)
	n.replayFuture()
}

// replayFuture re-dispatches buffered messages that are now current.
func (n *Node) replayFuture() {
	if len(n.future) == 0 {
		return
	}
	pending := n.future
	n.future = nil
	for _, m := range pending {
		if n.stopped {
			return
		}
		n.Handle(m)
	}
}

func (n *Node) onCommit(c *Commit) {
	if c.Block == nil {
		n.tm.msgRejected.With("malformed").Inc()
		return
	}
	if c.Height != n.height {
		n.tm.msgRejected.With("stale_commit").Inc()
		return
	}
	if err := VerifyCommit(c, n.set); err != nil {
		n.tm.msgRejected.With("bad_certificate").Inc()
		return
	}
	if err := n.app.CommitBlock(c.Block); err != nil {
		n.stopped = true
		return
	}
	n.certs[c.Height] = c
	n.pruneCerts()
	n.metrics.Committed++
	now := n.net.Now()
	n.tm.commits.Inc()
	n.tm.heightSec.Observe((now - n.metrics.lastHeightAt).Seconds())
	n.metrics.CommitLatency += now - n.metrics.lastHeightAt
	n.metrics.lastHeightAt = now
	n.advanceHeight()
}

// String describes the node's position for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%s@h%d/r%d/%s", n.id, n.height, n.round, n.step)
}
