// Package consensus implements a Tendermint-style BFT consensus protocol
// over the simulated network, plus a round-robin proof-of-authority
// baseline. The paper's platform "demands a high performance blockchain
// network" (§VII) with Byzantine participants (fake-news producers have an
// incentive to subvert ranking); experiment E10 measures throughput and
// latency of both protocols as the validator count grows.
//
// The BFT state machine follows Buchman, Kwon & Milosevic, "The latest
// gossip on BFT consensus" (the Tendermint algorithm): propose / prevote /
// precommit steps per round, value locking, and proof-of-lock rounds. All
// votes and proposals are ed25519-signed and verified on receipt.
package consensus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/transport"
)

// Message kinds on the wire.
const (
	KindProposal = "consensus.proposal"
	KindVote     = "consensus.vote"
	KindCommit   = "consensus.commit"
)

// Step is the phase within a consensus round.
type Step int

// Round steps.
const (
	StepPropose Step = iota + 1
	StepPrevote
	StepPrecommit
)

// String implements fmt.Stringer.
func (s Step) String() string {
	switch s {
	case StepPropose:
		return "propose"
	case StepPrevote:
		return "prevote"
	case StepPrecommit:
		return "precommit"
	default:
		return "unknown"
	}
}

// VoteType distinguishes the two voting phases.
type VoteType int

// Vote types.
const (
	VotePrevote VoteType = iota + 1
	VotePrecommit
)

// String implements fmt.Stringer.
func (v VoteType) String() string {
	if v == VotePrevote {
		return "prevote"
	}
	return "precommit"
}

// Errors returned by this package.
var (
	// ErrNotValidator indicates a message from an address outside the set.
	ErrNotValidator = errors.New("consensus: not a validator")
	// ErrBadVoteSig indicates a vote whose signature fails.
	ErrBadVoteSig = errors.New("consensus: bad vote signature")
	// ErrEquivocation indicates two conflicting signed votes from one
	// validator at the same height/round/type.
	ErrEquivocation = errors.New("consensus: equivocation detected")
	// ErrDuplicateVote indicates a vote identical to one already counted
	// (a replayed or duplicated message, not an equivocation).
	ErrDuplicateVote = errors.New("consensus: duplicate vote")
	// ErrEmptyValidatorSet indicates a set with no members.
	ErrEmptyValidatorSet = errors.New("consensus: empty validator set")
)

// Validator is one consensus participant.
type Validator struct {
	ID    transport.NodeID
	Addr  keys.Address
	Pub   []byte // ed25519 public key
	Power int64
}

// ValidatorSet is an ordered set of validators with power accounting.
type ValidatorSet struct {
	vals   []Validator
	byAddr map[keys.Address]int
	total  int64
}

// NewValidatorSet builds a set; order is canonicalized by node id so every
// node computes the same proposer rotation.
func NewValidatorSet(vals []Validator) (*ValidatorSet, error) {
	if len(vals) == 0 {
		return nil, ErrEmptyValidatorSet
	}
	cp := make([]Validator, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i].ID < cp[j].ID })
	s := &ValidatorSet{vals: cp, byAddr: make(map[keys.Address]int, len(cp))}
	for i, v := range cp {
		if v.Power <= 0 {
			return nil, fmt.Errorf("consensus: validator %s power %d", v.ID, v.Power)
		}
		s.byAddr[v.Addr] = i
		s.total += v.Power
	}
	return s, nil
}

// Len returns the number of validators.
func (s *ValidatorSet) Len() int { return len(s.vals) }

// TotalPower returns the sum of voting power.
func (s *ValidatorSet) TotalPower() int64 { return s.total }

// QuorumPower returns the minimum power strictly exceeding 2/3 of total.
func (s *ValidatorSet) QuorumPower() int64 { return s.total*2/3 + 1 }

// ByAddr returns the validator with the given address.
func (s *ValidatorSet) ByAddr(a keys.Address) (Validator, bool) {
	i, ok := s.byAddr[a]
	if !ok {
		return Validator{}, false
	}
	return s.vals[i], true
}

// Members returns a copy of the validator list in canonical order.
func (s *ValidatorSet) Members() []Validator {
	out := make([]Validator, len(s.vals))
	copy(out, s.vals)
	return out
}

// Proposer returns the proposer for a height/round by weighted round-robin
// (uniform power degenerates to plain round-robin).
func (s *ValidatorSet) Proposer(height uint64, round int) Validator {
	// Deterministic index over the cumulative power wheel.
	seq := height*31 + uint64(round)
	target := int64(seq % uint64(s.total))
	var acc int64
	for _, v := range s.vals {
		acc += v.Power
		if target < acc {
			return v
		}
	}
	return s.vals[len(s.vals)-1]
}

// Proposal is a proposer's signed block proposal for (height, round).
// POLRound carries the proof-of-lock round (-1 when proposing fresh).
// POLVotes carries the prevote quorum proving the lock, so receivers
// that missed those prevotes (lossy or corrupting links) can still act
// on the re-proposal instead of waiting forever. Each vote is
// individually signed, so the field stays outside the proposal's own
// sign bytes.
type Proposal struct {
	Height   uint64
	Round    int
	POLRound int
	Block    *ledger.Block
	Proposer keys.Address
	Sig      []byte
	POLVotes []Vote
}

func proposalSignBytes(p *Proposal) []byte {
	var buf bytes.Buffer
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], p.Height)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], uint64(int64(p.Round)))
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], uint64(int64(p.POLRound)))
	buf.Write(b8[:])
	id := p.Block.ID()
	buf.Write(id[:])
	buf.Write(p.Proposer[:])
	return buf.Bytes()
}

// SignProposal signs p with the proposer key.
func SignProposal(p *Proposal, kp *keys.KeyPair) {
	p.Sig = kp.Sign(proposalSignBytes(p))
}

// VerifyProposal checks the proposal signature against the validator set.
func VerifyProposal(p *Proposal, set *ValidatorSet) error {
	v, ok := set.ByAddr(p.Proposer)
	if !ok {
		return fmt.Errorf("%w: proposer %s", ErrNotValidator, p.Proposer.Short())
	}
	if err := keys.Verify(v.Pub, proposalSignBytes(p), p.Sig); err != nil {
		return fmt.Errorf("%w: proposal: %v", ErrBadVoteSig, err)
	}
	return nil
}

// Vote is a signed prevote or precommit. A zero BlockID is a nil-vote.
type Vote struct {
	Type    VoteType
	Height  uint64
	Round   int
	BlockID ledger.BlockID
	Voter   keys.Address
	Sig     []byte
}

func voteSignBytes(v *Vote) []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(v.Type))
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], v.Height)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], uint64(int64(v.Round)))
	buf.Write(b8[:])
	buf.Write(v.BlockID[:])
	buf.Write(v.Voter[:])
	return buf.Bytes()
}

// SignVote signs v with the voter key.
func SignVote(v *Vote, kp *keys.KeyPair) {
	v.Sig = kp.Sign(voteSignBytes(v))
}

// VoteSignBytes exposes the canonical signed bytes of a vote so external
// verifiers (the on-chain evidence contract, light clients) can check
// vote signatures without a validator-set oracle.
func VoteSignBytes(v *Vote) []byte { return voteSignBytes(v) }

// VerifyVote checks the vote signature against the validator set.
func VerifyVote(v *Vote, set *ValidatorSet) error {
	val, ok := set.ByAddr(v.Voter)
	if !ok {
		return fmt.Errorf("%w: voter %s", ErrNotValidator, v.Voter.Short())
	}
	if err := keys.Verify(val.Pub, voteSignBytes(v), v.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadVoteSig, err)
	}
	return nil
}

// Commit is a commit certificate: a block plus a precommit quorum, gossiped
// so lagging nodes can catch up without replaying the vote exchange.
type Commit struct {
	Height uint64
	Block  *ledger.Block
	Quorum []Vote
}

// VerifyCommit checks that the certificate carries a valid 2/3+ precommit
// quorum for the block from distinct validators.
func VerifyCommit(c *Commit, set *ValidatorSet) error {
	id := c.Block.ID()
	var power int64
	seen := make(map[keys.Address]bool, len(c.Quorum))
	for i := range c.Quorum {
		v := c.Quorum[i]
		if v.Type != VotePrecommit || v.Height != c.Height || v.BlockID != id {
			return fmt.Errorf("consensus: commit cert vote %d does not match block", i)
		}
		if seen[v.Voter] {
			return fmt.Errorf("%w: duplicate voter in commit cert", ErrEquivocation)
		}
		if err := VerifyVote(&v, set); err != nil {
			return err
		}
		seen[v.Voter] = true
		val, _ := set.ByAddr(v.Voter)
		power += val.Power
	}
	if power < set.QuorumPower() {
		return fmt.Errorf("consensus: commit cert power %d < quorum %d", power, set.QuorumPower())
	}
	return nil
}

// voteSet tallies votes for one (height, round, type).
type voteSet struct {
	votes map[keys.Address]Vote
	power map[ledger.BlockID]int64
	total int64
}

func newVoteSet() *voteSet {
	return &voteSet{votes: make(map[keys.Address]Vote), power: make(map[ledger.BlockID]int64)}
}

// add records a vote. It returns ErrEquivocation if the voter already voted
// for a different block at this (height, round, type), and ErrDuplicateVote
// for an exact replay; in both cases the tally is unchanged, so duplicated
// or replayed network traffic can never double-count voting power.
func (vs *voteSet) add(v Vote, power int64) error {
	prev, ok := vs.votes[v.Voter]
	if ok {
		if prev.BlockID != v.BlockID {
			return fmt.Errorf("%w: %s voted %s then %s", ErrEquivocation, v.Voter.Short(), prev.BlockID.Short(), v.BlockID.Short())
		}
		return ErrDuplicateVote
	}
	vs.votes[v.Voter] = v
	vs.power[v.BlockID] += power
	vs.total += power
	return nil
}

// quorumFor returns the block id holding a quorum, if any. The bool result
// reports whether some id (possibly the zero/nil id) has quorum.
func (vs *voteSet) quorumFor(quorum int64) (ledger.BlockID, bool) {
	for id, p := range vs.power {
		if p >= quorum {
			return id, true
		}
	}
	return ledger.BlockID{}, false
}

// totalPower returns the power of all votes in the set.
func (vs *voteSet) totalPower() int64 { return vs.total }

// votesFor returns all recorded votes for a block id.
func (vs *voteSet) votesFor(id ledger.BlockID) []Vote {
	var out []Vote
	for _, v := range vs.votes {
		if v.BlockID == id {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Voter[:], out[j].Voter[:]) < 0
	})
	return out
}
