package consensus

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// TestCertWindowBounded runs a cluster for many heights and checks that
// in-memory certificate retention stays within the configured sliding
// window on every node, while the chain itself keeps every block.
func TestCertWindowBounded(t *testing.T) {
	const (
		window = 32
		target = 1000
	)
	c, err := NewCluster(4, 77, DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.SetCertWindow(window)
	}
	c.Start()
	c.RunUntilHeight(target, 10*time.Hour)
	if h := c.MinHeight(); h < target {
		t.Fatalf("cluster stalled at height %d, want %d", h, target)
	}
	for i, n := range c.Nodes {
		if got := n.CertCount(); got > window {
			t.Fatalf("node %d retains %d certs, window is %d", i, got, window)
		}
		// The chain still holds the full history.
		if _, err := c.Apps[i].Chain.BlockAt(0); err != nil {
			t.Fatalf("node %d lost genesis-height block: %v", i, err)
		}
	}
	for _, h := range []uint64{0, uint64(target) / 2, target - 1} {
		if !c.AgreeAt(h) {
			t.Fatalf("fork at height %d", h)
		}
	}
}

// TestLaggardBackfillsBelowCertWindow detaches one validator, lets the
// rest commit far past the certificate window, then reattaches it. The
// laggard's first sync request lands below every peer's in-memory cert
// window, so catch-up must go through the chain-backed block sync path
// (KindSyncBlocks) before certificates take over near the tip.
func TestLaggardBackfillsBelowCertWindow(t *testing.T) {
	const (
		window = 8
		ahead  = 60
	)
	c, err := NewCluster(4, 41, DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.SetCertWindow(window)
	}
	laggard := c.Nodes[3].id
	c.Net.Detach(laggard)
	c.Start()

	deadline := c.Net.Now() + 10*time.Hour
	c.Net.RunWhile(func() bool {
		return c.Apps[0].Chain.Height() < ahead && c.Net.Now() < deadline
	})
	if h := c.Apps[0].Chain.Height(); h < ahead {
		t.Fatalf("live quorum stalled at height %d, want %d", h, ahead)
	}
	if got := c.Nodes[0].CertCount(); got > window {
		t.Fatalf("peer retains %d certs, window is %d — laggard would not need chain sync", got, window)
	}
	if h := c.Apps[3].Chain.Height(); h != 0 {
		t.Fatalf("detached node advanced to height %d", h)
	}

	c.Net.Reattach(laggard)
	deadline = c.Net.Now() + 10*time.Hour
	c.Net.RunWhile(func() bool {
		return c.Apps[3].Chain.Height() < ahead && c.Net.Now() < deadline
	})
	if h := c.Apps[3].Chain.Height(); h < ahead {
		t.Fatalf("laggard recovered only to height %d, want >= %d", h, ahead)
	}
	for h := uint64(0); h < ahead; h++ {
		ref, err := c.Apps[0].Chain.BlockAt(h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Apps[3].Chain.BlockAt(h)
		if err != nil {
			t.Fatalf("laggard missing height %d: %v", h, err)
		}
		if got.ID() != ref.ID() {
			t.Fatalf("laggard diverges at height %d", h)
		}
	}
}

// TestFaultyLinksTolerated runs consensus over links that duplicate,
// corrupt and reorder traffic. The cluster must keep committing and stay
// fork-free, duplicated votes must never double-count power, and every
// rejected message must be visible in the rejection counters.
func TestFaultyLinksTolerated(t *testing.T) {
	c, err := NewCluster(4, 99, DefaultTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	c.Instrument(reg)
	c.Net.SetAllLinks(simnet.LinkConfig{
		BaseLatency:   5 * time.Millisecond,
		Jitter:        5 * time.Millisecond,
		DuplicateRate: 0.35,
		CorruptRate:   0.05,
		ReorderRate:   0.20,
	})
	c.Start()
	const target = 20
	c.RunUntilHeight(target, 10*time.Hour)
	if h := c.MinHeight(); h < target {
		t.Fatalf("cluster stalled at height %d under link faults, want %d", h, target)
	}
	for h := uint64(0); h < target; h++ {
		if !c.AgreeAt(h) {
			t.Fatalf("fork at height %d under link faults", h)
		}
	}

	stats := c.Net.Stats()
	if stats.Duplicated == 0 || stats.Corrupted == 0 {
		t.Fatalf("fault injection inert: %+v", stats)
	}
	voteRej := reg.CounterVec("trustnews_consensus_votes_rejected_total", "", "reason")
	if got := voteRej.With("duplicate").Value(); got == 0 {
		t.Fatal("duplicated votes were not rejected (or not counted)")
	}
	msgRej := reg.CounterVec("trustnews_consensus_messages_rejected_total", "", "reason")
	propRej := reg.CounterVec("trustnews_consensus_proposals_rejected_total", "", "reason")
	if msgRej.With("malformed").Value()+propRej.With("malformed").Value()+voteRej.With("malformed").Value() == 0 {
		t.Fatal("corrupted messages were not rejected as malformed")
	}
}
