package consensus

import (
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/transport"
)

// PoA message kinds.
const (
	KindPoABlock = "poa.block"
)

// poaMsg is a signed block announcement.
type poaMsg struct {
	Height   uint64
	Block    *ledger.Block
	Proposer keys.Address
	Sig      []byte
}

// PoANode is the proof-of-authority baseline: the round-robin leader signs
// and broadcasts a block; followers verify the leader signature and commit
// immediately. One network hop per block, no votes, and therefore no
// Byzantine fault tolerance — experiment E10 contrasts its cost with BFT.
type PoANode struct {
	id       transport.NodeID
	kp       *keys.KeyPair
	set      *ValidatorSet
	net      transport.Network
	app      App
	interval time.Duration

	height  uint64
	metrics Metrics
	stopped bool
}

// NewPoANode creates a PoA participant. interval is the leader's block
// production period.
func NewPoANode(id transport.NodeID, kp *keys.KeyPair, set *ValidatorSet, net transport.Network, app App, interval time.Duration) *PoANode {
	return &PoANode{id: id, kp: kp, set: set, net: net, app: app, interval: interval}
}

// Bind registers the node's handler on the network.
func (n *PoANode) Bind() error { return n.net.AddNode(n.id, n.Handle) }

// Metrics returns the node's counters.
func (n *PoANode) Metrics() Metrics { return n.metrics }

// Height returns the next height to be decided.
func (n *PoANode) Height() uint64 { return n.height }

// Stop halts the node.
func (n *PoANode) Stop() { n.stopped = true }

// Start schedules the first production slot.
func (n *PoANode) Start() {
	n.metrics.lastHeightAt = n.net.Now()
	n.scheduleSlot()
}

func (n *PoANode) scheduleSlot() {
	n.net.After(n.id, n.interval, func() {
		if n.stopped {
			return
		}
		n.produceIfLeader()
		n.scheduleSlot()
	})
}

func (n *PoANode) produceIfLeader() {
	leader := n.set.Proposer(n.height, 0)
	if leader.Addr != n.kp.Address() {
		return
	}
	b, err := n.app.ProposeBlock(n.height)
	if err != nil || b == nil {
		return
	}
	msg := &poaMsg{Height: n.height, Block: b, Proposer: n.kp.Address()}
	msg.Sig = n.kp.Sign(poaSignBytes(msg))
	for _, v := range n.set.Members() {
		if v.ID == n.id {
			continue
		}
		_ = n.net.Send(n.id, v.ID, KindPoABlock, msg)
	}
	n.commit(b)
}

func poaSignBytes(m *poaMsg) []byte {
	id := m.Block.ID()
	out := make([]byte, 0, 8+len(id)+keys.AddressSize)
	for i := 7; i >= 0; i-- {
		out = append(out, byte(m.Height>>(8*i)))
	}
	out = append(out, id[:]...)
	out = append(out, m.Proposer[:]...)
	return out
}

// Handle processes an incoming block announcement.
func (n *PoANode) Handle(m transport.Message) {
	if n.stopped {
		return
	}
	msg, ok := m.Payload.(*poaMsg)
	if !ok || m.Kind != KindPoABlock {
		return
	}
	if msg.Height != n.height {
		return
	}
	leader := n.set.Proposer(msg.Height, 0)
	if leader.Addr != msg.Proposer {
		return
	}
	val, ok := n.set.ByAddr(msg.Proposer)
	if !ok || keys.Verify(val.Pub, poaSignBytes(msg), msg.Sig) != nil {
		return
	}
	if n.app.ValidateBlock(msg.Block) != nil {
		return
	}
	n.commit(msg.Block)
}

func (n *PoANode) commit(b *ledger.Block) {
	if err := n.app.CommitBlock(b); err != nil {
		n.stopped = true
		return
	}
	n.metrics.Committed++
	now := n.net.Now()
	n.metrics.CommitLatency += now - n.metrics.lastHeightAt
	n.metrics.lastHeightAt = now
	n.height++
}
