package consensus

import (
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/transport"
)

// Byzantine behaviours used in fault-injection tests. The paper's threat
// model includes adversaries who profit from corrupting the ranking ledger
// (fake-news producers); consensus must hold with f < n/3 such validators.

// SilentNode is a validator that never sends anything (crash fault).
// It still occupies a slot in the validator set.
type SilentNode struct{}

// Bind registers a no-op handler for the node id.
func (SilentNode) Bind(net transport.Network, id transport.NodeID) error {
	return net.AddNode(id, func(transport.Message) {})
}

// EquivocatorNode votes for two different blocks in every round: it echoes
// whatever proposal it sees with a prevote and simultaneously prevotes an
// arbitrary conflicting id, attempting to split honest nodes.
type EquivocatorNode struct {
	id  transport.NodeID
	kp  *keys.KeyPair
	set *ValidatorSet
	net transport.Network
}

// NewEquivocator creates the double-voting validator.
func NewEquivocator(id transport.NodeID, kp *keys.KeyPair, set *ValidatorSet, net transport.Network) *EquivocatorNode {
	return &EquivocatorNode{id: id, kp: kp, set: set, net: net}
}

// Bind registers the equivocator's handler.
func (e *EquivocatorNode) Bind() error {
	return e.net.AddNode(e.id, e.Handle)
}

// Handle reacts to proposals by emitting conflicting prevotes and
// precommits to different peers.
func (e *EquivocatorNode) Handle(m transport.Message) {
	p, ok := m.Payload.(*Proposal)
	if !ok {
		return
	}
	realID := p.Block.ID()
	var fakeID ledger.BlockID
	fakeID[0] = 0xbd // arbitrary conflicting id
	members := e.set.Members()
	for i, v := range members {
		if v.ID == e.id {
			continue
		}
		ids := []ledger.BlockID{realID}
		if i%2 == 0 {
			// Half the peers receive both conflicting votes, which is the
			// strongest (and detectable) form of equivocation.
			ids = append(ids, fakeID)
		}
		for _, id := range ids {
			pre := Vote{Type: VotePrevote, Height: p.Height, Round: p.Round, BlockID: id, Voter: e.kp.Address()}
			SignVote(&pre, e.kp)
			_ = e.net.Send(e.id, v.ID, KindVote, pre)
			pc := Vote{Type: VotePrecommit, Height: p.Height, Round: p.Round, BlockID: id, Voter: e.kp.Address()}
			SignVote(&pc, e.kp)
			_ = e.net.Send(e.id, v.ID, KindVote, pc)
		}
	}
}

// DelayedNode wraps an honest node but defers every message by a fixed
// extra delay, modelling a slow validator.
type DelayedNode struct {
	Inner *Node
	Delay time.Duration
	net   transport.Network
	id    transport.NodeID
}

// NewDelayedNode wraps inner with the given processing delay.
func NewDelayedNode(inner *Node, net transport.Network, id transport.NodeID, delay time.Duration) *DelayedNode {
	return &DelayedNode{Inner: inner, Delay: delay, net: net, id: id}
}

// Bind registers the delaying handler.
func (d *DelayedNode) Bind() error {
	return d.net.AddNode(d.id, func(m transport.Message) {
		d.net.After(d.id, d.Delay, func() { d.Inner.Handle(m) })
	})
}
