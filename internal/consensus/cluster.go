package consensus

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// ChainApp is a ready-made App over a ledger chain and mempool, used by the
// platform node and by tests. Proposed blocks drain the mempool; committed
// blocks are appended to the chain and an optional hook observes them.
type ChainApp struct {
	Chain    *ledger.Chain
	Pool     *ledger.Mempool
	Proposer keys.Address
	// MaxTxs bounds the transactions per proposed block (0 = 512).
	MaxTxs int
	// Now supplies block timestamps; defaults to a fixed epoch so
	// simulations are deterministic.
	Now func() time.Time
	// OnCommit, when non-nil, observes every committed block.
	OnCommit func(*ledger.Block)
	// AllowEmpty lets the proposer emit empty blocks (heartbeats).
	AllowEmpty bool
}

var _ App = (*ChainApp)(nil)

// ProposeBlock implements App.
func (a *ChainApp) ProposeBlock(height uint64) (*ledger.Block, error) {
	if height != a.Chain.Height() {
		return nil, fmt.Errorf("consensus: propose height %d but chain at %d", height, a.Chain.Height())
	}
	max := a.MaxTxs
	if max <= 0 {
		max = 512
	}
	txs := a.Pool.Batch(max)
	if len(txs) == 0 && !a.AllowEmpty {
		return nil, nil
	}
	at := time.Unix(1562500000, 0).UTC()
	if a.Now != nil {
		at = a.Now()
	}
	return ledger.NewBlock(height, a.Chain.HeadID(), [32]byte{}, at, a.Proposer, txs), nil
}

// ValidateBlock implements App. Validation goes through the chain's
// verification pipeline, so signatures already verified at mempool
// admission (or when this block was validated in an earlier round) are
// served from the cache and only structurally re-checked.
func (a *ChainApp) ValidateBlock(b *ledger.Block) error {
	return a.Chain.VerifyBlockBody(b)
}

// BlockAt implements BlockFetcher, so a node backed by this app can serve
// block sync for heights older than its certificate window.
func (a *ChainApp) BlockAt(height uint64) (*ledger.Block, error) {
	return a.Chain.BlockAt(height)
}

// CommitBlock implements App.
func (a *ChainApp) CommitBlock(b *ledger.Block) error {
	if err := a.Chain.Append(b); err != nil {
		return err
	}
	a.Pool.Remove(b.Txs)
	if a.OnCommit != nil {
		a.OnCommit(b)
	}
	return nil
}

// Cluster wires N validators, each with its own chain and mempool, over one
// simulated network. It is the harness for consensus tests and for the E10
// scalability experiment.
type Cluster struct {
	Net   *simnet.Network
	Set   *ValidatorSet
	Nodes []*Node
	Keys  []*keys.KeyPair
	Apps  []*ChainApp
}

// NewCluster builds a BFT cluster of n validators with the given timeouts.
func NewCluster(n int, seed int64, tmo Timeouts) (*Cluster, error) {
	net := simnet.New(seed)
	kps := make([]*keys.KeyPair, n)
	vals := make([]Validator, n)
	for i := 0; i < n; i++ {
		kps[i] = keys.FromSeed([]byte("validator-" + strconv.Itoa(i)))
		vals[i] = Validator{
			ID:    simnet.NodeID("v" + strconv.Itoa(i)),
			Addr:  kps[i].Address(),
			Pub:   kps[i].Public(),
			Power: 1,
		}
	}
	set, err := NewValidatorSet(vals)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Net: net, Set: set, Keys: kps}
	for i := 0; i < n; i++ {
		app := &ChainApp{
			Chain:      ledger.NewMemChain(),
			Proposer:   kps[i].Address(),
			AllowEmpty: true, // heartbeat blocks keep heights advancing
		}
		app.Pool = ledger.NewMempool(app.Chain, 1<<16)
		node := NewNode(vals[i].ID, kps[i], set, net, app, tmo)
		if err := node.Bind(); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.Apps = append(c.Apps, app)
	}
	return c, nil
}

// Instrument registers every node's consensus metrics and every app's
// mempool metrics on reg (nil disables). The series aggregate across
// validators: one shared registry observes the whole cluster.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	for _, n := range c.Nodes {
		n.Instrument(reg)
	}
	for _, app := range c.Apps {
		app.Pool.Instrument(reg)
	}
}

// Start launches every node.
func (c *Cluster) Start() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// SubmitAll adds a transaction to every node's mempool (as if gossiped).
func (c *Cluster) SubmitAll(tx *ledger.Tx) error {
	for i, app := range c.Apps {
		if err := app.Pool.Add(tx); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// RunUntilHeight drives the network until every live node's chain reaches
// the target height or maxVirtual elapses. It returns the virtual time
// consumed.
func (c *Cluster) RunUntilHeight(target uint64, maxVirtual time.Duration) time.Duration {
	start := c.Net.Now()
	deadline := start + maxVirtual
	c.Net.RunWhile(func() bool {
		if c.Net.Now() >= deadline {
			return false
		}
		for i, app := range c.Apps {
			if c.Nodes[i].stopped {
				continue
			}
			if app.Chain.Height() < target {
				return true
			}
		}
		return false
	})
	return c.Net.Now() - start
}

// MinHeight returns the lowest chain height across live nodes.
func (c *Cluster) MinHeight() uint64 {
	min := ^uint64(0)
	for i, app := range c.Apps {
		if c.Nodes[i].stopped {
			continue
		}
		if h := app.Chain.Height(); h < min {
			min = h
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// AgreeAt verifies that all live nodes that have block at height h agree on
// its id. It returns false on divergence (a safety violation).
func (c *Cluster) AgreeAt(h uint64) bool {
	var ref ledger.BlockID
	seen := false
	for i, app := range c.Apps {
		if c.Nodes[i].stopped {
			continue
		}
		b, err := app.Chain.BlockAt(h)
		if err != nil {
			continue
		}
		if !seen {
			ref = b.ID()
			seen = true
			continue
		}
		if b.ID() != ref {
			return false
		}
	}
	return true
}
