// Package gossip implements epidemic broadcast over a transport network.
//
// Blocks and transactions propagate between validators by push gossip with
// configurable fanout and duplicate suppression. The fanout/latency/overhead
// trade-off is one of the ablations DESIGN.md calls out: a higher fanout
// lowers propagation delay at the cost of redundant messages, which matters
// for the paper's "globally connected" news network (§VII).
package gossip

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// MessageKind is the transport message kind used by gossip traffic.
const MessageKind = "gossip"

// Anti-entropy message kinds (pull repair).
const (
	// KindDigest carries a node's seen-envelope digest to a random peer.
	KindDigest = "gossip.digest"
	// KindPull requests envelopes missing from the requester's digest.
	KindPull = "gossip.pull"
)

// Errors returned by this package.
var (
	// ErrUnknownPeer indicates an origin node that was never registered.
	ErrUnknownPeer = errors.New("gossip: unknown peer")
)

// Envelope is the payload carried by gossip messages.
type Envelope struct {
	ID      string // deduplication key, chosen by the publisher
	Topic   string
	Payload any
	Hops    int
}

// Delivery is handed to the application when a node first sees an envelope.
type Delivery struct {
	Node transport.NodeID
	From transport.NodeID
	Env  Envelope
	At   time.Duration
}

// Config tunes the protocol.
type Config struct {
	// Fanout is the number of random peers each node forwards a fresh
	// envelope to. Zero means broadcast to all peers.
	Fanout int
	// MaxHops bounds forwarding depth; zero means unlimited.
	MaxHops int
	// AntiEntropyInterval enables periodic anti-entropy rounds on the
	// network's virtual clock (see StartAntiEntropy). Zero keeps rounds
	// manual (AntiEntropyRound).
	AntiEntropyInterval time.Duration
	// AntiEntropyJitter adds a uniform random delay in [0, Jitter) to
	// each round, drawn from the network's seeded RNG, so repair rounds
	// do not synchronize with other periodic traffic. Zero defaults to
	// half the interval.
	AntiEntropyJitter time.Duration
}

// Mesh is a gossip overlay across a set of transport nodes. Create with New,
// register nodes with Join, publish with Publish, then drive the underlying
// network with net.Run.
type Mesh struct {
	mu    sync.Mutex
	net   transport.Network
	cfg   Config
	peers []transport.NodeID
	seen  map[transport.NodeID]map[string]bool
	// stash keeps each node's copies of received envelopes so it can
	// serve anti-entropy pulls.
	stash   map[transport.NodeID]map[string]Envelope
	deliver func(Delivery)
	// counters
	firstSeen map[string]time.Duration
	reach     map[string]int
	tm        gossipMetrics
}

// gossipMetrics holds the mesh's cached instrument handles (nil until
// Instrument; every method is nil-safe).
type gossipMetrics struct {
	delivered *telemetry.Counter
	relayed   *telemetry.Counter
	dedup     *telemetry.Counter
	spreadSec *telemetry.Histogram
	hops      *telemetry.Histogram
	pulls     *telemetry.Counter
}

// Instrument registers the mesh's metrics on reg (nil disables).
func (g *Mesh) Instrument(reg *telemetry.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tm = gossipMetrics{
		delivered: reg.Counter("trustnews_gossip_delivered_total", "First-time envelope deliveries across all nodes."),
		relayed:   reg.Counter("trustnews_gossip_relayed_total", "Envelope copies forwarded to peers."),
		dedup:     reg.Counter("trustnews_gossip_dedup_hits_total", "Envelope copies dropped as already seen."),
		spreadSec: reg.Histogram("trustnews_gossip_spread_seconds", "Virtual time from first publish to each node's delivery.", nil),
		hops:      reg.Histogram("trustnews_gossip_hops", "Hop count at delivery.", []float64{0, 1, 2, 3, 4, 6, 8, 12, 16}),
		pulls:     reg.Counter("trustnews_gossip_antientropy_pulls_total", "Envelopes requested through anti-entropy repair."),
	}
}

// New creates a mesh over the given network. deliver is invoked exactly once
// per (node, envelope id) pair; it may be nil.
func New(net transport.Network, cfg Config, deliver func(Delivery)) *Mesh {
	return &Mesh{
		net:       net,
		cfg:       cfg,
		seen:      make(map[transport.NodeID]map[string]bool),
		stash:     make(map[transport.NodeID]map[string]Envelope),
		deliver:   deliver,
		firstSeen: make(map[string]time.Duration),
		reach:     make(map[string]int),
	}
}

// Join registers a node with the mesh and installs its transport handler.
func (g *Mesh) Join(id transport.NodeID) error {
	g.mu.Lock()
	g.peers = append(g.peers, id)
	g.seen[id] = make(map[string]bool)
	g.stash[id] = make(map[string]Envelope)
	g.mu.Unlock()
	handler := func(m transport.Message) {
		switch m.Kind {
		case KindDigest:
			ids, ok := m.Payload.([]string)
			if !ok {
				return
			}
			g.onDigest(id, m.From, ids)
		case KindPull:
			ids, ok := m.Payload.([]string)
			if !ok {
				return
			}
			g.onPull(id, m.From, ids)
		default:
			env, ok := m.Payload.(Envelope)
			if !ok {
				return
			}
			g.receive(id, m.From, env)
		}
	}
	if err := g.net.AddNode(id, handler); err != nil {
		// Node may pre-exist (shared with consensus); replace the handler
		// is not what we want, so surface the error.
		return fmt.Errorf("gossip: join %s: %w", id, err)
	}
	return nil
}

// Peers returns the current peer list.
func (g *Mesh) Peers() []transport.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]transport.NodeID, len(g.peers))
	copy(out, g.peers)
	return out
}

// Publish introduces an envelope at origin and starts the epidemic.
func (g *Mesh) Publish(origin transport.NodeID, env Envelope) error {
	g.mu.Lock()
	if _, ok := g.seen[origin]; !ok {
		g.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPeer, origin)
	}
	g.mu.Unlock()
	g.receive(origin, origin, env)
	return nil
}

func (g *Mesh) receive(node, from transport.NodeID, env Envelope) {
	g.mu.Lock()
	if g.seen[node][env.ID] {
		g.tm.dedup.Inc()
		g.mu.Unlock()
		return
	}
	g.seen[node][env.ID] = true
	g.stash[node][env.ID] = env
	if _, ok := g.firstSeen[env.ID]; !ok {
		g.firstSeen[env.ID] = g.net.Now()
	}
	g.reach[env.ID]++
	g.tm.delivered.Inc()
	g.tm.spreadSec.Observe((g.net.Now() - g.firstSeen[env.ID]).Seconds())
	g.tm.hops.Observe(float64(env.Hops))
	targets := g.pickTargets(node)
	g.mu.Unlock()

	if g.deliver != nil {
		g.deliver(Delivery{Node: node, From: from, Env: env, At: g.net.Now()})
	}
	if g.cfg.MaxHops > 0 && env.Hops >= g.cfg.MaxHops {
		return
	}
	next := env
	next.Hops++
	for _, t := range targets {
		if t == node || t == from {
			continue
		}
		// Errors from Send mean an unregistered peer, which cannot happen
		// for peers picked from our own list; losses are silent by design.
		_ = g.net.Send(node, t, MessageKind, next)
		g.tm.relayed.Inc()
	}
}

// pickTargets selects fanout random peers (or all peers when Fanout==0).
// Caller must hold g.mu.
func (g *Mesh) pickTargets(self transport.NodeID) []transport.NodeID {
	if g.cfg.Fanout <= 0 || g.cfg.Fanout >= len(g.peers)-1 {
		out := make([]transport.NodeID, len(g.peers))
		copy(out, g.peers)
		return out
	}
	// Partial Fisher-Yates over a copy using the network RNG.
	cand := make([]transport.NodeID, 0, len(g.peers)-1)
	for _, p := range g.peers {
		if p != self {
			cand = append(cand, p)
		}
	}
	rng := g.net.Rand()
	k := g.cfg.Fanout
	for i := 0; i < k && i < len(cand); i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	if k > len(cand) {
		k = len(cand)
	}
	return cand[:k]
}

// StartAntiEntropy begins the periodic anti-entropy schedule, anchored
// on the given node's virtual-time timer queue. Rounds repeat every
// AntiEntropyInterval plus a seeded jitter draw, so the cadence is
// deterministic for a fixed network seed but spread out relative to
// other periodic traffic. No-op when the interval is zero.
func (g *Mesh) StartAntiEntropy(anchor transport.NodeID) {
	if g.cfg.AntiEntropyInterval <= 0 {
		return
	}
	g.scheduleAntiEntropy(anchor)
}

func (g *Mesh) scheduleAntiEntropy(anchor transport.NodeID) {
	d := g.cfg.AntiEntropyInterval
	jitter := g.cfg.AntiEntropyJitter
	if jitter <= 0 {
		jitter = d / 2
	}
	if jitter > 0 {
		d += time.Duration(g.net.Rand().Int63n(int64(jitter)))
	}
	g.net.After(anchor, d, func() {
		g.AntiEntropyRound()
		g.scheduleAntiEntropy(anchor)
	})
}

// AntiEntropyRound makes every node send its digest to one random peer.
// Peers that are missing envelopes pull them back — the repair mechanism
// that closes the coverage gap push gossip leaves under loss.
func (g *Mesh) AntiEntropyRound() {
	g.mu.Lock()
	peers := append([]transport.NodeID(nil), g.peers...)
	digests := make(map[transport.NodeID][]string, len(peers))
	for _, p := range peers {
		ids := make([]string, 0, len(g.seen[p]))
		for id := range g.seen[p] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		digests[p] = ids
	}
	rng := g.net.Rand()
	g.mu.Unlock()
	for _, p := range peers {
		if len(peers) < 2 {
			return
		}
		target := peers[rng.Intn(len(peers))]
		if target == p {
			continue
		}
		_ = g.net.Send(p, target, KindDigest, digests[p])
	}
}

// onDigest compares a peer's digest with ours and pulls what we miss.
func (g *Mesh) onDigest(node, from transport.NodeID, ids []string) {
	g.mu.Lock()
	var missing []string
	for _, id := range ids {
		if !g.seen[node][id] {
			missing = append(missing, id)
		}
	}
	g.mu.Unlock()
	if len(missing) > 0 {
		g.tm.pulls.Add(uint64(len(missing)))
		_ = g.net.Send(node, from, KindPull, missing)
	}
}

// onPull serves requested envelopes from the local stash.
func (g *Mesh) onPull(node, from transport.NodeID, ids []string) {
	g.mu.Lock()
	envs := make([]Envelope, 0, len(ids))
	for _, id := range ids {
		if env, ok := g.stash[node][id]; ok {
			envs = append(envs, env)
		}
	}
	g.mu.Unlock()
	for _, env := range envs {
		_ = g.net.Send(node, from, MessageKind, env)
	}
}

// Reach returns how many distinct nodes have seen the envelope id.
func (g *Mesh) Reach(id string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reach[id]
}

// Coverage returns the fraction of peers that have seen the envelope id.
func (g *Mesh) Coverage(id string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.peers) == 0 {
		return 0
	}
	return float64(g.reach[id]) / float64(len(g.peers))
}
