package gossip

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/simnet"
)

func buildMesh(t testing.TB, n int, cfg Config, deliver func(Delivery)) (*simnet.Network, *Mesh) {
	t.Helper()
	net := simnet.New(1)
	mesh := New(net, cfg, deliver)
	for i := 0; i < n; i++ {
		if err := mesh.Join(simnet.NodeID("n" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.SetAllLinks(simnet.LinkConfig{BaseLatency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond})
	return net, mesh
}

func TestFullFanoutReachesEveryone(t *testing.T) {
	net, mesh := buildMesh(t, 20, Config{}, nil)
	mesh.Publish("n0", Envelope{ID: "e1", Topic: "news"})
	net.Run(0)
	if got := mesh.Reach("e1"); got != 20 {
		t.Fatalf("reach=%d want 20", got)
	}
	if c := mesh.Coverage("e1"); c != 1.0 {
		t.Fatalf("coverage=%f", c)
	}
}

func TestLimitedFanoutStillCovers(t *testing.T) {
	net, mesh := buildMesh(t, 50, Config{Fanout: 4}, nil)
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	// Push-only gossip has a small per-node miss probability; fanout 4 on a
	// 50-node mesh should still reach nearly everyone.
	if got := mesh.Reach("e1"); got < 45 {
		t.Fatalf("reach=%d want >=45 of 50", got)
	}
}

func TestDeliverOncePerNode(t *testing.T) {
	counts := make(map[simnet.NodeID]int)
	var mesh *Mesh
	var net *simnet.Network
	net, mesh = buildMesh(t, 10, Config{}, func(d Delivery) { counts[d.Node]++ })
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("node %s delivered %d times", id, c)
		}
	}
	if len(counts) != 10 {
		t.Fatalf("delivered to %d nodes", len(counts))
	}
}

func TestMaxHopsLimitsSpread(t *testing.T) {
	net, mesh := buildMesh(t, 30, Config{Fanout: 1, MaxHops: 1}, nil)
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	// Origin + its single fanout target + that target's one forward = at
	// most 3 nodes can see the envelope with fanout 1, maxhops 1.
	if got := mesh.Reach("e1"); got > 3 {
		t.Fatalf("reach=%d; MaxHops must bound spread", got)
	}
}

func TestPublishUnknownPeer(t *testing.T) {
	_, mesh := buildMesh(t, 3, Config{}, nil)
	if err := mesh.Publish("ghost", Envelope{ID: "x"}); err == nil {
		t.Fatal("want error for unknown origin")
	}
}

func TestMultipleEnvelopesIndependent(t *testing.T) {
	net, mesh := buildMesh(t, 15, Config{}, nil)
	mesh.Publish("n0", Envelope{ID: "a"})
	mesh.Publish("n5", Envelope{ID: "b"})
	net.Run(0)
	if mesh.Reach("a") != 15 || mesh.Reach("b") != 15 {
		t.Fatalf("reach a=%d b=%d", mesh.Reach("a"), mesh.Reach("b"))
	}
}

func TestGossipSurvivesLoss(t *testing.T) {
	net := simnet.New(9)
	mesh := New(net, Config{Fanout: 6}, nil)
	for i := 0; i < 40; i++ {
		if err := mesh.Join(simnet.NodeID("n" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.SetAllLinks(simnet.LinkConfig{BaseLatency: time.Millisecond, Jitter: time.Millisecond, LossRate: 0.25})
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	// Epidemic broadcast with fanout 6 should shrug off 25% loss.
	if got := mesh.Reach("e1"); got < 38 {
		t.Fatalf("reach=%d of 40 under 25%% loss", got)
	}
}

func TestJoinDuplicateNodeFails(t *testing.T) {
	net := simnet.New(1)
	mesh := New(net, Config{}, nil)
	if err := mesh.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Join("a"); err == nil {
		t.Fatal("want error on duplicate join")
	}
}

func TestFanoutLatencyTradeoff(t *testing.T) {
	// Higher fanout must not be slower to reach full coverage; it should
	// also cost more messages. This is the ablation's invariant.
	cover := func(fanout int) (time.Duration, int) {
		net := simnet.New(4)
		mesh := New(net, Config{Fanout: fanout}, nil)
		for i := 0; i < 60; i++ {
			mesh.Join(simnet.NodeID("n" + strconv.Itoa(i)))
		}
		net.SetAllLinks(simnet.LinkConfig{BaseLatency: 5 * time.Millisecond})
		mesh.Publish("n0", Envelope{ID: "e"})
		net.RunWhile(func() bool { return mesh.Reach("e") < 60 })
		return net.Now(), net.Stats().Sent
	}
	tLow, msgsLow := cover(2)
	tHigh, msgsHigh := cover(16)
	if tHigh > tLow {
		t.Fatalf("fanout 16 slower than fanout 2: %v vs %v", tHigh, tLow)
	}
	if msgsHigh <= msgsLow {
		t.Fatalf("fanout 16 should cost more messages: %d vs %d", msgsHigh, msgsLow)
	}
}

func BenchmarkGossipSpread(b *testing.B) {
	for _, fanout := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net := simnet.New(int64(i))
				mesh := New(net, Config{Fanout: fanout}, nil)
				for j := 0; j < 64; j++ {
					mesh.Join(simnet.NodeID("n" + strconv.Itoa(j)))
				}
				mesh.Publish("n0", Envelope{ID: "e"})
				net.Run(0)
			}
		})
	}
}

func TestAntiEntropyRepairsLossGaps(t *testing.T) {
	// Fanout-1 push gossip under 40% loss leaves big coverage holes;
	// anti-entropy rounds must close them completely.
	net := simnet.New(77)
	mesh := New(net, Config{Fanout: 1}, nil)
	const n = 40
	for i := 0; i < n; i++ {
		if err := mesh.Join(simnet.NodeID("n" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.SetAllLinks(simnet.LinkConfig{BaseLatency: time.Millisecond, LossRate: 0.4})
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	pushOnly := mesh.Reach("e1")
	if pushOnly >= n {
		t.Skip("push alone covered everything; loss pattern too kind")
	}
	// Repair over a loss-free control plane (digests are tiny and retried
	// in practice; modelling their loss would only need more rounds).
	net.SetAllLinks(simnet.LinkConfig{BaseLatency: time.Millisecond})
	for round := 0; round < 12 && mesh.Reach("e1") < n; round++ {
		mesh.AntiEntropyRound()
		net.Run(0)
	}
	if got := mesh.Reach("e1"); got != n {
		t.Fatalf("anti-entropy left reach at %d of %d (push-only was %d)", got, n, pushOnly)
	}
}

func TestAntiEntropyNoopWhenConverged(t *testing.T) {
	net, mesh := buildMesh(t, 10, Config{}, nil)
	mesh.Publish("n0", Envelope{ID: "e1"})
	net.Run(0)
	sentBefore := net.Stats().Sent
	mesh.AntiEntropyRound()
	net.Run(0)
	// Digests flow, but no pulls or envelope retransmissions happen.
	extra := net.Stats().Sent - sentBefore
	if extra > 10 {
		t.Fatalf("converged anti-entropy sent %d messages; want digests only", extra)
	}
	if mesh.Reach("e1") != 10 {
		t.Fatal("reach changed")
	}
}

// TestAntiEntropySchedulerConvergesAfterPartitionHeal publishes into one
// side of a partitioned mesh, heals, and requires the periodic
// anti-entropy schedule — no manual rounds, no fresh publishes — to pull
// the other side to full coverage.
func TestAntiEntropySchedulerConvergesAfterPartitionHeal(t *testing.T) {
	net := simnet.New(13)
	mesh := New(net, Config{
		Fanout:              3,
		AntiEntropyInterval: 50 * time.Millisecond,
	}, nil)
	const n = 10
	var a, b []simnet.NodeID
	for i := 0; i < n; i++ {
		id := simnet.NodeID("n" + strconv.Itoa(i))
		if err := mesh.Join(id); err != nil {
			t.Fatal(err)
		}
		if i < n/2 {
			a = append(a, id)
		} else {
			b = append(b, id)
		}
	}
	net.SetAllLinks(simnet.LinkConfig{BaseLatency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond})
	net.Partition(a, b)
	mesh.StartAntiEntropy("n0")
	mesh.Publish("n0", Envelope{ID: "e1", Topic: "news"})
	net.Run(net.Now() + 300*time.Millisecond)
	if got := mesh.Reach("e1"); got != n/2 {
		t.Fatalf("partitioned reach=%d want %d (publish side only)", got, n/2)
	}
	net.Heal()
	deadline := net.Now() + 5*time.Second
	for mesh.Reach("e1") < n && net.Now() < deadline {
		net.Run(net.Now() + 100*time.Millisecond)
	}
	if got := mesh.Reach("e1"); got != n {
		t.Fatalf("anti-entropy schedule left reach at %d of %d after heal", got, n)
	}
}

// TestAntiEntropyJitterDeterministic runs the same scheduled mesh twice
// with one seed and requires identical round timings (message counts at
// every observation point), since the jitter draws come from the seeded
// network RNG.
func TestAntiEntropyJitterDeterministic(t *testing.T) {
	run := func() []int {
		net := simnet.New(21)
		mesh := New(net, Config{
			Fanout:              2,
			AntiEntropyInterval: 40 * time.Millisecond,
			AntiEntropyJitter:   30 * time.Millisecond,
		}, nil)
		for i := 0; i < 8; i++ {
			if err := mesh.Join(simnet.NodeID("n" + strconv.Itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
		net.SetAllLinks(simnet.LinkConfig{BaseLatency: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.2})
		mesh.StartAntiEntropy("n0")
		mesh.Publish("n0", Envelope{ID: "e1"})
		var trace []int
		for step := 0; step < 10; step++ {
			net.Run(net.Now() + 50*time.Millisecond)
			trace = append(trace, net.Stats().Sent)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}
