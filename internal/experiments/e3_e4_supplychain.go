package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/corpus"
	"repro/internal/factdb"
	"repro/internal/supplychain"
)

// E3Config sizes the process-supply-chain baseline (Fig. 3).
type E3Config struct {
	StageCounts []int
	Assets      int
}

// DefaultE3 returns the standard configuration.
func DefaultE3() E3Config { return E3Config{StageCounts: []int{4, 8, 16}, Assets: 1000} }

// RunE3 measures the Fig. 3 baseline: a pre-configured workflow chain
// whose trace cost is O(stages) and independent of participant count.
func RunE3(cfg E3Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Process supply chain (Fig. 3): fixed workflow trace cost",
		Claim:  "pre-configured workflow chains trace in O(stages), independent of scale",
		Header: []string{"stages", "assets", "avg_path_len", "trace_ns"},
	}
	for _, stages := range cfg.StageCounts {
		names := make([]string, stages)
		for i := range names {
			names[i] = "stage" + strconv.Itoa(i)
		}
		pc, err := supplychain.NewProcessChain(names, nil)
		if err != nil {
			return nil, err
		}
		for a := 0; a < cfg.Assets; a++ {
			id := "asset" + strconv.Itoa(a)
			if err := pc.Register(id, "actor0"); err != nil {
				return nil, err
			}
			for s := 1; s < stages; s++ {
				if err := pc.Advance(id, "actor"+strconv.Itoa(s), ""); err != nil {
					return nil, err
				}
			}
		}
		start := time.Now()
		var pathLen int
		for a := 0; a < cfg.Assets; a++ {
			trace, err := pc.Trace("asset" + strconv.Itoa(a))
			if err != nil {
				return nil, err
			}
			pathLen += len(trace)
		}
		elapsed := time.Since(start)
		t.AddRow(d(stages), d(cfg.Assets),
			f1(float64(pathLen)/float64(cfg.Assets)),
			d(int(elapsed.Nanoseconds()/int64(cfg.Assets))))
	}
	return t, nil
}

// E4Config sizes the dynamic news-supply-chain experiment (Fig. 4).
type E4Config struct {
	ItemCounts []int
	Seed       int64
}

// DefaultE4 returns the standard configuration.
func DefaultE4() E4Config { return E4Config{ItemCounts: []int{100, 1000, 10000, 100000}, Seed: 4} }

// RunE4 builds news propagation DAGs of growing size — consumers relay,
// modify, mix and merge (Fig. 4's "much complicated and dynamic network
// architecture") — and measures graph shape and trace-back latency.
func RunE4(cfg E4Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "News supply chain (Fig. 4): dynamic graph trace cost vs scale",
		Claim:  "the news graph is large and dynamic, yet trace-back stays tractable",
		Header: []string{"items", "edges", "max_depth", "rooted_frac", "avg_trace_us"},
	}
	gen := corpus.NewGenerator(cfg.Seed)
	rng := gen.Rand()
	ops := []corpus.Op{corpus.OpVerbatim, corpus.OpVerbatim, corpus.OpVerbatim, corpus.OpInsert, corpus.OpMix, corpus.OpMerge, corpus.OpSplit}

	for _, n := range cfg.ItemCounts {
		ix := factdb.NewIndex()
		facts := make([]corpus.Statement, 0, 64)
		for i := 0; i < 64; i++ {
			s := gen.Factual()
			facts = append(facts, s)
			ix.Add(factdb.Fact{ID: s.ID, Topic: s.Topic, Text: s.Text})
		}
		g := supplychain.NewGraph(ix)
		texts := make([]string, n)
		// Roots: a mix of factual republications and fabrications.
		roots := n / 10
		if roots < 8 {
			roots = 8
		}
		for i := 0; i < n; i++ {
			id := "n" + strconv.Itoa(i)
			var item supplychain.Item
			if i < roots {
				var text string
				if rng.Float64() < 0.7 {
					text = facts[rng.Intn(len(facts))].Text
				} else {
					text = gen.Fabricate().Text
				}
				texts[i] = text
				item = supplychain.Item{ID: id, Topic: corpus.TopicPolitics, Text: text, Creator: "acct" + strconv.Itoa(i%97)}
			} else {
				parentIdx := rng.Intn(i)
				parent := "n" + strconv.Itoa(parentIdx)
				op := ops[rng.Intn(len(ops))]
				text := texts[parentIdx]
				parents := []string{parent}
				if op != corpus.OpVerbatim {
					src := corpus.Statement{ID: parent, Topic: corpus.TopicPolitics, Text: text}
					text = gen.Modify(src, op).Text
					if op == corpus.OpMix || op == corpus.OpMerge {
						second := rng.Intn(i)
						parents = append(parents, "n"+strconv.Itoa(second))
					}
				}
				texts[i] = text
				item = supplychain.Item{
					ID: id, Topic: corpus.TopicPolitics, Text: text,
					Creator: "acct" + strconv.Itoa(rng.Intn(997)),
					Parents: dedupe(parents), Op: op,
				}
			}
			if err := g.AddItem(item); err != nil {
				return nil, fmt.Errorf("e4: add %s: %w", id, err)
			}
		}
		stats := g.Stats()
		// Trace a sample of items.
		sample := 200
		if sample > n {
			sample = n
		}
		rooted := 0
		start := time.Now()
		for s := 0; s < sample; s++ {
			id := "n" + strconv.Itoa(rng.Intn(n))
			res, err := g.Trace(id)
			if err != nil {
				return nil, err
			}
			if res.Rooted {
				rooted++
			}
		}
		elapsed := time.Since(start)
		t.AddRow(d(stats.Items), d(stats.Edges), d(stats.MaxDepth),
			f3(float64(rooted)/float64(sample)),
			f1(float64(elapsed.Microseconds())/float64(sample)))
	}
	return t, nil
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
