package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/blobstore"
	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// E17Config sizes the telemetry-overhead measurement.
type E17Config struct {
	// Txs is the number of pre-signed transactions committed per mode.
	Txs int
	// Senders spreads the nonce chains so batching is not serialized.
	Senders int
	// Blobs and BlobKB size the retrieval corpus; Reads is the number of
	// verified Get calls timed per mode.
	Blobs  int
	BlobKB int
	Reads  int
	// Rounds repeats each cell, keeping the best run (least scheduler
	// noise).
	Rounds int
}

// DefaultE17 returns the standard configuration.
func DefaultE17() E17Config {
	return E17Config{Txs: 2048, Senders: 64, Blobs: 48, BlobKB: 32, Reads: 1500, Rounds: 3}
}

// e17Mode is one telemetry configuration under test.
type e17Mode struct {
	name string
	// reg builds the registry for the platform (nil = telemetry off: all
	// instruments are nil and each site costs one branch).
	reg func() *telemetry.Registry
	// scrape renders the exposition once per committed block, modeling a
	// very aggressive Prometheus scraper.
	scrape bool
}

// RunE17Telemetry measures what the metrics registry costs on the two
// hottest paths: standalone commit throughput and verified blob reads.
// The paper's platform must be a "high performance blockchain network"
// (§VII); observability that taxed the hot paths would undercut that, so
// the acceptance bar is <=5% commit-throughput overhead with telemetry
// enabled.
func RunE17Telemetry(cfg E17Config) (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "Telemetry overhead on hot paths",
		Claim:  "instrumentation is affordable: <=5% commit-throughput cost when enabled",
		Header: []string{"mode", "commit_tx_per_s", "commit_overhead_pct", "blob_get_us", "blob_overhead_pct"},
	}
	modes := []e17Mode{
		{name: "off", reg: func() *telemetry.Registry { return nil }},
		{name: "enabled", reg: telemetry.New},
		{name: "enabled+scrape", reg: telemetry.New, scrape: true},
	}
	var baseTxPerSec, baseGetUs float64
	for _, m := range modes {
		txPerSec, err := e17CommitThroughput(cfg, m)
		if err != nil {
			return nil, err
		}
		getUs, err := e17BlobReadLatency(cfg, m)
		if err != nil {
			return nil, err
		}
		if m.name == "off" {
			baseTxPerSec, baseGetUs = txPerSec, getUs
		}
		t.AddRow(m.name,
			f1(txPerSec),
			f1(100*(baseTxPerSec-txPerSec)/baseTxPerSec),
			f2(getUs),
			f1(100*(getUs-baseGetUs)/baseGetUs))
	}
	return t, nil
}

// e17CommitThroughput times the standalone commit loop over a pre-signed
// workload, best of cfg.Rounds.
func e17CommitThroughput(cfg E17Config, m e17Mode) (float64, error) {
	best := time.Duration(0)
	for round := 0; round < cfg.Rounds; round++ {
		pcfg := platform.DefaultConfig()
		pcfg.Telemetry = m.reg()
		p, err := platform.New(pcfg)
		if err != nil {
			return 0, err
		}
		senders := make([]*keys.KeyPair, cfg.Senders)
		nonces := make([]uint64, len(senders))
		for i := range senders {
			senders[i] = keys.FromSeed([]byte("e17-" + strconv.Itoa(i)))
		}
		for i := 0; i < cfg.Txs; i++ {
			s := i % len(senders)
			payload, err := supplychain.PublishPayload(
				"e17-item"+strconv.Itoa(i), corpus.TopicPolitics,
				"telemetry overhead statement number "+strconv.Itoa(i), nil, "")
			if err != nil {
				return 0, err
			}
			tx, err := ledger.NewTx(senders[s], nonces[s], "news.publish", payload)
			if err != nil {
				return 0, err
			}
			nonces[s]++
			if err := p.Submit(tx); err != nil {
				return 0, err
			}
		}
		var sink strings.Builder
		start := time.Now()
		for {
			blk, _, err := p.Commit()
			if err != nil {
				return 0, err
			}
			if blk == nil {
				break
			}
			if m.scrape {
				sink.Reset()
				if err := p.Telemetry().WritePrometheus(&sink); err != nil {
					return 0, err
				}
			}
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(cfg.Txs) / best.Seconds(), nil
}

// e17BlobReadLatency times verified chunk-tree reads from an in-memory
// store, best of cfg.Rounds. Every Get re-verifies the chunks against
// the CID root, so this is the integrity-checking hot path the retrieval
// protocol and /v1/blobs sit on.
func e17BlobReadLatency(cfg E17Config, m e17Mode) (float64, error) {
	best := time.Duration(0)
	for round := 0; round < cfg.Rounds; round++ {
		store := blobstore.NewStore(0)
		store.Instrument(m.reg())
		cids := make([]blobstore.CID, cfg.Blobs)
		for i := range cids {
			body := strings.Repeat(fmt.Sprintf("blob %03d payload ", i), cfg.BlobKB*1024/18+1)
			cid, err := store.PutString(body)
			if err != nil {
				return 0, err
			}
			cids[i] = cid
		}
		start := time.Now()
		for i := 0; i < cfg.Reads; i++ {
			if _, err := store.Get(cids[i%len(cids)]); err != nil {
				return 0, err
			}
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(best.Microseconds()) / float64(cfg.Reads), nil
}

// f2 formats a float at 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
