package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/blobstore"
	"repro/internal/corpus"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/simnet"
)

// E16Config sizes the off-chain storage experiment.
type E16Config struct {
	// Articles is how many distinct articles are published.
	Articles int
	// Syndicated is how many verbatim republications ride along — the
	// dedup pressure a real news wire produces.
	Syndicated int
	// Sentences sets the body length (multi-KB bodies are the point:
	// inline they dominate block size).
	Sentences int
	// LossRates sweeps the retrieval link quality.
	LossRates []float64
	Seed      int64
}

// DefaultE16 returns the standard configuration.
func DefaultE16() E16Config {
	return E16Config{
		Articles:   12,
		Syndicated: 6,
		Sentences:  40,
		LossRates:  []float64{0, 0.01, 0.05},
		Seed:       16,
	}
}

// RunE16 quantifies the off-chain article store: how many bytes each
// committed article costs on-chain with bodies inline versus referenced
// by CID, how much chunk-level dedup saves across syndicated copies, and
// what verified retrieval costs over a lossy link. The paper outsources
// bodies to IPFS and keeps only hashes on-chain; this measures that
// design against the inline baseline.
func RunE16(cfg E16Config) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Off-chain article storage: chain bytes, dedup, lossy retrieval",
		Claim:  "storing bodies off-chain shrinks per-article chain cost >=5x; retrieval stays verified under loss",
		Header: []string{"scenario", "loss", "articles", "chain_kb", "b_per_article", "shrink_x", "dedup_x", "fetch_ms_avg", "fetch_ms_max"},
	}

	// One deterministic workload for both arms: distinct bodies plus
	// verbatim syndicated copies.
	gen := corpus.NewGenerator(cfg.Seed)
	bodies := make([]string, cfg.Articles)
	for i := range bodies {
		var sb strings.Builder
		for s := 0; s < cfg.Sentences; s++ {
			if s > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString(gen.FactualOn(corpus.TopicPolitics).Text)
		}
		bodies[i] = sb.String()
	}
	publish := func(p *platform.Platform) error {
		a := p.NewActor("e16-wire")
		for i, body := range bodies {
			if err := a.PublishNews(fmt.Sprintf("art-%d", i), corpus.TopicPolitics, body, nil, ""); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.Syndicated; i++ {
			body := bodies[i%len(bodies)]
			if err := a.PublishNews(fmt.Sprintf("synd-%d", i), corpus.TopicPolitics, body, nil, ""); err != nil {
				return err
			}
		}
		return nil
	}
	chainBytes := func(p *platform.Platform) (int, error) {
		total := 0
		err := p.Chain().Walk(0, func(b *ledger.Block) bool {
			total += len(b.Encode())
			return true
		})
		return total, err
	}
	total := cfg.Articles + cfg.Syndicated

	// Inline arm: the body rides in every publish transaction.
	inlineCfg := platform.DefaultConfig()
	inlineCfg.OffChainBodies = false
	inlineP, err := platform.New(inlineCfg)
	if err != nil {
		return nil, err
	}
	if err := publish(inlineP); err != nil {
		return nil, err
	}
	inlineBytes, err := chainBytes(inlineP)
	if err != nil {
		return nil, err
	}
	inlinePer := float64(inlineBytes) / float64(total)
	t.AddRow("inline", "0.000", d(total),
		f1(float64(inlineBytes)/1024), f1(inlinePer), "1.0", "-", "-", "-")

	// Off-chain arm: transactions carry only {CID, size}; bodies live in
	// the content-addressed store, deduped at chunk granularity.
	miner, err := platform.New(platform.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := publish(miner); err != nil {
		return nil, err
	}
	offBytes, err := chainBytes(miner)
	if err != nil {
		return nil, err
	}
	offPer := float64(offBytes) / float64(total)
	// Dedup over the published stream: syndicated copies resolve to the
	// CID already stored, so physical chunk bytes stay flat while the
	// wire keeps transmitting bodies.
	published := 0
	for _, body := range bodies {
		published += len(body)
	}
	for i := 0; i < cfg.Syndicated; i++ {
		published += len(bodies[i%len(bodies)])
	}
	st := miner.Blobs().Stats()
	t.AddRow("off-chain", "0.000", d(total),
		f1(float64(offBytes)/1024), f1(offPer),
		f1(inlinePer/offPer), f3(float64(published)/float64(st.PhysicalBytes)), "-", "-")

	// Retrieval sweep: a fresh node pulls every unique blob from the
	// miner through the chunk protocol, per loss rate. Latency is virtual
	// simnet time, so the numbers are deterministic from the seed.
	cids := miner.Blobs().CIDs()
	for li, loss := range cfg.LossRates {
		net := simnet.New(cfg.Seed*100 + int64(li))
		fcfg := blobstore.FetchConfig{Timeout: 50 * time.Millisecond, Retries: 4}
		src := blobstore.NewPeer(net, "src", miner.Blobs(), fcfg)
		dst := blobstore.NewPeer(net, "dst", blobstore.NewStore(miner.Blobs().ChunkSize()), fcfg)
		if err := src.Bind(); err != nil {
			return nil, err
		}
		if err := dst.Bind(); err != nil {
			return nil, err
		}
		net.SetAllLinks(simnet.LinkConfig{
			BaseLatency: 2 * time.Millisecond,
			Jitter:      time.Millisecond,
			LossRate:    loss,
		})
		var sum, max time.Duration
		for _, cid := range cids {
			start := net.Now()
			var (
				done bool
				ferr error
			)
			dst.Fetch(cid, []simnet.NodeID{"src"}, func(_ []byte, e error) {
				done, ferr = true, e
			})
			net.RunWhile(func() bool { return !done })
			if !done || ferr != nil {
				return nil, fmt.Errorf("e16: fetch %s at loss %.2f: %v", cid.Short(), loss, ferr)
			}
			elapsed := net.Now() - start
			sum += elapsed
			if elapsed > max {
				max = elapsed
			}
		}
		avgMs := float64(sum.Microseconds()) / float64(len(cids)) / 1000
		t.AddRow("fetch", f3(loss), d(len(cids)), "-", "-", "-", "-",
			f1(avgMs), f1(float64(max.Microseconds())/1000))
	}
	return t, nil
}
