package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/consensus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
	"repro/internal/transport/wire"
)

// E20Config sizes the transport comparison: the same consensus workload
// is driven once over the deterministic simulated network and once over
// real loopback TCP with the binary wire codec.
type E20Config struct {
	// Validators is the cluster size.
	Validators int
	// Seed drives key derivation and the simnet scheduler.
	Seed int64
	// Txs is the client workload committed in each cell.
	Txs int
	// Senders spreads the workload over this many accounts so batching
	// is not serialized by per-sender nonce order.
	Senders int
	// PayloadBytes sizes each transaction body (wire overhead amortizes
	// over it).
	PayloadBytes int
	// MaxTxsPerBlock caps proposals so the workload streams over several
	// blocks instead of committing in one.
	MaxTxsPerBlock int
	// MaxWall bounds each cell in wall-clock time.
	MaxWall time.Duration
}

// DefaultE20 returns the standard configuration.
func DefaultE20() E20Config {
	return E20Config{
		Validators:     4,
		Seed:           20,
		Txs:            400,
		Senders:        16,
		PayloadBytes:   200,
		MaxTxsPerBlock: 64,
		MaxWall:        60 * time.Second,
	}
}

// RunE20Wire measures commit throughput for a 4-validator cluster on the
// in-memory simulated network versus loopback TCP framed by the wire
// codec (E20). The simnet cell is the platform's test substrate — zero
// copies, virtual time — so its wall clock is pure consensus compute;
// the TCP cell adds real sockets, binary encoding and framing. The
// bytes columns quantify the wire overhead per committed transaction.
func RunE20Wire(cfg E20Config) (*Table, error) {
	t := &Table{
		ID:     "E20",
		Title:  "Transport comparison: simnet vs loopback TCP",
		Claim:  "the wire codec and TCP framing sustain the consensus workload at loopback speed, with bounded per-tx byte overhead",
		Header: []string{"transport", "txs", "blocks", "wall_ms", "tx_per_s", "bytes_out", "wire_B_per_tx"},
	}
	simRow, err := e20Simnet(cfg)
	if err != nil {
		return nil, fmt.Errorf("e20 simnet: %w", err)
	}
	t.AddRow(simRow...)
	tcpRow, err := e20TCP(cfg)
	if err != nil {
		return nil, fmt.Errorf("e20 tcp: %w", err)
	}
	t.AddRow(tcpRow...)
	return t, nil
}

// e20Txs builds the deterministic client workload.
func e20Txs(cfg E20Config) ([]*ledger.Tx, error) {
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	txs := make([]*ledger.Tx, 0, cfg.Txs)
	for s := 0; s < cfg.Senders; s++ {
		kp := keys.FromSeed([]byte("e20-sender-" + strconv.Itoa(s)))
		for n := 0; len(txs) < cfg.Txs && n < (cfg.Txs+cfg.Senders-1)/cfg.Senders; n++ {
			tx, err := ledger.NewTx(kp, uint64(n), "bench.payload", payload)
			if err != nil {
				return nil, err
			}
			txs = append(txs, tx)
		}
	}
	return txs, nil
}

// e20Simnet runs the workload on the deterministic simulated network.
func e20Simnet(cfg E20Config) ([]string, error) {
	cluster, err := consensus.NewCluster(cfg.Validators, cfg.Seed, consensus.DefaultTimeouts())
	if err != nil {
		return nil, err
	}
	for _, app := range cluster.Apps {
		app.MaxTxs = cfg.MaxTxsPerBlock
	}
	txs, err := e20Txs(cfg)
	if err != nil {
		return nil, err
	}
	for _, tx := range txs {
		if err := cluster.SubmitAll(tx); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	cluster.Start()
	deadline := start.Add(cfg.MaxWall)
	cluster.Net.RunWhile(func() bool {
		if time.Now().After(deadline) {
			return false
		}
		for _, app := range cluster.Apps {
			if app.Pool.Size() > 0 {
				return true
			}
		}
		return false
	})
	wall := time.Since(start)
	for i, app := range cluster.Apps {
		if app.Pool.Size() > 0 {
			return nil, fmt.Errorf("node %d pool not drained (%d left) after %s", i, app.Pool.Size(), wall)
		}
	}
	blocks := cluster.MinHeight()
	return e20Row("simnet", cfg.Txs, blocks, wall, 0), nil
}

// e20TCP runs the same workload over loopback TCP transports framed by
// the wire codec, all in one process so the comparison isolates the
// transport (not scheduler noise between machines).
func e20TCP(cfg E20Config) ([]string, error) {
	n := cfg.Validators
	reg := telemetry.New()
	tm := transport.NewMetrics(reg)
	transports := make([]*tcp.Transport, n)
	nodes := make([]*consensus.Node, n)
	apps := make([]*consensus.ChainApp, n)
	kps := make([]*keys.KeyPair, n)
	vals := make([]consensus.Validator, n)
	defer func() {
		for _, tr := range transports {
			if tr != nil {
				tr.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		kps[i] = keys.FromSeed([]byte("e20-val-" + strconv.Itoa(i)))
		vals[i] = consensus.Validator{
			ID:    transport.NodeID("p" + strconv.Itoa(i)),
			Addr:  kps[i].Address(),
			Pub:   kps[i].Public(),
			Power: 1,
		}
		tr, err := tcp.New(tcp.Config{
			NodeID:  vals[i].ID,
			Listen:  "127.0.0.1:0",
			Codec:   wire.Codec{},
			Metrics: tm,
		})
		if err != nil {
			return nil, err
		}
		if err := tr.Start(); err != nil {
			return nil, err
		}
		transports[i] = tr
	}
	set, err := consensus.NewValidatorSet(vals)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].AddPeer(vals[j].ID, transports[j].Addr())
			}
		}
	}
	txs, err := e20Txs(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		apps[i] = &consensus.ChainApp{
			Chain:      ledger.NewMemChain(),
			Proposer:   kps[i].Address(),
			MaxTxs:     cfg.MaxTxsPerBlock,
			AllowEmpty: true,
		}
		apps[i].Pool = ledger.NewMempool(apps[i].Chain, 1<<16)
		for _, tx := range txs {
			if err := apps[i].Pool.Add(tx); err != nil {
				return nil, err
			}
		}
		nodes[i] = consensus.NewNode(vals[i].ID, kps[i], set, transports[i], apps[i], consensus.DefaultTimeouts())
		if err := nodes[i].Bind(); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		node := nodes[i]
		transports[i].After(vals[i].ID, 0, func() { node.Start() })
	}
	deadline := start.Add(cfg.MaxWall)
	for {
		drained := true
		for _, app := range apps {
			if app.Pool.Size() > 0 {
				drained = false
				break
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcp cell: pools not drained within %s", cfg.MaxWall)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wall := time.Since(start)
	blocks := apps[0].Chain.Height()
	for _, app := range apps[1:] {
		if h := app.Chain.Height(); h < blocks {
			blocks = h
		}
	}
	return e20Row("tcp-loopback", cfg.Txs, blocks, wall, tm.BytesOut.Value()), nil
}

// e20Row formats one cell. bytesOut 0 means the transport moved no real
// bytes (simnet delivers in-memory values).
func e20Row(name string, txs int, blocks uint64, wall time.Duration, bytesOut uint64) []string {
	wallMS := float64(wall) / float64(time.Millisecond)
	perTx := "-"
	bytes := "-"
	if bytesOut > 0 {
		bytes = strconv.FormatUint(bytesOut, 10)
		perTx = fmt.Sprintf("%.0f", float64(bytesOut)/float64(txs))
	}
	return []string{
		name,
		strconv.Itoa(txs),
		strconv.FormatUint(blocks, 10),
		fmt.Sprintf("%.1f", wallMS),
		fmt.Sprintf("%.0f", float64(txs)/wall.Seconds()),
		bytes,
		perTx,
	}
}
