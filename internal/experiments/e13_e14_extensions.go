package experiments

import (
	"repro/internal/aidetect"
	"repro/internal/intervene"
	"repro/internal/predict"
	"repro/internal/social"
)

// E13Config sizes the outbreak-prediction experiment (§VII future work:
// "anticipate the onset of a fake news propagation before it is actually
// propagated and disputed").
type E13Config struct {
	Windows []int
	Base    predict.DatasetConfig
}

// DefaultE13 returns the standard configuration.
func DefaultE13() E13Config {
	return E13Config{Windows: []int{1, 2, 3, 4}, Base: predict.DefaultDatasetConfig()}
}

// RunE13 trains the outbreak predictor at several observation windows and
// reports AUC/F1 — quantifying how early the platform can act.
func RunE13(cfg E13Config) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Outbreak prediction vs observation window (extension, §VII)",
		Claim:  "fake-news outbreaks are predictable from early cascade shape + platform signals",
		Header: []string{"window_rounds", "examples", "outbreak_rate", "auc", "f1"},
	}
	for _, w := range cfg.Windows {
		dcfg := cfg.Base
		dcfg.Window = w
		examples, baseRate, err := predict.BuildDataset(dcfg)
		if err != nil {
			return nil, err
		}
		train, test := predict.SplitExamples(examples, 0.7, dcfg.Seed)
		m := predict.NewModel()
		if err := m.Train(train); err != nil {
			return nil, err
		}
		scores := make([]float64, len(test))
		labels := make([]bool, len(test))
		for i, ex := range test {
			s, err := m.Score(ex.Obs)
			if err != nil {
				return nil, err
			}
			scores[i] = s
			labels[i] = ex.Outbreak
		}
		ev := aidetect.Metrics(scores, labels)
		t.AddRow(d(w), d(len(examples)), f3(baseRate), f3(ev.AUC), f3(ev.F1))
	}
	return t, nil
}

// E14Config sizes the personalized-intervention experiment (§VII future
// work: personalization of intervention mechanisms).
type E14Config struct {
	Net     social.Config
	Budgets []int
	Runs    int
	Seed    int64
}

// DefaultE14 returns the standard configuration.
func DefaultE14() E14Config {
	net := social.DefaultConfig()
	net.Users, net.Bots, net.Cyborgs = 2500, 160, 90
	return E14Config{Net: net, Budgets: []int{30, 60, 120}, Runs: 15, Seed: 14}
}

// RunE14 compares correction-targeting strategies at equal budgets. Two
// metrics per strategy: ever-misled (exposure the campaign failed to
// prevent — lower is better) and residual believers after debunking.
func RunE14(cfg E14Config) (*Table, error) {
	net, err := social.NewNetwork(cfg.Net)
	if err != nil {
		return nil, err
	}
	profiles := intervene.Profiles(net, cfg.Seed)
	t := &Table{
		ID:     "E14",
		Title:  "Correction targeting at equal budget (extension, §VII)",
		Claim:  "personalized, community-routed corrections beat one-size-fits-all interventions",
		Header: []string{"budget", "strategy", "ever_misled", "residual_believers", "corrected", "accepts_per_budget"},
	}
	for _, budget := range cfg.Budgets {
		for _, s := range intervene.AllStrategies {
			var misled, residual, corrected, accepts float64
			for r := 0; r < cfg.Runs; r++ {
				res, err := intervene.Run(net, profiles, s, intervene.Config{
					HeadStart:   3,
					TotalRounds: 14,
					Budget:      budget,
					Params:      social.DefaultSpreadParams(),
					Seeds:       net.BotSeeds(6),
					RngSeed:     cfg.Seed + int64(r)*17,
				})
				if err != nil {
					return nil, err
				}
				misled += float64(res.EverMisled)
				residual += float64(res.FakeReach)
				corrected += float64(res.Corrected)
				accepts += float64(res.InitialAccepts)
			}
			n := float64(cfg.Runs)
			t.AddRow(d(budget), string(s), f1(misled/n), f1(residual/n), f1(corrected/n),
				f3(accepts/n/float64(budget)))
		}
	}
	return t, nil
}
