package experiments

import (
	"strconv"
	"time"

	"repro/internal/corpus"
	"repro/internal/keys"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/supplychain"
	"repro/internal/telemetry"
)

// E18Config sizes the block-verification throughput measurement.
type E18Config struct {
	// TxsPerBlock is the size of the measured block (the paper-scale
	// target is 1000 transactions per block).
	TxsPerBlock int
	// Senders spreads the workload across that many key pairs.
	Senders int
	// Reps is how many validations are timed per round (the per-block
	// figure is the mean of the reps).
	Reps int
	// Rounds repeats each cell, keeping the best run.
	Rounds int
	// CommitBlocks sizes the steady-state commit loop used for the
	// cache hit-rate measurement.
	CommitBlocks int
}

// DefaultE18 returns the standard configuration.
func DefaultE18() E18Config {
	return E18Config{TxsPerBlock: 1000, Senders: 64, Reps: 3, Rounds: 3, CommitBlocks: 8}
}

// RunE18Verify measures the parallel, cache-aware block-verification
// pipeline against the serial baseline on one 1k-tx block, then measures
// the signature-cache hit rate over a steady-state commit loop where
// every transaction was verified at mempool admission. Ed25519 signature
// checks dominate serial validation cost; the pipeline attacks them twice
// — fan-out across GOMAXPROCS workers, and an admission-fed verified-
// signature cache that skips the ed25519 operation entirely (structural
// checks and the content re-hash always run, so the cache is an
// accelerator, never a trust root).
func RunE18Verify(cfg E18Config) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "Parallel+cached block verification",
		Claim:  "admission-fed signature cache turns block validation into hashing: >=3x over serial at 1k txs/block, >=90% steady-state hit rate",
		Header: []string{"mode", "validate_ms_per_block", "speedup_x", "sigcache_hit_pct"},
	}

	senders := make([]*keys.KeyPair, cfg.Senders)
	nonces := make([]uint64, cfg.Senders)
	for i := range senders {
		senders[i] = keys.FromSeed([]byte("e18-" + strconv.Itoa(i)))
	}
	txs := make([]*ledger.Tx, cfg.TxsPerBlock)
	for i := range txs {
		s := i % cfg.Senders
		tx, err := ledger.NewTx(senders[s], nonces[s], "news.publish",
			[]byte("e18 verification workload item "+strconv.Itoa(i)))
		if err != nil {
			return nil, err
		}
		nonces[s]++
		txs[i] = tx
	}
	blk := ledger.NewBlock(0, ledger.BlockID{}, [32]byte{},
		time.Unix(1562500000, 0).UTC(), senders[0].Address(), txs)

	// Serial baseline: Block.ValidateBody — one goroutine, no cache.
	serialMs, err := e18TimeValidation(cfg, func() error { return blk.ValidateBody() })
	if err != nil {
		return nil, err
	}
	t.AddRow("serial", f2(serialMs), f2(1), "-")

	// Parallel pipeline, cold: worker fan-out only, every ed25519 runs.
	cold := ledger.NewVerifier(nil, 0)
	coldMs, err := e18TimeValidation(cfg, func() error { return cold.ValidateBody(blk) })
	if err != nil {
		return nil, err
	}
	t.AddRow("pipeline", f2(coldMs), f2(serialMs/coldMs), "-")

	// Pipeline with a warm cache: the steady state after mempool admission
	// verified (and cached) every signature in the block.
	reg := telemetry.New()
	warm := ledger.NewVerifier(ledger.NewSigCache(2*cfg.TxsPerBlock), 0)
	warm.Instrument(reg)
	if err := warm.ValidateBody(blk); err != nil { // admission stand-in
		return nil, err
	}
	h0, m0 := warm.CacheStats()
	warmMs, err := e18TimeValidation(cfg, func() error { return warm.ValidateBody(blk) })
	if err != nil {
		return nil, err
	}
	h1, m1 := warm.CacheStats()
	t.AddRow("pipeline+cache", f2(warmMs), f2(serialMs/warmMs), f1(e18HitPct(h1-h0, m1-m0)))

	// Steady-state commit loop on a standalone platform node: transactions
	// enter through the mempool (populating the cache), blocks validate
	// through the chain's pipeline. Only the validation-side lookups are
	// counted — admission misses are the cache being filled, not missed.
	hitPct, err := e18CommitLoopHitRate(cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("commit-loop", "-", "-", f1(hitPct))
	return t, nil
}

// e18TimeValidation returns the per-validation mean in milliseconds, best
// of cfg.Rounds rounds of cfg.Reps repetitions.
func e18TimeValidation(cfg E18Config, validate func() error) (float64, error) {
	best := time.Duration(0)
	for round := 0; round < cfg.Rounds; round++ {
		start := time.Now()
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := validate(); err != nil {
				return 0, err
			}
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best.Seconds() * 1000 / float64(cfg.Reps), nil
}

func e18HitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// e18CommitLoopHitRate submits cfg.CommitBlocks batches through a
// standalone platform's mempool, commits them all, and returns the
// signature-cache hit rate seen by block validation during the commits.
func e18CommitLoopHitRate(cfg E18Config) (float64, error) {
	pcfg := platform.DefaultConfig()
	pcfg.Telemetry = telemetry.New()
	p, err := platform.New(pcfg)
	if err != nil {
		return 0, err
	}
	senders := make([]*keys.KeyPair, cfg.Senders)
	nonces := make([]uint64, cfg.Senders)
	for i := range senders {
		senders[i] = keys.FromSeed([]byte("e18-loop-" + strconv.Itoa(i)))
	}
	total := cfg.CommitBlocks * cfg.TxsPerBlock / 4 // keep the loop brisk
	for i := 0; i < total; i++ {
		s := i % cfg.Senders
		payload, err := supplychain.PublishPayload(
			"e18-item"+strconv.Itoa(i), corpus.TopicPolitics,
			"verification pipeline statement number "+strconv.Itoa(i), nil, "")
		if err != nil {
			return 0, err
		}
		tx, err := ledger.NewTx(senders[s], nonces[s], "news.publish", payload)
		if err != nil {
			return 0, err
		}
		nonces[s]++
		if err := p.Submit(tx); err != nil {
			return 0, err
		}
	}
	h0, m0 := p.Verifier().CacheStats()
	if err := p.CommitAll(); err != nil {
		return 0, err
	}
	h1, m1 := p.Verifier().CacheStats()
	return e18HitPct(h1-h0, m1-m0), nil
}
